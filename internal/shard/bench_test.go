package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
)

// BenchmarkRouterStep measures one global serving step of the same fleet —
// 64 servers, 2048 requests spread over the whole space — sharded n ways:
// shards=1 is the unsharded baseline (one session owning all 64 servers),
// shards=8 is eight sessions of 8 servers stepping on separate goroutines.
// Spatial sharding cuts the nearest-server assignment from
// O(requests × fleet) to O(requests × fleet / n²) per shard and runs the
// shards concurrently; this is the scaling curve scripts/bench.sh reports.
func BenchmarkRouterStep(b *testing.B) {
	const totalServers, perStep = 64, 2048
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			cfg := shardedConfig(n, totalServers/n)
			r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate a cycle of batches so workload synthesis stays
			// out of the measured loop.
			batches := make([][]geom.Point, 64)
			for i := range batches {
				batches[i] = spreadBatch(i, perStep)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Step(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebalanceVsStatic serves the drifting-hotspot workload — the
// adversarial pattern for a frozen shard layout — once per iteration, with
// and without the threshold rebalancing policy: 4 shards × 2 servers, a
// tight 24-request hotspot sweeping across all three boundaries over 400
// steps. ns/op is the full run; the cost/step metric is the serving cost
// the layout policy is judged on (scripts/bench.sh derives its
// rebalance_vs_static summary from it: rebalancing serves the drift
// cheaper because every region the hotspot enters was reinforced through
// the boundary it crossed).
func BenchmarkRebalanceVsStatic(b *testing.B) {
	const shards, k, steps, perStep = 4, 2, 400, 24
	cfg := shardedConfig(shards, k)
	batches := make([][]geom.Point, steps)
	for t := range batches {
		batches[t] = driftBatch(t, steps, perStep)
	}
	run := func(b *testing.B, newPolicy func() Rebalancer) {
		b.ReportAllocs()
		var cost float64
		for i := 0; i < b.N; i++ {
			r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if newPolicy != nil {
				r.SetRebalancer(newPolicy())
			}
			for t := range batches {
				if err := r.Step(batches[t]); err != nil {
					b.Fatal(err)
				}
			}
			cost += r.Cost().Total()
		}
		b.ReportMetric(cost/float64(b.N*steps), "cost/step")
	}
	b.Run("static", func(b *testing.B) { run(b, nil) })
	b.Run("rebalance", func(b *testing.B) {
		run(b, func() Rebalancer { return &Threshold{WindowSteps: 8} })
	})
}
