package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
)

// BenchmarkRouterStep measures one global serving step of the same fleet —
// 64 servers, 2048 requests spread over the whole space — sharded n ways:
// shards=1 is the unsharded baseline (one session owning all 64 servers),
// shards=8 is eight sessions of 8 servers stepping on separate goroutines.
// Spatial sharding cuts the nearest-server assignment from
// O(requests × fleet) to O(requests × fleet / n²) per shard and runs the
// shards concurrently; this is the scaling curve scripts/bench.sh reports.
func BenchmarkRouterStep(b *testing.B) {
	const totalServers, perStep = 64, 2048
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			cfg := shardedConfig(n, totalServers/n)
			r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate a cycle of batches so workload synthesis stays
			// out of the measured loop.
			batches := make([][]geom.Point, 64)
			for i := range batches {
				batches[i] = spreadBatch(i, perStep)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Step(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
