// Dynamic shard rebalancing: the shard layout is no longer frozen at
// startup. A pluggable Rebalancer watches each shard's request load over a
// sliding window and, when the skew crosses its threshold, migrates a
// server from a cold shard into its hot neighbor — the movement-constrained
// analogue of reassigning mobile resources to shifting demand. A migration
// does not teleport anything: the donated server keeps its position and
// simply changes which region's session commands it, so the per-step
// movement cap stays honored and the handover itself is free. The affected
// sessions are rebuilt around the new fleet sizes with their accumulated
// counters transplanted (engine.NewSessionFrom), so fleet-wide costs,
// metrics, and snapshots are unaffected by how often the layout changed.

package shard

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Migration is one planned layout change: move one server from shard From
// to the neighboring shard To (|From-To| == 1 — servers cross one routing
// boundary at a time, mirroring the movement constraint on the servers
// themselves).
type Migration struct {
	From int
	To   int
}

// RebalanceEvent records one applied migration. All fields are immutable
// once published; transports may hand the event to concurrent readers.
type RebalanceEvent struct {
	// T is the index of the next global step: the migration is in effect
	// for step T and later.
	T int
	// From and To are the donor and recipient shards.
	From int
	To   int
	// Server is the migrated server's position at migration time (it does
	// not move during the handover).
	Server geom.Point
	// Ks is the per-shard fleet layout after the migration.
	Ks []int
}

// LoadView is what a Rebalancer sees when it plans: the per-shard request
// load over the sliding window, the current fleet layout, and the
// partition. All slices are copies the policy may keep.
type LoadView struct {
	// T is the index of the next global step; a planned migration takes
	// effect before it executes.
	T int
	// Window is the number of steps aggregated into Load.
	Window int
	// Load holds each shard's routed-request count within the window.
	Load []int
	// Ks holds each shard's current fleet size.
	Ks []int
	// Partition is the routing layout.
	Partition []float64
}

// Rebalancer is the pluggable policy deciding when servers migrate between
// shards. The router calls Plan after every step once the sliding window is
// full; returning nil means "leave the layout alone". A Rebalancer instance
// must not be shared between routers — it may keep per-run state (e.g. a
// cooldown clock).
type Rebalancer interface {
	// Window is the sliding-window length, in steps, the policy wants the
	// load aggregated over (at least 1).
	Window() int
	// Plan inspects the windowed load and either returns a migration to
	// apply now or nil.
	Plan(v LoadView) *Migration
}

// DefaultRebalanceWindow is the sliding-window length Threshold uses when
// WindowSteps is zero.
const DefaultRebalanceWindow = 32

// Threshold is the reference rebalancing policy: when the hottest shard's
// windowed load exceeds Ratio times its colder neighbor's, one server
// migrates from that neighbor into the hot shard. Zero fields take the
// documented defaults, so Threshold{} is a usable policy.
type Threshold struct {
	// WindowSteps is the sliding-window length in steps.
	// Default DefaultRebalanceWindow.
	WindowSteps int
	// Ratio triggers a migration when hotLoad >= Ratio·(donorLoad+1).
	// Default 2. Values <= 1 are lifted to the default — a ratio at or
	// below parity would thrash servers back and forth on noise.
	Ratio float64
	// Cooldown is the minimum number of steps between two migrations.
	// Default WindowSteps (one full fresh window).
	Cooldown int
	// MinServers is the floor no donor shard is drained below. Default 1.
	MinServers int
	// MinRequests is the minimum windowed load of the hot shard before any
	// migration is considered, so an almost-idle fleet is left alone.
	// Default WindowSteps (an average of one request per step).
	MinRequests int

	lastT   int
	planned bool
}

// Window implements Rebalancer.
func (p *Threshold) Window() int {
	if p.WindowSteps < 1 {
		return DefaultRebalanceWindow
	}
	return p.WindowSteps
}

func (p *Threshold) ratio() float64 {
	if p.Ratio <= 1 {
		return 2
	}
	return p.Ratio
}

func (p *Threshold) cooldown() int {
	if p.Cooldown < 1 {
		return p.Window()
	}
	return p.Cooldown
}

func (p *Threshold) minServers() int {
	if p.MinServers < 1 {
		return 1
	}
	return p.MinServers
}

func (p *Threshold) minRequests() int {
	if p.MinRequests < 1 {
		return p.Window()
	}
	return p.MinRequests
}

// Plan implements Rebalancer: find the hottest shard, pick its
// lighter-loaded neighbor that can still donate, and migrate one server in
// when the skew clears the threshold.
func (p *Threshold) Plan(v LoadView) *Migration {
	if p.planned && v.T-p.lastT < p.cooldown() {
		return nil
	}
	hot := 0
	for i, l := range v.Load {
		if l > v.Load[hot] {
			hot = i
		}
	}
	if v.Load[hot] < p.minRequests() {
		return nil
	}
	donor := -1
	for _, d := range []int{hot - 1, hot + 1} {
		if d < 0 || d >= len(v.Ks) || v.Ks[d] <= p.minServers() {
			continue
		}
		if donor == -1 || v.Load[d] < v.Load[donor] {
			donor = d
		}
	}
	if donor == -1 {
		return nil
	}
	if float64(v.Load[hot]) < p.ratio()*float64(v.Load[donor]+1) {
		return nil
	}
	p.lastT, p.planned = v.T, true
	return &Migration{From: donor, To: hot}
}

// SetRebalancer installs (or, with nil, removes) the rebalancing policy.
// The sliding load window restarts empty. Like every Router method it must
// be called from the driving goroutine, between steps.
func (r *Router) SetRebalancer(rb Rebalancer) {
	r.rb = rb
	r.win = nil
	if rb != nil {
		w := rb.Window()
		if w < 1 {
			w = 1
		}
		r.win = newLoadWindow(w, len(r.sess))
	}
}

// Rebalances returns the number of migrations applied since the router was
// created or restored (the count is part of the snapshot, so it survives a
// kill-and-restore).
func (r *Router) Rebalances() int { return r.rebalances }

// LastRebalance returns the migration applied by the most recent Step, or
// nil if that step left the layout alone. The returned event is immutable.
func (r *Router) LastRebalance() *RebalanceEvent { return r.lastReb }

// autoRebalance runs the installed policy at the end of a step: feed the
// step's per-shard load into the sliding window and, once it is full, apply
// whatever the policy plans. A migration resets the window — the loads
// gathered under the old layout would double-trigger under the new one.
func (r *Router) autoRebalance() error {
	r.win.push(r.last)
	if !r.win.full() {
		return nil
	}
	m := r.rb.Plan(LoadView{
		T:         r.steps,
		Window:    r.win.filled,
		Load:      append([]int(nil), r.win.sum...),
		Ks:        r.Ks(),
		Partition: append([]float64(nil), r.part...),
	})
	if m == nil {
		return nil
	}
	if err := r.Rebalance(*m); err != nil {
		return fmt.Errorf("rebalance %d→%d: %w", m.From, m.To, err)
	}
	r.win.reset()
	return nil
}

// Rebalance applies one migration now: the donor shard's server nearest the
// shared routing boundary switches to the recipient's session, at its
// current position. Both affected sessions are rebuilt around their new
// fleet sizes with fresh algorithm instances (reset at the current
// positions) and their accumulated counters transplanted, so fleet-wide
// totals and the snapshot/restore invariant are unaffected.
//
// The receiver is validated before anything is touched; an invalid
// migration returns an error and leaves the router unchanged.
func (r *Router) Rebalance(m Migration) error {
	if r.err != nil {
		return r.err
	}
	if r.finished {
		return ErrFinished
	}
	n := len(r.sess)
	if m.From < 0 || m.From >= n || m.To < 0 || m.To >= n {
		return fmt.Errorf("shard: migration %d→%d out of range for %d shards", m.From, m.To, n)
	}
	if d := m.To - m.From; d != 1 && d != -1 {
		return fmt.Errorf("shard: migration %d→%d is not between neighboring shards", m.From, m.To)
	}
	if r.ks[m.From] <= 1 {
		return fmt.Errorf("shard: shard %d has %d server(s) and cannot donate", m.From, r.ks[m.From])
	}

	// The donated server is the donor's server nearest the shared boundary:
	// it is the cheapest to fold into the recipient's region and — after a
	// hotspot drifted across that boundary — typically already sits next to
	// the demand it is being sent to serve.
	boundary := r.part[min(m.From, m.To)]
	fromPos := r.sess[m.From].Positions()
	toPos := r.sess[m.To].Positions()
	j := nearestAxis0(fromPos, boundary)
	migrant := fromPos[j]
	newFrom := append(fromPos[:j:j], fromPos[j+1:]...)
	newTo := append(toPos, migrant)

	fromCfg := r.derivedConfig(r.ks[m.From] - 1)
	toCfg := r.derivedConfig(r.ks[m.To] + 1)
	fs, err := engine.NewSessionFrom(fromCfg, newFrom, r.newAlg(), r.shardOptions(m.From), r.sess[m.From].Carry())
	if err != nil {
		return fmt.Errorf("shard %d: rebuild after migration: %w", m.From, err)
	}
	ts, err := engine.NewSessionFrom(toCfg, newTo, r.newAlg(), r.shardOptions(m.To), r.sess[m.To].Carry())
	if err != nil {
		return fmt.Errorf("shard %d: rebuild after migration: %w", m.To, err)
	}

	r.sess[m.From], r.sess[m.To] = fs, ts
	r.ks[m.From]--
	r.ks[m.To]++
	r.reindex()
	r.rebalances++
	r.lastReb = &RebalanceEvent{
		T:      r.steps,
		From:   m.From,
		To:     m.To,
		Server: migrant.Clone(),
		Ks:     r.Ks(),
	}
	return nil
}

// nearestAxis0 returns the index of the position closest to x on axis 0.
func nearestAxis0(pos []geom.Point, x float64) int {
	best, bestD := 0, math.Inf(1)
	for j, p := range pos {
		if d := math.Abs(p[0] - x); d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

// loadWindow is the router's sliding per-shard load aggregation: a ring of
// the last size steps' routed counts plus their running per-shard sums.
type loadWindow struct {
	size   int
	ring   [][]int
	sum    []int
	next   int
	filled int
}

func newLoadWindow(size, shards int) *loadWindow {
	w := &loadWindow{
		size: size,
		ring: make([][]int, size),
		sum:  make([]int, shards),
	}
	for i := range w.ring {
		w.ring[i] = make([]int, shards)
	}
	return w
}

func (w *loadWindow) push(stats []StepStat) {
	slot := w.ring[w.next]
	for i := range slot {
		w.sum[i] -= slot[i]
		slot[i] = stats[i].Routed
		w.sum[i] += slot[i]
	}
	w.next = (w.next + 1) % w.size
	if w.filled < w.size {
		w.filled++
	}
}

func (w *loadWindow) full() bool { return w.filled == w.size }

func (w *loadWindow) reset() {
	for i := range w.ring {
		for j := range w.ring[i] {
			w.ring[i][j] = 0
		}
	}
	for i := range w.sum {
		w.sum[i] = 0
	}
	w.next, w.filled = 0, 0
}
