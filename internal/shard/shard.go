// Package shard is the multi-region fleet layer: it partitions the metric
// space into contiguous regions along axis 0 (core.Partition) and serves
// each region with its own independent engine.Session — one fleet of
// Config.K servers per shard. A Router routes every incoming request to
// its region's session, steps all shards concurrently (the per-shard work
// is independent, so this is real within-step parallelism via
// engine.StepAll), and aggregates the per-shard costs, counters, and
// positions into fleet-wide totals.
//
// Every global step steps every shard — possibly with an empty batch — so
// all shard sessions share the same step counter and a combined snapshot is
// coherent: Router.Snapshot packs the per-shard engine snapshots plus the
// router's own counters into one document, and Restore rejects a layout
// (partition, shard count, per-shard config) that differs from the one the
// snapshot was taken under. Per shard, a killed-and-resumed run finishes
// byte-identical to the uninterrupted run, inheriting the engine's
// checkpoint guarantees.
package shard

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// Router owns one engine session per shard and routes request batches to
// them by position. It intentionally mirrors the engine.Session surface
// (Step, T, Cost, Positions, Snapshot, Finish), so the HTTP front-end can
// drive either interchangeably.
//
// Router methods are not safe for concurrent use; like a Session it is
// driven by one goroutine (the concurrency is inside Step, across shards).
type Router struct {
	cfg  core.Config
	part core.Partition
	k    int // servers per shard
	name string
	opts engine.Options
	sess []*engine.Session
	obs  []engine.Observer

	// Merged per-step views, concatenated across shards: shard i owns the
	// server slots [i*k, (i+1)*k). The per-shard capture observers write
	// disjoint ranges, so the concurrent step goroutines never collide.
	prev, pos []geom.Point
	last      []StepStat
	routed    [][]geom.Point
	requests  []int // cumulative requests routed per shard

	steps    int
	err      error
	finished bool
	res      *engine.Result
	shardRes []*engine.Result
}

// StepStat is one shard's share of a single global step.
type StepStat struct {
	// Routed is how many of the step's requests fell into the shard.
	Routed int
	// Cost is the cost the shard's session charged for the step.
	Cost core.Cost
	// Moved is the shard's largest single-server movement of the step.
	Moved float64
	// Clamped counts the shard's cap-clamped server moves of the step.
	Clamped int
}

// State is one shard's live cumulative counters, served by GET /state.
type State struct {
	// Shard is the region index.
	Shard int
	// Requests is the cumulative number of requests routed to the shard.
	Requests int
	// Cost is the shard session's accumulated cost.
	Cost core.Cost
	// Clamped is the shard's cumulative cap-enforced server-moves.
	Clamped int
	// Positions holds the shard's current server positions (clones).
	Positions []geom.Point
}

// New builds a router over cfg.Partition.Shards() fresh sessions. starts
// holds one fleet layout per shard (cfg.Servers() positions each), and
// newAlg constructs one independent algorithm instance per shard — shards
// must not share mutable controller state. Observers in opts are attached
// at the router level: they see one merged StepInfo per global step
// (concatenated positions, summed cost, max movement), not per-shard
// events.
func New(cfg core.Config, starts [][]geom.Point, newAlg func() core.FleetAlgorithm, opts engine.Options) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Partition.Shards()
	if len(starts) != n {
		return nil, fmt.Errorf("shard: %d start fleets for %d shards", len(starts), n)
	}
	r, err := newRouter(cfg, opts)
	if err != nil {
		return nil, err
	}
	for i := range r.sess {
		s, err := engine.NewSession(cfg, starts[i], newAlg(), r.shardOptions(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.sess[i] = s
	}
	r.begin()
	return r, nil
}

// newRouter allocates the router shell shared by New and Restore: buffers
// sized for n shards of k servers, with the sessions still unset.
func newRouter(cfg core.Config, opts engine.Options) (*Router, error) {
	n, k := cfg.Partition.Shards(), cfg.Servers()
	r := &Router{
		cfg:      cfg,
		part:     cfg.Partition,
		k:        k,
		opts:     opts,
		obs:      opts.Observers,
		sess:     make([]*engine.Session, n),
		prev:     make([]geom.Point, n*k),
		pos:      make([]geom.Point, n*k),
		last:     make([]StepStat, n),
		routed:   make([][]geom.Point, n),
		requests: make([]int, n),
	}
	return r, nil
}

// shardOptions is the per-shard engine options: the router's cap mode and
// tolerance, plus the capture observer that copies the shard's step outcome
// into the router's merged buffers.
func (r *Router) shardOptions(i int) engine.Options {
	return engine.Options{
		Mode:      r.opts.Mode,
		Tol:       r.opts.Tol,
		Observers: []engine.Observer{r.capture(i)},
	}
}

// capture returns shard i's internal observer: it records the shard's step
// stats and copies the pre/post positions into the router's concatenated
// buffers. It runs inside the shard's step goroutine but touches only
// shard-i-owned state.
func (r *Router) capture(i int) engine.Observer {
	return engine.Func(func(info engine.StepInfo) {
		r.last[i] = StepStat{
			Routed:  len(info.Requests),
			Cost:    info.Cost,
			Moved:   info.Moved,
			Clamped: info.Clamped,
		}
		lo := i * r.k
		for j := range info.Pos {
			r.prev[lo+j] = copyPoint(r.prev[lo+j], info.Prev[j])
			r.pos[lo+j] = copyPoint(r.pos[lo+j], info.Pos[j])
		}
	})
}

// begin announces the run to the router-level observers with the merged
// start layout.
func (r *Router) begin() {
	r.name = fmt.Sprintf("%s×%d", r.sess[0].Algorithm(), len(r.sess))
	if len(r.obs) == 0 {
		return
	}
	starts := r.Positions()
	for _, o := range r.obs {
		if b, ok := o.(engine.BeginObserver); ok {
			b.Begin(r.cfg, starts, r.name)
		}
	}
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.sess) }

// Partition returns the shard layout the router routes with.
func (r *Router) Partition() core.Partition { return r.part }

// T returns the number of global steps fed so far (every shard session is
// at the same step).
func (r *Router) T() int { return r.steps }

// Algorithm returns the router's reported name: the per-shard algorithm
// name tagged with the shard count.
func (r *Router) Algorithm() string { return r.name }

// Cost returns the fleet-wide accumulated cost: the sum over shards.
func (r *Router) Cost() core.Cost {
	var c core.Cost
	for _, s := range r.sess {
		c = c.Add(s.Cost())
	}
	return c
}

// Clamped returns the fleet-wide count of cap-enforced server-moves.
func (r *Router) Clamped() int {
	n := 0
	for _, s := range r.sess {
		n += s.Clamped()
	}
	return n
}

// Positions returns a copy of every server position, concatenated in shard
// order (shard i's servers occupy [i*K, (i+1)*K)).
func (r *Router) Positions() []geom.Point {
	out := make([]geom.Point, 0, len(r.sess)*r.k)
	for _, s := range r.sess {
		out = append(out, s.Positions()...)
	}
	return out
}

// LastSteps returns each shard's share of the most recent global step. The
// returned slice is valid until the next Step.
func (r *Router) LastSteps() []StepStat { return r.last }

// States returns every shard's live cumulative counters.
func (r *Router) States() []State {
	out := make([]State, len(r.sess))
	for i, s := range r.sess {
		out[i] = State{
			Shard:     i,
			Requests:  r.requests[i],
			Cost:      s.Cost(),
			Clamped:   s.Clamped(),
			Positions: s.Positions(),
		}
	}
	return out
}

// Route splits a batch by region, reusing the router's internal buckets.
// The returned slices alias the buckets and are valid until the next call.
func (r *Router) Route(requests []geom.Point) [][]geom.Point {
	for i := range r.routed {
		r.routed[i] = r.routed[i][:0]
	}
	for _, v := range requests {
		i := r.part.ShardOfPoint(v)
		r.routed[i] = append(r.routed[i], v)
	}
	return r.routed
}

// Step routes one global step's batch to the shards and steps every shard
// concurrently (one goroutine per shard, engine.StepAll); a shard that
// receives no requests steps with an empty batch so all sessions stay on
// the same step counter. After the barrier the router merges the per-shard
// outcomes into one StepInfo and notifies its observers.
//
// Errors raised by any shard are sticky, exactly like a session's
// post-move errors: the other shards have already advanced, so the router
// refuses to compute from inconsistent state.
func (r *Router) Step(requests []geom.Point) error {
	if r.err != nil {
		return r.err
	}
	if r.finished {
		return engine.ErrFinished
	}
	for i, v := range requests {
		if v.Dim() != r.cfg.Dim {
			return fmt.Errorf("shard: request %d in step %d has dim %d, want %d", i, r.steps, v.Dim(), r.cfg.Dim)
		}
		if !v.IsFinite() {
			return fmt.Errorf("shard: request %d in step %d is not finite: %v", i, r.steps, v)
		}
	}
	routed := r.Route(requests)
	if err := engine.StepAll(r.sess, routed); err != nil {
		r.err = fmt.Errorf("shard: %w", err)
		return r.err
	}
	t := r.steps
	r.steps++
	info := engine.StepInfo{
		T:        t,
		Requests: requests,
		Prev:     r.prev,
		Pos:      r.pos,
	}
	for i, st := range r.last {
		r.requests[i] += st.Routed
		info.Cost = info.Cost.Add(st.Cost)
		info.Clamped += st.Clamped
		if st.Moved > info.Moved {
			info.Moved = st.Moved
		}
	}
	for _, o := range r.obs {
		o.Observe(info)
	}
	return nil
}

// ErrFinished mirrors engine.ErrFinished for router callers.
var ErrFinished = engine.ErrFinished

// Finish closes every shard session and returns the aggregated fleet
// result: summed costs and clamp counters, the max movement, and the final
// positions concatenated in shard order. Per-shard results stay available
// via ShardResults.
func (r *Router) Finish() *engine.Result {
	if r.finished {
		res := *r.res
		return &res
	}
	r.finished = true
	r.shardRes = make([]*engine.Result, len(r.sess))
	agg := &engine.Result{Algorithm: r.name, Steps: r.steps}
	for i, s := range r.sess {
		sr := s.Finish()
		r.shardRes[i] = sr
		agg.Cost = agg.Cost.Add(sr.Cost)
		agg.Clamped += sr.Clamped
		if sr.MaxMove > agg.MaxMove {
			agg.MaxMove = sr.MaxMove
		}
		agg.Final = append(agg.Final, sr.Final...)
	}
	r.res = agg
	for _, o := range r.obs {
		if e, ok := o.(engine.EndObserver); ok {
			res := *agg
			e.End(&res)
		}
	}
	res := *agg
	return &res
}

// ShardResults returns the per-shard session results. It is only available
// after Finish.
func (r *Router) ShardResults() ([]*engine.Result, error) {
	if !r.finished {
		return nil, errors.New("shard: ShardResults before Finish")
	}
	return r.shardRes, nil
}

// Starts builds a default fleet layout for a sharded run: each shard's K
// servers are spread evenly across its region's extent on axis 0 (strictly
// inside it, so no server sits on a routing boundary), with the unbounded
// outer regions truncated at span beyond their finite edge. All other
// coordinates are zero. For the unsharded single-region layout the extent
// is [-span, span].
func Starts(cfg core.Config, span float64) [][]geom.Point {
	n, k := cfg.Partition.Shards(), cfg.Servers()
	out := make([][]geom.Point, n)
	for i := range out {
		lo, hi := cfg.Partition.Region(i)
		if n == 1 {
			lo, hi = -span, span
		} else if i == 0 {
			lo = hi - span
		} else if i == n-1 {
			hi = lo + span
		}
		fleet := make([]geom.Point, k)
		for j := range fleet {
			p := geom.Zero(cfg.Dim)
			p[0] = lo + (hi-lo)*float64(j+1)/float64(k+1)
			fleet[j] = p
		}
		out[i] = fleet
	}
	return out
}

// copyPoint copies src into dst's buffer, allocating only when dst cannot
// hold it.
func copyPoint(dst, src geom.Point) geom.Point {
	if len(dst) != len(src) {
		return src.Clone()
	}
	copy(dst, src)
	return dst
}
