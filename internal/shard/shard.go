// Package shard is the multi-region fleet layer: it partitions the metric
// space into contiguous regions along axis 0 (core.Partition) and serves
// each region with its own independent engine.Session — a fleet of servers
// per shard. A Router routes every incoming request to its region's
// session, steps all shards concurrently (the per-shard work is
// independent, so this is real within-step parallelism via engine.StepAll),
// and aggregates the per-shard costs, counters, and positions into
// fleet-wide totals.
//
// Shard fleet sizes start uniform (Config.K servers each, unless the caller
// hands New unequal start fleets) but need not stay that way: a pluggable
// Rebalancer (see rebalance.go) can migrate servers between neighboring
// shards when the request load skews, so a hotspot drifting across a
// region boundary is met by capacity instead of overloading one shard
// while its neighbors idle.
//
// Every global step steps every shard — possibly with an empty batch — so
// all shard sessions share the same step counter and a combined snapshot is
// coherent: Router.Snapshot packs the per-shard engine snapshots plus the
// router's own counters and the current per-shard fleet sizes into one
// document, and Restore rejects a layout (partition, shard count, base
// config) that differs from the one the snapshot was taken under. A resume
// reproduces the migrated layout, every counter, and every position exactly
// — the layout is part of the document — and without a rebalancing policy a
// killed-and-resumed run finishes byte-identical to the uninterrupted run,
// inheriting the engine's checkpoint guarantees. Rebalancer runtime state
// (the sliding load window, a policy's cooldown clock) is NOT part of the
// snapshot: the caller reinstalls the policy after Restore, so a resumed
// run's future migrations may fire at different steps than the
// uninterrupted run's would have.
package shard

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// Router owns one engine session per shard and routes request batches to
// them by position. It intentionally mirrors the engine.Session surface
// (Step, T, Cost, Positions, Snapshot, Finish), so the HTTP front-end can
// drive either interchangeably.
//
// Router methods are not safe for concurrent use; like a Session it is
// driven by one goroutine (the concurrency is inside Step, across shards).
type Router struct {
	cfg    core.Config
	part   core.Partition
	ks     []int // per-shard fleet sizes; migrations change them
	off    []int // ks prefix sums: shard i owns merged slots [off[i], off[i+1])
	name   string
	opts   engine.Options
	newAlg func() core.FleetAlgorithm
	sess   []*engine.Session
	obs    []engine.Observer

	// Merged per-step views, concatenated across shards: shard i owns the
	// server slots [off[i], off[i+1]). The per-shard capture observers
	// write disjoint ranges, so the concurrent step goroutines never
	// collide; migrations (which resize these buffers) only happen between
	// steps, on the driving goroutine.
	prev, pos []geom.Point
	last      []StepStat
	routed    [][]geom.Point
	requests  []int // cumulative requests routed per shard

	rb         Rebalancer
	win        *loadWindow
	rebalances int             // migrations applied so far
	lastReb    *RebalanceEvent // migration applied by the most recent Step, nil otherwise

	steps    int
	err      error
	finished bool
	res      *engine.Result
	shardRes []*engine.Result
}

// StepStat is one shard's share of a single global step.
type StepStat struct {
	// Routed is how many of the step's requests fell into the shard.
	Routed int
	// Cost is the cost the shard's session charged for the step.
	Cost core.Cost
	// Moved is the shard's largest single-server movement of the step.
	Moved float64
	// Clamped counts the shard's cap-clamped server moves of the step.
	Clamped int
}

// State is one shard's live cumulative counters, served by GET /state.
type State struct {
	// Shard is the region index.
	Shard int
	// Servers is the shard's current fleet size (migrations change it).
	Servers int
	// Requests is the cumulative number of requests routed to the shard.
	Requests int
	// Cost is the shard session's accumulated cost.
	Cost core.Cost
	// Clamped is the shard's cumulative cap-enforced server-moves.
	Clamped int
	// Positions holds the shard's current server positions (clones).
	Positions []geom.Point
}

// New builds a router over cfg.Partition.Shards() fresh sessions. starts
// holds one fleet layout per shard — usually cfg.Servers() positions each
// (see Starts), but the fleets may be unequal (StartsSized): shard i starts
// with len(starts[i]) servers. newAlg constructs one independent algorithm
// instance per shard — shards must not share mutable controller state — and
// is retained: a rebalancing migration rebuilds the affected shards'
// sessions with fresh instances from it. Observers in opts are attached at
// the router level: they see one merged StepInfo per global step
// (concatenated positions, summed cost, max movement), not per-shard
// events.
func New(cfg core.Config, starts [][]geom.Point, newAlg func() core.FleetAlgorithm, opts engine.Options) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Partition.Shards()
	if len(starts) != n {
		return nil, fmt.Errorf("shard: %d start fleets for %d shards", len(starts), n)
	}
	ks := make([]int, n)
	for i := range starts {
		if len(starts[i]) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no servers", i)
		}
		ks[i] = len(starts[i])
	}
	r := newRouter(cfg, ks, newAlg, opts)
	for i := range r.sess {
		s, err := engine.NewSession(r.shardConfig(i), starts[i], newAlg(), r.shardOptions(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.sess[i] = s
	}
	r.begin()
	return r, nil
}

// newRouter allocates the router shell shared by New and Restore: buffers
// sized for the given per-shard fleet sizes, with the sessions still unset.
func newRouter(cfg core.Config, ks []int, newAlg func() core.FleetAlgorithm, opts engine.Options) *Router {
	n := len(ks)
	r := &Router{
		cfg:      cfg,
		part:     cfg.Partition,
		ks:       append([]int(nil), ks...),
		off:      make([]int, n+1),
		opts:     opts,
		newAlg:   newAlg,
		obs:      opts.Observers,
		sess:     make([]*engine.Session, n),
		last:     make([]StepStat, n),
		routed:   make([][]geom.Point, n),
		requests: make([]int, n),
	}
	r.reindex()
	return r
}

// reindex recomputes the merged-buffer offsets from the current per-shard
// fleet sizes and reallocates the concatenated position buffers. Called on
// construction and after every migration; the capture observers pick the
// new offsets up on the next step.
func (r *Router) reindex() {
	total := 0
	for i, k := range r.ks {
		r.off[i] = total
		total += k
	}
	r.off[len(r.ks)] = total
	r.prev = make([]geom.Point, total)
	r.pos = make([]geom.Point, total)
}

// derivedConfig is the configuration a session with a fleet of k servers
// runs under: the router's base configuration with K swapped for k. For a
// fleet still at the base size the configuration is passed through
// untouched (preserving K=0 for single-server setups), so uniform layouts
// snapshot byte-identically to routers that predate per-shard sizes. Both
// live rebuilds (Rebalance) and restores derive configs through this one
// rule — the byte-identical kill-and-restore invariant depends on it.
func (r *Router) derivedConfig(k int) core.Config {
	c := r.cfg
	if k != c.Servers() {
		c.K = k
	}
	return c
}

// shardConfig is the configuration shard i's session currently runs under.
func (r *Router) shardConfig(i int) core.Config {
	return r.derivedConfig(r.ks[i])
}

// shardOptions is the per-shard engine options: the router's cap mode and
// tolerance, plus the capture observer that copies the shard's step outcome
// into the router's merged buffers.
func (r *Router) shardOptions(i int) engine.Options {
	return engine.Options{
		Mode:      r.opts.Mode,
		Tol:       r.opts.Tol,
		Observers: []engine.Observer{r.capture(i)},
	}
}

// capture returns shard i's internal observer: it records the shard's step
// stats and copies the pre/post positions into the router's concatenated
// buffers. It runs inside the shard's step goroutine but touches only
// shard-i-owned state — the offsets are read per step, so a migration
// (which rewrites them between steps) never skews a live write.
func (r *Router) capture(i int) engine.Observer {
	return engine.Func(func(info engine.StepInfo) {
		r.last[i] = StepStat{
			Routed:  len(info.Requests),
			Cost:    info.Cost,
			Moved:   info.Moved,
			Clamped: info.Clamped,
		}
		lo := r.off[i]
		for j := range info.Pos {
			r.prev[lo+j] = copyPoint(r.prev[lo+j], info.Prev[j])
			r.pos[lo+j] = copyPoint(r.pos[lo+j], info.Pos[j])
		}
	})
}

// begin announces the run to the router-level observers with the merged
// start layout.
func (r *Router) begin() {
	r.name = fmt.Sprintf("%s×%d", r.sess[0].Algorithm(), len(r.sess))
	if len(r.obs) == 0 {
		return
	}
	starts := r.Positions()
	for _, o := range r.obs {
		if b, ok := o.(engine.BeginObserver); ok {
			b.Begin(r.cfg, starts, r.name)
		}
	}
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.sess) }

// Partition returns the shard layout the router routes with.
func (r *Router) Partition() core.Partition { return r.part }

// Ks returns a copy of the current per-shard fleet sizes.
func (r *Router) Ks() []int { return append([]int(nil), r.ks...) }

// Servers returns the fleet-wide server count (the sum of the per-shard
// sizes; migrations preserve it).
func (r *Router) Servers() int { return r.off[len(r.ks)] }

// T returns the number of global steps fed so far (every shard session is
// at the same step).
func (r *Router) T() int { return r.steps }

// Algorithm returns the router's reported name: the per-shard algorithm
// name tagged with the shard count.
func (r *Router) Algorithm() string { return r.name }

// Cost returns the fleet-wide accumulated cost: the sum over shards.
func (r *Router) Cost() core.Cost {
	var c core.Cost
	for _, s := range r.sess {
		c = c.Add(s.Cost())
	}
	return c
}

// Clamped returns the fleet-wide count of cap-enforced server-moves.
func (r *Router) Clamped() int {
	n := 0
	for _, s := range r.sess {
		n += s.Clamped()
	}
	return n
}

// Positions returns a copy of every server position, concatenated in shard
// order (shard i's servers occupy the merged slots [off[i], off[i+1]) —
// fleet sizes may differ per shard, see Ks).
func (r *Router) Positions() []geom.Point {
	out := make([]geom.Point, 0, r.Servers())
	for _, s := range r.sess {
		out = append(out, s.Positions()...)
	}
	return out
}

// LastSteps returns each shard's share of the most recent global step. The
// returned slice is a copy the caller owns; it is never overwritten by a
// later Step.
func (r *Router) LastSteps() []StepStat {
	return append([]StepStat(nil), r.last...)
}

// States returns every shard's live cumulative counters.
func (r *Router) States() []State {
	out := make([]State, len(r.sess))
	for i, s := range r.sess {
		out[i] = State{
			Shard:     i,
			Servers:   r.ks[i],
			Requests:  r.requests[i],
			Cost:      s.Cost(),
			Clamped:   s.Clamped(),
			Positions: s.Positions(),
		}
	}
	return out
}

// Route splits a batch by region, reusing the router's internal buckets.
// The returned slices alias the buckets and are valid until the next call.
func (r *Router) Route(requests []geom.Point) [][]geom.Point {
	for i := range r.routed {
		r.routed[i] = r.routed[i][:0]
	}
	for _, v := range requests {
		i := r.part.ShardOfPoint(v)
		r.routed[i] = append(r.routed[i], v)
	}
	return r.routed
}

// Step routes one global step's batch to the shards and steps every shard
// concurrently (one goroutine per shard, engine.StepAll); a shard that
// receives no requests steps with an empty batch so all sessions stay on
// the same step counter. After the barrier the router merges the per-shard
// outcomes into one StepInfo, notifies its observers, and — when a
// Rebalancer is installed — feeds the step's load into the sliding window
// and applies the policy's migration, if it plans one.
//
// Errors raised by any shard are sticky, exactly like a session's
// post-move errors: the other shards have already advanced, so the router
// refuses to compute from inconsistent state. A failed rebalance (a policy
// planning an invalid migration, or a session rebuild failing) is sticky
// too — the layout machinery must not limp along half-applied.
func (r *Router) Step(requests []geom.Point) error {
	if r.err != nil {
		return r.err
	}
	if r.finished {
		return engine.ErrFinished
	}
	r.lastReb = nil
	for i, v := range requests {
		if v.Dim() != r.cfg.Dim {
			return fmt.Errorf("shard: request %d in step %d has dim %d, want %d", i, r.steps, v.Dim(), r.cfg.Dim)
		}
		if !v.IsFinite() {
			return fmt.Errorf("shard: request %d in step %d is not finite: %v", i, r.steps, v)
		}
	}
	routed := r.Route(requests)
	if err := engine.StepAll(r.sess, routed); err != nil {
		r.err = fmt.Errorf("shard: %w", err)
		return r.err
	}
	t := r.steps
	r.steps++
	info := engine.StepInfo{
		T:        t,
		Requests: requests,
		Prev:     r.prev,
		Pos:      r.pos,
	}
	for i, st := range r.last {
		r.requests[i] += st.Routed
		info.Cost = info.Cost.Add(st.Cost)
		info.Clamped += st.Clamped
		if st.Moved > info.Moved {
			info.Moved = st.Moved
		}
	}
	for _, o := range r.obs {
		o.Observe(info)
	}
	if r.rb != nil {
		if err := r.autoRebalance(); err != nil {
			r.err = err
			return r.err
		}
	}
	return nil
}

// ErrFinished mirrors engine.ErrFinished for router callers.
var ErrFinished = engine.ErrFinished

// Finish closes every shard session and returns the aggregated fleet
// result: summed costs and clamp counters, the max movement, and the final
// positions concatenated in shard order. Per-shard results stay available
// via ShardResults.
func (r *Router) Finish() *engine.Result {
	if r.finished {
		res := *r.res
		return &res
	}
	r.finished = true
	r.shardRes = make([]*engine.Result, len(r.sess))
	agg := &engine.Result{Algorithm: r.name, Steps: r.steps}
	for i, s := range r.sess {
		sr := s.Finish()
		r.shardRes[i] = sr
		agg.Cost = agg.Cost.Add(sr.Cost)
		agg.Clamped += sr.Clamped
		if sr.MaxMove > agg.MaxMove {
			agg.MaxMove = sr.MaxMove
		}
		agg.Final = append(agg.Final, sr.Final...)
	}
	r.res = agg
	for _, o := range r.obs {
		if e, ok := o.(engine.EndObserver); ok {
			res := *agg
			e.End(&res)
		}
	}
	res := *agg
	return &res
}

// ShardResults returns the per-shard session results. It is only available
// after Finish.
func (r *Router) ShardResults() ([]*engine.Result, error) {
	if !r.finished {
		return nil, errors.New("shard: ShardResults before Finish")
	}
	return r.shardRes, nil
}

// Starts builds the default uniform fleet layout for a sharded run: each
// shard gets cfg.Servers() servers. See StartsSized for the placement rule
// and for unequal layouts.
func Starts(cfg core.Config, span float64) [][]geom.Point {
	ks := make([]int, cfg.Partition.Shards())
	for i := range ks {
		ks[i] = cfg.Servers()
	}
	return StartsSized(cfg, span, ks)
}

// StartsSized builds a fleet layout with ks[i] servers in shard i: each
// shard's servers are spread evenly across its region's extent on axis 0
// (strictly inside it, so no server sits on a routing boundary), with the
// unbounded outer regions truncated at span beyond their finite edge. All
// other coordinates are zero. For the unsharded single-region layout the
// extent is [-span, span]. It panics when len(ks) does not match the
// partition's shard count — a layout for the wrong partition is a
// programming error, not an input.
func StartsSized(cfg core.Config, span float64, ks []int) [][]geom.Point {
	n := cfg.Partition.Shards()
	if len(ks) != n {
		panic(fmt.Sprintf("shard: StartsSized got %d fleet sizes for %d shards", len(ks), n))
	}
	out := make([][]geom.Point, n)
	for i := range out {
		lo, hi := cfg.Partition.Region(i)
		if n == 1 {
			lo, hi = -span, span
		} else if i == 0 {
			lo = hi - span
		} else if i == n-1 {
			hi = lo + span
		}
		fleet := make([]geom.Point, ks[i])
		for j := range fleet {
			p := geom.Zero(cfg.Dim)
			p[0] = lo + (hi-lo)*float64(j+1)/float64(ks[i]+1)
			fleet[j] = p
		}
		out[i] = fleet
	}
	return out
}

// copyPoint copies src into dst's buffer, allocating only when dst cannot
// hold it.
func copyPoint(dst, src geom.Point) geom.Point {
	if len(dst) != len(src) {
		return src.Clone()
	}
	copy(dst, src)
	return dst
}
