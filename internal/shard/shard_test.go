package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
)

func shardedConfig(n, k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: k, Partition: core.UniformPartition(n, 20)}
}

// spreadBatch is the deterministic test workload: r requests per step whose
// axis-0 coordinates sweep the whole partitioned interval, so every shard
// sees traffic.
func spreadBatch(t, r int) []geom.Point {
	out := make([]geom.Point, r)
	for i := range out {
		x := -19 + 38*math.Mod(0.37*float64(t*r+i)+0.11, 1.0)
		y := 5 * math.Sin(float64(t)+float64(i)*1.7)
		out[i] = geom.NewPoint(x, y)
	}
	return out
}

func newMtCK() core.FleetAlgorithm { return multi.NewMtCK() }

// TestRouterMatchesManualSharding: a router step is exactly "route the
// batch by region, step each shard's session with its share" — the
// concurrency must not change any shard's trajectory.
func TestRouterMatchesManualSharding(t *testing.T) {
	const n, k, steps = 4, 2, 60
	cfg := shardedConfig(n, k)
	starts := Starts(cfg, 5)

	r, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	manual := make([]*engine.Session, n)
	for i := range manual {
		s, err := engine.NewSession(cfg, starts[i], newMtCK(), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		manual[i] = s
	}

	for step := 0; step < steps; step++ {
		reqs := spreadBatch(step, 7)
		if err := r.Step(reqs); err != nil {
			t.Fatal(err)
		}
		buckets := make([][]geom.Point, n)
		for _, v := range reqs {
			i := cfg.Partition.ShardOfPoint(v)
			buckets[i] = append(buckets[i], v)
		}
		for i, s := range manual {
			if err := s.Step(buckets[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	if r.T() != steps {
		t.Fatalf("router T = %d, want %d", r.T(), steps)
	}
	var wantCost core.Cost
	res := r.Finish()
	shardRes, err := r.ShardResults()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range manual {
		mr := s.Finish()
		wantCost = wantCost.Add(mr.Cost)
		if !reflect.DeepEqual(shardRes[i], mr) {
			t.Fatalf("shard %d diverged from manual session:\nrouter %+v\nmanual %+v", i, shardRes[i], mr)
		}
	}
	if res.Cost != wantCost {
		t.Fatalf("aggregated cost %v != summed shard costs %v", res.Cost, wantCost)
	}
	if len(res.Final) != n*k {
		t.Fatalf("aggregated result has %d final positions, want %d", len(res.Final), n*k)
	}
}

// TestRouterSnapshotRestoreEquivalence is the shard-wise checkpoint
// invariant: kill a sharded run at any step, restore it from the combined
// snapshot, finish the stream — every shard's final session snapshot is
// byte-identical to the uninterrupted run's.
func TestRouterSnapshotRestoreEquivalence(t *testing.T) {
	const n, k, kill, total = 3, 2, 25, 50
	cfg := shardedConfig(n, k)
	starts := Starts(cfg, 5)

	full, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < kill; step++ {
		reqs := spreadBatch(step, 5)
		if err := full.Step(reqs); err != nil {
			t.Fatal(err)
		}
		if err := half.Step(reqs); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Restore(cfg, newMtCK, ck, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.T() != kill {
		t.Fatalf("resumed at T=%d, want %d", resumed.T(), kill)
	}
	for step := kill; step < total; step++ {
		reqs := spreadBatch(step, 5)
		if err := full.Step(reqs); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Step(reqs); err != nil {
			t.Fatal(err)
		}
	}

	// Compare the combined documents and each embedded shard snapshot.
	snapFull, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapResumed, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapFull, snapResumed) {
		t.Fatalf("combined snapshots differ:\n%s\nvs\n%s", snapFull, snapResumed)
	}
	var a, b struct {
		Shards []json.RawMessage `json:"shards"`
	}
	if err := json.Unmarshal(snapFull, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(snapResumed, &b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Shards {
		if !bytes.Equal(a.Shards[i], b.Shards[i]) {
			t.Fatalf("shard %d snapshot differs after resume:\n%s\nvs\n%s", i, a.Shards[i], b.Shards[i])
		}
	}
	if !reflect.DeepEqual(full.Finish(), resumed.Finish()) {
		t.Fatal("aggregated results diverged after resume")
	}
}

// TestRestoreRejectsMismatchedLayout: a combined snapshot only restores
// under the exact shard layout it was taken with.
func TestRestoreRejectsMismatchedLayout(t *testing.T) {
	cfg := shardedConfig(3, 1)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(spreadBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	ck, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	moved := cfg
	moved.Partition = core.Partition{-3, 3}
	if _, err := Restore(moved, newMtCK, ck, engine.Options{}); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("restore with moved boundaries = %v, want partition mismatch", err)
	}
	fewer := cfg
	fewer.Partition = core.UniformPartition(2, 20)
	if _, err := Restore(fewer, newMtCK, ck, engine.Options{}); err == nil {
		t.Fatal("restore with fewer shards must fail")
	}
	biggerK := cfg
	biggerK.K = 2
	if _, err := Restore(biggerK, newMtCK, ck, engine.Options{}); err == nil {
		t.Fatal("restore with a different per-shard fleet size must fail")
	}
}

// TestRouterObservers: router-level observers see one merged StepInfo per
// global step — requests counted once, costs summed across shards — so
// engine.Metrics and engine.MoveStats work unchanged on a sharded run.
func TestRouterObservers(t *testing.T) {
	const n, k, steps, perStep = 3, 2, 40, 6
	cfg := shardedConfig(n, k)
	metrics := &engine.Metrics{}
	moves := &engine.MoveStats{}
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{Observers: []engine.Observer{metrics, moves}})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		if err := r.Step(spreadBatch(step, perStep)); err != nil {
			t.Fatal(err)
		}
	}
	if metrics.Steps != steps || metrics.Requests != steps*perStep {
		t.Fatalf("metrics = %d steps / %d requests, want %d / %d", metrics.Steps, metrics.Requests, steps, steps*perStep)
	}
	// The observer accumulates (sum over shards) per step, then over steps;
	// Cost() sums per-shard running totals — same quantity, different float
	// association, so compare with a relative tolerance.
	if got, want := metrics.Cost.Total(), r.Cost().Total(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("observed cost %v != aggregated cost %v", metrics.Cost, r.Cost())
	}
	if moves.Steps != steps {
		t.Fatalf("move stats saw %d steps, want %d", moves.Steps, steps)
	}
	states := r.States()
	reqSum := 0
	for _, st := range states {
		reqSum += st.Requests
	}
	if reqSum != steps*perStep {
		t.Fatalf("per-shard request counters sum to %d, want %d", reqSum, steps*perStep)
	}
	res := r.Finish()
	if moves.MaxMove != res.MaxMove {
		t.Fatalf("move stats MaxMove %v != result MaxMove %v", moves.MaxMove, res.MaxMove)
	}
}

// TestStartsLayout: every shard's default servers start strictly inside
// their own region, so the initial layout routes to itself.
func TestStartsLayout(t *testing.T) {
	cfg := shardedConfig(4, 3)
	starts := Starts(cfg, 5)
	if len(starts) != 4 {
		t.Fatalf("got %d fleets, want 4", len(starts))
	}
	for i, fleet := range starts {
		if len(fleet) != 3 {
			t.Fatalf("shard %d has %d servers, want 3", i, len(fleet))
		}
		for j, p := range fleet {
			if got := cfg.Partition.ShardOfPoint(p); got != i {
				t.Errorf("shard %d server %d at %v routes to shard %d", i, j, p, got)
			}
		}
	}
}

// TestRouterStepValidation: malformed batches are rejected before any
// shard sees them (recoverable), and a finished router refuses to step.
func TestRouterStepValidation(t *testing.T) {
	cfg := shardedConfig(2, 1)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step([]geom.Point{geom.NewPoint(1, 2, 3)}); err == nil {
		t.Fatal("dim-3 request must be rejected")
	}
	if err := r.Step([]geom.Point{geom.NewPoint(math.NaN(), 0)}); err == nil {
		t.Fatal("non-finite request must be rejected")
	}
	if err := r.Step(spreadBatch(0, 3)); err != nil {
		t.Fatalf("valid step after rejected batches: %v", err)
	}
	if r.T() != 1 {
		t.Fatalf("T = %d, want 1 (bad batches must not consume steps)", r.T())
	}
	r.Finish()
	if err := r.Step(spreadBatch(1, 3)); err != ErrFinished {
		t.Fatalf("step after Finish = %v, want ErrFinished", err)
	}
}
