package shard

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// hotBatch puts r requests in a tight cluster around (x, 0), so one shard
// carries the whole step's load.
func hotBatch(t, r int, x float64) []geom.Point {
	out := make([]geom.Point, r)
	for i := range out {
		ang := 2 * math.Pi * float64(t*r+i) / 97
		rad := 2 + 0.5*math.Sin(float64(t*13+i*7))
		out[i] = geom.NewPoint(x+rad*math.Cos(ang), rad*math.Sin(ang))
	}
	return out
}

// driftBatch is the adversarial workload for a static layout: a tight
// hotspot sweeping axis 0 from -16 to 16 over total steps, crossing every
// boundary of the halfwidth-20 test partition.
func driftBatch(t, total, r int) []geom.Point {
	frac := float64(t) / float64(total-1)
	return hotBatch(t, r, -16+32*frac)
}

// TestRebalanceMigratesBoundaryServer: a manual migration moves exactly
// the donor's boundary-nearest server into the recipient at its current
// position, updates the layout bookkeeping, and leaves every accumulated
// total untouched.
func TestRebalanceMigratesBoundaryServer(t *testing.T) {
	cfg := shardedConfig(3, 2)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if err := r.Step(spreadBatch(step, 6)); err != nil {
			t.Fatal(err)
		}
	}
	preCost := r.Cost()
	preT := r.T()
	donorPos := r.States()[0].Positions
	boundary := cfg.Partition[0]
	want := donorPos[nearestAxis0(donorPos, boundary)]

	if err := r.Rebalance(Migration{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	if got := r.Ks(); !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Fatalf("layout after migration = %v, want [1 3 2]", got)
	}
	if r.Servers() != 6 {
		t.Fatalf("total servers = %d, want 6", r.Servers())
	}
	if r.Cost() != preCost {
		t.Fatalf("migration changed the accumulated cost: %v -> %v", preCost, r.Cost())
	}
	if r.T() != preT {
		t.Fatalf("migration changed the step counter: %d -> %d", preT, r.T())
	}
	states := r.States()
	if states[0].Servers != 1 || states[1].Servers != 3 {
		t.Fatalf("state servers = %d/%d, want 1/3", states[0].Servers, states[1].Servers)
	}
	migrated := states[1].Positions[len(states[1].Positions)-1]
	if !reflect.DeepEqual(migrated, want) {
		t.Fatalf("migrated server at %v, want the boundary-nearest donor server %v", migrated, want)
	}
	ev := r.LastRebalance()
	if ev == nil || ev.From != 0 || ev.To != 1 || ev.T != preT || !reflect.DeepEqual(ev.Ks, []int{1, 3, 2}) {
		t.Fatalf("rebalance event = %+v", ev)
	}
	if r.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", r.Rebalances())
	}

	// The router keeps serving under the new layout.
	for step := 10; step < 20; step++ {
		if err := r.Step(spreadBatch(step, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.Positions()); got != 6 {
		t.Fatalf("merged positions = %d, want 6", got)
	}
	if r.LastRebalance() != nil {
		t.Fatal("a plain step must clear LastRebalance")
	}
}

// TestRebalanceValidation: invalid migrations are refused without touching
// the router.
func TestRebalanceValidation(t *testing.T) {
	cfg := shardedConfig(3, 1)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Migration{
		{From: 0, To: 2}, // not neighbors
		{From: 1, To: 1}, // self
		{From: -1, To: 0},
		{From: 2, To: 3},
		{From: 0, To: 1}, // donor has a single server
	}
	for _, m := range cases {
		if err := r.Rebalance(m); err == nil {
			t.Fatalf("migration %+v must be refused", m)
		}
	}
	if got := r.Ks(); !reflect.DeepEqual(got, []int{1, 1, 1}) {
		t.Fatalf("refused migrations changed the layout: %v", got)
	}
	if r.Rebalances() != 0 || r.LastRebalance() != nil {
		t.Fatal("refused migrations must not be recorded")
	}
	if err := r.Step(spreadBatch(0, 4)); err != nil {
		t.Fatalf("step after refused migrations: %v", err)
	}
	r.Finish()
	if err := r.Rebalance(Migration{From: 0, To: 1}); err != ErrFinished {
		t.Fatalf("rebalance after Finish = %v, want ErrFinished", err)
	}
}

// TestRebalanceTotalsSurviveMigrations: observers and Finish aggregate the
// same totals whether or not the layout changed mid-run.
func TestRebalanceTotalsSurviveMigrations(t *testing.T) {
	const steps, perStep = 40, 6
	cfg := shardedConfig(4, 2)
	metrics := &engine.Metrics{}
	moves := &engine.MoveStats{}
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{Observers: []engine.Observer{metrics, moves}})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		if err := r.Step(spreadBatch(step, perStep)); err != nil {
			t.Fatal(err)
		}
		switch step {
		case 10:
			if err := r.Rebalance(Migration{From: 0, To: 1}); err != nil {
				t.Fatal(err)
			}
		case 25:
			if err := r.Rebalance(Migration{From: 3, To: 2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if metrics.Steps != steps || metrics.Requests != steps*perStep {
		t.Fatalf("metrics = %d steps / %d requests, want %d / %d", metrics.Steps, metrics.Requests, steps, steps*perStep)
	}
	if got, want := metrics.Cost.Total(), r.Cost().Total(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("observed cost %v != aggregated cost %v", metrics.Cost, r.Cost())
	}
	res := r.Finish()
	if res.Steps != steps {
		t.Fatalf("result steps = %d, want %d", res.Steps, steps)
	}
	if len(res.Final) != 8 {
		t.Fatalf("final positions = %d, want 8", len(res.Final))
	}
	if moves.MaxMove > res.MaxMove {
		// The carried MaxMove only grows; the merged observer can never see
		// more than the per-shard sessions accumulated.
		t.Fatalf("move stats MaxMove %v exceeds result MaxMove %v", moves.MaxMove, res.MaxMove)
	}
	shardRes, err := r.ShardResults()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	servers := 0
	for _, sr := range shardRes {
		sum += sr.Cost.Total()
		servers += len(sr.Final)
	}
	if math.Abs(sum-res.Cost.Total()) > 1e-9*(1+math.Abs(sum)) {
		t.Fatalf("shard results sum to %v, aggregate says %v", sum, res.Cost.Total())
	}
	if servers != 8 {
		t.Fatalf("shard results hold %d servers, want 8", servers)
	}
}

// TestUnequalShardsStepConcurrently drives a router whose shards have
// different fleet sizes — built that way and further skewed mid-run — and
// checks the merged views stay consistent. Run under -race this pins the
// per-shard capture offsets: the concurrent step goroutines must write
// disjoint ranges of the merged buffers even when sizes are unequal.
func TestUnequalShardsStepConcurrently(t *testing.T) {
	cfg := shardedConfig(4, 2)
	starts := StartsSized(cfg, 5, []int{1, 3, 2, 4})
	r, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for step := 0; step < 60; step++ {
		if err := r.Step(spreadBatch(step, 8)); err != nil {
			t.Fatal(err)
		}
		if step == 30 {
			if err := r.Rebalance(Migration{From: 3, To: 2}); err != nil {
				t.Fatal(err)
			}
		}
		if got := len(r.Positions()); got != total {
			t.Fatalf("step %d: merged positions = %d, want %d", step, got, total)
		}
	}
	sum := 0
	for _, st := range r.States() {
		sum += st.Servers
		if len(st.Positions) != st.Servers {
			t.Fatalf("shard %d reports %d servers but %d positions", st.Shard, st.Servers, len(st.Positions))
		}
	}
	if sum != total {
		t.Fatalf("per-shard servers sum to %d, want %d", sum, total)
	}
	if got := r.Ks(); !reflect.DeepEqual(got, []int{1, 3, 3, 3}) {
		t.Fatalf("layout = %v, want [1 3 3 3]", got)
	}
}

// TestThresholdPlan unit-tests the reference policy's decision rule.
func TestThresholdPlan(t *testing.T) {
	p := &Threshold{WindowSteps: 8}
	base := LoadView{T: 8, Window: 8, Ks: []int{2, 2, 2}, Partition: []float64{-5, 5}}

	v := base
	v.Load = []int{0, 1, 40}
	if m := p.Plan(v); m == nil || m.From != 1 || m.To != 2 {
		t.Fatalf("skewed load planned %+v, want 1→2", m)
	}
	// Cooldown: the same skew right after is left alone.
	v.T = 10
	if m := p.Plan(v); m != nil {
		t.Fatalf("plan inside cooldown = %+v, want nil", m)
	}
	// After the cooldown the donor must still have servers to give.
	v.T = 16
	v.Ks = []int{2, 1, 3}
	v.Load = []int{0, 1, 40}
	if m := p.Plan(v); m != nil {
		t.Fatalf("plan with drained neighbor = %+v, want nil (shard 0 is not adjacent)", m)
	}
	// Balanced load never migrates.
	p2 := &Threshold{WindowSteps: 8}
	v = base
	v.Load = []int{20, 21, 22}
	if m := p2.Plan(v); m != nil {
		t.Fatalf("balanced load planned %+v", m)
	}
	// An almost-idle fleet is left alone regardless of relative skew.
	v.Load = []int{0, 0, 3}
	if m := p2.Plan(v); m != nil {
		t.Fatalf("idle fleet planned %+v", m)
	}
}

// TestAutoRebalanceFollowsHotspot: with the threshold policy installed, a
// hotspot parked in one region pulls a server across the boundary once the
// window fills, and the migration is visible through LastRebalance.
func TestAutoRebalanceFollowsHotspot(t *testing.T) {
	cfg := shardedConfig(4, 2)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetRebalancer(&Threshold{WindowSteps: 8})

	var ev *RebalanceEvent
	for step := 0; step < 20 && ev == nil; step++ {
		if err := r.Step(hotBatch(step, 6, 15)); err != nil {
			t.Fatal(err)
		}
		ev = r.LastRebalance()
	}
	if ev == nil {
		t.Fatal("no migration after 20 hotspot steps")
	}
	if ev.To != 3 || ev.From != 2 {
		t.Fatalf("migration %d→%d, want 2→3 (hotspot sits in shard 3)", ev.From, ev.To)
	}
	if got := r.Ks(); !reflect.DeepEqual(got, []int{2, 2, 1, 3}) {
		t.Fatalf("layout = %v, want [2 2 1 3]", got)
	}
	if r.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", r.Rebalances())
	}
}

// TestMigratedLayoutSurvivesRestore is the layout-in-checkpoint invariant:
// kill a run after the policy migrated a server, restore from the combined
// snapshot, finish the stream — the resumed run reproduces the migrated
// layout and every shard snapshot byte-identically.
func TestMigratedLayoutSurvivesRestore(t *testing.T) {
	const kill, total = 20, 40
	cfg := shardedConfig(4, 2)
	policy := func() Rebalancer { return &Threshold{WindowSteps: 8} }

	// The workload is hot in shard 3 long enough for exactly one
	// migration, then goes idle so neither the uninterrupted run nor the
	// resumed one (whose policy restarts with a fresh window) migrates
	// again — keeping both trajectories deterministic and comparable.
	batch := func(step int) []geom.Point {
		if step < 12 {
			return hotBatch(step, 6, 15)
		}
		return nil
	}

	full, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full.SetRebalancer(policy())
	half, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	half.SetRebalancer(policy())

	for step := 0; step < kill; step++ {
		if err := full.Step(batch(step)); err != nil {
			t.Fatal(err)
		}
		if err := half.Step(batch(step)); err != nil {
			t.Fatal(err)
		}
	}
	if full.Rebalances() != 1 {
		t.Fatalf("expected exactly one migration before the kill, got %d", full.Rebalances())
	}
	ck, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Restore(cfg, newMtCK, ck, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetRebalancer(policy())
	if got := resumed.Ks(); !reflect.DeepEqual(got, full.Ks()) {
		t.Fatalf("resumed layout %v != live layout %v", got, full.Ks())
	}
	if resumed.Rebalances() != 1 {
		t.Fatalf("resumed rebalance counter = %d, want 1", resumed.Rebalances())
	}
	for step := kill; step < total; step++ {
		if err := full.Step(batch(step)); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Step(batch(step)); err != nil {
			t.Fatal(err)
		}
	}
	snapFull, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapResumed, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapFull, snapResumed) {
		t.Fatalf("combined snapshots differ after resume:\n%s\nvs\n%s", snapFull, snapResumed)
	}
	if !reflect.DeepEqual(full.Finish(), resumed.Finish()) {
		t.Fatal("aggregated results diverged after resume")
	}
}

// TestRestoreRejectsBadLayout: documents with a fleet-size list that does
// not fit the partition, or with non-positive sizes, are refused.
func TestRestoreRejectsBadLayout(t *testing.T) {
	cfg := shardedConfig(3, 2)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(spreadBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	ck, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ old, new string }{
		{`"ks":[2,2,2]`, `"ks":[2,2]`},
		{`"ks":[2,2,2]`, `"ks":[2,0,4]`},
	} {
		mangled := bytes.Replace(ck, []byte(tc.old), []byte(tc.new), 1)
		if bytes.Equal(mangled, ck) {
			t.Fatalf("snapshot does not contain %s:\n%s", tc.old, ck)
		}
		if _, err := Restore(cfg, newMtCK, mangled, engine.Options{}); err == nil {
			t.Fatalf("restore with %s must fail", tc.new)
		}
	}
}

// TestLegacySnapshotRestoresUniformLayout: documents written before dynamic
// rebalancing carry no fleet-size list; they restore uniform at Config.K.
func TestLegacySnapshotRestoresUniformLayout(t *testing.T) {
	cfg := shardedConfig(3, 2)
	r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(spreadBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	ck, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	legacy := bytes.Replace(ck, []byte(`"ks":[2,2,2],`), nil, 1)
	if bytes.Equal(legacy, ck) {
		t.Fatalf("snapshot does not carry the expected layout field:\n%s", ck)
	}
	resumed, err := Restore(cfg, newMtCK, legacy, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Ks(); !reflect.DeepEqual(got, []int{2, 2, 2}) {
		t.Fatalf("legacy restore layout = %v, want uniform [2 2 2]", got)
	}
}

// TestRebalanceReducesDriftCost is the headline win: on a busy hotspot
// drifting across every shard boundary, the threshold policy serves the
// same request stream strictly cheaper than the static layout — each
// region the hotspot enters is reinforced by servers that chased it to
// the boundary from the previous region, and the extra local capacity
// cuts the per-request serve distance for as long as the load sits there.
// (The win needs traffic heavy enough for serve cost to outweigh the
// migrated servers' extra movement: a window short enough to react within
// one region-crossing, and tens of requests per step. See
// BenchmarkRebalanceVsStatic for the tracked numbers.)
func TestRebalanceReducesDriftCost(t *testing.T) {
	const steps, perStep = 400, 24
	cfg := shardedConfig(4, 2)

	run := func(rb Rebalancer) float64 {
		r, err := New(cfg, Starts(cfg, 5), newMtCK, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rb != nil {
			r.SetRebalancer(rb)
		}
		for step := 0; step < steps; step++ {
			if err := r.Step(driftBatch(step, steps, perStep)); err != nil {
				t.Fatal(err)
			}
		}
		if rb != nil && r.Rebalances() == 0 {
			t.Fatal("the drifting hotspot triggered no migration")
		}
		return r.Cost().Total()
	}

	static := run(nil)
	rebalanced := run(&Threshold{WindowSteps: 8})
	t.Logf("drift cost: static %.1f, rebalanced %.1f (%.1f%% saved)",
		static, rebalanced, 100*(static-rebalanced)/static)
	if rebalanced >= static {
		t.Fatalf("rebalancing did not pay: static %.1f <= rebalanced %.1f", static, rebalanced)
	}
}

// TestRebalanceKZeroSnapshotRoundTrip: with a K=0 base config (the
// paper's single server per shard, unequal via StartsSized), a live
// migration and a restore derive per-shard configs by the same rule, so
// snapshots stay byte-identical across kill-and-restore.
func TestRebalanceKZeroSnapshotRoundTrip(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 0, Partition: core.UniformPartition(3, 20)}
	starts := StartsSized(cfg, 5, []int{2, 1, 1})
	full, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(cfg, starts, newMtCK, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := func(r *Router, s int) {
		t.Helper()
		if err := r.Step(spreadBatch(s, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 5; s++ {
		step(full, s)
		step(half, s)
	}
	// Shard 0 donates its second server: shard 1 lands back at the base
	// size (K passthrough), shard 0 drops below it (explicit K).
	if err := full.Rebalance(Migration{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	if err := half.Rebalance(Migration{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	for s := 5; s < 10; s++ {
		step(full, s)
		step(half, s)
	}
	ck, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(cfg, newMtCK, ck, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 10; s < 15; s++ {
		step(full, s)
		step(resumed, s)
	}
	snapFull, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapResumed, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapFull, snapResumed) {
		t.Fatalf("K=0 snapshots diverged across restore:\n%s\nvs\n%s", snapFull, snapResumed)
	}
}
