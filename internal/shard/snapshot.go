package shard

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// SnapshotVersion is the combined-snapshot format version written by
// Router.Snapshot.
const SnapshotVersion = 1

// snapshot is the serialized form of a mid-stream sharded run: the global
// configuration (including the partition — the shard layout is part of the
// document, so Restore can reject a mismatched layout before touching any
// shard), the router's own counters, the current per-shard fleet sizes,
// and one engine snapshot per shard. The per-shard documents are embedded
// verbatim, so per shard the combined checkpoint inherits the engine's
// byte-exactness guarantee.
type snapshot struct {
	Version  int         `json:"version"`
	Config   core.Config `json:"config"`
	Steps    int         `json:"steps"`
	Requests []int       `json:"requests"`
	// Ks is the live fleet layout: how many servers each shard owned when
	// the snapshot was taken (rebalancing migrations change it). Absent in
	// documents written before dynamic rebalancing, which were always
	// uniform at Config.K servers per shard.
	Ks []int `json:"ks,omitempty"`
	// Rebalances counts the migrations applied before the snapshot, so a
	// resumed run's counter continues instead of restarting.
	Rebalances int               `json:"rebalances,omitempty"`
	Shards     []json.RawMessage `json:"shards"`
}

// ErrSnapshotFinished mirrors engine.ErrSnapshotFinished for router
// callers.
var ErrSnapshotFinished = engine.ErrSnapshotFinished

// Snapshot serializes the sharded run mid-stream as one atomic document:
// the router counters, the current per-shard fleet layout, and every shard
// session's own snapshot, taken at the same global step (Step keeps all
// shards in lockstep). Feed the bytes to Restore to continue the run in
// another process — with the migrated layout reproduced exactly.
func (r *Router) Snapshot() ([]byte, error) {
	if r.finished {
		return nil, ErrSnapshotFinished
	}
	if r.err != nil {
		return nil, fmt.Errorf("shard: cannot snapshot a failed router: %w", r.err)
	}
	snap := snapshot{
		Version:    SnapshotVersion,
		Config:     r.cfg,
		Steps:      r.steps,
		Requests:   append([]int(nil), r.requests...),
		Ks:         r.Ks(),
		Rebalances: r.rebalances,
		Shards:     make([]json.RawMessage, len(r.sess)),
	}
	for i, s := range r.sess {
		b, err := s.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		snap.Shards[i] = b
	}
	return json.Marshal(&snap)
}

// Restore reopens a sharded run from bytes produced by Router.Snapshot.
// The caller passes the same base configuration the run was taken under —
// including the partition — and a factory for fresh per-shard algorithm
// instances; a snapshot whose shard layout (partition boundaries, shard
// count, or base configuration) disagrees is rejected as a whole rather
// than restoring a subset of shards against the wrong regions. The live
// per-shard fleet sizes come from the document itself, so a layout changed
// by rebalancing migrations resumes exactly as it stood (legacy documents
// without the layout restore uniform at Config.K). Each shard session is
// restored through engine.Restore, so positions, costs, step counters, and
// algorithm state continue exactly; observers in opts see only the steps
// fed after the restore.
func Restore(cfg core.Config, newAlg func() core.FleetAlgorithm, data []byte, opts engine.Options) (*Router, error) {
	var snap snapshot
	//moblint:rawdecode version-gated legacy snapshot compatibility: pre-layout documents restore at uniform Config.K
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("shard: bad snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("shard: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Partition.Equal(snap.Config.Partition) {
		return nil, fmt.Errorf("shard: snapshot was taken under partition %v, restore requested %v", snap.Config.Partition, cfg.Partition)
	}
	// The per-shard sessions run under derived configurations (K swapped
	// for the shard's live size), so the base configuration must be checked
	// here — engine.Restore can no longer catch a base-K mismatch once the
	// layout travels in the document. K=0 and K=1 both mean one server.
	if a, b := canonicalK(cfg), canonicalK(snap.Config); !a.Equal(b) {
		return nil, fmt.Errorf("shard: snapshot was taken under config %+v, restore requested %+v", snap.Config, cfg)
	}
	n := cfg.Partition.Shards()
	if len(snap.Shards) != n {
		return nil, fmt.Errorf("shard: snapshot has %d shards for a %d-shard partition", len(snap.Shards), n)
	}
	if len(snap.Requests) != n {
		return nil, fmt.Errorf("shard: snapshot has %d request counters for %d shards", len(snap.Requests), n)
	}
	if snap.Steps < 0 {
		return nil, errors.New("shard: snapshot has a negative step counter")
	}
	ks := snap.Ks
	if ks == nil {
		// Legacy document: the layout was always uniform.
		ks = make([]int, n)
		for i := range ks {
			ks[i] = cfg.Servers()
		}
	}
	if len(ks) != n {
		return nil, fmt.Errorf("shard: snapshot has %d fleet sizes for %d shards", len(ks), n)
	}
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("shard: snapshot gives shard %d fleet size %d", i, k)
		}
	}
	r := newRouter(cfg, ks, newAlg, opts)
	for i, sb := range snap.Shards {
		s, err := engine.Restore(r.shardConfig(i), newAlg(), sb, r.shardOptions(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.T() != snap.Steps {
			return nil, fmt.Errorf("shard %d: snapshot at step %d, router at step %d", i, s.T(), snap.Steps)
		}
		r.sess[i] = s
	}
	r.steps = snap.Steps
	r.rebalances = snap.Rebalances
	copy(r.requests, snap.Requests)
	r.begin()
	return r, nil
}

// canonicalK normalizes the K=0 ≡ K=1 freedom for base-config comparison.
func canonicalK(c core.Config) core.Config {
	c.K = c.Servers()
	return c
}

// PackSnapshot assembles a combined snapshot document with exactly the
// shape Router.Snapshot writes, from parts collected elsewhere — the hook
// the cluster coordinator uses to serve GET /snapshot by packing the
// per-shard snapshots it fetched from its workers. Because the shapes
// match, a fleet run can be scaled back down: feed the packed document to
// Restore and the whole cluster continues inside one process.
func PackSnapshot(cfg core.Config, steps int, requests []int, ks []int, rebalances int, shards []json.RawMessage) ([]byte, error) {
	n := cfg.Partition.Shards()
	if len(shards) != n {
		return nil, fmt.Errorf("shard: pack: %d shard documents for %d shards", len(shards), n)
	}
	if len(requests) != n {
		return nil, fmt.Errorf("shard: pack: %d request counters for %d shards", len(requests), n)
	}
	if len(ks) != n {
		return nil, fmt.Errorf("shard: pack: %d fleet sizes for %d shards", len(ks), n)
	}
	if steps < 0 {
		return nil, errors.New("shard: pack: negative step counter")
	}
	return json.Marshal(&snapshot{
		Version:    SnapshotVersion,
		Config:     cfg,
		Steps:      steps,
		Requests:   append([]int(nil), requests...),
		Ks:         append([]int(nil), ks...),
		Rebalances: rebalances,
		Shards:     shards,
	})
}
