// Fixture for the nodeterminism analyzer's scope: the package is NOT one
// of the deterministic packages, so wall-clock reads and the auto-seeded
// global source are fine here and nothing is reported.
package webui

import (
	"math/rand/v2"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano()
}

func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}
