// Fixture for the strictdecode analyzer: raw encoding/json decodes are
// flagged unless a //moblint:rawdecode directive with a reason covers
// them.
package strictdecode

import (
	"bytes"
	"encoding/json"
)

type doc struct {
	Name string `json:"name"`
}

func rawUnmarshal(data []byte) (doc, error) {
	var d doc
	err := json.Unmarshal(data, &d) // want `json\.Unmarshal on possibly-external bytes: decode through wire\.UnmarshalStrict`
	return d, err
}

func rawDecoder(data []byte) (doc, error) {
	var d doc
	dec := json.NewDecoder(bytes.NewReader(data))
	err := dec.Decode(&d) // want `\(\*json\.Decoder\)\.Decode on possibly-external bytes`
	return d, err
}

func suppressedTrailing(data []byte) (doc, error) {
	var d doc
	err := json.Unmarshal(data, &d) //moblint:rawdecode fixture: deliberate lenient decode
	return d, err
}

func suppressedAbove(data []byte) (doc, error) {
	var d doc
	//moblint:rawdecode fixture: deliberate lenient decode
	err := json.Unmarshal(data, &d)
	return d, err
}

func reasonlessDirective(data []byte) (doc, error) {
	var d doc
	//moblint:rawdecode
	// want `moblint:rawdecode directive needs a reason`
	err := json.Unmarshal(data, &d) // want `json\.Unmarshal on possibly-external bytes`
	return d, err
}

// marshalIsFine shows the encode direction is out of scope.
func marshalIsFine(d doc) ([]byte, error) {
	return json.Marshal(d)
}
