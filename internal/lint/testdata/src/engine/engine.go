// Fixture for the nodeterminism analyzer: the package is named engine, so
// it falls inside the default deterministic-package scope.
package engine

import (
	"math/rand/v2"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package engine`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since in deterministic package engine`
}

func globalRand() float64 {
	return rand.Float64() // want `math/rand/v2\.Float64 draws from the auto-seeded global source`
}

// seededRand constructs an explicitly seeded generator: allowed.
func seededRand(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return r.Float64()
}

// suppressedClock documents a deliberate wall-clock read.
func suppressedClock() int64 {
	//moblint:nondeterminism fixture: diagnostics-only timestamp outside the contract
	return time.Now().UnixNano()
}
