package engine

import (
	"math/rand" // want `legacy math/rand in deterministic package engine`
)

func legacyDraw() float64 {
	return rand.Float64()
}
