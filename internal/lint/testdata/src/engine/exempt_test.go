package engine

import "time"

// Test files are exempt from the determinism contract: this time.Now
// produces no diagnostic.
func deadline() time.Time {
	return time.Now().Add(5 * time.Second)
}
