// Fixture for the hotpath analyzer: //moblint:hotpath functions may not
// call known-allocating APIs; unannotated functions are unconstrained.
package hotpath

import (
	"errors"
	"fmt"
)

// encodeLoud is annotated and full of allocations.
//
//moblint:hotpath
func encodeLoud(dst []byte, id int64, names []string) ([]byte, error) {
	for _, name := range names {
		if name == "" {
			return nil, errors.New("empty name") // want `errors\.New allocates per iteration in hotpath function encodeLoud`
		}
		label := "name=" + name // want `string concatenation allocates in hotpath function encodeLoud`
		dst = append(dst, label...)
	}
	msg := fmt.Sprintf("id=%d", id) // want `fmt\.Sprintf allocates in hotpath function encodeLoud`
	return append(dst, msg...), nil
}

// concatAssign is annotated; += on a string allocates every time.
//
//moblint:hotpath
func concatAssign(parts []string) string {
	var out string
	for _, p := range parts {
		out += p // want `string concatenation allocates in hotpath function concatAssign`
	}
	return out
}

// encodeQuiet is annotated and clean: appends into the caller's buffer,
// returns a package-level sentinel.
var errEmpty = errors.New("hotpath: empty input")

//moblint:hotpath
func encodeQuiet(dst []byte, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return dst, errEmpty
	}
	dst = append(dst, byte(len(payload)))
	return append(dst, payload...), nil
}

// unannotated is not a hotpath function: fmt and concatenation are fine.
func unannotated(id int64) string {
	return fmt.Sprintf("id=%d", id) + "!"
}

// coldSentinel: errors.New outside any loop is allowed even in a hotpath
// function (a once-per-call cold error, not a per-iteration allocation).
//
//moblint:hotpath
func coldSentinel(ok bool) error {
	if !ok {
		return errors.New("not ok")
	}
	return nil
}
