// Fixture for the atomicwrite analyzer: an os.Rename finalization must be
// preceded by (*os.File).Sync in the same function, or carry a
// //moblint:unsyncedrename directive.
package atomicwrite

import "os"

// unsyncedFinalize is the bug the analyzer exists for: os.WriteFile does
// not fsync, so the renamed file can be zero-length after a crash.
func unsyncedFinalize(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `os\.Rename finalizes a file no \(\*os\.File\)\.Sync precedes`
}

// syncedFinalize is the correct idiom: write, fsync, close, rename.
func syncedFinalize(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// suppressed documents a rename that needs no durability.
func suppressed(old, new string) error {
	//moblint:unsyncedrename fixture: moving a scratch directory, durability not required
	return os.Rename(old, new)
}

// reasonless shows a directive without a justification is itself flagged
// and suppresses nothing.
func reasonless(old, new string) error {
	//moblint:unsyncedrename
	// want `moblint:unsyncedrename directive needs a reason`
	return os.Rename(old, new) // want `os\.Rename finalizes a file`
}
