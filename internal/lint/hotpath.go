package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// HotPathAnalyzer guards the zero-alloc loops: a function whose doc
// comment carries //moblint:hotpath (the pooled step encode/decode loops
// the benchmarks hold at 0 allocs/op) may not call known-allocating APIs.
// The alloc-budget benchmarks catch a regression on the paths they
// execute; the annotation catches it on every path, at compile time,
// before a reviewer has to re-run them.
//
// Inside a hotpath function the analyzer flags:
//
//   - any call into package fmt (every fmt call allocates for its
//     ...any boxing, even on the error path);
//   - errors.New inside a loop body (a fixed sentinel belongs outside
//     the loop as a package-level var);
//   - non-constant string concatenation (+ or +=).
//
// Escape-dependent allocations (append on an escaping slice, closure
// captures) remain the benchmarks' job: deciding them statically needs
// the compiler's escape analysis, not a syntax check. A function that
// needs one cold formatted error should return a sentinel instead, or
// drop the annotation and let the alloc benchmark police it.
var HotPathAnalyzer = &analysis.Analyzer{
	Name:     "hotpath",
	Doc:      "forbids known-allocating calls in //moblint:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPath,
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !funcHasDirective(decl, "hotpath") {
			return
		}
		checkHotPath(pass, decl)
	})
	return nil, nil
}

func checkHotPath(pass *analysis.Pass, decl *ast.FuncDecl) {
	// Loop extents, for the errors.New-in-loop rule.
	type span struct{ lo, hi ast.Node }
	var loops []span
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, span{n, n})
		}
		return true
	})
	inLoop := func(n ast.Node) bool {
		for _, l := range loops {
			if n.Pos() >= l.lo.Pos() && n.End() <= l.hi.End() {
				return true
			}
		}
		return false
	}
	isString := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsString != 0
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if !ok {
				return true
			}
			full := fn.FullName()
			switch {
			case strings.HasPrefix(full, "fmt."):
				pass.Reportf(n.Pos(), "%s allocates in hotpath function %s", full, decl.Name.Name)
			case full == "errors.New" && inLoop(n):
				pass.Reportf(n.Pos(), "errors.New allocates per iteration in hotpath function %s: hoist the sentinel to a package-level var", decl.Name.Name)
			}
		case *ast.BinaryExpr:
			// A concatenation of constants folds at compile time; only flag
			// concatenation the runtime must perform.
			if n.Op == token.ADD && isString(n.X) && pass.TypesInfo.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function %s", decl.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function %s", decl.Name.Name)
			}
		}
		return true
	})
}
