// Package lint holds the repository's custom go/analysis analyzers: the
// static side of the correctness contracts the test suite can only probe
// pointwise. Each analyzer encodes one invariant the design depends on:
//
//   - strictdecode: bytes that cross a process boundary (wire frames,
//     checkpoints, lab summaries, trace files, HTTP/SSE bodies) must be
//     decoded through wire.UnmarshalStrict, never raw encoding/json.
//   - atomicwrite: an os.Rename that finalizes a persisted artifact must
//     be preceded by (*os.File).Sync on the temp file, or the artifact can
//     be zero-length after a crash despite the "atomic" rename.
//   - nodeterminism: the deterministic packages (engine, core, shard,
//     adversary, workload, xrand, lab) may not read the wall clock or draw
//     from legacy/unseeded rand sources — the lab's byte-determinism
//     contract, enforced at compile time instead of by a rerun-and-diff.
//   - hotpath: functions annotated //moblint:hotpath (the pooled step
//     loops benchmarked at 0 allocs/op) may not call known-allocating
//     APIs.
//
// A deliberate violation is suppressed in place with a directive comment
// on the flagged line or the line above it:
//
//	//moblint:<check> <reason>
//
// where <check> is rawdecode, unsyncedrename, or nondeterminism, and
// <reason> is mandatory free text justifying the exception (an empty
// reason is itself a diagnostic). //moblint:hotpath is the opposite kind
// of directive: an opt-in annotation on a function's doc comment that
// turns the hotpath analyzer on for that function.
//
// The analyzers are packaged by cmd/moblint, which runs standalone
// (moblint ./...) or as a vet tool (go vet -vettool=$(which moblint)),
// and they are exercised against fixtures under testdata/ by the
// linttest harness.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full moblint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		StrictDecodeAnalyzer,
		AtomicWriteAnalyzer,
		NoDeterminismAnalyzer,
		HotPathAnalyzer,
	}
}

// directivePrefix opens every moblint control comment.
const directivePrefix = "//moblint:"

// suppressions indexes the //moblint:<check> directives of one pass for a
// single check name: the set of file:line positions they cover. A
// directive covers its own line and the line below it, so it can trail
// the flagged call or sit on its own line above.
type suppressions struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> directive line
}

// gatherSuppressions scans every comment in the pass for directives named
// check. A directive with an empty reason is reported as a diagnostic on
// the spot: a suppression without a justification is a contract violation
// of its own.
func gatherSuppressions(pass *analysis.Pass, check string) *suppressions {
	s := &suppressions{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	want := directivePrefix + check
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, want) {
					continue
				}
				rest := c.Text[len(want):]
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // a longer check name, e.g. rawdecodeX
				}
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(c.Pos(), "moblint:%s directive needs a reason", check)
					continue
				}
				pos := s.fset.Position(c.Pos())
				if s.lines[pos.Filename] == nil {
					s.lines[pos.Filename] = make(map[int]bool)
				}
				s.lines[pos.Filename][pos.Line] = true
			}
		}
	}
	return s
}

// covers reports whether a directive covers pos: one sits on the same
// line (trailing comment) or on the line directly above.
func (s *suppressions) covers(pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.lines[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// inTestFile reports whether pos lies in a _test.go file. The contracts
// govern production code; tests decode trusted fixtures and time out on
// wall-clock deadlines freely.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// funcHasDirective reports whether decl's doc comment carries the given
// directive (e.g. //moblint:hotpath).
func funcHasDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	want := directivePrefix + name
	for _, c := range decl.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}
