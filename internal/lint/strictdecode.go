package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// StrictDecodeAnalyzer enforces the strict-decoding contract: every JSON
// decode of bytes that may originate outside the process (wire frames,
// checkpoints, lab summaries, trace files, HTTP and SSE bodies) goes
// through wire.UnmarshalStrict, which rejects unknown fields and trailing
// garbage. Raw encoding/json decodes silently drop misspelled fields — a
// torn contract the fuzz targets cannot reach from the outside.
//
// Flagged calls: encoding/json.Unmarshal and (*encoding/json.Decoder).Decode
// in non-test files. Deliberately lenient sites (the strict decoder's own
// implementation, the lenient frame-envelope peek, version-gated legacy
// checkpoint parsing) carry //moblint:rawdecode <reason>.
var StrictDecodeAnalyzer = &analysis.Analyzer{
	Name:     "strictdecode",
	Doc:      "flags raw encoding/json decodes that bypass wire.UnmarshalStrict",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStrictDecode,
}

func runStrictDecode(pass *analysis.Pass) (interface{}, error) {
	supp := gatherSuppressions(pass, "rawdecode")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		var what string
		switch fn.FullName() {
		case "encoding/json.Unmarshal":
			what = "json.Unmarshal"
		case "(*encoding/json.Decoder).Decode":
			what = "(*json.Decoder).Decode"
		default:
			return
		}
		if inTestFile(pass.Fset, call.Pos()) || supp.covers(call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"%s on possibly-external bytes: decode through wire.UnmarshalStrict, or annotate //moblint:rawdecode <reason>",
			what)
	})
	return nil, nil
}
