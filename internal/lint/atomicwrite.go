package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// AtomicWriteAnalyzer enforces the durability half of the tmp+rename
// idiom: an os.Rename that finalizes a persisted artifact must be
// preceded, in the same function, by (*os.File).Sync on the temp file.
// The rename alone is atomic against a process kill, but without the
// fsync a system crash shortly after can leave the *renamed* file empty —
// a summary.json or checkpoint that parses as zero bytes on resume.
//
// The check is syntactic dominance within the enclosing function: some
// (*os.File).Sync call must occur textually before the os.Rename. Code
// that delegates to fsx.WriteFileAtomic contains no os.Rename of its own
// and passes trivially; a rename that genuinely needs no fsync (moving a
// directory, renaming a non-durable scratch file) carries
// //moblint:unsyncedrename <reason>.
var AtomicWriteAnalyzer = &analysis.Analyzer{
	Name:     "atomicwrite",
	Doc:      "flags os.Rename finalizations not preceded by (*os.File).Sync",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) (interface{}, error) {
	supp := gatherSuppressions(pass, "unsyncedrename")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || inTestFile(pass.Fset, decl.Pos()) {
			return
		}
		var renames []token.Pos
		var syncs []token.Pos
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok {
				return true
			}
			switch fn.FullName() {
			case "os.Rename":
				renames = append(renames, call.Pos())
			case "(*os.File).Sync":
				syncs = append(syncs, call.Pos())
			}
			return true
		})
		for _, r := range renames {
			if supp.covers(r) {
				continue
			}
			synced := false
			for _, s := range syncs {
				if s < r {
					synced = true
					break
				}
			}
			if !synced {
				pass.Reportf(r,
					"os.Rename finalizes a file no (*os.File).Sync precedes: a crash can leave it zero-length; use fsx.WriteFileAtomic, or annotate //moblint:unsyncedrename <reason>")
			}
		}
	})
	return nil, nil
}
