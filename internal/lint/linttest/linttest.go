// Package linttest runs a go/analysis analyzer over a fixture package and
// compares its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest
// (which go's cmd vendor tree does not ship, so this repository carries
// its own small equivalent):
//
//	json.Unmarshal(data, v) // want `decode through wire\.UnmarshalStrict`
//
// Each back-quoted or double-quoted string after "// want" is a regexp
// that must match a diagnostic reported on that line; every diagnostic
// must be matched by some expectation, and every expectation must be
// matched by some diagnostic. A want comment that stands alone on its
// line anchors to the line above it instead — for diagnostics reported
// on a line that already ends in another comment (e.g. a reasonless
// //moblint directive). Fixtures live under internal/lint/testdata/src/
// and are plain Go packages (they may import only the standard library,
// which is loaded through the compiler's export data).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// expectation is one want-regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// finding is one reported diagnostic.
type finding struct {
	file    string
	line    int
	message string
	matched bool
}

// Run analyzes the fixture package at testdata/src/<dir> (relative to the
// caller's working directory, i.e. the internal/lint package) with a and
// checks its diagnostics against the fixture's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgDir := filepath.Join("testdata", "src", dir)

	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkgDir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", path, err)
		}
		files = append(files, f)
		exps, err := wantComments(fset, f, src)
		if err != nil {
			t.Fatalf("linttest: %s: %v", path, err)
		}
		expects = append(expects, exps...)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", pkgDir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	// The fixture's package path is its directory name, so analyzers that
	// scope by package (nodeterminism) see e.g. "engine" for
	// testdata/src/engine.
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-check %s: %v", pkgDir, err)
	}

	var found []*finding
	report := func(d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		found = append(found, &finding{file: pos.Filename, line: pos.Line, message: d.Message})
	}
	if err := runWithDeps(a, fset, files, pkg, info, report, map[*analysis.Analyzer]interface{}{}); err != nil {
		t.Fatalf("linttest: run %s: %v", a.Name, err)
	}

	// Match findings to expectations by (file, line, regexp).
	for _, f := range found {
		for _, e := range expects {
			if e.hit || e.file != f.file || e.line != f.line {
				continue
			}
			if e.re.MatchString(f.message) {
				e.hit = true
				f.matched = true
				break
			}
		}
	}
	var errs []string
	for _, f := range found {
		if !f.matched {
			errs = append(errs, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", f.file, f.line, f.message))
		}
	}
	for _, e := range expects {
		if !e.hit {
			errs = append(errs, fmt.Sprintf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw))
		}
	}
	sort.Strings(errs)
	for _, msg := range errs {
		t.Error(msg)
	}
}

// runWithDeps runs a's Requires (memoized in results), then a itself,
// building each analysis.Pass by hand over the single fixture package.
func runWithDeps(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(analysis.Diagnostic), results map[*analysis.Analyzer]interface{}) error {
	for _, req := range a.Requires {
		if _, done := results[req]; done {
			continue
		}
		// Dependency diagnostics are discarded; only the analyzer under
		// test reports.
		if err := runWithDeps(req, fset, files, pkg, info, func(analysis.Diagnostic) {}, results); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     report,
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = results[req]
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

// wantComments extracts the // want expectations of one parsed file. A
// want comment preceded only by whitespace on its line anchors to the
// previous line.
func wantComments(fset *token.FileSet, f *ast.File, src []byte) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if lineStart := pos.Offset - (pos.Column - 1); strings.TrimSpace(string(src[lineStart:pos.Offset])) == "" {
				line--
			}
			patterns, err := splitPatterns(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", pos.Line, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want regexp %q: %w", pos.Line, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: line, re: re, raw: p})
			}
		}
	}
	return out, nil
}

// splitPatterns parses a want payload: a sequence of back-quoted or
// double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}
