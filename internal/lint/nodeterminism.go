package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// NoDeterminismAnalyzer enforces the byte-determinism contract of the
// algorithmic packages: two sweeps of the same lab matrix must produce
// byte-identical summary.json files, so the packages a cell's result
// flows through may not read the wall clock or draw from a source whose
// seed the run does not control. The CI smoke matrix proves the contract
// for the cells it happens to run; this analyzer proves the absence of
// the failure mode for every code path.
//
// In the deterministic packages (the -packages flag; by default engine,
// core, shard, adversary, workload, xrand, and lab) non-test files may
// not:
//
//   - import legacy math/rand (its global source is seeded behind the
//     program's back; use internal/xrand, the seeded math/rand/v2
//     wrapper);
//   - call math/rand/v2 package-level functions (the auto-seeded global
//     source; constructing an explicitly seeded generator via rand.New,
//     rand.NewPCG, rand.NewChaCha8, or rand.NewZipf is fine);
//   - call time.Now, time.Since, or time.Until.
//
// Sites outside the determinism contract (live-cell readiness polls, the
// sweep's elapsed-time report field, which is excluded from the byte
// comparison) carry //moblint:nondeterminism <reason>.
var NoDeterminismAnalyzer = &analysis.Analyzer{
	Name:     "nodeterminism",
	Doc:      "forbids wall-clock and unseeded rand in the deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNoDeterminism,
}

func init() {
	NoDeterminismAnalyzer.Flags.String("packages",
		"engine,core,shard,adversary,workload,xrand,lab",
		"comma-separated final path elements of the deterministic packages")
}

// randV2Constructors are the math/rand/v2 package-level functions that
// build an explicitly seeded generator rather than drawing from the
// auto-seeded global source.
var randV2Constructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runNoDeterminism(pass *analysis.Pass) (interface{}, error) {
	scope := map[string]bool{}
	for _, name := range strings.Split(pass.Analyzer.Flags.Lookup("packages").Value.String(), ",") {
		if name = strings.TrimSpace(name); name != "" {
			scope[name] = true
		}
	}
	path := pass.Pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	if !scope[strings.TrimSuffix(path, "_test")] {
		return nil, nil
	}
	supp := gatherSuppressions(pass, "nondeterminism")
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			if imp.Path.Value == `"math/rand"` && !supp.covers(imp.Pos()) {
				pass.Reportf(imp.Pos(),
					"legacy math/rand in deterministic package %s: its global source seeds itself; use internal/xrand (seeded math/rand/v2), or annotate //moblint:nondeterminism <reason>",
					pass.Pkg.Name())
			}
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || inTestFile(pass.Fset, call.Pos()) || supp.covers(call.Pos()) {
			return
		}
		full := fn.FullName()
		switch {
		case full == "time.Now" || full == "time.Since" || full == "time.Until":
			pass.Reportf(call.Pos(),
				"%s in deterministic package %s: wall-clock values fork byte-identical reruns; derive values from the instance, or annotate //moblint:nondeterminism <reason>",
				full, pass.Pkg.Name())
		case strings.HasPrefix(full, "math/rand/v2.") && !randV2Constructors[fn.Name()]:
			pass.Reportf(call.Pos(),
				"%s draws from the auto-seeded global source in deterministic package %s: use internal/xrand or an explicit rand.New(rand.NewPCG(seed, ...)), or annotate //moblint:nondeterminism <reason>",
				full, pass.Pkg.Name())
		}
	})
	return nil, nil
}
