package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestStrictDecode(t *testing.T) {
	linttest.Run(t, "strictdecode", lint.StrictDecodeAnalyzer)
}

func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, "atomicwrite", lint.AtomicWriteAnalyzer)
}

func TestNoDeterminismInScope(t *testing.T) {
	linttest.Run(t, "engine", lint.NoDeterminismAnalyzer)
}

func TestNoDeterminismOutOfScope(t *testing.T) {
	// Package webui is not in the deterministic set: the same wall-clock
	// and global-rand calls produce no diagnostics, and the fixture has no
	// want comments for them to miss.
	linttest.Run(t, "webui", lint.NoDeterminismAnalyzer)
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, "hotpath", lint.HotPathAnalyzer)
}
