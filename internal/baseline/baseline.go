// Package baseline provides reference online algorithms to compare against
// the paper's Move-to-Center: trivial strategies (Lazy, Follow, Greedy) and
// capped-movement adaptations of classical Page Migration algorithms
// (Westbrook's Move-To-Min and the randomized Coin-Flip algorithm). The
// classical algorithms assume unrestricted jumps; here every move is capped
// at (1+δ)m per step, with the jump target tracked across steps, which is
// the natural adaptation discussed in the paper's introduction.
package baseline

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/median"
	"repro/internal/xrand"
)

// Lazy never moves the server. It is the baseline the lower-bound
// constructions punish maximally.
type Lazy struct{ core.PositionTracker }

// NewLazy returns the never-moving baseline.
func NewLazy() *Lazy { return &Lazy{} }

// Name implements core.Algorithm.
func (l *Lazy) Name() string { return "Lazy" }

// Move implements core.Algorithm.
func (l *Lazy) Move(_ []geom.Point) geom.Point { return l.Pos }

// Follow moves at full speed toward the most recent request (the last one
// of the current batch).
type Follow struct{ core.PositionTracker }

// NewFollow returns the follow-the-last-request baseline.
func NewFollow() *Follow { return &Follow{} }

// Name implements core.Algorithm.
func (f *Follow) Name() string { return "Follow" }

// Move implements core.Algorithm.
func (f *Follow) Move(reqs []geom.Point) geom.Point {
	if len(reqs) == 0 {
		return f.Pos
	}
	target := reqs[len(reqs)-1]
	return f.CappedMove(target, geom.Dist(f.Pos, target))
}

// Greedy moves at full speed toward the 1-median of the current batch,
// ignoring the paper's min(1, r/D) damping — it is MtC without the speed
// rule and serves as the "chase aggressively" baseline.
type Greedy struct{ core.PositionTracker }

// NewGreedy returns the full-speed center-chasing baseline.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements core.Algorithm.
func (g *Greedy) Name() string { return "Greedy" }

// Move implements core.Algorithm.
func (g *Greedy) Move(reqs []geom.Point) geom.Point {
	if len(reqs) == 0 {
		return g.Pos
	}
	target := median.Closest(reqs, g.Pos, median.Options{})
	return g.CappedMove(target, geom.Dist(g.Pos, target))
}

// MoveToMin adapts Westbrook's deterministic Move-To-Min page-migration
// algorithm: after every window of ⌈D⌉ requests, it recomputes the point
// minimizing the total distance to the window (the geometric median) and
// heads toward it; movement is capped per step.
type MoveToMin struct {
	core.PositionTracker
	window  []geom.Point
	size    int
	target  geom.Point
	hasTgt  bool
	pending int
}

// NewMoveToMin returns the capped Move-To-Min baseline.
func NewMoveToMin() *MoveToMin { return &MoveToMin{} }

// Name implements core.Algorithm.
func (a *MoveToMin) Name() string { return "Move-To-Min" }

// Reset implements core.Algorithm.
func (a *MoveToMin) Reset(cfg core.Config, start geom.Point) {
	a.PositionTracker.Reset(cfg, start)
	a.size = int(math.Ceil(cfg.D))
	if a.size < 1 {
		a.size = 1
	}
	a.window = a.window[:0]
	a.hasTgt = false
	a.pending = 0
}

// Move implements core.Algorithm.
func (a *MoveToMin) Move(reqs []geom.Point) geom.Point {
	for _, v := range reqs {
		a.window = append(a.window, v.Clone())
		a.pending++
		if len(a.window) > a.size {
			a.window = a.window[1:]
		}
		if a.pending >= a.size {
			a.target = median.Closest(a.window, a.Pos, median.Options{})
			a.hasTgt = true
			a.pending = 0
		}
	}
	if !a.hasTgt {
		return a.Pos
	}
	return a.CappedMove(a.target, geom.Dist(a.Pos, a.target))
}

// CoinFlip adapts Westbrook's randomized Coin-Flip algorithm: each request
// independently triggers, with probability 1/(2D), a retarget onto the
// requesting point; the server then heads toward its current target at full
// (capped) speed. The classical analysis gives 3-competitiveness for
// unrestricted page migration against adaptive adversaries.
type CoinFlip struct {
	core.PositionTracker
	rng    *xrand.Rand
	target geom.Point
	hasTgt bool
}

// NewCoinFlip returns the capped Coin-Flip baseline drawing coins from r.
func NewCoinFlip(r *xrand.Rand) *CoinFlip { return &CoinFlip{rng: r} }

// Name implements core.Algorithm.
func (a *CoinFlip) Name() string { return "Coin-Flip" }

// Reset implements core.Algorithm.
func (a *CoinFlip) Reset(cfg core.Config, start geom.Point) {
	a.PositionTracker.Reset(cfg, start)
	a.hasTgt = false
}

// Move implements core.Algorithm.
func (a *CoinFlip) Move(reqs []geom.Point) geom.Point {
	p := 1 / (2 * a.Cfg.D)
	for _, v := range reqs {
		if a.rng.Bernoulli(p) {
			a.target = v.Clone()
			a.hasTgt = true
		}
	}
	if !a.hasTgt {
		return a.Pos
	}
	next := a.CappedMove(a.target, geom.Dist(a.Pos, a.target))
	if geom.Dist(next, a.target) == 0 {
		a.hasTgt = false
	}
	return next
}

// All returns one fresh instance of every baseline (Coin-Flip drawing coins
// from the provided stream), plus the paper's MtC for convenience.
func All(r *xrand.Rand) []core.Algorithm {
	return []core.Algorithm{
		core.NewMtC(),
		NewLazy(),
		NewFollow(),
		NewGreedy(),
		NewMoveToMin(),
		NewCoinFlip(r),
	}
}
