package baseline

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// WorkFunction1D is the work-function algorithm adapted to the Mobile
// Server Problem on a line segment: it maintains the offline work function
// w_t(x) — the cheapest cost of serving the first t steps and ending at x,
// restricted to a grid over a declared arena and to the offline movement
// cap m — and after each step moves to the reachable position minimizing
// w_t(x) + D·d(P, x).
//
// Work functions are the classical route to strong online algorithms for
// k-server-style problems (see the related-work discussion in the paper);
// this adaptation shows how the movement cap changes their behavior. The
// algorithm needs the arena bounds up front (to lay out its grid), which
// is a standard practical concession; requests outside the arena are
// clamped onto it for the internal computation (costs are still charged by
// the simulator at the true request positions).
type WorkFunction1D struct {
	core.PositionTracker
	lo, hi    float64
	cellsPerM int

	g      float64
	n      int
	w      []float64 // work function over the grid
	buf    []float64
	serve  []float64
	winOff int // offline window in cells
}

// NewWorkFunction1D returns a work-function server for the arena [lo, hi]
// with grid resolution cellsPerM cells per movement radius (default 4).
func NewWorkFunction1D(lo, hi float64, cellsPerM int) *WorkFunction1D {
	if hi <= lo {
		panic("baseline: WorkFunction1D requires hi > lo")
	}
	if cellsPerM <= 0 {
		cellsPerM = 4
	}
	return &WorkFunction1D{lo: lo, hi: hi, cellsPerM: cellsPerM}
}

// Name implements core.Algorithm.
func (a *WorkFunction1D) Name() string { return "Work-Function" }

// Reset implements core.Algorithm.
func (a *WorkFunction1D) Reset(cfg core.Config, start geom.Point) {
	if cfg.Dim != 1 {
		panic("baseline: WorkFunction1D requires dimension 1")
	}
	a.PositionTracker.Reset(cfg, start)
	a.g = cfg.M / float64(a.cellsPerM)
	a.n = int((a.hi-a.lo)/a.g) + 2
	const maxCells = 1 << 20
	if a.n > maxCells {
		a.n = maxCells
		a.g = (a.hi - a.lo) / float64(a.n-1)
	}
	a.w = make([]float64, a.n)
	a.buf = make([]float64, a.n)
	a.serve = make([]float64, a.n)
	for i := range a.w {
		a.w[i] = math.Inf(1)
	}
	a.w[a.nearest(start[0])] = 0
	a.winOff = int(cfg.M/a.g + 1e-9)
	if a.winOff < 1 {
		a.winOff = 1
	}
}

func (a *WorkFunction1D) x(i int) float64 { return a.lo + float64(i)*a.g }

func (a *WorkFunction1D) nearest(v float64) int {
	i := int((v-a.lo)/a.g + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= a.n {
		i = a.n - 1
	}
	return i
}

// Move implements core.Algorithm.
func (a *WorkFunction1D) Move(reqs []geom.Point) geom.Point {
	// Update the work function: offline transition then serve charge.
	D := a.Cfg.D
	for i := 0; i < a.n; i++ {
		best := math.Inf(1)
		for j := i - a.winOff; j <= i+a.winOff; j++ {
			if j < 0 || j >= a.n {
				continue
			}
			if cand := a.w[j] + D*a.g*math.Abs(float64(i-j)); cand < best {
				best = cand
			}
		}
		a.buf[i] = best
	}
	for i := 0; i < a.n; i++ {
		s := 0.0
		for _, v := range reqs {
			s += math.Abs(a.x(i) - clamp(v[0], a.lo, a.hi))
		}
		a.serve[i] = s
		a.w[i] = a.buf[i] + s
	}
	if len(reqs) == 0 {
		return a.Pos
	}
	// Online rule: among positions reachable under the online cap, pick
	// the one minimizing w_t(x) + D·d(P, x).
	cap := a.Cfg.OnlineCap()
	pos := a.Pos[0]
	loIdx := a.nearest(pos - cap)
	hiIdx := a.nearest(pos + cap)
	bestI, bestV := -1, math.Inf(1)
	for i := loIdx; i <= hiIdx; i++ {
		x := a.x(i)
		if math.Abs(x-pos) > cap*(1+1e-12) {
			continue
		}
		if v := a.w[i] + D*math.Abs(x-pos); v < bestV {
			bestI, bestV = i, v
		}
	}
	if bestI < 0 {
		return a.Pos
	}
	target := geom.NewPoint(a.x(bestI))
	return a.CappedMove(target, geom.Dist(a.Pos, target))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
