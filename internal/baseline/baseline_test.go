package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func cfg() core.Config { return core.Config{Dim: 1, D: 2, M: 1, Delta: 0, Order: core.MoveFirst} }

func TestLazyNeverMoves(t *testing.T) {
	a := NewLazy()
	a.Reset(cfg(), pt(3.0))
	for i := 0; i < 5; i++ {
		if !a.Move([]geom.Point{pt(float64(i * 10))}).Equal(pt(3.0)) {
			t.Fatal("Lazy moved")
		}
	}
}

func TestFollowChasesLastRequest(t *testing.T) {
	a := NewFollow()
	a.Reset(cfg(), pt(0.0))
	got := a.Move([]geom.Point{pt(-5.0), pt(0.5)})
	if !got.ApproxEqual(pt(0.5), 1e-12) {
		t.Fatalf("Follow moved to %v, want 0.5", got)
	}
	// Far target: capped at m=1.
	got = a.Move([]geom.Point{pt(100.0)})
	if !got.ApproxEqual(pt(1.5), 1e-12) {
		t.Fatalf("Follow moved to %v, want 1.5", got)
	}
}

func TestFollowNoRequests(t *testing.T) {
	a := NewFollow()
	a.Reset(cfg(), pt(2.0))
	if !a.Move(nil).Equal(pt(2.0)) {
		t.Fatal("Follow moved without requests")
	}
}

func TestGreedyHeadsToMedian(t *testing.T) {
	a := NewGreedy()
	a.Reset(cfg(), pt(0.0))
	// Median of {2, 3, 100} is 3; capped at 1.
	got := a.Move([]geom.Point{pt(2.0), pt(3.0), pt(100.0)})
	if !got.ApproxEqual(pt(1.0), 1e-12) {
		t.Fatalf("Greedy moved to %v, want 1", got)
	}
}

func TestGreedyIgnoresSpeedRule(t *testing.T) {
	// With r=1 < D=2, MtC would move half the distance; Greedy moves all
	// the way (within cap).
	c := cfg()
	c.M = 100
	a := NewGreedy()
	a.Reset(c, pt(0.0))
	got := a.Move([]geom.Point{pt(8.0)})
	if !got.ApproxEqual(pt(8.0), 1e-12) {
		t.Fatalf("Greedy moved to %v, want 8", got)
	}
}

func TestMoveToMinWaitsForWindow(t *testing.T) {
	// D=2 → window size 2: no move after the first request, target after
	// the second.
	a := NewMoveToMin()
	a.Reset(cfg(), pt(0.0))
	got := a.Move([]geom.Point{pt(10.0)})
	if !got.Equal(pt(0.0)) {
		t.Fatalf("MoveToMin moved before window full: %v", got)
	}
	got = a.Move([]geom.Point{pt(10.0)})
	if !got.ApproxEqual(pt(1.0), 1e-12) {
		t.Fatalf("MoveToMin = %v, want 1 (capped toward 10)", got)
	}
}

func TestMoveToMinRetargets(t *testing.T) {
	a := NewMoveToMin()
	a.Reset(cfg(), pt(0.0))
	// Fill window with two requests at 10 → target 10.
	a.Move([]geom.Point{pt(10.0), pt(10.0)})
	// New window of two at -10 → target flips.
	got := a.Move([]geom.Point{pt(-10.0), pt(-10.0)})
	if got[0] >= 1 {
		t.Fatalf("MoveToMin did not retarget: %v", got)
	}
}

func TestMoveToMinKeepsMovingBetweenBatches(t *testing.T) {
	a := NewMoveToMin()
	a.Reset(cfg(), pt(0.0))
	a.Move([]geom.Point{pt(10.0), pt(10.0)}) // target 10, pos 1
	got := a.Move(nil)                       // keeps heading to 10
	if !got.ApproxEqual(pt(2.0), 1e-12) {
		t.Fatalf("MoveToMin stalled: %v", got)
	}
}

func TestCoinFlipDeterministicWithSeed(t *testing.T) {
	run := func() geom.Point {
		a := NewCoinFlip(xrand.New(42))
		a.Reset(cfg(), pt(0.0))
		var got geom.Point
		for i := 0; i < 20; i++ {
			got = a.Move([]geom.Point{pt(5.0)})
		}
		return got
	}
	if !run().Equal(run()) {
		t.Fatal("CoinFlip with fixed seed not reproducible")
	}
}

func TestCoinFlipEventuallyMoves(t *testing.T) {
	a := NewCoinFlip(xrand.New(7))
	a.Reset(cfg(), pt(0.0))
	moved := false
	for i := 0; i < 200 && !moved; i++ {
		if !a.Move([]geom.Point{pt(50.0)}).Equal(pt(0.0)) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("CoinFlip never moved in 200 steps with p=1/4 per step")
	}
}

func TestAllRespectCapsOnRandomWorkload(t *testing.T) {
	r := xrand.New(11)
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 3, M: 0.5, Delta: 0.5, Order: core.MoveFirst},
		Start:  pt(0, 0),
	}
	for i := 0; i < 100; i++ {
		n := r.IntN(4)
		var s core.Step
		for k := 0; k < n; k++ {
			s.Requests = append(s.Requests, pt(r.Range(-20, 20), r.Range(-20, 20)))
		}
		in.Steps = append(in.Steps, s)
	}
	for _, alg := range All(xrand.New(1)) {
		res, err := sim.Run(in, alg, sim.RunOptions{Mode: sim.Strict})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
			t.Fatalf("%s exceeded cap: %v", alg.Name(), res.MaxMove)
		}
	}
}

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, alg := range All(xrand.New(1)) {
		if seen[alg.Name()] {
			t.Fatalf("duplicate name %q", alg.Name())
		}
		seen[alg.Name()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 algorithms, got %d", len(seen))
	}
}

func TestResetClearsState(t *testing.T) {
	a := NewMoveToMin()
	a.Reset(cfg(), pt(0.0))
	a.Move([]geom.Point{pt(10.0), pt(10.0)})
	a.Reset(cfg(), pt(0.0))
	if got := a.Move([]geom.Point{pt(-10.0)}); !got.Equal(pt(0.0)) {
		t.Fatalf("MoveToMin retained state across Reset: %v", got)
	}

	c := NewCoinFlip(xrand.New(3))
	c.Reset(cfg(), pt(0.0))
	for i := 0; i < 50; i++ {
		c.Move([]geom.Point{pt(9.0)})
	}
	c.Reset(cfg(), pt(0.0))
	if got := c.Move(nil); !got.Equal(pt(0.0)) {
		t.Fatalf("CoinFlip retained target across Reset: %v", got)
	}
}
