package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestWorkFunctionTracksSingleRequestStream(t *testing.T) {
	// Requests march right at speed m: WFA should follow like MtC does.
	cfg := core.Config{Dim: 1, D: 1, M: 1, Delta: 0, Order: core.MoveFirst}
	in := &core.Instance{Config: cfg, Start: pt(0.0)}
	for i := 1; i <= 30; i++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(float64(i))}})
	}
	res, err := sim.Run(in, NewWorkFunction1D(-5, 40, 4), sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0] < 25 {
		t.Fatalf("WFA did not follow the stream: final %v", res.Final)
	}
}

func TestWorkFunctionRespectsCap(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 2, M: 0.5, Delta: 0.5, Order: core.MoveFirst}
	in := workload.Hotspot{Half: 10, Sigma: 1}.Generate(xrand.New(1), cfg, 150)
	res, err := sim.Run(in, NewWorkFunction1D(-12, 12, 4), sim.RunOptions{Mode: sim.Strict})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMove > cfg.OnlineCap()*(1+1e-9) {
		t.Fatalf("MaxMove %v > cap %v", res.MaxMove, cfg.OnlineCap())
	}
}

func TestWorkFunctionCompetitiveOnHotspot(t *testing.T) {
	// WFA should land within a small factor of OPT on a followable
	// workload, and in the same league as MtC.
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst}
	in := workload.Hotspot{Half: 15, Sigma: 1}.Generate(xrand.New(2), cfg, 300)
	wfa, err := sim.Run(in, NewWorkFunction1D(-17, 17, 4), sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mtc := sim.MustRun(in, core.NewMtC(), sim.RunOptions{})
	est, err := offline.Best(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratioWFA := wfa.Cost.Total() / est.Upper
	if ratioWFA > 6 {
		t.Fatalf("WFA ratio %v too large", ratioWFA)
	}
	if wfa.Cost.Total() > 3*mtc.Cost.Total() {
		t.Fatalf("WFA (%v) much worse than MtC (%v)", wfa.Cost.Total(), mtc.Cost.Total())
	}
}

func TestWorkFunctionStaysWithoutRequests(t *testing.T) {
	a := NewWorkFunction1D(-10, 10, 4)
	a.Reset(core.Config{Dim: 1, D: 1, M: 1, Delta: 0, Order: core.MoveFirst}, pt(2.0))
	if got := a.Move(nil); !got.Equal(pt(2.0)) {
		t.Fatalf("WFA moved without requests: %v", got)
	}
}

func TestWorkFunctionClampsOutsideArena(t *testing.T) {
	// A request far outside the arena must not crash; the server heads to
	// the arena edge.
	cfg := core.Config{Dim: 1, D: 1, M: 1, Delta: 0, Order: core.MoveFirst}
	in := &core.Instance{Config: cfg, Start: pt(0.0)}
	for i := 0; i < 30; i++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(100.0)}})
	}
	res, err := sim.Run(in, NewWorkFunction1D(-10, 10, 4), sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Final[0]-10) > 0.5 {
		t.Fatalf("WFA final %v, want near arena edge 10", res.Final)
	}
}

func TestWorkFunctionPanicsOn2D(t *testing.T) {
	a := NewWorkFunction1D(-1, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic in 2-D")
		}
	}()
	a.Reset(core.Config{Dim: 2, D: 1, M: 1}, pt(0, 0))
}

func TestWorkFunctionPanicsOnBadArena(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi <= lo")
		}
	}()
	NewWorkFunction1D(5, 5, 4)
}

func TestWorkFunctionBeatsLazyOnDriftingLoad(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.25, Order: core.MoveFirst}
	in := workload.Hotspot{Half: 20, Sigma: 0.5}.Generate(xrand.New(3), cfg, 400)
	wfa, err := sim.Run(in, NewWorkFunction1D(-22, 22, 4), sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazyRes := sim.MustRun(in, NewLazy(), sim.RunOptions{})
	if wfa.Cost.Total() >= lazyRes.Cost.Total() {
		t.Fatalf("WFA (%v) did not beat Lazy (%v)", wfa.Cost.Total(), lazyRes.Cost.Total())
	}
}
