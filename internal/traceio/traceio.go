// Package traceio serializes Mobile Server instances and experiment tables
// so workloads can be recorded, replayed, and inspected, and results can be
// consumed by external tooling. Instances use a compact JSON schema; tables
// export as CSV.
package traceio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// instanceJSON is the stable on-disk schema for core.Instance.
type instanceJSON struct {
	Dim   int           `json:"dim"`
	D     float64       `json:"d"`
	M     float64       `json:"m"`
	Delta float64       `json:"delta"`
	Order string        `json:"order"`
	Start []float64     `json:"start"`
	Steps [][][]float64 `json:"steps"`
}

// WriteInstance encodes the instance as JSON.
func WriteInstance(w io.Writer, in *core.Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("traceio: refusing to write invalid instance: %w", err)
	}
	enc := instanceJSON{
		Dim:   in.Config.Dim,
		D:     in.Config.D,
		M:     in.Config.M,
		Delta: in.Config.Delta,
		Order: in.Config.Order.String(),
		Start: in.Start,
		Steps: make([][][]float64, in.T()),
	}
	for t, s := range in.Steps {
		reqs := make([][]float64, len(s.Requests))
		for i, v := range s.Requests {
			reqs[i] = v
		}
		enc.Steps[t] = reqs
	}
	e := json.NewEncoder(w)
	return e.Encode(enc)
}

// ReadInstance decodes an instance written by WriteInstance and validates
// it. Trace files are untrusted disk input (often hand-edited), so the
// decode is strict: an unknown or misspelled field is an error, not a
// silently ignored no-op.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("traceio: read: %w", err)
	}
	var dec instanceJSON
	if err := wire.UnmarshalStrict(data, &dec); err != nil {
		return nil, fmt.Errorf("traceio: decode: %w", err)
	}
	var order core.ServeOrder
	switch dec.Order {
	case "move-first", "":
		order = core.MoveFirst
	case "answer-first":
		order = core.AnswerFirst
	default:
		return nil, fmt.Errorf("traceio: unknown serve order %q", dec.Order)
	}
	in := &core.Instance{
		Config: core.Config{Dim: dec.Dim, D: dec.D, M: dec.M, Delta: dec.Delta, Order: order},
		Start:  geom.Point(dec.Start),
		Steps:  make([]core.Step, len(dec.Steps)),
	}
	for t, reqs := range dec.Steps {
		step := core.Step{Requests: make([]geom.Point, len(reqs))}
		for i, v := range reqs {
			step.Requests[i] = geom.Point(v)
		}
		in.Steps[t] = step
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: decoded instance invalid: %w", err)
	}
	return in, nil
}

// Table is a simple rectangular result set with named columns.
type Table struct {
	Columns []string
	Rows    [][]float64
}

// Add appends a row; its length must match the column count.
func (t *Table) Add(row ...float64) {
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("traceio: row has %d cells, table has %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV emits the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traceio: csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("traceio: empty csv")
	}
	t := &Table{Columns: records[0]}
	for _, rec := range records[1:] {
		row := make([]float64, len(rec))
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("traceio: cell %q: %w", cell, err)
			}
			row[i] = v
		}
		if len(row) != len(t.Columns) {
			return nil, fmt.Errorf("traceio: ragged csv row")
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
