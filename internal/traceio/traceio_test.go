package traceio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestInstanceRoundTrip(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 3, M: 0.5, Delta: 0.25, Order: core.AnswerFirst}
	in := workload.Hotspot{}.Generate(xrand.New(1), cfg, 25)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Config.Equal(in.Config) {
		t.Fatalf("config %+v != %+v", got.Config, in.Config)
	}
	if !got.Start.Equal(in.Start) || got.T() != in.T() {
		t.Fatal("shape mismatch")
	}
	for i := range in.Steps {
		if len(got.Steps[i].Requests) != len(in.Steps[i].Requests) {
			t.Fatalf("step %d count mismatch", i)
		}
		for j := range in.Steps[i].Requests {
			if !got.Steps[i].Requests[j].Equal(in.Steps[i].Requests[j]) {
				t.Fatalf("step %d request %d mismatch", i, j)
			}
		}
	}
}

func TestWriteInstanceRejectsInvalid(t *testing.T) {
	in := &core.Instance{Config: core.Config{Dim: 1, D: 1, M: 1}, Start: geom.NewPoint(0)}
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err == nil {
		t.Fatal("empty instance written")
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	if _, err := ReadInstance(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadInstance(strings.NewReader(`{"dim":1,"d":1,"m":1,"order":"sideways","start":[0],"steps":[[[1]]]}`)); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := ReadInstance(strings.NewReader(`{"dim":0,"d":1,"m":1,"start":[],"steps":[]}`)); err == nil {
		t.Fatal("invalid decoded instance accepted")
	}
}

func TestMoveFirstDefaultOrder(t *testing.T) {
	in, err := ReadInstance(strings.NewReader(`{"dim":1,"d":1,"m":1,"delta":0,"order":"","start":[0],"steps":[[[1]]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if in.Config.Order != core.MoveFirst {
		t.Fatal("empty order should default to move-first")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.Add(1, 2)
	tbl.Add(3.5, -4)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 2 || got.Columns[0] != "x" {
		t.Fatalf("columns = %v", got.Columns)
	}
	if len(got.Rows) != 2 || got.Rows[1][0] != 3.5 || got.Rows[1][1] != -4 {
		t.Fatalf("rows = %v", got.Rows)
	}
}

func TestTableAddPanicsOnBadArity(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tbl.Add(1)
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
}
