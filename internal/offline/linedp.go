package offline

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// DPResult reports the value of a relaxed grid dynamic program.
type DPResult struct {
	// Value is the optimal cost over grid trajectories whose per-step
	// moves are allowed to exceed m by one grid cell (the relaxation that
	// makes Value-Slack a certified lower bound on the continuous OPT).
	Value float64
	// Slack bounds the gap: Value ≤ OPT + Slack, i.e. OPT ≥ Value − Slack.
	Slack float64
	// Cells is the number of grid points used.
	Cells int
	// Pitch is the grid spacing.
	Pitch float64
}

// Lower returns the certified lower bound max(Value−Slack, 0) on OPT.
func (r DPResult) Lower() float64 { return math.Max(r.Value-r.Slack, 0) }

// LineDP solves the relaxed grid DP for 1-D instances.
//
// The DP restricts positions to a uniform grid over the instance's bounding
// interval and allows per-step moves up to m+pitch. Snapping any continuous
// feasible trajectory to the grid stays feasible under the relaxed cap and
// increases the cost by at most D·pitch + r_t·pitch/2 per step, so
//
//	Value ≤ OPT + Σ_t (D·pitch + r_t·pitch/2) = OPT + Slack.
//
// Each transition min_{|x_i−x_j| ≤ m+pitch} cost[j] + D·|x_i−x_j| is
// evaluated in O(1) amortized with two monotone deques (one for j ≤ i, one
// for j ≥ i), so a step costs O(cells) and the whole program
// O(T·cells).
func LineDP(in *core.Instance, cellsPerM, maxCells int) (DPResult, error) {
	if err := in.Validate(); err != nil {
		return DPResult{}, err
	}
	if in.Config.Dim != 1 {
		return DPResult{}, fmt.Errorf("offline: LineDP requires dim 1, got %d", in.Config.Dim)
	}
	b := in.Bounds()
	gr, err := buildGrid1D(b.Min[0], b.Max[0], in.Config.M, cellsPerM, maxCells)
	if err != nil {
		return DPResult{}, err
	}
	D := in.Config.D
	m := in.Config.M
	// Window in cells: moves up to m + pitch are admitted.
	w := 1
	if gr.g > 0 {
		w = int((m+gr.g)/gr.g + 1e-9)
		if w < 1 {
			w = 1
		}
	}

	n := gr.n
	prev := make([]float64, n)
	next := make([]float64, n)
	serve := make([]float64, n)
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	prev[gr.nearest(in.Start[0])] = 0

	reqs := stepRequests1D(in)
	answerFirst := in.Config.Order == core.AnswerFirst
	slack := 0.0
	dg := D * gr.g

	// Deque buffers reused across steps.
	idx := make([]int, 0, n)
	for t := 0; t < in.T(); t++ {
		serveCosts(gr, reqs[t], serve)
		slack += dg + float64(len(reqs[t]))*gr.g/2

		if answerFirst {
			// Requests are served from the pre-move position: fold the
			// serve cost into prev before the transition.
			for i := 0; i < n; i++ {
				if !math.IsInf(prev[i], 1) {
					prev[i] += serve[i]
				}
			}
		}

		// Left pass: candidates j ≤ i, value prev[j] + D·g·(i−j).
		idx = idx[:0]
		for i := 0; i < n; i++ {
			// Push j = i.
			aj := prev[i] - dg*float64(i)
			for len(idx) > 0 && prev[idx[len(idx)-1]]-dg*float64(idx[len(idx)-1]) >= aj {
				idx = idx[:len(idx)-1]
			}
			idx = append(idx, i)
			// Evict j < i−w.
			for idx[0] < i-w {
				idx = idx[1:]
			}
			j := idx[0]
			next[i] = prev[j] + dg*float64(i-j)
		}
		// Right pass: candidates j ≥ i, value prev[j] + D·g·(j−i).
		idx = idx[:0]
		// Pre-fill window for i = 0: j in [0, w].
		push := func(j int) {
			bj := prev[j] + dg*float64(j)
			for len(idx) > 0 && prev[idx[len(idx)-1]]+dg*float64(idx[len(idx)-1]) >= bj {
				idx = idx[:len(idx)-1]
			}
			idx = append(idx, j)
		}
		for j := 0; j <= w && j < n; j++ {
			push(j)
		}
		for i := 0; i < n; i++ {
			for idx[0] < i {
				idx = idx[1:]
			}
			j := idx[0]
			if cand := prev[j] + dg*float64(j-i); cand < next[i] {
				next[i] = cand
			}
			if i+w+1 < n {
				push(i + w + 1)
			}
		}
		if !answerFirst {
			for i := 0; i < n; i++ {
				next[i] += serve[i]
			}
		}
		prev, next = next, prev
	}
	best := math.Inf(1)
	for _, v := range prev {
		if v < best {
			best = v
		}
	}
	return DPResult{Value: best, Slack: slack, Cells: n, Pitch: gr.g}, nil
}
