package offline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestLineDPMatchesBruteForce(t *testing.T) {
	r := xrand.New(51)
	for trial := 0; trial < 25; trial++ {
		T := 1 + r.IntN(5)
		steps := make([][]float64, T)
		for i := range steps {
			nr := r.IntN(3)
			for k := 0; k < nr; k++ {
				steps[i] = append(steps[i], r.Range(-2, 2))
			}
		}
		cfg := core.Config{Dim: 1, D: 1 + r.Range(0, 2), M: 1, Order: core.MoveFirst}
		if r.Coin() {
			cfg.Order = core.AnswerFirst
		}
		in := lineInstance(cfg, r.Range(-2, 2), steps...)
		dp, err := LineDP(in, 2, 40)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce1D(in, 2, 40)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Value-bf) > 1e-9*(1+bf) {
			t.Fatalf("trial %d: DP %v != brute force %v", trial, dp.Value, bf)
		}
	}
}

func TestBruteForceRejectsHuge(t *testing.T) {
	steps := make([][]float64, 30)
	for i := range steps {
		steps[i] = []float64{float64(i)}
	}
	in := lineInstance(cfg1D(), 0, steps...)
	if _, err := BruteForce1D(in, 4, 1000); err == nil {
		t.Fatal("huge brute force accepted")
	}
}

func TestBruteForceRejects2D(t *testing.T) {
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 1, M: 1},
		Start:  pt(0, 0),
		Steps:  []core.Step{{Requests: []geom.Point{pt(1, 1)}}},
	}
	if _, err := BruteForce1D(in, 2, 10); err == nil {
		t.Fatal("2-D brute force accepted")
	}
}

func TestLineDPPathMatchesValue(t *testing.T) {
	r := xrand.New(52)
	for trial := 0; trial < 15; trial++ {
		T := 3 + r.IntN(20)
		steps := make([][]float64, T)
		for i := range steps {
			steps[i] = []float64{r.Range(-6, 6)}
		}
		in := lineInstance(cfg1D(), 0, steps...)
		path, res, err := LineDPPath(in, 4, 10000, 0)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := LineDP(in, 4, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-dp.Value) > 1e-9*(1+dp.Value) {
			t.Fatalf("trial %d: path DP %v != deque DP %v", trial, res.Value, dp.Value)
		}
		// The recovered trajectory must realize (approximately) the DP
		// value when costed, modulo the start-snap difference of one
		// half-pitch on step 1.
		got, err := core.TrajectoryCost(in, path)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Total()-res.Value) > in.Config.D*res.Pitch+1e-6 {
			t.Fatalf("trial %d: trajectory cost %v vs DP value %v", trial, got.Total(), res.Value)
		}
	}
}

func TestLineDPPathRespectsRelaxedCap(t *testing.T) {
	steps := make([][]float64, 40)
	r := xrand.New(53)
	for i := range steps {
		steps[i] = []float64{r.Range(-8, 8)}
	}
	in := lineInstance(cfg1D(), 0, steps...)
	path, res, err := LineDPPath(in, 4, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := in.Config.M + res.Pitch + 1e-9
	for i := 1; i < len(path); i++ {
		if d := geom.Dist(path[i-1], path[i]); d > relaxed {
			t.Fatalf("path step %d = %v > relaxed cap %v", i, d, relaxed)
		}
	}
}

func TestLineDPPathStateCap(t *testing.T) {
	steps := make([][]float64, 100)
	for i := range steps {
		steps[i] = []float64{float64(i % 50)}
	}
	in := lineInstance(cfg1D(), 0, steps...)
	if _, _, err := LineDPPath(in, 10, 100000, 100); err == nil {
		t.Fatal("state cap ignored")
	}
}
