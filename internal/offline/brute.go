package offline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// BruteForce1D enumerates every grid trajectory of a tiny 1-D instance and
// returns the exact optimum over the grid (with the same relaxed movement
// window as LineDP). It is exponential — O(cells^T) — and exists purely as
// a test oracle for the dynamic programs.
func BruteForce1D(in *core.Instance, cellsPerM, maxCells int) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.Config.Dim != 1 {
		return 0, fmt.Errorf("offline: BruteForce1D requires dim 1")
	}
	b := in.Bounds()
	gr, err := buildGrid1D(b.Min[0], b.Max[0], in.Config.M, cellsPerM, maxCells)
	if err != nil {
		return 0, err
	}
	if pow := math.Pow(float64(gr.n), float64(in.T())); pow > 5e7 {
		return 0, fmt.Errorf("offline: brute force too large (%g states)", pow)
	}
	w := 1
	if gr.g > 0 {
		w = int((in.Config.M+gr.g)/gr.g + 1e-9)
		if w < 1 {
			w = 1
		}
	}
	D := in.Config.D
	answerFirst := in.Config.Order == core.AnswerFirst
	reqs := stepRequests1D(in)

	serveAt := func(t, i int) float64 {
		s := 0.0
		for _, v := range reqs[t] {
			s += math.Abs(gr.x(i) - v)
		}
		return s
	}

	var rec func(t, pos int) float64
	rec = func(t, pos int) float64 {
		if t == in.T() {
			return 0
		}
		best := math.Inf(1)
		pre := 0.0
		if answerFirst {
			pre = serveAt(t, pos)
		}
		for next := pos - w; next <= pos+w; next++ {
			if next < 0 || next >= gr.n {
				continue
			}
			c := pre + D*math.Abs(gr.x(pos)-gr.x(next))
			if !answerFirst {
				c += serveAt(t, next)
			}
			if total := c + rec(t+1, next); total < best {
				best = total
			}
		}
		return best
	}
	return rec(0, gr.nearest(in.Start[0])), nil
}

// LineDPPath runs the same relaxed grid DP as LineDP but additionally
// recovers an optimal grid trajectory by storing parent pointers. Memory
// is O(T·cells), so it refuses instances where that would exceed
// maxStates.
func LineDPPath(in *core.Instance, cellsPerM, maxCells, maxStates int) ([]geom.Point, DPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, DPResult{}, err
	}
	if in.Config.Dim != 1 {
		return nil, DPResult{}, fmt.Errorf("offline: LineDPPath requires dim 1")
	}
	if maxStates <= 0 {
		maxStates = 50_000_000
	}
	b := in.Bounds()
	gr, err := buildGrid1D(b.Min[0], b.Max[0], in.Config.M, cellsPerM, maxCells)
	if err != nil {
		return nil, DPResult{}, err
	}
	if in.T()*gr.n > maxStates {
		return nil, DPResult{}, fmt.Errorf("offline: LineDPPath needs %d states > cap %d", in.T()*gr.n, maxStates)
	}
	D := in.Config.D
	w := 1
	if gr.g > 0 {
		w = int((in.Config.M+gr.g)/gr.g + 1e-9)
		if w < 1 {
			w = 1
		}
	}
	n := gr.n
	prev := make([]float64, n)
	next := make([]float64, n)
	serve := make([]float64, n)
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	startIdx := gr.nearest(in.Start[0])
	prev[startIdx] = 0
	parents := make([][]int32, in.T())
	reqs := stepRequests1D(in)
	answerFirst := in.Config.Order == core.AnswerFirst
	slack := 0.0

	for t := 0; t < in.T(); t++ {
		serveCosts(gr, reqs[t], serve)
		slack += D*gr.g + float64(len(reqs[t]))*gr.g/2
		if answerFirst {
			for i := 0; i < n; i++ {
				if !math.IsInf(prev[i], 1) {
					prev[i] += serve[i]
				}
			}
		}
		par := make([]int32, n)
		// O(n·w) transitions: path extraction is a debugging tool, so the
		// simple loop is preferred over the deque trick here.
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			bestJ := int32(-1)
			for j := i - w; j <= i+w; j++ {
				if j < 0 || j >= n {
					continue
				}
				if cand := prev[j] + D*gr.g*math.Abs(float64(i-j)); cand < best {
					best = cand
					bestJ = int32(j)
				}
			}
			if !answerFirst {
				best += serve[i]
			}
			next[i] = best
			par[i] = bestJ
		}
		parents[t] = par
		prev, next = next, prev
	}
	// Locate the optimum and backtrack.
	bestI, bestV := 0, math.Inf(1)
	for i, v := range prev {
		if v < bestV {
			bestI, bestV = i, v
		}
	}
	idxPath := make([]int, in.T()+1)
	idxPath[in.T()] = bestI
	for t := in.T() - 1; t >= 0; t-- {
		idxPath[t] = int(parents[t][idxPath[t+1]])
	}
	path := make([]geom.Point, in.T()+1)
	path[0] = in.Start.Clone()
	for t := 1; t <= in.T(); t++ {
		path[t] = geom.NewPoint(gr.x(idxPath[t]))
	}
	return path, DPResult{Value: bestV, Slack: slack, Cells: n, Pitch: gr.g}, nil
}
