package offline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/median"
)

// Greedy returns a feasible offline trajectory that chases the per-step
// geometric median of the requests at full offline speed m. It is a cheap
// feasible solution used as a descent starting point and as a fallback
// upper bound on OPT.
func Greedy(in *core.Instance) []geom.Point {
	positions := make([]geom.Point, in.T()+1)
	positions[0] = in.Start.Clone()
	cur := in.Start.Clone()
	for t, s := range in.Steps {
		if len(s.Requests) > 0 {
			target := median.Closest(s.Requests, cur, median.Options{})
			cur = geom.MoveToward(cur, target, in.Config.M)
		}
		positions[t+1] = cur.Clone()
	}
	return positions
}

// Descent improves a feasible trajectory by projected block-coordinate
// descent and returns the refined trajectory with its cost. Each block
// update solves a weighted Fermat–Weber problem (weights D on the two
// temporal neighbors, 1 on the requests served at that position) and
// projects the result into the intersection of the movement balls around
// the neighbors; an update is kept only if it lowers the local objective,
// so the total cost is non-increasing and the trajectory stays feasible.
//
// The result is an upper bound on OPT. sweeps ≤ 0 selects a default of 40.
func Descent(in *core.Instance, init []geom.Point, sweeps int) ([]geom.Point, core.Cost, error) {
	if len(init) != in.T()+1 {
		return nil, core.Cost{}, fmt.Errorf("offline: init has %d positions, want %d", len(init), in.T()+1)
	}
	if sweeps <= 0 {
		sweeps = 40
	}
	m := in.Config.M
	D := in.Config.D
	answerFirst := in.Config.Order == core.AnswerFirst

	positions := make([]geom.Point, len(init))
	for i, p := range init {
		positions[i] = p.Clone()
	}

	// servedAt returns the requests charged against positions[k].
	servedAt := func(k int) []geom.Point {
		if answerFirst {
			// positions[k] serves step k+1 (1-based step k+1 reads the
			// pre-move position).
			if k < in.T() {
				return in.Steps[k].Requests
			}
			return nil
		}
		if k >= 1 {
			return in.Steps[k-1].Requests
		}
		return nil
	}

	local := func(k int, p geom.Point) float64 {
		cost := D * geom.Dist(positions[k-1], p)
		if k < in.T() {
			cost += D * geom.Dist(p, positions[k+1])
		}
		for _, v := range servedAt(k) {
			cost += geom.Dist(p, v)
		}
		return cost
	}

	improvedTotal := true
	for sweep := 0; sweep < sweeps && improvedTotal; sweep++ {
		improvedTotal = false
		for k := 1; k <= in.T(); k++ {
			pts, weights := blockProblem(in, positions, k, servedAt(k), D)
			cand := weightedMedian(pts, weights, positions[k])
			cand = projectBalls(cand, positions[k-1], m, neighborOrNil(positions, k, in.T()), m)
			if cand == nil {
				continue
			}
			if local(k, cand) < local(k, positions[k])-1e-12 {
				positions[k] = cand
				improvedTotal = true
			}
		}
	}
	cost, err := core.TrajectoryCost(in, positions)
	if err != nil {
		return nil, core.Cost{}, err
	}
	return positions, cost, nil
}

// neighborOrNil returns positions[k+1] or nil at the trajectory end.
func neighborOrNil(positions []geom.Point, k, T int) geom.Point {
	if k < T {
		return positions[k+1]
	}
	return nil
}

// blockProblem assembles the weighted point set of the block-k subproblem.
func blockProblem(in *core.Instance, positions []geom.Point, k int, served []geom.Point, D float64) ([]geom.Point, []float64) {
	pts := make([]geom.Point, 0, len(served)+2)
	weights := make([]float64, 0, len(served)+2)
	pts = append(pts, positions[k-1])
	weights = append(weights, D)
	if k < in.T() {
		pts = append(pts, positions[k+1])
		weights = append(weights, D)
	}
	for _, v := range served {
		pts = append(pts, v)
		weights = append(weights, 1)
	}
	return pts, weights
}

// weightedMedian runs a weighted Weiszfeld iteration from the given start.
// It returns a (near-)minimizer of Σ w_i·d(p, v_i); exactness is not
// required since callers accept updates only when they improve.
func weightedMedian(pts []geom.Point, weights []float64, start geom.Point) geom.Point {
	y := start.Clone()
	dim := y.Dim()
	for iter := 0; iter < 60; iter++ {
		numer := geom.Zero(dim)
		denom := 0.0
		grad := geom.Zero(dim)
		eta := 0.0
		for i, v := range pts {
			di := geom.Dist(y, v)
			if di < 1e-12 {
				eta += weights[i]
				continue
			}
			w := weights[i] / di
			denom += w
			for c := 0; c < dim; c++ {
				numer[c] += v[c] * w
				grad[c] += (v[c] - y[c]) * w
			}
		}
		if denom == 0 {
			return y
		}
		next := numer.Scale(1 / denom)
		if eta > 0 {
			gn := grad.Norm()
			if gn <= eta {
				return y
			}
			beta := eta / gn
			next = next.Scale(1 - beta).Add(y.Scale(beta))
		}
		if geom.Dist(y, next) < 1e-10 {
			return next
		}
		y = next
	}
	return y
}

// projectBalls returns a point of B(c1, r1) ∩ B(c2, r2) near p via
// alternating projection (c2 may be nil for a single ball). It returns nil
// if the alternation fails to reach the intersection, which callers treat
// as "keep the old position".
func projectBalls(p, c1 geom.Point, r1 float64, c2 geom.Point, r2 float64) geom.Point {
	q := p.Clone()
	for iter := 0; iter < 64; iter++ {
		moved := false
		if d := geom.Dist(q, c1); d > r1 {
			q = geom.Lerp(c1, q, r1/d)
			moved = true
		}
		if c2 != nil {
			if d := geom.Dist(q, c2); d > r2 {
				q = geom.Lerp(c2, q, r2/d)
				moved = true
			}
		}
		if !moved {
			return q
		}
	}
	// Alternating projection did not converge; check final feasibility.
	if geom.Dist(q, c1) <= r1*(1+1e-9) && (c2 == nil || geom.Dist(q, c2) <= r2*(1+1e-9)) {
		return q
	}
	return nil
}
