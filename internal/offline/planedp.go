package offline

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
)

// parallelFor splits [0, n) into one contiguous chunk per processor and
// runs fn on each chunk concurrently. It is the work-sharing primitive of
// the grid DP hot loops (gather form: chunks write disjoint ranges).
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4096 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PlaneDP solves the relaxed grid DP for 2-D instances on a uniform grid
// over the instance's bounding box.
//
// Positions snap to cell centers with error at most pitch·√2/2, so the
// relaxed per-step cap is m + pitch·√2 and the certified slack per step is
// D·pitch·√2 + r_t·pitch·√2/2. Transitions enumerate a precomputed list of
// cell offsets within the relaxed radius; complexity is
// O(T · cells · offsets).
//
// cellsPerM controls the pitch (≈ m/cellsPerM); maxCells caps the total
// grid size, coarsening the pitch if the bounding box is large.
func PlaneDP(in *core.Instance, cellsPerM, maxCells int) (DPResult, error) {
	if err := in.Validate(); err != nil {
		return DPResult{}, err
	}
	if in.Config.Dim != 2 {
		return DPResult{}, fmt.Errorf("offline: PlaneDP requires dim 2, got %d", in.Config.Dim)
	}
	if cellsPerM < 1 {
		cellsPerM = 1
	}
	if maxCells < 4 {
		maxCells = 4
	}
	b := in.Bounds()
	spanX := b.Max[0] - b.Min[0]
	spanY := b.Max[1] - b.Min[1]
	pitch := in.Config.M / float64(cellsPerM)
	// Grow the pitch until the grid fits into maxCells.
	for {
		nx := int(spanX/pitch) + 2
		ny := int(spanY/pitch) + 2
		if nx*ny <= maxCells {
			break
		}
		pitch *= 1.3
	}
	nx := int(spanX/pitch) + 2
	ny := int(spanY/pitch) + 2
	n := nx * ny
	cellAt := func(i int) geom.Point {
		return geom.NewPoint(b.Min[0]+float64(i%nx)*pitch, b.Min[1]+float64(i/nx)*pitch)
	}
	nearest := func(p geom.Point) int {
		ix := int((p[0]-b.Min[0])/pitch + 0.5)
		iy := int((p[1]-b.Min[1])/pitch + 0.5)
		if ix < 0 {
			ix = 0
		}
		if ix >= nx {
			ix = nx - 1
		}
		if iy < 0 {
			iy = 0
		}
		if iy >= ny {
			iy = ny - 1
		}
		return iy*nx + ix
	}

	// Precompute transition offsets within the relaxed radius.
	relaxed := in.Config.M + pitch*math.Sqrt2
	maxOff := int(relaxed/pitch) + 1
	type offset struct {
		dx, dy int
		cost   float64 // D · Euclidean length
	}
	D := in.Config.D
	var offsets []offset
	for dy := -maxOff; dy <= maxOff; dy++ {
		for dx := -maxOff; dx <= maxOff; dx++ {
			dist := pitch * math.Hypot(float64(dx), float64(dy))
			if dist <= relaxed {
				offsets = append(offsets, offset{dx: dx, dy: dy, cost: D * dist})
			}
		}
	}

	prev := make([]float64, n)
	next := make([]float64, n)
	serve := make([]float64, n)
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	prev[nearest(in.Start)] = 0

	answerFirst := in.Config.Order == core.AnswerFirst
	slack := 0.0
	for _, s := range in.Steps {
		// Per-cell serve cost, computed in parallel across row chunks.
		reqs := s.Requests
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c := cellAt(i)
				sum := 0.0
				for _, v := range reqs {
					sum += geom.Dist(c, v)
				}
				serve[i] = sum
			}
		})
		slack += D*pitch*math.Sqrt2 + float64(len(s.Requests))*pitch*math.Sqrt2/2

		if answerFirst {
			for i := 0; i < n; i++ {
				if !math.IsInf(prev[i], 1) {
					prev[i] += serve[i]
				}
			}
		}
		// Gather-form relaxation: each target cell reads its in-window
		// sources, so chunks of targets parallelize without write races.
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ix, iy := i%nx, i/nx
				best := math.Inf(1)
				for _, o := range offsets {
					jx, jy := ix-o.dx, iy-o.dy
					if jx < 0 || jx >= nx || jy < 0 || jy >= ny {
						continue
					}
					if cand := prev[jy*nx+jx] + o.cost; cand < best {
						best = cand
					}
				}
				if !answerFirst {
					best += serve[i]
				}
				next[i] = best
			}
		})
		prev, next = next, prev
	}
	best := math.Inf(1)
	for _, v := range prev {
		if v < best {
			best = v
		}
	}
	return DPResult{Value: best, Slack: slack, Cells: n, Pitch: pitch}, nil
}
