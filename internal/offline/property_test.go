package offline

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestBracketSandwich: on random 1-D instances the estimator's bounds
// always sandwich the cost of an independent feasible trajectory at most
// from below (Lower ≤ any feasible cost) — the defining property of a
// valid bracket.
func TestBracketSandwich(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cfg := core.Config{Dim: 1, D: 1 + r.Range(0, 3), M: r.Range(0.3, 1.5), Delta: 0, Order: core.MoveFirst}
		T := 5 + r.IntN(25)
		in := workload.Hotspot{Half: 10, Sigma: 1}.Generate(r, cfg, T)
		est, err := Best(in, Options{})
		if err != nil {
			return false
		}
		if est.Lower > est.Upper {
			return false
		}
		// Independent feasible trajectory: lazy (stay at start).
		stay := make([]geom.Point, in.T()+1)
		for i := range stay {
			stay[i] = in.Start.Clone()
		}
		c, err := core.TrajectoryCost(in, stay)
		if err != nil {
			return false
		}
		// Lower must not exceed the lazy cost (which is feasible).
		return est.Lower <= c.Total()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDescentOutputAlwaysFeasible across random instances and serve
// orders.
func TestDescentOutputAlwaysFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cfg := core.Config{Dim: 2, D: 1 + r.Range(0, 2), M: r.Range(0.3, 1), Delta: 0, Order: core.MoveFirst}
		if r.Coin() {
			cfg.Order = core.AnswerFirst
		}
		in := workload.Clusters{K: 2, Requests: 1 + r.IntN(3)}.Generate(r, cfg, 10+r.IntN(20))
		refined, _, err := Descent(in, Greedy(in), 8)
		if err != nil {
			return false
		}
		_, err = sim.CheckFeasible(in, refined, cfg.M, 0)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLineDPMonotoneInM: a larger movement cap can only lower the optimum.
func TestLineDPMonotoneInM(t *testing.T) {
	r := xrand.New(61)
	for trial := 0; trial < 15; trial++ {
		T := 10 + r.IntN(20)
		steps := make([][]float64, T)
		for i := range steps {
			steps[i] = []float64{r.Range(-8, 8)}
		}
		slow := lineInstance(core.Config{Dim: 1, D: 2, M: 0.5, Order: core.MoveFirst}, 0, steps...)
		fast := lineInstance(core.Config{Dim: 1, D: 2, M: 2, Order: core.MoveFirst}, 0, steps...)
		rs, err := LineDP(slow, 4, 100000)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := LineDP(fast, 4, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Value > rs.Value+rs.Slack+rf.Slack+1e-9 {
			t.Fatalf("trial %d: faster cap worsened OPT: %v vs %v", trial, rf.Value, rs.Value)
		}
	}
}

// TestLineDPMonotoneInD: a heavier page can only raise the optimum.
func TestLineDPMonotoneInD(t *testing.T) {
	r := xrand.New(62)
	for trial := 0; trial < 15; trial++ {
		T := 10 + r.IntN(20)
		steps := make([][]float64, T)
		for i := range steps {
			steps[i] = []float64{r.Range(-8, 8)}
		}
		light := lineInstance(core.Config{Dim: 1, D: 1, M: 1, Order: core.MoveFirst}, 0, steps...)
		heavy := lineInstance(core.Config{Dim: 1, D: 8, M: 1, Order: core.MoveFirst}, 0, steps...)
		rl, err := LineDP(light, 4, 100000)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := LineDP(heavy, 4, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if rh.Value < rl.Value-rl.Slack-rh.Slack-1e-9 {
			t.Fatalf("trial %d: heavier page lowered OPT: %v vs %v", trial, rh.Value, rl.Value)
		}
	}
}

// TestGreedyNeverBeatenByLazyOnChase: on a monotone chase the greedy
// trajectory dominates staying put.
func TestGreedyNeverBeatenByLazyOnChase(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 1, M: 1, Order: core.MoveFirst}
	var steps [][]float64
	for i := 1; i <= 25; i++ {
		steps = append(steps, []float64{float64(i)})
	}
	in := lineInstance(cfg, 0, steps...)
	gc, err := core.TrajectoryCost(in, Greedy(in))
	if err != nil {
		t.Fatal(err)
	}
	stay := make([]geom.Point, in.T()+1)
	for i := range stay {
		stay[i] = pt(0.0)
	}
	lc, _ := core.TrajectoryCost(in, stay)
	if gc.Total() >= lc.Total() {
		t.Fatalf("greedy (%v) not better than lazy (%v) on a chase", gc.Total(), lc.Total())
	}
}
