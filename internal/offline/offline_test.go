package offline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func lineInstance(cfg core.Config, start float64, stepReqs ...[]float64) *core.Instance {
	in := &core.Instance{Config: cfg, Start: pt(start)}
	for _, reqs := range stepReqs {
		var step core.Step
		for _, v := range reqs {
			step.Requests = append(step.Requests, pt(v))
		}
		in.Steps = append(in.Steps, step)
	}
	return in
}

func cfg1D() core.Config { return core.Config{Dim: 1, D: 2, M: 1, Delta: 0, Order: core.MoveFirst} }

// lineDPNaive is an O(T·N²) reference implementation of the same relaxed
// grid DP, used to validate the monotone-deque optimization.
func lineDPNaive(in *core.Instance, cellsPerM, maxCells int) float64 {
	b := in.Bounds()
	gr, err := buildGrid1D(b.Min[0], b.Max[0], in.Config.M, cellsPerM, maxCells)
	if err != nil {
		panic(err)
	}
	D := in.Config.D
	w := int((in.Config.M+gr.g)/gr.g + 1e-9)
	if w < 1 {
		w = 1
	}
	n := gr.n
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = math.Inf(1)
	}
	prev[gr.nearest(in.Start[0])] = 0
	serve := make([]float64, n)
	reqs := stepRequests1D(in)
	answerFirst := in.Config.Order == core.AnswerFirst
	for t := 0; t < in.T(); t++ {
		serveCosts(gr, reqs[t], serve)
		if answerFirst {
			for i := range prev {
				prev[i] += serve[i]
			}
		}
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for j := i - w; j <= i+w; j++ {
				if j < 0 || j >= n {
					continue
				}
				cand := prev[j] + D*math.Abs(gr.x(i)-gr.x(j))
				if cand < best {
					best = cand
				}
			}
			if !answerFirst {
				best += serve[i]
			}
			next[i] = best
		}
		prev = next
	}
	best := math.Inf(1)
	for _, v := range prev {
		if v < best {
			best = v
		}
	}
	return best
}

func TestLineDPMatchesNaive(t *testing.T) {
	r := xrand.New(31)
	for trial := 0; trial < 30; trial++ {
		T := 1 + r.IntN(12)
		steps := make([][]float64, T)
		for i := range steps {
			nr := r.IntN(4)
			for k := 0; k < nr; k++ {
				steps[i] = append(steps[i], r.Range(-5, 5))
			}
		}
		cfg := cfg1D()
		cfg.D = 1 + r.Range(0, 3)
		if r.Coin() {
			cfg.Order = core.AnswerFirst
		}
		in := lineInstance(cfg, r.Range(-5, 5), steps...)
		got, err := LineDP(in, 3, 10000)
		if err != nil {
			t.Fatal(err)
		}
		want := lineDPNaive(in, 3, 10000)
		if math.Abs(got.Value-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: LineDP = %v, naive = %v", trial, got.Value, want)
		}
	}
}

func TestLineDPStaticOptimum(t *testing.T) {
	// All requests at the start position: OPT = 0.
	in := lineInstance(cfg1D(), 0, []float64{0}, []float64{0}, []float64{0})
	res, err := LineDP(in, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 1e-9 {
		t.Fatalf("static optimum = %v, want 0", res.Value)
	}
}

func TestLineDPSingleFarRequest(t *testing.T) {
	// One request at distance 10, D=2, m=1: either walk x steps toward it
	// (but only one step available!) — T=1: move 1 (cost 2) serve 9 = 11,
	// or stay and pay 10. OPT = 10? Moving 1 costs D·1 + 9 = 11 > 10, so
	// OPT = 10 (stay). With D=1: move 1 + serve 9 = 10 = stay; OPT = 10.
	in := lineInstance(cfg1D(), 0, []float64{10})
	res, err := LineDP(in, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-10) > res.Slack+1e-9 {
		t.Fatalf("OPT = %v (slack %v), want ≈ 10", res.Value, res.Slack)
	}
}

func TestLineDPChaseIsOptimal(t *testing.T) {
	// Requests march away at speed m: OPT follows at speed m paying only
	// movement: T·D·m (serving at distance 0).
	cfg := cfg1D() // D=2, m=1
	var steps [][]float64
	for t := 1; t <= 20; t++ {
		steps = append(steps, []float64{float64(t)})
	}
	in := lineInstance(cfg, 0, steps...)
	res, err := LineDP(in, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 * 2 * 1
	if math.Abs(res.Value-want) > res.Slack+1e-9 {
		t.Fatalf("OPT = %v, want ≈ %v (slack %v)", res.Value, want, res.Slack)
	}
}

func TestLineDPLowerBelowFeasible(t *testing.T) {
	// The certified lower bound must not exceed the cost of any feasible
	// trajectory (here: greedy and descent).
	r := xrand.New(32)
	for trial := 0; trial < 20; trial++ {
		T := 5 + r.IntN(30)
		steps := make([][]float64, T)
		for i := range steps {
			nr := 1 + r.IntN(3)
			for k := 0; k < nr; k++ {
				steps[i] = append(steps[i], r.Range(-8, 8))
			}
		}
		in := lineInstance(cfg1D(), 0, steps...)
		res, err := LineDP(in, 4, 100000)
		if err != nil {
			t.Fatal(err)
		}
		greedy := Greedy(in)
		gc, err := core.TrajectoryCost(in, greedy)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lower() > gc.Total()*(1+1e-9) {
			t.Fatalf("trial %d: Lower %v > greedy %v", trial, res.Lower(), gc.Total())
		}
	}
}

func TestLineDPRejectsWrongDim(t *testing.T) {
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 1, M: 1},
		Start:  pt(0, 0),
		Steps:  []core.Step{{Requests: []geom.Point{pt(1, 1)}}},
	}
	if _, err := LineDP(in, 4, 1000); err == nil {
		t.Fatal("LineDP accepted a 2-D instance")
	}
}

func TestPlaneDPStaticOptimum(t *testing.T) {
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 2, M: 1},
		Start:  pt(0, 0),
		Steps: []core.Step{
			{Requests: []geom.Point{pt(0, 0)}},
			{Requests: []geom.Point{pt(0, 0)}},
		},
	}
	res, err := PlaneDP(in, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 1e-9 {
		t.Fatalf("static 2-D optimum = %v", res.Value)
	}
}

func TestPlaneDPChase(t *testing.T) {
	// Requests march along x at speed m: OPT pays ≈ T·D·m.
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 2, M: 1},
		Start:  pt(0, 0),
	}
	T := 10
	for t := 1; t <= T; t++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(float64(t), 0)}})
	}
	res, err := PlaneDP(in, 3, 40000)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(T) * 2
	if math.Abs(res.Value-want) > res.Slack+1e-6 {
		t.Fatalf("2-D chase OPT = %v, want ≈ %v (slack %v)", res.Value, want, res.Slack)
	}
}

func TestPlaneDPMatchesLineDPOnAxis(t *testing.T) {
	// A 2-D instance confined to the x-axis must agree with the 1-D DP up
	// to the coarser slack.
	mk2 := &core.Instance{Config: core.Config{Dim: 2, D: 1, M: 1}, Start: pt(0, 0)}
	mk1 := lineInstance(core.Config{Dim: 1, D: 1, M: 1}, 0)
	r := xrand.New(33)
	for step := 0; step < 12; step++ {
		x := r.Range(-4, 4)
		mk2.Steps = append(mk2.Steps, core.Step{Requests: []geom.Point{pt(x, 0)}})
		mk1.Steps = append(mk1.Steps, core.Step{Requests: []geom.Point{pt(x)}})
	}
	r2, err := PlaneDP(mk2, 4, 60000)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := LineDP(mk1, 8, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Value-r2.Value) > r1.Slack+r2.Slack+1e-6 {
		t.Fatalf("axis instance: 1-D %v vs 2-D %v (slacks %v, %v)", r1.Value, r2.Value, r1.Slack, r2.Slack)
	}
}

func TestPlaneDPRejectsWrongDim(t *testing.T) {
	in := lineInstance(cfg1D(), 0, []float64{1})
	if _, err := PlaneDP(in, 3, 1000); err == nil {
		t.Fatal("PlaneDP accepted a 1-D instance")
	}
}

func TestGreedyFeasible(t *testing.T) {
	r := xrand.New(34)
	for trial := 0; trial < 20; trial++ {
		in := &core.Instance{Config: core.Config{Dim: 2, D: 1, M: 0.5}, Start: pt(0, 0)}
		for t := 0; t < 30; t++ {
			n := r.IntN(4)
			var step core.Step
			for k := 0; k < n; k++ {
				step.Requests = append(step.Requests, pt(r.Range(-10, 10), r.Range(-10, 10)))
			}
			in.Steps = append(in.Steps, step)
		}
		traj := Greedy(in)
		for i := 1; i < len(traj); i++ {
			if d := geom.Dist(traj[i-1], traj[i]); d > 0.5*(1+1e-9) {
				t.Fatalf("greedy overspeed %v at %d", d, i)
			}
		}
	}
}

func TestDescentImproves(t *testing.T) {
	// Start from a deliberately bad feasible trajectory (stay forever) and
	// verify descent lowers the cost without breaking feasibility. Each
	// step has 3 requests, so the serve weight (3) exceeds the neighbor
	// weight (2D = 2) and single-block moves are locally profitable.
	cfg := core.Config{Dim: 2, D: 1, M: 1}
	in := &core.Instance{Config: cfg, Start: pt(0, 0)}
	r := xrand.New(35)
	for t := 0; t < 25; t++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{
			pt(5+r.Range(-1, 1), 5+r.Range(-1, 1)),
			pt(5+r.Range(-1, 1), 5+r.Range(-1, 1)),
			pt(5+r.Range(-1, 1), 5+r.Range(-1, 1)),
		}})
	}
	stay := make([]geom.Point, in.T()+1)
	for i := range stay {
		stay[i] = pt(0, 0)
	}
	before, err := core.TrajectoryCost(in, stay)
	if err != nil {
		t.Fatal(err)
	}
	refined, after, err := Descent(in, stay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Total() >= before.Total() {
		t.Fatalf("descent did not improve: %v -> %v", before.Total(), after.Total())
	}
	for k := 1; k < len(refined); k++ {
		if d := geom.Dist(refined[k-1], refined[k]); d > cfg.M*(1+1e-6) {
			t.Fatalf("descent broke feasibility at %d: %v", k, d)
		}
	}
}

func TestDescentNeverWorsens(t *testing.T) {
	r := xrand.New(36)
	for trial := 0; trial < 10; trial++ {
		in := &core.Instance{Config: core.Config{Dim: 2, D: 2, M: 0.7}, Start: pt(0, 0)}
		for t := 0; t < 20; t++ {
			n := 1 + r.IntN(3)
			var step core.Step
			for k := 0; k < n; k++ {
				step.Requests = append(step.Requests, pt(r.Range(-5, 5), r.Range(-5, 5)))
			}
			in.Steps = append(in.Steps, step)
		}
		init := Greedy(in)
		before, _ := core.TrajectoryCost(in, init)
		_, after, err := Descent(in, init, 10)
		if err != nil {
			t.Fatal(err)
		}
		if after.Total() > before.Total()*(1+1e-9) {
			t.Fatalf("descent worsened: %v -> %v", before.Total(), after.Total())
		}
	}
}

func TestDescentRejectsBadInit(t *testing.T) {
	in := lineInstance(cfg1D(), 0, []float64{1})
	if _, _, err := Descent(in, []geom.Point{pt(0.0)}, 5); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestBestBracket1D(t *testing.T) {
	r := xrand.New(37)
	for trial := 0; trial < 10; trial++ {
		T := 10 + r.IntN(20)
		steps := make([][]float64, T)
		for i := range steps {
			steps[i] = []float64{r.Range(-6, 6)}
		}
		in := lineInstance(cfg1D(), 0, steps...)
		est, err := Best(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if est.Lower > est.Upper {
			t.Fatalf("bracket inverted: [%v, %v]", est.Lower, est.Upper)
		}
		if est.Upper <= 0 || math.IsInf(est.Upper, 1) {
			t.Fatalf("no usable upper bound: %v", est.Upper)
		}
		if est.Lower <= 0 {
			t.Fatalf("1-D lower bound missing: %+v", est)
		}
	}
}

func TestBestUsesWitness(t *testing.T) {
	// The witness is the exact optimum here: chase at speed m.
	cfg := core.Config{Dim: 1, D: 4, M: 1}
	var steps [][]float64
	witness := []geom.Point{pt(0.0)}
	for t := 1; t <= 15; t++ {
		steps = append(steps, []float64{float64(t)})
		witness = append(witness, pt(float64(t)))
	}
	in := lineInstance(cfg, 0, steps...)
	est, err := Best(in, Options{Witness: witness})
	if err != nil {
		t.Fatal(err)
	}
	wc, _ := core.TrajectoryCost(in, witness)
	if est.Upper > wc.Total()*(1+1e-9) {
		t.Fatalf("Best ignored witness: upper %v > witness %v", est.Upper, wc.Total())
	}
}

func TestBestBracket2D(t *testing.T) {
	in := &core.Instance{Config: core.Config{Dim: 2, D: 1, M: 1}, Start: pt(0, 0)}
	r := xrand.New(38)
	for t := 0; t < 15; t++ {
		in.Steps = append(in.Steps, core.Step{Requests: []geom.Point{pt(r.Range(-3, 3), r.Range(-3, 3))}})
	}
	est, err := Best(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower > est.Upper || est.Lower <= 0 {
		t.Fatalf("2-D bracket bad: %+v", est)
	}
	if est.Mid() < est.Lower || est.Mid() > est.Upper {
		t.Fatalf("Mid outside bracket: %+v", est)
	}
}

func TestBestSkipDP(t *testing.T) {
	in := lineInstance(cfg1D(), 0, []float64{3}, []float64{-2})
	est, err := Best(in, Options{SkipDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.LowerMethod != "serve-only" {
		t.Fatalf("LowerMethod = %q, want serve-only", est.LowerMethod)
	}
}

func TestServeCostsAgainstDirect(t *testing.T) {
	r := xrand.New(39)
	gr := grid1D{lo: -10, g: 0.5, n: 41}
	for trial := 0; trial < 50; trial++ {
		n := r.IntN(6)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-10, 10)
		}
		sortFloats(xs)
		serve := make([]float64, gr.n)
		serveCosts(gr, xs, serve)
		for i := 0; i < gr.n; i++ {
			want := 0.0
			for _, v := range xs {
				want += math.Abs(gr.x(i) - v)
			}
			if math.Abs(serve[i]-want) > 1e-9*(1+want) {
				t.Fatalf("serveCosts[%d] = %v, want %v", i, serve[i], want)
			}
		}
	}
}

func TestSortFloats(t *testing.T) {
	xs := []float64{3, -1, 2, 2, 0}
	sortFloats(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func TestGridNearest(t *testing.T) {
	gr := grid1D{lo: 0, g: 1, n: 11}
	if gr.nearest(3.4) != 3 || gr.nearest(3.6) != 4 {
		t.Fatal("nearest rounding wrong")
	}
	if gr.nearest(-100) != 0 || gr.nearest(100) != 10 {
		t.Fatal("nearest clamp wrong")
	}
}

func TestBuildGridCaps(t *testing.T) {
	gr, err := buildGrid1D(0, 1000, 1, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if gr.n > 500 {
		t.Fatalf("grid exceeded cap: %d", gr.n)
	}
	// Coverage: last point reaches hi.
	if gr.x(gr.n-1) < 1000-1e-6 {
		t.Fatalf("grid does not cover interval: last = %v", gr.x(gr.n-1))
	}
}
