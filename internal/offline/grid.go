// Package offline computes (bounds on) the offline optimum OPT of Mobile
// Server instances, which experiments divide by to measure competitive
// ratios.
//
// Since OPT has no closed form, the package provides:
//
//   - LineDP: a relaxed grid dynamic program on the line whose value is at
//     most OPT plus a certified discretization slack — yielding a certified
//     lower bound on OPT (the conservative direction when validating the
//     paper's upper-bound theorems).
//   - PlaneDP: the analogous program on a 2-D grid for moderate instances.
//   - Descent: projected block-coordinate descent over continuous
//     trajectories, yielding feasible solutions (upper bounds on OPT).
//   - Best: a combined estimator returning an [Lower, Upper] bracket.
//
// All solvers exploit that OPT never benefits from leaving the bounding box
// of the start position and the requests (coordinate-wise clamping is
// 1-Lipschitz and cannot increase any cost term), so grids cover exactly
// that box.
package offline

import (
	"fmt"

	"repro/internal/core"
)

// grid1D is a uniform grid on an interval.
type grid1D struct {
	lo, g float64
	n     int
}

func (gr grid1D) x(i int) float64 { return gr.lo + float64(i)*gr.g }

// nearest returns the index of the grid point closest to x.
func (gr grid1D) nearest(x float64) int {
	i := int((x-gr.lo)/gr.g + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= gr.n {
		i = gr.n - 1
	}
	return i
}

// buildGrid1D covers [lo, hi] with pitch ≈ m/cellsPerM, capped at maxCells
// points (the pitch grows if the cap binds).
func buildGrid1D(lo, hi, m float64, cellsPerM, maxCells int) (grid1D, error) {
	if hi < lo {
		return grid1D{}, fmt.Errorf("offline: empty interval [%g, %g]", lo, hi)
	}
	if cellsPerM < 1 {
		cellsPerM = 1
	}
	if maxCells < 2 {
		maxCells = 2
	}
	g := m / float64(cellsPerM)
	span := hi - lo
	if span == 0 {
		return grid1D{lo: lo, g: g, n: 1}, nil
	}
	n := int(span/g) + 2
	if n > maxCells {
		n = maxCells
		g = span / float64(n-1)
	}
	return grid1D{lo: lo, g: g, n: n}, nil
}

// stepRequests1D returns the sorted request coordinates of each step for a
// 1-D instance.
func stepRequests1D(in *core.Instance) [][]float64 {
	out := make([][]float64, in.T())
	for t, s := range in.Steps {
		xs := make([]float64, len(s.Requests))
		for i, v := range s.Requests {
			xs[i] = v[0]
		}
		sortFloats(xs)
		out[t] = xs
	}
	return out
}

// sortFloats is insertion sort for the typically tiny per-step request
// slices (falls back to O(n²) which is fine for r ≤ a few hundred).
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// serveCosts fills serve[i] = Σ_k |x_i − v_k| for all grid points with one
// linear sweep using prefix sums over the sorted request coordinates.
func serveCosts(gr grid1D, sorted []float64, serve []float64) {
	r := len(sorted)
	if r == 0 {
		for i := range serve {
			serve[i] = 0
		}
		return
	}
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	// ptr = number of requests ≤ current grid point; sumLeft their sum.
	ptr := 0
	sumLeft := 0.0
	for i := 0; i < gr.n; i++ {
		x := gr.x(i)
		for ptr < r && sorted[ptr] <= x {
			sumLeft += sorted[ptr]
			ptr++
		}
		cntL := float64(ptr)
		cntR := float64(r - ptr)
		sumRight := total - sumLeft
		serve[i] = (x*cntL - sumLeft) + (sumRight - x*cntR)
	}
}
