package offline

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/median"
	"repro/internal/sim"
)

// Options configures the combined OPT estimator.
type Options struct {
	// CellsPerM is the grid resolution (cells per movement radius m) for
	// the DP lower bounds. Default 4 in 1-D, 3 in 2-D.
	CellsPerM int
	// MaxCells caps the grid size. Default 400000 (1-D) / 40000 (2-D).
	MaxCells int
	// Sweeps bounds the descent sweeps for upper bounds. Default 40.
	Sweeps int
	// Witness optionally provides a known feasible trajectory (e.g. an
	// adversary's own solution) used as an additional upper bound and
	// descent seed.
	Witness []geom.Point
	// SkipDP disables the grid DP (useful when only an upper bound is
	// needed quickly).
	SkipDP bool
}

func (o Options) withDefaults(dim int) Options {
	if o.CellsPerM <= 0 {
		if dim == 1 {
			o.CellsPerM = 4
		} else {
			o.CellsPerM = 3
		}
	}
	if o.MaxCells <= 0 {
		if dim == 1 {
			o.MaxCells = 400000
		} else {
			o.MaxCells = 40000
		}
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 40
	}
	return o
}

// Estimate brackets the offline optimum: Lower ≤ OPT ≤ Upper.
type Estimate struct {
	// Upper is the cost of the best feasible trajectory found.
	Upper float64
	// Lower is the best certified lower bound (0 if none applies).
	Lower float64
	// UpperMethod and LowerMethod name the winning estimators.
	UpperMethod, LowerMethod string
}

// Mid returns the geometric mean of the bracket, a reasonable point
// estimate when Lower > 0, else Upper.
func (e Estimate) Mid() float64 {
	if e.Lower > 0 {
		return math.Sqrt(e.Lower * e.Upper)
	}
	return e.Upper
}

// Best computes the tightest OPT bracket available for the instance:
//
//	upper bounds: greedy chase, the provided witness, and descent
//	refinements of both;
//	lower bounds: the per-step serve-only bound Σ_t min_c Σ_i d(c, v_{t,i})
//	and the relaxed grid DP (dim 1 and 2).
func Best(in *core.Instance, opts Options) (Estimate, error) {
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	o := opts.withDefaults(in.Config.Dim)
	est := Estimate{Upper: math.Inf(1)}

	consider := func(method string, cost float64) {
		if cost < est.Upper {
			est.Upper = cost
			est.UpperMethod = method
		}
	}

	// Greedy + descent.
	greedy := Greedy(in)
	if c, err := core.TrajectoryCost(in, greedy); err == nil {
		consider("greedy", c.Total())
	}
	if refined, c, err := Descent(in, greedy, o.Sweeps); err == nil && refined != nil {
		consider("descent(greedy)", c.Total())
	}

	// Witness + descent, when provided and feasible.
	if opts.Witness != nil {
		if c, err := sim.CheckFeasible(in, opts.Witness, in.Config.OfflineCap(), 0); err == nil {
			consider("witness", c.Total())
			if refined, rc, err := Descent(in, opts.Witness, o.Sweeps); err == nil && refined != nil {
				consider("descent(witness)", rc.Total())
			}
		}
	}

	// Serve-only lower bound: every step independently pays at least the
	// optimal 1-median cost of its batch; movement is nonnegative.
	serveLB := 0.0
	for _, s := range in.Steps {
		if len(s.Requests) == 0 {
			continue
		}
		c := median.Point(s.Requests, median.Options{})
		serveLB += geom.SumDist(c, s.Requests)
	}
	est.Lower = serveLB
	est.LowerMethod = "serve-only"

	if !o.SkipDP {
		var dp DPResult
		var err error
		switch in.Config.Dim {
		case 1:
			dp, err = LineDP(in, o.CellsPerM, o.MaxCells)
		case 2:
			dp, err = PlaneDP(in, o.CellsPerM, o.MaxCells)
		default:
			err = errUnsupportedDim
		}
		if err == nil {
			if lb := dp.Lower(); lb > est.Lower {
				est.Lower = lb
				est.LowerMethod = "grid-dp"
			}
			// The DP value itself is a near-feasible cost; it is NOT an
			// upper bound (relaxed cap), so it is not considered for
			// est.Upper.
		}
	}
	if est.Lower > est.Upper {
		// Numerical slack can push the certified bound above a loose
		// upper bound; the bracket must stay consistent.
		est.Lower = est.Upper
	}
	return est, nil
}

var errUnsupportedDim = errorString("offline: grid DP supports dim 1 and 2 only")

type errorString string

func (e errorString) Error() string { return string(e) }
