package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPartitionValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Partition
		ok   bool
	}{
		{"nil", nil, true},
		{"single", Partition{0}, true},
		{"increasing", Partition{-2, 0, 3.5}, true},
		{"duplicate", Partition{0, 0}, false},
		{"decreasing", Partition{1, 0}, false},
		{"nan", Partition{math.NaN()}, false},
		{"inf", Partition{math.Inf(1)}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPartitionShardOf(t *testing.T) {
	p := Partition{-1, 2}
	if got := p.Shards(); got != 3 {
		t.Fatalf("Shards() = %d, want 3", got)
	}
	cases := []struct {
		x    float64
		want int
	}{
		{math.Inf(-1), 0}, {-5, 0}, {-1.0000001, 0},
		// Boundary points belong to the region above them.
		{-1, 1}, {0, 1}, {1.999, 1},
		{2, 2}, {100, 2}, {math.Inf(1), 2},
	}
	for _, c := range cases {
		if got := p.ShardOf(c.x); got != c.want {
			t.Errorf("ShardOf(%v) = %d, want %d", c.x, got, c.want)
		}
		if got := p.ShardOfPoint(geom.NewPoint(c.x, 99)); got != c.want {
			t.Errorf("ShardOfPoint(%v, ·) = %d, want %d", c.x, got, c.want)
		}
	}
	if lo, hi := p.Region(0); !math.IsInf(lo, -1) || hi != -1 {
		t.Errorf("Region(0) = [%v, %v)", lo, hi)
	}
	if lo, hi := p.Region(1); lo != -1 || hi != 2 {
		t.Errorf("Region(1) = [%v, %v)", lo, hi)
	}
	if lo, hi := p.Region(2); lo != 2 || !math.IsInf(hi, 1) {
		t.Errorf("Region(2) = [%v, %v)", lo, hi)
	}
}

func TestUniformPartition(t *testing.T) {
	if p := UniformPartition(1, 10); p != nil {
		t.Fatalf("UniformPartition(1) = %v, want nil", p)
	}
	p := UniformPartition(4, 10)
	want := Partition{-5, 0, 5}
	if !p.Equal(want) {
		t.Fatalf("UniformPartition(4, 10) = %v, want %v", p, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every region of the covered interval gets equal width.
	for i := 0; i < 4; i++ {
		lo, hi := p.Region(i)
		if i > 0 && i < 3 && hi-lo != 5 {
			t.Errorf("region %d width %v, want 5", i, hi-lo)
		}
	}
}

func TestConfigEqualAndValidateWithPartition(t *testing.T) {
	base := Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 3, Partition: Partition{-1, 1}}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	same := base
	same.Partition = Partition{-1, 1} // distinct backing array, same layout
	if !base.Equal(same) {
		t.Fatal("configs with equal partitions must be Equal")
	}
	diff := base
	diff.Partition = Partition{-1, 2}
	if base.Equal(diff) {
		t.Fatal("configs with different partitions must not be Equal")
	}
	bad := base
	bad.Partition = Partition{1, -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate must reject a decreasing partition")
	}
}
