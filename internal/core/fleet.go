package core

import (
	"fmt"

	"repro/internal/geom"
)

// FleetAlgorithm is the general online interface of the model: K servers
// move under a shared per-step cap, and every request is served by its
// nearest server. K = 1 recovers the paper's single-server model, so
// FleetAlgorithm is the generalization of Algorithm that the simulation
// engine drives; single-server algorithms are lifted with Fleet.
//
// Implementations must be deterministic given their construction inputs,
// so simulations are reproducible.
type FleetAlgorithm interface {
	// Name identifies the algorithm in reports and tables.
	Name() string
	// Reset prepares the algorithm for a fresh run with the given
	// configuration and one start position per server
	// (len(starts) == cfg.Servers()).
	Reset(cfg Config, starts []geom.Point)
	// Move observes the requests of the current step and returns the new
	// position of every server; the engine enforces the per-server cap
	// (1+δ)·m. The returned slice must have one entry per server.
	Move(requests []geom.Point) []geom.Point
}

// FleetInstance is a complete multi-server input: configuration, one start
// position per server, and the shared request sequence. With
// Config.Servers() == 1 it is equivalent to an Instance.
type FleetInstance struct {
	Config Config
	Starts []geom.Point
	Steps  []Step
}

// T returns the number of time steps.
func (in *FleetInstance) T() int { return len(in.Steps) }

// TotalRequests returns Σ_t r_t.
func (in *FleetInstance) TotalRequests() int {
	n := 0
	for _, s := range in.Steps {
		n += len(s.Requests)
	}
	return n
}

// Validate checks the configuration, the start positions, and every request
// for dimension and finiteness.
func (in *FleetInstance) Validate() error {
	if err := in.Config.Validate(); err != nil {
		return err
	}
	if len(in.Starts) != in.Config.Servers() {
		return fmt.Errorf("core: %d start positions for K=%d servers", len(in.Starts), in.Config.Servers())
	}
	for j, s := range in.Starts {
		if s.Dim() != in.Config.Dim {
			return fmt.Errorf("core: start %d has dim %d, want %d", j, s.Dim(), in.Config.Dim)
		}
		if !s.IsFinite() {
			return fmt.Errorf("core: start %d is not finite: %v", j, s)
		}
	}
	if len(in.Steps) == 0 {
		return ErrEmptyInstance
	}
	for t, s := range in.Steps {
		for i, v := range s.Requests {
			if v.Dim() != in.Config.Dim {
				return fmt.Errorf("core: request %d in step %d has dim %d, want %d", i, t, v.Dim(), in.Config.Dim)
			}
			if !v.IsFinite() {
				return fmt.Errorf("core: request %d in step %d is not finite: %v", i, t, v)
			}
		}
	}
	return nil
}

// Fleet converts the single-server instance to the equivalent K=1 fleet
// instance. The steps are shared, not copied.
func (in *Instance) Fleet() *FleetInstance {
	return &FleetInstance{Config: in.Config, Starts: []geom.Point{in.Start.Clone()}, Steps: in.Steps}
}

// FleetSizer is implemented by fleet algorithms that only support a fixed
// fleet size; the engine rejects a configuration whose Servers() count
// disagrees before the algorithm is ever reset.
type FleetSizer interface {
	FleetSize() int
}

// fleetOfOne lifts a single-server Algorithm to the fleet interface.
type fleetOfOne struct {
	inner Algorithm
	pos   [1]geom.Point
}

// Fleet lifts a single-server Algorithm to a FleetAlgorithm controlling a
// fleet of size 1. Resetting the result with more than one start panics;
// the engine reports the mismatch as an error first via FleetSizer.
func Fleet(alg Algorithm) FleetAlgorithm { return &fleetOfOne{inner: alg} }

// FleetSize implements FleetSizer: a lifted algorithm controls one server.
func (f *fleetOfOne) FleetSize() int { return 1 }

func (f *fleetOfOne) Name() string { return f.inner.Name() }

func (f *fleetOfOne) Reset(cfg Config, starts []geom.Point) {
	if len(starts) != 1 {
		panic(fmt.Sprintf("core: single-server algorithm %s reset with %d starts", f.inner.Name(), len(starts)))
	}
	f.inner.Reset(cfg, starts[0])
}

func (f *fleetOfOne) Move(requests []geom.Point) []geom.Point {
	f.pos[0] = f.inner.Move(requests)
	return f.pos[:]
}
