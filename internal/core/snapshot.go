package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
)

// Snapshotter is an optional extension of Algorithm / FleetAlgorithm for
// checkpoint/resume: an algorithm that carries internal state beyond the
// server positions serializes it here so a session snapshot can reproduce
// the run exactly after a restart.
//
// The contract is deliberately asymmetric with Reset. When the engine
// restores a session it first calls Reset with the checkpointed server
// positions and only then RestoreState, so implementations whose entire
// state is the position vector may return nil from SnapshotState (meaning
// "Reset is enough") and treat RestoreState as a no-op. State must
// round-trip bit-exactly: a restored algorithm must produce the same Move
// sequence as the uninterrupted one.
type Snapshotter interface {
	// SnapshotState serializes the algorithm's internal state. Returning a
	// nil slice (with nil error) means the algorithm has no state beyond
	// what Reset reconstructs.
	SnapshotState() ([]byte, error)
	// RestoreState reinstalls state produced by SnapshotState on an
	// algorithm that has already been Reset with the checkpointed
	// positions.
	RestoreState(data []byte) error
}

// mtcState is the serialized form of MtC's internal state: the tracked
// server position (the configuration is reinstalled by Reset).
type mtcState struct {
	Pos []float64 `json:"pos"`
}

// SnapshotState implements Snapshotter. MtC's only run state is the
// tracked position; it is serialized explicitly rather than relying on
// Reset so a snapshot stays valid even if the engine's and the algorithm's
// position views ever diverge (e.g. under Clamp).
func (a *MtC) SnapshotState() ([]byte, error) {
	return json.Marshal(mtcState{Pos: a.Pos})
}

// RestoreState implements Snapshotter.
func (a *MtC) RestoreState(data []byte) error {
	var st mtcState
	//moblint:rawdecode legacy snapshot compatibility: algorithm state blobs are validated structurally (dim check) below
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: MtC state: %w", err)
	}
	if len(st.Pos) != a.Cfg.Dim {
		return fmt.Errorf("core: MtC state has dim %d, want %d", len(st.Pos), a.Cfg.Dim)
	}
	a.Pos = geom.Point(st.Pos).Clone()
	return nil
}

// SnapshotState implements Snapshotter by delegating to the lifted
// algorithm; a lifted algorithm without snapshot support reports no state.
func (f *fleetOfOne) SnapshotState() ([]byte, error) {
	if sn, ok := f.inner.(Snapshotter); ok {
		return sn.SnapshotState()
	}
	return nil, nil
}

// RestoreState implements Snapshotter by delegating to the lifted
// algorithm. State for an algorithm that cannot restore it is an error:
// silently dropping it would fork the run.
func (f *fleetOfOne) RestoreState(data []byte) error {
	if sn, ok := f.inner.(Snapshotter); ok {
		return sn.RestoreState(data)
	}
	return fmt.Errorf("core: %s does not support state restore", f.inner.Name())
}
