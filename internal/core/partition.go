package core

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
)

// Partition describes the spatial sharding of the serving layer: a strictly
// increasing list of boundaries on coordinate axis 0 that splits the space
// into len(p)+1 contiguous regions, one shard per region. Shard i covers
// [p[i-1], p[i]) — boundary points belong to the region above them — with
// the outer regions unbounded. An empty (nil) partition means the space is
// unsharded: everything routes to shard 0.
//
// The partition is part of Config so a checkpointed sharded run records the
// layout it was taken under; the engine itself is partition-agnostic and
// routing lives in internal/shard.
type Partition []float64

// Shards returns the number of regions: len(p)+1.
func (p Partition) Shards() int { return len(p) + 1 }

// Validate reports whether the boundaries are finite and strictly
// increasing.
func (p Partition) Validate() error {
	for i, b := range p {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("core: partition boundary %d is not finite: %v", i, b)
		}
		if i > 0 && p[i-1] >= b {
			return fmt.Errorf("core: partition boundaries must be strictly increasing: [%d]=%v >= [%d]=%v", i-1, p[i-1], i, b)
		}
	}
	return nil
}

// Equal reports whether two partitions describe the same shard layout. A
// nil and an empty non-nil partition are equal (both mean unsharded).
func (p Partition) Equal(q Partition) bool {
	return slices.Equal(p, q)
}

// ShardOf returns the shard index of coordinate x on axis 0: the number of
// boundaries at or below x, so region i is [p[i-1], p[i]).
func (p Partition) ShardOf(x float64) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if p[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ShardOfPoint routes a point by its axis-0 coordinate.
func (p Partition) ShardOfPoint(v geom.Point) int { return p.ShardOf(v[0]) }

// Region returns shard i's extent [lo, hi) on axis 0; the outer regions
// return ±Inf on their open side.
func (p Partition) Region(i int) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if i > 0 {
		lo = p[i-1]
	}
	if i < len(p) {
		hi = p[i]
	}
	return lo, hi
}

// UniformPartition splits [-halfWidth, halfWidth] on axis 0 into n regions
// of equal width: n-1 boundaries strictly inside the interval (the outer
// regions extend to ±Inf beyond it). n <= 1 returns the unsharded nil
// partition.
func UniformPartition(n int, halfWidth float64) Partition {
	if n <= 1 {
		return nil
	}
	p := make(Partition, n-1)
	for i := range p {
		p[i] = -halfWidth + 2*halfWidth*float64(i+1)/float64(n)
	}
	return p
}
