package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/median"
)

// TieBreak selects the center when the 1-median minimizer set is not a
// single point (collinear requests, even count).
type TieBreak int

const (
	// TieBreakClosest is the paper's rule: among all minimizers pick the
	// one closest to the current server position.
	TieBreakClosest TieBreak = iota
	// TieBreakMidpoint picks the midpoint of the minimizer segment. Used
	// as an ablation (experiment E11).
	TieBreakMidpoint
)

// SpeedPolicy selects how far MtC moves toward the center per step.
type SpeedPolicy int

const (
	// SpeedPaper is the paper's rule: move min(1, r/D)·d(P, c), capped at
	// (1+δ)m.
	SpeedPaper SpeedPolicy = iota
	// SpeedFull always moves min(d(P, c), (1+δ)m): greedy full speed. Used
	// as an ablation (experiment E11).
	SpeedFull
)

// MtCOptions configures variants of the Move-to-Center algorithm. The zero
// value is the algorithm exactly as described in the paper.
type MtCOptions struct {
	TieBreak TieBreak
	Speed    SpeedPolicy
	// Median controls the geometric-median solver.
	Median median.Options
}

// MtC is the paper's deterministic Move-to-Center algorithm (Section 4).
//
// On receiving requests v_1..v_r at server position P: let c minimize
// Σ_i d(c, v_i), breaking ties toward P. Move toward c by
// min( min(1, r/D)·d(P,c), (1+δ)m ). With no requests the server stays.
type MtC struct {
	PositionTracker
	opts MtCOptions
	// centerBuf holds the most recent center: Center computes into it so
	// the steady-state Move path allocates nothing. It is overwritten by
	// the next Center/Move call.
	centerBuf geom.Point
}

// NewMtC returns the paper's Move-to-Center algorithm.
func NewMtC() *MtC { return &MtC{} }

// NewMtCWithOptions returns an MtC variant for ablation studies.
func NewMtCWithOptions(opts MtCOptions) *MtC { return &MtC{opts: opts} }

// Name implements Algorithm.
func (a *MtC) Name() string {
	switch {
	case a.opts.TieBreak == TieBreakMidpoint && a.opts.Speed == SpeedFull:
		return "MtC[midpoint,full-speed]"
	case a.opts.TieBreak == TieBreakMidpoint:
		return "MtC[midpoint]"
	case a.opts.Speed == SpeedFull:
		return "MtC[full-speed]"
	default:
		return "MtC"
	}
}

// Center returns the target point c for the given requests from the current
// position, applying the configured tie-break. The returned point is a
// buffer the next Center/Move call overwrites; clone to retain it.
func (a *MtC) Center(requests []geom.Point) geom.Point {
	if a.opts.TieBreak == TieBreakMidpoint {
		return median.Point(requests, a.opts.Median)
	}
	a.centerBuf = median.ClosestInto(a.centerBuf, requests, a.Pos, a.opts.Median)
	return a.centerBuf
}

// Move implements Algorithm.
func (a *MtC) Move(requests []geom.Point) geom.Point {
	if len(requests) == 0 {
		return a.Pos
	}
	c := a.Center(requests)
	dist := geom.Dist(a.Pos, c)
	want := dist
	if a.opts.Speed == SpeedPaper {
		r := float64(len(requests))
		speed := math.Min(1, r/a.Cfg.D)
		want = speed * dist
	}
	return a.CappedMove(c, want)
}
