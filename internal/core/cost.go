package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Cost accumulates the two components of the Mobile Server objective.
type Cost struct {
	// Move is the D-weighted movement cost Σ_t D·d(P_t, P_{t+1}).
	Move float64
	// Serve is the total request cost Σ_t Σ_i d(P_serve, v_{t,i}).
	Serve float64
}

// Total returns Move + Serve.
func (c Cost) Total() float64 { return c.Move + c.Serve }

// Add returns the component-wise sum of two costs.
func (c Cost) Add(o Cost) Cost { return Cost{Move: c.Move + o.Move, Serve: c.Serve + o.Serve} }

// String renders the cost with its components.
func (c Cost) String() string {
	return fmt.Sprintf("total=%.6g (move=%.6g serve=%.6g)", c.Total(), c.Move, c.Serve)
}

// StepCost returns the cost of one step in which the server moves from
// `from` to `to` while the given requests are outstanding, under the serve
// order of cfg. For MoveFirst the requests are charged against `to`; for
// AnswerFirst against `from`. The movement itself costs D·d(from,to) in
// both orders.
func StepCost(cfg Config, from, to geom.Point, requests []geom.Point) Cost {
	servePos := to
	if cfg.Order == AnswerFirst {
		servePos = from
	}
	c := Cost{Move: cfg.D * geom.Dist(from, to)}
	for _, v := range requests {
		c.Serve += geom.Dist(servePos, v)
	}
	return c
}

// NearestServeCost returns Σ_v min_j d(positions[j], v): every request is
// served by its nearest server. With a single position it reduces to the
// paper's serve cost.
func NearestServeCost(positions, requests []geom.Point) float64 {
	total := 0.0
	for _, v := range requests {
		best := math.Inf(1)
		for _, p := range positions {
			if d := geom.Dist(p, v); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// FleetStepCost returns the cost of one step in which the fleet moves from
// prev to next (one entry per server) while the given requests are
// outstanding, under the serve order of cfg. For MoveFirst the requests are
// charged against the next positions; for AnswerFirst against prev. Each
// server's movement costs D times its distance. For a single server it
// coincides exactly with StepCost.
func FleetStepCost(cfg Config, prev, next []geom.Point, requests []geom.Point) Cost {
	var c Cost
	for j := range next {
		c.Move += cfg.D * geom.Dist(prev[j], next[j])
	}
	servePos := next
	if cfg.Order == AnswerFirst {
		servePos = prev
	}
	c.Serve = NearestServeCost(servePos, requests)
	return c
}

// TrajectoryCost returns the total cost of following positions[0..T] on the
// instance, where positions[0] must equal in.Start and positions[t+1] is
// the server position after the move of step t. It does not check the
// movement cap; use sim.Run or offline.CheckFeasible for that.
func TrajectoryCost(in *Instance, positions []geom.Point) (Cost, error) {
	if len(positions) != in.T()+1 {
		return Cost{}, fmt.Errorf("core: trajectory has %d positions, want %d", len(positions), in.T()+1)
	}
	if !positions[0].Equal(in.Start) {
		return Cost{}, fmt.Errorf("core: trajectory starts at %v, instance starts at %v", positions[0], in.Start)
	}
	var total Cost
	for t, s := range in.Steps {
		total = total.Add(StepCost(in.Config, positions[t], positions[t+1], s.Requests))
	}
	return total, nil
}
