package core
