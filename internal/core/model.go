// Package core defines the Mobile Server Problem (Feldkord & Meyer auf der
// Heide, SPAA 2017) and implements the paper's Move-to-Center (MtC)
// algorithm.
//
// Model recap: a single server holding a data page lives in ℝ^d. Time is
// discrete. In step t a finite batch of requests v_{t,1..r_t} appears. The
// server may move at most distance m per step (the online algorithm may be
// augmented to (1+δ)m); moving distance x costs D·x for a constant D ≥ 1,
// and each request costs its distance to the server. In the default
// Move-First order the server moves after seeing the requests and serves
// them from the new position; in the Answer-First variant it serves from
// the old position and then moves.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ServeOrder selects when requests are charged relative to the move.
type ServeOrder int

const (
	// MoveFirst is the paper's default: the server moves upon knowing the
	// current requests, which are then served from the new position.
	MoveFirst ServeOrder = iota
	// AnswerFirst serves the requests from the current position before the
	// server moves (Section 2 / Theorems 3 and 7 of the paper).
	AnswerFirst
)

// String returns the canonical name of the serve order.
func (s ServeOrder) String() string {
	switch s {
	case MoveFirst:
		return "move-first"
	case AnswerFirst:
		return "answer-first"
	default:
		return fmt.Sprintf("ServeOrder(%d)", int(s))
	}
}

// Config carries the global parameters of a Mobile Server instance.
type Config struct {
	// Dim is the dimension of the Euclidean space, d >= 1.
	Dim int
	// D is the page weight: moving distance x costs D·x. D >= 1.
	D float64
	// M is the per-step movement limit m of the offline optimum, m > 0.
	M float64
	// Delta is the resource-augmentation factor δ ∈ [0, 1]: the online
	// algorithm may move up to (1+δ)·M per step. Zero means no
	// augmentation.
	Delta float64
	// Order selects Move-First (default) or Answer-First serving.
	Order ServeOrder
	// K is the number of mobile servers. 0 and 1 both select the paper's
	// single-server model; K > 1 selects the fleet extension sketched in
	// the paper's conclusion (Section 6), where each request is served by
	// its nearest server and every server obeys the per-step cap.
	K int
	// Partition, when non-empty, describes the spatial sharding of the
	// serving layer: boundaries on axis 0 splitting the space into
	// contiguous regions, each served by its own fleet of K servers (see
	// internal/shard). The engine ignores it; it travels in Config so
	// checkpoints record the shard layout they were taken under.
	Partition Partition
}

// Servers returns the fleet size, treating the zero value as the paper's
// single server.
func (c Config) Servers() int {
	if c.K < 1 {
		return 1
	}
	return c.K
}

// OnlineCap returns the per-step movement bound (1+δ)·m available to the
// online algorithm.
func (c Config) OnlineCap() float64 { return (1 + c.Delta) * c.M }

// OfflineCap returns the per-step movement bound m of the offline optimum.
func (c Config) OfflineCap() float64 { return c.M }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Dim < 1:
		return fmt.Errorf("core: Dim = %d, need >= 1", c.Dim)
	case !(c.D >= 1) || math.IsInf(c.D, 0):
		return fmt.Errorf("core: D = %v, need finite D >= 1", c.D)
	case !(c.M > 0) || math.IsInf(c.M, 0):
		return fmt.Errorf("core: M = %v, need finite M > 0", c.M)
	case c.Delta < 0 || c.Delta > 1 || math.IsNaN(c.Delta):
		return fmt.Errorf("core: Delta = %v, need 0 <= delta <= 1", c.Delta)
	case c.Order != MoveFirst && c.Order != AnswerFirst:
		return fmt.Errorf("core: unknown serve order %d", int(c.Order))
	case c.K < 0:
		return fmt.Errorf("core: K = %d, need >= 0 (0 means 1)", c.K)
	}
	return c.Partition.Validate()
}

// Equal reports whether two configurations are identical, comparing the
// partitions by value. (Config carries a slice field, so == does not
// compile on it; this is the comparison the engine and tests use.)
func (c Config) Equal(o Config) bool {
	return c.Dim == o.Dim && c.D == o.D && c.M == o.M && c.Delta == o.Delta &&
		c.Order == o.Order && c.K == o.K && c.Partition.Equal(o.Partition)
}

// Step is one time step: the batch of requests revealed at that step. A
// step may be empty (no requests), in which case only movement can incur
// cost.
type Step struct {
	Requests []geom.Point
}

// Instance is a complete Mobile Server input: configuration, the server's
// start position, and the request sequence.
type Instance struct {
	Config Config
	Start  geom.Point
	Steps  []Step
}

// T returns the number of time steps.
func (in *Instance) T() int { return len(in.Steps) }

// TotalRequests returns Σ_t r_t.
func (in *Instance) TotalRequests() int {
	n := 0
	for _, s := range in.Steps {
		n += len(s.Requests)
	}
	return n
}

// RequestRange returns the minimum and maximum number of requests over
// steps (Rmin, Rmax). Both are 0 for an empty instance.
func (in *Instance) RequestRange() (rmin, rmax int) {
	if len(in.Steps) == 0 {
		return 0, 0
	}
	rmin = math.MaxInt
	for _, s := range in.Steps {
		r := len(s.Requests)
		if r < rmin {
			rmin = r
		}
		if r > rmax {
			rmax = r
		}
	}
	return rmin, rmax
}

// AllRequests returns all request points of the instance in step order.
func (in *Instance) AllRequests() []geom.Point {
	out := make([]geom.Point, 0, in.TotalRequests())
	for _, s := range in.Steps {
		out = append(out, s.Requests...)
	}
	return out
}

// Bounds returns an axis-aligned box containing the start position and all
// requests.
func (in *Instance) Bounds() geom.Box {
	pts := append([]geom.Point{in.Start}, in.AllRequests()...)
	return geom.Bounds(pts)
}

// ErrEmptyInstance is returned by Validate for instances without steps.
var ErrEmptyInstance = errors.New("core: instance has no steps")

// Validate checks the configuration, the start position, and every request
// for dimension and finiteness.
func (in *Instance) Validate() error {
	if err := in.Config.Validate(); err != nil {
		return err
	}
	if in.Start.Dim() != in.Config.Dim {
		return fmt.Errorf("core: start position dim %d != config dim %d", in.Start.Dim(), in.Config.Dim)
	}
	if !in.Start.IsFinite() {
		return fmt.Errorf("core: start position %v not finite", in.Start)
	}
	if len(in.Steps) == 0 {
		return ErrEmptyInstance
	}
	for t, s := range in.Steps {
		for i, v := range s.Requests {
			if v.Dim() != in.Config.Dim {
				return fmt.Errorf("core: request %d in step %d has dim %d, want %d", i, t, v.Dim(), in.Config.Dim)
			}
			if !v.IsFinite() {
				return fmt.Errorf("core: request %d in step %d is not finite: %v", i, t, v)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Config: in.Config, Start: in.Start.Clone(), Steps: make([]Step, len(in.Steps))}
	for t, s := range in.Steps {
		reqs := make([]geom.Point, len(s.Requests))
		for i, v := range s.Requests {
			reqs[i] = v.Clone()
		}
		out.Steps[t] = Step{Requests: reqs}
	}
	return out
}
