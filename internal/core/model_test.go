package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func validCfg() Config {
	return Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
}

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func TestConfigValidateOK(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Delta 0 and 1 are both allowed.
	c := validCfg()
	c.Delta = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("delta=0 rejected: %v", err)
	}
	c.Delta = 1
	if err := c.Validate(); err != nil {
		t.Fatalf("delta=1 rejected: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero dim", func(c *Config) { c.Dim = 0 }},
		{"negative dim", func(c *Config) { c.Dim = -2 }},
		{"D below 1", func(c *Config) { c.D = 0.5 }},
		{"D NaN", func(c *Config) { c.D = math.NaN() }},
		{"D Inf", func(c *Config) { c.D = math.Inf(1) }},
		{"M zero", func(c *Config) { c.M = 0 }},
		{"M negative", func(c *Config) { c.M = -1 }},
		{"M Inf", func(c *Config) { c.M = math.Inf(1) }},
		{"delta negative", func(c *Config) { c.Delta = -0.1 }},
		{"delta above 1", func(c *Config) { c.Delta = 1.5 }},
		{"delta NaN", func(c *Config) { c.Delta = math.NaN() }},
		{"bad order", func(c *Config) { c.Order = ServeOrder(99) }},
	}
	for _, tc := range cases {
		c := validCfg()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, c)
		}
	}
}

func TestCaps(t *testing.T) {
	c := Config{Dim: 1, D: 1, M: 2, Delta: 0.25}
	if c.OnlineCap() != 2.5 {
		t.Fatalf("OnlineCap = %v, want 2.5", c.OnlineCap())
	}
	if c.OfflineCap() != 2 {
		t.Fatalf("OfflineCap = %v, want 2", c.OfflineCap())
	}
}

func TestServeOrderString(t *testing.T) {
	if MoveFirst.String() != "move-first" || AnswerFirst.String() != "answer-first" {
		t.Fatal("ServeOrder names wrong")
	}
	if !strings.Contains(ServeOrder(42).String(), "42") {
		t.Fatal("unknown serve order should include its value")
	}
}

func newTestInstance() *Instance {
	return &Instance{
		Config: validCfg(),
		Start:  pt(0, 0),
		Steps: []Step{
			{Requests: []geom.Point{pt(1, 0), pt(2, 0)}},
			{Requests: []geom.Point{pt(3, 1)}},
			{Requests: nil},
			{Requests: []geom.Point{pt(-1, -1), pt(0, 4), pt(2, 2)}},
		},
	}
}

func TestInstanceAccessors(t *testing.T) {
	in := newTestInstance()
	if in.T() != 4 {
		t.Fatalf("T = %d", in.T())
	}
	if in.TotalRequests() != 6 {
		t.Fatalf("TotalRequests = %d", in.TotalRequests())
	}
	rmin, rmax := in.RequestRange()
	if rmin != 0 || rmax != 3 {
		t.Fatalf("RequestRange = %d,%d", rmin, rmax)
	}
	if len(in.AllRequests()) != 6 {
		t.Fatalf("AllRequests len = %d", len(in.AllRequests()))
	}
	b := in.Bounds()
	if !b.Min.Equal(pt(-1, -1)) || !b.Max.Equal(pt(3, 4)) {
		t.Fatalf("Bounds = %v..%v", b.Min, b.Max)
	}
}

func TestRequestRangeEmpty(t *testing.T) {
	in := &Instance{}
	rmin, rmax := in.RequestRange()
	if rmin != 0 || rmax != 0 {
		t.Fatalf("empty RequestRange = %d,%d", rmin, rmax)
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := newTestInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestInstanceValidateRejects(t *testing.T) {
	in := newTestInstance()
	in.Start = pt(1, 2, 3)
	if err := in.Validate(); err == nil {
		t.Error("wrong start dim accepted")
	}

	in = newTestInstance()
	in.Start = pt(math.NaN(), 0)
	if err := in.Validate(); err == nil {
		t.Error("NaN start accepted")
	}

	in = newTestInstance()
	in.Steps = nil
	if err := in.Validate(); err != ErrEmptyInstance {
		t.Errorf("empty instance error = %v, want ErrEmptyInstance", err)
	}

	in = newTestInstance()
	in.Steps[1].Requests = []geom.Point{pt(1.0)}
	if err := in.Validate(); err == nil {
		t.Error("wrong request dim accepted")
	}

	in = newTestInstance()
	in.Steps[0].Requests[0] = pt(math.Inf(1), 0)
	if err := in.Validate(); err == nil {
		t.Error("infinite request accepted")
	}

	in = newTestInstance()
	in.Config.D = 0
	if err := in.Validate(); err == nil {
		t.Error("bad config accepted")
	}
}

func TestInstanceCloneDeep(t *testing.T) {
	in := newTestInstance()
	cp := in.Clone()
	cp.Start[0] = 99
	cp.Steps[0].Requests[0][0] = 99
	if in.Start[0] == 99 || in.Steps[0].Requests[0][0] == 99 {
		t.Fatal("Clone aliases original storage")
	}
	if cp.T() != in.T() || cp.TotalRequests() != in.TotalRequests() {
		t.Fatal("Clone changed shape")
	}
}
