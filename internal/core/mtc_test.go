package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestMtCNoRequestsStays(t *testing.T) {
	a := NewMtC()
	a.Reset(validCfg(), pt(1, 2))
	got := a.Move(nil)
	if !got.Equal(pt(1, 2)) {
		t.Fatalf("MtC moved without requests: %v", got)
	}
}

func TestMtCSingleRequestFullWeight(t *testing.T) {
	// r=1, D=1: speed = min(1, 1/1) = 1, so move all the way to the
	// request if within the cap.
	cfg := Config{Dim: 1, D: 1, M: 10, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(3.0)})
	if !got.ApproxEqual(pt(3.0), 1e-12) {
		t.Fatalf("MtC position = %v, want 3", got)
	}
}

func TestMtCSpeedFractionROverD(t *testing.T) {
	// r=1, D=4: speed = 1/4, so the server covers a quarter of the
	// distance to the center.
	cfg := Config{Dim: 1, D: 4, M: 100, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(8.0)})
	if !got.ApproxEqual(pt(2.0), 1e-12) {
		t.Fatalf("MtC position = %v, want 2", got)
	}
}

func TestMtCSpeedManyRequests(t *testing.T) {
	// r=8, D=4: speed = min(1, 2) = 1.
	cfg := Config{Dim: 1, D: 4, M: 100, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	reqs := make([]geom.Point, 8)
	for i := range reqs {
		reqs[i] = pt(8.0)
	}
	got := a.Move(reqs)
	if !got.ApproxEqual(pt(8.0), 1e-12) {
		t.Fatalf("MtC position = %v, want 8", got)
	}
}

func TestMtCCapBinds(t *testing.T) {
	// Distance to center 100, cap (1+0.5)*2 = 3: move exactly 3.
	cfg := Config{Dim: 1, D: 1, M: 2, Delta: 0.5}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(100.0)})
	if !got.ApproxEqual(pt(3.0), 1e-12) {
		t.Fatalf("MtC position = %v, want 3", got)
	}
}

func TestMtCCapOnFraction(t *testing.T) {
	// r=1, D=2 → want 0.5·dist = 50; cap 3 binds.
	cfg := Config{Dim: 1, D: 2, M: 2, Delta: 0.5}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(100.0)})
	if !got.ApproxEqual(pt(3.0), 1e-12) {
		t.Fatalf("MtC position = %v, want 3", got)
	}
}

func TestMtCTieBreakStaysInsideMedianInterval(t *testing.T) {
	// Two requests straddle the server in 1-D: every point between them is
	// a minimizer; the closest one is the server's own position, so MtC
	// does not move.
	cfg := Config{Dim: 1, D: 1, M: 10, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(5.0))
	got := a.Move([]geom.Point{pt(0.0), pt(10.0)})
	if !got.ApproxEqual(pt(5.0), 1e-9) {
		t.Fatalf("MtC moved inside median interval: %v", got)
	}
}

func TestMtCTieBreakMovesToNearestEnd(t *testing.T) {
	// Server left of the interval [4, 10]: nearest minimizer is 4.
	// r=2, D=1 → speed 1, cap large → lands exactly on 4.
	cfg := Config{Dim: 1, D: 1, M: 100, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(4.0), pt(10.0)})
	if !got.ApproxEqual(pt(4.0), 1e-9) {
		t.Fatalf("MtC position = %v, want 4", got)
	}
}

func TestMtCMidpointAblation(t *testing.T) {
	cfg := Config{Dim: 1, D: 1, M: 100, Delta: 0}
	a := NewMtCWithOptions(MtCOptions{TieBreak: TieBreakMidpoint})
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(4.0), pt(10.0)})
	if !got.ApproxEqual(pt(7.0), 1e-9) {
		t.Fatalf("midpoint MtC position = %v, want 7", got)
	}
}

func TestMtCFullSpeedAblation(t *testing.T) {
	// r=1, D=4 normally moves a quarter; full-speed covers everything
	// within the cap.
	cfg := Config{Dim: 1, D: 4, M: 100, Delta: 0}
	a := NewMtCWithOptions(MtCOptions{Speed: SpeedFull})
	a.Reset(cfg, pt(0.0))
	got := a.Move([]geom.Point{pt(8.0)})
	if !got.ApproxEqual(pt(8.0), 1e-9) {
		t.Fatalf("full-speed MtC position = %v, want 8", got)
	}
}

func TestMtCNames(t *testing.T) {
	if NewMtC().Name() != "MtC" {
		t.Fatalf("Name = %q", NewMtC().Name())
	}
	if NewMtCWithOptions(MtCOptions{TieBreak: TieBreakMidpoint}).Name() != "MtC[midpoint]" {
		t.Fatal("midpoint name wrong")
	}
	if NewMtCWithOptions(MtCOptions{Speed: SpeedFull}).Name() != "MtC[full-speed]" {
		t.Fatal("full-speed name wrong")
	}
	if NewMtCWithOptions(MtCOptions{TieBreak: TieBreakMidpoint, Speed: SpeedFull}).Name() != "MtC[midpoint,full-speed]" {
		t.Fatal("combined name wrong")
	}
}

func TestMtC2DMovesTowardMedian(t *testing.T) {
	cfg := Config{Dim: 2, D: 1, M: 0.5, Delta: 0}
	a := NewMtC()
	a.Reset(cfg, pt(0, 0))
	reqs := []geom.Point{pt(10, 0), pt(10, 1), pt(10, -1)}
	got := a.Move(reqs)
	// Median of the three requests is (10, 0); the step is capped at 0.5.
	if math.Abs(geom.Dist(pt(0, 0), got)-0.5) > 1e-9 {
		t.Fatalf("moved %v, want cap 0.5", geom.Dist(pt(0, 0), got))
	}
	if math.Abs(got[1]) > 1e-9 || got[0] <= 0 {
		t.Fatalf("did not move toward (10,0): %v", got)
	}
}

func TestMtCNeverExceedsCapProperty(t *testing.T) {
	r := xrand.New(77)
	for trial := 0; trial < 300; trial++ {
		dim := 1 + r.IntN(3)
		cfg := Config{
			Dim:   dim,
			D:     1 + r.Range(0, 9),
			M:     r.Range(0.01, 2),
			Delta: r.Float64(),
		}
		a := NewMtC()
		start := make(geom.Point, dim)
		for k := range start {
			start[k] = r.Range(-10, 10)
		}
		a.Reset(cfg, start)
		prev := start.Clone()
		for step := 0; step < 20; step++ {
			nreq := r.IntN(5)
			reqs := make([]geom.Point, nreq)
			for i := range reqs {
				p := make(geom.Point, dim)
				for k := range p {
					p[k] = r.Range(-50, 50)
				}
				reqs[i] = p
			}
			got := a.Move(reqs)
			moved := geom.Dist(prev, got)
			if moved > cfg.OnlineCap()*(1+1e-9)+1e-12 {
				t.Fatalf("trial %d step %d: moved %v > cap %v", trial, step, moved, cfg.OnlineCap())
			}
			prev = got.Clone()
		}
	}
}

func TestMtCProgressProperty(t *testing.T) {
	// Moving toward the center never increases the distance to it.
	r := xrand.New(78)
	for trial := 0; trial < 200; trial++ {
		cfg := Config{Dim: 2, D: 1 + r.Range(0, 4), M: r.Range(0.1, 1), Delta: r.Float64()}
		a := NewMtC()
		a.Reset(cfg, pt(r.Range(-5, 5), r.Range(-5, 5)))
		nreq := 1 + r.IntN(6)
		reqs := make([]geom.Point, nreq)
		for i := range reqs {
			reqs[i] = pt(r.Range(-20, 20), r.Range(-20, 20))
		}
		before := a.Pos.Clone()
		c := a.Center(reqs)
		after := a.Move(reqs)
		if geom.Dist(after, c) > geom.Dist(before, c)+1e-9 {
			t.Fatalf("distance to center grew: %v -> %v", geom.Dist(before, c), geom.Dist(after, c))
		}
	}
}

func TestPositionTrackerCappedMove(t *testing.T) {
	p := &PositionTracker{}
	p.Reset(Config{Dim: 1, D: 1, M: 1, Delta: 0}, pt(0.0))
	got := p.CappedMove(pt(10.0), 5)
	// want 5 but cap (1+0)*1 = 1.
	if !got.ApproxEqual(pt(1.0), 1e-12) {
		t.Fatalf("CappedMove = %v, want 1", got)
	}
	got = p.CappedMove(pt(10.0), 0.25)
	if !got.ApproxEqual(pt(1.25), 1e-12) {
		t.Fatalf("CappedMove = %v, want 1.25", got)
	}
}
