package core

import "repro/internal/geom"

// Algorithm is an online algorithm for the Mobile Server Problem. The
// simulator drives it step by step: Reset once, then one Move call per time
// step with that step's requests. Move returns the desired new server
// position; the simulator enforces the movement cap (1+δ)·m.
//
// Implementations must be deterministic given their construction inputs
// (randomized algorithms receive an explicit random stream at
// construction), so simulations are reproducible.
type Algorithm interface {
	// Name identifies the algorithm in reports and tables.
	Name() string
	// Reset prepares the algorithm for a fresh instance with the given
	// configuration and start position.
	Reset(cfg Config, start geom.Point)
	// Move observes the requests of the current step and returns the new
	// server position. In the Move-First order the requests are then
	// served from the returned position; in Answer-First they have already
	// been served from the previous position. Either way the algorithm
	// sees the requests before moving (the paper's information model).
	Move(requests []geom.Point) geom.Point
}

// PositionTracker is a helper embedded by algorithm implementations to hold
// the common per-run state.
type PositionTracker struct {
	Cfg Config
	Pos geom.Point
	// spare is the position double-buffer: CappedMove writes the new
	// position into it and swaps, so the steady-state step loop moves
	// without allocating. The point CappedMove (and Move) returned two
	// calls ago is therefore overwritten — callers that retain positions
	// across steps must clone (the engine copies into its own buffers
	// immediately).
	spare geom.Point
}

// Reset stores the configuration and start position.
func (p *PositionTracker) Reset(cfg Config, start geom.Point) {
	p.Cfg = cfg
	p.Pos = start.Clone()
	p.spare = nil
}

// CappedMove moves the tracked position toward target by at most the
// algorithm's online cap and by at most want, returning the new position.
func (p *PositionTracker) CappedMove(target geom.Point, want float64) geom.Point {
	step := want
	if cap := p.Cfg.OnlineCap(); step > cap {
		step = cap
	}
	p.spare = geom.MoveTowardInto(p.spare, p.Pos, target, step)
	p.Pos, p.spare = p.spare, p.Pos
	return p.Pos
}
