package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// TestMtCTranslationEquivariance: translating the whole instance
// translates MtC's trajectory, leaving costs unchanged.
func TestMtCTranslationEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		shift := geom.NewPoint(r.Range(-100, 100), r.Range(-100, 100))
		cfg := Config{Dim: 2, D: 1 + r.Range(0, 3), M: r.Range(0.2, 2), Delta: r.Float64(), Order: MoveFirst}

		a := NewMtC()
		b := NewMtC()
		a.Reset(cfg, geom.NewPoint(0, 0))
		b.Reset(cfg, shift.Clone())
		for step := 0; step < 15; step++ {
			n := 1 + r.IntN(4)
			reqs := make([]geom.Point, n)
			shifted := make([]geom.Point, n)
			for i := range reqs {
				reqs[i] = geom.NewPoint(r.Range(-20, 20), r.Range(-20, 20))
				shifted[i] = reqs[i].Add(shift)
			}
			pa := a.Move(reqs)
			pb := b.Move(shifted)
			if !pa.Add(shift).ApproxEqual(pb, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMtCScaleEquivariance: scaling distances (requests, start, m) by s
// scales the trajectory by s.
func TestMtCScaleEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := r.Range(0.5, 5)
		base := Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: MoveFirst}
		scaled := base
		scaled.M = base.M * s

		a := NewMtC()
		b := NewMtC()
		a.Reset(base, geom.NewPoint(0))
		b.Reset(scaled, geom.NewPoint(0))
		for step := 0; step < 15; step++ {
			x := r.Range(-10, 10)
			pa := a.Move([]geom.Point{geom.NewPoint(x)})
			pb := b.Move([]geom.Point{geom.NewPoint(x * s)})
			if math.Abs(pa[0]*s-pb[0]) > 1e-7*(1+math.Abs(pb[0])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMtCResetIndependence: a reused MtC equals a fresh one.
func TestMtCResetIndependence(t *testing.T) {
	cfg := validCfg()
	reqSets := [][]geom.Point{
		{pt(3, 1)}, {pt(-2, 4), pt(0, 0)}, {pt(5, 5), pt(5, 6), pt(6, 5)},
	}
	a := NewMtC()
	a.Reset(cfg, pt(0, 0))
	for _, reqs := range reqSets {
		a.Move(reqs)
	}
	a.Reset(cfg, pt(0, 0))
	fresh := NewMtC()
	fresh.Reset(cfg, pt(0, 0))
	for _, reqs := range reqSets {
		if !a.Move(reqs).ApproxEqual(fresh.Move(reqs), 1e-12) {
			t.Fatal("Reset did not clear state")
		}
	}
}

// TestStepCostOrderIdentity: when the server does not move, both serve
// orders charge identically.
func TestStepCostOrderIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		pos := geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		n := r.IntN(5)
		reqs := make([]geom.Point, n)
		for i := range reqs {
			reqs[i] = geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		}
		mf := StepCost(Config{Dim: 2, D: 2, M: 1, Order: MoveFirst}, pos, pos, reqs)
		af := StepCost(Config{Dim: 2, D: 2, M: 1, Order: AnswerFirst}, pos, pos, reqs)
		return mf == af
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStepCostOrderGap: the two orders differ by at most r·d(from,to) —
// the ±r·a1 term in the paper's Theorem-7 argument.
func TestStepCostOrderGap(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		from := geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		to := geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		n := 1 + r.IntN(5)
		reqs := make([]geom.Point, n)
		for i := range reqs {
			reqs[i] = geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		}
		cfgMF := Config{Dim: 2, D: 2, M: 1, Order: MoveFirst}
		cfgAF := Config{Dim: 2, D: 2, M: 1, Order: AnswerFirst}
		gap := math.Abs(StepCost(cfgMF, from, to, reqs).Serve - StepCost(cfgAF, from, to, reqs).Serve)
		return gap <= float64(n)*geom.Dist(from, to)*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMtCFixedPoint: once the server reaches an isolated repeated request,
// it stays there forever.
func TestMtCFixedPoint(t *testing.T) {
	cfg := Config{Dim: 2, D: 1, M: 1, Delta: 0, Order: MoveFirst}
	a := NewMtC()
	a.Reset(cfg, pt(5, 5))
	target := []geom.Point{pt(5, 5)}
	for i := 0; i < 10; i++ {
		if !a.Move(target).ApproxEqual(pt(5, 5), 1e-12) {
			t.Fatal("MtC left its fixed point")
		}
	}
}
