package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestCostTotalAdd(t *testing.T) {
	a := Cost{Move: 2, Serve: 3}
	b := Cost{Move: 5, Serve: 7}
	if a.Total() != 5 {
		t.Fatalf("Total = %v", a.Total())
	}
	s := a.Add(b)
	if s.Move != 7 || s.Serve != 10 {
		t.Fatalf("Add = %+v", s)
	}
}

func TestCostString(t *testing.T) {
	s := Cost{Move: 1, Serve: 2}.String()
	if !strings.Contains(s, "total=3") {
		t.Fatalf("String = %q", s)
	}
}

func TestStepCostMoveFirst(t *testing.T) {
	cfg := Config{Dim: 1, D: 3, M: 1, Order: MoveFirst}
	from, to := pt(0.0), pt(2.0)
	reqs := []geom.Point{pt(5.0), pt(-1.0)}
	c := StepCost(cfg, from, to, reqs)
	// Move: 3 * 2 = 6. Serve from `to`=2: |5-2| + |-1-2| = 3 + 3 = 6.
	if c.Move != 6 {
		t.Fatalf("Move = %v", c.Move)
	}
	if c.Serve != 6 {
		t.Fatalf("Serve = %v", c.Serve)
	}
}

func TestStepCostAnswerFirst(t *testing.T) {
	cfg := Config{Dim: 1, D: 3, M: 1, Order: AnswerFirst}
	from, to := pt(0.0), pt(2.0)
	reqs := []geom.Point{pt(5.0), pt(-1.0)}
	c := StepCost(cfg, from, to, reqs)
	// Move unchanged: 6. Serve from `from`=0: 5 + 1 = 6.
	if c.Move != 6 {
		t.Fatalf("Move = %v", c.Move)
	}
	if c.Serve != 6 {
		t.Fatalf("Serve = %v", c.Serve)
	}
	// A case where the two orders differ.
	reqs = []geom.Point{pt(2.0)}
	mf := StepCost(Config{Dim: 1, D: 3, Order: MoveFirst}, from, to, reqs)
	af := StepCost(cfg, from, to, reqs)
	if mf.Serve != 0 || af.Serve != 2 {
		t.Fatalf("serve order mismatch: move-first=%v answer-first=%v", mf.Serve, af.Serve)
	}
}

func TestStepCostNoRequests(t *testing.T) {
	cfg := Config{Dim: 2, D: 2, M: 1}
	c := StepCost(cfg, pt(0, 0), pt(1, 0), nil)
	if c.Serve != 0 || c.Move != 2 {
		t.Fatalf("StepCost = %+v", c)
	}
}

func TestTrajectoryCost(t *testing.T) {
	in := &Instance{
		Config: Config{Dim: 1, D: 2, M: 1, Order: MoveFirst},
		Start:  pt(0.0),
		Steps: []Step{
			{Requests: []geom.Point{pt(1.0)}},
			{Requests: []geom.Point{pt(2.0)}},
		},
	}
	positions := []geom.Point{pt(0.0), pt(1.0), pt(2.0)}
	c, err := TrajectoryCost(in, positions)
	if err != nil {
		t.Fatal(err)
	}
	// Moves: 2*1 + 2*1 = 4. Serves: 0 + 0 = 0.
	if c.Move != 4 || c.Serve != 0 {
		t.Fatalf("TrajectoryCost = %+v", c)
	}
}

func TestTrajectoryCostErrors(t *testing.T) {
	in := &Instance{
		Config: Config{Dim: 1, D: 1, M: 1},
		Start:  pt(0.0),
		Steps:  []Step{{Requests: []geom.Point{pt(1.0)}}},
	}
	if _, err := TrajectoryCost(in, []geom.Point{pt(0.0)}); err == nil {
		t.Fatal("short trajectory accepted")
	}
	if _, err := TrajectoryCost(in, []geom.Point{pt(5.0), pt(6.0)}); err == nil {
		t.Fatal("wrong start accepted")
	}
}

func TestTrajectoryCostMatchesManualSum(t *testing.T) {
	in := &Instance{
		Config: Config{Dim: 2, D: 4, M: 1, Order: AnswerFirst},
		Start:  pt(0, 0),
		Steps: []Step{
			{Requests: []geom.Point{pt(3, 4)}},
			{Requests: []geom.Point{pt(0, 0), pt(1, 1)}},
		},
	}
	positions := []geom.Point{pt(0, 0), pt(1, 0), pt(1, 1)}
	c, err := TrajectoryCost(in, positions)
	if err != nil {
		t.Fatal(err)
	}
	want := StepCost(in.Config, positions[0], positions[1], in.Steps[0].Requests).
		Add(StepCost(in.Config, positions[1], positions[2], in.Steps[1].Requests))
	if math.Abs(c.Total()-want.Total()) > 1e-12 {
		t.Fatalf("TrajectoryCost = %v, want %v", c, want)
	}
}
