package streamclient

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestThrottleResendAbortsOnDeadConnection is the timer-lifecycle
// regression for the throttle resend path: a frame throttled with a long
// backoff whose connection dies mid-wait must ABORT the scheduled resend
// (counting it in ThrottleAborts) instead of sleeping through the
// teardown and re-encoding a batch its caller no longer guarantees —
// exactly the failover window, where the coordinator has already resent
// the batch through a replacement connection.
func TestThrottleResendAbortsOnDeadConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A hand-rolled server: handshake, throttle the first step frame with
	// a backoff far longer than the test, then hang until told to drop the
	// connection. Every line that arrives after the throttle is counted —
	// a resend landing here is the bug.
	throttleSent := make(chan struct{})
	dropConn := make(chan struct{})
	lateFrames := make(chan int, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		for { // consume the upgrade request head
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if line == "\r\n" {
				break
			}
		}
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\n\r\n")
		if _, err := br.ReadString('\n'); err != nil { // the hello
			return
		}
		welcome, _ := json.Marshal(wire.WelcomeFrame{V: wire.V1, Type: wire.FrameWelcome, Algorithm: "throttler", Dim: 2})
		conn.Write(append(welcome, '\n'))

		var step wire.StepFrame
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		if err := json.Unmarshal([]byte(line), &step); err != nil {
			return
		}
		frame, _ := json.Marshal(wire.ThrottleFrame{V: wire.V1, Type: wire.FrameThrottle, ID: step.ID, RetryAfterMS: 60_000})
		conn.Write(append(frame, '\n'))
		close(throttleSent)

		// Count anything the client still writes, until the test drops the
		// connection out from under the backoff.
		got := make(chan struct{}, 16)
		go func() {
			for {
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
				got <- struct{}{}
			}
		}()
		late := 0
		for {
			select {
			case <-got:
				late++
			case <-dropConn:
				conn.Close()
				// Drain a moment longer: a buggy resend races the close.
				timeout := time.After(200 * time.Millisecond)
				for {
					select {
					case <-got:
						late++
					case <-timeout:
						lateFrames <- late
						return
					}
				}
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.Step([]wire.Point{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	<-throttleSent
	waitFor(t, "throttle counted", func() bool { return c.Throttles() == 1 })

	// The connection dies while the resend backoff is pending.
	close(dropConn)
	if _, err := p.Wait(); err == nil {
		t.Fatal("pending on a dead connection resolved with a nil error")
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed after the connection dropped")
	}

	waitFor(t, "throttle resend aborted", func() bool { return c.ThrottleAborts() == 1 })
	if late := <-lateFrames; late != 0 {
		t.Fatalf("%d frame(s) written after the throttle on a dead connection, want 0 (aborted resend)", late)
	}
	if c.Err() == nil {
		t.Fatal("Err after drop = nil, want a fatal transport error")
	}
}

// waitFor polls cond until it holds or two seconds pass.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
