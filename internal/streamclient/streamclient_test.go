package streamclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/wire"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 1}
	s, err := server.New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = s.Close()
	})
	return ts
}

func fastOpts() Options {
	return Options{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
}

// TestPipelineAcksInOrder drives a real server: pipelined frames are acked
// in submission order with consecutive step indices.
func TestPipelineAcksInOrder(t *testing.T) {
	ts := testServer(t)
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if w := c.Welcome(); w.T != 0 || w.Algorithm == "" {
		t.Fatalf("welcome = %+v", w)
	}

	const frames = 20
	pends := make([]*Pending, frames)
	for i := range pends {
		p, err := c.Step([]wire.Point{{float64(i), 1}})
		if err != nil {
			t.Fatal(err)
		}
		pends[i] = p
	}
	lastT := -1
	for i, p := range pends {
		ack, err := p.Wait()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ack.ID != p.ID || ack.Accepted != 1 {
			t.Fatalf("frame %d ack = %+v", i, ack)
		}
		if ack.T < lastT {
			t.Fatalf("step indices regressed: %d after %d", ack.T, lastT)
		}
		lastT = ack.T
	}
}

// TestDialUnreachableTyped pins the bounded reconnect storm: a dead
// address fails after exactly MaxAttempts tries with a typed
// *protocol.UnreachableError.
func TestDialUnreachableTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	opts := fastOpts()
	_, err = Dial(addr, "/stream", opts)
	var ue *protocol.UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("dial dead address = %v, want *protocol.UnreachableError", err)
	}
	if ue.Attempts != opts.MaxAttempts || ue.Addr != addr {
		t.Fatalf("unreachable = %+v, want %d attempts against %s", ue, opts.MaxAttempts, addr)
	}
}

// TestDialRejectionNotRetried pins the retry/refusal split over real TCP:
// a server that ANSWERS the hello with an error frame (here: a version it
// does not speak) is reachable and said no — exactly one connection
// attempt, and the typed wire error surfaces to the caller.
func TestDialRejectionNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepted atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for { // consume the upgrade request head
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if line == "\r\n" {
						break
					}
				}
				// The client reads the upgrade response before it speaks.
				fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n")
				if _, err := br.ReadString('\n'); err != nil { // the hello
					return
				}
				frame, _ := json.Marshal(wire.ErrorFrame{V: wire.V1, Type: wire.FrameError,
					Err: wire.Error{Code: wire.CodeBadVersion, Detail: "speak v1"}})
				conn.Write(append(frame, '\n'))
			}(conn)
		}
	}()

	_, err = Dial(ln.Addr().String(), "/stream", fastOpts())
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("rejected handshake = %v, want *wire.Error", err)
	}
	if we.Code != wire.CodeBadVersion {
		t.Fatalf("rejection code = %q, want %q", we.Code, wire.CodeBadVersion)
	}
	if got := accepted.Load(); got != 1 {
		t.Fatalf("server accepted %d connections, want exactly 1 (refusals must not be retried)", got)
	}
}

// TestDialDimMismatchPermanent drives the same split against the real
// server: a dimension the session does not serve is a permanent refusal.
func TestDialDimMismatchPermanent(t *testing.T) {
	ts := testServer(t)
	_, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 5})
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("dim-mismatch dial = %v, want *wire.Error", err)
	}
	if we.Code != wire.CodeBadRequest {
		t.Fatalf("dim mismatch code = %q", we.Code)
	}
}

// TestHandshakeTimeout: a server that accepts the connection but never
// answers is a transport failure (retried, then typed unreachable), not a
// hang.
func TestHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and say nothing
		}
	}()
	opts := fastOpts()
	opts.MaxAttempts = 2
	opts.HandshakeTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err = Dial(ln.Addr().String(), "/stream", opts)
	var ue *protocol.UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("dial mute server = %v, want *protocol.UnreachableError", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("dial against a mute server took %v, want bounded by the handshake timeout", took)
	}
}

// TestHeartbeatKillsSilentConnection: after the handshake the server goes
// mute; the ping cadence must declare the connection dead, resolve the
// pending frame with ErrHeartbeat, and close Done.
func TestHeartbeatKillsSilentConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if line == "\r\n" {
				break
			}
		}
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\n\r\n")
		if _, err := br.ReadString('\n'); err != nil { // the hello
			return
		}
		welcome, _ := json.Marshal(wire.WelcomeFrame{V: wire.V1, Type: wire.FrameWelcome, Algorithm: "mute", Dim: 2})
		conn.Write(append(welcome, '\n'))
		// From here on: read everything, answer nothing.
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), "/stream", Options{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.Step([]wire.Point{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); !errors.Is(err, ErrHeartbeat) {
		t.Fatalf("pending on a silent connection = %v, want ErrHeartbeat", err)
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed after heartbeat death")
	}
	if !errors.Is(c.Err(), ErrHeartbeat) {
		t.Fatalf("Err = %v, want ErrHeartbeat", c.Err())
	}
	if _, err := c.Step([]wire.Point{{1, 2}}); !errors.Is(err, ErrHeartbeat) {
		t.Fatalf("Step on a dead connection = %v, want ErrHeartbeat", err)
	}
}

// TestHeartbeatKeepsIdleConnectionAlive is the inverse: a healthy but IDLE
// connection must not be declared dead — pongs answer the pings and reset
// the silence clock.
func TestHeartbeatKeepsIdleConnectionAlive(t *testing.T) {
	ts := testServer(t)
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2, HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(100 * time.Millisecond) // many heartbeat timeouts of idleness
	if err := c.Err(); err != nil {
		t.Fatalf("idle healthy connection died: %v", err)
	}
	p, err := c.Step([]wire.Point{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ack, err := p.Wait(); err != nil || ack.T != 0 {
		t.Fatalf("step after idle period = %+v, %v", ack, err)
	}
}

// TestHost pins the address spellings Dial accepts.
func TestHost(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":        "localhost:8080",
		"localhost":             "localhost",
		"http://localhost:8080": "localhost:8080",
		"http://example.com":    "example.com",
	} {
		got, err := Host(in)
		if err != nil || got != want {
			t.Fatalf("Host(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := Host("http://"); err == nil {
		t.Fatal("Host with no host must fail")
	}
}

// TestJitterBounds: ±20%, and zero stays zero.
func TestJitterBounds(t *testing.T) {
	const d = time.Second
	for i := 0; i < 200; i++ {
		j := Jitter(d)
		if j < 800*time.Millisecond || j > 1200*time.Millisecond {
			t.Fatalf("Jitter(%v) = %v, outside ±20%%", d, j)
		}
	}
	if Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
}

// TestWelcomeCarriesRecovery: after steps execute, a fresh connection's
// welcome carries the last executed step's recovery payload — the anchor
// cluster failover reconciles against.
func TestWelcomeCarriesRecovery(t *testing.T) {
	ts := testServer(t)
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Step([]wire.Point{{3, 4}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	w := c2.Welcome()
	if w.T != 1 || w.Last == nil {
		t.Fatalf("welcome after one step = %+v", w)
	}
	if w.Last.T != 0 || w.Last.Batched != 2 || w.Last.Cost != ack.Cost {
		t.Fatalf("welcome recovery payload = %+v, want step 0 ack %+v", w.Last, ack)
	}
	if len(w.Last.Positions) != 1 || !reflect.DeepEqual(w.Last.Positions, ack.Positions) {
		t.Fatalf("recovery positions = %v, want %v", w.Last.Positions, ack.Positions)
	}
}

// TestStrings keeps the error strings typed enough to grep in logs.
func TestStrings(t *testing.T) {
	ue := &protocol.UnreachableError{Addr: "w1:9001", Attempts: 5, Err: errors.New("connection refused")}
	if !strings.Contains(ue.Error(), "w1:9001") || !strings.Contains(ue.Error(), "5") {
		t.Fatalf("UnreachableError string = %q", ue)
	}
}
