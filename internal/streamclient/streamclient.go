// Package streamclient is the reusable client side of the streaming
// transport (POST /stream, package wire's frame grammar): dial with
// capped-exponential-backoff retries, hello/welcome handshake with
// version and frame-encoding negotiation, pipelined step frames answered
// in order, automatic jittered resend on typed throttle frames, and a
// heartbeat that declares a silent connection dead instead of hanging its
// callers forever.
//
// It exists so the cluster coordinator (internal/cluster) and the example
// load generator (examples/client) share one tested implementation of the
// client protocol instead of a copy each.
//
// Usage:
//
//	c, err := streamclient.Dial("localhost:8080", "/stream", streamclient.Options{Dim: 2})
//	p, err := c.Step(batch)   // write one pipelined frame
//	ack, err := p.Wait()      // block for its in-order ack
//	p.Release()               // recycle the pending + ack buffers
//	c.Close()
//
// By default the client asks the server for the length-prefixed binary
// frame encoding (wire.WireBinary) and falls back to NDJSON transparently
// when the server is older or pinned; Options.Wire overrides. On the
// binary encoding the steady-state loop — encode step, read ack — runs at
// 0 allocs/op: Step retains the caller's batch until the ack (so
// throttled frames can be resent) and Wait's ack aliases a pooled buffer
// that Release recycles.
//
// Dial bounds its reconnect storm: after Options.MaxAttempts failed
// connection attempts (with exponential, jittered backoff between them,
// capped at Options.MaxBackoff per wait) it gives up with a typed
// *protocol.UnreachableError, so a forwarding tier can surface "backend
// unreachable" to its own callers instead of blocking them indefinitely.
// A server that answers the handshake with an error frame (say
// bad_version) is NOT retried — it is reachable and said no.
package streamclient

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/wire"
)

// WireAuto asks the server for the binary encoding but accepts NDJSON
// when the server is older or pinned — the default negotiation policy.
const WireAuto = "auto"

// Options configures a Dial. The zero value uses the defaults below and
// disables the dimension check and the heartbeat.
type Options struct {
	// Dim, when nonzero, is sent in the hello so the server confirms the
	// session dimension before any step is pipelined.
	Dim int
	// Wire selects the frame-encoding negotiation: WireAuto (the default)
	// requests wire.WireBinary and falls back to NDJSON transparently —
	// both when a current server declines and when an older server
	// strict-rejects the unknown hello field; wire.WireBinary requires the
	// binary encoding (Dial fails when the server does not grant it);
	// wire.WireNDJSON never asks.
	Wire string
	// Window, when > 1, asks the server to accept that many pipelined step
	// frames in flight with suffix-replay reconciliation after a reconnect
	// (WelcomeFrame.Ring). The grant is whatever Welcome().Window reports —
	// possibly smaller, or absent (lockstep) from a server that keeps no
	// ack ring. A server so old it strict-rejects the unknown hello field
	// gets the same transparent downgrade as the wire negotiation: Dial
	// re-sends the hello without the field and runs lockstep.
	Window int
	// MaxAttempts bounds the connection attempts one Dial makes before
	// giving up with *protocol.UnreachableError. Default DefaultMaxAttempts.
	MaxAttempts int
	// BaseBackoff is the wait after the first failed attempt; each further
	// failure doubles it. Default DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-wait backoff growth. Default DefaultMaxBackoff.
	MaxBackoff time.Duration
	// HeartbeatEvery, when positive, starts the liveness probe: a ping
	// frame rides the pipeline at this cadence, and when no frame at all
	// (ack, pong, anything) arrives for HeartbeatTimeout the connection is
	// declared dead (Err returns ErrHeartbeat and every pending Wait
	// unblocks) instead of hanging callers on a silent socket.
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the silence that kills the connection; default
	// 3×HeartbeatEvery.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds one connection attempt end to end (TCP dial
	// through the welcome). A server that accepts the connection but never
	// answers the handshake is a transport failure like any other: the
	// attempt is abandoned and retried under the backoff policy instead of
	// blocking the caller forever. Default DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
}

// Defaults for the dial retry policy: 5 attempts with 25ms, 50ms, 100ms,
// 200ms jittered waits between them (~0.4s worst case per address) keep a
// coordinator's failover decision fast while still riding out a worker
// restart.
const (
	DefaultMaxAttempts = 5
	DefaultBaseBackoff = 25 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
)

// DefaultHandshakeTimeout bounds one connection attempt (dial + hello +
// welcome) when Options.HandshakeTimeout is zero.
const DefaultHandshakeTimeout = 5 * time.Second

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.HeartbeatEvery > 0 && o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatEvery
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return o
}

// ErrHeartbeat reports a connection the heartbeat declared dead: no frame
// of any kind arrived for Options.HeartbeatTimeout.
var ErrHeartbeat = errors.New("streamclient: heartbeat timeout, connection declared dead")

// ErrClosed reports an operation on a client after Close.
var ErrClosed = errors.New("streamclient: client closed")

// stepResult signals one resolved pending frame; the ack itself lives in
// the Pending's own buffer.
type stepResult struct {
	err error
}

// Pending is one in-flight step frame awaiting its ack. It is pooled:
// call Release after Wait to recycle it (and its ack buffers) into the
// connection's pool; skipping Release is safe but allocates.
type Pending struct {
	ch chan stepResult
	// ID is the frame id the client assigned (unique per connection,
	// monotonically increasing from 1).
	ID int64

	c        *Client
	reqs     []wire.Point // caller's batch, retained for throttle resends
	ack      wire.AckFrame
	consumed bool
}

// Wait blocks for the frame's outcome: the typed ack, a per-frame error
// frame (as *wire.Error), or the connection's fatal error. Throttle frames
// never surface here — the client resends the frame itself after the
// server's jittered backoff hint, and Wait resolves with the eventual ack.
//
// The caller's request batch must stay valid until Wait returns (a
// throttle resend re-encodes it). The returned ack's slices alias this
// Pending's reusable buffer: they are valid until Release.
func (p *Pending) Wait() (wire.AckFrame, error) {
	res := <-p.ch
	p.consumed = true
	return p.ack, res.err
}

// Release recycles a waited Pending (and the ack buffer Wait returned)
// into the connection's pool. Call it once, after Wait and after the last
// read of the ack; a Pending whose Wait has not returned is left alone.
func (p *Pending) Release() {
	if p == nil || !p.consumed {
		return
	}
	c := p.c
	p.consumed = false
	p.c = nil
	p.reqs = nil
	p.ID = 0
	c.pendPool.Put(p)
}

// Client is one stream connection. Step may be called from any goroutine;
// replies arrive in submission order on the connection and are dispatched
// to each Pending.
type Client struct {
	opts    Options
	conn    net.Conn
	wmu     sync.Mutex // serializes frame writes (Step, resends, pings, bye)
	payload []byte     // binary payload scratch, under wmu
	frame   []byte     // binary tag|len|payload scratch, under wmu
	welcome wire.WelcomeFrame
	binary  bool

	mu       sync.Mutex
	pending  map[int64]*Pending
	nextID   int64
	closed   bool
	pendPool sync.Pool

	throttles      atomic.Int64
	throttleAborts atomic.Int64
	lastRecv       atomic.Int64 // UnixNano of the most recent received frame

	failOnce sync.Once
	fatal    atomic.Value // error
	done     chan struct{}
}

// Host extracts the dialable host:port from a base URL or a bare
// host[:port] string, accepting the same spellings the example client
// always has ("http://localhost:8080", "localhost:8080", "localhost").
func Host(base string) (string, error) {
	if !bytes.Contains([]byte(base), []byte("://")) {
		return base, nil
	}
	u, err := url.Parse(base)
	if err != nil {
		return "", err
	}
	if u.Host != "" {
		return u.Host, nil
	}
	return "", fmt.Errorf("streamclient: no host in %q", base)
}

// Dial connects to the streaming endpoint at path (usually "/stream") on
// base (a URL or host:port), retrying transport failures under the
// capped-backoff policy, and completes the hello/welcome handshake
// (including the frame-encoding negotiation; see Options.Wire). A
// handshake the server rejects with an error frame (bad_version, dimension
// mismatch) fails immediately — the server is reachable and said no; only
// transport failures are retried. When every attempt fails the returned
// error is a *protocol.UnreachableError carrying the attempt count and the
// last underlying error.
func Dial(base, path string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	host, err := Host(base)
	if err != nil {
		return nil, err
	}
	askWire := ""
	switch opts.Wire {
	case "", WireAuto, wire.WireBinary:
		askWire = wire.WireBinary
	case wire.WireNDJSON:
	default:
		return nil, fmt.Errorf("streamclient: unknown wire option %q", opts.Wire)
	}
	askWindow := 0
	if opts.Window > 1 {
		askWindow = opts.Window
	}
	var lastErr error
	backoff := opts.BaseBackoff
	for attempt := 1; ; attempt++ {
		c, err := dialOnce(host, path, opts, askWire, askWindow)
		if err == nil {
			if opts.Wire == wire.WireBinary && !c.binary {
				c.Close()
				return nil, fmt.Errorf("streamclient: server did not grant the required binary encoding")
			}
			return c, nil
		}
		var we *wire.Error
		if errors.As(err, &we) {
			// A server that predates one of the optional hello fields
			// strict-rejects it as a bad frame: fall back by dropping the
			// newest field first — the window, then the wire ask (a
			// protocol downgrade, not a transport failure). Any other
			// rejection is permanent — the server spoke and said no.
			if we.Code == wire.CodeBadFrame {
				if askWindow != 0 {
					askWindow = 0
					attempt--
					continue
				}
				if askWire != "" && opts.Wire != wire.WireBinary {
					askWire = ""
					attempt--
					continue
				}
			}
			return nil, err
		}
		lastErr = err
		if attempt >= opts.MaxAttempts {
			return nil, &protocol.UnreachableError{Addr: host, Attempts: attempt, Err: lastErr}
		}
		time.Sleep(Jitter(backoff))
		if backoff *= 2; backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}

// dialOnce makes one connection attempt: TCP dial, HTTP upgrade, hello
// (asking for askWire when nonempty), welcome. A server error frame during
// the handshake comes back as a *wire.Error (wrapped), which Dial treats
// as permanent (or as the fallback signal for the encoding downgrade).
func dialOnce(host, path string, opts Options, askWire string, askWindow int) (*Client, error) {
	conn, err := net.DialTimeout("tcp", host, opts.HandshakeTimeout)
	if err != nil {
		return nil, err
	}
	// The whole handshake runs under one deadline, cleared once the welcome
	// arrives (steady-state liveness is the heartbeat's job, not the
	// socket's).
	_ = conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	br := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "POST %s HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\n\r\n", path, host); err != nil {
		conn.Close()
		return nil, err
	}
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !bytes.Contains([]byte(status), []byte("200")) {
		conn.Close()
		return nil, fmt.Errorf("streamclient: POST %s: %s", path, bytes.TrimSpace([]byte(status)))
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		if line == "\r\n" {
			break
		}
	}

	c := &Client{
		opts:    opts,
		conn:    conn,
		pending: map[int64]*Pending{},
		done:    make(chan struct{}),
	}
	c.pendPool.New = func() any { return &Pending{ch: make(chan stepResult, 1)} }
	hello := wire.HelloFrame{V: wire.V1, Type: wire.FrameHello, Dim: opts.Dim, Wire: askWire, Window: askWindow}
	if err := c.writeJSONLocked(hello); err != nil {
		conn.Close()
		return nil, err
	}
	line, err := readLine(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := decodeExpected(line, wire.FrameWelcome, &c.welcome); err != nil {
		conn.Close()
		return nil, err
	}
	// The server confirms only encodings the hello asked for; everything
	// after the welcome speaks the confirmed encoding in both directions.
	c.binary = c.welcome.Wire == wire.WireBinary
	_ = conn.SetDeadline(time.Time{})
	c.lastRecv.Store(time.Now().UnixNano())
	go c.readLoop(br)
	if opts.HeartbeatEvery > 0 {
		go c.heartbeat()
	}
	return c, nil
}

// Welcome returns the handshake's welcome frame: the algorithm, the
// session's current step count (the reconciliation anchor after a
// reconnect), the dimension, the confirmed frame encoding, and — when the
// session has executed any step — the last executed step's exact outcome
// (Last).
func (c *Client) Welcome() wire.WelcomeFrame { return c.welcome }

// Wire reports the negotiated frame encoding: wire.WireBinary or
// wire.WireNDJSON.
func (c *Client) Wire() string {
	if c.binary {
		return wire.WireBinary
	}
	return wire.WireNDJSON
}

// Throttles counts the throttle frames the connection has absorbed (each
// one resent automatically after the server's jittered backoff hint).
func (c *Client) Throttles() int64 { return c.throttles.Load() }

// ThrottleAborts counts throttle resends abandoned because the connection
// died during their backoff — the frame was resolved by the teardown (and
// possibly resent through a failover replacement), so writing it again
// from the stale goroutine would have re-read a batch its caller no
// longer guarantees.
func (c *Client) ThrottleAborts() int64 { return c.throttleAborts.Load() }

// Err returns the connection's fatal error, or nil while it is healthy.
func (c *Client) Err() error {
	if v := c.fatal.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Done is closed when the connection dies (fatal error or Close).
func (c *Client) Done() <-chan struct{} { return c.done }

// Step writes one pipelined step frame and returns the Pending to Wait on.
// It does not block for the ack, so callers can keep frames in flight; it
// fails immediately when the connection is already dead.
//
// The batch must stay valid and unmodified until Wait returns: a throttled
// frame is re-encoded from it for the resend.
func (c *Client) Step(reqs []wire.Point) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if err := c.Err(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	p := c.pendPool.Get().(*Pending)
	p.ID = id
	p.c = c
	p.reqs = reqs
	c.pending[id] = p
	c.mu.Unlock()

	if err := c.writeStep(id, reqs); err != nil {
		c.fail(err)
		return nil, err
	}
	return p, nil
}

// Close sends a bye frame and tears the connection down. Callers should
// Wait their pending frames first — the server answers everything already
// submitted before honoring the bye, but Close does not wait for that.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.writeControl(wire.BinBye, wire.ByeFrame{V: wire.V1, Type: wire.FrameBye})
	c.fail(ErrClosed)
	return nil
}

// writeStep encodes and writes one step frame in the negotiated encoding.
// On the binary path the payload and frame scratch buffers are reused
// under the write lock, so the steady-state write allocates nothing.
func (c *Client) writeStep(id int64, reqs []wire.Point) error {
	if !c.binary {
		return c.writeJSONLocked(wire.StepFrame{V: wire.V1, Type: wire.FrameStep, ID: id, Requests: reqs})
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.payload = wire.AppendStepFrom(c.payload[:0], wire.V1, id, reqs)
	return c.writeBinaryLocked(wire.BinStep, c.payload)
}

// writeControl writes one control frame (ping, bye) in the negotiated
// encoding; binTag is its binary tag, v its NDJSON form.
func (c *Client) writeControl(binTag byte, v any) error {
	if !c.binary {
		return c.writeJSONLocked(v)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.payload = wire.AppendControl(c.payload[:0], wire.V1)
	return c.writeBinaryLocked(binTag, c.payload)
}

// writeJSONLocked marshals and writes one NDJSON frame under the write
// lock (Step, throttle resends, pings, and bye share the socket).
func (c *Client) writeJSONLocked(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err = c.conn.Write(append(data, '\n'))
	return err
}

// writeBinaryLocked assembles tag|uvarint(len)|payload into the frame
// scratch and writes it in one call; the caller holds wmu.
//
//moblint:hotpath
func (c *Client) writeBinaryLocked(tag byte, payload []byte) error {
	c.frame = append(c.frame[:0], tag)
	var head [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(head[:], uint64(len(payload)))
	c.frame = append(c.frame, head[:n]...)
	c.frame = append(c.frame, payload...)
	_, err := c.conn.Write(c.frame)
	return err
}

// fail ends the connection once: records the fatal error, closes the
// socket, resolves every pending frame with the error, and closes Done.
func (c *Client) fail(err error) {
	c.failOnce.Do(func() {
		c.fatal.Store(err)
		c.conn.Close()
		c.mu.Lock()
		for id, p := range c.pending {
			delete(c.pending, id)
			p.ch <- stepResult{err: err}
		}
		c.mu.Unlock()
		close(c.done)
	})
}

// take claims the pending entry for id, removing it from the in-flight
// map; nil when the id is unknown (answered twice, or a fatal teardown
// already resolved it).
func (c *Client) take(id int64) *Pending {
	c.mu.Lock()
	p := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return p
}

// throttled schedules the jittered resend of a throttled frame. The entry
// stays pending: its Wait resolves with the eventual ack. The backoff
// aborts the moment the connection dies: a dead connection has already
// resolved the pending, its caller may have reclaimed (or resent through a
// failover replacement) the request batch, and a resend goroutine that
// slept through the teardown must not re-encode from it.
func (c *Client) throttled(id int64, retryMS int) bool {
	c.throttles.Add(1)
	c.mu.Lock()
	p := c.pending[id]
	c.mu.Unlock()
	if p == nil {
		c.fail(fmt.Errorf("streamclient: throttle for unknown frame id %d", id))
		return false
	}
	go func(reqs []wire.Point, wait time.Duration) {
		timer := time.NewTimer(Jitter(wait))
		defer timer.Stop()
		select {
		case <-c.done:
			c.throttleAborts.Add(1)
			return
		case <-timer.C:
		}
		if err := c.writeStep(id, reqs); err != nil {
			c.fail(err)
		}
	}(p.reqs, time.Duration(retryMS)*time.Millisecond)
	return true
}

// readLoop dispatches received frames in the negotiated encoding: every
// frame stamps the liveness clock, acks and per-frame errors resolve
// their Pending, throttles schedule a jittered resend, pongs are liveness
// only, and a connection-level error frame (or a read error) kills the
// connection.
func (c *Client) readLoop(br *bufio.Reader) {
	if c.binary {
		c.readBinary(br)
		return
	}
	for {
		line, err := readLine(br)
		if err != nil {
			c.fail(err)
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		head, err := wire.PeekFrame(line)
		if err != nil {
			c.fail(err)
			return
		}
		switch head.Type {
		case wire.FrameAck:
			var ack wire.AckFrame
			if err := wire.UnmarshalStrict(line, &ack); err != nil {
				c.fail(err)
				return
			}
			if p := c.take(ack.ID); p != nil {
				p.ack = ack
				p.ch <- stepResult{}
			}
		case wire.FrameThrottle:
			var th wire.ThrottleFrame
			if err := wire.UnmarshalStrict(line, &th); err != nil {
				c.fail(err)
				return
			}
			if !c.throttled(th.ID, th.RetryAfterMS) {
				return
			}
		case wire.FramePong:
			// Liveness only; the lastRecv stamp above did the work.
		case wire.FrameError:
			var ef wire.ErrorFrame
			if err := wire.UnmarshalStrict(line, &ef); err != nil {
				c.fail(err)
				return
			}
			if !c.errorFrame(ef) {
				return
			}
		default:
			c.fail(fmt.Errorf("streamclient: unexpected %s frame", head.Type))
			return
		}
	}
}

// readBinary is readLoop on the binary encoding. Acks decode straight
// into the waiting Pending's reusable frame (BinaryAckID picks the target
// before the full decode), so the steady-state receive allocates nothing.
func (c *Client) readBinary(br *bufio.Reader) {
	var buf []byte
	for {
		tag, payload, err := wire.ReadBinaryFrame(br, &buf, wire.DefaultMaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		switch tag {
		case wire.BinAck:
			id, err := wire.BinaryAckID(payload)
			if err != nil {
				c.fail(err)
				return
			}
			p := c.take(id)
			if p == nil {
				continue
			}
			if err := wire.DecodeAck(payload, &p.ack); err != nil {
				c.fail(err)
				return
			}
			p.ch <- stepResult{}
		case wire.BinThrottle:
			var th wire.ThrottleFrame
			if err := wire.DecodeThrottle(payload, &th); err != nil {
				c.fail(err)
				return
			}
			if !c.throttled(th.ID, th.RetryAfterMS) {
				return
			}
		case wire.BinPong:
			// Liveness only.
		case wire.BinError:
			var ef wire.ErrorFrame
			if err := wire.DecodeErrorFrame(payload, &ef); err != nil {
				c.fail(err)
				return
			}
			if !c.errorFrame(ef) {
				return
			}
		default:
			c.fail(fmt.Errorf("streamclient: unexpected binary frame 0x%x", tag))
			return
		}
	}
}

// errorFrame handles a received error frame: a per-frame rejection
// resolves just that Pending and reports true (the stream lives); a
// connection-level error kills the connection and reports false.
func (c *Client) errorFrame(ef wire.ErrorFrame) bool {
	e := ef.Err
	if ef.ID != nil {
		if p := c.take(*ef.ID); p != nil {
			p.ch <- stepResult{err: &e}
		}
		return true
	}
	c.fail(&e)
	return false
}

// heartbeat pings at the configured cadence and declares the connection
// dead after HeartbeatTimeout of total silence. Any received frame resets
// the clock — pongs ride the same ordered reply queue as acks, so one
// arriving proves the server's whole pipeline (reader, step loop, writer)
// is alive, not just the TCP connection.
func (c *Client) heartbeat() {
	ticker := time.NewTicker(c.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			silence := time.Since(time.Unix(0, c.lastRecv.Load()))
			if silence > c.opts.HeartbeatTimeout {
				c.fail(ErrHeartbeat)
				return
			}
			_ = c.writeControl(wire.BinPing, wire.PingFrame{V: wire.V1, Type: wire.FramePing})
		}
	}
}

// readLine returns the next non-empty NDJSON line.
func readLine(br *bufio.Reader) ([]byte, error) {
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, err
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			// ReadBytes reuses no buffer, but trim shares storage; copy so
			// the caller owns the line.
			out := make([]byte, len(trimmed))
			copy(out, trimmed)
			return out, nil
		}
	}
}

// decodeExpected strictly decodes line into v after checking its type,
// surfacing a typed server error frame as *wire.Error.
func decodeExpected(line []byte, wantType string, v any) error {
	head, err := wire.PeekFrame(line)
	if err != nil {
		return err
	}
	if head.Type == wire.FrameError {
		var ef wire.ErrorFrame
		if err := wire.UnmarshalStrict(line, &ef); err == nil {
			e := ef.Err
			return fmt.Errorf("streamclient: server rejected handshake: %w", &e)
		}
	}
	if head.Type != wantType {
		return fmt.Errorf("streamclient: got %s frame, want %s", head.Type, wantType)
	}
	return wire.UnmarshalStrict(line, v)
}

// Jitter spreads a wait by ±20%, so many clients told to retry at the same
// moment do not re-stampede a bounded queue (or a restarting worker) in
// lockstep. It draws from math/rand/v2's global source: backoff spreading
// wants each process desynchronized, which is exactly what the
// deterministic packages forbid and a retry path needs.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}
