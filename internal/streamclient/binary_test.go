package streamclient

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/wire"
)

// testServerWire is testServer with a server-side stream-encoding policy.
func testServerWire(t *testing.T, policy string) *httptest.Server {
	t.Helper()
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 1}
	s, err := server.New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetStreamWire(policy)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = s.Close()
	})
	return ts
}

// TestDialNegotiatesBinary pins the default: against a current server a
// plain Dial comes up binary, and the binary session serves acks with the
// same contents the NDJSON tests pin.
func TestDialNegotiatesBinary(t *testing.T) {
	ts := testServerWire(t, "")
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Wire() != wire.WireBinary {
		t.Fatalf("negotiated wire = %q, want %q", c.Wire(), wire.WireBinary)
	}
	lastT := -1
	for i := 0; i < 20; i++ {
		p, err := c.Step([]wire.Point{{float64(i), 1}})
		if err != nil {
			t.Fatal(err)
		}
		ack, err := p.Wait()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ack.ID != p.ID || ack.Accepted != 1 || len(ack.Positions) != 1 {
			t.Fatalf("frame %d ack = %+v", i, ack)
		}
		if ack.T < lastT {
			t.Fatalf("step indices regressed: %d after %d", ack.T, lastT)
		}
		lastT = ack.T
		p.Release()
	}
}

// TestDialPinnedNDJSON pins the client-side opt-out and the server-side
// decline, in both directions.
func TestDialPinnedNDJSON(t *testing.T) {
	t.Run("client-pins", func(t *testing.T) {
		ts := testServerWire(t, "")
		c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2, Wire: wire.WireNDJSON})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Wire() != wire.WireNDJSON {
			t.Fatalf("wire = %q, want %q", c.Wire(), wire.WireNDJSON)
		}
	})
	t.Run("server-declines", func(t *testing.T) {
		ts := testServerWire(t, wire.WireNDJSON)
		c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Wire() != wire.WireNDJSON {
			t.Fatalf("wire = %q, want %q", c.Wire(), wire.WireNDJSON)
		}
		p, err := c.Step([]wire.Point{{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if ack, err := p.Wait(); err != nil || ack.Accepted != 1 {
			t.Fatalf("NDJSON session ack = %+v, %v", ack, err)
		}
		p.Release()
	})
}

// TestDialForcedBinaryAgainstPinnedServer pins the forced mode: a client
// that requires binary fails loudly against a server that will not grant
// it, instead of silently serving slower.
func TestDialForcedBinaryAgainstPinnedServer(t *testing.T) {
	ts := testServerWire(t, wire.WireNDJSON)
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2, Wire: wire.WireBinary})
	if err == nil {
		c.Close()
		t.Fatal("forced binary dial succeeded against an NDJSON-pinned server")
	}
	if !strings.Contains(err.Error(), "binary") {
		t.Fatalf("forced binary failure = %v", err)
	}
}

// oldServer is a hand-rolled stream endpoint that predates the wire
// field: it strict-rejects any hello carrying unknown fields with
// bad_frame (exactly what UnmarshalStrict produces on a real old server)
// and welcomes a plain hello, then acks steps as NDJSON.
func oldServer(t *testing.T) (addr string, accepted *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for { // consume the upgrade request head
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if line == "\r\n" {
						break
					}
				}
				fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n")
				line, err := br.ReadString('\n')
				if err != nil {
					return
				}
				var hello wire.HelloFrame
				if err := wire.UnmarshalStrict([]byte(line), &hello); err != nil || hello.Wire != "" {
					frame, _ := json.Marshal(wire.ErrorFrame{V: wire.V1, Type: wire.FrameError,
						Err: wire.Error{Code: wire.CodeBadFrame, Detail: "unknown field \"wire\""}})
					conn.Write(append(frame, '\n'))
					return
				}
				welcome, _ := json.Marshal(wire.WelcomeFrame{V: wire.V1, Type: wire.FrameWelcome,
					Algorithm: "MtC", Dim: hello.Dim})
				conn.Write(append(welcome, '\n'))
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					var step wire.StepFrame
					if wire.UnmarshalStrict([]byte(line), &step) != nil {
						return
					}
					ack, _ := json.Marshal(wire.AckFrame{V: wire.V1, Type: wire.FrameAck, ID: step.ID,
						StepResponse: wire.StepResponse{T: 1, Accepted: len(step.Requests),
							Batched: len(step.Requests), Positions: []wire.Point{{0, 0}}}})
					conn.Write(append(ack, '\n'))
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), accepted
}

// TestDialAutoFallsBackToOldServer pins the downgrade path: an old server
// strict-rejects the wire field as bad_frame; an auto-mode client
// re-dials once without the field and comes up NDJSON. The downgrade
// re-dial is not a counted transport attempt.
func TestDialAutoFallsBackToOldServer(t *testing.T) {
	addr, accepted := oldServer(t)
	opts := fastOpts()
	opts.Dim = 2
	c, err := Dial(addr, "/stream", opts)
	if err != nil {
		t.Fatalf("auto dial against old server: %v", err)
	}
	defer c.Close()
	if c.Wire() != wire.WireNDJSON {
		t.Fatalf("wire = %q, want %q after downgrade", c.Wire(), wire.WireNDJSON)
	}
	if got := accepted.Load(); got != 2 {
		t.Fatalf("old server saw %d connections, want 2 (binary ask, then plain re-dial)", got)
	}
	p, err := c.Step([]wire.Point{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ack, err := p.Wait(); err != nil || ack.Accepted != 1 {
		t.Fatalf("downgraded session ack = %+v, %v", ack, err)
	}
	p.Release()

	// Forced binary against the same old server must fail, not downgrade.
	fopts := fastOpts()
	fopts.Dim = 2
	fopts.Wire = wire.WireBinary
	if c2, err := Dial(addr, "/stream", fopts); err == nil {
		c2.Close()
		t.Fatal("forced binary dial downgraded against an old server")
	}
}

// TestClientStepZeroAlloc gates the client-side steady state at
// 0 allocs/op over a real TCP connection to a real server: Step encodes
// from caller storage into the reused write buffer, Wait blocks for the
// decoded-in-place ack, Release recycles. AllocsPerRun counts global
// mallocs, so the server half of the loop (running in this process) is
// gated too — this is the whole pipeline, socket to socket.
func TestClientStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budget is not measurable under -race (the race runtime allocates)")
	}
	ts := testServerWire(t, "")
	c, err := Dial(ts.Listener.Addr().String(), "/stream", Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Wire() != wire.WireBinary {
		t.Fatalf("negotiated wire = %q", c.Wire())
	}
	// A batch of 8 non-collinear requests keeps the engine on its pooled
	// Weiszfeld path; single in-flight keeps the pipeline depth fixed.
	reqs := make([]wire.Point, 8)
	for i := range reqs {
		reqs[i] = wire.Point{float64(i%3) + 0.25*float64(i), float64((i * 5) % 7)}
	}
	oneStep := func() {
		p, err := c.Step(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	for i := 0; i < 10; i++ {
		oneStep()
	}
	if allocs := testing.AllocsPerRun(200, oneStep); allocs != 0 {
		t.Fatalf("client step allocates %v/op, want 0", allocs)
	}
}
