package server

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// helloWire performs the handshake asking for a wire encoding and returns
// the welcome. The handshake itself is always NDJSON — the encoding only
// switches after the welcome confirms it.
func (c *streamConn) helloWire(dim int, wireOpt string) wire.WelcomeFrame {
	c.t.Helper()
	c.send(wire.HelloFrame{V: wire.V1, Type: wire.FrameHello, Dim: dim, Wire: wireOpt})
	var w wire.WelcomeFrame
	c.recv(wire.FrameWelcome, &w)
	return w
}

// sendBinary writes one framed binary payload on the raw connection.
func (c *streamConn) sendBinary(tag byte, payload []byte) {
	c.t.Helper()
	bw := bufio.NewWriter(c.conn)
	if err := wire.WriteBinaryFrame(bw, tag, payload); err != nil {
		c.t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

// recvBinary reads the next binary frame and checks its tag.
func (c *streamConn) recvBinary(wantTag byte) []byte {
	c.t.Helper()
	var buf []byte
	tag, payload, err := wire.ReadBinaryFrame(c.br, &buf, wire.DefaultMaxFrame)
	if err != nil {
		c.t.Fatalf("reading binary frame: %v", err)
	}
	if tag != wantTag {
		c.t.Fatalf("got binary tag 0x%02x, want 0x%02x", tag, wantTag)
	}
	return payload
}

func newStreamServer(t *testing.T, wirePolicy string) (*Server, *httptest.Server) {
	t.Helper()
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		QueueLimit: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetStreamWire(wirePolicy)
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestStreamBinaryNegotiation pins the upgrade: a hello asking for binary
// is confirmed by a welcome carrying wire:"binary", after which steps,
// acks, pings, pongs, and byes all travel as binary frames, with ack
// values identical to what the NDJSON encoding would carry.
func TestStreamBinaryNegotiation(t *testing.T) {
	_, ts := newStreamServer(t, "")
	c := dialStream(t, ts)
	w := c.helloWire(2, wire.WireBinary)
	if w.Wire != wire.WireBinary {
		t.Fatalf("welcome wire = %q, want %q", w.Wire, wire.WireBinary)
	}

	const frames = 20
	for id := int64(1); id <= frames; id++ {
		c.sendBinary(wire.BinStep, wire.AppendStepFrom(nil, wire.V1, id, reqsFor(int(id), 2)))
	}
	accepted := 0
	var ack wire.AckFrame
	for id := int64(1); id <= frames; id++ {
		payload := c.recvBinary(wire.BinAck)
		if err := wire.DecodeAck(payload, &ack); err != nil {
			t.Fatal(err)
		}
		if ack.ID != id {
			t.Fatalf("ack order broken: got id %d, want %d", ack.ID, id)
		}
		if len(ack.Positions) != 1 || len(ack.Positions[0]) != 2 {
			t.Fatalf("ack %d positions = %+v", id, ack.Positions)
		}
		accepted += ack.Accepted
	}
	if accepted != frames*2 {
		t.Fatalf("accepted %d requests, want %d", accepted, frames*2)
	}

	// Control frames follow the negotiated encoding too.
	c.sendBinary(wire.BinPing, wire.AppendControl(nil, wire.V1))
	if _, err := wire.DecodeControl(c.recvBinary(wire.BinPong)); err != nil {
		t.Fatal(err)
	}
	c.sendBinary(wire.BinBye, wire.AppendControl(nil, wire.V1))
}

// TestStreamBinaryDeclined pins the policy knob: a server pinned to
// NDJSON answers a binary request with an unconfirmed welcome and the
// stream stays NDJSON — the client's ask is an offer, not a demand.
func TestStreamBinaryDeclined(t *testing.T) {
	_, ts := newStreamServer(t, wire.WireNDJSON)
	c := dialStream(t, ts)
	w := c.helloWire(2, wire.WireBinary)
	if w.Wire != "" {
		t.Fatalf("pinned server confirmed wire %q", w.Wire)
	}
	c.step(1, reqsFor(1, 2))
	var ack wire.AckFrame
	c.recv(wire.FrameAck, &ack)
	if ack.ID != 1 || ack.Accepted != 2 {
		t.Fatalf("NDJSON fallback ack = %+v", ack)
	}
}

// TestStreamPlainHelloStaysNDJSON pins backward compatibility: a hello
// without the wire field — every pre-binary client — never sees a
// confirmed encoding or a binary byte.
func TestStreamPlainHelloStaysNDJSON(t *testing.T) {
	_, ts := newStreamServer(t, "")
	c := dialStream(t, ts)
	w := c.hello(2)
	if w.Wire != "" {
		t.Fatalf("plain hello got wire %q confirmed", w.Wire)
	}
	c.step(1, reqsFor(1, 2))
	var ack wire.AckFrame
	c.recv(wire.FrameAck, &ack)
	if ack.ID != 1 {
		t.Fatalf("ack = %+v", ack)
	}
}

// TestStreamUnknownWireRejected pins strictness at the negotiation point:
// an unknown wire value is a protocol error (bad_request), not something
// to silently fall back from — a client that sends it would otherwise
// misinterpret every following byte.
func TestStreamUnknownWireRejected(t *testing.T) {
	_, ts := newStreamServer(t, "")
	c := dialStream(t, ts)
	c.send(wire.HelloFrame{V: wire.V1, Type: wire.FrameHello, Dim: 2, Wire: "gzip"})
	var ef wire.ErrorFrame
	c.recv(wire.FrameError, &ef)
	if ef.Err.Code != wire.CodeBadRequest {
		t.Fatalf("error code = %q, want %q", ef.Err.Code, wire.CodeBadRequest)
	}
}

// TestStreamBinaryBadPointsKeepsStream pins per-frame error semantics
// under the binary encoding: a step whose points have the wrong dimension
// is answered with an error frame carrying its id, and the stream keeps
// serving subsequent frames.
func TestStreamBinaryBadPointsKeepsStream(t *testing.T) {
	_, ts := newStreamServer(t, "")
	c := dialStream(t, ts)
	if w := c.helloWire(2, wire.WireBinary); w.Wire != wire.WireBinary {
		t.Fatalf("welcome wire = %q", w.Wire)
	}
	c.sendBinary(wire.BinStep, wire.AppendStepFrom(nil, wire.V1, 1, []wire.Point{{1, 2, 3}}))
	var ef wire.ErrorFrame
	if err := wire.DecodeErrorFrame(c.recvBinary(wire.BinError), &ef); err != nil {
		t.Fatal(err)
	}
	if ef.Err.Code != wire.CodeBadRequest || ef.ID == nil || *ef.ID != 1 {
		t.Fatalf("error frame = %+v", ef)
	}
	c.sendBinary(wire.BinStep, wire.AppendStepFrom(nil, wire.V1, 2, reqsFor(2, 2)))
	var ack wire.AckFrame
	if err := wire.DecodeAck(c.recvBinary(wire.BinAck), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID != 2 {
		t.Fatalf("stream did not continue past the bad frame: ack %+v", ack)
	}
}

// rawGet fetches a URL and returns the exact response bytes.
func rawGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestStreamBinaryMetricsMatchNDJSON is the transport-equivalence
// differential: the same workload driven in lockstep over a binary
// stream and an NDJSON stream leaves byte-identical /metrics and /state
// documents. The encodings may differ on the wire; the engine must not
// be able to tell.
func TestStreamBinaryMetricsMatchNDJSON(t *testing.T) {
	const steps = 30
	_, tsBin := newStreamServer(t, "")
	_, tsJSON := newStreamServer(t, wire.WireNDJSON)

	cb := dialStream(t, tsBin)
	if w := cb.helloWire(2, wire.WireBinary); w.Wire != wire.WireBinary {
		t.Fatalf("binary server welcome wire = %q", w.Wire)
	}
	cj := dialStream(t, tsJSON)
	if w := cj.helloWire(2, wire.WireBinary); w.Wire != "" {
		t.Fatalf("NDJSON server welcome wire = %q", w.Wire)
	}

	// Lockstep: wait for each ack before the next frame, so both runs
	// execute the identical step sequence regardless of coalescing.
	var bAck, jAck wire.AckFrame
	for id := int64(1); id <= steps; id++ {
		reqs := reqsFor(int(id), 3)
		cb.sendBinary(wire.BinStep, wire.AppendStepFrom(nil, wire.V1, id, reqs))
		if err := wire.DecodeAck(cb.recvBinary(wire.BinAck), &bAck); err != nil {
			t.Fatal(err)
		}
		cj.step(id, reqs)
		cj.recv(wire.FrameAck, &jAck)
		if bAck.T != jAck.T || bAck.Cost != jAck.Cost || bAck.Accepted != jAck.Accepted {
			t.Fatalf("step %d: binary ack %+v != NDJSON ack %+v", id, bAck, jAck)
		}
	}

	for _, path := range []string{"/metrics", "/state"} {
		if b, j := rawGet(t, tsBin.URL+path), rawGet(t, tsJSON.URL+path); !bytes.Equal(b, j) {
			t.Errorf("%s diverged between encodings:\n binary %s\n ndjson %s", path, b, j)
		}
	}
}

// TestStreamServerZeroAlloc gates the server-side steady state at
// 0 allocs/op: decode a binary step frame into a pooled buffer, validate,
// enqueue, wait for the engine, encode the binary ack, release. This is
// the exact component chain readLoop/writeLoop run per frame (minus the
// socket), and AllocsPerRun measures global mallocs, so the background
// step loop's allocations count too — a regression anywhere in the
// pipeline fails this test.
func TestStreamServerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budget is not measurable under -race (the race runtime allocates)")
	}
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		QueueLimit: 128, // CoalesceWindow 0: timers allocate
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := &srvStream{srv: s, bw: bufio.NewWriterSize(io.Discard, 1<<16), binary: true}
	// A batch of 8 non-collinear requests: the pooled Weiszfeld path (the
	// n==3 closed form still allocates and is documented as such).
	reqs := reqsFor(1, 8)
	stepPayload := wire.AppendStepFrom(nil, wire.V1, 1, reqs)

	var payload []byte
	var shardBuf []wire.ShardStep
	buf := stepBufPool.Get().(*stepBuf)
	defer stepBufPool.Put(buf)

	oneStep := func() {
		if err := wire.DecodeStep(stepPayload, &buf.frame); err != nil {
			t.Fatal(err)
		}
		if err := wire.ValidatePoints(buf.frame.Requests, cfg.Dim); err != nil {
			t.Fatal(err)
		}
		pend, err := s.svc.Enqueue(buf.geomView())
		if err != nil {
			t.Fatal(err)
		}
		ack, err := pend.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if werr := c.writeAck(buf.frame.ID, ack, nil, &payload, &shardBuf); werr != nil {
			t.Fatal(werr)
		}
		ack.Release()
		pend.Release()
	}
	// Warm the pools (request buffers, ack buffers, encoder scratch).
	for i := 0; i < 10; i++ {
		oneStep()
	}
	if allocs := testing.AllocsPerRun(200, oneStep); allocs != 0 {
		t.Fatalf("server stream step allocates %v/op, want 0", allocs)
	}
}
