package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/shard"
	"repro/internal/wire"
)

func shardedTestConfig(n, k int) core.Config {
	cfg := testConfig(k)
	cfg.Partition = core.UniformPartition(n, 20)
	return cfg
}

func newMtCK() core.FleetAlgorithm { return multi.NewMtCK() }

// spreadReqs is the sharded test workload: nReq requests per step whose
// axis-0 coordinates sweep the whole partitioned interval, so every shard
// sees traffic.
func spreadReqs(t, nReq int) []wire.Point {
	out := make([]wire.Point, nReq)
	for i := range out {
		x := -19 + 38*math.Mod(0.37*float64(t*nReq+i)+0.11, 1.0)
		y := 5 * math.Sin(float64(t)+float64(i)*1.7)
		out[i] = wire.Point{x, y}
	}
	return out
}

// driveSpread posts one spread batch per engine step and fails on any
// non-200.
func driveSpread(t *testing.T, url string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		resp, data := postJSON(t, url, wire.StepRequest{Requests: spreadReqs(i, 4)})
		if resp.StatusCode != 200 {
			t.Fatalf("POST step %d = %d: %s", i, resp.StatusCode, data)
		}
	}
}

// TestShardedServeRoutes: a router-mode server tags every layer of the API
// with per-shard payloads, and the shard totals reconcile with the fleet
// totals.
func TestShardedServeRoutes(t *testing.T) {
	const n, steps, perStep = 3, 40, 4
	cfg := shardedTestConfig(n, 2)
	s, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	routedTotal := 0
	for i := 0; i < steps; i++ {
		resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: spreadReqs(i, perStep)})
		if resp.StatusCode != 200 {
			t.Fatalf("POST step %d = %d: %s", i, resp.StatusCode, data)
		}
		var sr wire.StepResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Shards) != n {
			t.Fatalf("step response has %d shard tags, want %d", len(sr.Shards), n)
		}
		stepRouted := 0
		var stepCost float64
		for _, st := range sr.Shards {
			stepRouted += st.Routed
			stepCost += st.Cost.Total
		}
		if stepRouted != sr.Batched {
			t.Fatalf("step %d routed %d of %d batched requests", sr.T, stepRouted, sr.Batched)
		}
		if math.Abs(stepCost-sr.Cost.Total) > 1e-9*(1+stepCost) {
			t.Fatalf("step %d shard costs sum to %g, step cost %g", sr.T, stepCost, sr.Cost.Total)
		}
		routedTotal += stepRouted
	}

	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Requests != routedTotal {
		t.Fatalf("metrics.Requests = %d, routed %d", m.Requests, routedTotal)
	}
	if len(m.Shards) != n {
		t.Fatalf("metrics has %d shard entries, want %d", len(m.Shards), n)
	}
	sum := 0
	for _, sm := range m.Shards {
		sum += sm.Requests
	}
	if sum != m.Requests {
		t.Fatalf("per-shard request counters sum to %d, fleet total %d", sum, m.Requests)
	}

	var st wire.StateResponse
	getJSON(t, ts.URL+"/state", &st)
	if len(st.Partition) != n-1 {
		t.Fatalf("state partition has %d boundaries, want %d", len(st.Partition), n-1)
	}
	if len(st.Shards) != n || len(st.Positions) != n*2 {
		t.Fatalf("state: %d shards, %d positions", len(st.Shards), len(st.Positions))
	}
	// Every shard's servers must sit inside the shard's own region.
	for _, sh := range st.Shards {
		for _, p := range sh.Positions {
			if got := cfg.Partition.ShardOf(p[0]); got != sh.Shard {
				t.Errorf("shard %d server at x=%v routes to shard %d", sh.Shard, p[0], got)
			}
		}
	}
}

// TestShardedKillAndRestore is the sharded crash drill: a router-mode
// server checkpointing after every step is killed without shutdown
// courtesy, a fresh server resumes from the combined checkpoint, and the
// run finishes byte-identical — per shard and in every observable payload
// (/snapshot, /metrics, /state) — to a server that was never interrupted.
func TestShardedKillAndRestore(t *testing.T) {
	const kill, total = 30, 60
	cfg := shardedTestConfig(3, 2)
	ckpt := filepath.Join(t.TempDir(), "sharded.ckpt")
	opts := Options{CheckpointPath: ckpt, CheckpointEvery: 1}

	a, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, opts)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	driveSpread(t, tsA.URL, 0, kill)
	tsA.Close() // the process dies here

	snap, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	b, err := ResumeSharded(cfg, newMtCK, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if got := b.T(); got != kill {
		t.Fatalf("resumed at T=%d, want %d", got, kill)
	}
	driveSpread(t, tsB.URL, kill, total)

	c, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	driveSpread(t, tsC.URL, 0, total)

	// The combined snapshot must match as a whole and shard by shard.
	snapB := getBody(t, tsB.URL+"/snapshot")
	snapC := getBody(t, tsC.URL+"/snapshot")
	if !bytes.Equal(snapB, snapC) {
		t.Fatalf("resumed combined snapshot differs from uninterrupted run:\n%s\nvs\n%s", snapB, snapC)
	}
	var sb, sc struct {
		Shards []json.RawMessage `json:"shards"`
	}
	if err := json.Unmarshal(snapB, &sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(snapC, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sb.Shards) != 3 {
		t.Fatalf("combined snapshot has %d shards, want 3", len(sb.Shards))
	}
	for i := range sb.Shards {
		if !bytes.Equal(sb.Shards[i], sc.Shards[i]) {
			t.Fatalf("shard %d snapshot differs after resume:\n%s\nvs\n%s", i, sb.Shards[i], sc.Shards[i])
		}
	}

	// Resume-aware observers: the restarted server's /metrics and /state
	// equal the uninterrupted server's, byte for byte.
	if mB, mC := getBody(t, tsB.URL+"/metrics"), getBody(t, tsC.URL+"/metrics"); !bytes.Equal(mB, mC) {
		t.Fatalf("resumed /metrics differs:\n%s\nvs\n%s", mB, mC)
	}
	if stB, stC := getBody(t, tsB.URL+"/state"), getBody(t, tsC.URL+"/state"); !bytes.Equal(stB, stC) {
		t.Fatalf("resumed /state differs:\n%s\nvs\n%s", stB, stC)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded kill-and-restore: killed at step %d/%d, per-shard snapshots and observer payloads identical", kill, total)
}

// TestShardedResumeFromBareSnapshot: resuming from a saved GET /snapshot
// body (a bare router snapshot with no observer state) reconstructs the
// fleet-level metrics from the router's restored counters, so the
// per-shard breakdown still sums to the totals.
func TestShardedResumeFromBareSnapshot(t *testing.T) {
	const n, steps, perStep = 3, 20, 4
	cfg := shardedTestConfig(n, 1)
	s, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	driveSpread(t, ts.URL, 0, steps)
	bare := getBody(t, ts.URL+"/snapshot")
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeSharded(cfg, newMtCK, bare, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tsR := httptest.NewServer(r.Handler())
	defer tsR.Close()
	var m wire.MetricsResponse
	getJSON(t, tsR.URL+"/metrics", &m)
	if m.Steps != steps || m.Requests != steps*perStep {
		t.Fatalf("reconstructed metrics = %d steps / %d requests, want %d / %d", m.Steps, m.Requests, steps, steps*perStep)
	}
	sum := 0
	for _, sh := range m.Shards {
		sum += sh.Requests
	}
	if sum != m.Requests {
		t.Fatalf("per-shard counters sum to %d, fleet total %d", sum, m.Requests)
	}
}

// TestShardedResumeRejectsLayoutChange: a combined checkpoint does not
// resume under a different shard layout.
func TestShardedResumeRejectsLayoutChange(t *testing.T) {
	cfg := shardedTestConfig(3, 1)
	ckpt := filepath.Join(t.TempDir(), "layout.ckpt")
	s, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	driveSpread(t, ts.URL, 0, 3)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	moved := cfg
	moved.Partition = core.UniformPartition(4, 20)
	if _, err := ResumeSharded(moved, newMtCK, snap, Options{}); err == nil {
		t.Fatal("resume under a different partition must fail")
	}
}
