package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/wire"
)

// streamConn is a minimal NDJSON stream client for tests: it speaks the
// POST /stream upgrade by hand so the tests exercise the real wire bytes.
type streamConn struct {
	t    testing.TB
	conn net.Conn
	br   *bufio.Reader
}

func dialStream(t testing.TB, ts *httptest.Server) *streamConn {
	t.Helper()
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn, "POST /stream HTTP/1.1\r\nHost: stream-test\r\nContent-Length: 0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("POST /stream status line = %q", status)
	}
	for { // skip response headers
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	c := &streamConn{t: t, conn: conn, br: br}
	t.Cleanup(func() { conn.Close() })
	return c
}

func (c *streamConn) send(v any) {
	c.t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(append(data, '\n')); err != nil {
		c.t.Fatal(err)
	}
}

// recv reads the next frame line and strictly decodes it into v after
// checking the envelope's type.
func (c *streamConn) recv(wantType string, v any) {
	c.t.Helper()
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("reading %s frame: %v", wantType, err)
	}
	head, err := wire.PeekFrame(line)
	if err != nil {
		c.t.Fatalf("peek %q: %v", line, err)
	}
	if head.Type != wantType {
		c.t.Fatalf("got %s frame, want %s: %s", head.Type, wantType, line)
	}
	if err := wire.UnmarshalStrict(line, v); err != nil {
		c.t.Fatalf("decode %s: %v", line, err)
	}
}

// hello performs the handshake and returns the welcome.
func (c *streamConn) hello(dim int) wire.WelcomeFrame {
	c.t.Helper()
	c.send(wire.HelloFrame{V: wire.V1, Type: wire.FrameHello, Dim: dim})
	var w wire.WelcomeFrame
	c.recv(wire.FrameWelcome, &w)
	if w.V != wire.V1 {
		c.t.Fatalf("welcome v = %d", w.V)
	}
	return w
}

func (c *streamConn) step(id int64, reqs []wire.Point) {
	c.t.Helper()
	c.send(wire.StepFrame{V: wire.V1, Type: wire.FrameStep, ID: id, Requests: reqs})
}

// TestStreamPipeline: a client pipelines many step frames over one
// connection; every frame is acked in submission order, every request is
// counted exactly once, and the cost sum over unique steps reconciles with
// GET /metrics — the same invariant the HTTP e2e test pins.
func TestStreamPipeline(t *testing.T) {
	const frames, perFrame = 60, 2
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CoalesceWindow: time.Millisecond,
		QueueLimit:     128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dialStream(t, ts)
	w := c.hello(cfg.Dim)
	if w.T != 0 || w.Algorithm == "" || w.Dim != cfg.Dim {
		t.Fatalf("welcome = %+v", w)
	}

	// Pipeline every frame up front, then read all acks.
	for id := int64(1); id <= frames; id++ {
		c.step(id, reqsFor(int(id), perFrame))
	}
	accepted := 0
	costs := map[int]wire.Cost{}
	lastT := -1
	for id := int64(1); id <= frames; id++ {
		var ack wire.AckFrame
		c.recv(wire.FrameAck, &ack)
		if ack.ID != id {
			t.Fatalf("ack order broken: got id %d, want %d", ack.ID, id)
		}
		if ack.Accepted != perFrame {
			t.Fatalf("ack %d accepted = %d", id, ack.Accepted)
		}
		if ack.T < lastT {
			t.Fatalf("step indices regressed: %d after %d", ack.T, lastT)
		}
		lastT = ack.T
		accepted += ack.Accepted
		costs[ack.T] = ack.Cost
	}
	c.send(wire.ByeFrame{V: wire.V1, Type: wire.FrameBye})

	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Requests != frames*perFrame || accepted != frames*perFrame {
		t.Fatalf("requests = %d (client %d), want %d", m.Requests, accepted, frames*perFrame)
	}
	if m.Steps != len(costs) {
		t.Fatalf("unique acked steps %d != server steps %d", len(costs), m.Steps)
	}
	var total float64
	for _, c := range costs {
		total += c.Total
	}
	if diff := total - m.Cost.Total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost reconciliation: client %v vs server %v", total, m.Cost.Total)
	}
	if m.Steps >= frames {
		t.Fatalf("pipelined frames never coalesced: %d steps from %d frames", m.Steps, frames)
	}
}

// TestStreamVersionMismatch pins version negotiation: a hello with an
// unknown major is answered by a connection-level error frame with code
// bad_version, and the server closes the stream.
func TestStreamVersionMismatch(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dialStream(t, ts)
	c.send(wire.HelloFrame{V: 99, Type: wire.FrameHello})
	var e wire.ErrorFrame
	c.recv(wire.FrameError, &e)
	if e.Err.Code != wire.CodeBadVersion {
		t.Fatalf("error code = %q, want %q", e.Err.Code, wire.CodeBadVersion)
	}
	if e.ID != nil {
		t.Fatalf("connection-level error must carry no id: %+v", e)
	}
	if _, err := c.br.ReadByte(); err == nil {
		t.Fatal("server must close the stream after a version mismatch")
	}

	// Wrong dimension in an otherwise valid hello is also fatal.
	c2 := dialStream(t, ts)
	c2.send(wire.HelloFrame{V: wire.V1, Type: wire.FrameHello, Dim: cfg.Dim + 1})
	c2.recv(wire.FrameError, &e)
	if e.Err.Code != wire.CodeBadRequest {
		t.Fatalf("dim mismatch code = %q, want %q", e.Err.Code, wire.CodeBadRequest)
	}
}

// TestStreamThrottleRoundTrip pins typed backpressure: with the loop
// parked and the queue full, a step frame is answered (in order) by a
// throttle carrying the backoff hint, the batch is NOT executed, and
// resending the same id after the acks flush succeeds.
func TestStreamThrottleRoundTrip(t *testing.T) {
	cfg := testConfig(1)
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		QueueLimit: 1,
		Observers:  []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dialStream(t, ts)
	c.hello(0)

	c.step(1, reqsFor(0, 1))
	<-obs.entered // loop is parked inside step 1
	c.step(2, reqsFor(1, 1))
	// Give the reader a moment to enqueue frame 2 into the last slot,
	// then overflow with frame 3 — and hold the loop parked until the
	// rejection has actually been decided, or frame 3 could sneak into
	// the slot freed by step 1.
	waitQueueDepth(t, s, 1)
	c.step(3, reqsFor(2, 1))
	waitRejected(t, s, 1)

	// Replies stay in submission order: ack 1, ack 2, then the throttle
	// for 3 (which was decided while 1 was still executing).
	go func() {
		obs.release <- struct{}{}
		<-obs.entered
		obs.release <- struct{}{}
	}()
	var ack wire.AckFrame
	c.recv(wire.FrameAck, &ack)
	if ack.ID != 1 || ack.T != 0 {
		t.Fatalf("first ack = %+v", ack)
	}
	c.recv(wire.FrameAck, &ack)
	if ack.ID != 2 || ack.T != 1 {
		t.Fatalf("second ack = %+v", ack)
	}
	var th wire.ThrottleFrame
	c.recv(wire.FrameThrottle, &th)
	if th.ID != 3 || th.RetryAfterMS < 1 {
		t.Fatalf("throttle = %+v", th)
	}

	// The throttled batch was refused, not executed: resend the same id.
	go func() {
		<-obs.entered
		obs.release <- struct{}{}
	}()
	c.step(3, reqsFor(2, 1))
	c.recv(wire.FrameAck, &ack)
	if ack.ID != 3 || ack.T != 2 {
		t.Fatalf("resent ack = %+v", ack)
	}

	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Requests != 3 || m.Rejected != 1 {
		t.Fatalf("metrics = %d requests / %d rejected, want 3 / 1 (throttled batch fed exactly once)", m.Requests, m.Rejected)
	}
}

// waitQueueDepth polls until the service queue holds want batches, so the
// test can order reader-side enqueues deterministically.
func waitQueueDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Service().QueueDepth() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", want)
}

// waitRejected polls (lock-free) until want submissions have been turned
// away, so a test can park the step loop across the rejection it forces.
func waitRejected(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Service().Rejected() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("rejections never reached %d", want)
}

// TestStreamDisconnectResume pins the reconnect contract: after an abrupt
// disconnect, the welcome of a fresh stream reports the session's step
// count — covering steps that executed but whose acks were lost — so the
// client resumes from the last acked step without losing or double-feeding
// a batch.
func TestStreamDisconnectResume(t *testing.T) {
	const before, after = 5, 4
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First connection: five acked steps, sent one at a time so each is
	// its own engine step.
	c1 := dialStream(t, ts)
	if w := c1.hello(0); w.T != 0 {
		t.Fatalf("fresh welcome T = %d", w.T)
	}
	for id := int64(1); id <= before; id++ {
		c1.step(id, reqsFor(int(id), 1))
		var ack wire.AckFrame
		c1.recv(wire.FrameAck, &ack)
		if ack.T != int(id-1) {
			t.Fatalf("ack %d T = %d", id, ack.T)
		}
	}
	// One more frame whose ack the client never reads: the step executes
	// server-side (wait for it), then the connection dies abruptly.
	c1.step(before+1, reqsFor(before+1, 1))
	deadline := time.Now().Add(2 * time.Second)
	for s.T() < before+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c1.conn.Close()

	// Reconnect: the welcome reports every executed step, including the
	// unacked one, so the client knows batch before+1 must NOT be resent.
	c2 := dialStream(t, ts)
	w := c2.hello(0)
	if w.T != before+1 {
		t.Fatalf("resumed welcome T = %d, want %d", w.T, before+1)
	}
	for i := 0; i < after; i++ {
		c2.step(int64(100+i), reqsFor(100+i, 1))
		var ack wire.AckFrame
		c2.recv(wire.FrameAck, &ack)
		if ack.T != before+1+i {
			t.Fatalf("post-resume ack T = %d, want %d", ack.T, before+1+i)
		}
	}

	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Steps != before+1+after || m.Requests != before+1+after {
		t.Fatalf("metrics = %d steps / %d requests, want %d (no loss, no double-feed)", m.Steps, m.Requests, before+1+after)
	}
}

// TestStreamRejectsMalformedFrames: unknown fields and unknown types are
// typed errors, not silent no-ops.
func TestStreamRejectsMalformedFrames(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Misspelled field inside a step frame: fatal bad_frame (strict
	// decoding cannot tell what the client meant).
	c := dialStream(t, ts)
	c.hello(0)
	if _, err := c.conn.Write([]byte(`{"v":1,"type":"step","id":1,"reqeusts":[[1,2]]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	var e wire.ErrorFrame
	c.recv(wire.FrameError, &e)
	if e.Err.Code != wire.CodeBadFrame {
		t.Fatalf("misspelled field code = %q, want %q", e.Err.Code, wire.CodeBadFrame)
	}

	// Bad payload (dimension mismatch) is per-frame: the identified frame
	// errors, the stream survives.
	c2 := dialStream(t, ts)
	c2.hello(0)
	c2.step(7, []wire.Point{{1, 2, 3}})
	c2.recv(wire.FrameError, &e)
	if e.Err.Code != wire.CodeBadRequest || e.ID == nil || *e.ID != 7 {
		t.Fatalf("bad payload error = %+v", e)
	}
	c2.step(8, reqsFor(0, 1))
	var ack wire.AckFrame
	c2.recv(wire.FrameAck, &ack)
	if ack.ID != 8 || ack.T != 0 {
		t.Fatalf("stream did not survive a per-frame rejection: %+v", ack)
	}

	if m := s.Service().Metrics(); m.Requests != 1 {
		t.Fatalf("rejected frames half-applied: %d requests, want 1", m.Requests)
	}
}

// TestStreamShardedAcks: against a router-mode server, pipelined stream
// acks carry per-shard payloads that stay internally consistent — the
// routed counts sum to the ack's batch size even while the next step is
// already overwriting the router's own buffers (the regression: acks must
// carry a copy of the per-shard stats, not alias them; -race covers the
// aliasing directly).
func TestStreamShardedAcks(t *testing.T) {
	const frames, perFrame = 50, 4
	cfg := shardedTestConfig(3, 2)
	s, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK, Options{QueueLimit: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := dialStream(t, ts)
	c.hello(cfg.Dim)
	for id := int64(1); id <= frames; id++ {
		c.step(id, spreadReqs(int(id), perFrame))
	}
	for id := int64(1); id <= frames; id++ {
		var ack wire.AckFrame
		c.recv(wire.FrameAck, &ack)
		if len(ack.Shards) != 3 {
			t.Fatalf("ack %d carries %d shard payloads, want 3", id, len(ack.Shards))
		}
		routed := 0
		for _, sh := range ack.Shards {
			routed += sh.Routed
		}
		if routed != ack.Batched {
			t.Fatalf("ack %d: shard routed counts sum to %d, batched %d (torn per-shard stats)", id, routed, ack.Batched)
		}
	}
}

// TestSSEMetricsStream: GET /metrics/stream pushes one event per executed
// step, SSE-framed, with the step index as the event id.
func TestSSEMetricsStream(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("GET /metrics/stream = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	const steps = 3
	go func() {
		for i := 0; i < steps; i++ {
			postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(i, 2)})
		}
	}()

	br := bufio.NewReader(resp.Body)
	for i := 0; i < steps; i++ {
		var id string
		var ev wire.MetricsEvent
		for { // one SSE event: id/event/data lines up to a blank line
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "id: "):
				id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				if got := strings.TrimPrefix(line, "event: "); got != "metrics" {
					t.Fatalf("event type = %q", got)
				}
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatal(err)
				}
			case line == "":
				goto parsed
			}
		}
	parsed:
		if ev.V != wire.V1 || ev.T != i || ev.Steps != i+1 || ev.Requests != (i+1)*2 || ev.Batched != 2 {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if id != fmt.Sprint(ev.T) {
			t.Fatalf("SSE id %q != step %d", id, ev.T)
		}
	}
}

// TestStepRejectsUnknownFields is the HTTP-side strict-decoding
// regression: a misspelled or extra field in a POST /step body answers
// 400 and feeds nothing into the session.
func TestStepRejectsUnknownFields(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"request":[[1,2]]}`,             // misspelled: would have half-applied as an empty step
		`{"requests":[[1,2]],"window":5}`, // unknown extra field
	} {
		resp, err := http.Post(ts.URL+"/step", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Steps != 0 || m.Requests != 0 {
		t.Fatalf("malformed bodies reached the session: %+v", m)
	}
}

// TestSSERebalanceEvent: a step that migrates a server pushes a typed
// "rebalance" event on GET /metrics/stream right after that step's metrics
// event, and GET /state reports the migrated layout.
func TestSSERebalanceEvent(t *testing.T) {
	cfg := shardedTestConfig(4, 2)
	s, err := NewSharded(cfg, shard.Starts(cfg, 5), newMtCK,
		Options{Rebalancer: &shard.Threshold{WindowSteps: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// A tight hotspot parked in shard 3: the threshold policy migrates a
	// server from shard 2 once its 4-step window fills.
	const steps = 12
	posted := make(chan struct{})
	go func() {
		defer close(posted)
		for i := 0; i < steps; i++ {
			reqs := make([]wire.Point, 6)
			for j := range reqs {
				a := float64(i*6 + j)
				reqs[j] = wire.Point{15 + 2*math.Cos(a), 2 * math.Sin(a)}
			}
			postJSON(t, ts.URL, wire.StepRequest{Requests: reqs})
		}
	}()
	defer func() { <-posted }()

	var ev wire.RebalanceEvent
	br := bufio.NewReader(resp.Body)
	event, found := "", false
	for !found {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "rebalance":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if ev.V != wire.V1 || ev.From != 2 || ev.To != 3 {
		t.Fatalf("rebalance event = %+v, want v1 migration 2→3", ev)
	}
	if len(ev.Ks) != 4 || ev.Ks[2] != 1 || ev.Ks[3] != 3 {
		t.Fatalf("rebalance event layout = %v, want [2 2 1 3]", ev.Ks)
	}
	if len(ev.Server) != cfg.Dim {
		t.Fatalf("rebalance event server position has dim %d, want %d", len(ev.Server), cfg.Dim)
	}

	<-posted
	var st wire.StateResponse
	getJSON(t, ts.URL+"/state", &st)
	total := 0
	for _, sh := range st.Shards {
		total += sh.Servers
		if len(sh.Positions) != sh.Servers {
			t.Fatalf("shard %d reports %d servers, %d positions", sh.Shard, sh.Servers, len(sh.Positions))
		}
	}
	if total != 8 || st.Shards[3].Servers != 3 {
		t.Fatalf("/state layout = %+v, want 8 servers with 3 in shard 3", st.Shards)
	}
}
