// The persistent streaming transport: POST /stream hijacks the HTTP
// connection and speaks newline-delimited JSON frames (package wire's
// frame grammar) in both directions, so one client can pipeline step
// batches without per-request HTTP overhead.
//
// Protocol, from the client's side:
//
//  1. POST /stream, then read the HTTP response head (200 with
//     Content-Type application/x-ndjson); the connection is now a frame
//     stream.
//  2. Send {"v":1,"type":"hello"} (optionally with "dim"); the server
//     answers a welcome frame carrying the algorithm, the session's
//     current step count t, and the dimension — or an error frame with
//     code bad_version, and closes, when the major version is unknown.
//  3. Pipeline {"v":1,"type":"step","id":N,"requests":[...]} frames
//     without waiting. The server answers every frame IN SUBMISSION ORDER
//     with an ack (the step outcome), a throttle (typed backpressure: the
//     batch was not enqueued, resend the same id after retry_after_ms), or
//     an error frame carrying that id.
//  4. Send {"v":1,"type":"bye"} (or just close) to end; the server
//     finishes answering everything already submitted first.
//
// After a disconnect, steps whose acks were in flight may have executed:
// reconnect and compare the welcome's t with the last acked step — every
// step below t was executed exactly once, so resume from the first
// unacked batch beyond it.

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/protocol"
	"repro/internal/wire"
)

// replyItem is one queued response frame, carried from the reader to the
// writer so replies leave in exactly the order their frames arrived.
// Either pend is set (an enqueued step awaiting its outcome) or frame
// holds an immediate reply (throttle or per-message error).
type replyItem struct {
	pend  *protocol.Pending
	id    int64
	frame any
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported: connection cannot be hijacked")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	// The stream lives as long as the client keeps it; undo any server
	// read/write deadlines inherited from the HTTP layer.
	_ = conn.SetDeadline(time.Time{})

	if _, err := bufrw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"); err != nil {
		return
	}
	if err := bufrw.Flush(); err != nil {
		return
	}

	sc := bufio.NewScanner(bufrw.Reader)
	sc.Buffer(make([]byte, 64<<10), maxBodyBytes)

	writeFrame := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bufrw.Write(append(data, '\n')); err != nil {
			return err
		}
		return bufrw.Flush()
	}

	if !s.streamHandshake(sc, writeFrame) {
		return
	}

	// The writer drains replies in submission order; the reader keeps
	// consuming frames meanwhile, so the client can pipeline. The channel
	// is bounded: a client that outruns the queue and its throttles
	// eventually blocks the reader, which is TCP backpressure, not memory
	// growth.
	replies := make(chan replyItem, 2*protocol.DefaultQueueLimit)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		dead := false
		for it := range replies {
			frame := it.frame
			if it.pend != nil {
				ack, err := it.pend.Wait()
				if err != nil {
					frame = streamError(it.id, err)
				} else {
					a := ackResponse(ack)
					frame = wire.AckFrame{V: wire.V1, Type: wire.FrameAck, ID: it.id, StepResponse: a}
				}
			}
			// After a write failure keep draining so enqueued steps are
			// still waited (their outcomes are buffered; nothing leaks),
			// but stop touching the dead connection.
			if !dead && writeFrame(frame) != nil {
				dead = true
			}
		}
	}()

	s.streamRead(sc, replies)
	close(replies)
	<-writerDone
}

// streamHandshake consumes the hello frame and answers welcome (or a fatal
// error frame). It reports whether the stream may proceed.
func (s *Server) streamHandshake(sc *bufio.Scanner, writeFrame func(any) error) bool {
	line, ok := nextLine(sc)
	if !ok {
		return false
	}
	head, err := wire.PeekFrame(line)
	if err != nil {
		_ = writeFrame(fatalError(wire.CodeBadFrame, err.Error()))
		return false
	}
	if err := wire.CheckVersion(head.V); err != nil {
		_ = writeFrame(fatalError(wire.CodeBadVersion, err.Error()))
		return false
	}
	if head.Type != wire.FrameHello {
		_ = writeFrame(fatalError(wire.CodeBadFrame, "first frame must be hello, got "+head.Type))
		return false
	}
	var hello wire.HelloFrame
	if err := wire.UnmarshalStrict(line, &hello); err != nil {
		_ = writeFrame(fatalError(wire.CodeBadFrame, "bad hello: "+err.Error()))
		return false
	}
	if hello.Dim != 0 && hello.Dim != s.cfg.Dim {
		_ = writeFrame(fatalError(wire.CodeBadRequest,
			"session dimension is "+strconv.Itoa(s.cfg.Dim)+", hello asked for "+strconv.Itoa(hello.Dim)))
		return false
	}
	welcome := wire.WelcomeFrame{
		V:         wire.V1,
		Type:      wire.FrameWelcome,
		Algorithm: s.svc.Algorithm(),
		T:         s.svc.T(),
		Dim:       s.cfg.Dim,
	}
	// Re-serve the last executed step's outcome, so a reconnecting
	// pipeliner whose final ack was lost in flight recovers it instead of
	// resending the batch (which would double-feed the session).
	if ls := s.svc.LastStep(); ls != nil {
		welcome.Last = &wire.LastStep{
			T:         ls.T,
			Batched:   ls.Batched,
			Cost:      wire.FromCost(ls.Cost),
			Clamped:   ls.Clamped,
			Positions: wire.FromPoints(ls.Positions),
		}
	}
	return writeFrame(welcome) == nil
}

// streamRead is the reader loop: it decodes frames and turns each into an
// ordered reply item — an enqueued pending step, a throttle, or an error.
// It returns on bye, on a fatal protocol violation, or when the
// connection dies.
func (s *Server) streamRead(sc *bufio.Scanner, replies chan<- replyItem) {
	for {
		line, ok := nextLine(sc)
		if !ok {
			return
		}
		head, err := wire.PeekFrame(line)
		if err != nil {
			replies <- replyItem{frame: fatalError(wire.CodeBadFrame, err.Error())}
			return
		}
		if err := wire.CheckVersion(head.V); err != nil {
			replies <- replyItem{frame: fatalError(wire.CodeBadVersion, err.Error())}
			return
		}
		switch head.Type {
		case wire.FrameStep:
			var step wire.StepFrame
			if err := wire.UnmarshalStrict(line, &step); err != nil {
				replies <- replyItem{frame: fatalError(wire.CodeBadFrame, "bad step frame: "+err.Error())}
				return
			}
			reqs, err := wire.ToPoints(step.Requests, s.cfg.Dim)
			if err != nil {
				// Payload-level rejection answers just this frame; the
				// stream continues.
				replies <- replyItem{frame: idError(step.ID, wire.CodeBadRequest, err.Error())}
				continue
			}
			pend, err := s.svc.Enqueue(reqs)
			if err != nil {
				var oe *protocol.OverloadError
				if errors.As(err, &oe) {
					replies <- replyItem{frame: wire.ThrottleFrame{
						V: wire.V1, Type: wire.FrameThrottle, ID: step.ID, RetryAfterMS: oe.RetryAfterMS,
					}}
					continue
				}
				replies <- replyItem{frame: streamError(step.ID, err)}
				if errors.Is(err, protocol.ErrShuttingDown) {
					return
				}
				continue
			}
			replies <- replyItem{pend: pend, id: step.ID}
		case wire.FramePing:
			// The pong rides the ordered reply queue behind any pending
			// acks, so receiving it proves the whole pipeline — reader,
			// step loop, writer — is alive, not just the TCP connection.
			replies <- replyItem{frame: wire.PongFrame{V: wire.V1, Type: wire.FramePong}}
		case wire.FrameBye:
			return
		default:
			replies <- replyItem{frame: fatalError(wire.CodeBadFrame, "unexpected frame type "+head.Type)}
			return
		}
	}
}

// nextLine returns the next non-empty NDJSON line, or false when the
// stream ended (EOF, connection error, or an over-long line).
func nextLine(sc *bufio.Scanner) ([]byte, bool) {
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			return line, true
		}
	}
	return nil, false
}

// streamError maps a protocol-layer error for one step frame to its typed
// wire form.
func streamError(id int64, err error) wire.ErrorFrame {
	e := wire.Error{Code: wire.CodeInternal, Detail: err.Error()}
	var de *protocol.DurabilityError
	var ue *protocol.UnreachableError
	switch {
	case errors.As(err, &de):
		t := de.ExecutedT
		e = wire.Error{Code: wire.CodeNotDurable, Detail: err.Error(), ExecutedT: &t}
	case errors.As(err, &ue):
		e = wire.Error{Code: wire.CodeUnreachable, Detail: err.Error()}
	case errors.Is(err, protocol.ErrShuttingDown):
		e = wire.Error{Code: wire.CodeShuttingDown, Detail: err.Error()}
	}
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, ID: &id, Err: e}
}

// idError is a per-frame rejection: the identified frame failed, the
// stream continues.
func idError(id int64, code, detail string) wire.ErrorFrame {
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, ID: &id, Err: wire.Error{Code: code, Detail: detail}}
}

// fatalError is a connection-level error frame: no id, and the server
// closes the stream after writing it.
func fatalError(code, detail string) wire.ErrorFrame {
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, Err: wire.Error{Code: code, Detail: detail}}
}
