// The persistent streaming transport: POST /stream hijacks the HTTP
// connection and speaks pipelined frames (package wire's frame grammar) in
// both directions, so one client can pipeline step batches without
// per-request HTTP overhead.
//
// Protocol, from the client's side:
//
//  1. POST /stream, then read the HTTP response head (200 with
//     Content-Type application/x-ndjson); the connection is now a frame
//     stream.
//  2. Send {"v":1,"type":"hello"} (optionally with "dim", and optionally
//     with "wire":"binary" to ask for the length-prefixed binary frame
//     encoding); the server answers a welcome frame carrying the
//     algorithm, the session's current step count t, the dimension, and —
//     when it grants the request — the confirmed "wire" encoding. The
//     handshake itself is always NDJSON; servers that predate the "wire"
//     field reject the hello strictly (bad_frame), which a client treats
//     as "speak NDJSON" by re-dialing a plain hello.
//  3. Pipeline step frames without waiting (NDJSON objects or binary
//     frames, per the negotiated encoding). The server answers every
//     frame IN SUBMISSION ORDER with an ack (the step outcome), a
//     throttle (typed backpressure: the batch was not enqueued, resend
//     the same id after retry_after_ms), or an error frame carrying that
//     id.
//  4. Send a bye frame (or just close) to end; the server finishes
//     answering everything already submitted first.
//
// After a disconnect, steps whose acks were in flight may have executed:
// reconnect and compare the welcome's t with the last acked step — every
// step below t was executed exactly once, so resume from the first
// unacked batch beyond it.
//
// Ingestion is an explicit producer/decoder/consumer pipeline. The reader
// goroutine produces and decodes frames into pooled request buffers and
// enqueues them on the service; the ordered reply queue carries each
// buffer to the writer goroutine, which consumes the step outcome, emits
// the ack, and recycles the buffers. Ownership contract: a decoded
// request buffer belongs to the service from Enqueue until the step's
// outcome is delivered (the engine and its observers must not retain it
// past the Step call), then returns to the pool; a pooled ack position
// buffer belongs to the writer until Ack.Release. On the binary encoding
// the whole steady-state loop — socket to engine.Session.Step to ack
// bytes — runs at 0 allocs/op.

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// replyItem is one queued response frame, carried from the reader to the
// writer so replies leave in exactly the order their frames arrived.
// Either pend is set (an enqueued step awaiting its outcome, with the
// pooled request buffer to recycle once it resolves) or frame holds an
// immediate reply (throttle, pong, or per-message error).
type replyItem struct {
	pend  *protocol.Pending
	id    int64
	buf   *stepBuf
	frame any
}

// stepBuf is a pooled decoded step frame: the wire frame (whose Requests
// storage is reused across frames) plus the geometry-typed view of the
// same coordinate storage that the service consumes. It stays out of the
// pool from decode until the step's reply has been written.
type stepBuf struct {
	frame wire.StepFrame
	reqs  []geom.Point
}

var stepBufPool = sync.Pool{New: func() any { return new(stepBuf) }}

// geomView rebuilds b.reqs as the geometry view of b.frame.Requests
// (header copies only; both types are []float64).
func (b *stepBuf) geomView() []geom.Point {
	if cap(b.reqs) < len(b.frame.Requests) {
		b.reqs = make([]geom.Point, len(b.frame.Requests))
	}
	b.reqs = b.reqs[:len(b.frame.Requests)]
	for i, p := range b.frame.Requests {
		b.reqs[i] = geom.Point(p)
	}
	return b.reqs
}

// streamConn bundles the per-connection state of one hijacked stream.
type srvStream struct {
	srv     *Server
	br      *bufio.Reader
	bw      *bufio.Writer
	lineBuf []byte // NDJSON read buffer, reused across lines
	binBuf  []byte // binary frame read buffer, reused across frames
	binary  bool
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported: connection cannot be hijacked")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	// The stream lives as long as the client keeps it; undo any server
	// read/write deadlines inherited from the HTTP layer.
	_ = conn.SetDeadline(time.Time{})

	if _, err := bufrw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"); err != nil {
		return
	}
	if err := bufrw.Flush(); err != nil {
		return
	}

	c := &srvStream{srv: s, br: bufrw.Reader, bw: bufrw.Writer}
	if !c.handshake() {
		return
	}

	// The writer drains replies in submission order; the reader keeps
	// consuming frames meanwhile, so the client can pipeline. The channel
	// is bounded: a client that outruns the queue and its throttles
	// eventually blocks the reader, which is TCP backpressure, not memory
	// growth.
	replies := make(chan replyItem, 2*protocol.DefaultQueueLimit)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop(replies)
	}()

	c.readLoop(replies)
	close(replies)
	<-writerDone
}

// writeJSONFrame marshals one NDJSON frame without flushing.
func (c *srvStream) writeJSONFrame(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(data); err != nil {
		return err
	}
	return c.bw.WriteByte('\n')
}

// writeHandshakeFrame writes one NDJSON frame and flushes (the handshake
// is request/response, not pipelined).
func (c *srvStream) writeHandshakeFrame(v any) error {
	if err := c.writeJSONFrame(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// handshake consumes the NDJSON hello frame, negotiates the frame
// encoding, and answers welcome (or a fatal error frame). It reports
// whether the stream may proceed; on success c.binary holds the
// negotiated encoding.
func (c *srvStream) handshake() bool {
	s := c.srv
	line, ok := c.nextLine()
	if !ok {
		return false
	}
	head, err := wire.PeekFrame(line)
	if err != nil {
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadFrame, err.Error()))
		return false
	}
	if err := wire.CheckVersion(head.V); err != nil {
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadVersion, err.Error()))
		return false
	}
	if head.Type != wire.FrameHello {
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadFrame, "first frame must be hello, got "+head.Type))
		return false
	}
	var hello wire.HelloFrame
	if err := wire.UnmarshalStrict(line, &hello); err != nil {
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadFrame, "bad hello: "+err.Error()))
		return false
	}
	if hello.Dim != 0 && hello.Dim != s.cfg.Dim {
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadRequest,
			"session dimension is "+strconv.Itoa(s.cfg.Dim)+", hello asked for "+strconv.Itoa(hello.Dim)))
		return false
	}
	switch hello.Wire {
	case "", wire.WireNDJSON:
		// The default encoding; nothing to confirm.
	case wire.WireBinary:
		// Grant binary unless this server is pinned to NDJSON; an
		// unconfirmed request simply stays on NDJSON (the client reads
		// the welcome's wire field, not its own preference).
		c.binary = s.streamWire() != wire.WireNDJSON
	default:
		_ = c.writeHandshakeFrame(fatalError(wire.CodeBadRequest, "unknown wire encoding "+strconv.Quote(hello.Wire)))
		return false
	}
	welcome := wire.WelcomeFrame{
		V:         wire.V1,
		Type:      wire.FrameWelcome,
		Algorithm: s.svc.Algorithm(),
		T:         s.svc.T(),
		Dim:       s.cfg.Dim,
	}
	if c.binary {
		welcome.Wire = wire.WireBinary
	}
	// Re-serve the last executed step's outcome, so a reconnecting
	// pipeliner whose final ack was lost in flight recovers it instead of
	// resending the batch (which would double-feed the session).
	if ls := s.svc.LastStep(); ls != nil {
		welcome.Last = &wire.LastStep{
			T:         ls.T,
			Batched:   ls.Batched,
			Cost:      wire.FromCost(ls.Cost),
			Clamped:   ls.Clamped,
			Positions: wire.FromPoints(ls.Positions),
		}
	}
	// Grant a pipelined window capped at what the service can actually
	// reconcile (its ack-ring depth; 1 without a ring), and re-serve the
	// ring itself so a reconnecting pipeliner recovers every executed
	// in-flight step, not just the newest.
	if hello.Window > 1 {
		grant := s.svc.MaxWindow()
		if hello.Window < grant {
			grant = hello.Window
		}
		if grant > 1 {
			welcome.Window = grant
			for _, ls := range s.svc.RecentSteps() {
				welcome.Ring = append(welcome.Ring, wire.LastStep{
					T:         ls.T,
					Batched:   ls.Batched,
					Cost:      wire.FromCost(ls.Cost),
					Clamped:   ls.Clamped,
					Positions: wire.FromPoints(ls.Positions),
				})
			}
		}
	}
	return c.writeHandshakeFrame(welcome) == nil
}

// readLoop is the producer/decoder stage: it reads frames in the
// negotiated encoding, decodes each step into a pooled request buffer,
// and turns every frame into an ordered reply item — an enqueued pending
// step, a throttle, a pong, or an error. It returns on bye, on a fatal
// protocol violation, or when the connection dies.
func (c *srvStream) readLoop(replies chan<- replyItem) {
	for {
		buf := stepBufPool.Get().(*stepBuf)
		id, kind, fatal := c.readStep(buf)
		switch kind {
		case readEOF:
			stepBufPool.Put(buf)
			return
		case readBadFrame:
			stepBufPool.Put(buf)
			replies <- replyItem{frame: fatal}
			return
		case readPing:
			stepBufPool.Put(buf)
			// The pong rides the ordered reply queue behind any pending
			// acks, so receiving it proves the whole pipeline — reader,
			// step loop, writer — is alive, not just the TCP connection.
			replies <- replyItem{frame: wire.PongFrame{V: wire.V1, Type: wire.FramePong}}
			continue
		case readBye:
			stepBufPool.Put(buf)
			return
		}
		if err := wire.ValidatePoints(buf.frame.Requests, c.srv.cfg.Dim); err != nil {
			// Payload-level rejection answers just this frame; the stream
			// continues.
			stepBufPool.Put(buf)
			replies <- replyItem{frame: idError(id, wire.CodeBadRequest, err.Error())}
			continue
		}
		pend, err := c.srv.svc.Enqueue(buf.geomView())
		if err != nil {
			stepBufPool.Put(buf)
			var oe *protocol.OverloadError
			if errors.As(err, &oe) {
				replies <- replyItem{frame: wire.ThrottleFrame{
					V: wire.V1, Type: wire.FrameThrottle, ID: id, RetryAfterMS: oe.RetryAfterMS,
				}}
				continue
			}
			replies <- replyItem{frame: streamError(id, err)}
			if errors.Is(err, protocol.ErrShuttingDown) {
				return
			}
			continue
		}
		replies <- replyItem{pend: pend, id: id, buf: buf}
	}
}

// readStep outcomes.
type readKind int

const (
	readStepFrame readKind = iota
	readPing
	readBye
	readEOF
	readBadFrame
)

// readStep reads one frame in the negotiated encoding. For a step frame
// it decodes into buf and returns its id; for control frames it returns
// the kind; for protocol violations it returns the fatal error frame to
// send before closing.
func (c *srvStream) readStep(buf *stepBuf) (int64, readKind, any) {
	if c.binary {
		tag, payload, err := wire.ReadBinaryFrame(c.br, &c.binBuf, maxBodyBytes)
		if err != nil {
			return 0, readEOF, nil
		}
		switch tag {
		case wire.BinStep:
			if err := wire.DecodeStep(payload, &buf.frame); err != nil {
				return 0, readBadFrame, fatalError(wire.CodeBadFrame, "bad step frame: "+err.Error())
			}
			if err := wire.CheckVersion(buf.frame.V); err != nil {
				return 0, readBadFrame, fatalError(wire.CodeBadVersion, err.Error())
			}
			return buf.frame.ID, readStepFrame, nil
		case wire.BinPing:
			if _, err := wire.DecodeControl(payload); err != nil {
				return 0, readBadFrame, fatalError(wire.CodeBadFrame, "bad ping frame: "+err.Error())
			}
			return 0, readPing, nil
		case wire.BinBye:
			return 0, readBye, nil
		default:
			return 0, readBadFrame, fatalError(wire.CodeBadFrame, "unexpected binary frame 0x"+strconv.FormatUint(uint64(tag), 16))
		}
	}

	line, ok := c.nextLine()
	if !ok {
		return 0, readEOF, nil
	}
	head, err := wire.PeekFrame(line)
	if err != nil {
		return 0, readBadFrame, fatalError(wire.CodeBadFrame, err.Error())
	}
	if err := wire.CheckVersion(head.V); err != nil {
		return 0, readBadFrame, fatalError(wire.CodeBadVersion, err.Error())
	}
	switch head.Type {
	case wire.FrameStep:
		buf.frame = wire.StepFrame{}
		if err := wire.UnmarshalStrict(line, &buf.frame); err != nil {
			return 0, readBadFrame, fatalError(wire.CodeBadFrame, "bad step frame: "+err.Error())
		}
		return buf.frame.ID, readStepFrame, nil
	case wire.FramePing:
		return 0, readPing, nil
	case wire.FrameBye:
		return 0, readBye, nil
	default:
		return 0, readBadFrame, fatalError(wire.CodeBadFrame, "unexpected frame type "+head.Type)
	}
}

// writeLoop is the consumer stage: it resolves each reply item in order,
// emits the reply in the negotiated encoding, and recycles the request
// and ack buffers. Flushes are coalesced: the buffered writer only
// flushes when the reply queue is momentarily empty, so a pipelining
// client amortizes syscalls across its in-flight window.
func (c *srvStream) writeLoop(replies chan replyItem) {
	var payload []byte            // binary ack scratch, reused per frame
	var shardBuf []wire.ShardStep // shard conversion scratch, reused
	dead := false
	for it := range replies {
		if it.pend != nil {
			ack, err := it.pend.Wait()
			if !dead {
				if werr := c.writeAck(it.id, ack, err, &payload, &shardBuf); werr != nil {
					dead = true
				}
			}
			ack.Release()
			it.pend.Release()
			if it.buf != nil {
				stepBufPool.Put(it.buf)
			}
		} else if !dead {
			// After a write failure keep draining so enqueued steps are
			// still waited (their outcomes are buffered; nothing leaks),
			// but stop touching the dead connection.
			if c.writeControl(it.frame, &payload) != nil {
				dead = true
			}
		}
		if !dead && len(replies) == 0 {
			if c.bw.Flush() != nil {
				dead = true
			}
		}
	}
	if !dead {
		_ = c.bw.Flush()
	}
}

// writeAck emits one step outcome (ack or typed error) in the negotiated
// encoding. On the binary path the ack is encoded straight from the
// protocol layer's typed outcome into the reusable payload buffer — no
// intermediate wire structs, no JSON.
func (c *srvStream) writeAck(id int64, ack protocol.Ack, err error, payload *[]byte, shardBuf *[]wire.ShardStep) error {
	if err != nil {
		return c.writeControl(streamError(id, err), payload)
	}
	if !c.binary {
		return c.writeJSONFrame(wire.AckFrame{V: wire.V1, Type: wire.FrameAck, ID: id, StepResponse: ackResponse(ack)})
	}
	shards := (*shardBuf)[:0]
	for i, st := range ack.Shards {
		shards = append(shards, wire.ShardStep{Shard: i, Routed: st.Routed, Cost: wire.FromCost(st.Cost)})
	}
	*shardBuf = shards
	p := wire.AppendAckFrom((*payload)[:0], wire.V1, id, ack.T, ack.Accepted, ack.Batched,
		wire.FromCost(ack.Cost), ack.Clamped, ack.Positions, shards)
	*payload = p
	return wire.WriteBinaryFrame(c.bw, wire.BinAck, p)
}

// writeControl emits a non-ack reply frame (throttle, pong, error) in the
// negotiated encoding.
func (c *srvStream) writeControl(frame any, payload *[]byte) error {
	if !c.binary {
		return c.writeJSONFrame(frame)
	}
	p := (*payload)[:0]
	var tag byte
	switch f := frame.(type) {
	case wire.ThrottleFrame:
		tag = wire.BinThrottle
		p = wire.AppendThrottle(p, &f)
	case wire.PongFrame:
		tag = wire.BinPong
		p = wire.AppendControl(p, f.V)
	case wire.ErrorFrame:
		tag = wire.BinError
		p = wire.AppendErrorFrame(p, &f)
	default:
		return errors.New("server: unencodable stream frame")
	}
	*payload = p
	return wire.WriteBinaryFrame(c.bw, tag, p)
}

// nextLine returns the next non-empty NDJSON line, reusing the
// connection's line buffer; false when the stream ended (EOF, connection
// error, or an over-long line).
func (c *srvStream) nextLine() ([]byte, bool) {
	for {
		line, err := readLine(c.br, &c.lineBuf, maxBodyBytes)
		if err != nil {
			return nil, false
		}
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			return line, true
		}
	}
}

// readLine reads one newline-terminated line from br, reusing *buf across
// calls and refusing lines longer than max. The returned slice aliases
// *buf (or the reader's internal buffer) and is valid until the next call.
func readLine(br *bufio.Reader, buf *[]byte, max int) ([]byte, error) {
	chunk, err := br.ReadSlice('\n')
	if err == nil {
		if len(chunk) > max {
			return nil, errors.New("server: stream line exceeds limit")
		}
		return chunk, nil // common case: whole line inside the reader buffer
	}
	if err == io.EOF && len(chunk) > 0 {
		return chunk, nil // final unterminated line
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	line := append((*buf)[:0], chunk...)
	for err == bufio.ErrBufferFull {
		chunk, err = br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			*buf = line[:0]
			return nil, errors.New("server: stream line exceeds limit")
		}
	}
	*buf = line
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(line) == 0 {
		return nil, io.EOF
	}
	return line, nil
}

// streamError maps a protocol-layer error for one step frame to its typed
// wire form.
func streamError(id int64, err error) wire.ErrorFrame {
	e := wire.Error{Code: wire.CodeInternal, Detail: err.Error()}
	var de *protocol.DurabilityError
	var ue *protocol.UnreachableError
	switch {
	case errors.As(err, &de):
		t := de.ExecutedT
		e = wire.Error{Code: wire.CodeNotDurable, Detail: err.Error(), ExecutedT: &t}
	case errors.As(err, &ue):
		e = wire.Error{Code: wire.CodeUnreachable, Detail: err.Error()}
	case errors.Is(err, protocol.ErrShuttingDown):
		e = wire.Error{Code: wire.CodeShuttingDown, Detail: err.Error()}
	}
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, ID: &id, Err: e}
}

// idError is a per-frame rejection: the identified frame failed, the
// stream continues.
func idError(id int64, code, detail string) wire.ErrorFrame {
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, ID: &id, Err: wire.Error{Code: code, Detail: detail}}
}

// fatalError is a connection-level error frame: no id, and the server
// closes the stream after writing it.
func fatalError(code, detail string) wire.ErrorFrame {
	return wire.ErrorFrame{V: wire.V1, Type: wire.FrameError, Err: wire.Error{Code: code, Detail: detail}}
}
