package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/wire"
)

func testConfig(k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst, K: k}
}

// reqsFor is the deterministic workload shared by the tests: nReq requests
// per step, circling the origin.
func reqsFor(t, nReq int) []wire.Point {
	out := make([]wire.Point, nReq)
	for i := range out {
		angle := 2*math.Pi*float64(t)/41 + float64(i)
		out[i] = wire.Point{8 * math.Cos(angle), 8 * math.Sin(angle)}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/step", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestServeE2E drives ≥10k requests from concurrent clients through the
// coalescing front-end and reconciles the client-side sums against
// GET /metrics: every accepted request is counted exactly once, and the
// cost totals agree with the per-step costs the clients saw.
func TestServeE2E(t *testing.T) {
	cfg := testConfig(2)
	s, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{
		CoalesceWindow: 200 * time.Microsecond,
		QueueLimit:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		workers          = 8
		batchesPerWorker = 250
		perBatch         = 5 // 8 × 250 × 5 = 10_000 requests
	)
	type seen struct {
		accepted int
		costs    map[int]wire.Cost // step T → shared step cost
		retried  int
	}
	results := make([]seen, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w].costs = map[int]wire.Cost{}
			for b := 0; b < batchesPerWorker; b++ {
				body := wire.StepRequest{Requests: reqsFor(w*batchesPerWorker+b, perBatch)}
				for {
					resp, data := postJSON(t, ts.URL, body)
					if resp.StatusCode == http.StatusTooManyRequests {
						results[w].retried++
						time.Sleep(time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("POST /step = %d: %s", resp.StatusCode, data)
						return
					}
					var sr wire.StepResponse
					if err := json.Unmarshal(data, &sr); err != nil {
						t.Error(err)
						return
					}
					if sr.Accepted != perBatch {
						t.Errorf("Accepted = %d, want %d", sr.Accepted, perBatch)
					}
					results[w].accepted += sr.Accepted
					results[w].costs[sr.T] = sr.Cost
					break
				}
			}
		}(w)
	}
	wg.Wait()

	accepted, retried := 0, 0
	costs := map[int]wire.Cost{}
	for _, r := range results {
		accepted += r.accepted
		retried += r.retried
		for tt, c := range r.costs {
			costs[tt] = c
		}
	}
	if accepted != workers*batchesPerWorker*perBatch {
		t.Fatalf("accepted %d requests, want %d", accepted, workers*batchesPerWorker*perBatch)
	}

	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Requests != accepted {
		t.Fatalf("metrics.Requests = %d, client-side sum = %d", m.Requests, accepted)
	}
	if m.Steps != len(costs) {
		t.Fatalf("metrics.Steps = %d, clients saw %d distinct steps", m.Steps, len(costs))
	}
	if m.Rejected != int64(retried) {
		t.Fatalf("metrics.Rejected = %d, clients counted %d 429s", m.Rejected, retried)
	}

	// Per-step costs, summed once per step in step order, must equal the
	// server's running totals.
	ts2 := make([]int, 0, len(costs))
	for tt := range costs {
		ts2 = append(ts2, tt)
	}
	sort.Ints(ts2)
	var move, serve float64
	for _, tt := range ts2 {
		move += costs[tt].Move
		serve += costs[tt].Serve
	}
	if math.Abs(move-m.Cost.Move) > 1e-9*(1+math.Abs(move)) ||
		math.Abs(serve-m.Cost.Serve) > 1e-9*(1+math.Abs(serve)) {
		t.Fatalf("client cost sum (%g, %g) != metrics cost (%g, %g)", move, serve, m.Cost.Move, m.Cost.Serve)
	}

	var st wire.StateResponse
	getJSON(t, ts.URL+"/state", &st)
	if st.T != m.Steps {
		t.Fatalf("state.T = %d, metrics.Steps = %d", st.T, m.Steps)
	}
	if st.Algorithm != "MtC-k" {
		t.Fatalf("state.Algorithm = %q", st.Algorithm)
	}
	if len(st.Positions) != 2 {
		t.Fatalf("state has %d positions", len(st.Positions))
	}
	t.Logf("e2e: %d requests over %d steps (coalescing ratio %.1f), %d rejections retried",
		accepted, m.Steps, float64(workers*batchesPerWorker)/float64(m.Steps), retried)
}

// blockingObserver parks the step loop inside a step so tests can hold the
// queue full deterministically.
type blockingObserver struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingObserver) Observe(engine.StepInfo) {
	b.entered <- struct{}{}
	<-b.release
}

// TestBackpressure429 pins the backpressure contract: with the step loop
// busy and the queue full, POST /step is refused with 429, a Retry-After
// header, and a JSON error body — it does not buffer without bound.
func TestBackpressure429(t *testing.T) {
	cfg := testConfig(1)
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		QueueLimit: 1,
		Observers:  []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First batch: picked up by the loop, which blocks mid-step.
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(0, 1)})
		firstDone <- resp.StatusCode
	}()
	<-obs.entered

	// Second batch: fills the queue directly (the loop is parked).
	if _, err := s.Service().Enqueue(nil); err != nil {
		t.Fatal(err)
	}

	// Third batch over HTTP must be turned away.
	resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(1, 1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST with full queue = %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body = %s (err %v)", data, err)
	}
	if e.RetryAfterMs < 1 || e.RetryAfterSec < 1 {
		t.Fatalf("429 backoff hints = %dms/%ds, want both >= 1", e.RetryAfterMs, e.RetryAfterSec)
	}

	// Unblock both queued steps and confirm the first call completed.
	obs.release <- struct{}{}
	<-obs.entered
	obs.release <- struct{}{}
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first POST = %d", code)
	}
	if got := s.Service().Metrics().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

// driveSequential posts one batch per engine step (no concurrency, zero
// coalescing window) and fails the test on any non-200.
func driveSequential(t *testing.T, url string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		resp, data := postJSON(t, url, wire.StepRequest{Requests: reqsFor(i, 2)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST step %d = %d: %s", i, resp.StatusCode, data)
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestKillAndRestore is the server-level crash drill: a server checkpoints
// after every step, is killed without any shutdown courtesy, and a fresh
// server resumed from the checkpoint file finishes the stream with session
// state byte-identical to a server that was never interrupted.
func TestKillAndRestore(t *testing.T) {
	const kill, total = 30, 60
	cfg := testConfig(2)
	ckpt := filepath.Join(t.TempDir(), "mobserve.ckpt")
	opts := Options{CheckpointPath: ckpt, CheckpointEvery: 1}

	// Phase 1: serve half the stream, then kill (no Close, no final
	// checkpoint — the per-step checkpoint is all that survives).
	a, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), opts)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	driveSequential(t, tsA.URL, 0, kill)
	tsA.Close() // the process dies here; a's session is never touched again

	snap, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Phase 2: resume from the checkpoint file and finish the stream.
	b, err := Resume(cfg, multi.NewMtCK(), snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if got := b.T(); got != kill {
		t.Fatalf("resumed at T=%d, want %d", got, kill)
	}
	driveSequential(t, tsB.URL, kill, total)

	// Control: the same stream served by one uninterrupted server.
	c, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	driveSequential(t, tsC.URL, 0, total)

	// The full serialized session state must match byte for byte.
	snapB := getBody(t, tsB.URL+"/snapshot")
	snapC := getBody(t, tsC.URL+"/snapshot")
	if !bytes.Equal(snapB, snapC) {
		t.Fatalf("resumed snapshot differs from uninterrupted run:\n%s\nvs\n%s", snapB, snapC)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	resB, resC := b.Finish(), c.Finish()
	if !reflect.DeepEqual(resB, resC) {
		t.Fatalf("results diverged:\nresumed       %+v\nuninterrupted %+v", resB, resC)
	}
	t.Logf("kill-and-restore: killed at step %d/%d, resumed result identical: %s", kill, total, resB.Cost)
}

// TestCheckpointEvery confirms checkpoints land only on the configured
// cadence but the shutdown checkpoint always captures the final step.
func TestCheckpointEvery(t *testing.T) {
	cfg := testConfig(1)
	ckpt := filepath.Join(t.TempDir(), "every.ckpt")
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath:  ckpt,
		CheckpointEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	driveSequential(t, ts.URL, 0, 13)
	if r := restoreCheckpointFile(t, cfg, ckpt); r.T() != 10 {
		t.Fatalf("periodic checkpoint at T=%d, want 10", r.T())
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r := restoreCheckpointFile(t, cfg, ckpt); r.T() != 13 {
		t.Fatalf("shutdown checkpoint at T=%d, want 13", r.T())
	}
}

// restoreCheckpointFile unwraps a server checkpoint file and restores the
// embedded session snapshot into a fresh engine session.
func restoreCheckpointFile(t *testing.T, cfg core.Config, path string) *engine.Session {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wire.ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.Restore(cfg, core.Fleet(core.NewMtC()), ck.Session, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBadBatchRejectedEarly: a malformed batch is refused with 400 before
// it reaches the queue, so it cannot poison batches it would be coalesced
// with, and the session keeps serving.
func TestBadBatchRejectedEarly(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL, wire.StepRequest{Requests: []wire.Point{{1, 2, 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim-3 batch = %d, want 400", resp.StatusCode)
	}
	// NaN has no JSON literal; a client smuggling one in produces a decode
	// error, which must surface as 400.
	raw := bytes.NewReader([]byte(`{"requests":[[NaN,0]]}`))
	nresp, err := http.Post(ts.URL+"/step", "application/json", raw)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN batch = %d, want 400", nresp.StatusCode)
	}

	resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(0, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid batch after bad ones = %d: %s", resp.StatusCode, data)
	}
	var sr wire.StepResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.T != 0 {
		t.Fatalf("T = %d, want 0 (bad batches must not consume steps)", sr.T)
	}
}

// TestCheckpointFailureIs507: when the step executes but its checkpoint
// cannot be written, the caller gets 507 with the executed step index —
// distinguishable from a failed step, because resending the batch would
// double-feed the session.
func TestCheckpointFailureIs507(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "x.ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(0, 1)})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("POST with unwritable checkpoint = %d: %s", resp.StatusCode, data)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.ExecutedT == nil || *e.ExecutedT != 0 {
		t.Fatalf("executed_t = %v, want 0", e.ExecutedT)
	}
	// The step really did run: it is visible in /metrics.
	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Steps != 1 || m.Requests != 1 {
		t.Fatalf("metrics after 507 = %+v, want the step counted", m)
	}
}

// TestShutdownRefusesTraffic: after Close begins, POST /step answers 503.
func TestShutdownRefusesTraffic(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	driveSequential(t, ts.URL, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(3, 1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after Close = %d, want 503", resp.StatusCode)
	}
}

// TestSnapshotEndpointRoundTrips: GET /snapshot bytes restore into a
// session at the same step — the ops path for manual checkpoints.
func TestSnapshotEndpointRoundTrips(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	driveSequential(t, ts.URL, 0, 5)

	snap := getBody(t, ts.URL+"/snapshot")
	r, err := engine.Restore(cfg, core.Fleet(core.NewMtC()), snap, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != 5 {
		t.Fatalf("restored T = %d, want 5", r.T())
	}
}

func ExampleServer() {
	cfg := core.Config{Dim: 1, D: 2, M: 1, K: 1}
	s, _ := New(cfg, []geom.Point{geom.NewPoint(0)}, core.Fleet(core.NewMtC()), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(wire.StepRequest{Requests: []wire.Point{{3}}})
	resp, _ := http.Post(ts.URL+"/step", "application/json", bytes.NewReader(body))
	var sr wire.StepResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	fmt.Printf("step %d served %d request(s), server at %v\n", sr.T, sr.Batched, sr.Positions[0])
	// Output: step 0 served 1 request(s), server at [1]
}
