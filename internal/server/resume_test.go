package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/wire"
)

// TestMetricsSurviveRestart pins the resume-aware-observer contract: the
// checkpoint document persists the Metrics and MoveStats observer state,
// so a killed-and-resumed server reports /metrics and /state equal — byte
// for byte — to a server that was never interrupted, instead of counting
// from zero.
func TestMetricsSurviveRestart(t *testing.T) {
	const kill, total = 20, 45
	cfg := testConfig(2)
	ckpt := filepath.Join(t.TempDir(), "metrics.ckpt")
	opts := Options{CheckpointPath: ckpt, CheckpointEvery: 1}

	a, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), opts)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	driveSequential(t, tsA.URL, 0, kill)
	tsA.Close() // killed: no Close, no shutdown checkpoint

	snap, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resume(cfg, multi.NewMtCK(), snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer b.Close()

	// Before any resumed traffic the totals already cover the pre-crash
	// steps.
	var m wire.MetricsResponse
	getJSON(t, tsB.URL+"/metrics", &m)
	if m.Steps != kill || m.Requests != kill*2 {
		t.Fatalf("resumed metrics start at %d steps / %d requests, want %d / %d", m.Steps, m.Requests, kill, kill*2)
	}
	driveSequential(t, tsB.URL, kill, total)

	c, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	defer c.Close()
	driveSequential(t, tsC.URL, 0, total)

	if mB, mC := getBody(t, tsB.URL+"/metrics"), getBody(t, tsC.URL+"/metrics"); !bytes.Equal(mB, mC) {
		t.Fatalf("killed-and-resumed /metrics != uninterrupted /metrics:\n%s\nvs\n%s", mB, mC)
	}
	if stB, stC := getBody(t, tsB.URL+"/state"), getBody(t, tsC.URL+"/state"); !bytes.Equal(stB, stC) {
		t.Fatalf("killed-and-resumed /state != uninterrupted /state:\n%s\nvs\n%s", stB, stC)
	}
}

// TestResumeLegacyBareSnapshot: a bare engine snapshot (the pre-wrapper
// checkpoint format, and what GET /snapshot returns) still resumes; the
// observers just start fresh.
func TestResumeLegacyBareSnapshot(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	driveSequential(t, ts.URL, 0, 5)
	bare := getBody(t, ts.URL+"/snapshot")
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(cfg, core.Fleet(core.NewMtC()), bare, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.T() != 5 {
		t.Fatalf("resumed at T=%d, want 5", r.T())
	}
	tsR := httptest.NewServer(r.Handler())
	defer tsR.Close()
	var m wire.MetricsResponse
	getJSON(t, tsR.URL+"/metrics", &m)
	if m.Steps != 0 {
		t.Fatalf("bare-snapshot resume must start observers fresh, got %d steps", m.Steps)
	}
}

// TestResumeLegacyCheckpointDocument pins the checkpoint compatibility
// guarantee across the envelope change: a checkpoint document written by
// the pre-envelope format (a "version" stamp, no "v") still resumes with
// its observer state intact, and the file the resumed server then writes
// carries both stamps.
func TestResumeLegacyCheckpointDocument(t *testing.T) {
	cfg := testConfig(2)
	ckpt := filepath.Join(t.TempDir(), "legacy.ckpt")
	a, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	driveSequential(t, tsA.URL, 0, 12)
	tsA.Close() // killed

	// Rewrite the file exactly as PR-3 would have: same document, no "v".
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["v"]; !ok {
		t.Fatal("new checkpoints must carry the v stamp")
	}
	delete(doc, "v")
	legacy, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	b, err := Resume(cfg, multi.NewMtCK(), legacy, Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	defer b.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	var m wire.MetricsResponse
	getJSON(t, tsB.URL+"/metrics", &m)
	if m.Steps != 12 || m.Requests != 24 {
		t.Fatalf("legacy resume lost observer state: %+v", m)
	}
	driveSequential(t, tsB.URL, 12, 13)
	data, err = os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wire.ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.V != wire.V1 || ck.Version != wire.CheckpointVersion {
		t.Fatalf("rewritten checkpoint stamps = v%d/version%d", ck.V, ck.Version)
	}
}

// Test507NoDoubleFeed pins the executed-but-uncheckpointed contract from
// the client's side: a 507 means the step RAN — the session advanced and
// the batch is in /metrics — so a client that resends the batch feeds it
// again as a new step. The test drives three batches into a server whose
// checkpoints always fail and watches the executed step index advance.
func Test507NoDoubleFeed(t *testing.T) {
	cfg := testConfig(1)
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "x.ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for want := 0; want < 3; want++ {
		resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(want, 1)})
		if resp.StatusCode != 507 {
			t.Fatalf("POST %d = %d: %s", want, resp.StatusCode, data)
		}
		var e wire.ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if e.ExecutedT == nil || *e.ExecutedT != want {
			t.Fatalf("executed_t = %v, want %d: a 507'd batch was served, resending double-feeds", e.ExecutedT, want)
		}
	}
	var m wire.MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Steps != 3 || m.Requests != 3 {
		t.Fatalf("metrics after three 507s = %d steps / %d requests, want 3 / 3 (each batch fed exactly once)", m.Steps, m.Requests)
	}
}

// TestRetryAfterMsUnderWindow: with an active coalescing window, a 429
// carries the window as a millisecond-resolution hint in the JSON body
// while the Retry-After header holds its whole-second ceiling.
func TestRetryAfterMsUnderWindow(t *testing.T) {
	const window = 25 * time.Millisecond
	cfg := testConfig(1)
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CoalesceWindow: window,
		QueueLimit:     1,
		Observers:      []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park the step loop inside a step, fill the queue, then overflow it.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(0, 1)})
	}()
	<-obs.entered
	if _, err := s.Service().Enqueue(nil); err != nil {
		t.Fatal(err)
	}

	resp, data := postJSON(t, ts.URL, wire.StepRequest{Requests: reqsFor(1, 1)})
	if resp.StatusCode != 429 {
		t.Fatalf("POST with full queue = %d: %s", resp.StatusCode, data)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.RetryAfterMs != 25 {
		t.Fatalf("retry_after_ms = %d, want the 25ms coalescing window", e.RetryAfterMs)
	}
	if e.RetryAfterSec != 1 || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("whole-second ceiling = %d / header %q, want 1", e.RetryAfterSec, resp.Header.Get("Retry-After"))
	}

	obs.release <- struct{}{}
	<-obs.entered
	obs.release <- struct{}{}
	<-firstDone
}
