// Package server exposes the transport-neutral serving core of
// internal/protocol to the network. It is deliberately thin: every serving
// semantic — batch coalescing, the bounded queue, checkpointing, observer
// reads, the metrics subscription — lives in protocol.Service; this
// package only translates between the Service's typed surface and the wire
// formats of package wire, over two transports:
//
//   - the JSON-over-HTTP API (byte-compatible with its pre-protocol-layer
//     form): POST /step feeds a request batch and blocks for its step's
//     outcome, a full queue answers 429 + Retry-After, GET /metrics,
//     GET /state, and GET /snapshot serve the live snapshots;
//   - the persistent streaming API: POST /stream upgrades the connection
//     to pipelined NDJSON frames (see stream.go) so one client can submit
//     step batches without per-request HTTP overhead, and
//     GET /metrics/stream pushes one server-sent event per executed step.
//
// Create a Server with New or Resume (NewSharded/ResumeSharded for router
// mode), mount Handler on an http.Server, and Close it to drain the queue
// and write the final checkpoint.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Backend is the session shape the server drives; it lives in
// internal/protocol now (the serving core is transport-neutral), and the
// alias keeps this package's surface complete.
type Backend = protocol.Backend

// Options configures the serving core; see protocol.Options.
type Options = protocol.Options

// DefaultQueueLimit is the queue bound used when Options.QueueLimit is 0.
const DefaultQueueLimit = protocol.DefaultQueueLimit

// Server adapts one protocol.Service to HTTP.
type Server struct {
	cfg core.Config
	svc *protocol.Service
	// wirePolicy is the stream-encoding policy: "" or wire.WireBinary
	// grants a hello's binary request, wire.WireNDJSON pins the stream to
	// NDJSON. Plain hellos always get NDJSON either way.
	wirePolicy string
}

// SetStreamWire sets the stream-encoding policy: wire.WireBinary (or "")
// accepts binary when a hello asks for it, wire.WireNDJSON refuses and
// keeps every stream on NDJSON. Call before serving traffic.
func (s *Server) SetStreamWire(policy string) { s.wirePolicy = policy }

// streamWire reports the effective stream-encoding policy.
func (s *Server) streamWire() string {
	if s.wirePolicy == "" {
		return wire.WireBinary
	}
	return s.wirePolicy
}

// New starts a server around a fresh session.
func New(cfg core.Config, starts []geom.Point, alg core.FleetAlgorithm, opts Options) (*Server, error) {
	svc, err := protocol.New(cfg, starts, alg, opts)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, svc: svc}, nil
}

// Resume starts a server around a session restored from checkpoint bytes;
// see protocol.Resume.
func Resume(cfg core.Config, alg core.FleetAlgorithm, snapshot []byte, opts Options) (*Server, error) {
	svc, err := protocol.Resume(cfg, alg, snapshot, opts)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, svc: svc}, nil
}

// NewSharded starts a server in router mode; see protocol.NewSharded.
func NewSharded(cfg core.Config, starts [][]geom.Point, newAlg func() core.FleetAlgorithm, opts Options) (*Server, error) {
	svc, err := protocol.NewSharded(cfg, starts, newAlg, opts)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, svc: svc}, nil
}

// ResumeSharded starts a router-mode server from a sharded checkpoint; see
// protocol.ResumeSharded.
func ResumeSharded(cfg core.Config, newAlg func() core.FleetAlgorithm, snapshot []byte, opts Options) (*Server, error) {
	svc, err := protocol.ResumeSharded(cfg, newAlg, snapshot, opts)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, svc: svc}, nil
}

// NewFromService adapts an already-running service to the HTTP API — the
// hook the cluster layer uses to mount its coordinator-backed service
// (protocol.NewFromBackend) on the same endpoints the local modes serve.
func NewFromService(cfg core.Config, svc *protocol.Service) *Server {
	return &Server{cfg: cfg, svc: svc}
}

// Service returns the underlying transport-neutral serving core, for
// callers that want the typed surface (Submit/Watch/...) next to the HTTP
// one.
func (s *Server) Service() *protocol.Service { return s.svc }

// T returns the session's current step count.
func (s *Server) T() int { return s.svc.T() }

// Algorithm returns the backend's reported name (in router mode the
// per-shard algorithm tagged with the shard count, e.g. "MtC-k×4").
func (s *Server) Algorithm() string { return s.svc.Algorithm() }

// Close stops accepting traffic, drains the already-queued batches through
// the session, writes a final checkpoint (when configured), and waits for
// the step loop to exit. It returns the final checkpoint error, if any.
func (s *Server) Close() error { return s.svc.Close() }

// Finish closes the underlying session and returns its accumulated result.
// Call it after Close; a finished session cannot be snapshotted or resumed.
func (s *Server) Finish() *engine.Result { return s.svc.Finish() }

// Handler returns the full HTTP API: the per-request endpoints
// (POST /step, GET /metrics, GET /state, GET /snapshot) plus the streaming
// transports (POST /stream, GET /metrics/stream). Use HandlerWith(false)
// to serve the per-request endpoints only.
func (s *Server) Handler() http.Handler { return s.HandlerWith(true) }

// HandlerWith returns the HTTP API, with the streaming endpoints
// (POST /stream, GET /metrics/stream) mounted only when stream is true.
func (s *Server) HandlerWith(stream bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /step", s.handleStep)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /state", s.handleState)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	if stream {
		mux.HandleFunc("POST /stream", s.handleStream)
		mux.HandleFunc("GET /metrics/stream", s.handleMetricsStream)
	}
	return mux
}

// maxBodyBytes bounds a POST /step body (and one NDJSON frame); a batch
// larger than this is a client error, not a reason to exhaust server
// memory.
const maxBodyBytes = 8 << 20

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if s.svc.Closing() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	req, err := wire.DecodeStepRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad step body: "+err.Error())
		return
	}
	// Validate before enqueueing: a malformed batch must not poison the
	// valid batches it would be coalesced with.
	reqs, err := wire.ToPoints(req.Requests, s.cfg.Dim)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ack, err := s.svc.Submit(reqs)
	if err != nil {
		s.writeStepError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ackResponse(ack))
	// ackResponse shares the ack's pooled position storage; the encoder is
	// done with it once writeJSON returns.
	ack.Release()
}

// writeStepError maps the protocol layer's typed errors onto the HTTP
// status-code signaling the per-request API has always used.
func (s *Server) writeStepError(w http.ResponseWriter, err error) {
	var oe *protocol.OverloadError
	var de *protocol.DurabilityError
	var ue *protocol.UnreachableError
	switch {
	case errors.As(err, &oe):
		sec := (oe.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{
			Error:         err.Error(),
			RetryAfterSec: sec,
			RetryAfterMs:  oe.RetryAfterMS,
		})
	case errors.As(err, &de):
		// The step ran (it is in /metrics and the session advanced) but
		// its checkpoint did not land: answer 507 carrying the executed
		// step index so clients know not to resend.
		t := de.ExecutedT
		writeJSON(w, http.StatusInsufficientStorage, wire.ErrorResponse{Error: err.Error(), ExecutedT: &t})
	case errors.As(err, &ue):
		// The forwarding tier gave up on the shard's backend: the step did
		// NOT execute, so the batch is safe to resubmit once the fleet
		// recovers. 502 is the classic bad-upstream signal.
		writeError(w, http.StatusBadGateway, err.Error())
	case errors.Is(err, protocol.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// ackResponse converts a typed step outcome to its wire form.
func ackResponse(ack protocol.Ack) wire.StepResponse {
	resp := wire.StepResponse{
		T:         ack.T,
		Accepted:  ack.Accepted,
		Batched:   ack.Batched,
		Cost:      wire.FromCost(ack.Cost),
		Positions: wire.FromPoints(ack.Positions),
		Clamped:   ack.Clamped,
	}
	if ack.Shards != nil {
		resp.Shards = shardSteps(ack.Shards)
	}
	return resp
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.svc.Metrics()
	resp := wire.MetricsResponse{
		Steps:       m.Steps,
		Requests:    m.Requests,
		Cost:        wire.FromCost(m.Cost),
		AvgStepCost: m.AvgStepCost,
		Rejected:    m.Rejected,
		QueueDepth:  m.QueueDepth,
	}
	if m.Shards != nil {
		resp.Shards = make([]wire.ShardMetrics, len(m.Shards))
		for i, st := range m.Shards {
			resp.Shards[i] = wire.ShardMetrics{Shard: st.Shard, Requests: st.Requests, Cost: wire.FromCost(st.Cost)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	st := s.svc.State()
	resp := wire.StateResponse{
		Algorithm: st.Algorithm,
		T:         st.T,
		Positions: wire.FromPoints(st.Positions),
		MaxMove:   st.MaxMove,
		TotalMove: st.TotalMove,
		CapHits:   st.CapHits,
		Clamped:   st.Clamped,
		Cost:      wire.FromCost(st.Cost),
	}
	if st.Partition != nil {
		resp.Partition = append([]float64(nil), st.Partition...)
	}
	if st.Workers != nil {
		resp.Workers = append([]string(nil), st.Workers...)
	}
	if st.Shards != nil {
		resp.Shards = make([]wire.ShardState, len(st.Shards))
		for i, sh := range st.Shards {
			resp.Shards[i] = wire.ShardState{
				Shard:     sh.Shard,
				Servers:   sh.Servers,
				Requests:  sh.Requests,
				Clamped:   sh.Clamped,
				Positions: wire.FromPoints(sh.Positions),
				Cost:      wire.FromCost(sh.Cost),
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.svc.Snapshot()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

// shardSteps converts the router's per-shard step stats to their wire form.
func shardSteps(stats []shard.StepStat) []wire.ShardStep {
	out := make([]wire.ShardStep, len(stats))
	for i, st := range stats {
		out[i] = wire.ShardStep{Shard: i, Routed: st.Routed, Cost: wire.FromCost(st.Cost)}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wire.ErrorResponse{Error: msg})
}
