// Package server is the live-serving HTTP front-end of the streaming
// engine: it owns one session-shaped Backend — a single engine.Session
// (New/Resume) or a shard.Router fanning each step out to per-region
// sessions (NewSharded/ResumeSharded) — and exposes it to the network with
// the JSON wire format of package wire.
//
//   - POST /step feeds a request batch. Batches arriving within the
//     coalescing window are merged into a single engine step; every merged
//     caller gets the step's shared outcome plus its own accepted count.
//   - A bounded queue applies backpressure: when it is full, POST /step is
//     refused with 429 and a Retry-After header instead of buffering
//     without limit.
//   - GET /metrics and GET /state serve live engine.Metrics and
//     engine.MoveStats snapshots via the engine's Observer plumbing.
//   - GET /snapshot returns the session checkpoint document, and when a
//     checkpoint path is configured the server writes it atomically after
//     every CheckpointEvery-th step, before acknowledging that step's
//     callers. With CheckpointEvery == 1 (the default) a killed process
//     resumes from the file (Resume) losing at most one coalescing window
//     of unacknowledged traffic; a larger cadence trades that durability
//     for fewer writes and can lose up to CheckpointEvery-1 acknowledged
//     steps on a crash.
//
// One goroutine (the step loop) drives the session; HTTP handlers only
// enqueue batches and read state under the session mutex, so the engine
// itself stays single-threaded.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Backend is the session the front-end drives: one batch per step, with
// the engine.Session accessor surface. engine.Session implements it
// directly; shard.Router implements it by routing each step across its
// per-region sessions and aggregating the results.
type Backend interface {
	Step(requests []geom.Point) error
	T() int
	Algorithm() string
	Cost() core.Cost
	Clamped() int
	Positions() []geom.Point
	Snapshot() ([]byte, error)
	Finish() *engine.Result
}

// shardedBackend is the extra surface a router-mode backend exposes; the
// handlers use it to tag responses with per-shard payloads.
type shardedBackend interface {
	Backend
	Partition() core.Partition
	LastSteps() []shard.StepStat
	States() []shard.State
}

// Options configures the front-end. The zero value serves with strict cap
// checking, no coalescing wait, a queue of DefaultQueueLimit batches, and
// no checkpointing.
type Options struct {
	// CoalesceWindow is how long the step loop waits after the first
	// queued batch for more batches to merge into the same engine step.
	// Zero merges only batches that are already queued, without waiting.
	CoalesceWindow time.Duration
	// QueueLimit bounds the number of batches waiting for the step loop;
	// a full queue refuses POST /step with 429. Default DefaultQueueLimit.
	QueueLimit int
	// CheckpointPath, when non-empty, enables checkpointing: the session
	// snapshot is written there atomically (tmp file + rename) after every
	// CheckpointEvery-th step, before the step's callers are acknowledged.
	CheckpointPath string
	// CheckpointEvery is the number of steps between checkpoints.
	// Default 1 (checkpoint after every step).
	CheckpointEvery int
	// Mode and Tol configure the engine's cap enforcement.
	Mode engine.Mode
	Tol  float64
	// Observers are extra engine observers appended after the server's own
	// metrics and movement-stats observers. They are notified from the
	// step loop; implementations must not call back into the server.
	Observers []engine.Observer
}

// DefaultQueueLimit is the queue bound used when Options.QueueLimit is 0.
const DefaultQueueLimit = 64

func (o Options) withDefaults() Options {
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// batch is one enqueued POST /step body with its reply channel.
type batch struct {
	reqs  []geom.Point
	reply chan outcome
}

// outcome is what the step loop hands back to a waiting handler. executed
// distinguishes "the step failed" (err, resp empty) from "the step ran but
// its checkpoint did not land" (err and resp both set): in the latter case
// the session has advanced and the caller must not resend the batch.
type outcome struct {
	resp     wire.StepResponse
	err      error
	executed bool
}

// Server owns an engine session and serves it over HTTP. Create one with
// New or Resume, mount Handler on an http.Server, and Close it to drain
// the queue and write the final checkpoint.
type Server struct {
	cfg  core.Config
	opts Options

	// mu guards the session and the observers attached to it. Step runs
	// only in the step loop; handlers take mu for consistent reads.
	mu       sync.Mutex
	sess     Backend
	metrics  *engine.Metrics
	moves    *engine.MoveStats
	lastCost core.Cost

	queue    chan batch
	rejected atomic.Int64
	closing  atomic.Bool
	closed   chan struct{}
	loopDone chan struct{}
	closeErr error
	once     sync.Once
}

// New starts a server around a fresh session.
func New(cfg core.Config, starts []geom.Point, alg core.FleetAlgorithm, opts Options) (*Server, error) {
	return start(cfg, opts, nil, func(eopts engine.Options) (Backend, error) {
		return engine.NewSession(cfg, starts, alg, eopts)
	})
}

// Resume starts a server around a session restored from checkpoint bytes:
// the step counter, costs, positions, and algorithm state continue exactly
// where the snapshot was taken. The bytes may be a checkpoint document
// written by this server (whose observer state reseeds /metrics and
// /state, so dashboards survive the restart) or a bare engine snapshot
// (observers start fresh and cover only the resumed part).
func Resume(cfg core.Config, alg core.FleetAlgorithm, snapshot []byte, opts Options) (*Server, error) {
	ck, err := wire.ParseCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	return start(cfg, opts, &ck, func(eopts engine.Options) (Backend, error) {
		return engine.Restore(cfg, alg, ck.Session, eopts)
	})
}

// NewSharded starts a server in router mode: one fleet of cfg.Servers()
// servers per shard of cfg.Partition, each request routed to its region's
// session and all shards stepped concurrently (see shard.New). starts
// holds one fleet layout per shard and newAlg constructs one independent
// controller per shard.
func NewSharded(cfg core.Config, starts [][]geom.Point, newAlg func() core.FleetAlgorithm, opts Options) (*Server, error) {
	return start(cfg, opts, nil, func(eopts engine.Options) (Backend, error) {
		return shard.New(cfg, starts, newAlg, eopts)
	})
}

// ResumeSharded starts a router-mode server from a checkpoint written by a
// sharded server: every shard session resumes exactly where the combined
// snapshot was taken (shard.Restore rejects a mismatched shard layout),
// and persisted observer state reseeds /metrics and /state. From a bare
// combined snapshot (GET /snapshot), step/request/cost totals are instead
// reconstructed from the router's own counters; the decayed average and
// movement stats restart.
func ResumeSharded(cfg core.Config, newAlg func() core.FleetAlgorithm, snapshot []byte, opts Options) (*Server, error) {
	ck, err := wire.ParseCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	return start(cfg, opts, &ck, func(eopts engine.Options) (Backend, error) {
		return shard.Restore(cfg, newAlg, ck.Session, eopts)
	})
}

func start(cfg core.Config, opts Options, ck *wire.Checkpoint, open func(engine.Options) (Backend, error)) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		cfg:      cfg,
		opts:     opts,
		metrics:  &engine.Metrics{},
		moves:    &engine.MoveStats{},
		queue:    make(chan batch, opts.QueueLimit),
		closed:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	obs := []engine.Observer{
		engine.Func(func(info engine.StepInfo) { s.lastCost = info.Cost }),
		s.metrics,
		s.moves,
	}
	obs = append(obs, opts.Observers...)
	sess, err := open(engine.Options{Mode: opts.Mode, Tol: opts.Tol, Observers: obs})
	if err != nil {
		return nil, err
	}
	s.sess = sess
	if ck != nil {
		s.seedObservers(*ck)
		if ck.Metrics == nil {
			s.reconcileShardedMetrics()
		}
	}
	go s.loop()
	return s, nil
}

// reconcileShardedMetrics covers a resume from a bare router snapshot (no
// persisted observer state): the router restores its per-shard request
// counters, so the fleet-level Metrics observer must agree with their sum
// or /metrics would report shards that do not add up to the totals. Steps,
// requests, and cost are reconstructed from the backend; the decayed
// average (and the movement stats, which no snapshot carries) restart.
func (s *Server) reconcileShardedMetrics() {
	sb, ok := s.sess.(shardedBackend)
	if !ok {
		return
	}
	s.metrics.Steps = s.sess.T()
	s.metrics.Cost = s.sess.Cost()
	s.metrics.Requests = 0
	for _, st := range sb.States() {
		s.metrics.Requests += st.Requests
	}
}

// seedObservers reinstates the observer state persisted in a checkpoint
// document, so a resumed server's /metrics and /state continue the
// pre-crash totals instead of starting from zero. Runs before the step
// loop starts, so no lock is needed.
func (s *Server) seedObservers(ck wire.Checkpoint) {
	if m := ck.Metrics; m != nil {
		s.metrics.Steps = m.Steps
		s.metrics.Requests = m.Requests
		s.metrics.Cost = core.Cost{Move: m.MoveCost, Serve: m.ServeCost}
		s.metrics.AvgStepCost = m.AvgStepCost
	}
	if mv := ck.Moves; mv != nil {
		s.moves.Steps = mv.Steps
		s.moves.MaxMove = mv.MaxMove
		s.moves.TotalMove = mv.TotalMove
		s.moves.CapHits = mv.CapHits
	}
}

// T returns the session's current step count.
func (s *Server) T() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.T()
}

// Algorithm returns the backend's reported name (in router mode the
// per-shard algorithm tagged with the shard count, e.g. "MtC-k×4").
func (s *Server) Algorithm() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Algorithm()
}

// Close stops accepting traffic, drains the already-queued batches through
// the session, writes a final checkpoint (when configured), and waits for
// the step loop to exit. It returns the final checkpoint error, if any.
func (s *Server) Close() error {
	s.once.Do(func() {
		s.closing.Store(true)
		close(s.closed)
		<-s.loopDone
	})
	return s.closeErr
}

// Finish closes the underlying session and returns its accumulated result.
// Call it after Close; a finished session cannot be snapshotted or resumed.
func (s *Server) Finish() *engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Finish()
}

// loop is the single goroutine that steps the session: it pulls the first
// queued batch, coalesces what arrives within the window, executes one
// engine step, checkpoints, and acknowledges the merged callers.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.closed:
			s.drain()
			return
		case first := <-s.queue:
			s.execute(s.coalesce(first))
		}
	}
}

// coalesce gathers the batches that share first's engine step.
func (s *Server) coalesce(first batch) []batch {
	items := []batch{first}
	if w := s.opts.CoalesceWindow; w > 0 {
		timer := time.NewTimer(w)
		defer timer.Stop()
		for {
			select {
			case b := <-s.queue:
				items = append(items, b)
			case <-timer.C:
				return items
			case <-s.closed:
				return items
			}
		}
	}
	for {
		select {
		case b := <-s.queue:
			items = append(items, b)
		default:
			return items
		}
	}
}

// drain executes every batch still queued at shutdown (one step each, no
// coalescing wait) and writes the final checkpoint.
func (s *Server) drain() {
	for {
		select {
		case b := <-s.queue:
			s.execute([]batch{b})
		default:
			s.closeErr = s.checkpointNow()
			return
		}
	}
}

// execute merges the items into one request batch, runs one engine step,
// checkpoints if due, and replies to every merged caller. A due checkpoint
// is written before the acknowledgements, so with CheckpointEvery == 1 an
// acknowledged step is never lost to a crash (larger cadences acknowledge
// the steps between checkpoints before they are durable).
func (s *Server) execute(items []batch) {
	total := 0
	for _, b := range items {
		total += len(b.reqs)
	}
	merged := make([]geom.Point, 0, total)
	for _, b := range items {
		merged = append(merged, b.reqs...)
	}

	s.mu.Lock()
	err := s.sess.Step(merged)
	var resp wire.StepResponse
	var snap []byte
	var snapErr error
	if err == nil {
		resp = wire.StepResponse{
			T:         s.sess.T() - 1,
			Batched:   total,
			Cost:      wire.FromCost(s.lastCost),
			Positions: wire.FromPoints(s.sess.Positions()),
		}
		if sb, ok := s.sess.(shardedBackend); ok {
			resp.Shards = shardSteps(sb.LastSteps())
		}
		if s.opts.CheckpointPath != "" && s.sess.T()%s.opts.CheckpointEvery == 0 {
			snap, snapErr = s.checkpointDoc()
		}
	}
	s.mu.Unlock()

	if snap != nil {
		snapErr = writeAtomic(s.opts.CheckpointPath, snap)
	}
	executed := err == nil
	if executed && snapErr != nil {
		// The step ran but is not durable; surface that to the callers
		// (as 507 with the executed step index) rather than acknowledging
		// a step a crash could silently lose.
		err = fmt.Errorf("server: step %d executed but checkpoint failed: %w", resp.T, snapErr)
	}
	for _, b := range items {
		r := resp
		r.Accepted = len(b.reqs)
		b.reply <- outcome{resp: r, err: err, executed: executed}
	}
}

// checkpointNow snapshots and writes the checkpoint file unconditionally
// (used at shutdown). A server without a checkpoint path does nothing.
func (s *Server) checkpointNow() error {
	if s.opts.CheckpointPath == "" {
		return nil
	}
	s.mu.Lock()
	snap, err := s.checkpointDoc()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return writeAtomic(s.opts.CheckpointPath, snap)
}

// checkpointDoc marshals the checkpoint document: the backend snapshot
// plus the current observer state, captured together so the file is one
// consistent cut of the run. The caller must hold mu.
func (s *Server) checkpointDoc() ([]byte, error) {
	sess, err := s.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(wire.Checkpoint{
		Version: wire.CheckpointVersion,
		Session: sess,
		Metrics: &wire.MetricsState{
			Steps:       s.metrics.Steps,
			Requests:    s.metrics.Requests,
			MoveCost:    s.metrics.Cost.Move,
			ServeCost:   s.metrics.Cost.Serve,
			AvgStepCost: s.metrics.AvgStepCost,
		},
		Moves: &wire.MoveState{
			Steps:     s.moves.Steps,
			MaxMove:   s.moves.MaxMove,
			TotalMove: s.moves.TotalMove,
			CapHits:   s.moves.CapHits,
		},
	})
}

// shardSteps converts the router's per-shard step stats to their wire form.
func shardSteps(stats []shard.StepStat) []wire.ShardStep {
	out := make([]wire.ShardStep, len(stats))
	for i, st := range stats {
		out[i] = wire.ShardStep{Shard: i, Routed: st.Routed, Cost: wire.FromCost(st.Cost)}
	}
	return out
}

// writeAtomic writes data to path via a temp file in the same directory,
// fsync, and an atomic rename, so neither a process kill mid-write nor a
// system crash shortly after leaves a torn or empty checkpoint.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some platforms/filesystems refuse it, and the rename is already
	// atomic for process-level crashes.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// retryAfter returns the backoff hints sent with 429: the precise hint is
// one coalescing window in milliseconds (at least 1ms), and the Retry-After
// header is that value rounded up to the header's whole-second resolution.
func (s *Server) retryAfter() (sec, ms int) {
	ms = int(s.opts.CoalesceWindow.Milliseconds())
	if ms < 1 {
		ms = 1
	}
	sec = (ms + 999) / 1000
	return sec, ms
}

// Handler returns the HTTP API: POST /step, GET /metrics, GET /state,
// GET /snapshot.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /step", s.handleStep)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /state", s.handleState)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return mux
}

// maxBodyBytes bounds a POST /step body; a batch larger than this is a
// client error, not a reason to exhaust server memory.
const maxBodyBytes = 8 << 20

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req wire.StepRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad step body: "+err.Error())
		return
	}
	// Validate before enqueueing: a malformed batch must not poison the
	// valid batches it would be coalesced with.
	reqs, err := wire.ToPoints(req.Requests, s.cfg.Dim)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	b := batch{reqs: reqs, reply: make(chan outcome, 1)}
	select {
	case s.queue <- b:
	default:
		s.rejected.Add(1)
		sec, ms := s.retryAfter()
		w.Header().Set("Retry-After", fmt.Sprint(sec))
		writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{
			Error:         "step queue is full",
			RetryAfterSec: sec,
			RetryAfterMs:  ms,
		})
		return
	}
	select {
	case out := <-b.reply:
		s.writeStepOutcome(w, out)
	case <-s.loopDone:
		// The loop exited; the drain may still have served us.
		select {
		case out := <-b.reply:
			s.writeStepOutcome(w, out)
		default:
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		}
	}
}

func (s *Server) writeStepOutcome(w http.ResponseWriter, out outcome) {
	if out.err != nil {
		if out.executed {
			// The step ran (it is in /metrics and the session advanced)
			// but its checkpoint did not land: answer 507 carrying the
			// executed step index so clients know not to resend.
			t := out.resp.T
			writeJSON(w, http.StatusInsufficientStorage, wire.ErrorResponse{Error: out.err.Error(), ExecutedT: &t})
			return
		}
		writeError(w, http.StatusInternalServerError, out.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := wire.MetricsResponse{
		Steps:       s.metrics.Steps,
		Requests:    s.metrics.Requests,
		Cost:        wire.FromCost(s.metrics.Cost),
		AvgStepCost: s.metrics.AvgStepCost,
	}
	if sb, ok := s.sess.(shardedBackend); ok {
		states := sb.States()
		resp.Shards = make([]wire.ShardMetrics, len(states))
		for i, st := range states {
			resp.Shards[i] = wire.ShardMetrics{Shard: st.Shard, Requests: st.Requests, Cost: wire.FromCost(st.Cost)}
		}
	}
	s.mu.Unlock()
	resp.Rejected = s.rejected.Load()
	resp.QueueDepth = len(s.queue)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := wire.StateResponse{
		Algorithm: s.sess.Algorithm(),
		T:         s.sess.T(),
		Positions: wire.FromPoints(s.sess.Positions()),
		MaxMove:   s.moves.MaxMove,
		TotalMove: s.moves.TotalMove,
		CapHits:   s.moves.CapHits,
		Clamped:   s.sess.Clamped(),
		Cost:      wire.FromCost(s.sess.Cost()),
	}
	if sb, ok := s.sess.(shardedBackend); ok {
		resp.Partition = append([]float64(nil), sb.Partition()...)
		states := sb.States()
		resp.Shards = make([]wire.ShardState, len(states))
		for i, st := range states {
			resp.Shards[i] = wire.ShardState{
				Shard:     st.Shard,
				Requests:  st.Requests,
				Clamped:   st.Clamped,
				Positions: wire.FromPoints(st.Positions),
				Cost:      wire.FromCost(st.Cost),
			}
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap, err := s.sess.Snapshot()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wire.ErrorResponse{Error: msg})
}
