package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// BenchmarkStreamVsHTTP compares ingestion throughput of the two
// transports feeding the same serving core: one op is one batch of
// benchBatch requests, submitted either as a full POST /step round-trip
// (request, engine step, response — the client waits out every round
// trip) or as one pipelined NDJSON frame on a persistent /stream
// connection (up to benchInflight frames in flight; the server coalesces
// them into engine steps and acks in order). scripts/bench.sh runs this
// and emits the stream_vs_http entry of the BENCH_*.json trajectory.
func BenchmarkStreamVsHTTP(b *testing.B) {
	const (
		benchBatch    = 8
		benchInflight = 64
	)
	newServer := func(b *testing.B) (*Server, *httptest.Server) {
		b.Helper()
		cfg := testConfig(1)
		s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
			QueueLimit: 4 * benchInflight,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		return s, ts
	}

	b.Run("http", func(b *testing.B) {
		_, ts := newServer(b)
		client := ts.Client()
		body, err := json.Marshal(wire.StepRequest{Requests: reqsFor(0, benchBatch)})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/step", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST /step = %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})

	b.Run("stream", func(b *testing.B) {
		_, ts := newServer(b)
		c := dialStream(b, ts)
		c.hello(0)
		frame, err := json.Marshal(wire.StepFrame{V: wire.V1, Type: wire.FrameStep, ID: 1, Requests: reqsFor(0, benchBatch)})
		if err != nil {
			b.Fatal(err)
		}
		frame = append(frame, '\n')

		// The pipelining window: the writer runs ahead of the acks, but
		// stays under the server's queue bound so nothing is throttled.
		sem := make(chan struct{}, benchInflight)
		writeErr := make(chan error, 1)
		b.ResetTimer()
		go func() {
			bw := bufio.NewWriter(c.conn)
			for i := 0; i < b.N; i++ {
				sem <- struct{}{}
				if _, err := bw.Write(frame); err != nil {
					writeErr <- err
					return
				}
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}()
		for acked := 0; acked < b.N; acked++ {
			select {
			case err := <-writeErr:
				b.Fatal(err)
			default:
			}
			line, err := c.br.ReadBytes('\n')
			if err != nil {
				b.Fatal(err)
			}
			head, err := wire.PeekFrame(line)
			if err != nil {
				b.Fatal(err)
			}
			if head.Type != wire.FrameAck {
				b.Fatalf("got %s frame mid-pipeline: %s", head.Type, line)
			}
			<-sem
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})
}

// reportReqRate turns the measured wall-clock into a requests-per-second
// metric so the transports' sustained ingestion rates sit next to their
// ns/op in the bench output.
func reportReqRate(b *testing.B, batch int) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "req/s")
	}
}
