package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wire"
)

// BenchmarkStreamVsHTTP compares ingestion throughput of the two
// transports feeding the same serving core: one op is one batch of
// benchBatch requests, submitted either as a full POST /step round-trip
// (request, engine step, response — the client waits out every round
// trip) or as one pipelined NDJSON frame on a persistent /stream
// connection (up to benchInflight frames in flight; the server coalesces
// them into engine steps and acks in order). scripts/bench.sh runs this
// and emits the stream_vs_http entry of the BENCH_*.json trajectory.
func BenchmarkStreamVsHTTP(b *testing.B) {
	const (
		benchBatch    = 8
		benchInflight = 64
	)
	newServer := func(b *testing.B) (*Server, *httptest.Server) {
		b.Helper()
		cfg := testConfig(1)
		s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
			QueueLimit: 4 * benchInflight,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		return s, ts
	}

	b.Run("http", func(b *testing.B) {
		_, ts := newServer(b)
		client := ts.Client()
		body, err := json.Marshal(wire.StepRequest{Requests: reqsFor(0, benchBatch)})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/step", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST /step = %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})

	b.Run("stream", func(b *testing.B) {
		_, ts := newServer(b)
		c := dialStream(b, ts)
		c.hello(0)
		frame, err := json.Marshal(wire.StepFrame{V: wire.V1, Type: wire.FrameStep, ID: 1, Requests: reqsFor(0, benchBatch)})
		if err != nil {
			b.Fatal(err)
		}
		frame = append(frame, '\n')

		// The pipelining window: the writer runs ahead of the acks, but
		// stays under the server's queue bound so nothing is throttled.
		sem := make(chan struct{}, benchInflight)
		writeErr := make(chan error, 1)
		b.ResetTimer()
		go func() {
			bw := bufio.NewWriter(c.conn)
			for i := 0; i < b.N; i++ {
				sem <- struct{}{}
				if _, err := bw.Write(frame); err != nil {
					writeErr <- err
					return
				}
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}()
		for acked := 0; acked < b.N; acked++ {
			select {
			case err := <-writeErr:
				b.Fatal(err)
			default:
			}
			line, err := c.br.ReadBytes('\n')
			if err != nil {
				b.Fatal(err)
			}
			head, err := wire.PeekFrame(line)
			if err != nil {
				b.Fatal(err)
			}
			if head.Type != wire.FrameAck {
				b.Fatalf("got %s frame mid-pipeline: %s", head.Type, line)
			}
			<-sem
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})
}

// BenchmarkStreamBinaryVsNDJSON compares the two stream encodings feeding
// the same serving core over identical pipelined connections: one op is
// one frame of benchBatch requests, sent either as a pre-marshaled NDJSON
// line or as a pre-encoded binary frame (up to benchInflight in flight).
// Both halves measure the full loop — socket, decode, engine step, ack
// encode, socket — so the delta is the encoding work itself plus the
// allocation pressure it induces. scripts/bench.sh runs this and derives
// the stream_binary_vs_ndjson entry of the BENCH_*.json trajectory.
func BenchmarkStreamBinaryVsNDJSON(b *testing.B) {
	const (
		benchBatch    = 8
		benchInflight = 64
	)
	newServer := func(b *testing.B) *httptest.Server {
		b.Helper()
		cfg := testConfig(1)
		s, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
			QueueLimit: 4 * benchInflight,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		return ts
	}

	b.Run("ndjson", func(b *testing.B) {
		ts := newServer(b)
		c := dialStream(b, ts)
		c.hello(0)
		frame, err := json.Marshal(wire.StepFrame{V: wire.V1, Type: wire.FrameStep, ID: 1, Requests: reqsFor(0, benchBatch)})
		if err != nil {
			b.Fatal(err)
		}
		frame = append(frame, '\n')

		// Warm the connection with a pipelined burst at full window
		// depth — first-step session setup, pool fills, reply-queue
		// growth, and bufio growth happen here, not in the timed
		// region, so allocs/op reflects the steady state even at the
		// small fixed -benchtime counts CI uses.
		bw := bufio.NewWriter(c.conn)
		for i := 0; i < 2*benchInflight; i++ {
			if _, err := bw.Write(frame); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2*benchInflight; i++ {
			if _, err := c.br.ReadBytes('\n'); err != nil {
				b.Fatal(err)
			}
		}

		sem := make(chan struct{}, benchInflight)
		writeErr := make(chan error, 1)
		b.ReportAllocs()
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				sem <- struct{}{}
				if _, err := bw.Write(frame); err != nil {
					writeErr <- err
					return
				}
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}()
		for acked := 0; acked < b.N; acked++ {
			select {
			case err := <-writeErr:
				b.Fatal(err)
			default:
			}
			line, err := c.br.ReadBytes('\n')
			if err != nil {
				b.Fatal(err)
			}
			head, err := wire.PeekFrame(line)
			if err != nil {
				b.Fatal(err)
			}
			if head.Type != wire.FrameAck {
				b.Fatalf("got %s frame mid-pipeline: %s", head.Type, line)
			}
			<-sem
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})

	b.Run("binary", func(b *testing.B) {
		ts := newServer(b)
		c := dialStream(b, ts)
		if w := c.helloWire(0, wire.WireBinary); w.Wire != wire.WireBinary {
			b.Fatalf("server declined binary: welcome wire = %q", w.Wire)
		}
		payload := wire.AppendStepFrom(nil, wire.V1, 1, reqsFor(0, benchBatch))

		// Same full-depth pipelined warmup as the ndjson half: keep
		// one-time setup allocations out of the timed region.
		bw := bufio.NewWriter(c.conn)
		var ackBuf []byte
		for i := 0; i < 2*benchInflight; i++ {
			if err := wire.WriteBinaryFrame(bw, wire.BinStep, payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2*benchInflight; i++ {
			if _, _, err := wire.ReadBinaryFrame(c.br, &ackBuf, wire.DefaultMaxFrame); err != nil {
				b.Fatal(err)
			}
		}

		sem := make(chan struct{}, benchInflight)
		writeErr := make(chan error, 1)
		b.ReportAllocs()
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				sem <- struct{}{}
				if err := wire.WriteBinaryFrame(bw, wire.BinStep, payload); err != nil {
					writeErr <- err
					return
				}
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}()
		for acked := 0; acked < b.N; acked++ {
			select {
			case err := <-writeErr:
				b.Fatal(err)
			default:
			}
			tag, _, err := wire.ReadBinaryFrame(c.br, &ackBuf, wire.DefaultMaxFrame)
			if err != nil {
				b.Fatal(err)
			}
			if tag != wire.BinAck {
				b.Fatalf("got binary tag 0x%02x mid-pipeline, want ack", tag)
			}
			<-sem
		}
		b.StopTimer()
		reportReqRate(b, benchBatch)
	})
}

// reportReqRate turns the measured wall-clock into a requests-per-second
// metric so the transports' sustained ingestion rates sit next to their
// ns/op in the bench output.
func reportReqRate(b *testing.B, batch int) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "req/s")
	}
}
