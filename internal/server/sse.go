// The push side of the metrics API: GET /metrics/stream serves the
// protocol layer's Watch subscription as server-sent events, one event per
// executed engine step, so dashboards follow the session without polling
// GET /metrics.

package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/wire"
)

func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported: response cannot be flushed")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// The subscription lives until the client goes away or the server
	// closes; the protocol layer's drop policy guarantees a slow reader
	// here can never stall the step loop — it just loses events, and the
	// tally rides on the next delivered one (the "dropped" field).
	for ev := range s.svc.Watch(r.Context()) {
		data, err := json.Marshal(wire.MetricsEvent{
			V:           wire.V1,
			T:           ev.T,
			Batched:     ev.Batched,
			StepCost:    wire.FromCost(ev.StepCost),
			Steps:       ev.Steps,
			Requests:    ev.Requests,
			Cost:        wire.FromCost(ev.Cost),
			AvgStepCost: ev.AvgStepCost,
			QueueDepth:  ev.QueueDepth,
			Rejected:    ev.Rejected,
			Dropped:     ev.Dropped,
		})
		if err != nil {
			return
		}
		// SSE framing: the step index doubles as the event id, so
		// EventSource clients see a resumable cursor.
		if _, err := w.Write([]byte("id: " + strconv.Itoa(ev.T) + "\nevent: metrics\ndata: " + string(data) + "\n\n")); err != nil {
			return
		}
		// A step that migrated a server emits a second, typed event right
		// after its metrics, so layout changes arrive in order with the
		// load that triggered them.
		if rb := ev.Rebalance; rb != nil {
			data, err := json.Marshal(wire.RebalanceEvent{
				V:      wire.V1,
				T:      rb.T,
				From:   rb.From,
				To:     rb.To,
				Server: wire.Point(rb.Server),
				Ks:     rb.Ks,
			})
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("event: rebalance\ndata: " + string(data) + "\n\n")); err != nil {
				return
			}
		}
		// A step during which the coordinator rehomed shards (cluster mode)
		// emits one typed event per ownership change, in order, so a
		// dashboard tracking the shard→worker assignment stays in sync.
		for _, fo := range ev.Failovers {
			fo.V = wire.V1
			data, err := json.Marshal(fo)
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("event: failover\ndata: " + string(data) + "\n\n")); err != nil {
				return
			}
		}
		fl.Flush()
	}
}
