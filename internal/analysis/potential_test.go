package analysis

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

func pt(x float64) geom.Point { return geom.NewPoint(x) }

func TestPhiShape(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 4, M: 1, Delta: 0.5}
	// r > D: factor 1; r <= D: factor 2.
	rBig, rSmall := 8, 2
	thrBig := cfg.Delta * cfg.D * cfg.M / (4 * float64(rBig))
	// Below threshold: linear 2Dd.
	d := thrBig / 2
	if got := Phi(cfg, rBig, d); math.Abs(got-2*cfg.D*d) > 1e-12 {
		t.Fatalf("linear regime Phi = %v, want %v", got, 2*cfg.D*d)
	}
	// Above threshold: quadratic 8r/(δm)·d².
	d = 3.0
	want := 8 * float64(rBig) / (cfg.Delta * cfg.M) * d * d
	if got := Phi(cfg, rBig, d); math.Abs(got-want) > 1e-9 {
		t.Fatalf("quadratic regime Phi = %v, want %v", got, want)
	}
	// r <= D doubles both regimes.
	if got, want := Phi(cfg, rSmall, d), 16*float64(rSmall)/(cfg.Delta*cfg.M)*d*d; math.Abs(got-want) > 1e-9 {
		t.Fatalf("doubled Phi = %v, want %v", got, want)
	}
}

func TestPhiZeroAtZeroDistance(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.25}
	if Phi(cfg, 1, 0) != 0 {
		t.Fatal("Phi(0) != 0")
	}
}

func TestPhiMonotone(t *testing.T) {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: 0.25}
	prev := 0.0
	for d := 0.0; d < 5; d += 0.01 {
		v := Phi(cfg, 3, d)
		if v < prev-1e-12 {
			t.Fatalf("Phi not monotone at d=%v", d)
		}
		prev = v
	}
}

// coincidentInstance builds a 1-D instance whose batches are coincident
// points following a bounded-speed demand walk.
func coincidentInstance(seed uint64, T, r int, delta float64) *core.Instance {
	rng := xrand.New(seed)
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: delta, Order: core.MoveFirst}
	in := &core.Instance{Config: cfg, Start: pt(0)}
	x := 0.0
	for t := 0; t < T; t++ {
		x += rng.Range(-1, 1) // demand moves at most m per step
		reqs := make([]geom.Point, r)
		for i := range reqs {
			reqs[i] = pt(x)
		}
		in.Steps = append(in.Steps, core.Step{Requests: reqs})
	}
	return in
}

func TestAuditPrefixInvariantRandomWalks(t *testing.T) {
	for _, r := range []int{1, 4} {
		for _, delta := range []float64{1, 0.5, 0.25} {
			in := coincidentInstance(11, 300, r, delta)
			res, err := AuditMtC(in, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.PrefixHolds {
				t.Fatalf("r=%d δ=%v: prefix invariant broken", r, delta)
			}
			if res.MaxEmpiricalConstant > res.K {
				t.Fatalf("r=%d δ=%v: empirical constant %v exceeds K=%v", r, delta, res.MaxEmpiricalConstant, res.K)
			}
		}
	}
}

func TestAuditAdversarialInstance(t *testing.T) {
	// The Theorem-2 construction has coincident batches; the amortized
	// inequality must hold on it too (it is the proof's own worst case).
	g := adversary.Theorem2(adversary.Theorem2Params{T: 400, D: 2, M: 1, Delta: 0.25, Rmin: 1, Rmax: 1, Dim: 1}, xrand.New(5))
	res, err := AuditMtC(g.Instance, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrefixHolds {
		t.Fatal("prefix invariant broken on the adversarial instance")
	}
}

func TestAuditRejectsSpreadBatches(t *testing.T) {
	in := &core.Instance{
		Config: core.Config{Dim: 1, D: 1, M: 1, Delta: 0.5},
		Start:  pt(0),
		Steps: []core.Step{
			{Requests: []geom.Point{pt(1), pt(2)}},
		},
	}
	if _, err := AuditMtC(in, Options{}); err == nil {
		t.Fatal("spread batch accepted")
	}
}

func TestAuditRejects2D(t *testing.T) {
	in := &core.Instance{
		Config: core.Config{Dim: 2, D: 1, M: 1, Delta: 0.5},
		Start:  geom.NewPoint(0, 0),
		Steps:  []core.Step{{Requests: []geom.Point{geom.NewPoint(1, 1)}}},
	}
	if _, err := AuditMtC(in, Options{}); err == nil {
		t.Fatal("2-D instance accepted")
	}
}

func TestAuditRejectsZeroDelta(t *testing.T) {
	in := coincidentInstance(1, 10, 1, 0.5)
	in.Config.Delta = 0
	if _, err := AuditMtC(in, Options{}); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

func TestAuditRejectsEmptyStep(t *testing.T) {
	in := coincidentInstance(1, 10, 1, 0.5)
	in.Steps[3].Requests = nil
	if _, err := AuditMtC(in, Options{}); err == nil {
		t.Fatal("empty step accepted")
	}
}

func TestAuditStepAccounting(t *testing.T) {
	in := coincidentInstance(3, 50, 2, 0.5)
	res, err := AuditMtC(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 50 {
		t.Fatalf("got %d step records", len(res.Steps))
	}
	// Amortized must equal CAlg + DeltaPhi and the potential must
	// telescope: Σ DeltaPhi = φ_final ≥ 0.
	sumDelta := 0.0
	for i, rec := range res.Steps {
		if math.Abs(rec.Amortized-(rec.CAlg+rec.DeltaPhi)) > 1e-12 {
			t.Fatalf("step %d: amortized mismatch", i)
		}
		sumDelta += rec.DeltaPhi
	}
	if sumDelta < -1e-9 {
		t.Fatalf("telescoped potential negative: %v", sumDelta)
	}
}
