// Package analysis instruments the paper's competitive proof itself: it
// implements the potential function φ from Section 4 and audits, step by
// step against an (almost) exact offline optimum, the amortized inequality
//
//	C_Alg(t) + φ(t) − φ(t−1) ≤ K · C_Opt(t)
//
// that the case analysis of Theorem 4 establishes. The audit turns the
// proof into an executable artifact: if the implementation of MtC or the
// potential drifted from the paper, prefix sums of the inequality would
// break.
package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/offline"
	"repro/internal/sim"
)

// Phi is the paper's potential function for request volume r per step
// (Section 4.1 for r > D, Section 4.2 for r ≤ D): quadratic in the
// server distance d = d(P_Opt, P_Alg) above the threshold δDm/(4r), linear
// below it, with the r ≤ D case doubled.
func Phi(cfg core.Config, r int, d float64) float64 {
	factor := 1.0
	if float64(r) <= cfg.D {
		factor = 2
	}
	rr := float64(r)
	threshold := cfg.Delta * cfg.D * cfg.M / (4 * rr)
	if d > threshold {
		return factor * 8 * rr / (cfg.Delta * cfg.M) * d * d
	}
	return factor * 2 * cfg.D * d
}

// StepRecord is the audit data of one time step.
type StepRecord struct {
	// CAlg and COpt are the online and offline step costs.
	CAlg, COpt float64
	// DeltaPhi is φ(t) − φ(t−1).
	DeltaPhi float64
	// Amortized is CAlg + DeltaPhi.
	Amortized float64
}

// Result summarizes an audit run.
type Result struct {
	Steps []StepRecord
	// K is the bound constant used: Amortized ≤ K·COpt is checked.
	K float64
	// PerStepViolations counts steps where Amortized > K·COpt + slack,
	// with slack covering the grid discretization of the offline path.
	PerStepViolations int
	// PrefixHolds reports whether Σ CAlg ≤ K·Σ COpt + φ(0) − φ(prefix)
	// holds for every prefix (the telescoped form actually used by the
	// theorem) with the same slack budget.
	PrefixHolds bool
	// MaxEmpiricalConstant is max_t Amortized/COpt over steps with
	// meaningful COpt — the measured counterpart of the paper's explicit
	// constants (≤ ~264/δ^{3/2} in the 2-D proof, ~264/δ on the line).
	MaxEmpiricalConstant float64
	// OptSlackPerStep is the discretization allowance used.
	OptSlackPerStep float64
}

// Options configures an audit.
type Options struct {
	// K overrides the bound constant. 0 selects the paper's regime
	// 300/δ for 1-D instances (the analysis constants reach 264).
	K float64
	// CellsPerM / MaxCells control the offline DP path resolution.
	CellsPerM, MaxCells int
}

// AuditMtC runs the paper's MtC on a 1-D instance whose steps each have
// all requests on a single point (the setting of the potential argument —
// Lemma 5 reduces general instances to it), recovers a near-optimal
// offline trajectory by dynamic programming, and checks the amortized
// inequality per step and in prefix form.
func AuditMtC(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Config.Dim != 1 {
		return nil, fmt.Errorf("analysis: AuditMtC requires dim 1 (the DP provides the OPT path)")
	}
	if in.Config.Delta <= 0 {
		return nil, fmt.Errorf("analysis: AuditMtC requires delta > 0")
	}
	for t, s := range in.Steps {
		if len(s.Requests) == 0 {
			return nil, fmt.Errorf("analysis: step %d has no requests", t)
		}
		for _, v := range s.Requests[1:] {
			if !v.Equal(s.Requests[0]) {
				return nil, fmt.Errorf("analysis: step %d has spread requests; the potential argument requires coincident batches", t)
			}
		}
	}
	cellsPerM := opts.CellsPerM
	if cellsPerM <= 0 {
		cellsPerM = 8
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 200000
	}
	optPath, dpRes, err := offline.LineDPPath(in, cellsPerM, maxCells, 0)
	if err != nil {
		return nil, err
	}
	algRun, err := sim.Run(in, core.NewMtC(), sim.RunOptions{RecordTrace: true})
	if err != nil {
		return nil, err
	}

	k := opts.K
	if k == 0 {
		k = 300 / in.Config.Delta
	}
	res := &Result{K: k, PrefixHolds: true}
	// The snapped OPT path misstates each step's true offline cost by at
	// most D·pitch + r·pitch/2 (movement + serving at snapped positions).
	_, rmax := in.RequestRange()
	res.OptSlackPerStep = (in.Config.D + float64(rmax)/2) * dpRes.Pitch

	algPos := in.Start
	optPos := in.Start
	phiPrev := 0.0
	sumAlg, sumOptBound := 0.0, 0.0
	for t, s := range in.Steps {
		r := len(s.Requests)
		algNext := algRun.Trace[t].Pos
		optNext := optPath[t+1]
		cAlg := algRun.Trace[t].Cost.Total()
		cOpt := core.StepCost(in.Config, optPos, optNext, s.Requests).Total()
		phiNext := Phi(in.Config, r, geom.Dist(optNext, algNext))
		rec := StepRecord{
			CAlg:      cAlg,
			COpt:      cOpt,
			DeltaPhi:  phiNext - phiPrev,
			Amortized: cAlg + phiNext - phiPrev,
		}
		res.Steps = append(res.Steps, rec)
		if rec.Amortized > k*cOpt+k*res.OptSlackPerStep {
			res.PerStepViolations++
		}
		if cOpt > res.OptSlackPerStep {
			if c := rec.Amortized / cOpt; c > res.MaxEmpiricalConstant {
				res.MaxEmpiricalConstant = c
			}
		}
		sumAlg += cAlg
		sumOptBound += k * (cOpt + res.OptSlackPerStep)
		if sumAlg+phiNext > sumOptBound+1e-6 {
			res.PrefixHolds = false
		}
		algPos = algNext
		optPos = optNext
		phiPrev = phiNext
	}
	_ = algPos
	return res, nil
}
