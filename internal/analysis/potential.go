// Package analysis instruments the paper's competitive proof itself: it
// implements the potential function φ from Section 4 and audits, step by
// step against an (almost) exact offline optimum, the amortized inequality
//
//	C_Alg(t) + φ(t) − φ(t−1) ≤ K · C_Opt(t)
//
// that the case analysis of Theorem 4 establishes. The audit turns the
// proof into an executable artifact: if the implementation of MtC or the
// potential drifted from the paper, prefix sums of the inequality would
// break.
package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/offline"
	"repro/internal/sim"
)

// Phi is the paper's potential function for request volume r per step
// (Section 4.1 for r > D, Section 4.2 for r ≤ D): quadratic in the
// server distance d = d(P_Opt, P_Alg) above the threshold δDm/(4r), linear
// below it, with the r ≤ D case doubled.
func Phi(cfg core.Config, r int, d float64) float64 {
	factor := 1.0
	if float64(r) <= cfg.D {
		factor = 2
	}
	rr := float64(r)
	threshold := cfg.Delta * cfg.D * cfg.M / (4 * rr)
	if d > threshold {
		return factor * 8 * rr / (cfg.Delta * cfg.M) * d * d
	}
	return factor * 2 * cfg.D * d
}

// StepRecord is the audit data of one time step.
type StepRecord struct {
	// CAlg and COpt are the online and offline step costs.
	CAlg, COpt float64
	// DeltaPhi is φ(t) − φ(t−1).
	DeltaPhi float64
	// Amortized is CAlg + DeltaPhi.
	Amortized float64
}

// Result summarizes an audit run.
type Result struct {
	Steps []StepRecord
	// K is the bound constant used: Amortized ≤ K·COpt is checked.
	K float64
	// PerStepViolations counts steps where Amortized > K·COpt + slack,
	// with slack covering the grid discretization of the offline path.
	PerStepViolations int
	// PrefixHolds reports whether Σ CAlg ≤ K·Σ COpt + φ(0) − φ(prefix)
	// holds for every prefix (the telescoped form actually used by the
	// theorem) with the same slack budget.
	PrefixHolds bool
	// MaxEmpiricalConstant is max_t Amortized/COpt over steps with
	// meaningful COpt — the measured counterpart of the paper's explicit
	// constants (≤ ~264/δ^{3/2} in the 2-D proof, ~264/δ on the line).
	MaxEmpiricalConstant float64
	// OptSlackPerStep is the discretization allowance used.
	OptSlackPerStep float64
}

// Options configures an audit.
type Options struct {
	// K overrides the bound constant. 0 selects the paper's regime
	// 300/δ for 1-D instances (the analysis constants reach 264).
	K float64
	// CellsPerM / MaxCells control the offline DP path resolution.
	CellsPerM, MaxCells int
}

// PhiAudit is an engine.Observer that tracks the potential φ live along a
// run, checking the amortized inequality of Theorem 4 against a reference
// (offline) trajectory step by step. Attach it to any session whose
// algorithm should satisfy the paper's potential argument; AuditMtC wires
// it up against the grid-DP optimum.
type PhiAudit struct {
	// K is the bound constant: Amortized ≤ K·COpt (+ slack) is checked.
	K float64
	// RefPath is the reference trajectory: RefPath[t+1] is the reference
	// position after the move of step t (RefPath[0] is the start).
	RefPath []geom.Point
	// SlackPerStep is the per-step allowance covering the discretization
	// of the reference path.
	SlackPerStep float64

	// Result fields, updated on every observed step.
	Steps                []StepRecord
	PerStepViolations    int
	PrefixHolds          bool
	MaxEmpiricalConstant float64
	// Truncated reports that the session ran more steps than RefPath
	// covers; auditing stopped at the end of the reference trajectory.
	Truncated bool

	cfg     core.Config
	phiPrev float64
	sumAlg  float64
	sumOpt  float64
}

// NewPhiAudit returns an audit observer for the given bound constant,
// reference trajectory, and discretization slack.
func NewPhiAudit(k float64, refPath []geom.Point, slackPerStep float64) *PhiAudit {
	return &PhiAudit{K: k, RefPath: refPath, SlackPerStep: slackPerStep, PrefixHolds: true}
}

// Begin implements engine.BeginObserver.
func (a *PhiAudit) Begin(cfg core.Config, _ []geom.Point, _ string) { a.cfg = cfg }

// Observe implements engine.Observer.
func (a *PhiAudit) Observe(info engine.StepInfo) {
	t := info.T
	if t+1 >= len(a.RefPath) {
		a.Truncated = true
		return
	}
	r := len(info.Requests)
	algNext := info.Pos[0]
	optPos, optNext := a.RefPath[t], a.RefPath[t+1]
	cAlg := info.Cost.Total()
	cOpt := core.StepCost(a.cfg, optPos, optNext, info.Requests).Total()
	phiNext := Phi(a.cfg, r, geom.Dist(optNext, algNext))
	rec := StepRecord{
		CAlg:      cAlg,
		COpt:      cOpt,
		DeltaPhi:  phiNext - a.phiPrev,
		Amortized: cAlg + phiNext - a.phiPrev,
	}
	a.Steps = append(a.Steps, rec)
	if rec.Amortized > a.K*cOpt+a.K*a.SlackPerStep {
		a.PerStepViolations++
	}
	if cOpt > a.SlackPerStep {
		if c := rec.Amortized / cOpt; c > a.MaxEmpiricalConstant {
			a.MaxEmpiricalConstant = c
		}
	}
	a.sumAlg += cAlg
	a.sumOpt += a.K * (cOpt + a.SlackPerStep)
	if a.sumAlg+phiNext > a.sumOpt+1e-6 {
		a.PrefixHolds = false
	}
	a.phiPrev = phiNext
}

// AuditMtC runs the paper's MtC on a 1-D instance whose steps each have
// all requests on a single point (the setting of the potential argument —
// Lemma 5 reduces general instances to it), recovers a near-optimal
// offline trajectory by dynamic programming, and checks the amortized
// inequality per step and in prefix form by attaching a PhiAudit observer
// to the simulation session.
func AuditMtC(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Config.Dim != 1 {
		return nil, fmt.Errorf("analysis: AuditMtC requires dim 1 (the DP provides the OPT path)")
	}
	if in.Config.Delta <= 0 {
		return nil, fmt.Errorf("analysis: AuditMtC requires delta > 0")
	}
	for t, s := range in.Steps {
		if len(s.Requests) == 0 {
			return nil, fmt.Errorf("analysis: step %d has no requests", t)
		}
		for _, v := range s.Requests[1:] {
			if !v.Equal(s.Requests[0]) {
				return nil, fmt.Errorf("analysis: step %d has spread requests; the potential argument requires coincident batches", t)
			}
		}
	}
	cellsPerM := opts.CellsPerM
	if cellsPerM <= 0 {
		cellsPerM = 8
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 200000
	}
	optPath, dpRes, err := offline.LineDPPath(in, cellsPerM, maxCells, 0)
	if err != nil {
		return nil, err
	}
	k := opts.K
	if k == 0 {
		k = 300 / in.Config.Delta
	}
	// The snapped OPT path misstates each step's true offline cost by at
	// most D·pitch + r·pitch/2 (movement + serving at snapped positions).
	_, rmax := in.RequestRange()
	slack := (in.Config.D + float64(rmax)/2) * dpRes.Pitch
	audit := NewPhiAudit(k, optPath, slack)
	if _, err := sim.Run(in, core.NewMtC(), sim.RunOptions{Observers: []sim.Observer{audit}}); err != nil {
		return nil, err
	}
	return &Result{
		Steps:                audit.Steps,
		K:                    k,
		PerStepViolations:    audit.PerStepViolations,
		PrefixHolds:          audit.PrefixHolds,
		MaxEmpiricalConstant: audit.MaxEmpiricalConstant,
		OptSlackPerStep:      slack,
	}, nil
}
