package engine_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
)

// workloadStep is a deterministic request generator: a hotspot orbiting the
// origin with 1–3 requests per step, so runs are reproducible without
// materializing an instance.
func workloadStep(t, dim int) []geom.Point {
	n := 1 + t%3
	reqs := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		p := geom.Zero(dim)
		angle := 2*math.Pi*float64(t)/37 + float64(i)
		r := 5 + 3*math.Sin(float64(t)/11)
		p[0] = r * math.Cos(angle)
		if dim > 1 {
			p[1] = r * math.Sin(angle)
		}
		reqs[i] = p
	}
	return reqs
}

// overMover proposes the first request position directly, ignoring the cap,
// so Clamp mode has to intervene on nearly every step.
type overMover struct{ pos []geom.Point }

func (o *overMover) Name() string { return "over-mover" }
func (o *overMover) Reset(_ core.Config, starts []geom.Point) {
	o.pos = starts
}
func (o *overMover) Move(reqs []geom.Point) []geom.Point {
	if len(reqs) > 0 {
		for j := range o.pos {
			o.pos[j] = reqs[0].Clone()
		}
	}
	return o.pos
}

func snapshotCases() []struct {
	name string
	cfg  core.Config
	alg  func() core.FleetAlgorithm
	mode engine.Mode
} {
	single := core.Config{Dim: 2, D: 3, M: 0.5, Delta: 0.25, Order: core.MoveFirst, K: 1}
	fleet := core.Config{Dim: 2, D: 3, M: 0.5, Delta: 0.25, Order: core.MoveFirst, K: 3}
	return []struct {
		name string
		cfg  core.Config
		alg  func() core.FleetAlgorithm
		mode engine.Mode
	}{
		{"MtC/strict", single, func() core.FleetAlgorithm { return core.Fleet(core.NewMtC()) }, engine.Strict},
		{"MtC/clamp", single, func() core.FleetAlgorithm { return core.Fleet(core.NewMtC()) }, engine.Clamp},
		{"MtCK/strict", fleet, func() core.FleetAlgorithm { return multi.NewMtCK() }, engine.Strict},
		{"MtCK/clamp", fleet, func() core.FleetAlgorithm { return multi.NewMtCK() }, engine.Clamp},
		{"LazyK/strict", fleet, func() core.FleetAlgorithm { return multi.NewLazyK() }, engine.Strict},
		{"over-mover/clamp", fleet, func() core.FleetAlgorithm { return &overMover{} }, engine.Clamp},
	}
}

func starts(cfg core.Config) []geom.Point {
	return multi.SpreadStarts(cfg, 4)
}

// runUninterrupted streams T workload steps through one session.
func runUninterrupted(t *testing.T, cfg core.Config, alg core.FleetAlgorithm, mode engine.Mode, T int) *engine.Result {
	t.Helper()
	s, err := engine.NewSession(cfg, starts(cfg), alg, engine.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < T; i++ {
		if err := s.Step(workloadStep(i, cfg.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finish()
}

// runResumed streams j steps, snapshots, restores into a fresh session with
// a fresh algorithm (simulating a new process), and finishes the stream.
func runResumed(t *testing.T, cfg core.Config, algA, algB core.FleetAlgorithm, mode engine.Mode, j, T int) *engine.Result {
	t.Helper()
	s, err := engine.NewSession(cfg, starts(cfg), algA, engine.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j; i++ {
		if err := s.Step(workloadStep(i, cfg.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.Restore(cfg, algB, snap, engine.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != j {
		t.Fatalf("restored T = %d, want %d", r.T(), j)
	}
	for i := j; i < T; i++ {
		if err := r.Step(workloadStep(i, cfg.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	return r.Finish()
}

// TestSnapshotRestoreEquivalence is the kill-and-restore correctness proof:
// a run snapshotted at step j and resumed in a fresh session must finish
// with a Result byte-identical to the uninterrupted run — for the paper's
// single server (K=1), the fleet generalization (K>1), and both cap modes.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const T = 60
	for _, tc := range snapshotCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := runUninterrupted(t, tc.cfg, tc.alg(), tc.mode, T)
			for _, j := range []int{1, T / 3, T - 1} {
				got := runResumed(t, tc.cfg, tc.alg(), tc.alg(), tc.mode, j, T)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("resume at %d diverged:\nwant %+v\ngot  %+v", j, want, got)
				}
				wb, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				gb, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wb, gb) {
					t.Fatalf("resume at %d not byte-identical:\nwant %s\ngot  %s", j, wb, gb)
				}
			}
		})
	}
}

// TestClampCountersSurviveRestore pins the clamp-mode invariant: a
// checkpoint taken immediately after a clamped step restores with the
// clamped-move counters (and MaxMove) intact, and the resumed run keeps
// counting from there exactly as the uninterrupted run does.
func TestClampCountersSurviveRestore(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 2, M: 1, Order: core.MoveFirst, K: 2}
	far := []geom.Point{geom.NewPoint(40, 0)}

	s, err := engine.NewSession(cfg, starts(cfg), &overMover{}, engine.Options{Mode: engine.Clamp})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(far); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.Restore(cfg, &overMover{}, snap, engine.Options{Mode: engine.Clamp})
	if err != nil {
		t.Fatal(err)
	}

	// Both sessions take one more clamped step; every counter must agree.
	for _, sess := range []*engine.Session{s, r} {
		if err := sess.Step(far); err != nil {
			t.Fatal(err)
		}
	}
	want, got := s.Finish(), r.Finish()
	if want.Clamped != 4 {
		t.Fatalf("Clamped = %d, want 4 (2 servers × 2 steps)", want.Clamped)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("clamp counters diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// renamed masquerades as another algorithm by name without snapshot
// support, to exercise Restore's safety checks.
type renamed struct {
	overMover
	name string
}

func (r *renamed) Name() string { return r.name }

func TestRestoreRejectsMismatches(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 2, M: 1, Order: core.MoveFirst, K: 1}
	s, err := engine.NewSession(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]geom.Point{geom.NewPoint(1, 0)}); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := engine.Restore(cfg, multi.NewLazyK(), snap, engine.Options{}); err == nil {
		t.Fatal("algorithm-name mismatch accepted")
	}
	other := cfg
	other.D = 7
	if _, err := engine.Restore(other, core.Fleet(core.NewMtC()), snap, engine.Options{}); err == nil {
		t.Fatal("config mismatch accepted")
	}
	if _, err := engine.Restore(cfg, core.Fleet(core.NewMtC()), snap, engine.Options{Mode: engine.Clamp}); err == nil {
		t.Fatal("cap-mode mismatch accepted: resuming a Strict run under Clamp forks the trajectory")
	}
	// K=0 and K=1 are the same single-server model; restore must accept it.
	sameK := cfg
	sameK.K = 0
	if _, err := engine.Restore(sameK, core.Fleet(core.NewMtC()), snap, engine.Options{}); err != nil {
		t.Fatalf("K=0 vs K=1 rejected: %v", err)
	}
	if _, err := engine.Restore(cfg, &renamed{name: "MtC"}, snap, engine.Options{}); err == nil {
		t.Fatal("state restored onto an algorithm without Snapshotter")
	}
	if _, err := engine.Restore(cfg, core.Fleet(core.NewMtC()), snap[:len(snap)/2], engine.Options{}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}

	_ = s.Finish()
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot of a finished session accepted")
	}
}
