package engine

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// StepInfo is the per-step snapshot handed to observers. The slices are
// owned by the session and are only valid during the Observe call: an
// observer that retains positions or requests must clone them.
type StepInfo struct {
	// T is the 0-based index of the step just executed.
	T int
	// Requests is the step's request batch as passed to Step.
	Requests []geom.Point
	// Prev and Pos are the server positions before and after the move
	// (one entry per server; Pos reflects any clamping).
	Prev, Pos []geom.Point
	// Moved is the largest single-server movement of this step.
	Moved float64
	// Clamped counts servers whose move was clamped this step.
	Clamped int
	// Cost is the cost charged in this step.
	Cost core.Cost
}

// Observer is notified after every step of a session. Observers replace the
// old hard-coded trace recording: tracing, live metrics, max-move stats,
// and potential-function audits are all observers.
//
// An observer may additionally implement BeginObserver and/or EndObserver
// to be notified when the session starts and finishes.
type Observer interface {
	Observe(info StepInfo)
}

// BeginObserver is an optional extension of Observer: Begin is called once
// by NewSession with the configuration, the start positions, and the
// algorithm name.
type BeginObserver interface {
	Begin(cfg core.Config, starts []geom.Point, algorithm string)
}

// EndObserver is an optional extension of Observer: End is called once by
// Finish with the session result.
type EndObserver interface {
	End(res *Result)
}

// Func adapts a closure to an Observer.
type Func func(info StepInfo)

// Observe implements Observer.
func (f Func) Observe(info StepInfo) { f(info) }
