package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// Carry is the accumulated-counter state of a session that survives a
// rebuild: the step counter and the cost, movement, and clamp totals. It is
// what a live layout change (the shard router migrating a server between
// regions) transplants from a torn-down session into its replacement, so
// the fleet-wide totals a Result or a snapshot reports are unaffected by
// how often the session behind them was rebuilt.
type Carry struct {
	// Steps is the number of steps the session has absorbed.
	Steps int
	// Cost is the accumulated total cost.
	Cost core.Cost
	// MaxMove is the largest single-server single-step movement observed.
	MaxMove float64
	// Clamped counts cap-enforced server-moves (Clamp mode only).
	Clamped int
}

// Carry returns the session's accumulated counters, for transplanting into
// a replacement session via NewSessionFrom.
func (s *Session) Carry() Carry {
	return Carry{
		Steps:   s.res.Steps,
		Cost:    s.res.Cost,
		MaxMove: s.res.MaxMove,
		Clamped: s.res.Clamped,
	}
}

// NewSessionFrom builds a session that continues an interrupted accounting
// stream: it is NewSession — fresh algorithm, Reset at starts, observers
// announced — except that the returned session's step counter and cost,
// movement, and clamp totals start from carry instead of zero.
//
// This is the primitive behind live fleet-layout changes: unlike Restore it
// does not require the new session to have the same server count as the
// old one, because the algorithm starts fresh at the given positions — only
// the aggregate counters carry over. The first Step after the rebuild gets
// index carry.Steps.
func NewSessionFrom(cfg core.Config, starts []geom.Point, alg core.FleetAlgorithm, opts Options, carry Carry) (*Session, error) {
	if carry.Steps < 0 {
		return nil, fmt.Errorf("engine: carried step counter %d is negative", carry.Steps)
	}
	s, err := NewSession(cfg, starts, alg, opts)
	if err != nil {
		return nil, err
	}
	s.res.Steps = carry.Steps
	s.res.Cost = carry.Cost
	s.res.MaxMove = carry.MaxMove
	s.res.Clamped = carry.Clamped
	return s, nil
}
