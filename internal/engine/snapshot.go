package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// SnapshotVersion is the format version written by Session.Snapshot.
const SnapshotVersion = 1

// snapshot is the serialized form of a mid-stream session: everything a
// fresh process needs to continue the run exactly where this one stood.
// Coordinates and costs are JSON numbers; Go emits the shortest
// representation that round-trips to the identical float64 bits, so a
// restored session is bit-exact, not merely close.
type snapshot struct {
	Version   int         `json:"version"`
	Config    core.Config `json:"config"`
	Algorithm string      `json:"algorithm"`
	// Mode and Tol are the cap-enforcement options the run was taken
	// under; resuming under different ones would silently fork the
	// trajectory, so Restore insists they match.
	Mode      Mode            `json:"mode"`
	Tol       float64         `json:"tol"`
	Steps     int             `json:"steps"`
	Cost      core.Cost       `json:"cost"`
	MaxMove   float64         `json:"max_move"`
	Clamped   int             `json:"clamped"`
	Positions [][]float64     `json:"positions"`
	AlgState  json.RawMessage `json:"alg_state,omitempty"`
}

// ErrSnapshotFinished is returned by Snapshot after Finish: a finished
// session has nothing left to resume.
var ErrSnapshotFinished = errors.New("engine: cannot snapshot a finished session")

// canonicalConfig normalizes the equality-irrelevant freedom in Config —
// K=0 and K=1 both mean the paper's single server — so Restore does not
// reject semantically identical configurations.
func canonicalConfig(c core.Config) core.Config {
	c.K = c.Servers()
	return c
}

// Snapshot serializes the session mid-stream: configuration, step counter,
// accumulated costs and counters, every server position, and — when the
// algorithm implements core.Snapshotter — the algorithm's internal state.
// The bytes are self-describing JSON; feed them to Restore (with a fresh
// algorithm instance of the same kind) to continue the run in another
// session or another process. Snapshotting does not disturb the session.
func (s *Session) Snapshot() ([]byte, error) {
	if s.finished {
		return nil, ErrSnapshotFinished
	}
	if s.err != nil {
		return nil, fmt.Errorf("engine: cannot snapshot a failed session: %w", s.err)
	}
	snap := snapshot{
		Version:   SnapshotVersion,
		Config:    s.cfg,
		Algorithm: s.res.Algorithm,
		Mode:      s.opts.Mode,
		Tol:       s.opts.Tol,
		Steps:     s.res.Steps,
		Cost:      s.res.Cost,
		MaxMove:   s.res.MaxMove,
		Clamped:   s.res.Clamped,
		Positions: make([][]float64, len(s.pos)),
	}
	for j, p := range s.pos {
		snap.Positions[j] = p
	}
	if sn, ok := s.alg.(core.Snapshotter); ok {
		state, err := sn.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("engine: algorithm %s state: %w", s.res.Algorithm, err)
		}
		snap.AlgState = state
	}
	return json.Marshal(&snap)
}

// Restore reopens a session from bytes produced by Snapshot, continuing the
// run exactly where the snapshot was taken: positions, accumulated costs,
// the step counter, and clamp counters all carry over, and the algorithm is
// Reset with the checkpointed positions before any serialized internal
// state is reinstalled via core.Snapshotter. The caller passes a fresh
// algorithm instance of the same kind (matched by Name), the same
// configuration the original session ran under (K=0 and K=1 are treated as
// equal), and options with the same cap-enforcement Mode and Tol; any
// mismatch is an error rather than a silently forked run.
//
// Observers in opts are announced with the restored positions and then see
// only the steps fed after the restore.
func Restore(cfg core.Config, alg core.FleetAlgorithm, data []byte, opts Options) (*Session, error) {
	var snap snapshot
	//moblint:rawdecode version-gated legacy snapshot compatibility: the Version check below is the gate, and a future document must fail it, not an unknown-field error
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("engine: bad snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("engine: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !canonicalConfig(cfg).Equal(canonicalConfig(snap.Config)) {
		return nil, fmt.Errorf("engine: snapshot was taken under config %+v, restore requested %+v", snap.Config, cfg)
	}
	normalized := opts.withDefaults()
	if normalized.Mode != snap.Mode || normalized.Tol != snap.Tol {
		return nil, fmt.Errorf("engine: snapshot was taken with mode=%d tol=%g, restore requested mode=%d tol=%g",
			int(snap.Mode), snap.Tol, int(normalized.Mode), normalized.Tol)
	}
	if alg.Name() != snap.Algorithm {
		return nil, fmt.Errorf("engine: snapshot was taken with algorithm %q, restore got %q", snap.Algorithm, alg.Name())
	}
	if len(snap.Positions) != cfg.Servers() {
		return nil, fmt.Errorf("engine: snapshot has %d positions for K=%d servers", len(snap.Positions), cfg.Servers())
	}
	pos := make([]geom.Point, len(snap.Positions))
	for j, c := range snap.Positions {
		p := geom.Point(c)
		if p.Dim() != cfg.Dim {
			return nil, fmt.Errorf("engine: snapshot position %d has dim %d, want %d", j, p.Dim(), cfg.Dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("engine: snapshot position %d is not finite: %v", j, p)
		}
		pos[j] = p
	}
	if fs, ok := alg.(core.FleetSizer); ok && fs.FleetSize() != cfg.Servers() {
		return nil, fmt.Errorf("engine: %s controls %d servers, config has K=%d", alg.Name(), fs.FleetSize(), cfg.Servers())
	}
	s := &Session{
		cfg:  cfg,
		alg:  alg,
		opts: opts.withDefaults(),
		cap:  cfg.OnlineCap(),
		pos:  clonePoints(pos),
		obs:  opts.Observers,
	}
	alg.Reset(cfg, clonePoints(pos))
	if len(snap.AlgState) > 0 {
		sn, ok := alg.(core.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("engine: snapshot carries %s state but the algorithm cannot restore it", snap.Algorithm)
		}
		if err := sn.RestoreState(snap.AlgState); err != nil {
			return nil, fmt.Errorf("engine: algorithm %s state: %w", snap.Algorithm, err)
		}
	}
	s.res = Result{
		Algorithm: snap.Algorithm,
		Cost:      snap.Cost,
		MaxMove:   snap.MaxMove,
		Clamped:   snap.Clamped,
		Steps:     snap.Steps,
	}
	if len(s.obs) > 0 {
		announced := clonePoints(s.pos)
		for _, o := range s.obs {
			if b, ok := o.(BeginObserver); ok {
				b.Begin(cfg, announced, s.res.Algorithm)
			}
		}
	}
	return s, nil
}
