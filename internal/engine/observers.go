package engine

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// TraceRecord is one entry of a recorded fleet trace.
type TraceRecord struct {
	// Pos holds every server's position after the move of this step.
	Pos []geom.Point
	// Cost is the cost charged in this step.
	Cost core.Cost
}

// TraceObserver records the full per-step trace of a run. The recorded
// positions are clones and stay valid after the session ends.
type TraceObserver struct {
	Records []TraceRecord
}

// Observe implements Observer.
func (tr *TraceObserver) Observe(info StepInfo) {
	pos := make([]geom.Point, len(info.Pos))
	for j, p := range info.Pos {
		pos[j] = p.Clone()
	}
	tr.Records = append(tr.Records, TraceRecord{Pos: pos, Cost: info.Cost})
}

// MoveStats aggregates movement behavior over a run: how far servers move
// and how often they run against the cap — the live counterpart of
// Result.MaxMove for dashboards and experiments.
type MoveStats struct {
	// Tol is the relative tolerance for counting a move as a cap hit.
	// Default 1e-9.
	Tol float64

	// Steps is the number of observed steps.
	Steps int
	// MaxMove is the largest single-server movement seen.
	MaxMove float64
	// TotalMove is the sum of all server movements (unweighted by D).
	TotalMove float64
	// CapHits counts server-moves within tolerance of the cap: steps on
	// which the movement limit was binding.
	CapHits int

	cap float64
}

// Begin implements BeginObserver.
func (m *MoveStats) Begin(cfg core.Config, _ []geom.Point, _ string) {
	m.cap = cfg.OnlineCap()
}

// Observe implements Observer.
func (m *MoveStats) Observe(info StepInfo) {
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	m.Steps++
	if info.Moved > m.MaxMove {
		m.MaxMove = info.Moved
	}
	for j := range info.Pos {
		d := geom.Dist(info.Prev[j], info.Pos[j])
		m.TotalMove += d
		if d >= m.cap*(1-tol) {
			m.CapHits++
		}
	}
}

// Metrics is a constant-size live-metrics observer for streaming sessions:
// running totals plus a decaying per-step cost average, cheap enough to
// leave attached to a session serving live traffic.
type Metrics struct {
	// Halflife is the number of steps over which the moving average
	// forgets half its weight. Default 1000.
	Halflife float64

	// Steps and Requests are running totals.
	Steps, Requests int
	// Cost is the running total cost.
	Cost core.Cost
	// AvgStepCost is the exponentially decayed average cost per step.
	AvgStepCost float64
}

// Observe implements Observer.
func (m *Metrics) Observe(info StepInfo) {
	m.Steps++
	m.Requests += len(info.Requests)
	m.Cost = m.Cost.Add(info.Cost)
	hl := m.Halflife
	if hl <= 0 {
		hl = 1000
	}
	// retention^halflife = 1/2, so one step keeps 2^(-1/halflife).
	alpha := 1 - math.Exp2(-1/hl)
	m.AvgStepCost += alpha * (info.Cost.Total() - m.AvgStepCost)
}
