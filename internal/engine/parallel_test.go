package engine

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func parallelConfig() core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5}
}

func batchAt(t, shard int) []geom.Point {
	angle := 2*math.Pi*float64(t)/31 + float64(shard)
	return []geom.Point{
		geom.NewPoint(6*math.Cos(angle), 6*math.Sin(angle)),
		geom.NewPoint(4*math.Cos(angle+1), 4*math.Sin(angle+1)),
	}
}

// TestStepAllMatchesSequential: concurrent stepping of independent sessions
// is byte-identical to stepping them one after another.
func TestStepAllMatchesSequential(t *testing.T) {
	const n, steps = 4, 50
	cfg := parallelConfig()
	mkSessions := func() []*Session {
		out := make([]*Session, n)
		for i := range out {
			s, err := NewSingleSession(cfg, geom.NewPoint(float64(i), 0), core.NewMtC(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	par, seq := mkSessions(), mkSessions()
	for step := 0; step < steps; step++ {
		batches := make([][]geom.Point, n)
		for i := range batches {
			batches[i] = batchAt(step, i)
		}
		if err := StepAll(par, batches); err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if err := seq[i].Step(batches[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range par {
		rp, rs := par[i].Finish(), seq[i].Finish()
		if !reflect.DeepEqual(rp, rs) {
			t.Fatalf("session %d diverged:\nparallel   %+v\nsequential %+v", i, rp, rs)
		}
	}
}

// TestStepAllErrors: a failing session does not stop the others from
// stepping, and the error names the failing session.
func TestStepAllErrors(t *testing.T) {
	cfg := parallelConfig()
	ok, err := NewSingleSession(cfg, geom.NewPoint(0, 0), core.NewMtC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewSingleSession(cfg, geom.NewPoint(1, 0), core.NewMtC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad.Finish() // stepping it now fails with ErrFinished

	batches := [][]geom.Point{batchAt(0, 0), batchAt(0, 1)}
	got := StepAll([]*Session{ok, bad}, batches)
	if got == nil || !strings.Contains(got.Error(), "session 1") {
		t.Fatalf("StepAll error = %v, want session-1 failure", got)
	}
	if ok.T() != 1 {
		t.Fatalf("healthy session stepped %d times, want 1", ok.T())
	}
	if err := StepAll([]*Session{ok}, batches); err == nil {
		t.Fatal("mismatched lengths must error")
	}
}
