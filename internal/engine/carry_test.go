package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// TestNewSessionFromTransplantsCounters: a rebuilt session continues the
// original's accounting — step counter, cost, movement, clamp totals —
// even when the fleet size changed across the rebuild.
func TestNewSessionFromTransplantsCounters(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 2}
	starts := []geom.Point{geom.NewPoint(-3, 0), geom.NewPoint(3, 0)}
	s, err := NewSession(cfg, starts, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Step([]geom.Point{geom.NewPoint(float64(i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	carry := s.Carry()
	if carry.Steps != 10 || carry.Cost != s.Cost() {
		t.Fatalf("carry = %+v does not match the session", carry)
	}

	// Grow the fleet by one server at a new position — the layout change a
	// shard migration performs.
	grown := cfg
	grown.K = 3
	rebuiltStarts := append(s.Positions(), geom.NewPoint(9, 9))
	r, err := NewSessionFrom(grown, rebuiltStarts, &chase{}, Options{}, carry)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != 10 {
		t.Fatalf("rebuilt session at T=%d, want 10", r.T())
	}
	if r.Cost() != s.Cost() {
		t.Fatalf("rebuilt cost %v != original %v", r.Cost(), s.Cost())
	}
	if err := r.Step([]geom.Point{geom.NewPoint(3, 3)}); err != nil {
		t.Fatal(err)
	}
	res := r.Finish()
	if res.Steps != 11 || len(res.Final) != 3 {
		t.Fatalf("rebuilt result = %d steps, %d servers; want 11, 3", res.Steps, len(res.Final))
	}
	if res.Cost.Total() < carry.Cost.Total() {
		t.Fatalf("rebuilt total %v lost carried cost %v", res.Cost, carry.Cost)
	}
	if res.MaxMove < carry.MaxMove {
		t.Fatalf("rebuilt MaxMove %v lost carried %v", res.MaxMove, carry.MaxMove)
	}
}

// TestNewSessionFromRejectsBadCarry: a negative step counter is refused,
// and start-position validation is NewSession's.
func TestNewSessionFromRejectsBadCarry(t *testing.T) {
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 1}
	starts := []geom.Point{geom.NewPoint(0, 0)}
	if _, err := NewSessionFrom(cfg, starts, &chase{}, Options{}, Carry{Steps: -1}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative carry = %v, want error", err)
	}
	if _, err := NewSessionFrom(cfg, nil, &chase{}, Options{}, Carry{}); err == nil {
		t.Fatal("missing starts must be refused")
	}
}
