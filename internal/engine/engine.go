// Package engine is the streaming simulation core of the repository: a
// Session accepts request batches one step at a time, enforces the per-step
// movement cap for every server of the fleet, accounts costs, and notifies
// pluggable Observers after each step. Requests never need to be
// materialized up front, so a session can serve an unbounded live stream in
// constant memory.
//
// The engine drives the general fleet interface core.FleetAlgorithm; the
// paper's single-server model is the K = 1 case (lift a core.Algorithm with
// core.Fleet). The single-server package sim and the fleet package multi
// are thin wrappers over sessions.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// Mode selects how cap violations by an algorithm are handled.
type Mode int

const (
	// Strict aborts the run with an error when the algorithm attempts to
	// move a server farther than its cap (plus tolerance). This is the
	// default: a violation is a bug in the algorithm.
	Strict Mode = iota
	// Clamp projects an over-long move back onto the cap sphere around
	// the server's previous position and continues.
	Clamp
)

// Options configures a session. The zero value gives strict cap checking
// with the default tolerance and no observers.
type Options struct {
	Mode Mode
	// Tol is the relative tolerance for cap checks. Default 1e-9.
	Tol float64
	// Observers are notified after every step, in order.
	Observers []Observer
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Result summarizes a finished session.
type Result struct {
	// Algorithm is the algorithm's reported name.
	Algorithm string
	// Cost is the accumulated total cost.
	Cost core.Cost
	// Final holds the final position of every server.
	Final []geom.Point
	// MaxMove is the largest single-server single-step movement observed.
	MaxMove float64
	// Clamped counts server-moves on which the cap had to be enforced
	// (Clamp mode only).
	Clamped int
	// Steps is the number of steps fed to the session.
	Steps int
}

// ErrFinished is returned by Step after Finish has been called.
var ErrFinished = errors.New("engine: session already finished")

// Session is an in-progress simulation. Feed it one request batch per time
// step with Step, then call Finish for the accumulated Result.
type Session struct {
	cfg      core.Config
	alg      core.FleetAlgorithm
	opts     Options
	cap      float64
	pos      []geom.Point
	scratch  []geom.Point
	prevBuf  []geom.Point
	obs      []Observer
	res      Result
	err      error
	finished bool
}

// NewSession validates the configuration and start positions
// (len(starts) == cfg.Servers()), resets the algorithm, and announces the
// run to the observers.
func NewSession(cfg core.Config, starts []geom.Point, alg core.FleetAlgorithm, opts Options) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(starts) != cfg.Servers() {
		return nil, fmt.Errorf("engine: %d start positions for K=%d servers", len(starts), cfg.Servers())
	}
	if fs, ok := alg.(core.FleetSizer); ok && fs.FleetSize() != cfg.Servers() {
		return nil, fmt.Errorf("engine: %s controls %d servers, config has K=%d", alg.Name(), fs.FleetSize(), cfg.Servers())
	}
	for j, p := range starts {
		if p.Dim() != cfg.Dim {
			return nil, fmt.Errorf("engine: start %d has dim %d, want %d", j, p.Dim(), cfg.Dim)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("engine: start %d is not finite: %v", j, p)
		}
	}
	s := &Session{
		cfg:  cfg,
		alg:  alg,
		opts: opts.withDefaults(),
		cap:  cfg.OnlineCap(),
		pos:  clonePoints(starts),
		obs:  opts.Observers,
	}
	alg.Reset(cfg, clonePoints(starts))
	s.res = Result{Algorithm: alg.Name()}
	if len(s.obs) > 0 {
		announced := clonePoints(s.pos)
		for _, o := range s.obs {
			if b, ok := o.(BeginObserver); ok {
				b.Begin(cfg, announced, s.res.Algorithm)
			}
		}
	}
	return s, nil
}

// NewSingleSession is NewSession for the paper's single-server model: it
// lifts the algorithm and start position to a fleet of size 1.
func NewSingleSession(cfg core.Config, start geom.Point, alg core.Algorithm, opts Options) (*Session, error) {
	if cfg.Servers() != 1 {
		return nil, fmt.Errorf("engine: single-server session with K=%d", cfg.Servers())
	}
	return NewSession(cfg, []geom.Point{start}, core.Fleet(alg), opts)
}

// T returns the number of steps fed so far.
func (s *Session) T() int { return s.res.Steps }

// Algorithm returns the driven algorithm's reported name.
func (s *Session) Algorithm() string { return s.res.Algorithm }

// Cost returns the cost accumulated so far.
func (s *Session) Cost() core.Cost { return s.res.Cost }

// Clamped returns the number of cap-enforced server-moves so far (Clamp
// mode only; includes steps restored from a snapshot).
func (s *Session) Clamped() int { return s.res.Clamped }

// Positions returns a copy of the current server positions.
func (s *Session) Positions() []geom.Point { return clonePoints(s.pos) }

// PositionsInto copies the current server positions into dst, growing it
// (and each point's storage) only when capacity is short, and returns the
// filled slice. It is the allocation-free Positions used by the serving
// layer's pooled ack buffers.
func (s *Session) PositionsInto(dst []geom.Point) []geom.Point {
	if cap(dst) < len(s.pos) {
		grown := make([]geom.Point, len(s.pos))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(s.pos)]
	for i, p := range s.pos {
		dst[i] = geom.CopyInto(dst[i], p)
	}
	return dst
}

// Position returns a copy of server j's current position.
func (s *Session) Position(j int) geom.Point { return s.pos[j].Clone() }

// Step feeds one time step's request batch (which may be empty) to the
// algorithm, enforces the cap on the returned move, accounts the step cost,
// and notifies the observers.
//
// A malformed batch (wrong dimension, non-finite point) is rejected before
// the algorithm sees it; such errors are recoverable and the next Step may
// proceed. Errors raised after the algorithm has moved (arity, bad
// position, strict cap violation) are sticky: the algorithm may have
// advanced its internal state past the engine's, so every later Step
// returns the same error instead of computing from inconsistent state.
func (s *Session) Step(requests []geom.Point) error {
	if s.err != nil {
		return s.err
	}
	if s.finished {
		return ErrFinished
	}
	t := s.res.Steps
	for i, v := range requests {
		if v.Dim() != s.cfg.Dim {
			return fmt.Errorf("engine: request %d in step %d has dim %d, want %d", i, t, v.Dim(), s.cfg.Dim)
		}
		if !v.IsFinite() {
			return fmt.Errorf("engine: request %d in step %d is not finite: %v", i, t, v)
		}
	}
	if err := s.step(requests); err != nil {
		s.err = err
		return err
	}
	return nil
}

// step runs one pre-validated batch through the algorithm. Callers own the
// guard and error-stickiness logic.
func (s *Session) step(requests []geom.Point) error {
	t := s.res.Steps
	var prev []geom.Point
	if len(s.obs) > 0 {
		prev = copyInto(s.prevBuf, s.pos)
		s.prevBuf = prev
	}
	proposed := s.alg.Move(requests)
	if len(proposed) != len(s.pos) {
		return fmt.Errorf("engine: %s returned %d positions for K=%d at step %d", s.res.Algorithm, len(proposed), len(s.pos), t)
	}
	stepMax := 0.0
	stepClamped := 0
	// Double-buffer the position slice: the outgoing one becomes next
	// step's scratch and its point buffers are overwritten in place, so
	// the steady-state hot loop allocates nothing per step.
	next := s.scratch
	if next == nil {
		next = make([]geom.Point, len(s.pos))
	}
	for j, p := range proposed {
		if p.Dim() != s.cfg.Dim {
			return fmt.Errorf("engine: %s returned dim-%d point in dim-%d space at step %d", s.res.Algorithm, p.Dim(), s.cfg.Dim, t)
		}
		if !p.IsFinite() {
			return fmt.Errorf("engine: %s returned non-finite position %v at step %d", s.res.Algorithm, p, t)
		}
		moved := geom.Dist(s.pos[j], p)
		if moved > s.cap*(1+s.opts.Tol) {
			switch s.opts.Mode {
			case Strict:
				return fmt.Errorf("engine: %s moved server %d by %.12g > cap %.12g at step %d", s.res.Algorithm, j, moved, s.cap, t)
			case Clamp:
				p = geom.MoveToward(s.pos[j], p, s.cap)
				moved = geom.Dist(s.pos[j], p)
				stepClamped++
			}
		}
		if moved > stepMax {
			stepMax = moved
		}
		if buf := next[j]; buf != nil {
			copy(buf, p)
		} else {
			next[j] = p.Clone()
		}
	}
	sc := core.FleetStepCost(s.cfg, s.pos, next, requests)
	s.res.Cost = s.res.Cost.Add(sc)
	if stepMax > s.res.MaxMove {
		s.res.MaxMove = stepMax
	}
	s.res.Clamped += stepClamped
	s.scratch = s.pos
	s.pos = next
	s.res.Steps++
	if len(s.obs) > 0 {
		info := StepInfo{
			T:        t,
			Requests: requests,
			Prev:     prev,
			Pos:      s.pos,
			Moved:    stepMax,
			Clamped:  stepClamped,
			Cost:     sc,
		}
		for _, o := range s.obs {
			o.Observe(info)
		}
	}
	return nil
}

// Finish closes the session, notifies the observers, and returns the
// accumulated result. The session accepts no further steps.
func (s *Session) Finish() *Result {
	if s.finished {
		res := s.res
		return &res
	}
	s.finished = true
	s.res.Final = clonePoints(s.pos)
	res := s.res
	for _, o := range s.obs {
		if e, ok := o.(EndObserver); ok {
			e.End(&res)
		}
	}
	return &res
}

// Run executes the fleet algorithm on a complete instance through a
// session — the batch entry point for inputs that are already materialized.
func Run(in *core.FleetInstance, alg core.FleetAlgorithm, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSession(in.Config, in.Starts, alg, opts)
	if err != nil {
		return nil, err
	}
	for _, step := range in.Steps {
		// in.Validate already checked every request, so drive the session
		// without the per-step revalidation Step would repeat.
		if err := s.step(step.Requests); err != nil {
			s.err = err
			return nil, err
		}
	}
	return s.Finish(), nil
}

func clonePoints(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}

// copyInto copies the point values of src into dst's buffers, allocating
// only what dst is missing, and returns the filled buffer.
func copyInto(dst, src []geom.Point) []geom.Point {
	if dst == nil {
		return clonePoints(src)
	}
	for i, p := range src {
		copy(dst[i], p)
	}
	return dst
}
