package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func cfg2(k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: core.MoveFirst, K: k}
}

// chase moves every server full speed toward the first request.
type chase struct {
	cfg core.Config
	pos []geom.Point
}

func (c *chase) Name() string { return "chase" }
func (c *chase) Reset(cfg core.Config, starts []geom.Point) {
	c.cfg = cfg
	c.pos = starts
}
func (c *chase) Move(reqs []geom.Point) []geom.Point {
	if len(reqs) == 0 {
		return c.pos
	}
	for j := range c.pos {
		c.pos[j] = geom.MoveToward(c.pos[j], reqs[0], c.cfg.OnlineCap())
	}
	return c.pos
}

// teleport jumps every server onto the first request, ignoring the cap.
type teleport struct{ pos []geom.Point }

func (b *teleport) Name() string { return "teleport" }
func (b *teleport) Reset(_ core.Config, starts []geom.Point) {
	b.pos = starts
}
func (b *teleport) Move(reqs []geom.Point) []geom.Point {
	if len(reqs) > 0 {
		for j := range b.pos {
			b.pos[j] = reqs[0].Clone()
		}
	}
	return b.pos
}

func TestNewSessionValidates(t *testing.T) {
	if _, err := NewSession(core.Config{}, nil, &chase{}, Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewSession(cfg2(2), []geom.Point{pt(0, 0)}, &chase{}, Options{}); err == nil {
		t.Fatal("start-count mismatch accepted")
	}
	if _, err := NewSession(cfg2(1), []geom.Point{pt(0)}, &chase{}, Options{}); err == nil {
		t.Fatal("wrong-dimension start accepted")
	}
	if _, err := NewSession(cfg2(1), []geom.Point{pt(math.NaN(), 0)}, &chase{}, Options{}); err == nil {
		t.Fatal("non-finite start accepted")
	}
}

func TestSessionFleetCostAccounting(t *testing.T) {
	// Two servers 10 apart, one request next to each: the nearest server
	// serves, and only movement toward the first request is charged.
	s, err := NewSession(cfg2(2), []geom.Point{pt(0, 0), pt(10, 0)}, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]geom.Point{pt(1, 0), pt(9, 0)}); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	// Both servers move cap=1 toward (1,0): positions (1,0) and (9,0).
	// Move cost: D·(1+1) = 4. Serve: 0 for (1,0), 0 for (9,0).
	if math.Abs(res.Cost.Move-4) > 1e-9 || math.Abs(res.Cost.Serve-0) > 1e-9 {
		t.Fatalf("cost = %+v", res.Cost)
	}
	if res.Steps != 1 {
		t.Fatalf("Steps = %d", res.Steps)
	}
}

func TestSessionStrictRejectsOverspeed(t *testing.T) {
	in := &core.FleetInstance{
		Config: cfg2(2),
		Starts: []geom.Point{pt(0, 0), pt(10, 0)},
		Steps:  []core.Step{{Requests: []geom.Point{pt(5, 5)}}},
	}
	if _, err := Run(in, &teleport{}, Options{}); err == nil {
		t.Fatal("teleporting fleet accepted in strict mode")
	}
}

func TestSessionClampPerServer(t *testing.T) {
	// Clamp mode clamps each over-cap server independently and counts
	// every clamped server-move.
	in := &core.FleetInstance{
		Config: cfg2(2),
		Starts: []geom.Point{pt(0, 0), pt(10, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(5, 0)}},
			{Requests: []geom.Point{pt(5, 0)}},
		},
	}
	res, err := Run(in, &teleport{}, Options{Mode: Clamp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clamped != 4 {
		t.Fatalf("Clamped = %d, want 4 (2 servers × 2 steps)", res.Clamped)
	}
	if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
		t.Fatalf("MaxMove = %v", res.MaxMove)
	}
	// Clamped positions walk toward the request one cap per step.
	if !res.Final[0].ApproxEqual(pt(2, 0), 1e-9) || !res.Final[1].ApproxEqual(pt(8, 0), 1e-9) {
		t.Fatalf("Final = %v", res.Final)
	}
}

func TestSessionRejectsArityAndBadPoints(t *testing.T) {
	short := &arity{n: 1}
	in := &core.FleetInstance{
		Config: cfg2(2),
		Starts: []geom.Point{pt(0, 0), pt(10, 0)},
		Steps:  []core.Step{{Requests: []geom.Point{pt(1, 1)}}},
	}
	if _, err := Run(in, short, Options{}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	nan := &arity{n: 2, bad: true}
	if _, err := Run(in, nan, Options{}); err == nil {
		t.Fatal("NaN position accepted")
	}
}

type arity struct {
	n   int
	bad bool
	pos []geom.Point
}

func (a *arity) Name() string { return "arity" }
func (a *arity) Reset(_ core.Config, starts []geom.Point) {
	a.pos = starts
}
func (a *arity) Move(_ []geom.Point) []geom.Point {
	out := make([]geom.Point, a.n)
	for i := range out {
		out[i] = a.pos[0].Clone()
		if a.bad {
			out[i][0] = math.NaN()
		}
	}
	return out
}

func TestTraceObserverRecords(t *testing.T) {
	in := &core.FleetInstance{
		Config: cfg2(1),
		Starts: []geom.Point{pt(0, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(5, 0)}},
			{Requests: []geom.Point{pt(5, 0)}},
		},
	}
	tr := &TraceObserver{}
	res, err := Run(in, &chase{}, Options{Observers: []Observer{tr}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("recorded %d steps", len(tr.Records))
	}
	var sum core.Cost
	for _, rec := range tr.Records {
		sum = sum.Add(rec.Cost)
	}
	if sum != res.Cost {
		t.Fatalf("trace cost %v != result cost %v", sum, res.Cost)
	}
	if !tr.Records[1].Pos[0].Equal(res.Final[0]) {
		t.Fatal("last trace position != final")
	}
}

func TestBeginEndHooksFire(t *testing.T) {
	h := &hooks{}
	in := &core.FleetInstance{
		Config: cfg2(1),
		Starts: []geom.Point{pt(3, 4)},
		Steps:  []core.Step{{Requests: []geom.Point{pt(3, 4)}}},
	}
	if _, err := Run(in, &chase{}, Options{Observers: []Observer{h}}); err != nil {
		t.Fatal(err)
	}
	if h.begins != 1 || h.steps != 1 || h.ends != 1 {
		t.Fatalf("hooks = %+v", h)
	}
	if !h.start.Equal(pt(3, 4)) {
		t.Fatalf("Begin saw start %v", h.start)
	}
	if h.endResult == nil || h.endResult.Steps != 1 {
		t.Fatalf("End saw %+v", h.endResult)
	}
}

type hooks struct {
	begins, steps, ends int
	start               geom.Point
	endResult           *Result
}

func (h *hooks) Begin(_ core.Config, starts []geom.Point, _ string) {
	h.begins++
	h.start = starts[0].Clone()
}
func (h *hooks) Observe(_ StepInfo) { h.steps++ }
func (h *hooks) End(res *Result)    { h.ends++; h.endResult = res }

func TestMoveStatsObserver(t *testing.T) {
	in := &core.FleetInstance{
		Config: cfg2(1),
		Starts: []geom.Point{pt(0, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(10, 0)}}, // full cap move
			{Requests: []geom.Point{pt(1, 0)}},  // tiny move back
		},
	}
	ms := &MoveStats{}
	res, err := Run(in, &chase{}, Options{Observers: []Observer{ms}})
	if err != nil {
		t.Fatal(err)
	}
	if ms.Steps != 2 {
		t.Fatalf("Steps = %d", ms.Steps)
	}
	if math.Abs(ms.MaxMove-res.MaxMove) > 1e-12 {
		t.Fatalf("MaxMove %v != result %v", ms.MaxMove, res.MaxMove)
	}
	if ms.CapHits != 1 {
		t.Fatalf("CapHits = %d, want 1", ms.CapHits)
	}
}

func TestMetricsObserver(t *testing.T) {
	in := &core.FleetInstance{
		Config: cfg2(1),
		Starts: []geom.Point{pt(0, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(2, 0), pt(3, 0)}},
			{},
		},
	}
	m := &Metrics{}
	res, err := Run(in, &chase{}, Options{Observers: []Observer{m}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 2 || m.Requests != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Cost != res.Cost {
		t.Fatalf("metrics cost %v != result %v", m.Cost, res.Cost)
	}
	if !(m.AvgStepCost > 0) {
		t.Fatalf("AvgStepCost = %v", m.AvgStepCost)
	}
}

func TestRunMatchesManualSession(t *testing.T) {
	in := &core.FleetInstance{
		Config: cfg2(2),
		Starts: []geom.Point{pt(0, 0), pt(10, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(1, 0), pt(9, 0)}},
			{Requests: []geom.Point{pt(2, 2)}},
			{},
		},
	}
	a, err := Run(in, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(in.Config, in.Starts, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range in.Steps {
		if err := s.Step(st.Requests); err != nil {
			t.Fatal(err)
		}
	}
	b := s.Finish()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run differs from manual session:\n%+v\nvs\n%+v", a, b)
	}
}

func TestStepAfterFinish(t *testing.T) {
	s, err := NewSession(cfg2(1), []geom.Point{pt(0, 0)}, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Finish()
	if err := s.Step(nil); err != ErrFinished {
		t.Fatalf("Step after Finish = %v, want ErrFinished", err)
	}
}

func TestStepErrorIsSticky(t *testing.T) {
	// After a strict cap violation the algorithm's internal state may be
	// ahead of the engine's; the session must refuse further steps with
	// the same error instead of computing from inconsistent state.
	s, err := NewSession(cfg2(1), []geom.Point{pt(0, 0)}, &teleport{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Step([]geom.Point{pt(50, 0)})
	if first == nil {
		t.Fatal("cap violation accepted")
	}
	if again := s.Step([]geom.Point{pt(0.1, 0)}); again != first {
		t.Fatalf("retry after error = %v, want sticky %v", again, first)
	}
}

func TestLiftedAlgorithmRejectsLargerFleet(t *testing.T) {
	// A core.Fleet-lifted single-server algorithm on a K=2 config must be
	// rejected with an error, not a panic at Reset time.
	starts := []geom.Point{pt(0, 0), pt(10, 0)}
	if _, err := NewSession(cfg2(2), starts, core.Fleet(core.NewMtC()), Options{}); err == nil {
		t.Fatal("size-1 lift accepted for K=2")
	}
}

func TestBadBatchIsRecoverable(t *testing.T) {
	// A malformed request batch is rejected before the algorithm sees it,
	// so a live stream survives it: the next valid batch proceeds.
	s, err := NewSession(cfg2(1), []geom.Point{pt(0, 0)}, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]geom.Point{pt(math.NaN(), 0)}); err == nil {
		t.Fatal("NaN request accepted")
	}
	if err := s.Step([]geom.Point{pt(1, 0)}); err != nil {
		t.Fatalf("valid batch after bad batch rejected: %v", err)
	}
	res := s.Finish()
	if res.Steps != 1 {
		t.Fatalf("Steps = %d, want 1 (bad batch must not count)", res.Steps)
	}
}

func TestEmptyBatchOnlyMoves(t *testing.T) {
	// An empty batch is legal in a stream: no serve cost, server may still
	// reposition (chase stays put without requests).
	s, err := NewSession(cfg2(1), []geom.Point{pt(0, 0)}, &chase{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(nil); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if res.Cost.Total() != 0 {
		t.Fatalf("empty-batch step cost %v", res.Cost)
	}
}
