package engine

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// StepAll feeds one batch to every session concurrently — one goroutine per
// session per call. Sessions are independent state machines (each owns its
// algorithm, positions, and observers), so stepping them in parallel is
// safe as long as no session appears twice in the slice; this is the
// within-step parallelism the shard router uses for per-region fleets.
//
// Every session is stepped even if another one fails, so the slice stays
// in a consistent "everyone saw batch t" state; the returned error wraps
// the first failure by session index. A single session is stepped inline
// without spawning a goroutine.
func StepAll(sessions []*Session, batches [][]geom.Point) error {
	if len(sessions) != len(batches) {
		return fmt.Errorf("engine: StepAll got %d sessions and %d batches", len(sessions), len(batches))
	}
	switch len(sessions) {
	case 0:
		return nil
	case 1:
		return sessions[0].Step(batches[0])
	}
	errs := make([]error, len(sessions))
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sessions[i].Step(batches[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: session %d: %w", i, err)
		}
	}
	return nil
}
