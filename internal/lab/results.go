// The results layer: per-cell summary.json files (the byte-reproducible
// artifacts of the determinism contract) and the sweep-level report.json
// and bench.json aggregates.

package lab

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/fsx"
	"repro/internal/wire"
)

// writeCellSummary writes results/<stamp>/<cell>/summary.json. The file is
// indented, key-ordered json.MarshalIndent output with a trailing newline —
// fully determined by the summary value, which is what makes the
// determinism contract a byte comparison.
func writeCellSummary(outDir string, sum wire.LabCellSummary) error {
	dir := filepath.Join(outDir, sum.Cell)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "summary.json"), sum)
}

// writeReport writes the sweep aggregates: report.json (the full
// cross-cell view) and bench.json (the compact lab_matrix entry bench.sh
// splices into BENCH_*.json).
func writeReport(outDir string, report *wire.LabReport) error {
	if err := writeJSON(filepath.Join(outDir, "report.json"), report); err != nil {
		return err
	}
	return writeJSON(filepath.Join(outDir, "bench.json"), report.Bench)
}

// writeJSON marshals v indented and writes it through fsx.WriteFileAtomic
// (tmp + fsync + rename), so a sweep interrupted mid-write — or a system
// crash right after it — never leaves a torn or zero-length summary a
// resume would half-trust.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return fsx.WriteFileAtomic(path, data, nil)
}
