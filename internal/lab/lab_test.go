package lab

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

func testSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(`{
		"name": "test", "seed": 11, "t": 40, "requests": 2,
		"workloads": [{"generator": "hotspot"}, {"generator": "uniform"}],
		"shards": [2], "k": [2],
		"rebalance": ["static", "threshold"],
		"rebalance_window": 10
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSpecExpansion(t *testing.T) {
	spec := testSpec(t)
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	want := []string{
		"hotspot_s2_k2_static_strict",
		"hotspot_s2_k2_threshold_strict",
		"uniform_s2_k2_static_strict",
		"uniform_s2_k2_threshold_strict",
	}
	for i, c := range cells {
		if c.Name != want[i] {
			t.Errorf("cell %d: got %q, want %q", i, c.Name, want[i])
		}
	}
}

func TestSpecRejectsBadMatrices(t *testing.T) {
	cases := map[string]string{
		"no workloads":        `{"shards": [2], "k": [2]}`,
		"two sources":         `{"workloads": [{"generator": "uniform", "adversary": "theorem1"}]}`,
		"threshold unsharded": `{"workloads": [{"generator": "uniform"}], "shards": [1], "k": [2], "rebalance": ["threshold"]}`,
		"threshold k=1":       `{"workloads": [{"generator": "uniform"}], "shards": [2], "k": [1], "rebalance": ["threshold"]}`,
		"unknown policy":      `{"workloads": [{"generator": "uniform"}], "rebalance": ["magic"]}`,
		"wire without live":   `{"workloads": [{"generator": "uniform"}], "wire": ["binary"]}`,
		"unknown field":       `{"workloads": [{"generator": "uniform"}], "sharrds": [2]}`,
		"duplicate axis":      `{"workloads": [{"generator": "uniform"}], "shards": [2, 2], "k": [2]}`,
	}
	for name, js := range cases {
		if _, err := ParseSpec([]byte(js)); err == nil {
			t.Errorf("%s: spec accepted, want error", name)
		}
	}
}

func runSweep(t *testing.T, spec *Spec, outDir string, parallel int) *wire.LabReport {
	t.Helper()
	r := &Runner{Spec: spec, OutDir: outDir, Parallel: parallel}
	report, err := r.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestSweepDeterministic is the determinism contract: two sweeps of the
// same spec and seed — at different parallelism — produce byte-identical
// summary.json files.
func TestSweepDeterministic(t *testing.T) {
	spec := testSpec(t)
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	repA := runSweep(t, spec, dirA, 4)
	repB := runSweep(t, spec, dirB, 1)
	if repA.Ran != 4 || repB.Ran != 4 {
		t.Fatalf("ran %d / %d cells, want 4 each", repA.Ran, repB.Ran)
	}
	for _, sum := range repA.Summaries {
		a, err := os.ReadFile(filepath.Join(dirA, sum.Cell, "summary.json"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, sum.Cell, "summary.json"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("cell %s: summaries differ across sweeps:\n%s\nvs\n%s", sum.Cell, a, b)
		}
	}
}

// TestSweepResume reruns a sweep over an existing results directory and
// expects every cell to be adopted, not re-executed.
func TestSweepResume(t *testing.T) {
	spec := testSpec(t)
	dir := t.TempDir()
	first := runSweep(t, spec, dir, 2)
	if first.Ran != 4 || first.Skipped != 0 {
		t.Fatalf("first sweep: ran %d, skipped %d", first.Ran, first.Skipped)
	}
	second := runSweep(t, spec, dir, 2)
	if second.Ran != 0 || second.Skipped != 4 {
		t.Fatalf("second sweep: ran %d, skipped %d, want 0/4", second.Ran, second.Skipped)
	}
	// A rerun forces execution again.
	r := &Runner{Spec: spec, OutDir: dir, Parallel: 2, Rerun: true}
	third, err := r.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.Ran != 4 {
		t.Fatalf("rerun sweep: ran %d, want 4", third.Ran)
	}
}

func TestSweepSummaries(t *testing.T) {
	spec := testSpec(t)
	dir := t.TempDir()
	report := runSweep(t, spec, dir, 2)
	for _, sum := range report.Summaries {
		if sum.T != spec.T {
			t.Errorf("cell %s: T = %d, want %d", sum.Cell, sum.T, spec.T)
		}
		if sum.Requests != spec.T*spec.Requests {
			t.Errorf("cell %s: requests = %d, want %d", sum.Cell, sum.Requests, spec.T*spec.Requests)
		}
		if sum.Cost.Total <= 0 || sum.CostPerStep <= 0 {
			t.Errorf("cell %s: no cost recorded: %+v", sum.Cell, sum.Cost)
		}
		if sum.Transport != "inproc" {
			t.Errorf("cell %s: transport %q", sum.Cell, sum.Transport)
		}
		if len(sum.FinalKs) != 2 {
			t.Errorf("cell %s: final layout %v, want 2 shards", sum.Cell, sum.FinalKs)
		}
	}
	// The bench entry pairs static and threshold runs of both workloads.
	be := report.Bench
	if be.Cells != 4 || len(be.Workloads) != 2 {
		t.Fatalf("bench entry: %+v", be)
	}
	if be.StaticCostPerStep <= 0 || be.RebalanceCostPerStep <= 0 {
		t.Fatalf("bench entry has no paired averages: %+v", be)
	}
	if len(be.Best) != 2 {
		t.Fatalf("bench entry best list: %+v", be.Best)
	}
	// report.json and bench.json landed next to the summaries.
	for _, f := range []string{"report.json", "bench.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing sweep aggregate %s: %v", f, err)
		}
	}
}

func TestBenchEntryPairsOnlyMatchedCells(t *testing.T) {
	sums := []wire.LabCellSummary{
		{Cell: "a", Workload: "w", Shards: 2, K: 2, CapMode: "strict", Transport: "inproc", Rebalance: "static", CostPerStep: 10},
		{Cell: "b", Workload: "w", Shards: 2, K: 2, CapMode: "strict", Transport: "inproc", Rebalance: "threshold", CostPerStep: 5},
		// Unpaired: static only at shards=4.
		{Cell: "c", Workload: "w", Shards: 4, K: 2, CapMode: "strict", Transport: "inproc", Rebalance: "static", CostPerStep: 100},
	}
	be := BenchEntry("m", sums)
	if be.StaticCostPerStep != 10 || be.RebalanceCostPerStep != 5 {
		t.Fatalf("unpaired cell leaked into the averages: %+v", be)
	}
	if be.CostSavedFrac != 0.5 {
		t.Fatalf("cost saved = %g, want 0.5", be.CostSavedFrac)
	}
	if len(be.Best) != 1 || be.Best[0].Cell != "b" {
		t.Fatalf("best = %+v, want cell b", be.Best)
	}
}

// TestInstanceSharedAcrossCells checks the stream-keying rule: every cell
// serving the same workload label gets the identical request sequence.
func TestInstanceSharedAcrossCells(t *testing.T) {
	spec := testSpec(t)
	instA := newInstances(spec, ".")
	instB := newInstances(spec, ".")
	w := WorkloadSpec{Generator: "hotspot"}
	a, err := instA.For(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := instB.For(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("instance lengths differ")
	}
	for i := range a.Steps {
		if len(a.Steps[i].Requests) != len(b.Steps[i].Requests) {
			t.Fatalf("step %d: request counts differ", i)
		}
		for j := range a.Steps[i].Requests {
			if !a.Steps[i].Requests[j].Equal(b.Steps[i].Requests[j]) {
				t.Fatalf("step %d request %d differs", i, j)
			}
		}
	}
}
