package lab

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wire"
)

// sseBody is a canned GET /metrics/stream transcript: two metrics events,
// one rebalance, one failover — in the server's exact framing.
const sseBody = "id: 0\nevent: metrics\ndata: {\"v\":1,\"t\":0,\"batched\":2,\"step_cost\":{\"move\":1,\"serve\":0.5,\"total\":1.5},\"steps\":1,\"requests\":2,\"cost\":{\"move\":1,\"serve\":0.5,\"total\":1.5},\"avg_step_cost\":1.5,\"queue_depth\":0,\"rejected\":0}\n\n" +
	"event: rebalance\ndata: {\"v\":1,\"t\":1,\"from\":0,\"to\":1,\"server\":[3,0],\"ks\":[1,3]}\n\n" +
	"event: failover\ndata: {\"v\":1,\"t\":2,\"shard\":1,\"from\":\"a:1\",\"to\":\"b:2\"}\n\n" +
	"id: 3\nevent: metrics\ndata: {\"v\":1,\"t\":3,\"batched\":1,\"step_cost\":{\"move\":2,\"serve\":1,\"total\":3},\"steps\":4,\"requests\":7,\"cost\":{\"move\":5,\"serve\":2,\"total\":7},\"avg_step_cost\":1.75,\"queue_depth\":1,\"rejected\":2,\"dropped\":1}\n\n"

func TestFollowSSEDispatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte(sseBody))
	}))
	defer srv.Close()

	var metrics []wire.MetricsEvent
	var rebalances []wire.RebalanceEvent
	var failovers []wire.FailoverEvent
	err := FollowSSE(context.Background(), srv.URL, SSEHandlers{
		Metrics:   func(ev wire.MetricsEvent) { metrics = append(metrics, ev) },
		Rebalance: func(ev wire.RebalanceEvent) { rebalances = append(rebalances, ev) },
		Failover:  func(ev wire.FailoverEvent) { failovers = append(failovers, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 2 || len(rebalances) != 1 || len(failovers) != 1 {
		t.Fatalf("dispatched %d/%d/%d events, want 2/1/1", len(metrics), len(rebalances), len(failovers))
	}
	if metrics[1].T != 3 || metrics[1].Cost.Total != 7 || metrics[1].Dropped != 1 {
		t.Errorf("second metrics event decoded wrong: %+v", metrics[1])
	}
	if rebalances[0].From != 0 || rebalances[0].To != 1 || len(rebalances[0].Ks) != 2 {
		t.Errorf("rebalance event decoded wrong: %+v", rebalances[0])
	}
	if failovers[0].Shard != 1 || failovers[0].To != "b:2" {
		t.Errorf("failover event decoded wrong: %+v", failovers[0])
	}
}

func TestDashboardRender(t *testing.T) {
	d := &Dashboard{Points: 10, Width: 40, Height: 8}
	if got := d.Render(); !strings.Contains(got, "waiting for metrics") {
		t.Fatalf("empty dashboard render: %q", got)
	}
	d.ObserveMetrics(wire.MetricsEvent{T: 0, StepCost: wire.Cost{Total: 1.5}, Steps: 1, Requests: 2, Cost: wire.Cost{Move: 1, Serve: 0.5, Total: 1.5}, AvgStepCost: 1.5})
	d.ObserveMetrics(wire.MetricsEvent{T: 1, StepCost: wire.Cost{Total: 3}, Steps: 2, Requests: 4, Cost: wire.Cost{Move: 3, Serve: 1.5, Total: 4.5}, AvgStepCost: 2.25})
	d.ObserveRebalance(wire.RebalanceEvent{T: 1, From: 0, To: 1, Ks: []int{1, 3}})
	d.ObserveFailover(wire.FailoverEvent{T: 2, Shard: 1, From: "a:1", To: "b:2"})
	d.ObserveState(wire.StateResponse{
		Algorithm: "MtC-k×2",
		Shards: []wire.ShardState{
			{Shard: 0, Servers: 1, Requests: 3},
			{Shard: 1, Servers: 3, Requests: 1},
		},
	})
	out := d.Render()
	for _, want := range []string{
		"step 1",
		"rebalances 1",
		"failovers 1",
		"step cost over time",
		"shard 0",
		"k=3",
		"rebalance: shard 0 -> 1",
		"failover: shard 1 a:1 -> b:2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard frame missing %q:\n%s", want, out)
		}
	}
	// The history ring stays bounded.
	for i := 2; i < 50; i++ {
		d.ObserveMetrics(wire.MetricsEvent{T: i, StepCost: wire.Cost{Total: 1}})
	}
	d.mu.Lock()
	n := len(d.ts)
	d.mu.Unlock()
	if n != 10 {
		t.Fatalf("history ring holds %d points, want 10", n)
	}
}
