// Instance construction for lab cells: one request sequence per workload
// label, shared by every cell that serves it, drawn from an xrand stream
// keyed by that label so the sequence survives matrix reordering and
// parallel scheduling.

package lab

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// instances memoizes the per-workload request sequences of one sweep.
type instances struct {
	spec *Spec
	// baseDir resolves relative trace paths (the matrix file's directory).
	baseDir string

	mu    sync.Mutex
	cache map[string]*core.Instance
}

func newInstances(spec *Spec, baseDir string) *instances {
	return &instances{spec: spec, baseDir: baseDir, cache: map[string]*core.Instance{}}
}

// For returns the workload's instance, building it on first use.
func (b *instances) For(w WorkloadSpec) (*core.Instance, error) {
	label := w.Label()
	b.mu.Lock()
	defer b.mu.Unlock()
	if in, ok := b.cache[label]; ok {
		return in, nil
	}
	in, err := b.build(w)
	if err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("lab: workload %s produced invalid instance: %w", label, err)
	}
	b.cache[label] = in
	return in, nil
}

func (b *instances) build(w WorkloadSpec) (*core.Instance, error) {
	cfg := b.spec.BaseConfig()
	r := xrand.NewStream(b.spec.Seed, b.spec.Stream(w))
	switch {
	case w.Generator != "":
		g, err := workload.ByName(w.Generator)
		if err != nil {
			return nil, err
		}
		g = workload.WithRequests(g, b.spec.Requests)
		return g.Generate(r, cfg, b.spec.T), nil
	case w.Adversary != "":
		return buildAdversary(w.Adversary, cfg, b.spec.T, b.spec.Requests, r)
	case w.Trace != "":
		path := w.Trace
		if !filepath.IsAbs(path) {
			path = filepath.Join(b.baseDir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("lab: trace: %w", err)
		}
		defer f.Close()
		return traceio.ReadInstance(f)
	default:
		return nil, fmt.Errorf("lab: empty workload spec")
	}
}

// buildAdversary maps a construction name onto the lower-bound generators
// of internal/adversary. The generated instance's own config (dimension,
// serve order, augmentation) rides into the cell.
func buildAdversary(name string, cfg core.Config, T, requests int, r *xrand.Rand) (*core.Instance, error) {
	switch name {
	case "theorem1":
		g := adversary.Theorem1(adversary.Theorem1Params{T: T, D: cfg.D, M: cfg.M, Dim: cfg.Dim}, r)
		return g.Instance, nil
	case "theorem2":
		g := adversary.Theorem2(adversary.Theorem2Params{
			T: T, D: cfg.D, M: cfg.M, Delta: cfg.Delta, Dim: cfg.Dim,
			Rmin: requests, Rmax: 8 * requests,
		}, r)
		return g.Instance, nil
	case "theorem3":
		g := adversary.Theorem3(adversary.Theorem3Params{
			T: T, D: cfg.D, M: cfg.M, Delta: cfg.Delta, Dim: cfg.Dim, R: requests,
		}, r)
		return g.Instance, nil
	default:
		return nil, fmt.Errorf("lab: unknown adversary %q (theorem1|theorem2|theorem3)", name)
	}
}
