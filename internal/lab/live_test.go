package lab

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLiveSweepSmoke runs a tiny live-mode matrix against a freshly built
// mobserve binary: spawned server per cell, streamclient drive, SSE event
// follower, /metrics + /state scrape. Live cells are not byte-
// deterministic (real processes, real scheduling), so the assertions are
// on serving facts, not bytes.
func TestLiveSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live-mode smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mobserve")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/mobserve").CombinedOutput(); err != nil {
		t.Fatalf("building mobserve: %v\n%s", err, out)
	}

	spec, err := ParseSpec([]byte(`{
		"name": "live-smoke", "seed": 5, "t": 30, "requests": 2,
		"mode": "live",
		"workloads": [{"generator": "hotspot"}],
		"shards": [2], "k": [2],
		"rebalance": ["static"],
		"wire": ["binary", "ndjson"],
		"window": [1, 4]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, OutDir: t.TempDir(), Parallel: 2, MobserveBin: bin}
	report, err := r.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != 4 {
		t.Fatalf("ran %d cells, want 4", report.Ran)
	}
	for _, sum := range report.Summaries {
		if sum.Transport != "stream" {
			t.Errorf("cell %s: transport %q, want stream", sum.Cell, sum.Transport)
		}
		if sum.T != 30 || sum.Requests != 60 {
			t.Errorf("cell %s: served %d steps / %d requests, want 30/60", sum.Cell, sum.T, sum.Requests)
		}
		if sum.Cost.Total <= 0 {
			t.Errorf("cell %s: no cost recorded", sum.Cell)
		}
		if sum.Wire != "binary" && sum.Wire != "ndjson" {
			t.Errorf("cell %s: negotiated wire %q", sum.Cell, sum.Wire)
		}
		if sum.Window < 1 {
			t.Errorf("cell %s: negotiated window %d", sum.Cell, sum.Window)
		}
		if len(sum.FinalKs) != 2 {
			t.Errorf("cell %s: final layout %v, want 2 shards", sum.Cell, sum.FinalKs)
		}
	}
}
