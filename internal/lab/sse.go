// The client side of GET /metrics/stream: a minimal server-sent-events
// reader dispatching the feed's three typed events. Shared by the live
// cell runner (best-effort rebalance/failover counts) and the moblab
// watch dashboard.

package lab

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/wire"
)

// SSEHandlers receives the typed events of one metrics stream. Nil fields
// skip their event type.
type SSEHandlers struct {
	Metrics   func(wire.MetricsEvent)
	Rebalance func(wire.RebalanceEvent)
	Failover  func(wire.FailoverEvent)
}

// FollowSSE connects to an SSE endpoint (GET /metrics/stream) and
// dispatches events until ctx is done or the server closes the stream.
// A clean server-side close (or ctx cancellation) returns nil.
func FollowSSE(ctx context.Context, url string, h SSEHandlers) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("lab: %s: %s", url, resp.Status)
	}

	// SSE framing: "event:" and "data:" lines, a blank line ends the
	// event. The feed writes single-line data payloads, so no data
	// concatenation is needed.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event, data := "", []byte(nil)
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			if len(data) > 0 {
				if err := dispatchSSE(event, data, h); err != nil {
					return err
				}
			}
			event, data = "", nil
		case bytes.HasPrefix(line, []byte("event:")):
			event = strings.TrimSpace(string(line[len("event:"):]))
		case bytes.HasPrefix(line, []byte("data:")):
			data = append([]byte(nil), bytes.TrimSpace(line[len("data:"):])...)
		}
		// "id:" lines and comments are cursor/keepalive chrome; skip.
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

func dispatchSSE(event string, data []byte, h SSEHandlers) error {
	switch event {
	case "metrics":
		if h.Metrics == nil {
			return nil
		}
		var ev wire.MetricsEvent
		if err := wire.UnmarshalStrict(data, &ev); err != nil {
			return fmt.Errorf("lab: metrics event: %w", err)
		}
		h.Metrics(ev)
	case "rebalance":
		if h.Rebalance == nil {
			return nil
		}
		var ev wire.RebalanceEvent
		if err := wire.UnmarshalStrict(data, &ev); err != nil {
			return fmt.Errorf("lab: rebalance event: %w", err)
		}
		h.Rebalance(ev)
	case "failover":
		if h.Failover == nil {
			return nil
		}
		var ev wire.FailoverEvent
		if err := wire.UnmarshalStrict(data, &ev); err != nil {
			return fmt.Errorf("lab: failover event: %w", err)
		}
		h.Failover(ev)
	}
	return nil
}
