// Package lab is the scenario lab: a declarative experiment matrix over
// the serving stack's policy axes — request source (workload generator,
// adversary construction, or replayed traceio file) × shard count × fleet
// size × rebalance policy × cap mode × transport knobs — a cell runner
// that drives every combination through the real serving stack (an
// in-process protocol.Service for fast cells, a spawned mobserve fed over
// internal/streamclient for live cells), and a results layer writing
// results/<stamp>/<cell>/summary.json plus an aggregated cross-cell
// report whose compact bench entry rides the BENCH_*.json trajectory.
//
// Determinism contract: an in-process cell is a pure function of (matrix
// spec, seed). Instances are generated from xrand streams keyed by the
// workload's label (not its position in the file, and not the sweep's
// scheduling), cells are driven step-by-step in lockstep with the Watch
// feed, and summaries carry no wall-clock fields — so rerunning a sweep
// with the same spec and seed reproduces every summary.json byte for
// byte, regardless of -parallel. Live cells (spawned servers) record
// negotiated transport facts and real serving metrics; their event
// counts ride the SSE feed's drop policy and are best-effort.
package lab

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/wire"
)

// WorkloadSpec names one request source: exactly one of the three fields
// is set.
type WorkloadSpec struct {
	// Generator is a workload.ByName generator ("uniform", "hotspot",
	// "clusters", "burst", "zipf", "drift").
	Generator string `json:"generator,omitempty"`
	// Adversary is a lower-bound construction ("theorem1", "theorem2",
	// "theorem3"); the instance's own config (dim, serve order, delta)
	// overrides the matrix defaults.
	Adversary string `json:"adversary,omitempty"`
	// Trace is a traceio instance file, relative to the matrix file.
	Trace string `json:"trace,omitempty"`
}

// Label is the workload's cell-name token and its stable random-stream
// key: "hotspot", "adv-theorem1", or "trace-<basename>".
func (w WorkloadSpec) Label() string {
	switch {
	case w.Generator != "":
		return w.Generator
	case w.Adversary != "":
		return "adv-" + w.Adversary
	case w.Trace != "":
		base := filepath.Base(w.Trace)
		base = strings.TrimSuffix(base, filepath.Ext(base))
		return "trace-" + sanitize(base)
	default:
		return "empty"
	}
}

func (w WorkloadSpec) validate() error {
	set := 0
	for _, s := range []string{w.Generator, w.Adversary, w.Trace} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("lab: workload must set exactly one of generator|adversary|trace, got %+v", w)
	}
	return nil
}

// sanitize maps a free-form token onto the cell-name alphabet.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}

// Spec is the declarative experiment matrix: global instance parameters
// plus one value list per policy axis. The cell set is the cross product
// of the axes. Zero fields take the documented defaults.
type Spec struct {
	// Name identifies the matrix in reports. Default "matrix".
	Name string `json:"name"`
	// Seed is the base seed every cell's random stream derives from.
	Seed uint64 `json:"seed"`
	// T is the instance length in steps. Default 200.
	T int `json:"t"`
	// Requests is the fixed per-step request count fed to the workload
	// generators (adversary and trace sources bring their own counts).
	// Default 1.
	Requests int `json:"requests"`
	// Dim, D, M, Delta are the instance parameters (core.Config).
	// Defaults 2, 2, 1, 0.5.
	Dim   int     `json:"dim"`
	D     float64 `json:"d"`
	M     float64 `json:"m"`
	Delta float64 `json:"delta"`
	// Span is the sharded interval half-width: shards split [-span, span]
	// on axis 0. Default 25.
	Span float64 `json:"span"`
	// Radius is the initial fleet spread (mobserve's -radius). Default 5.
	Radius float64 `json:"radius"`
	// Alg pins the per-shard algorithm (mtc|mtck|lazy); empty picks mtc
	// for a single unsharded server and mtck otherwise.
	Alg string `json:"alg,omitempty"`

	// Workloads, Shards, K, Rebalance, and CapModes are the matrix axes.
	// Rebalance values are "static" and "threshold" (default [static]);
	// CapModes are "strict" and "clamp" (default [strict]).
	Workloads []WorkloadSpec `json:"workloads"`
	Shards    []int          `json:"shards"`
	K         []int          `json:"k"`
	Rebalance []string       `json:"rebalance,omitempty"`
	CapModes  []string       `json:"cap_modes,omitempty"`

	// RebalanceWindow, RebalanceRatio, and RebalanceCooldown tune the
	// threshold policy of every "threshold" cell (zero = policy default).
	RebalanceWindow   int     `json:"rebalance_window,omitempty"`
	RebalanceRatio    float64 `json:"rebalance_ratio,omitempty"`
	RebalanceCooldown int     `json:"rebalance_cooldown,omitempty"`

	// Mode selects the cell transport: "inproc" (default) drives an
	// in-process protocol.Service; "live" spawns a mobserve per cell and
	// feeds it over the streaming transport.
	Mode string `json:"mode,omitempty"`
	// Wire and Window are live-mode axes: the requested stream encoding
	// ("auto"|"binary"|"ndjson", default [auto]) and in-flight pipeline
	// depth (default [1]). Refused in inproc mode.
	Wire   []string `json:"wire,omitempty"`
	Window []int    `json:"window,omitempty"`
}

func (s *Spec) withDefaults() {
	if s.Name == "" {
		s.Name = "matrix"
	}
	if s.T <= 0 {
		s.T = 200
	}
	if s.Requests <= 0 {
		s.Requests = 1
	}
	if s.Dim <= 0 {
		s.Dim = 2
	}
	if s.D == 0 {
		s.D = 2
	}
	if s.M == 0 {
		s.M = 1
	}
	if s.Delta == 0 {
		s.Delta = 0.5
	}
	if s.Span == 0 {
		s.Span = 25
	}
	if s.Radius == 0 {
		s.Radius = 5
	}
	if len(s.Shards) == 0 {
		s.Shards = []int{1}
	}
	if len(s.K) == 0 {
		s.K = []int{1}
	}
	if len(s.Rebalance) == 0 {
		s.Rebalance = []string{"static"}
	}
	if len(s.CapModes) == 0 {
		s.CapModes = []string{"strict"}
	}
	if s.Mode == "" {
		s.Mode = "inproc"
	}
	if s.Mode == "live" {
		if len(s.Wire) == 0 {
			s.Wire = []string{"auto"}
		}
		if len(s.Window) == 0 {
			s.Window = []int{1}
		}
	}
}

// Cell is one fully-resolved combination of the matrix axes.
type Cell struct {
	// Name is the canonical cell name, used as the results directory.
	Name string
	// Workload is the cell's request source.
	Workload WorkloadSpec
	// Shards, K, Rebalance, and CapMode are the policy coordinates.
	Shards    int
	K         int
	Rebalance string
	CapMode   string
	// Live, Wire, and Window are the transport coordinates; Wire and
	// Window are meaningful only when Live.
	Live   bool
	Wire   string
	Window int
}

// Stream is the cell's instance-stream key: instances are keyed by the
// workload label alone, so every cell serving the same workload — across
// shard counts, policies, and reruns — replays the identical request
// sequence.
func (s *Spec) Stream(w WorkloadSpec) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w.Label()))
	return h.Sum64()
}

// ParseSpec decodes and validates a matrix file's bytes. Unknown fields
// are errors (a typo must not silently drop an axis).
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := wire.UnmarshalStrict(data, &s); err != nil {
		return nil, fmt.Errorf("lab: matrix spec: %w", err)
	}
	s.withDefaults()
	if _, err := s.Cells(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a matrix file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Cells expands the matrix into its cross product, in a fixed order
// (workloads × shards × k × rebalance × cap modes × wire × window), and
// refuses combinations the serving stack refuses (a threshold cell needs
// shards > 1 to have neighbors and k > 1 to have a donor).
func (s *Spec) Cells() ([]Cell, error) {
	s.withDefaults()
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("lab: matrix %q has no workloads", s.Name)
	}
	switch s.Mode {
	case "inproc":
		if len(s.Wire) > 0 || len(s.Window) > 0 {
			return nil, fmt.Errorf("lab: wire/window axes require mode \"live\"")
		}
	case "live":
	default:
		return nil, fmt.Errorf("lab: unknown mode %q (inproc|live)", s.Mode)
	}
	wires, windows := s.Wire, s.Window
	if len(wires) == 0 {
		wires = []string{""}
	}
	if len(windows) == 0 {
		windows = []int{0}
	}
	var cells []Cell
	for _, w := range s.Workloads {
		if err := w.validate(); err != nil {
			return nil, err
		}
		for _, shards := range s.Shards {
			if shards < 1 {
				return nil, fmt.Errorf("lab: shards value %d, need >= 1", shards)
			}
			for _, k := range s.K {
				if k < 1 {
					return nil, fmt.Errorf("lab: k value %d, need >= 1", k)
				}
				for _, reb := range s.Rebalance {
					switch reb {
					case "static":
					case "threshold":
						if shards <= 1 || k <= 1 {
							return nil, fmt.Errorf("lab: threshold cell %s_s%d_k%d needs shards > 1 and k > 1", w.Label(), shards, k)
						}
					default:
						return nil, fmt.Errorf("lab: unknown rebalance policy %q (static|threshold)", reb)
					}
					for _, cap := range s.CapModes {
						if cap != "strict" && cap != "clamp" {
							return nil, fmt.Errorf("lab: unknown cap mode %q (strict|clamp)", cap)
						}
						for _, wr := range wires {
							if s.Mode == "live" {
								switch wr {
								case "auto", "binary", "ndjson":
								default:
									return nil, fmt.Errorf("lab: unknown wire policy %q (auto|binary|ndjson)", wr)
								}
							}
							for _, win := range windows {
								if s.Mode == "live" && win < 1 {
									return nil, fmt.Errorf("lab: window value %d, need >= 1", win)
								}
								c := Cell{
									Workload:  w,
									Shards:    shards,
									K:         k,
									Rebalance: reb,
									CapMode:   cap,
									Live:      s.Mode == "live",
									Wire:      wr,
									Window:    win,
								}
								c.Name = cellName(c)
								cells = append(cells, c)
							}
						}
					}
				}
			}
		}
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Name] {
			return nil, fmt.Errorf("lab: duplicate cell %q (duplicate axis values?)", c.Name)
		}
		seen[c.Name] = true
	}
	return cells, nil
}

// cellName builds the canonical cell directory name.
func cellName(c Cell) string {
	name := fmt.Sprintf("%s_s%d_k%d_%s_%s", c.Workload.Label(), c.Shards, c.K, c.Rebalance, c.CapMode)
	if c.Live {
		name += fmt.Sprintf("_%s_w%d", c.Wire, c.Window)
	}
	return name
}

// Config assembles the serving configuration of one cell from the
// instance's own parameters (so adversary and trace sources keep their
// dim, serve order, and augmentation) plus the cell's fleet and shard
// coordinates.
func (s *Spec) Config(instCfg core.Config, c Cell) core.Config {
	cfg := instCfg
	cfg.K = c.K
	cfg.Partition = nil
	if c.Shards > 1 {
		cfg.Partition = core.UniformPartition(c.Shards, s.Span)
	}
	return cfg
}

// BaseConfig is the instance-generation configuration of the workload
// generators (fleet and shard coordinates are per-cell and do not affect
// generation).
func (s *Spec) BaseConfig() core.Config {
	s.withDefaults()
	return core.Config{Dim: s.Dim, D: s.D, M: s.M, Delta: s.Delta}
}
