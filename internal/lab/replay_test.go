package lab

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

func unmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

func jsonStr(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestAdversaryTraceReplay is the trace round trip of the lab: an
// adversary instance written via traceio, replayed through a lab cell as
// a trace workload, must produce byte-identical summary.json files across
// two sweeps with the same seed — and the trace cell must agree exactly
// with a cell fed by the adversary source directly.
func TestAdversaryTraceReplay(t *testing.T) {
	dir := t.TempDir()

	// Generate the adversary instance exactly as the lab's adversary
	// source would, so the trace replay is comparable cell for cell.
	spec, err := ParseSpec([]byte(`{
		"name": "replay", "seed": 21, "t": 30, "requests": 1,
		"workloads": [{"adversary": "theorem1"}],
		"shards": [1], "k": [1]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.BaseConfig()
	r := xrand.NewStream(spec.Seed, spec.Stream(WorkloadSpec{Adversary: "theorem1"}))
	gen := adversary.Theorem1(adversary.Theorem1Params{T: spec.T, D: cfg.D, M: cfg.M, Dim: cfg.Dim}, r)
	tracePath := filepath.Join(dir, "adv.trace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteInstance(f, gen.Instance); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	traceSpec, err := ParseSpec([]byte(`{
		"name": "replay-trace", "seed": 21, "t": 30,
		"workloads": [{"trace": "adv.trace"}],
		"shards": [1], "k": [1]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	sweep := func(out string, s *Spec) string {
		t.Helper()
		run := &Runner{Spec: s, BaseDir: dir, OutDir: out, Parallel: 1}
		report, err := run.Sweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if report.Ran != 1 {
			t.Fatalf("ran %d cells, want 1", report.Ran)
		}
		return report.Summaries[0].Cell
	}

	outA := filepath.Join(dir, "a")
	outB := filepath.Join(dir, "b")
	cellA := sweep(outA, traceSpec)
	cellB := sweep(outB, traceSpec)
	if cellA != cellB {
		t.Fatalf("cell names differ: %q vs %q", cellA, cellB)
	}
	a, err := os.ReadFile(filepath.Join(outA, cellA, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(outB, cellB, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("trace replay is not byte-deterministic:\n%s\nvs\n%s", a, b)
	}

	// The replayed trace serves the identical instance the adversary
	// source generates, so everything but the cell coordinates (workload
	// label, hence cell name) must match.
	outC := filepath.Join(dir, "c")
	cellC := sweep(outC, spec)
	c, err := os.ReadFile(filepath.Join(outC, cellC, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fromTrace, fromAdv map[string]any
	unmarshal(t, a, &fromTrace)
	unmarshal(t, c, &fromAdv)
	for _, key := range []string{"cost", "cost_per_step", "t", "requests", "algorithm", "clamped", "rebalances"} {
		av, cv := jsonStr(t, fromTrace[key]), jsonStr(t, fromAdv[key])
		if av != cv {
			t.Errorf("%s differs between trace replay and adversary source: %s vs %s", key, av, cv)
		}
	}
}
