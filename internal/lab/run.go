// The sweep engine: expand the matrix, run every cell through the real
// serving stack, write per-cell summaries, and aggregate the report.
// Cells are independent — the sweep fans them out over a worker pool and
// is resumable per cell (an existing summary.json is adopted, not rerun).

package lab

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Runner executes one sweep of a matrix spec.
type Runner struct {
	// Spec is the matrix to sweep.
	Spec *Spec
	// BaseDir resolves relative trace paths; usually the matrix file's
	// directory.
	BaseDir string
	// OutDir is the results directory of this sweep (results/<stamp>);
	// each cell writes OutDir/<cell>/summary.json.
	OutDir string
	// Parallel bounds concurrently running cells. Default NumCPU.
	Parallel int
	// Rerun forces every cell to run even when a summary already exists.
	Rerun bool
	// MobserveBin is the mobserve binary live cells spawn.
	MobserveBin string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Sweep runs every cell of the matrix and writes OutDir/report.json and
// OutDir/bench.json. Cells whose summary.json already exists (and names
// the same cell) are skipped unless Rerun is set. Cell failures do not
// stop the other cells; Sweep then returns a joined error after writing
// the report over the cells that did complete.
func (r *Runner) Sweep(ctx context.Context) (*wire.LabReport, error) {
	//moblint:nondeterminism sweep wall-time feeds report.json's ElapsedMS, which the byte-determinism contract excludes (summary.json only)
	start := time.Now()
	cells, err := r.Spec.Cells()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(r.OutDir, 0o755); err != nil {
		return nil, err
	}
	parallel := r.Parallel
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	inst := newInstances(r.Spec, r.BaseDir)

	type outcome struct {
		sum     wire.LabCellSummary
		skipped bool
		err     error
	}
	outcomes := make([]outcome, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cell := cells[i]
				if sum, ok := r.adopt(cell); ok {
					outcomes[i] = outcome{sum: sum, skipped: true}
					r.logf("cell %-40s adopted existing summary", cell.Name)
					continue
				}
				sum, err := r.runCell(ctx, cell, inst)
				if err != nil {
					outcomes[i] = outcome{err: fmt.Errorf("cell %s: %w", cell.Name, err)}
					r.logf("cell %-40s FAILED: %v", cell.Name, err)
					continue
				}
				if err := writeCellSummary(r.OutDir, sum); err != nil {
					outcomes[i] = outcome{err: fmt.Errorf("cell %s: %w", cell.Name, err)}
					continue
				}
				outcomes[i] = outcome{sum: sum}
				r.logf("cell %-40s cost/step %.4g  rebalances %d", cell.Name, sum.CostPerStep, sum.Rebalances)
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()

	report := &wire.LabReport{
		V:     wire.V1,
		Name:  r.Spec.Name,
		Seed:  r.Spec.Seed,
		Cells: len(cells),
	}
	var errs []error
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			errs = append(errs, o.err)
		case o.skipped:
			report.Skipped++
			report.Summaries = append(report.Summaries, o.sum)
		default:
			report.Ran++
			report.Summaries = append(report.Summaries, o.sum)
		}
	}
	sort.Slice(report.Summaries, func(i, j int) bool {
		return report.Summaries[i].Cell < report.Summaries[j].Cell
	})
	report.Bench = BenchEntry(r.Spec.Name, report.Summaries)
	//moblint:nondeterminism ElapsedMS is a report.json field outside the byte-determinism contract
	report.ElapsedMS = time.Since(start).Milliseconds()
	if err := writeReport(r.OutDir, report); err != nil {
		errs = append(errs, err)
	}
	return report, errors.Join(errs...)
}

// adopt loads an existing summary for the cell when resuming. A file that
// does not parse, or names a different cell, is ignored (the cell reruns).
func (r *Runner) adopt(c Cell) (wire.LabCellSummary, bool) {
	if r.Rerun {
		return wire.LabCellSummary{}, false
	}
	data, err := os.ReadFile(filepath.Join(r.OutDir, c.Name, "summary.json"))
	if err != nil {
		return wire.LabCellSummary{}, false
	}
	// Strict parse: a summary with unknown fields (written by a different
	// version) or trailing bytes is not adopted — the cell reruns rather
	// than resume from a document this version might misread.
	var sum wire.LabCellSummary
	if err := wire.UnmarshalStrict(data, &sum); err != nil || sum.Cell != c.Name {
		return wire.LabCellSummary{}, false
	}
	return sum, true
}

func (r *Runner) runCell(ctx context.Context, c Cell, inst *instances) (wire.LabCellSummary, error) {
	in, err := inst.For(c.Workload)
	if err != nil {
		return wire.LabCellSummary{}, err
	}
	if c.Live {
		return r.runCellLive(ctx, c, in)
	}
	return r.runCellInproc(ctx, c, in)
}

// newAlg maps the spec's algorithm choice onto a per-shard controller
// factory, mirroring mobserve's default: MtC for a single unsharded
// server, cluster-and-chase otherwise.
func newAlg(name string, cfg core.Config) (func() core.FleetAlgorithm, error) {
	if name == "" {
		if cfg.Servers() > 1 || cfg.Partition.Shards() > 1 {
			name = "mtck"
		} else {
			name = "mtc"
		}
	}
	switch name {
	case "mtc":
		if cfg.Servers() != 1 {
			return nil, fmt.Errorf("lab: alg mtc is single-server (k=%d)", cfg.Servers())
		}
		return func() core.FleetAlgorithm { return core.Fleet(core.NewMtC()) }, nil
	case "mtck":
		return func() core.FleetAlgorithm { return multi.NewMtCK() }, nil
	case "lazy":
		return func() core.FleetAlgorithm { return multi.NewLazyK() }, nil
	default:
		return nil, fmt.Errorf("lab: unknown algorithm %q (mtc|mtck|lazy)", name)
	}
}

// rebalancer builds the cell's policy instance (policies are stateful and
// must not be shared between cells).
func (r *Runner) rebalancer(c Cell) shard.Rebalancer {
	if c.Rebalance != "threshold" {
		return nil
	}
	return &shard.Threshold{
		WindowSteps: r.Spec.RebalanceWindow,
		Ratio:       r.Spec.RebalanceRatio,
		Cooldown:    r.Spec.RebalanceCooldown,
	}
}

// runCellInproc drives the instance through an in-process
// protocol.Service, step by step, consuming the Watch feed in lockstep so
// rebalance and failover counts are exact and the summary is a
// deterministic function of (spec, seed).
func (r *Runner) runCellInproc(ctx context.Context, c Cell, in *core.Instance) (wire.LabCellSummary, error) {
	cfg := r.Spec.Config(in.Config, c)
	if err := cfg.Validate(); err != nil {
		return wire.LabCellSummary{}, err
	}
	alg, err := newAlg(r.Spec.Alg, cfg)
	if err != nil {
		return wire.LabCellSummary{}, err
	}
	opts := protocol.Options{
		NoCoalesce: true,
		QueueLimit: 8,
		Rebalancer: r.rebalancer(c),
	}
	if c.CapMode == "clamp" {
		opts.Mode = engine.Clamp
	}
	var svc *protocol.Service
	if cfg.Partition.Shards() > 1 {
		svc, err = protocol.NewSharded(cfg, shard.Starts(cfg, r.Spec.Radius), alg, opts)
	} else {
		var starts []geom.Point
		if cfg.Servers() == 1 {
			starts = []geom.Point{geom.Zero(cfg.Dim)}
		} else {
			starts = multi.SpreadStarts(cfg, r.Spec.Radius)
		}
		svc, err = protocol.New(cfg, starts, alg(), opts)
	}
	if err != nil {
		return wire.LabCellSummary{}, err
	}
	defer svc.Close()

	watchCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := svc.Watch(watchCtx)

	rebalances, failovers := 0, 0
	for t, step := range in.Steps {
		if err := ctx.Err(); err != nil {
			return wire.LabCellSummary{}, err
		}
		ack, err := svc.Submit(step.Requests)
		if err != nil {
			return wire.LabCellSummary{}, fmt.Errorf("step %d: %w", t, err)
		}
		ack.Release()
		// Consume the step's Watch event before submitting the next step:
		// with exactly one event outstanding the subscriber buffer can
		// never overflow, so the drop policy never fires and the event
		// counts below are exact, not best-effort.
		for ev := range events {
			if ev.Rebalance != nil {
				rebalances++
			}
			failovers += len(ev.Failovers)
			if ev.T >= ack.T {
				break
			}
		}
	}

	m := svc.Metrics()
	st := svc.State()
	if err := svc.Close(); err != nil {
		return wire.LabCellSummary{}, err
	}
	sum := r.summary(c, in)
	sum.T = m.Steps
	sum.Requests = m.Requests
	sum.Algorithm = st.Algorithm
	sum.Cost = wire.FromCost(st.Cost)
	if m.Steps > 0 {
		sum.CostPerStep = sum.Cost.Total / float64(m.Steps)
	}
	sum.Clamped = st.Clamped
	sum.CapHits = st.CapHits
	sum.MaxMove = st.MaxMove
	sum.TotalMove = st.TotalMove
	sum.Rebalances = rebalances
	sum.Failovers = failovers
	for _, sh := range st.Shards {
		sum.FinalKs = append(sum.FinalKs, sh.Servers)
	}
	return sum, nil
}

// summary seeds the cell-coordinate fields every transport shares.
func (r *Runner) summary(c Cell, in *core.Instance) wire.LabCellSummary {
	transport := "inproc"
	if c.Live {
		transport = "stream"
	}
	return wire.LabCellSummary{
		V:         wire.V1,
		Cell:      c.Name,
		Workload:  c.Workload.Label(),
		Shards:    c.Shards,
		K:         c.K,
		Rebalance: c.Rebalance,
		CapMode:   c.CapMode,
		Transport: transport,
		Seed:      r.Spec.Seed,
	}
}

// BenchEntry aggregates cell summaries into the compact lab_matrix entry
// of the BENCH_*.json trajectory: mean cost/step of static vs rebalanced
// layouts over the axis combinations that ran under both, and the
// cheapest cell per workload.
func BenchEntry(name string, sums []wire.LabCellSummary) wire.LabBenchEntry {
	e := wire.LabBenchEntry{Matrix: name, Cells: len(sums)}

	workloads := map[string]bool{}
	best := map[string]wire.LabCellSummary{}
	// pairKey identifies a cell's coordinates with the rebalance axis
	// removed, so static and threshold runs of the same scenario pair up.
	pairKey := func(s wire.LabCellSummary) string {
		return strings.Join([]string{
			s.Workload, fmt.Sprint(s.Shards), fmt.Sprint(s.K), s.CapMode,
			s.Transport, s.Wire, fmt.Sprint(s.Window),
		}, "|")
	}
	type pair struct {
		static, rebalance *wire.LabCellSummary
	}
	pairs := map[string]*pair{}
	for i := range sums {
		s := &sums[i]
		workloads[s.Workload] = true
		if b, ok := best[s.Workload]; !ok || s.CostPerStep < b.CostPerStep {
			best[s.Workload] = *s
		}
		p := pairs[pairKey(*s)]
		if p == nil {
			p = &pair{}
			pairs[pairKey(*s)] = p
		}
		if s.Rebalance == "static" {
			p.static = s
		} else {
			p.rebalance = s
		}
	}
	for w := range workloads {
		e.Workloads = append(e.Workloads, w)
	}
	sort.Strings(e.Workloads)
	// Sum in sorted key order: float addition is not associative, and the
	// aggregate must be as byte-reproducible as the cell summaries.
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var staticSum, rebSum float64
	n := 0
	for _, k := range keys {
		p := pairs[k]
		if p.static == nil || p.rebalance == nil {
			continue
		}
		staticSum += p.static.CostPerStep
		rebSum += p.rebalance.CostPerStep
		n++
	}
	if n > 0 {
		e.StaticCostPerStep = staticSum / float64(n)
		e.RebalanceCostPerStep = rebSum / float64(n)
		if e.StaticCostPerStep > 0 {
			e.CostSavedFrac = 1 - e.RebalanceCostPerStep/e.StaticCostPerStep
		}
	}
	for _, w := range e.Workloads {
		b := best[w]
		e.Best = append(e.Best, wire.LabBestCell{Workload: w, Cell: b.Cell, CostPerStep: b.CostPerStep})
	}
	return e
}
