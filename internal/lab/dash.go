// The live TUI dashboard behind moblab watch: a Dashboard accumulates the
// SSE metrics feed (plus periodic /state scrapes) and renders one text
// frame — cost-rate plot, per-shard load/layout bars, cap pressure, and
// the recent rebalance/failover log — for the terminal redraw loop.

package lab

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/asciiplot"
	"repro/internal/wire"
)

// Dashboard accumulates live feed events and renders text frames. Safe
// for one renderer and several observers.
type Dashboard struct {
	// Points bounds the cost-rate history ring. Default 240.
	Points int
	// Width and Height shape the cost plot. Defaults 64×12.
	Width, Height int

	mu sync.Mutex
	// ts and stepCost are the cost-rate history (per-step cost at step t),
	// a ring truncated to Points.
	ts       []float64
	stepCost []float64
	last     wire.MetricsEvent
	seen     bool
	state    *wire.StateResponse
	// events is the rolling rebalance/failover log, newest last.
	events     []string
	rebalances int
	failovers  int
	dropped    int
}

// dashEventLog bounds the rolling event log.
const dashEventLog = 6

// ObserveMetrics feeds one step event from the SSE stream.
func (d *Dashboard) ObserveMetrics(ev wire.MetricsEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last = ev
	d.seen = true
	d.dropped += ev.Dropped
	points := d.Points
	if points <= 0 {
		points = 240
	}
	d.ts = append(d.ts, float64(ev.T))
	d.stepCost = append(d.stepCost, ev.StepCost.Total)
	if n := len(d.ts) - points; n > 0 {
		d.ts = d.ts[n:]
		d.stepCost = d.stepCost[n:]
	}
}

// ObserveRebalance feeds one rebalance event from the SSE stream.
func (d *Dashboard) ObserveRebalance(ev wire.RebalanceEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rebalances++
	d.pushEvent(fmt.Sprintf("t=%-6d rebalance: shard %d -> %d, layout %v", ev.T, ev.From, ev.To, ev.Ks))
}

// ObserveFailover feeds one failover event from the SSE stream.
func (d *Dashboard) ObserveFailover(ev wire.FailoverEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failovers++
	d.pushEvent(fmt.Sprintf("t=%-6d failover: shard %d %s -> %s", ev.T, ev.Shard, ev.From, ev.To))
}

// ObserveState feeds one GET /state scrape (shard layout and positions).
func (d *Dashboard) ObserveState(st wire.StateResponse) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = &st
}

func (d *Dashboard) pushEvent(line string) {
	d.events = append(d.events, line)
	if len(d.events) > dashEventLog {
		d.events = d.events[len(d.events)-dashEventLog:]
	}
}

// Render draws one full dashboard frame.
func (d *Dashboard) Render() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	if !d.seen {
		b.WriteString("waiting for metrics events...\n")
		return b.String()
	}
	ev := d.last
	fmt.Fprintf(&b, "step %d   requests %d   total cost %.4g (move %.4g, serve %.4g)\n",
		ev.T, ev.Requests, ev.Cost.Total, ev.Cost.Move, ev.Cost.Serve)
	fmt.Fprintf(&b, "avg cost/step %.4g   queue %d   rejected %d   events dropped %d\n",
		ev.AvgStepCost, ev.QueueDepth, ev.Rejected, d.dropped)
	fmt.Fprintf(&b, "rebalances %d   failovers %d\n\n", d.rebalances, d.failovers)

	w, h := d.Width, d.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 12
	}
	b.WriteString(asciiplot.Plot{
		Width: w, Height: h,
		Title: "step cost over time",
	}.Render([]asciiplot.Series{{Name: "cost/step", X: d.ts, Y: d.stepCost, Marker: '*'}}))
	b.WriteByte('\n')

	if st := d.state; st != nil {
		if len(st.Shards) > 0 {
			b.WriteString(renderShards(st))
		} else {
			fmt.Fprintf(&b, "%s: %d servers, max move %.3g, cap hits %d, clamped %d\n",
				st.Algorithm, len(st.Positions), st.MaxMove, st.CapHits, st.Clamped)
		}
		b.WriteByte('\n')
	}

	if len(d.events) > 0 {
		b.WriteString("recent events:\n")
		for _, e := range d.events {
			b.WriteString("  " + e + "\n")
		}
	}
	return b.String()
}

// renderShards draws one bar per shard: request share (the routing skew)
// and the live fleet size, plus cap pressure.
func renderShards(st *wire.StateResponse) string {
	total := 0
	for _, sh := range st.Shards {
		total += sh.Requests
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards (%s, cap hits %d, clamped %d):\n", st.Algorithm, st.CapHits, st.Clamped)
	const barWidth = 32
	for _, sh := range st.Shards {
		frac := 0.0
		if total > 0 {
			frac = float64(sh.Requests) / float64(total)
		}
		fill := int(frac*barWidth + 0.5)
		if fill > barWidth {
			fill = barWidth
		}
		bar := strings.Repeat("#", fill) + strings.Repeat(".", barWidth-fill)
		workers := ""
		if sh.Shard < len(st.Workers) {
			workers = "  @" + st.Workers[sh.Shard]
		}
		fmt.Fprintf(&b, "  shard %d [%s] %5.1f%%  k=%d  reqs=%d  clamped=%d%s\n",
			sh.Shard, bar, 100*frac, sh.Servers, sh.Requests, sh.Clamped, workers)
	}
	return b.String()
}
