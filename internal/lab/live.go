// The live cell runner: spawn a real mobserve for the cell, feed the
// instance over the streaming transport via internal/streamclient, follow
// the SSE feed for rebalance/failover events, and scrape the final
// /metrics and /state into the summary. Live cells exercise the full
// serving path (process boundary, wire negotiation, pipelining), so their
// summaries record real serving facts — but event counts ride the SSE
// drop policy and process scheduling, and are best-effort, not
// byte-reproducible.

package lab

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/streamclient"
	"repro/internal/wire"
)

// liveReadyTimeout bounds how long a cell waits for its spawned mobserve
// to answer GET /metrics before giving up.
const liveReadyTimeout = 15 * time.Second

func (r *Runner) runCellLive(ctx context.Context, c Cell, in *core.Instance) (wire.LabCellSummary, error) {
	if r.MobserveBin == "" {
		return wire.LabCellSummary{}, errors.New("lab: live cells need a mobserve binary (Runner.MobserveBin)")
	}
	cfg := r.Spec.Config(in.Config, c)
	if err := cfg.Validate(); err != nil {
		return wire.LabCellSummary{}, err
	}

	addr, err := reservePort()
	if err != nil {
		return wire.LabCellSummary{}, err
	}
	args := []string{
		"-addr", addr,
		"-dim", strconv.Itoa(cfg.Dim),
		"-D", fmt.Sprint(cfg.D),
		"-m", fmt.Sprint(cfg.M),
		"-delta", fmt.Sprint(cfg.Delta),
		"-k", strconv.Itoa(c.K),
		"-shards", strconv.Itoa(c.Shards),
		"-span", fmt.Sprint(r.Spec.Span),
		"-radius", fmt.Sprint(r.Spec.Radius),
		// The lab feeds one batch per step: coalescing would merge
		// pipelined frames into one engine step and desync the counts.
		"-window", "0s",
		"-queue", "64",
	}
	if r.Spec.Alg != "" {
		args = append(args, "-alg", r.Spec.Alg)
	}
	if cfg.Order == core.AnswerFirst {
		args = append(args, "-answer-first")
	}
	if c.CapMode == "clamp" {
		args = append(args, "-clamp")
	}
	if c.Rebalance == "threshold" {
		args = append(args, "-rebalance", "threshold")
		if r.Spec.RebalanceWindow > 0 {
			args = append(args, "-rebalance-window", strconv.Itoa(r.Spec.RebalanceWindow))
		}
		if r.Spec.RebalanceRatio > 0 {
			args = append(args, "-rebalance-ratio", fmt.Sprint(r.Spec.RebalanceRatio))
		}
		if r.Spec.RebalanceCooldown > 0 {
			args = append(args, "-rebalance-cooldown", strconv.Itoa(r.Spec.RebalanceCooldown))
		}
	}

	cmd := exec.Command(r.MobserveBin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return wire.LabCellSummary{}, fmt.Errorf("lab: spawn mobserve: %w", err)
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()

	base := "http://" + addr
	if err := waitReady(ctx, base, cmd); err != nil {
		return wire.LabCellSummary{}, err
	}

	// Best-effort event counts: the SSE feed's drop policy may lose step
	// events under load, but rebalance/failover markers ride the next
	// delivered event, so the counters only lag, not lose.
	var rebalances, failovers atomic.Int64
	sseCtx, sseCancel := context.WithCancel(context.Background())
	var sseWG sync.WaitGroup
	sseWG.Add(1)
	go func() {
		defer sseWG.Done()
		_ = FollowSSE(sseCtx, base+"/metrics/stream", SSEHandlers{
			Rebalance: func(wire.RebalanceEvent) { rebalances.Add(1) },
			Failover:  func(wire.FailoverEvent) { failovers.Add(1) },
		})
	}()
	defer sseWG.Wait()
	defer sseCancel()

	cl, err := streamclient.Dial(base, "/stream", streamclient.Options{
		Dim:    cfg.Dim,
		Wire:   c.Wire,
		Window: c.Window,
	})
	if err != nil {
		return wire.LabCellSummary{}, fmt.Errorf("lab: dial %s: %w", base, err)
	}
	defer cl.Close()

	window := cl.Welcome().Window
	if window < 1 {
		window = 1
	}
	if err := drive(ctx, cl, in, window); err != nil {
		return wire.LabCellSummary{}, err
	}

	var m wire.MetricsResponse
	if err := getJSON(ctx, base+"/metrics", &m); err != nil {
		return wire.LabCellSummary{}, err
	}
	var st wire.StateResponse
	if err := getJSON(ctx, base+"/state", &st); err != nil {
		return wire.LabCellSummary{}, err
	}
	// Give the SSE follower a moment to drain the final events before the
	// server goes away.
	time.Sleep(50 * time.Millisecond)
	sseCancel()
	sseWG.Wait()

	sum := r.summary(c, in)
	sum.Wire = cl.Wire()
	sum.Window = window
	sum.T = m.Steps
	sum.Requests = m.Requests
	sum.Algorithm = st.Algorithm
	sum.Cost = st.Cost
	if m.Steps > 0 {
		sum.CostPerStep = st.Cost.Total / float64(m.Steps)
	}
	sum.Clamped = st.Clamped
	sum.CapHits = st.CapHits
	sum.MaxMove = st.MaxMove
	sum.TotalMove = st.TotalMove
	sum.Rebalances = int(rebalances.Load())
	sum.Failovers = int(failovers.Load())
	for _, sh := range st.Shards {
		sum.FinalKs = append(sum.FinalKs, sh.Servers)
	}
	return sum, nil
}

// drive feeds the instance's steps through the stream, keeping up to
// window frames in flight and waiting acks in submission order.
func drive(ctx context.Context, cl *streamclient.Client, in *core.Instance, window int) error {
	pending := make([]*streamclient.Pending, 0, window)
	flush := func(keep int) error {
		for len(pending) > keep {
			p := pending[0]
			copy(pending, pending[1:])
			pending = pending[:len(pending)-1]
			if _, err := p.Wait(); err != nil {
				return err
			}
			p.Release()
		}
		return nil
	}
	for t, step := range in.Steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := flush(window - 1); err != nil {
			return err
		}
		p, err := cl.Step(wire.FromPoints(step.Requests))
		if err != nil {
			return fmt.Errorf("lab: step %d: %w", t, err)
		}
		pending = append(pending, p)
	}
	return flush(0)
}

// reservePort binds an ephemeral loopback port and releases it for the
// spawned server to claim. The classic race (someone else grabbing it in
// between) is tolerable for a lab run and detected by waitReady.
func reservePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitReady polls GET /metrics until the spawned server answers, the
// process dies, or the timeout lapses.
func waitReady(ctx context.Context, base string, cmd *exec.Cmd) error {
	//moblint:nondeterminism live-cell process-readiness deadline; no summary field derives from it
	deadline := time.Now().Add(liveReadyTimeout)
	//moblint:nondeterminism live-cell process-readiness deadline; no summary field derives from it
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cmd.ProcessState != nil {
			return fmt.Errorf("lab: mobserve exited during startup: %v", cmd.ProcessState)
		}
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("lab: mobserve at %s not ready after %v", base, liveReadyTimeout)
}

// GetState scrapes a server's GET /state into v — the dashboard's poll
// companion to the SSE feed (positions and shard layouts are state, not
// events).
func GetState(ctx context.Context, base string, v *wire.StateResponse) error {
	return getJSON(ctx, base+"/state", v)
}

// getJSON fetches url and strictly decodes its JSON body into v.
func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("lab: %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// A live cell's polls cross the process boundary like any frame:
	// decode strictly, so a mobserve speaking a drifted schema fails the
	// cell instead of silently zeroing fields in its summary.
	if err := wire.UnmarshalStrict(data, v); err != nil {
		return fmt.Errorf("lab: %s: %w", url, err)
	}
	return nil
}
