// Package multi implements the extension sketched in the paper's
// conclusion (Section 6): multiple mobile servers with per-step movement
// caps — the k-Server/Page-Migration hybrid obtained by limiting
// configuration changes per round. Requests are served by the nearest
// server after the servers move.
//
// The model itself lives in the shared core types: core.Config carries the
// fleet size K, core.FleetInstance holds the start positions, and the
// controllers implement core.FleetAlgorithm, so they run on the same
// streaming engine as the single-server paper model. This package provides
// the natural generalization of Move-to-Center (cluster-and-chase) and
// reference baselines, so experiment E12 can explore how fleet size trades
// off against cost.
package multi

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/median"
)

// ServeCost returns Σ_v min_j d(positions[j], v): every request is served
// by its nearest server.
func ServeCost(positions, requests []geom.Point) float64 {
	return core.NearestServeCost(positions, requests)
}

// Run executes the fleet controller on the instance with strict cap
// enforcement. It is a thin wrapper over an engine session.
func Run(in *core.FleetInstance, alg core.FleetAlgorithm, tol float64) (*engine.Result, error) {
	return engine.Run(in, alg, engine.Options{Mode: engine.Strict, Tol: tol})
}

// MtCK generalizes Move-to-Center to a fleet (cluster-and-chase): requests
// are assigned to their nearest server, and each server runs the
// single-server MtC rule on its assigned batch (center = 1-median of the
// batch, speed min(1, r_j/D)·distance, capped).
type MtCK struct {
	cfg core.Config
	pos []geom.Point
}

// NewMtCK returns the fleet Move-to-Center controller.
func NewMtCK() *MtCK { return &MtCK{} }

// Name implements core.FleetAlgorithm.
func (a *MtCK) Name() string { return "MtC-k" }

// Reset implements core.FleetAlgorithm.
func (a *MtCK) Reset(cfg core.Config, starts []geom.Point) {
	a.cfg = cfg
	a.pos = make([]geom.Point, len(starts))
	for i, s := range starts {
		a.pos[i] = s.Clone()
	}
}

// Move implements core.FleetAlgorithm.
func (a *MtCK) Move(requests []geom.Point) []geom.Point {
	if len(requests) == 0 {
		return a.pos
	}
	assigned := make([][]geom.Point, len(a.pos))
	for _, v := range requests {
		bestJ, bestD := 0, math.Inf(1)
		for j, p := range a.pos {
			if d := geom.Dist(p, v); d < bestD {
				bestD, bestJ = d, j
			}
		}
		assigned[bestJ] = append(assigned[bestJ], v)
	}
	cap := a.cfg.OnlineCap()
	for j := range a.pos {
		batch := assigned[j]
		if len(batch) == 0 {
			continue
		}
		c := median.Closest(batch, a.pos[j], median.Options{})
		dist := geom.Dist(a.pos[j], c)
		speed := math.Min(1, float64(len(batch))/a.cfg.D)
		step := math.Min(speed*dist, cap)
		a.pos[j] = geom.MoveToward(a.pos[j], c, step)
	}
	return a.pos
}

// fleetState is the serialized internal state of the fleet controllers:
// every server position as tracked by the algorithm itself (the
// configuration is reinstalled by Reset).
type fleetState struct {
	Pos [][]float64 `json:"pos"`
}

func snapshotFleetState(pos []geom.Point) ([]byte, error) {
	st := fleetState{Pos: make([][]float64, len(pos))}
	for j, p := range pos {
		st.Pos[j] = p
	}
	return json.Marshal(st)
}

func restoreFleetState(data []byte, pos []geom.Point) error {
	var st fleetState
	//moblint:rawdecode legacy snapshot compatibility: fleet state blobs are validated structurally (count and dim checks) below
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Pos) != len(pos) {
		return fmt.Errorf("multi: state has %d servers, want %d", len(st.Pos), len(pos))
	}
	for j, c := range st.Pos {
		if len(c) != pos[j].Dim() {
			return fmt.Errorf("multi: state server %d has dim %d, want %d", j, len(c), pos[j].Dim())
		}
		pos[j] = geom.Point(c).Clone()
	}
	return nil
}

// SnapshotState implements core.Snapshotter: MtCK's only run state is its
// position view, serialized explicitly so a checkpoint stays exact even if
// the engine's and the controller's views ever diverge.
func (a *MtCK) SnapshotState() ([]byte, error) { return snapshotFleetState(a.pos) }

// RestoreState implements core.Snapshotter; the controller must already
// have been Reset with the checkpointed fleet layout.
func (a *MtCK) RestoreState(data []byte) error { return restoreFleetState(data, a.pos) }

// LazyK keeps all servers at their start positions.
type LazyK struct{ pos []geom.Point }

// NewLazyK returns the never-moving fleet baseline.
func NewLazyK() *LazyK { return &LazyK{} }

// Name implements core.FleetAlgorithm.
func (a *LazyK) Name() string { return "Lazy-k" }

// Reset implements core.FleetAlgorithm.
func (a *LazyK) Reset(_ core.Config, starts []geom.Point) { a.pos = starts }

// Move implements core.FleetAlgorithm.
func (a *LazyK) Move(_ []geom.Point) []geom.Point { return a.pos }

// SnapshotState implements core.Snapshotter.
func (a *LazyK) SnapshotState() ([]byte, error) { return snapshotFleetState(a.pos) }

// RestoreState implements core.Snapshotter.
func (a *LazyK) RestoreState(data []byte) error { return restoreFleetState(data, a.pos) }

// SpreadStarts places cfg.Servers() servers evenly on a circle of the given
// radius around the origin (on a segment in 1-D), a reasonable neutral
// initial fleet layout.
func SpreadStarts(cfg core.Config, radius float64) []geom.Point {
	k := cfg.Servers()
	starts := make([]geom.Point, k)
	for j := 0; j < k; j++ {
		p := geom.Zero(cfg.Dim)
		if k > 1 {
			switch cfg.Dim {
			case 1:
				p[0] = -radius + 2*radius*float64(j)/float64(k-1)
			default:
				angle := 2 * math.Pi * float64(j) / float64(k)
				p[0] = radius * math.Cos(angle)
				p[1] = radius * math.Sin(angle)
			}
		}
		starts[j] = p
	}
	return starts
}
