// Package multi implements the extension sketched in the paper's
// conclusion (Section 6): multiple mobile servers with per-step movement
// caps — the k-Server/Page-Migration hybrid obtained by limiting
// configuration changes per round. Requests are served by the nearest
// server after the servers move.
//
// No competitive analysis exists for this model in the paper; the package
// provides the model, a natural generalization of Move-to-Center
// (cluster-and-chase), and reference baselines, so experiment E12 can
// explore how fleet size trades off against cost.
package multi

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/median"
)

// Config extends the core parameters with a fleet size.
type Config struct {
	// Dim, D, M, Delta as in the single-server model.
	Dim   int
	D     float64
	M     float64
	Delta float64
	// K is the number of servers, >= 1.
	K int
}

// OnlineCap returns the per-server per-step movement bound (1+δ)m.
func (c Config) OnlineCap() float64 { return (1 + c.Delta) * c.M }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	single := core.Config{Dim: c.Dim, D: c.D, M: c.M, Delta: c.Delta, Order: core.MoveFirst}
	if err := single.Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("multi: K = %d, need >= 1", c.K)
	}
	return nil
}

// Instance is a multi-server input: start positions for all K servers and
// the shared request sequence.
type Instance struct {
	Config Config
	Starts []geom.Point
	Steps  []core.Step
}

// T returns the number of steps.
func (in *Instance) T() int { return len(in.Steps) }

// Validate checks shapes, finiteness, and the configuration.
func (in *Instance) Validate() error {
	if err := in.Config.Validate(); err != nil {
		return err
	}
	if len(in.Starts) != in.Config.K {
		return fmt.Errorf("multi: %d start positions for K=%d", len(in.Starts), in.Config.K)
	}
	for i, s := range in.Starts {
		if s.Dim() != in.Config.Dim || !s.IsFinite() {
			return fmt.Errorf("multi: bad start %d: %v", i, s)
		}
	}
	if len(in.Steps) == 0 {
		return fmt.Errorf("multi: no steps")
	}
	for t, s := range in.Steps {
		for i, v := range s.Requests {
			if v.Dim() != in.Config.Dim || !v.IsFinite() {
				return fmt.Errorf("multi: bad request %d in step %d: %v", i, t, v)
			}
		}
	}
	return nil
}

// Algorithm is an online fleet controller.
type Algorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Reset prepares for a fresh instance.
	Reset(cfg Config, starts []geom.Point)
	// Move observes the requests and returns the new position of every
	// server; the simulator enforces the per-server cap.
	Move(requests []geom.Point) []geom.Point
}

// ServeCost returns Σ_v min_j d(positions[j], v): every request is served
// by its nearest server.
func ServeCost(positions []geom.Point, requests []geom.Point) float64 {
	total := 0.0
	for _, v := range requests {
		best := math.Inf(1)
		for _, p := range positions {
			if d := geom.Dist(p, v); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// Result summarizes a fleet run.
type Result struct {
	Algorithm string
	Cost      core.Cost
	Final     []geom.Point
	MaxMove   float64
}

// Run executes the fleet controller on the instance with strict cap
// enforcement.
func Run(in *Instance, alg Algorithm, tol float64) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	cfg := in.Config
	cap := cfg.OnlineCap()
	starts := make([]geom.Point, len(in.Starts))
	for i, s := range in.Starts {
		starts[i] = s.Clone()
	}
	alg.Reset(cfg, starts)
	cur := starts
	res := &Result{Algorithm: alg.Name()}
	for t, step := range in.Steps {
		next := alg.Move(step.Requests)
		if len(next) != cfg.K {
			return nil, fmt.Errorf("multi: %s returned %d positions for K=%d at step %d", alg.Name(), len(next), cfg.K, t)
		}
		for j := range next {
			if next[j].Dim() != cfg.Dim || !next[j].IsFinite() {
				return nil, fmt.Errorf("multi: %s returned bad position %v at step %d", alg.Name(), next[j], t)
			}
			moved := geom.Dist(cur[j], next[j])
			if moved > cap*(1+tol) {
				return nil, fmt.Errorf("multi: %s moved server %d by %.12g > cap %.12g at step %d", alg.Name(), j, moved, cap, t)
			}
			if moved > res.MaxMove {
				res.MaxMove = moved
			}
			res.Cost.Move += cfg.D * moved
		}
		res.Cost.Serve += ServeCost(next, step.Requests)
		cloned := make([]geom.Point, len(next))
		for j := range next {
			cloned[j] = next[j].Clone()
		}
		cur = cloned
	}
	res.Final = cur
	return res, nil
}

// MtCK generalizes Move-to-Center to a fleet: requests are assigned to
// their nearest server, and each server runs the single-server MtC rule on
// its assigned batch (center = 1-median of the batch, speed
// min(1, r_j/D)·distance, capped).
type MtCK struct {
	cfg Config
	pos []geom.Point
}

// NewMtCK returns the fleet Move-to-Center controller.
func NewMtCK() *MtCK { return &MtCK{} }

// Name implements Algorithm.
func (a *MtCK) Name() string { return "MtC-k" }

// Reset implements Algorithm.
func (a *MtCK) Reset(cfg Config, starts []geom.Point) {
	a.cfg = cfg
	a.pos = make([]geom.Point, len(starts))
	for i, s := range starts {
		a.pos[i] = s.Clone()
	}
}

// Move implements Algorithm.
func (a *MtCK) Move(requests []geom.Point) []geom.Point {
	if len(requests) == 0 {
		return a.pos
	}
	assigned := make([][]geom.Point, len(a.pos))
	for _, v := range requests {
		bestJ, bestD := 0, math.Inf(1)
		for j, p := range a.pos {
			if d := geom.Dist(p, v); d < bestD {
				bestD, bestJ = d, j
			}
		}
		assigned[bestJ] = append(assigned[bestJ], v)
	}
	cap := a.cfg.OnlineCap()
	for j := range a.pos {
		batch := assigned[j]
		if len(batch) == 0 {
			continue
		}
		c := median.Closest(batch, a.pos[j], median.Options{})
		dist := geom.Dist(a.pos[j], c)
		speed := math.Min(1, float64(len(batch))/a.cfg.D)
		step := math.Min(speed*dist, cap)
		a.pos[j] = geom.MoveToward(a.pos[j], c, step)
	}
	return a.pos
}

// LazyK keeps all servers at their start positions.
type LazyK struct{ pos []geom.Point }

// NewLazyK returns the never-moving fleet baseline.
func NewLazyK() *LazyK { return &LazyK{} }

// Name implements Algorithm.
func (a *LazyK) Name() string { return "Lazy-k" }

// Reset implements Algorithm.
func (a *LazyK) Reset(_ Config, starts []geom.Point) { a.pos = starts }

// Move implements Algorithm.
func (a *LazyK) Move(_ []geom.Point) []geom.Point { return a.pos }

// SpreadStarts places K servers evenly on a circle of the given radius
// around the origin (on a segment in 1-D), a reasonable neutral initial
// fleet layout.
func SpreadStarts(cfg Config, radius float64) []geom.Point {
	starts := make([]geom.Point, cfg.K)
	for j := 0; j < cfg.K; j++ {
		p := geom.Zero(cfg.Dim)
		if cfg.K > 1 {
			switch cfg.Dim {
			case 1:
				p[0] = -radius + 2*radius*float64(j)/float64(cfg.K-1)
			default:
				angle := 2 * math.Pi * float64(j) / float64(cfg.K)
				p[0] = radius * math.Cos(angle)
				p[1] = radius * math.Sin(angle)
			}
		}
		starts[j] = p
	}
	return starts
}
