package multi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func fleetCfg(k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: core.MoveFirst, K: k}
}

func fleetInstance(t *testing.T, k, T int, seed uint64) *core.FleetInstance {
	t.Helper()
	cfg := fleetCfg(k)
	src := workload.Clusters{K: k, Sigma: 0.5, SwitchProb: 0.05, Requests: 2}.
		Generate(xrand.New(seed), cfg, T)
	in := &core.FleetInstance{Config: cfg, Starts: SpreadStarts(cfg, 5), Steps: src.Steps}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestConfigValidate(t *testing.T) {
	if err := fleetCfg(3).Validate(); err != nil {
		t.Fatal(err)
	}
	// K=0 means a single server and stays valid; negative fleets do not.
	if err := fleetCfg(0).Validate(); err != nil {
		t.Fatalf("K=0 rejected: %v", err)
	}
	if fleetCfg(0).Servers() != 1 {
		t.Fatal("K=0 should mean one server")
	}
	bad := fleetCfg(-1)
	if err := bad.Validate(); err == nil {
		t.Fatal("K=-1 accepted")
	}
	bad = fleetCfg(2)
	bad.D = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad D accepted")
	}
}

func TestInstanceValidate(t *testing.T) {
	in := fleetInstance(t, 2, 10, 1)
	in.Starts = in.Starts[:1]
	if err := in.Validate(); err == nil {
		t.Fatal("start-count mismatch accepted")
	}
	in = fleetInstance(t, 2, 10, 1)
	in.Steps = nil
	if err := in.Validate(); err == nil {
		t.Fatal("empty steps accepted")
	}
}

func TestServeCostNearest(t *testing.T) {
	positions := []geom.Point{pt(0, 0), pt(10, 0)}
	reqs := []geom.Point{pt(1, 0), pt(9, 0)}
	if got := ServeCost(positions, reqs); got != 2 {
		t.Fatalf("ServeCost = %v, want 2", got)
	}
}

func TestRunLazyCost(t *testing.T) {
	cfg := fleetCfg(2)
	in := &core.FleetInstance{
		Config: cfg,
		Starts: []geom.Point{pt(0, 0), pt(10, 0)},
		Steps: []core.Step{
			{Requests: []geom.Point{pt(1, 0)}},
			{Requests: []geom.Point{pt(9, 0)}},
		},
	}
	res, err := Run(in, NewLazyK(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Move != 0 || res.Cost.Serve != 2 {
		t.Fatalf("lazy cost = %+v", res.Cost)
	}
}

func TestMtCKRespectsCap(t *testing.T) {
	in := fleetInstance(t, 3, 100, 2)
	res, err := Run(in, NewMtCK(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
		t.Fatalf("MaxMove = %v", res.MaxMove)
	}
}

func TestMtCKBeatsLazyOnClusters(t *testing.T) {
	in := fleetInstance(t, 2, 300, 3)
	mtc, err := Run(in, NewMtCK(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Run(in, NewLazyK(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if mtc.Cost.Total() >= lazy.Cost.Total() {
		t.Fatalf("MtC-k (%v) did not beat Lazy-k (%v)", mtc.Cost.Total(), lazy.Cost.Total())
	}
}

func TestMoreServersHelp(t *testing.T) {
	// On a 3-cluster workload, K=3 should beat K=1 clearly.
	costAt := func(k int) float64 {
		sum := 0.0
		for seed := uint64(0); seed < 3; seed++ {
			cfg := fleetCfg(k)
			src := workload.Clusters{K: 3, Sigma: 0.5, SwitchProb: 0, Requests: 2}.
				Generate(xrand.New(seed), cfg, 200)
			in := &core.FleetInstance{Config: cfg, Starts: SpreadStarts(cfg, 10), Steps: src.Steps}
			res, err := Run(in, NewMtCK(), 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Cost.Total()
		}
		return sum
	}
	c1, c3 := costAt(1), costAt(3)
	if c3 >= c1 {
		t.Fatalf("K=3 (%v) not better than K=1 (%v)", c3, c1)
	}
}

func TestRunRejectsWrongArity(t *testing.T) {
	in := fleetInstance(t, 2, 5, 4)
	if _, err := Run(in, &badArity{}, 0); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

type badArity struct{ pos []geom.Point }

func (b *badArity) Name() string                             { return "bad" }
func (b *badArity) Reset(_ core.Config, starts []geom.Point) { b.pos = starts }
func (b *badArity) Move(_ []geom.Point) []geom.Point         { return b.pos[:1] }

func TestRunRejectsOverspeed(t *testing.T) {
	in := fleetInstance(t, 2, 5, 5)
	if _, err := Run(in, &teleporter{}, 0); err == nil {
		t.Fatal("teleporting fleet accepted")
	}
}

func TestClampModeTamesTeleporter(t *testing.T) {
	// The same fleet that strict mode rejects finishes under Clamp, with
	// every server held to the cap and the clamps counted.
	in := fleetInstance(t, 2, 5, 5)
	res, err := engine.Run(in, &teleporter{}, engine.Options{Mode: engine.Clamp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clamped == 0 {
		t.Fatal("no clamped moves counted")
	}
	if res.MaxMove > in.Config.OnlineCap()*(1+1e-9) {
		t.Fatalf("clamped fleet still moved %v", res.MaxMove)
	}
}

type teleporter struct{ pos []geom.Point }

func (b *teleporter) Name() string                             { return "teleport" }
func (b *teleporter) Reset(_ core.Config, starts []geom.Point) { b.pos = starts }
func (b *teleporter) Move(reqs []geom.Point) []geom.Point {
	if len(reqs) > 0 {
		out := make([]geom.Point, len(b.pos))
		for i := range out {
			out[i] = reqs[0].Clone()
		}
		b.pos = out
	}
	return b.pos
}

func TestSpreadStarts(t *testing.T) {
	cfg := fleetCfg(4)
	starts := SpreadStarts(cfg, 5)
	if len(starts) != 4 {
		t.Fatalf("got %d starts", len(starts))
	}
	for _, s := range starts {
		if math.Abs(geom.Dist(pt(0, 0), s)-5) > 1e-9 {
			t.Fatalf("start %v not on radius-5 circle", s)
		}
	}
	// 1-D spread.
	cfg1 := core.Config{Dim: 1, D: 1, M: 1, K: 3}
	s1 := SpreadStarts(cfg1, 4)
	if s1[0][0] != -4 || s1[2][0] != 4 {
		t.Fatalf("1-D spread = %v", s1)
	}
	// K=1 sits at the origin.
	single := SpreadStarts(core.Config{Dim: 2, D: 1, M: 1, K: 1}, 9)
	if !single[0].Equal(pt(0, 0)) {
		t.Fatalf("single start = %v", single[0])
	}
}
