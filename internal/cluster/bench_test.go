package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

// BenchmarkClusterVsLocal pins the coordinator's forwarding overhead: one
// op is one full POST /step round-trip of benchBatch requests, served
// either by the in-process sharded server ("local") or by a coordinator
// forwarding each shard's sub-batch to worker-hosted shard services over
// loopback TCP ("cluster"). Both sides run the identical serving core, so
// the delta is purely the extra network hop plus the merge.
// scripts/bench.sh runs this and emits the cluster_vs_local entry of the
// BENCH_*.json trajectory.
func BenchmarkClusterVsLocal(b *testing.B) {
	const benchBatch = 8
	cfg := testCfg(2, 2)
	body, err := json.Marshal(wire.StepRequest{Requests: spreadReqs(0, benchBatch)})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, url string) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/step", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST /step = %d", resp.StatusCode)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		s, err := server.NewSharded(cfg, shard.Starts(cfg, testSpan), newMtCK, server.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			_ = s.Close()
		})
		run(b, ts.URL)
	})

	b.Run("cluster", func(b *testing.B) {
		var addrs []string
		for i := 0; i < 2; i++ {
			w, err := NewWorker(cfg, WorkerOptions{NewAlg: newMtCK, CheckpointDir: b.TempDir(), Span: testSpan})
			if err != nil {
				b.Fatal(err)
			}
			wts := httptest.NewServer(w)
			b.Cleanup(func() {
				wts.CloseClientConnections()
				wts.Close()
				_ = w.Close()
			})
			addrs = append(addrs, wts.Listener.Addr().String())
		}
		copts := fastDial()
		copts.Workers = addrs
		svc, err := NewService(cfg, copts, protocol.Options{})
		if err != nil {
			b.Fatal(err)
		}
		srv := server.NewFromService(cfg, svc)
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.CloseClientConnections()
			ts.Close()
			_ = srv.Close()
		})
		run(b, ts.URL)
	})
}

// BenchmarkClusterPipelinedVsLockstep pins what the pipelined window buys:
// one op is one global step driven straight at the coordinator backend —
// "lockstep" pays one full worker round-trip plus one checkpoint fsync per
// step (Step), "pipelined" keeps a window of 8 in flight and lets the
// workers group-commit 8 steps per fsync (StepAsync/ResolveOldest at
// steady state). Same workers, same loopback TCP, same serving core; the
// delta is the overlap. scripts/bench.sh runs this and emits the
// cluster_pipelined_vs_lockstep entry of the BENCH_*.json trajectory.
func BenchmarkClusterPipelinedVsLockstep(b *testing.B) {
	const benchBatch = 8
	cfg := testCfg(2, 2)

	run := func(b *testing.B, window, commitEvery int) {
		b.Helper()
		w1, _ := startWindowedWorker(b, cfg, b.TempDir(), window, commitEvery)
		w2, _ := startWindowedWorker(b, cfg, b.TempDir(), window, commitEvery)
		copts := fastDial()
		copts.Workers = []string{w1.Listener.Addr().String(), w2.Listener.Addr().String()}
		copts.Window = window
		co, err := NewCoordinator(cfg, copts, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { co.Finish() })
		if co.Window() != window {
			b.Fatalf("negotiated window = %d, want %d", co.Window(), window)
		}
		inflight := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if inflight == co.Window() {
				if err := co.ResolveOldest(); err != nil {
					b.Fatal(err)
				}
				inflight--
			}
			if err := co.StepAsync(toGeom(spreadReqs(i, benchBatch))); err != nil {
				b.Fatal(err)
			}
			inflight++
		}
		for inflight > 0 {
			if err := co.ResolveOldest(); err != nil {
				b.Fatal(err)
			}
			inflight--
		}
		b.StopTimer()
		b.ReportMetric(float64(co.Window()), "window")
	}

	b.Run("lockstep", func(b *testing.B) { run(b, 1, 1) })
	b.Run("pipelined", func(b *testing.B) { run(b, 8, 8) })
}
