package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

// BenchmarkClusterVsLocal pins the coordinator's forwarding overhead: one
// op is one full POST /step round-trip of benchBatch requests, served
// either by the in-process sharded server ("local") or by a coordinator
// forwarding each shard's sub-batch to worker-hosted shard services over
// loopback TCP ("cluster"). Both sides run the identical serving core, so
// the delta is purely the extra network hop plus the merge.
// scripts/bench.sh runs this and emits the cluster_vs_local entry of the
// BENCH_*.json trajectory.
func BenchmarkClusterVsLocal(b *testing.B) {
	const benchBatch = 8
	cfg := testCfg(2, 2)
	body, err := json.Marshal(wire.StepRequest{Requests: spreadReqs(0, benchBatch)})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, url string) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/step", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST /step = %d", resp.StatusCode)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		s, err := server.NewSharded(cfg, shard.Starts(cfg, testSpan), newMtCK, server.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			_ = s.Close()
		})
		run(b, ts.URL)
	})

	b.Run("cluster", func(b *testing.B) {
		var addrs []string
		for i := 0; i < 2; i++ {
			w, err := NewWorker(cfg, WorkerOptions{NewAlg: newMtCK, CheckpointDir: b.TempDir(), Span: testSpan})
			if err != nil {
				b.Fatal(err)
			}
			wts := httptest.NewServer(w)
			b.Cleanup(func() {
				wts.CloseClientConnections()
				wts.Close()
				_ = w.Close()
			})
			addrs = append(addrs, wts.Listener.Addr().String())
		}
		copts := fastDial()
		copts.Workers = addrs
		svc, err := NewService(cfg, copts, protocol.Options{})
		if err != nil {
			b.Fatal(err)
		}
		srv := server.NewFromService(cfg, svc)
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.CloseClientConnections()
			ts.Close()
			_ = srv.Close()
		})
		run(b, ts.URL)
	})
}
