package cluster

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// startWorkerWire is startWorker with a stream-encoding policy on the
// hosted shard services; it returns the worker's address.
func startWorkerWire(t *testing.T, cfg core.Config, dir, policy string) string {
	t.Helper()
	w, err := NewWorker(cfg, WorkerOptions{NewAlg: newMtCK, CheckpointDir: dir, Span: testSpan, Wire: policy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = w.Close()
	})
	return ts.Listener.Addr().String()
}

// TestMixedWireClusterMatchesLocal is the fleet-level transport
// equivalence differential: the same workload through three cluster
// configurations — all-binary (the default), a mixed-version fleet where
// the binary coordinator's workers are pinned to NDJSON (old workers,
// new coordinator), and a coordinator pinned to NDJSON — must leave
// /metrics and /state byte-identical to each other and to the local
// sharded reference server. The encoding a shard stream happens to
// negotiate must be unobservable in every externally visible number.
func TestMixedWireClusterMatchesLocal(t *testing.T) {
	const steps, perStep = 20, 4
	cfg := testCfg(2, 2)

	type fleet struct {
		name       string
		workerWire string
		coordWire  string
	}
	fleets := []fleet{
		{"all-binary", "", ""},
		{"old-workers", wire.WireNDJSON, ""},
		{"ndjson-coordinator", "", wire.WireNDJSON},
	}

	local := startLocal(t, cfg)
	urls := make([]string, len(fleets))
	for fi, fl := range fleets {
		w1 := startWorkerWire(t, cfg, t.TempDir(), fl.workerWire)
		w2 := startWorkerWire(t, cfg, t.TempDir(), fl.workerWire)
		copts := fastDial()
		copts.Workers = []string{w1, w2}
		copts.Wire = fl.coordWire
		urls[fi] = startCluster(t, cfg, copts).URL
	}

	for i := 0; i < steps; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, local.URL, reqs)
		for _, u := range urls {
			postStep(t, u, reqs)
		}
	}

	lm := getBody(t, local.URL+"/metrics")
	ls := stateWithoutWorkers(t, getBody(t, local.URL+"/state"))
	for fi, fl := range fleets {
		cm := getBody(t, urls[fi]+"/metrics")
		if !bytes.Equal(cm, lm) {
			t.Errorf("%s: /metrics diverged from local:\ncluster: %s\nlocal:   %s", fl.name, cm, lm)
		}
		cs := stateWithoutWorkers(t, getBody(t, urls[fi]+"/state"))
		if !bytes.Equal(cs, ls) {
			t.Errorf("%s: /state diverged from local:\ncluster: %s\nlocal:   %s", fl.name, cs, ls)
		}
	}
}
