// The worker side of the cluster: one process hosts the engine sessions
// of the shards assigned to it, each behind the full serving core
// (protocol.Service) and the versioned NDJSON streaming transport, under
// per-shard paths:
//
//	POST /shard/{i}/stream?floor=T   pipelined step frames for shard i
//	GET  /shard/{i}/metrics          the shard service's /metrics
//	GET  /shard/{i}/state            the shard service's /state
//	GET  /shard/{i}/snapshot         the shard's bare engine snapshot
//	GET  /healthz                    liveness probe
//
// Shards are hosted lazily: the first request for shard i opens its
// service — resumed from the shard's checkpoint file when one exists, or
// fresh otherwise. That is what makes any worker a standby for any shard:
// rehoming a shard is just the coordinator dialing its stream path on
// another worker that can reach the checkpoint directory.
//
// The floor query parameter is the failover fencing token: a coordinator
// that rehomed shard i away and later dials this worker again passes the
// global step it expects, and a live service that lags it (a stale
// incarnation — the shard advanced elsewhere since) is aborted and
// reopened from the checkpoint instead of answering with old state.

package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/shard"
)

// WorkerOptions configures a shard worker.
type WorkerOptions struct {
	// NewAlg constructs one independent algorithm instance per hosted
	// shard session. Required.
	NewAlg func() core.FleetAlgorithm
	// CheckpointDir is where the per-shard checkpoint files live
	// (shard-<i>.ckpt). Required: failover restores from these files, so a
	// worker without them could neither rehome a shard nor survive its own
	// restart. Workers that should cover for each other must share it.
	CheckpointDir string
	// Span is the half-width used to place fresh start fleets (matching
	// shard.StartsSized); every worker of a cluster must use the same
	// value or fresh shards would disagree on their start positions.
	// Default DefaultSpan.
	Span float64
	// Mode and Tol configure cap enforcement on the shard sessions (the
	// workers own cap semantics; the coordinator only forwards).
	Mode engine.Mode
	Tol  float64
	// QueueLimit bounds each shard service's step queue; default
	// protocol.DefaultQueueLimit.
	QueueLimit int
	// Wire is the stream-encoding policy for the hosted shard services:
	// empty (or wire.WireBinary) grants a coordinator's binary request,
	// wire.WireNDJSON pins every stream to NDJSON — the knob that lets a
	// mixed-version fleet (old workers, new coordinator) be reproduced in
	// tests.
	Wire string
	// MaxWindow, when > 1, lets the hosted shard services grant pipelined
	// ingestion windows up to this depth: each keeps an ack ring of its
	// last MaxWindow executed steps (persisted in the checkpoint) so a
	// coordinator with that many steps in flight can reconcile a crash at
	// any offset. Zero or 1 keeps the worker lockstep — a coordinator
	// asking for a window degrades to lockstep against it.
	MaxWindow int
	// CommitEvery, when > 1, amortizes checkpoint durability with group
	// commit: one fsynced checkpoint write covers up to CommitEvery
	// executed steps, and their acks are released only once it lands —
	// checkpoint-before-ack per group instead of per step. Default 1
	// (checkpoint and fsync every step).
	CommitEvery int
}

// DefaultSpan is the start-placement half-width used when
// WorkerOptions.Span is zero, matching cmd/mobserve's -span default.
const DefaultSpan = 25.0

// Worker hosts shard services lazily and serves them over HTTP. Create
// one with NewWorker, mount it on an http.Server, and Close it to drain
// every hosted shard.
type Worker struct {
	cfg  core.Config
	opts WorkerOptions

	mu     sync.Mutex
	shards map[int]*server.Server
	closed bool
}

// NewWorker builds a worker for the sharded configuration cfg (the same
// global configuration every node of the cluster shares; cfg.Partition
// defines the shards). Sessions are checkpointed after every step, before
// acknowledgement, so an acked step is never lost to a crash — the
// invariant coordinator failover is built on.
func NewWorker(cfg core.Config, opts WorkerOptions) (*Worker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.NewAlg == nil {
		return nil, errors.New("cluster: worker needs an algorithm factory")
	}
	if opts.CheckpointDir == "" {
		return nil, errors.New("cluster: worker needs a checkpoint directory")
	}
	if opts.Span <= 0 {
		opts.Span = DefaultSpan
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg, opts: opts, shards: map[int]*server.Server{}}, nil
}

// CheckpointPath returns shard i's checkpoint file path.
func (w *Worker) CheckpointPath(i int) string {
	return filepath.Join(w.opts.CheckpointDir, fmt.Sprintf("shard-%d.ckpt", i))
}

// ServeHTTP dispatches /shard/{i}/... to the shard's service (opening it
// on first use) and answers /healthz.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write([]byte("ok\n"))
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/shard/")
	if !ok {
		http.NotFound(rw, r)
		return
	}
	idx, sub, ok := strings.Cut(rest, "/")
	if !ok || sub == "" {
		http.NotFound(rw, r)
		return
	}
	i, err := strconv.Atoi(idx)
	if err != nil || i < 0 || i >= w.cfg.Partition.Shards() {
		http.Error(rw, fmt.Sprintf("no shard %q in a %d-shard partition", idx, w.cfg.Partition.Shards()), http.StatusNotFound)
		return
	}
	floor := 0
	if f := r.URL.Query().Get("floor"); f != "" {
		floor, err = strconv.Atoi(f)
		if err != nil || floor < 0 {
			http.Error(rw, "bad floor: "+f, http.StatusBadRequest)
			return
		}
	}
	srv, err := w.shard(i, floor)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusConflict)
		return
	}
	http.StripPrefix("/shard/"+idx, srv.Handler()).ServeHTTP(rw, r)
}

// shard returns shard i's hosted service, opening it on first use. A live
// service whose step count lags floor is a stale incarnation — the shard
// was rehomed away, advanced elsewhere, and is now coming back — so it is
// aborted (no final checkpoint write that could clobber the newer owner's
// file) and reopened from the checkpoint.
func (w *Worker) shard(i, floor int) (*server.Server, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, errors.New("cluster: worker is shutting down")
	}
	if srv, ok := w.shards[i]; ok {
		if srv.T() >= floor {
			return srv, nil
		}
		_ = srv.Service().Abort()
		delete(w.shards, i)
	}
	srv, err := w.open(i)
	if err != nil {
		return nil, err
	}
	w.shards[i] = srv
	return srv, nil
}

// open starts shard i's service: resumed from its checkpoint file when one
// exists, fresh otherwise. Every shard session runs with NoCoalesce — the
// coordinator sends one step frame per global step (up to MaxWindow of
// them in flight), and merging two of its frames into one engine step
// would desync the global step counter — and checkpoints before
// acknowledgement: every step in lockstep, per group under CommitEvery.
func (w *Worker) open(i int) (*server.Server, error) {
	sopts := server.Options{
		QueueLimit:      w.opts.QueueLimit,
		CheckpointPath:  w.CheckpointPath(i),
		CheckpointEvery: 1,
		CommitEvery:     w.opts.CommitEvery,
		AckRing:         w.opts.MaxWindow,
		NoCoalesce:      true,
		Mode:            w.opts.Mode,
		Tol:             w.opts.Tol,
	}
	data, err := os.ReadFile(w.CheckpointPath(i))
	if err == nil {
		srv, err := server.Resume(w.cfg, w.opts.NewAlg(), data, sopts)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: resume: %w", i, err)
		}
		srv.SetStreamWire(w.opts.Wire)
		return srv, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	ks := make([]int, w.cfg.Partition.Shards())
	for j := range ks {
		ks[j] = w.cfg.Servers()
	}
	starts := shard.StartsSized(w.cfg, w.opts.Span, ks)
	srv, err := server.New(w.cfg, starts[i], w.opts.NewAlg(), sopts)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
	}
	srv.SetStreamWire(w.opts.Wire)
	return srv, nil
}

// Close drains every hosted shard service. Services are aborted, not
// closed: with per-step checkpointing the final write is redundant for a
// live owner and actively dangerous for a stale one (it would clobber a
// newer incarnation's file), so no worker ever writes a checkpoint at
// shutdown.
func (w *Worker) Close() error {
	w.mu.Lock()
	shards := w.shards
	w.shards = map[int]*server.Server{}
	w.closed = true
	w.mu.Unlock()
	var first error
	for _, srv := range shards {
		if err := srv.Service().Abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
