// Package cluster is the distributed fleet layer: it splits the sharded
// serving stack across processes. A Coordinator is a thin forwarding
// backend — it implements the protocol layer's region surface
// (protocol.RegionBackend), routes each global step's batch to the worker
// that owns each shard by axis-0 position, and merges the per-shard acks
// back into the exact combined step/metrics/snapshot shapes shard.Router
// produces in-process. A Worker hosts the per-shard engine sessions behind
// the versioned NDJSON streaming transport, checkpointing every step
// before acknowledgement.
//
// Failover invariant: no acknowledged step is ever lost, and no step is
// ever fed twice. Workers checkpoint (fsynced, atomic rename) before they
// ack, so when a worker dies mid-step its checkpoint holds the shard at
// either T == t (the in-flight step never executed) or T == t+1 (it
// executed but the ack was lost). The coordinator rehomes the shard by
// dialing another worker with ?floor=t, reads the welcome's step count,
// and reconciles: T == t resends the batch; T == t+1 recovers the executed
// step's exact outcome from the welcome's recovery payload (welcome.last)
// instead of resending. Any other T is a fatal lockstep violation and the
// coordinator refuses to continue.
//
// What is NOT fault-tolerant: the coordinator itself is a single point of
// control. If it crashes after some shards executed step t but before all
// did, the workers are stranded one step apart; a replacement coordinator
// detects the disagreeing welcomes at startup and refuses to adopt the
// fleet rather than guess. Dynamic rebalancing (server migration between
// shards) is also not available in cluster mode yet — shards live in
// different processes, and migrating server state across them is the
// ROADMAP's cross-host re-partitioning item.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/streamclient"
	"repro/internal/wire"
)

// CoordinatorOptions configures the forwarding tier.
type CoordinatorOptions struct {
	// Workers lists the worker addresses (host:port or URL). Shard i is
	// initially assigned to Workers[i % len(Workers)]; every address is a
	// failover candidate for every shard. Required.
	Workers []string
	// Heartbeat is the per-connection liveness cadence: a ping rides each
	// idle stream at this interval, and a connection silent for 3× the
	// interval is declared dead, triggering failover on the next step
	// instead of hanging it. Zero disables the probe (connection failures
	// are still detected by the transport itself).
	Heartbeat time.Duration
	// MaxAttempts, BaseBackoff, and MaxBackoff bound the reconnect storm
	// per candidate address (see streamclient.Options); after every
	// candidate is exhausted the step fails with a typed
	// *protocol.UnreachableError.
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Wire selects the frame encoding requested from workers: empty (or
	// streamclient.WireAuto) negotiates binary with transparent NDJSON
	// fallback for older workers; wire.WireNDJSON pins NDJSON;
	// wire.WireBinary requires binary. The mirrors are bit-identical
	// either way — binary acks carry exact float64 bits, like JSON's
	// round-trip — so /metrics, /state, and /snapshot do not depend on
	// the choice.
	Wire string
}

// shardAck is one shard's share of a global step, as recovered from its
// ack (or from a welcome's recovery payload after a failover).
type shardAck struct {
	cost      core.Cost
	clamped   int
	positions []geom.Point
}

// Coordinator forwards steps to shard workers and aggregates their
// outcomes, mirroring shard.Router's combined views exactly: per-shard
// costs, clamp and request counters, positions, and the merged per-step
// StepInfo are all reconstructed bit-identically from the acks (JSON
// float64 round-trips are exact), so a cluster run's /metrics, /state,
// and /snapshot match the in-process router's byte for byte.
//
// Like a Router, a Coordinator is driven by one goroutine (the service's
// step loop); the concurrency is inside Step, across shards.
type Coordinator struct {
	cfg  core.Config
	opts CoordinatorOptions
	obs  []engine.Observer
	name string

	assign  []int // shard i is served by opts.Workers[assign[i]]
	clients []*streamclient.Client

	steps     int
	requests  []int
	costs     []core.Cost
	clamped   []int
	pos       [][]geom.Point // live per-shard positions, mirrored from acks
	spare     [][]geom.Point // per-shard double buffer the next ack copies into
	last      []shard.StepStat
	failovers []wire.FailoverEvent
	maxMove   float64

	err      error
	finished bool
	res      *engine.Result
}

// NewCoordinator dials every shard's worker, verifies the fleet is in
// lockstep (all welcomes at the same step count — a disagreeing fleet is
// refused rather than guessed at), seeds its mirrors from the workers'
// live state, and announces the run to the observers in eopts. Mode and
// Tol in eopts are ignored: cap enforcement happens on the workers.
func NewCoordinator(cfg core.Config, opts CoordinatorOptions, eopts engine.Options) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one worker address")
	}
	n := cfg.Partition.Shards()
	c := &Coordinator{
		cfg:      cfg,
		opts:     opts,
		obs:      eopts.Observers,
		assign:   make([]int, n),
		clients:  make([]*streamclient.Client, n),
		requests: make([]int, n),
		costs:    make([]core.Cost, n),
		clamped:  make([]int, n),
		pos:      make([][]geom.Point, n),
		spare:    make([][]geom.Point, n),
		last:     make([]shard.StepStat, n),
	}
	for i := 0; i < n; i++ {
		c.assign[i] = i % len(opts.Workers)
		cl, err := streamclient.Dial(opts.Workers[c.assign[i]], c.streamPath(i, 0), c.dialOpts())
		if err != nil {
			c.closeClients()
			return nil, fmt.Errorf("cluster: shard %d on %s: %w", i, opts.Workers[c.assign[i]], err)
		}
		c.clients[i] = cl
	}
	w0 := c.clients[0].Welcome()
	c.name = fmt.Sprintf("%s×%d", w0.Algorithm, n)
	c.steps = w0.T
	for i, cl := range c.clients {
		w := cl.Welcome()
		if w.T != c.steps {
			c.closeClients()
			return nil, fmt.Errorf("cluster: fleet out of lockstep: shard 0 at step %d, shard %d at step %d — refusing to adopt", c.steps, i, w.T)
		}
		if w.Algorithm != w0.Algorithm {
			c.closeClients()
			return nil, fmt.Errorf("cluster: shard 0 runs %s, shard %d runs %s", w0.Algorithm, i, w.Algorithm)
		}
	}
	if err := c.adopt(); err != nil {
		c.closeClients()
		return nil, err
	}
	starts := c.Positions()
	for _, o := range c.obs {
		if b, ok := o.(engine.BeginObserver); ok {
			b.Begin(cfg, starts, c.name)
		}
	}
	return c, nil
}

// adopt seeds the coordinator's per-shard mirrors from the workers' live
// state and metrics, so a coordinator joining a fleet mid-run (or at step
// zero — the same code path) continues the exact counters. The fetched
// JSON round-trips float64 bits exactly, so the mirrors stay bit-equal
// with what an uninterrupted coordinator would hold.
func (c *Coordinator) adopt() error {
	for i := range c.clients {
		addr := c.opts.Workers[c.assign[i]]
		var st wire.StateResponse
		if err := c.getJSON(addr, fmt.Sprintf("/shard/%d/state", i), &st); err != nil {
			return fmt.Errorf("cluster: shard %d state from %s: %w", i, addr, err)
		}
		var m wire.MetricsResponse
		if err := c.getJSON(addr, fmt.Sprintf("/shard/%d/metrics", i), &m); err != nil {
			return fmt.Errorf("cluster: shard %d metrics from %s: %w", i, addr, err)
		}
		if st.T != c.steps {
			return fmt.Errorf("cluster: shard %d moved to step %d during adoption (expected %d)", i, st.T, c.steps)
		}
		if len(st.Positions) != c.cfg.Servers() {
			return fmt.Errorf("cluster: shard %d has %d servers, expected %d", i, len(st.Positions), c.cfg.Servers())
		}
		c.pos[i] = toGeom(st.Positions)
		c.costs[i] = core.Cost{Move: st.Cost.Move, Serve: st.Cost.Serve}
		c.clamped[i] = st.Clamped
		c.requests[i] = m.Requests
	}
	return nil
}

func (c *Coordinator) streamPath(i, floor int) string {
	return fmt.Sprintf("/shard/%d/stream?floor=%d", i, floor)
}

func (c *Coordinator) dialOpts() streamclient.Options {
	return streamclient.Options{
		Dim:              c.cfg.Dim,
		Wire:             c.opts.Wire,
		MaxAttempts:      c.opts.MaxAttempts,
		BaseBackoff:      c.opts.BaseBackoff,
		MaxBackoff:       c.opts.MaxBackoff,
		HeartbeatEvery:   c.opts.Heartbeat,
		HeartbeatTimeout: 3 * c.opts.Heartbeat,
	}
}

// getJSON fetches one worker HTTP endpoint.
func (c *Coordinator) getJSON(addr, path string, v any) error {
	data, err := httpGet(addr, path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// httpGet fetches path from a worker base address (host:port or URL).
func httpGet(addr, path string) ([]byte, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

func (c *Coordinator) closeClients() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// T returns the number of global steps fed so far.
func (c *Coordinator) T() int { return c.steps }

// Algorithm returns the coordinator's reported name: the workers' per
// shard algorithm tagged with the shard count, exactly like shard.Router.
func (c *Coordinator) Algorithm() string { return c.name }

// Cost returns the fleet-wide accumulated cost: the sum over shards, in
// shard order (the same accumulation the in-process router performs).
func (c *Coordinator) Cost() core.Cost {
	var total core.Cost
	for _, cost := range c.costs {
		total = total.Add(cost)
	}
	return total
}

// Clamped returns the fleet-wide count of cap-enforced server-moves.
func (c *Coordinator) Clamped() int {
	n := 0
	for _, v := range c.clamped {
		n += v
	}
	return n
}

// Positions returns a copy of every server position, concatenated in
// shard order.
func (c *Coordinator) Positions() []geom.Point {
	out := make([]geom.Point, 0, c.cfg.Partition.Shards()*c.cfg.Servers())
	for _, fleet := range c.pos {
		for _, p := range fleet {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Partition returns the shard layout the coordinator routes with.
func (c *Coordinator) Partition() core.Partition { return c.cfg.Partition }

// LastSteps returns each shard's share of the most recent global step.
func (c *Coordinator) LastSteps() []shard.StepStat {
	return append([]shard.StepStat(nil), c.last...)
}

// States returns every shard's live cumulative counters, mirroring
// shard.Router.States from the coordinator's ack-fed counters.
func (c *Coordinator) States() []shard.State {
	out := make([]shard.State, len(c.pos))
	for i := range c.pos {
		fleet := make([]geom.Point, len(c.pos[i]))
		for j, p := range c.pos[i] {
			fleet[j] = p.Clone()
		}
		out[i] = shard.State{
			Shard:     i,
			Servers:   len(c.pos[i]),
			Requests:  c.requests[i],
			Cost:      c.costs[i],
			Clamped:   c.clamped[i],
			Positions: fleet,
		}
	}
	return out
}

// Assignments returns the worker address currently serving each shard.
func (c *Coordinator) Assignments() []string {
	out := make([]string, len(c.assign))
	for i, w := range c.assign {
		out[i] = c.opts.Workers[w]
	}
	return out
}

// LastFailovers returns the rehoming events the most recent step applied,
// or nil.
func (c *Coordinator) LastFailovers() []wire.FailoverEvent {
	if len(c.failovers) == 0 {
		return nil
	}
	return append([]wire.FailoverEvent(nil), c.failovers...)
}

// Step routes one global step's batch to the shard workers and forwards
// each share concurrently (one frame per shard, including empty ones, so
// every shard session stays on the same step counter). A worker that died
// is failed over transparently — the shard is rehomed onto the next
// candidate worker, its last fsynced checkpoint restored, and the
// in-flight step reconciled through the welcome so it is neither lost nor
// double-fed. After the barrier the per-shard outcomes are merged into
// one StepInfo, bit-identical to the in-process router's.
//
// Errors are sticky, exactly like the router's: once any shard executed a
// step another shard refused (every candidate unreachable, or a lockstep
// violation), the fleet is out of sync and the coordinator refuses to
// compute from inconsistent state.
func (c *Coordinator) Step(requests []geom.Point) error {
	if c.err != nil {
		return c.err
	}
	if c.finished {
		return engine.ErrFinished
	}
	for i, v := range requests {
		if v.Dim() != c.cfg.Dim {
			return fmt.Errorf("cluster: request %d in step %d has dim %d, want %d", i, c.steps, v.Dim(), c.cfg.Dim)
		}
		if !v.IsFinite() {
			return fmt.Errorf("cluster: request %d in step %d is not finite: %v", i, c.steps, v)
		}
	}

	n := len(c.clients)
	buckets := make([][]wire.Point, n)
	for _, v := range requests {
		i := c.cfg.Partition.ShardOfPoint(v)
		buckets[i] = append(buckets[i], wire.Point(v))
	}

	t := c.steps
	acks := make([]shardAck, n)
	evs := make([][]wire.FailoverEvent, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acks[i], evs[i], errs[i] = c.stepShard(i, t, buckets[i])
		}(i)
	}
	wg.Wait()

	c.failovers = nil
	for _, e := range evs {
		c.failovers = append(c.failovers, e...)
	}
	for i, err := range errs {
		if err != nil {
			c.err = fmt.Errorf("cluster: step %d: shard %d: %w", t, i, err)
			return c.err
		}
	}

	// Merge in shard order, mirroring shard.Router.Step: identical values
	// in identical accumulation order keep every derived float bit-equal.
	prev := make([]geom.Point, 0, len(requests))
	pos := make([]geom.Point, 0, len(requests))
	info := engine.StepInfo{T: t, Requests: requests}
	for i := range acks {
		moved := 0.0
		for j := range acks[i].positions {
			if d := geom.Dist(c.pos[i][j], acks[i].positions[j]); d > moved {
				moved = d
			}
		}
		c.last[i] = shard.StepStat{
			Routed:  len(buckets[i]),
			Cost:    acks[i].cost,
			Moved:   moved,
			Clamped: acks[i].clamped,
		}
		c.requests[i] += len(buckets[i])
		c.costs[i] = c.costs[i].Add(acks[i].cost)
		c.clamped[i] += acks[i].clamped
		prev = append(prev, c.pos[i]...)
		pos = append(pos, acks[i].positions...)
		info.Cost = info.Cost.Add(acks[i].cost)
		info.Clamped += acks[i].clamped
		if moved > info.Moved {
			info.Moved = moved
		}
	}
	info.Prev = prev
	info.Pos = pos
	for i := range acks {
		// Swap the per-shard double buffer: the outgoing positions become
		// the copy target for the next step's ack. Observers hold prev/pos
		// on loan (the engine contract) and must clone to retain.
		c.spare[i], c.pos[i] = c.pos[i], acks[i].positions
	}
	c.steps++
	if info.Moved > c.maxMove {
		c.maxMove = info.Moved
	}
	for _, o := range c.obs {
		o.Observe(info)
	}
	return nil
}

// stepShard forwards one shard's share of global step t, failing over to
// the remaining candidate workers when the connection (or the worker
// behind it) is gone. It returns the shard's outcome, the failover events
// applied, and the terminal error if every candidate was exhausted. It
// touches only shard-i-owned state, so the per-shard goroutines never
// collide.
func (c *Coordinator) stepShard(i, t int, batch []wire.Point) (shardAck, []wire.FailoverEvent, error) {
	var lastErr error
	if cl := c.clients[i]; cl != nil && cl.Err() == nil {
		p, err := cl.Step(batch)
		if err == nil {
			ack, err := p.Wait()
			if err == nil {
				sa, err := c.fromAck(i, t, ack.StepResponse)
				p.Release()
				return sa, nil, err
			}
			p.Release()
			var we *wire.Error
			if errors.As(err, &we) {
				// The worker spoke: a typed refusal (bad payload, worker
				// shutting down mid-drain), not a dead connection. The step
				// did not execute anywhere; fail it without rehoming.
				return shardAck{}, nil, err
			}
			lastErr = err
		} else {
			lastErr = err
		}
	} else if cl != nil {
		lastErr = cl.Err()
	}

	// The connection is dead: the in-flight step may or may not have
	// executed before the worker went down. Rehome the shard — candidates
	// are the assigned worker first (a restart is the cheapest recovery),
	// then every other worker — and reconcile through the welcome.
	var events []wire.FailoverEvent
	from := c.opts.Workers[c.assign[i]]
	start := c.assign[i]
	nw := len(c.opts.Workers)
	attempts := 0
	for k := 0; k < nw; k++ {
		wi := (start + k) % nw
		addr := c.opts.Workers[wi]
		cl, err := streamclient.Dial(addr, c.streamPath(i, t), c.dialOpts())
		if err != nil {
			var ue *protocol.UnreachableError
			if errors.As(err, &ue) {
				attempts += ue.Attempts
				lastErr = ue.Err
				continue
			}
			// A reachable worker that rejected the handshake is a fatal
			// configuration problem, not an outage.
			return shardAck{}, events, err
		}
		w := cl.Welcome()
		ev := wire.FailoverEvent{T: t, Shard: i, From: from, To: addr, RestoredT: w.T}
		switch w.T {
		case t:
			// The crashed worker never executed the step: resend it.
			ev.Resent = true
			p, err := cl.Step(batch)
			if err == nil {
				ack, werr := p.Wait()
				if werr == nil {
					c.clients[i].Close()
					c.clients[i], c.assign[i] = cl, wi
					events = append(events, ev)
					sa, ferr := c.fromAck(i, t, ack.StepResponse)
					p.Release()
					return sa, events, ferr
				}
				p.Release()
				err = werr
			}
			cl.Close()
			lastErr = err
			attempts++
		case t + 1:
			// The step executed but its ack died with the worker: recover
			// the exact outcome from the restored checkpoint's recovery
			// payload instead of resending (which would double-feed).
			if w.Last == nil || w.Last.T != t {
				cl.Close()
				return shardAck{}, events, fmt.Errorf("worker %s restored step %d but carries no recovery payload for it", addr, w.T)
			}
			if w.Last.Batched != len(batch) {
				cl.Close()
				return shardAck{}, events, fmt.Errorf("worker %s recovered step %d with %d requests, coordinator sent %d", addr, t, w.Last.Batched, len(batch))
			}
			c.clients[i].Close()
			c.clients[i], c.assign[i] = cl, wi
			events = append(events, ev)
			sa, ferr := c.fromAck(i, t, wire.StepResponse{
				T:         w.Last.T,
				Batched:   w.Last.Batched,
				Cost:      w.Last.Cost,
				Clamped:   w.Last.Clamped,
				Positions: w.Last.Positions,
			})
			return sa, events, ferr
		default:
			// Neither t nor t+1: the shard advanced (or lagged) beyond the
			// one-step window the checkpoint-before-ack invariant allows.
			cl.Close()
			return shardAck{}, events, fmt.Errorf("worker %s is at step %d, coordinator expected %d or %d — lockstep violated", addr, w.T, t, t+1)
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no candidate workers")
	}
	return shardAck{}, events, &protocol.UnreachableError{
		Addr:     c.opts.Workers[(start+nw-1)%nw],
		Attempts: attempts,
		Err:      lastErr,
	}
}

// fromAck validates one shard's step outcome and converts it to the
// coordinator's internal form. The acked positions are deep-copied into
// the shard's spare buffer: on the binary encoding resp.Positions aliases
// the client's pooled ack storage, which is recycled as soon as the
// caller Releases the pending, so sharing it (the old toGeom behavior)
// would let a later ack overwrite the retained mirror.
func (c *Coordinator) fromAck(i, t int, resp wire.StepResponse) (shardAck, error) {
	if resp.T != t {
		return shardAck{}, fmt.Errorf("worker acked step %d, coordinator sent %d", resp.T, t)
	}
	if len(resp.Positions) != len(c.pos[i]) {
		return shardAck{}, fmt.Errorf("worker acked %d positions for a %d-server shard", len(resp.Positions), len(c.pos[i]))
	}
	return shardAck{
		cost:      core.Cost{Move: resp.Cost.Move, Serve: resp.Cost.Serve},
		clamped:   resp.Clamped,
		positions: copyPositions(c.spare[i], resp.Positions),
	}, nil
}

// copyPositions copies wire points into dst's reusable point buffers,
// growing only what is missing, and returns the filled slice.
func copyPositions(dst []geom.Point, pts []wire.Point) []geom.Point {
	if cap(dst) < len(pts) {
		grown := make([]geom.Point, len(pts))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(pts)]
	for i, p := range pts {
		dst[i] = geom.CopyInto(dst[i], geom.Point(p))
	}
	return dst
}

// Snapshot fetches every shard's engine snapshot from its worker and
// packs them into a combined document with exactly shard.Router's shape,
// so a cluster run can be scaled back down into an in-process Restore.
// The service holds its lock across the fetches and no step is in flight,
// so the per-shard documents form one consistent cut at the same global
// step.
func (c *Coordinator) Snapshot() ([]byte, error) {
	if c.finished {
		return nil, shard.ErrSnapshotFinished
	}
	if c.err != nil {
		return nil, fmt.Errorf("cluster: cannot snapshot a failed coordinator: %w", c.err)
	}
	n := len(c.clients)
	docs := make([]json.RawMessage, n)
	ks := make([]int, n)
	for i := 0; i < n; i++ {
		data, err := httpGet(c.opts.Workers[c.assign[i]], fmt.Sprintf("/shard/%d/snapshot", i))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d snapshot: %w", i, err)
		}
		docs[i] = data
		ks[i] = len(c.pos[i])
	}
	return shard.PackSnapshot(c.cfg, c.steps, c.requests, ks, 0, docs)
}

// Finish closes every worker connection and returns the aggregated fleet
// result from the coordinator's mirrors. The workers themselves are NOT
// finished — they keep their sessions resumable (another coordinator may
// adopt them); shutting worker processes down is the operator's call.
func (c *Coordinator) Finish() *engine.Result {
	if c.finished {
		res := *c.res
		return &res
	}
	c.finished = true
	c.closeClients()
	agg := &engine.Result{Algorithm: c.name, Steps: c.steps, MaxMove: c.maxMove}
	for i := range c.costs {
		agg.Cost = agg.Cost.Add(c.costs[i])
		agg.Clamped += c.clamped[i]
		for _, p := range c.pos[i] {
			agg.Final = append(agg.Final, p.Clone())
		}
	}
	c.res = agg
	for _, o := range c.obs {
		if e, ok := o.(engine.EndObserver); ok {
			res := *agg
			e.End(&res)
		}
	}
	res := *agg
	return &res
}

// toGeom converts wire points to geometry points, sharing the freshly
// decoded storage.
func toGeom(pts []wire.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point(p)
	}
	return out
}

// NewService wires a coordinator into the full serving core: coalescing,
// bounded queue, Watch subscriptions, typed errors — protocol.Service in
// front of a forwarding backend. The service's observers see the merged
// fleet-wide StepInfo, so /metrics and /state report exactly what an
// in-process router service would.
func NewService(cfg core.Config, copts CoordinatorOptions, popts protocol.Options) (*protocol.Service, error) {
	return protocol.NewFromBackend(cfg, func(eopts engine.Options) (protocol.Backend, error) {
		return NewCoordinator(cfg, copts, eopts)
	}, popts)
}
