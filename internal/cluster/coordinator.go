// Package cluster is the distributed fleet layer: it splits the sharded
// serving stack across processes. A Coordinator is a thin forwarding
// backend — it implements the protocol layer's region surface
// (protocol.RegionBackend), routes each global step's batch to the worker
// that owns each shard by axis-0 position, and merges the per-shard acks
// back into the exact combined step/metrics/snapshot shapes shard.Router
// produces in-process. A Worker hosts the per-shard engine sessions behind
// the versioned NDJSON streaming transport, checkpointing every step
// before acknowledgement.
//
// Failover invariant: no acknowledged step is ever lost, and no step is
// ever fed twice. Workers checkpoint (fsynced, atomic rename) before they
// ack, so when a worker dies mid-step its checkpoint holds the shard at
// either T == t (the in-flight step never executed) or T == t+1 (it
// executed but the ack was lost). The coordinator rehomes the shard by
// dialing another worker with ?floor=t, reads the welcome's step count,
// and reconciles: T == t resends the batch; T == t+1 recovers the executed
// step's exact outcome from the welcome's recovery payload (welcome.last)
// instead of resending. Any other T is a fatal lockstep violation and the
// coordinator refuses to continue.
//
// With a pipelined window (CoordinatorOptions.Window > 1) the invariant
// generalizes: up to W steps are in flight per shard, workers amortize the
// per-step fsync with group commit and keep an ack ring of their last W
// executed steps, and a restored worker at any T within
// [t_oldest, t_newest+1] is reconciled by recovering the executed prefix
// from the welcome's ring and resending the rest in order — exactly-once
// at every crash offset inside the window.
//
// What is NOT fault-tolerant: the coordinator itself is a single point of
// control. If it crashes after some shards executed step t but before all
// did, the workers are stranded one step apart; a replacement coordinator
// detects the disagreeing welcomes at startup and refuses to adopt the
// fleet rather than guess. Dynamic rebalancing (server migration between
// shards) is also not available in cluster mode yet — shards live in
// different processes, and migrating server state across them is the
// ROADMAP's cross-host re-partitioning item.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/streamclient"
	"repro/internal/wire"
)

// CoordinatorOptions configures the forwarding tier.
type CoordinatorOptions struct {
	// Workers lists the worker addresses (host:port or URL). Shard i is
	// initially assigned to Workers[i % len(Workers)]; every address is a
	// failover candidate for every shard. Required.
	Workers []string
	// Heartbeat is the per-connection liveness cadence: a ping rides each
	// idle stream at this interval, and a connection silent for 3× the
	// interval is declared dead, triggering failover on the next step
	// instead of hanging it. Zero disables the probe (connection failures
	// are still detected by the transport itself).
	Heartbeat time.Duration
	// MaxAttempts, BaseBackoff, and MaxBackoff bound the reconnect storm
	// per candidate address (see streamclient.Options); after every
	// candidate is exhausted the step fails with a typed
	// *protocol.UnreachableError.
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Wire selects the frame encoding requested from workers: empty (or
	// streamclient.WireAuto) negotiates binary with transparent NDJSON
	// fallback for older workers; wire.WireNDJSON pins NDJSON;
	// wire.WireBinary requires binary. The mirrors are bit-identical
	// either way — binary acks carry exact float64 bits, like JSON's
	// round-trip — so /metrics, /state, and /snapshot do not depend on
	// the choice.
	Wire string
	// Window, when > 1, asks every worker for a pipelined ingestion window
	// and lets the coordinator keep up to that many global steps in flight
	// at once (StepAsync/ResolveOldest) instead of paying one full
	// round-trip — and one worker checkpoint fsync — of latency per step.
	// The usable window is the minimum the workers grant, floored at 1, so
	// a mixed fleet with one lockstep worker degrades to lockstep instead
	// of breaking. Failover reconciliation generalizes from the welcome's
	// single recovery payload to its ack ring: a restored worker at step T
	// recovers every in-flight step below T from the ring and is resent
	// the rest, in order, so no step is lost or double-fed at any crash
	// offset within the window.
	Window int
}

// shardAck is one shard's share of a global step, as recovered from its
// ack (or from a welcome's recovery payload after a failover).
type shardAck struct {
	cost      core.Cost
	clamped   int
	positions []geom.Point
}

// cflight is one submitted-but-unresolved global step: its index, the
// per-shard request buckets (owned by the flight — a failover resends
// them), and per-shard resolution state. The per-shard slices are indexed
// by shard and each element is touched only by that shard's resolve
// goroutine, so concurrent per-shard resolution never collides.
type cflight struct {
	t    int
	reqs []geom.Point // the step's merged batch, for the observers at resolve
	// buckets[i] is shard i's share; pends[i] its in-flight frame on the
	// current connection (nil when unsent or already reconciled);
	// sendErr[i] a submission failure repaired by failover at resolve;
	// recovered[i] an outcome a failover already recovered from a welcome
	// ring ahead of this flight's own resolve.
	buckets   [][]wire.Point
	pends     []*streamclient.Pending
	sendErr   []error
	recovered []*wire.StepResponse
}

// Coordinator forwards steps to shard workers and aggregates their
// outcomes, mirroring shard.Router's combined views exactly: per-shard
// costs, clamp and request counters, positions, and the merged per-step
// StepInfo are all reconstructed bit-identically from the acks (JSON
// float64 round-trips are exact), so a cluster run's /metrics, /state,
// and /snapshot match the in-process router's byte for byte.
//
// Like a Router, a Coordinator is driven by one goroutine (the service's
// step loop); the concurrency is inside Step, across shards.
type Coordinator struct {
	cfg  core.Config
	opts CoordinatorOptions
	obs  []engine.Observer
	name string

	assign  []int // shard i is served by opts.Workers[assign[i]]
	clients []*streamclient.Client

	// window is the usable pipelined window (min of what the workers
	// granted and opts.Window, floored at 1); flights holds the submitted
	// steps not yet resolved, oldest first. Both are driven by the single
	// service step loop, like everything else on the coordinator.
	window  int
	flights []*cflight

	steps     int
	requests  []int
	costs     []core.Cost
	clamped   []int
	pos       [][]geom.Point // live per-shard positions, mirrored from acks
	spare     [][]geom.Point // per-shard double buffer the next ack copies into
	last      []shard.StepStat
	failovers []wire.FailoverEvent
	maxMove   float64

	err      error
	finished bool
	res      *engine.Result
}

// NewCoordinator dials every shard's worker, verifies the fleet is in
// lockstep (all welcomes at the same step count — a disagreeing fleet is
// refused rather than guessed at), seeds its mirrors from the workers'
// live state, and announces the run to the observers in eopts. Mode and
// Tol in eopts are ignored: cap enforcement happens on the workers.
func NewCoordinator(cfg core.Config, opts CoordinatorOptions, eopts engine.Options) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one worker address")
	}
	n := cfg.Partition.Shards()
	c := &Coordinator{
		cfg:      cfg,
		opts:     opts,
		obs:      eopts.Observers,
		assign:   make([]int, n),
		clients:  make([]*streamclient.Client, n),
		requests: make([]int, n),
		costs:    make([]core.Cost, n),
		clamped:  make([]int, n),
		pos:      make([][]geom.Point, n),
		spare:    make([][]geom.Point, n),
		last:     make([]shard.StepStat, n),
	}
	for i := 0; i < n; i++ {
		c.assign[i] = i % len(opts.Workers)
		cl, err := streamclient.Dial(opts.Workers[c.assign[i]], c.streamPath(i, 0), c.dialOpts())
		if err != nil {
			c.closeClients()
			return nil, fmt.Errorf("cluster: shard %d on %s: %w", i, opts.Workers[c.assign[i]], err)
		}
		c.clients[i] = cl
	}
	w0 := c.clients[0].Welcome()
	c.name = fmt.Sprintf("%s×%d", w0.Algorithm, n)
	c.steps = w0.T
	for i, cl := range c.clients {
		w := cl.Welcome()
		if w.T != c.steps {
			c.closeClients()
			return nil, fmt.Errorf("cluster: fleet out of lockstep: shard 0 at step %d, shard %d at step %d — refusing to adopt", c.steps, i, w.T)
		}
		if w.Algorithm != w0.Algorithm {
			c.closeClients()
			return nil, fmt.Errorf("cluster: shard 0 runs %s, shard %d runs %s", w0.Algorithm, i, w.Algorithm)
		}
	}
	// The usable window is what the least-granting worker allows: a mixed
	// fleet with one lockstep worker (no grant → 1) degrades to lockstep.
	c.window = 1
	if opts.Window > 1 {
		c.window = opts.Window
		for _, cl := range c.clients {
			g := cl.Welcome().Window
			if g < 1 {
				g = 1
			}
			if g < c.window {
				c.window = g
			}
		}
	}
	if err := c.adopt(); err != nil {
		c.closeClients()
		return nil, err
	}
	starts := c.Positions()
	for _, o := range c.obs {
		if b, ok := o.(engine.BeginObserver); ok {
			b.Begin(cfg, starts, c.name)
		}
	}
	return c, nil
}

// adopt seeds the coordinator's per-shard mirrors from the workers' live
// state and metrics, so a coordinator joining a fleet mid-run (or at step
// zero — the same code path) continues the exact counters. The fetched
// JSON round-trips float64 bits exactly, so the mirrors stay bit-equal
// with what an uninterrupted coordinator would hold.
func (c *Coordinator) adopt() error {
	for i := range c.clients {
		addr := c.opts.Workers[c.assign[i]]
		var st wire.StateResponse
		if err := c.getJSON(addr, fmt.Sprintf("/shard/%d/state", i), &st); err != nil {
			return fmt.Errorf("cluster: shard %d state from %s: %w", i, addr, err)
		}
		var m wire.MetricsResponse
		if err := c.getJSON(addr, fmt.Sprintf("/shard/%d/metrics", i), &m); err != nil {
			return fmt.Errorf("cluster: shard %d metrics from %s: %w", i, addr, err)
		}
		if st.T != c.steps {
			return fmt.Errorf("cluster: shard %d moved to step %d during adoption (expected %d)", i, st.T, c.steps)
		}
		if len(st.Positions) != c.cfg.Servers() {
			return fmt.Errorf("cluster: shard %d has %d servers, expected %d", i, len(st.Positions), c.cfg.Servers())
		}
		c.pos[i] = toGeom(st.Positions)
		c.costs[i] = core.Cost{Move: st.Cost.Move, Serve: st.Cost.Serve}
		c.clamped[i] = st.Clamped
		c.requests[i] = m.Requests
	}
	return nil
}

func (c *Coordinator) streamPath(i, floor int) string {
	return fmt.Sprintf("/shard/%d/stream?floor=%d", i, floor)
}

func (c *Coordinator) dialOpts() streamclient.Options {
	return streamclient.Options{
		Dim:              c.cfg.Dim,
		Wire:             c.opts.Wire,
		Window:           c.opts.Window,
		MaxAttempts:      c.opts.MaxAttempts,
		BaseBackoff:      c.opts.BaseBackoff,
		MaxBackoff:       c.opts.MaxBackoff,
		HeartbeatEvery:   c.opts.Heartbeat,
		HeartbeatTimeout: 3 * c.opts.Heartbeat,
	}
}

// getJSON fetches one worker HTTP endpoint. The body is a network input
// like any frame: decoded strictly, so a worker speaking a drifted schema
// is an error instead of silently dropped fields.
func (c *Coordinator) getJSON(addr, path string, v any) error {
	data, err := httpGet(addr, path)
	if err != nil {
		return err
	}
	return wire.UnmarshalStrict(data, v)
}

// httpGet fetches path from a worker base address (host:port or URL).
func httpGet(addr, path string) ([]byte, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

func (c *Coordinator) closeClients() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// T returns the number of global steps fed so far.
func (c *Coordinator) T() int { return c.steps }

// Window returns the usable pipelined window: the minimum the workers
// granted at handshake (and opts.Window), floored at 1 (lockstep).
func (c *Coordinator) Window() int { return c.window }

// Algorithm returns the coordinator's reported name: the workers' per
// shard algorithm tagged with the shard count, exactly like shard.Router.
func (c *Coordinator) Algorithm() string { return c.name }

// Cost returns the fleet-wide accumulated cost: the sum over shards, in
// shard order (the same accumulation the in-process router performs).
func (c *Coordinator) Cost() core.Cost {
	var total core.Cost
	for _, cost := range c.costs {
		total = total.Add(cost)
	}
	return total
}

// Clamped returns the fleet-wide count of cap-enforced server-moves.
func (c *Coordinator) Clamped() int {
	n := 0
	for _, v := range c.clamped {
		n += v
	}
	return n
}

// Positions returns a copy of every server position, concatenated in
// shard order.
func (c *Coordinator) Positions() []geom.Point {
	out := make([]geom.Point, 0, c.cfg.Partition.Shards()*c.cfg.Servers())
	for _, fleet := range c.pos {
		for _, p := range fleet {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Partition returns the shard layout the coordinator routes with.
func (c *Coordinator) Partition() core.Partition { return c.cfg.Partition }

// LastSteps returns each shard's share of the most recent global step.
func (c *Coordinator) LastSteps() []shard.StepStat {
	return append([]shard.StepStat(nil), c.last...)
}

// States returns every shard's live cumulative counters, mirroring
// shard.Router.States from the coordinator's ack-fed counters.
func (c *Coordinator) States() []shard.State {
	out := make([]shard.State, len(c.pos))
	for i := range c.pos {
		fleet := make([]geom.Point, len(c.pos[i]))
		for j, p := range c.pos[i] {
			fleet[j] = p.Clone()
		}
		out[i] = shard.State{
			Shard:     i,
			Servers:   len(c.pos[i]),
			Requests:  c.requests[i],
			Cost:      c.costs[i],
			Clamped:   c.clamped[i],
			Positions: fleet,
		}
	}
	return out
}

// Assignments returns the worker address currently serving each shard.
func (c *Coordinator) Assignments() []string {
	out := make([]string, len(c.assign))
	for i, w := range c.assign {
		out[i] = c.opts.Workers[w]
	}
	return out
}

// LastFailovers returns the rehoming events the most recent step applied,
// or nil.
func (c *Coordinator) LastFailovers() []wire.FailoverEvent {
	if len(c.failovers) == 0 {
		return nil
	}
	return append([]wire.FailoverEvent(nil), c.failovers...)
}

// Step routes one global step's batch to the shard workers and forwards
// each share concurrently (one frame per shard, including empty ones, so
// every shard session stays on the same step counter). A worker that died
// is failed over transparently — the shard is rehomed onto the next
// candidate worker, its last fsynced checkpoint restored, and the
// in-flight step reconciled through the welcome so it is neither lost nor
// double-fed. After the barrier the per-shard outcomes are merged into
// one StepInfo, bit-identical to the in-process router's.
//
// Errors are sticky, exactly like the router's: once any shard executed a
// step another shard refused (every candidate unreachable, or a lockstep
// violation), the fleet is out of sync and the coordinator refuses to
// compute from inconsistent state.
//
// Step is the lockstep form: submit one step and block for it. A windowed
// service drives StepAsync/ResolveOldest instead to overlap the round
// trips of up to Window steps.
func (c *Coordinator) Step(requests []geom.Point) error {
	if err := c.StepAsync(requests); err != nil {
		return err
	}
	return c.ResolveOldest()
}

// StepAsync submits one global step — fanning its buckets out to every
// shard's worker as pipelined frames — without waiting for the acks. A
// submission failure on a shard's connection is recorded, not returned:
// the resolve repairs it through the failover path, exactly like a frame
// that died after the write. The batch must stay valid and unmodified
// until the step's ResolveOldest returns.
func (c *Coordinator) StepAsync(requests []geom.Point) error {
	if c.err != nil {
		return c.err
	}
	if c.finished {
		return engine.ErrFinished
	}
	if len(c.flights) >= c.window {
		return fmt.Errorf("cluster: pipeline window %d is full", c.window)
	}
	t := c.steps + len(c.flights)
	for i, v := range requests {
		if v.Dim() != c.cfg.Dim {
			return fmt.Errorf("cluster: request %d in step %d has dim %d, want %d", i, t, v.Dim(), c.cfg.Dim)
		}
		if !v.IsFinite() {
			return fmt.Errorf("cluster: request %d in step %d is not finite: %v", i, t, v)
		}
	}

	n := len(c.clients)
	f := &cflight{
		t:         t,
		reqs:      requests,
		buckets:   make([][]wire.Point, n),
		pends:     make([]*streamclient.Pending, n),
		sendErr:   make([]error, n),
		recovered: make([]*wire.StepResponse, n),
	}
	for _, v := range requests {
		i := c.cfg.Partition.ShardOfPoint(v)
		f.buckets[i] = append(f.buckets[i], wire.Point(v))
	}
	for i, cl := range c.clients {
		if cl != nil && cl.Err() == nil {
			p, err := cl.Step(f.buckets[i])
			if err != nil {
				f.sendErr[i] = err
			} else {
				f.pends[i] = p
			}
		} else if cl != nil {
			f.sendErr[i] = cl.Err()
		}
	}
	c.flights = append(c.flights, f)
	return nil
}

// ResolveOldest blocks for the oldest in-flight step's per-shard acks
// (running the failover reconciliation where a connection died), merges
// them into one StepInfo, advances the mirrors, and notifies the
// observers — everything a synchronous Step does after its barrier.
func (c *Coordinator) ResolveOldest() error {
	if c.err != nil {
		return c.err
	}
	if c.finished {
		return engine.ErrFinished
	}
	if len(c.flights) == 0 {
		return errors.New("cluster: no step in flight")
	}
	f := c.flights[0]
	t := f.t
	n := len(c.clients)
	acks := make([]shardAck, n)
	evs := make([][]wire.FailoverEvent, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acks[i], evs[i], errs[i] = c.resolveShard(i, f)
		}(i)
	}
	wg.Wait()
	copy(c.flights, c.flights[1:])
	c.flights = c.flights[:len(c.flights)-1]

	c.failovers = nil
	for _, e := range evs {
		c.failovers = append(c.failovers, e...)
	}
	for i, err := range errs {
		if err != nil {
			c.err = fmt.Errorf("cluster: step %d: shard %d: %w", t, i, err)
			return c.err
		}
	}

	// Merge in shard order, mirroring shard.Router.Step: identical values
	// in identical accumulation order keep every derived float bit-equal.
	requests := f.reqs
	buckets := f.buckets
	prev := make([]geom.Point, 0, len(requests))
	pos := make([]geom.Point, 0, len(requests))
	info := engine.StepInfo{T: t, Requests: requests}
	for i := range acks {
		moved := 0.0
		for j := range acks[i].positions {
			if d := geom.Dist(c.pos[i][j], acks[i].positions[j]); d > moved {
				moved = d
			}
		}
		c.last[i] = shard.StepStat{
			Routed:  len(buckets[i]),
			Cost:    acks[i].cost,
			Moved:   moved,
			Clamped: acks[i].clamped,
		}
		c.requests[i] += len(buckets[i])
		c.costs[i] = c.costs[i].Add(acks[i].cost)
		c.clamped[i] += acks[i].clamped
		prev = append(prev, c.pos[i]...)
		pos = append(pos, acks[i].positions...)
		info.Cost = info.Cost.Add(acks[i].cost)
		info.Clamped += acks[i].clamped
		if moved > info.Moved {
			info.Moved = moved
		}
	}
	info.Prev = prev
	info.Pos = pos
	for i := range acks {
		// Swap the per-shard double buffer: the outgoing positions become
		// the copy target for the next step's ack. Observers hold prev/pos
		// on loan (the engine contract) and must clone to retain.
		c.spare[i], c.pos[i] = c.pos[i], acks[i].positions
	}
	c.steps++
	if info.Moved > c.maxMove {
		c.maxMove = info.Moved
	}
	for _, o := range c.obs {
		o.Observe(info)
	}
	return nil
}

// resolveShard produces shard i's share of the flight being resolved: a
// recovery a previous failover already banked, the normal in-order ack,
// or — when the connection died — the full failover reconciliation. It
// touches only shard-i-owned state (including the later flights' shard-i
// entries), so the per-shard goroutines never collide.
func (c *Coordinator) resolveShard(i int, f *cflight) (shardAck, []wire.FailoverEvent, error) {
	if r := f.recovered[i]; r != nil {
		f.recovered[i] = nil
		sa, err := c.fromAck(i, f.t, *r)
		return sa, nil, err
	}
	var lastErr error
	if p := f.pends[i]; p != nil {
		ack, err := p.Wait()
		if err == nil {
			sa, ferr := c.fromAck(i, f.t, ack.StepResponse)
			p.Release()
			f.pends[i] = nil
			return sa, nil, ferr
		}
		p.Release()
		f.pends[i] = nil
		var we *wire.Error
		if errors.As(err, &we) {
			// The worker spoke: a typed refusal (bad payload, worker
			// shutting down mid-drain), not a dead connection. The step
			// did not execute anywhere; fail it without rehoming.
			return shardAck{}, nil, err
		}
		lastErr = err
	} else if f.sendErr[i] != nil {
		lastErr = f.sendErr[i]
		f.sendErr[i] = nil
	}
	return c.failoverShard(i, f, lastErr)
}

// failoverShard rehomes shard i after its connection died with the flight
// f (the oldest) unresolved: candidates are the assigned worker first (a
// restart is the cheapest recovery), then every other worker. Each
// candidate's welcome is reconciled against EVERY in-flight step for this
// shard — steps its restored checkpoint already executed are recovered
// from the welcome's ack ring, the rest are resent in order on the new
// connection — so a crash at any offset within the window neither loses
// nor double-feeds a step.
func (c *Coordinator) failoverShard(i int, f *cflight, lastErr error) (shardAck, []wire.FailoverEvent, error) {
	var events []wire.FailoverEvent
	from := c.opts.Workers[c.assign[i]]
	start := c.assign[i]
	nw := len(c.opts.Workers)
	attempts := 0
	t := f.t
	newest := c.flights[len(c.flights)-1].t
	for k := 0; k < nw; k++ {
		wi := (start + k) % nw
		addr := c.opts.Workers[wi]
		cl, err := streamclient.Dial(addr, c.streamPath(i, t), c.dialOpts())
		if err != nil {
			var ue *protocol.UnreachableError
			if errors.As(err, &ue) {
				attempts += ue.Attempts
				lastErr = ue.Err
				continue
			}
			// A reachable worker that rejected the handshake is a fatal
			// configuration problem, not an outage.
			return shardAck{}, events, err
		}
		w := cl.Welcome()
		// Checkpoint-before-ack bounds the restored step count: at least t
		// (the oldest unacked step cannot have been committed-and-acked
		// below it) and at most one past the newest in-flight step.
		if w.T < t || w.T > newest+1 {
			cl.Close()
			return shardAck{}, events, fmt.Errorf("worker %s is at step %d, coordinator expected %d..%d — pipeline window violated", addr, w.T, t, newest+1)
		}
		sa, retry, rerr := c.reconcile(i, cl, w)
		if rerr != nil {
			cl.Close()
			if retry {
				lastErr = rerr
				attempts++
				continue
			}
			return shardAck{}, events, rerr
		}
		c.clients[i].Close()
		c.clients[i], c.assign[i] = cl, wi
		events = append(events, wire.FailoverEvent{
			T: t, Shard: i, From: from, To: addr,
			RestoredT: w.T, Resent: w.T <= newest,
		})
		return sa, events, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no candidate workers")
	}
	return shardAck{}, events, &protocol.UnreachableError{
		Addr:     c.opts.Workers[(start+nw-1)%nw],
		Attempts: attempts,
		Err:      lastErr,
	}
}

// reconcile replays shard i's in-flight suffix against a freshly dialed
// candidate at step w.T: flights below w.T executed before the crash and
// their exact outcomes are recovered from the welcome's ring (the oldest
// is converted and returned, later ones are banked in recovered[] for
// their own resolves); flights at or above w.T never executed and are
// resent in order. The returned retry flag distinguishes a transport
// failure on the new connection (try the next candidate) from a
// reconciliation that can never succeed (missing or mismatched ring entry
// — fatal).
func (c *Coordinator) reconcile(i int, cl *streamclient.Client, w wire.WelcomeFrame) (shardAck, bool, error) {
	addr := c.opts.Workers[c.assign[i]] // only for error text; reassignment happens on success
	for _, fj := range c.flights {
		// Any pending from the dead connection (or an earlier failed
		// candidate) is void; dropping without Wait is safe and the resend
		// below replaces it.
		fj.pends[i] = nil
		fj.sendErr[i] = nil
		if fj.t >= w.T {
			p, serr := cl.Step(fj.buckets[i])
			if serr != nil {
				return shardAck{}, true, serr
			}
			fj.pends[i] = p
			continue
		}
		ls := ringEntry(w, fj.t)
		if ls == nil {
			return shardAck{}, false, fmt.Errorf("worker %s restored step %d but carries no recovery payload for step %d", addr, w.T, fj.t)
		}
		if ls.Batched != len(fj.buckets[i]) {
			return shardAck{}, false, fmt.Errorf("worker %s recovered step %d with %d requests, coordinator sent %d", addr, fj.t, ls.Batched, len(fj.buckets[i]))
		}
		fj.recovered[i] = &wire.StepResponse{
			T:         ls.T,
			Batched:   ls.Batched,
			Cost:      ls.Cost,
			Clamped:   ls.Clamped,
			Positions: ls.Positions,
		}
	}
	// The oldest flight's outcome: banked above (aliasing the welcome's
	// storage), or the ack of its resend (aliasing the pending's pooled
	// buffer — converted via fromAck, which deep-copies the positions,
	// BEFORE Release recycles that buffer).
	f0 := c.flights[0]
	if r := f0.recovered[i]; r != nil {
		f0.recovered[i] = nil
		sa, err := c.fromAck(i, f0.t, *r)
		return sa, false, err
	}
	p := f0.pends[i]
	ack, werr := p.Wait()
	if werr != nil {
		p.Release()
		f0.pends[i] = nil
		return shardAck{}, true, werr
	}
	sa, err := c.fromAck(i, f0.t, ack.StepResponse)
	p.Release()
	f0.pends[i] = nil
	return sa, false, err
}

// ringEntry finds the welcome's recovery payload for step t: the ring
// entry with that index, or the single-step Last payload a lockstep (or
// pre-window) worker serves.
func ringEntry(w wire.WelcomeFrame, t int) *wire.LastStep {
	for i := range w.Ring {
		if w.Ring[i].T == t {
			return &w.Ring[i]
		}
	}
	if w.Last != nil && w.Last.T == t {
		return w.Last
	}
	return nil
}

// fromAck validates one shard's step outcome and converts it to the
// coordinator's internal form. The acked positions are deep-copied into
// the shard's spare buffer: on the binary encoding resp.Positions aliases
// the client's pooled ack storage, which is recycled as soon as the
// caller Releases the pending, so sharing it (the old toGeom behavior)
// would let a later ack overwrite the retained mirror.
func (c *Coordinator) fromAck(i, t int, resp wire.StepResponse) (shardAck, error) {
	if resp.T != t {
		return shardAck{}, fmt.Errorf("worker acked step %d, coordinator sent %d", resp.T, t)
	}
	if len(resp.Positions) != len(c.pos[i]) {
		return shardAck{}, fmt.Errorf("worker acked %d positions for a %d-server shard", len(resp.Positions), len(c.pos[i]))
	}
	return shardAck{
		cost:      core.Cost{Move: resp.Cost.Move, Serve: resp.Cost.Serve},
		clamped:   resp.Clamped,
		positions: copyPositions(c.spare[i], resp.Positions),
	}, nil
}

// copyPositions copies wire points into dst's reusable point buffers,
// growing only what is missing, and returns the filled slice.
func copyPositions(dst []geom.Point, pts []wire.Point) []geom.Point {
	if cap(dst) < len(pts) {
		grown := make([]geom.Point, len(pts))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(pts)]
	for i, p := range pts {
		dst[i] = geom.CopyInto(dst[i], geom.Point(p))
	}
	return dst
}

// Snapshot fetches every shard's engine snapshot from its worker and
// packs them into a combined document with exactly shard.Router's shape,
// so a cluster run can be scaled back down into an in-process Restore.
// The service holds its lock across the fetches and no step is in flight,
// so the per-shard documents form one consistent cut at the same global
// step.
func (c *Coordinator) Snapshot() ([]byte, error) {
	if c.finished {
		return nil, shard.ErrSnapshotFinished
	}
	if c.err != nil {
		return nil, fmt.Errorf("cluster: cannot snapshot a failed coordinator: %w", c.err)
	}
	if len(c.flights) > 0 {
		// The workers are ahead of the resolved mirrors while steps are in
		// flight; a snapshot taken now would not be one consistent cut.
		return nil, fmt.Errorf("cluster: cannot snapshot with %d steps in flight", len(c.flights))
	}
	n := len(c.clients)
	docs := make([]json.RawMessage, n)
	ks := make([]int, n)
	for i := 0; i < n; i++ {
		data, err := httpGet(c.opts.Workers[c.assign[i]], fmt.Sprintf("/shard/%d/snapshot", i))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d snapshot: %w", i, err)
		}
		docs[i] = data
		ks[i] = len(c.pos[i])
	}
	return shard.PackSnapshot(c.cfg, c.steps, c.requests, ks, 0, docs)
}

// Finish closes every worker connection and returns the aggregated fleet
// result from the coordinator's mirrors. The workers themselves are NOT
// finished — they keep their sessions resumable (another coordinator may
// adopt them); shutting worker processes down is the operator's call.
func (c *Coordinator) Finish() *engine.Result {
	if c.finished {
		res := *c.res
		return &res
	}
	c.finished = true
	c.closeClients()
	agg := &engine.Result{Algorithm: c.name, Steps: c.steps, MaxMove: c.maxMove}
	for i := range c.costs {
		agg.Cost = agg.Cost.Add(c.costs[i])
		agg.Clamped += c.clamped[i]
		for _, p := range c.pos[i] {
			agg.Final = append(agg.Final, p.Clone())
		}
	}
	c.res = agg
	for _, o := range c.obs {
		if e, ok := o.(engine.EndObserver); ok {
			res := *agg
			e.End(&res)
		}
	}
	res := *agg
	return &res
}

// toGeom converts wire points to geometry points, sharing the freshly
// decoded storage.
func toGeom(pts []wire.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point(p)
	}
	return out
}

// NewService wires a coordinator into the full serving core: coalescing,
// bounded queue, Watch subscriptions, typed errors — protocol.Service in
// front of a forwarding backend. The service's observers see the merged
// fleet-wide StepInfo, so /metrics and /state report exactly what an
// in-process router service would.
func NewService(cfg core.Config, copts CoordinatorOptions, popts protocol.Options) (*protocol.Service, error) {
	return protocol.NewFromBackend(cfg, func(eopts engine.Options) (protocol.Backend, error) {
		return NewCoordinator(cfg, copts, eopts)
	}, popts)
}
