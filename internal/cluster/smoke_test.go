package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

// TestClusterProcessSmoke is the end-to-end drill against REAL processes:
// build cmd/mobcluster, spawn two workers and a coordinator, drive steps
// over HTTP, SIGKILL one worker mid-run, keep driving — and require the
// coordinator's /metrics and /state to stay byte-identical to an
// uninterrupted in-process run of the same steps. The windowed variant
// reruns the same drill with pipelined ingestion and group commit turned
// on (-window 3, workers at -commit-every 2), pinning the negotiation and
// the ring-backed failover path through the real binary.
func TestClusterProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mobcluster")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/mobcluster").CombinedOutput(); err != nil {
		t.Fatalf("building mobcluster: %v\n%s", err, out)
	}
	t.Run("lockstep", func(t *testing.T) {
		runProcessSmoke(t, bin, nil, nil)
	})
	t.Run("windowed", func(t *testing.T) {
		runProcessSmoke(t, bin,
			[]string{"-window", "3", "-commit-every", "2"},
			[]string{"-window", "3"})
	})
}

// runProcessSmoke spawns one fleet from the prebuilt binary — workerExtra
// and coordExtra are appended to the respective roles' flags — and runs
// the SIGKILL-mid-run equivalence drill against it.
func runProcessSmoke(t *testing.T, bin string, workerExtra, coordExtra []string) {
	const before, total, perStep = 5, 10, 4
	const smokeSpan = 20.0 // -span: partition half-width AND fresh placement

	ckptDir := t.TempDir() // shared: the survivor takes over the victim's shards
	common := []string{"-dim", "2", "-k", "2", "-shards", "2", "-span", "20"}
	wargs := append(append([]string{"-role", "worker", "-addr", "127.0.0.1:0", "-ckpt-dir", ckptDir}, workerExtra...), common...)
	w1 := spawnNode(t, bin, wargs, "worker listening on ")
	w2 := spawnNode(t, bin, wargs, "worker listening on ")
	co := spawnNode(t, bin, append(append([]string{"-role", "coordinator", "-addr", "127.0.0.1:0", "-coalesce", "0",
		"-workers", w1.addr + "," + w2.addr}, coordExtra...), common...), "coordinator listening on ")

	// The uninterrupted reference, in-process, built exactly as mobcluster
	// builds its config from the flags above (Order's zero value is
	// MoveFirst, matching the binary's default).
	cfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, K: 2,
		Partition: core.UniformPartition(2, smokeSpan)}
	local, err := server.NewSharded(cfg, shard.Starts(cfg, smokeSpan), newMtCK, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(local.Handler())
	t.Cleanup(func() {
		lts.Close()
		_ = local.Close()
	})

	coURL := "http://" + co.addr
	for i := 0; i < before; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, coURL, reqs)
		postStep(t, lts.URL, reqs)
	}

	// SIGKILL worker 1: no shutdown hook runs, no final checkpoint — only
	// the per-step checkpoint-before-ack invariant protects the run.
	if err := w1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = w1.cmd.Wait()

	for i := before; i < total; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, coURL, reqs)
		postStep(t, lts.URL, reqs)
	}

	cm, lm := getBody(t, coURL+"/metrics"), getBody(t, lts.URL+"/metrics")
	if !bytes.Equal(cm, lm) {
		t.Fatalf("/metrics diverged after SIGKILL failover:\ncluster: %s\nlocal:   %s", cm, lm)
	}
	cs, ls := getBody(t, coURL+"/state"), getBody(t, lts.URL+"/state")
	if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
		t.Fatalf("/state diverged after SIGKILL failover:\ncluster: %s\nlocal:   %s", a, b)
	}
	var st wire.StateResponse
	if err := json.Unmarshal(cs, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers[0] != w2.addr {
		t.Fatalf("shard 0 not rehomed onto the survivor: %v", st.Workers)
	}
}

// node is one spawned mobcluster process plus its resolved listen address.
type node struct {
	cmd  *exec.Cmd
	addr string
}

// spawnNode starts one mobcluster process and waits for its startup line
// (which carries the resolved :0 address).
func spawnNode(t *testing.T, bin string, args []string, marker string) *node {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		// Keep draining stdout after the marker so the child never blocks
		// on a full pipe.
		sc := bufio.NewScanner(stdout)
		sent := false
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), marker); ok && !sent {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- strings.TrimSuffix(addr, ",")
				sent = true
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &node{cmd: cmd, addr: addr}
	case <-time.After(15 * time.Second):
		t.Fatalf("node %v never printed %q", args, marker)
		return nil
	}
}
