package cluster

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// testProxy is a TCP relay the tests put in front of a worker they intend
// to fail. httptest's CloseClientConnections cannot kill hijacked NDJSON
// streams (the tracker forgets a connection the moment it is hijacked), so
// "crashing" a worker in-process needs a cut upstream of it:
//
//   - kill() is a crash: every connection drops (both halves) and new
//     dials are refused — what a SIGKILLed process looks like from the
//     coordinator.
//   - blackhole() is a hang: established client-facing connections stay
//     OPEN but fall silent and new dials are refused — the failure mode
//     only a liveness probe can notice.
//   - silence() is one-way: requests still reach the worker and execute,
//     but its acks never come back — the executed-but-unacknowledged
//     window the pipelined failover tests need to open deterministically.
type testProxy struct {
	ln      net.Listener
	backend string
	dead    atomic.Bool
	silent  atomic.Bool

	mu       sync.Mutex
	clients  []net.Conn
	backends []net.Conn
}

func newTestProxy(t *testing.T, backend string) *testProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &testProxy{ln: ln, backend: backend}
	go p.accept()
	t.Cleanup(p.kill)
	return p
}

func (p *testProxy) addr() string { return p.ln.Addr().String() }

// kill crashes the proxied worker: listener and every connection close.
func (p *testProxy) kill() {
	p.dead.Store(true)
	p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.Close()
	}
	for _, c := range p.backends {
		c.Close()
	}
	p.clients, p.backends = nil, nil
}

// silence drops the worker→client direction only: steps keep flowing to
// the worker (which executes and checkpoints them), but the acks are
// swallowed. The listener stays open and new dials still relay.
func (p *testProxy) silence() {
	p.silent.Store(true)
}

// blackhole hangs the proxied worker: the listener closes and the backend
// halves drop, but the client-facing sockets stay open and silent.
func (p *testProxy) blackhole() {
	p.dead.Store(true)
	p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.backends {
		c.Close()
	}
	p.backends = nil
}

func (p *testProxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		backend, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.dead.Load() {
			p.mu.Unlock()
			client.Close()
			backend.Close()
			continue
		}
		p.clients = append(p.clients, client)
		p.backends = append(p.backends, backend)
		p.mu.Unlock()
		go p.pipe(backend, client, false)
		go p.pipe(client, backend, true)
	}
}

// pipe relays src → dst until either side fails. Once the proxy is dead it
// swallows anything still in flight instead of delivering it, and never
// closes the sockets itself — kill and blackhole decide which halves die.
// toClient marks the worker→client half, the one silence() suppresses.
func (p *testProxy) pipe(dst, src net.Conn, toClient bool) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if err != nil {
			return
		}
		if p.dead.Load() || (toClient && p.silent.Load()) {
			continue
		}
		if _, err := dst.Write(buf[:n]); err != nil {
			return
		}
	}
}
