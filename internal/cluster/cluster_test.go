package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/streamclient"
	"repro/internal/wire"
)

// testSpan is the fresh-fleet placement half-width shared by every node in
// these tests — workers and the local reference server must agree on it or
// their start positions (and therefore every downstream float) diverge.
const testSpan = 5.0

func testCfg(n, k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst, K: k,
		Partition: core.UniformPartition(n, 20)}
}

func newMtCK() core.FleetAlgorithm { return multi.NewMtCK() }

// spreadReqs sweeps the whole partitioned interval so every shard sees
// traffic (the same workload the server-side sharded tests drive).
func spreadReqs(t, nReq int) []wire.Point {
	out := make([]wire.Point, nReq)
	for i := range out {
		x := -19 + 38*math.Mod(0.37*float64(t*nReq+i)+0.11, 1.0)
		y := 5 * math.Sin(float64(t)+float64(i)*1.7)
		out[i] = wire.Point{x, y}
	}
	return out
}

// startWorker hosts a Worker on a real listener. Callers kill the returned
// httptest server themselves when the test's point is the kill.
func startWorker(t *testing.T, cfg core.Config, dir string) (*httptest.Server, *Worker) {
	t.Helper()
	w, err := NewWorker(cfg, WorkerOptions{NewAlg: newMtCK, CheckpointDir: dir, Span: testSpan})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = w.Close()
	})
	return ts, w
}

// fastDial keeps failover decisions quick in tests: two attempts with
// millisecond backoff per candidate.
func fastDial() CoordinatorOptions {
	return CoordinatorOptions{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
}

// startCluster spins up a full coordinator node over the given workers.
func startCluster(t *testing.T, cfg core.Config, copts CoordinatorOptions) *httptest.Server {
	t.Helper()
	svc, err := NewService(cfg, copts, protocol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewFromService(cfg, svc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = srv.Close()
	})
	return ts
}

// startLocal starts the in-process sharded reference server: what the
// cluster must be byte-indistinguishable from.
func startLocal(t *testing.T, cfg core.Config) *httptest.Server {
	t.Helper()
	s, err := server.NewSharded(cfg, shard.Starts(cfg, testSpan), newMtCK, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return ts
}

func postStep(t *testing.T, url string, reqs []wire.Point) {
	t.Helper()
	buf, err := json.Marshal(wire.StepRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/step", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /step = %d: %s", resp.StatusCode, body)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// stateWithoutWorkers parses a /state body and strips the cluster-only
// shard→worker assignment, the one field a local server cannot have.
func stateWithoutWorkers(t *testing.T, body []byte) []byte {
	t.Helper()
	var st wire.StateResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st.Workers = nil
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterMatchesLocal is the forwarding tier's core equivalence
// guarantee: the same steps fed to a coordinator over two real worker
// processes and to the in-process sharded server produce byte-identical
// /metrics, /state (modulo the worker assignment field), and /snapshot —
// and the cluster's packed snapshot scales back down into an in-process
// shard.Restore.
func TestClusterMatchesLocal(t *testing.T) {
	const steps, perStep = 25, 4
	cfg := testCfg(2, 2)
	w1, _ := startWorker(t, cfg, t.TempDir())
	w2, _ := startWorker(t, cfg, t.TempDir())
	copts := fastDial()
	copts.Workers = []string{w1.Listener.Addr().String(), w2.Listener.Addr().String()}
	cl := startCluster(t, cfg, copts)
	local := startLocal(t, cfg)

	for i := 0; i < steps; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, cl.URL, reqs)
		postStep(t, local.URL, reqs)
	}

	cm, lm := getBody(t, cl.URL+"/metrics"), getBody(t, local.URL+"/metrics")
	if !bytes.Equal(cm, lm) {
		t.Fatalf("/metrics diverged:\ncluster: %s\nlocal:   %s", cm, lm)
	}
	cs, ls := getBody(t, cl.URL+"/state"), getBody(t, local.URL+"/state")
	var st wire.StateResponse
	if err := json.Unmarshal(cs, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 || st.Workers[0] != copts.Workers[0] || st.Workers[1] != copts.Workers[1] {
		t.Fatalf("cluster /state workers = %v, want %v", st.Workers, copts.Workers)
	}
	if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
		t.Fatalf("/state diverged:\ncluster: %s\nlocal:   %s", a, b)
	}

	csnap, lsnap := getBody(t, cl.URL+"/snapshot"), getBody(t, local.URL+"/snapshot")
	if !bytes.Equal(csnap, lsnap) {
		t.Fatalf("/snapshot diverged:\ncluster: %s\nlocal:   %s", csnap, lsnap)
	}
	// Scale back down: the packed cluster snapshot feeds the in-process
	// restore and continues from the same step.
	r, err := shard.Restore(cfg, newMtCK, csnap, engine.Options{})
	if err != nil {
		t.Fatalf("restore from cluster snapshot: %v", err)
	}
	if r.T() != steps {
		t.Fatalf("restored router at step %d, want %d", r.T(), steps)
	}
	if got, want := r.Cost(), st.Cost; got.Move != want.Move || got.Serve != want.Serve {
		t.Fatalf("restored cost %+v != cluster state cost %+v", got, want)
	}
}

// TestFailoverResendsUnexecutedStep kills a worker whose shard never saw
// the in-flight step (checkpoint at T == t): the coordinator must rehome
// the shard onto the survivor, restore the checkpoint, RESEND the batch,
// surface the rehoming as a typed SSE failover event — and end the run
// byte-identical to an uninterrupted one.
func TestFailoverResendsUnexecutedStep(t *testing.T) {
	const before, total, perStep = 5, 10, 4
	cfg := testCfg(2, 2)
	dir := t.TempDir() // shared: the survivor restores the victim's shards
	w1, _ := startWorker(t, cfg, dir)
	w2, _ := startWorker(t, cfg, dir)
	px := newTestProxy(t, w1.Listener.Addr().String())
	copts := fastDial()
	copts.Workers = []string{px.addr(), w2.Listener.Addr().String()}
	cl := startCluster(t, cfg, copts)
	local := startLocal(t, cfg)

	sse, err := http.Get(cl.URL + "/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()

	for i := 0; i < before; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, cl.URL, reqs)
		postStep(t, local.URL, reqs)
	}
	// Crash worker 1 (cut at the proxy): its shard-0 checkpoint (shared
	// dir) stands at T == before, so the next step takes the resend path.
	px.kill()

	for i := before; i < total; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, cl.URL, reqs)
		postStep(t, local.URL, reqs)
	}

	cm, lm := getBody(t, cl.URL+"/metrics"), getBody(t, local.URL+"/metrics")
	if !bytes.Equal(cm, lm) {
		t.Fatalf("/metrics diverged after failover:\ncluster: %s\nlocal:   %s", cm, lm)
	}
	cs, ls := getBody(t, cl.URL+"/state"), getBody(t, local.URL+"/state")
	if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
		t.Fatalf("/state diverged after failover:\ncluster: %s\nlocal:   %s", a, b)
	}
	var st wire.StateResponse
	if err := json.Unmarshal(cs, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers[0] != copts.Workers[1] {
		t.Fatalf("shard 0 still assigned to the dead worker: %v", st.Workers)
	}

	ev := readFailoverEvent(t, sse.Body)
	if ev.V != wire.V1 || ev.Shard != 0 || ev.T != before || !ev.Resent {
		t.Fatalf("failover event = %+v, want shard 0 resent at step %d", ev, before)
	}
	if ev.From != copts.Workers[0] || ev.To != copts.Workers[1] {
		t.Fatalf("failover event route = %s → %s, want %s → %s", ev.From, ev.To, copts.Workers[0], copts.Workers[1])
	}
	if ev.RestoredT != before {
		t.Fatalf("failover event restored_t = %d, want %d (checkpoint before the step)", ev.RestoredT, before)
	}
}

// TestFailoverRecoversExecutedStep kills a worker AFTER its shard executed
// the in-flight step but before the coordinator saw the ack (checkpoint at
// T == t+1): resending would double-feed, so the coordinator must instead
// recover the executed step's exact outcome from the survivor's welcome —
// and still end byte-identical to an uninterrupted run.
func TestFailoverRecoversExecutedStep(t *testing.T) {
	const before, total, perStep = 5, 10, 4
	cfg := testCfg(2, 2)
	dir := t.TempDir()
	w1, _ := startWorker(t, cfg, dir)
	w2, _ := startWorker(t, cfg, dir)
	px := newTestProxy(t, w1.Listener.Addr().String())
	copts := fastDial()
	copts.Workers = []string{px.addr(), w2.Listener.Addr().String()}
	cl := startCluster(t, cfg, copts)
	local := startLocal(t, cfg)

	for i := 0; i < before; i++ {
		reqs := spreadReqs(i, perStep)
		postStep(t, cl.URL, reqs)
		postStep(t, local.URL, reqs)
	}

	// Feed shard 0's share of the NEXT step straight to worker 1 (behind
	// the coordinator's back, bypassing the proxy), then crash it — the
	// step executed and checkpointed, but no ack ever reached the
	// coordinator. That is exactly the crashed-after-execute window.
	reqs := spreadReqs(before, perStep)
	var shard0 []wire.Point
	for _, p := range reqs {
		if cfg.Partition.ShardOfPoint(toGeom([]wire.Point{p})[0]) == 0 {
			shard0 = append(shard0, p)
		}
	}
	direct, err := streamclient.Dial(w1.Listener.Addr().String(), "/shard/0/stream?floor=0", streamclient.Options{Dim: cfg.Dim})
	if err != nil {
		t.Fatal(err)
	}
	p, err := direct.Step(shard0)
	if err != nil {
		t.Fatal(err)
	}
	if ack, err := p.Wait(); err != nil || ack.T != before {
		t.Fatalf("direct step ack = %+v, %v", ack, err)
	}
	direct.Close()
	px.kill() // now the worker is gone for good, checkpoint at T == before+1

	for i := before; i < total; i++ {
		r := spreadReqs(i, perStep)
		postStep(t, cl.URL, r)
		postStep(t, local.URL, r)
	}

	cm, lm := getBody(t, cl.URL+"/metrics"), getBody(t, local.URL+"/metrics")
	if !bytes.Equal(cm, lm) {
		t.Fatalf("/metrics diverged after executed-step recovery:\ncluster: %s\nlocal:   %s", cm, lm)
	}
	cs, ls := getBody(t, cl.URL+"/state"), getBody(t, local.URL+"/state")
	if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
		t.Fatalf("/state diverged after executed-step recovery:\ncluster: %s\nlocal:   %s", a, b)
	}

	// The coordinator must have recovered (not resent) the executed step.
	var st wire.StateResponse
	if err := json.Unmarshal(cs, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers[0] != copts.Workers[1] {
		t.Fatalf("shard 0 not rehomed: %v", st.Workers)
	}
}

// TestHeartbeatDetectsSilentWorker pins liveness-based failover: a worker
// that goes silent without closing its connections (a hung process, a
// black-holed network) is declared dead by the coordinator's heartbeat,
// and the next step fails over instead of hanging forever.
func TestHeartbeatDetectsSilentWorker(t *testing.T) {
	const before, total, perStep = 3, 6, 4
	cfg := testCfg(2, 2)
	dir := t.TempDir()
	w1, _ := startWorker(t, cfg, dir)
	w2, _ := startWorker(t, cfg, dir)
	px := newTestProxy(t, w1.Listener.Addr().String())

	copts := fastDial()
	copts.Heartbeat = 10 * time.Millisecond // timeout 30ms
	copts.Workers = []string{px.addr(), w2.Listener.Addr().String()}
	cl := startCluster(t, cfg, copts)

	for i := 0; i < before; i++ {
		postStep(t, cl.URL, spreadReqs(i, perStep))
	}
	// The proxy goes silent: established connections stay open but relay
	// nothing, new connections are refused. Only the heartbeat can notice.
	px.blackhole()
	time.Sleep(120 * time.Millisecond) // > 3 heartbeat timeouts

	for i := before; i < total; i++ {
		postStep(t, cl.URL, spreadReqs(i, perStep))
	}
	var st wire.StateResponse
	if err := json.Unmarshal(getBody(t, cl.URL+"/state"), &st); err != nil {
		t.Fatal(err)
	}
	if st.T != total {
		t.Fatalf("cluster at step %d after heartbeat failover, want %d", st.T, total)
	}
	if st.Workers[0] != copts.Workers[1] {
		t.Fatalf("shard 0 not rehomed off the silent worker: %v", st.Workers)
	}
}

// TestAllWorkersDownIsTypedUnreachable pins the bounded reconnect storm:
// with every candidate gone, a step fails with a typed backend-unreachable
// error — surfaced as 502 through the HTTP layer — instead of retrying
// forever.
func TestAllWorkersDownIsTypedUnreachable(t *testing.T) {
	cfg := testCfg(2, 1)

	// At the backend layer: the typed error, its attempt accounting, and
	// its stickiness.
	wa, _ := startWorker(t, cfg, t.TempDir())
	pa := newTestProxy(t, wa.Listener.Addr().String())
	copts := fastDial()
	copts.Workers = []string{pa.addr()}
	co, err := NewCoordinator(cfg, copts, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Finish()
	if err := co.Step(toGeom(spreadReqs(0, 2))); err != nil {
		t.Fatal(err)
	}
	pa.kill()
	stepErr := co.Step(toGeom(spreadReqs(1, 2)))
	var ue *protocol.UnreachableError
	if !errors.As(stepErr, &ue) {
		t.Fatalf("step against a dead fleet = %v, want *protocol.UnreachableError", stepErr)
	}
	if ue.Attempts < copts.MaxAttempts {
		t.Fatalf("unreachable after %d attempts, want >= %d", ue.Attempts, copts.MaxAttempts)
	}
	if co.Step(toGeom(spreadReqs(2, 2))) != stepErr {
		t.Fatal("coordinator error must be sticky: the fleet may be out of lockstep")
	}

	// Through the full HTTP stack: the same failure surfaces as 502.
	wb, _ := startWorker(t, cfg, t.TempDir())
	pb := newTestProxy(t, wb.Listener.Addr().String())
	bopts := fastDial()
	bopts.Workers = []string{pb.addr()}
	cl := startCluster(t, cfg, bopts)
	postStep(t, cl.URL, spreadReqs(0, 2))
	pb.kill()
	buf, _ := json.Marshal(wire.StepRequest{Requests: spreadReqs(1, 2)})
	resp, err := http.Post(cl.URL+"/step", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("POST /step with the fleet down = %d (%s), want 502", resp.StatusCode, body)
	}
}

// TestWorkerFencesStaleIncarnation pins the floor token: a worker still
// hosting an old incarnation of a shard that advanced elsewhere must
// abort it and reload the newer checkpoint, not serve stale state.
func TestWorkerFencesStaleIncarnation(t *testing.T) {
	cfg := testCfg(2, 1)
	dir := t.TempDir()
	w1, _ := startWorker(t, cfg, dir)
	w2, _ := startWorker(t, cfg, dir)

	// Incarnation A on worker 1 executes steps 0 and 1.
	a, err := streamclient.Dial(w1.Listener.Addr().String(), "/shard/0/stream?floor=0", streamclient.Options{Dim: cfg.Dim})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p, err := a.Step([]wire.Point{{-10, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()

	// The shard moves to worker 2 (same checkpoint dir) and advances.
	b, err := streamclient.Dial(w2.Listener.Addr().String(), "/shard/0/stream?floor=2", streamclient.Options{Dim: cfg.Dim})
	if err != nil {
		t.Fatal(err)
	}
	if w := b.Welcome(); w.T != 2 {
		t.Fatalf("worker 2 restored T = %d, want 2", w.T)
	}
	p, err := b.Step([]wire.Point{{-10, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Back to worker 1, which still hosts incarnation A at T=2. The floor
	// outruns it, so the worker must fence: abort the stale service and
	// reopen from the checkpoint worker 2 wrote at T=3.
	c, err := streamclient.Dial(w1.Listener.Addr().String(), "/shard/0/stream?floor=3", streamclient.Options{Dim: cfg.Dim})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if w := c.Welcome(); w.T != 3 {
		t.Fatalf("fenced worker answered T = %d, want 3 (reloaded from the newer checkpoint)", w.T)
	}
	if w := c.Welcome(); w.Last == nil || w.Last.T != 2 {
		t.Fatalf("fenced welcome recovery payload = %+v, want step 2", c.Welcome().Last)
	}
}

// readFailoverEvent scans an SSE stream until a failover event arrives.
func readFailoverEvent(t *testing.T, body io.Reader) wire.FailoverEvent {
	t.Helper()
	var ev wire.FailoverEvent
	br := bufio.NewReader(body)
	event := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "failover":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			return ev
		}
	}
}
