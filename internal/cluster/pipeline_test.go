package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/wire"
)

// startWindowedWorker is startWorker with the pipelining knobs exposed:
// the hosted shard services grant ingestion windows up to maxWindow and
// group-commit their checkpoints every commitEvery steps. testing.TB so
// the cluster benchmarks reuse it.
func startWindowedWorker(t testing.TB, cfg core.Config, dir string, maxWindow, commitEvery int) (*httptest.Server, *Worker) {
	t.Helper()
	w, err := NewWorker(cfg, WorkerOptions{NewAlg: newMtCK, CheckpointDir: dir, Span: testSpan,
		MaxWindow: maxWindow, CommitEvery: commitEvery})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = w.Close()
	})
	return ts, w
}

// startDirectCluster wires a coordinator into a protocol.Service exactly
// like NewService does, but keeps the *Coordinator handle so a test can
// drive StepAsync/ResolveOldest itself — building a precise in-flight
// depth the service loop's own pacing could not reproduce — while still
// reading /metrics and /state off the real HTTP surface (the service's
// observers are notified at every resolve regardless of who calls it).
func startDirectCluster(t *testing.T, cfg core.Config, copts CoordinatorOptions) (*httptest.Server, *Coordinator) {
	t.Helper()
	var co *Coordinator
	svc, err := protocol.NewFromBackend(cfg, func(eopts engine.Options) (protocol.Backend, error) {
		c, err := NewCoordinator(cfg, copts, eopts)
		if err != nil {
			return nil, err
		}
		co = c
		return c, nil
	}, protocol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewFromService(cfg, svc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		_ = srv.Close()
	})
	return ts, co
}

// TestWindowNegotiation pins the handshake floor rule: the usable window
// is the minimum the workers grant, capped by the coordinator's ask and
// floored at lockstep — so a mixed fleet with one lockstep worker
// degrades instead of breaking.
func TestWindowNegotiation(t *testing.T) {
	cfg := testCfg(2, 1)
	wa, _ := startWindowedWorker(t, cfg, t.TempDir(), 4, 1)
	wb, _ := startWindowedWorker(t, cfg, t.TempDir(), 4, 1)
	wLock, _ := startWorker(t, cfg, t.TempDir())

	cases := []struct {
		name    string
		workers []string
		ask     int
		want    int
	}{
		{"worker-grant-caps-ask", []string{wa.Listener.Addr().String(), wb.Listener.Addr().String()}, 8, 4},
		{"ask-caps-grant", []string{wa.Listener.Addr().String(), wb.Listener.Addr().String()}, 2, 2},
		{"lockstep-worker-floors-fleet", []string{wa.Listener.Addr().String(), wLock.Listener.Addr().String()}, 8, 1},
		{"no-ask-stays-lockstep", []string{wa.Listener.Addr().String(), wb.Listener.Addr().String()}, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			copts := fastDial()
			copts.Workers = tc.workers
			copts.Window = tc.ask
			co, err := NewCoordinator(cfg, copts, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer co.Finish()
			if co.Window() != tc.want {
				t.Fatalf("negotiated window = %d, want %d (ask %d)", co.Window(), tc.want, tc.ask)
			}
		})
	}
}

// TestClusterWindowedMatchesLocal is the pipelined tier's equivalence
// guarantee on the happy path: waves of W in-flight steps over workers
// running group commit produce /metrics and /state byte-identical to the
// in-process sharded server fed the same steps one at a time.
func TestClusterWindowedMatchesLocal(t *testing.T) {
	const total, perStep, window = 12, 4, 3
	cfg := testCfg(2, 2)
	dir := t.TempDir()
	w1, _ := startWindowedWorker(t, cfg, dir, window, 2)
	w2, _ := startWindowedWorker(t, cfg, dir, window, 2)
	copts := fastDial()
	copts.Workers = []string{w1.Listener.Addr().String(), w2.Listener.Addr().String()}
	copts.Window = window
	cl, co := startDirectCluster(t, cfg, copts)
	if co.Window() != window {
		t.Fatalf("negotiated window = %d, want %d", co.Window(), window)
	}
	local := startLocal(t, cfg)

	for step := 0; step < total; step += window {
		n := window
		if total-step < n {
			n = total - step
		}
		for i := 0; i < n; i++ {
			reqs := spreadReqs(step+i, perStep)
			if err := co.StepAsync(toGeom(reqs)); err != nil {
				t.Fatalf("StepAsync(%d): %v", step+i, err)
			}
			postStep(t, local.URL, reqs)
		}
		for i := 0; i < n; i++ {
			if err := co.ResolveOldest(); err != nil {
				t.Fatalf("ResolveOldest at step %d+%d: %v", step, i, err)
			}
		}
	}

	cm, lm := getBody(t, cl.URL+"/metrics"), getBody(t, local.URL+"/metrics")
	if !bytes.Equal(cm, lm) {
		t.Fatalf("/metrics diverged under pipelining:\ncluster: %s\nlocal:   %s", cm, lm)
	}
	cs, ls := getBody(t, cl.URL+"/state"), getBody(t, local.URL+"/state")
	if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
		t.Fatalf("/state diverged under pipelining:\ncluster: %s\nlocal:   %s", a, b)
	}
}

// waitShardT polls one shard's state endpoint directly on a worker until
// its step counter reaches want — the synchronization point that makes
// "j of the in-flight steps executed before the crash" deterministic.
func waitShardT(t *testing.T, base string, shard, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st wire.StateResponse
		if err := json.Unmarshal(getBody(t, fmt.Sprintf("%s/shard/%d/state", base, shard)), &st); err != nil {
			t.Fatal(err)
		}
		if st.T == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d stuck at step %d, want %d", shard, st.T, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterCrashAtEveryWindowOffset is the pipelined failover property
// test: with W=3 steps in flight, crash the worker at EVERY reachable
// offset — k steps unresolved, of which j executed (checkpointed,
// unacknowledged) and k−j never arrived — and require the run to end
// byte-identical to an uninterrupted in-process run. Every (k, j) pair
// exercises a different reconciliation mix: j ring recoveries followed by
// k−j resends on the replacement connection.
func TestClusterCrashAtEveryWindowOffset(t *testing.T) {
	const before, total, perStep, window = 4, 9, 4, 3
	cfg := testCfg(2, 2)
	for k := 0; k <= window; k++ {
		for j := 0; j <= k; j++ {
			t.Run(fmt.Sprintf("inflight=%d/executed=%d", k, j), func(t *testing.T) {
				dir := t.TempDir() // shared: the survivor restores the victim's shard
				w1, _ := startWindowedWorker(t, cfg, dir, window, 1)
				w2, _ := startWindowedWorker(t, cfg, dir, window, 1)
				px := newTestProxy(t, w1.Listener.Addr().String())
				copts := fastDial()
				copts.Workers = []string{px.addr(), w2.Listener.Addr().String()}
				copts.Window = window
				cl, co := startDirectCluster(t, cfg, copts)
				local := startLocal(t, cfg)

				step := func(i int) []wire.Point {
					reqs := spreadReqs(i, perStep)
					if err := co.StepAsync(toGeom(reqs)); err != nil {
						t.Fatalf("StepAsync(%d): %v", i, err)
					}
					postStep(t, local.URL, reqs)
					return reqs
				}
				resolve := func() {
					if err := co.ResolveOldest(); err != nil {
						t.Fatalf("ResolveOldest: %v", err)
					}
				}

				for i := 0; i < before; i++ {
					step(i)
					resolve()
				}

				// Open the crash window: acks stop flowing, then j steps
				// reach the worker and execute (checkpoint at before+j),
				// then the remaining k−j in-flight steps are swallowed
				// before arrival, then the worker "dies".
				px.silence()
				for i := 0; i < j; i++ {
					step(before + i)
				}
				waitShardT(t, "http://"+w1.Listener.Addr().String(), 0, before+j)
				px.blackhole()
				for i := j; i < k; i++ {
					step(before + i)
				}
				px.kill()

				// Resolving the backlog runs the reconciliation: the first
				// resolve rehomes shard 0 onto the survivor, recovers the j
				// executed steps from the welcome ring, and resends the
				// rest; later resolves consume what it banked.
				for i := 0; i < k; i++ {
					resolve()
				}
				for i := before + k; i < total; i++ {
					step(i)
					resolve()
				}

				cm, lm := getBody(t, cl.URL+"/metrics"), getBody(t, local.URL+"/metrics")
				if !bytes.Equal(cm, lm) {
					t.Fatalf("/metrics diverged (k=%d, j=%d):\ncluster: %s\nlocal:   %s", k, j, cm, lm)
				}
				cs, ls := getBody(t, cl.URL+"/state"), getBody(t, local.URL+"/state")
				if a, b := stateWithoutWorkers(t, cs), stateWithoutWorkers(t, ls); !bytes.Equal(a, b) {
					t.Fatalf("/state diverged (k=%d, j=%d):\ncluster: %s\nlocal:   %s", k, j, a, b)
				}
				var st wire.StateResponse
				if err := json.Unmarshal(cs, &st); err != nil {
					t.Fatal(err)
				}
				if st.Workers[0] != copts.Workers[1] {
					t.Fatalf("shard 0 not rehomed onto the survivor: %v", st.Workers)
				}
			})
		}
	}
}
