// Package xrand provides deterministic, splittable pseudo-random streams
// for reproducible parallel experiments.
//
// Every simulation, adversary, and workload generator in this repository
// takes an explicit *xrand.Rand. Streams are derived from a base seed and a
// stream index, so a batch of jobs produces identical results no matter how
// the scheduler interleaves workers.
package xrand

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic pseudo-random source. It wraps a PCG generator
// from math/rand/v2 and adds the distributions used by this repository.
type Rand struct {
	src *rand.Rand
}

// New returns a stream seeded from the single seed value.
func New(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, mix(seed)))}
}

// NewStream returns the stream with the given index derived from a base
// seed. Distinct (seed, stream) pairs yield statistically independent
// streams; the mapping is deterministic.
func NewStream(seed, stream uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(mix(seed^0x9e3779b97f4a7c15), mix(stream+0x2545f4914f6cdd1d)))}
}

// Split derives a child stream from the current state. The parent advances
// by two draws; the child is independent of subsequent parent output.
func (r *Rand) Split() *Rand {
	return &Rand{src: rand.New(rand.NewPCG(r.src.Uint64(), r.src.Uint64()))}
}

// mix is the splitmix64 finalizer; it decorrelates nearby seeds.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.src.Float64() }

// Coin returns true with probability 1/2.
func (r *Rand) Coin() bool { return r.src.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Norm returns a standard normal variate.
func (r *Rand) Norm() float64 { return r.src.NormFloat64() }

// NormMS returns a normal variate with the given mean and standard deviation.
func (r *Rand) NormMS(mean, sigma float64) float64 { return mean + sigma*r.src.NormFloat64() }

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp requires rate > 0")
	}
	return r.src.ExpFloat64() / rate
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the normal approximation with continuity correction, which is more
// than accurate enough for workload generation.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(math.Round(r.NormMS(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	// Knuth's product method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Sign returns +1.0 or -1.0 with equal probability.
func (r *Rand) Sign() float64 {
	if r.Coin() {
		return 1
	}
	return -1
}
