package xrand

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical draws", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent streams produced %d/64 identical draws", same)
	}
}

func TestNewStreamReproducible(t *testing.T) {
	a := NewStream(99, 13)
	b := NewStream(99, 13)
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("stream (99,13) not reproducible at draw %d", i)
		}
	}
}

func TestSplitIndependentOfParent(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// Re-derive: a fresh parent advanced the same way yields the same child.
	parent2 := New(5)
	child2 := parent2.Split()
	for i := 0; i < 20; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatalf("split child not deterministic at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) out of bounds: %v", v)
		}
	}
}

func TestRangeMean(t *testing.T) {
	r := New(8)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Range(0, 10)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Range(0,10) mean = %v, want ~5", mean)
	}
}

func TestCoinFair(t *testing.T) {
	r := New(11)
	heads := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Coin() {
			heads++
		}
	}
	frac := float64(heads) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Coin heads fraction = %v, want ~0.5", frac)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(12)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	hit := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hit++
		}
	}
	frac := float64(hit) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", frac)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(14)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(15)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormMS(10, 2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormMS(10,2) mean = %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(16)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonSmallMean(t *testing.T) {
	r := New(17)
	n := 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(3)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Poisson(3) mean = %v", mean)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := New(18)
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(200)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-200) > 1 {
		t.Fatalf("Poisson(200) mean = %v", mean)
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.Poisson(100); v < 0 {
			t.Fatalf("Poisson returned negative %d", v)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if New(1).Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(20)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestSignBalanced(t *testing.T) {
	r := New(21)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		s := r.Sign()
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %v", s)
		}
		sum += s
	}
	if math.Abs(sum/float64(n)) > 0.02 {
		t.Fatalf("Sign imbalanced: mean %v", sum/float64(n))
	}
}

func TestIntNRange(t *testing.T) {
	r := New(22)
	for i := 0; i < 10000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) out of range: %d", v)
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}
