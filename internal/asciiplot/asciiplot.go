// Package asciiplot renders small scatter/line plots as plain text for the
// CLI tools, supporting linear and logarithmic axes. It exists so that the
// experiment binaries can show the shape of a curve (growth, flatness,
// crossover) without any plotting dependency.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named point set.
type Series struct {
	Name string
	X, Y []float64
	// Marker is the glyph used for points; 0 picks one automatically.
	Marker byte
}

// Plot describes the canvas.
type Plot struct {
	// Width and Height of the plotting area in characters; defaults 64×20.
	Width, Height int
	// Title is printed above the canvas.
	Title string
	// LogX and LogY select logarithmic axes (non-positive values are
	// dropped on a log axis).
	LogX, LogY bool
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws all series onto one canvas with shared axes.
func (p Plot) Render(series []Series) string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if p.LogX {
		tx = logT
	}
	if p.LogY {
		ty = logT
	}

	// Collect transformed points and ranges.
	type pt struct {
		x, y float64
		m    byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			pts = append(pts, pt{x: x, y: y, m: marker})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, q := range pts {
		col := int((q.x - minX) / (maxX - minX) * float64(w-1))
		row := h - 1 - int((q.y-minY)/(maxY-minY)*float64(h-1))
		grid[row][col] = q.m
	}
	yLo, yHi := inv(minY, p.LogY), inv(maxY, p.LogY)
	xLo, xHi := inv(minX, p.LogX), inv(maxX, p.LogX)
	for i, row := range grid {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%10.3g", yHi)
		} else if i == h-1 {
			label = fmt.Sprintf("%10.3g", yLo)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	b.WriteString(fmt.Sprintf("%12.3g%s%.3g\n", xLo, strings.Repeat(" ", maxInt(1, w-10)), xHi))
	// Legend.
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	return b.String()
}

func logT(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func inv(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
