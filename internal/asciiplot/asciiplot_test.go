package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	out := Plot{Title: "demo", Width: 40, Height: 10}.Render([]Series{
		{Name: "alpha", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "beta", X: []float64{1, 2, 3}, Y: []float64{9, 4, 1}},
	})
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing markers")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Plot{}.Render(nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderLogAxesDropNonPositive(t *testing.T) {
	out := Plot{LogX: true, LogY: true}.Render([]Series{
		{Name: "s", X: []float64{-1, 0, 10, 100}, Y: []float64{5, 5, 10, 100}},
	})
	if strings.Contains(out, "no data") {
		t.Fatal("log plot dropped everything")
	}
}

func TestRenderAllNonPositiveOnLog(t *testing.T) {
	out := Plot{LogY: true}.Render([]Series{
		{Name: "s", X: []float64{1, 2}, Y: []float64{-5, 0}},
	})
	if !strings.Contains(out, "no data") {
		t.Fatal("expected no data on log axis with non-positive values")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Plot{}.Render([]Series{
		{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}},
	})
	if strings.Contains(out, "no data") {
		t.Fatal("constant series dropped")
	}
}

func TestRenderPointPlacement(t *testing.T) {
	// One point at each corner: first row should hold the max-y point.
	out := Plot{Width: 10, Height: 5}.Render([]Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}, Marker: '#'},
	})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("top row missing max point:\n%s", out)
	}
	if !strings.Contains(lines[4], "#") {
		t.Fatalf("bottom row missing min point:\n%s", out)
	}
}

func TestCustomMarker(t *testing.T) {
	out := Plot{}.Render([]Series{{Name: "s", X: []float64{1}, Y: []float64{1}, Marker: '%'}})
	if !strings.Contains(out, "%") {
		t.Fatal("custom marker ignored")
	}
}

func TestMismatchedLengthsTruncate(t *testing.T) {
	out := Plot{}.Render([]Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1}}})
	if strings.Contains(out, "no data") {
		t.Fatal("should plot the one complete pair")
	}
}
