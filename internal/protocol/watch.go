package protocol

import (
	"context"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/wire"
)

// MetricsEvent is one push notification of the subscription API: emitted
// after every executed engine step with the step's own outcome and the
// aggregate counters at that instant. It is the typed, transport-neutral
// form of the server-sent events on GET /metrics/stream.
type MetricsEvent struct {
	// T is the executed step's index and Batched its merged request count.
	T       int
	Batched int
	// StepCost is the cost charged by step T alone.
	StepCost core.Cost

	// Steps through AvgStepCost mirror MetricsSnapshot after step T.
	Steps       int
	Requests    int
	Cost        core.Cost
	AvgStepCost float64
	QueueDepth  int
	Rejected    int64

	// Dropped counts the events this subscriber missed immediately before
	// this one: the step loop never blocks on a slow consumer — when the
	// subscriber's buffer is full the event is dropped and the next
	// delivered event carries the tally.
	Dropped int

	// Rebalance carries the server migration the step applied, if any: in
	// router mode with a rebalancing policy installed, a step whose load
	// skew crossed the policy's threshold migrates a server between
	// neighboring shards and reports it here. Nil on every other step. The
	// event is immutable and may be shared between subscribers.
	//
	// Layout changes survive the drop policy: when the migrating step's
	// event is dropped on a slow subscriber, the next event that IS
	// delivered to it carries the most recent undelivered migration (whose
	// Ks is the live layout), so a consumer tracking the layout from this
	// field never desyncs permanently.
	Rebalance *shard.RebalanceEvent

	// Failovers carries the shard-rehoming events the step applied, if
	// any: in cluster mode, a step during which the coordinator lost a
	// worker and restored its shard elsewhere reports each move here. Nil
	// on every other step. Like Rebalance, failovers survive the drop
	// policy — ownership changes dropped with their step event ride the
	// next delivered event — so a consumer tracking the shard→worker
	// assignment from this field never desyncs permanently.
	Failovers []wire.FailoverEvent
}

// WatchBuffer is each subscriber's event buffer: the slack a consumer has
// before the drop policy kicks in.
const WatchBuffer = 16

type subscriber struct {
	ch chan MetricsEvent
	// dropped counts events discarded since the last successful send;
	// guarded by the service's subMu.
	dropped int
	// pendingReb is the most recent rebalance event discarded with a
	// dropped step event; it rides the next delivered event so the
	// subscriber's view of the layout never desyncs. Guarded by subMu.
	pendingReb *shard.RebalanceEvent
	// pendingFail accumulates the failover events discarded with dropped
	// step events, in order; they ride ahead of the next delivered event's
	// own failovers. Guarded by subMu.
	pendingFail []wire.FailoverEvent
}

// Watch subscribes to the per-step metrics feed. The returned channel
// receives one MetricsEvent per executed step until ctx is done or the
// service closes, then is closed. Slow consumers are never allowed to
// stall the step loop: events beyond the subscriber's buffer are dropped,
// and the next delivered event reports how many were lost (Dropped).
// A nil ctx subscribes for the service's lifetime.
func (s *Service) Watch(ctx context.Context) <-chan MetricsEvent {
	sub := &subscriber{ch: make(chan MetricsEvent, WatchBuffer)}
	s.subMu.Lock()
	if s.subsClosed {
		s.subMu.Unlock()
		close(sub.ch)
		return sub.ch
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.unsubscribe(sub)
			case <-s.loopDone:
				// closeSubs already closed the channel.
			}
		}()
	}
	return sub.ch
}

// unsubscribe removes one subscriber and closes its channel. Safe against
// concurrent publish (both hold subMu) and against the service closing
// first (the map lookup guards the double close).
func (s *Service) unsubscribe(sub *subscriber) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if _, ok := s.subs[sub]; !ok {
		return
	}
	delete(s.subs, sub)
	close(sub.ch)
}

// publish fans one event out to every subscriber without ever blocking:
// a full buffer drops the event and bumps the subscriber's tally, which
// rides on its next delivered event — along with the most recent dropped
// rebalance event, so layout changes are never lost to the drop policy.
func (s *Service) publish(ev MetricsEvent) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		e := ev
		e.Dropped = sub.dropped
		if e.Rebalance == nil {
			e.Rebalance = sub.pendingReb
		}
		if len(sub.pendingFail) > 0 {
			// Prepend the dropped ownership changes, oldest first, without
			// aliasing either slice into the delivered event.
			merged := make([]wire.FailoverEvent, 0, len(sub.pendingFail)+len(ev.Failovers))
			merged = append(merged, sub.pendingFail...)
			merged = append(merged, ev.Failovers...)
			e.Failovers = merged
		}
		select {
		case sub.ch <- e:
			sub.dropped = 0
			sub.pendingReb = nil
			sub.pendingFail = nil
		default:
			sub.dropped++
			// Keep the newest migration; its Ks is the live layout.
			if ev.Rebalance != nil {
				sub.pendingReb = ev.Rebalance
			}
			// Keep every dropped ownership change, in order.
			sub.pendingFail = append(sub.pendingFail, ev.Failovers...)
		}
	}
}

// closeSubs ends every subscription at loop exit; later Watch calls get an
// already-closed channel.
func (s *Service) closeSubs() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.subsClosed = true
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
	}
}
