package protocol

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/wire"
)

// TestGroupCommitHoldsAcksUntilCadence pins checkpoint-before-ack under
// group commit: with CommitEvery = 3 and the queue kept busy, the first
// two executed steps stay unacknowledged (and the checkpoint file
// unwritten) until the third lands — then one commit releases all three.
func TestGroupCommitHoldsAcksUntilCadence(t *testing.T) {
	cfg := testConfig(1)
	path := filepath.Join(t.TempDir(), "group.ckpt")
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{})}
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: path,
		CommitEvery:    3,
		NoCoalesce:     true,
		QueueLimit:     8,
		Observers:      []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	p0, err := svc.Enqueue(reqsFor(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-obs.entered // the loop is parked inside step 0
	p1, err := svc.Enqueue(reqsFor(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := svc.Enqueue(reqsFor(2, 1))
	if err != nil {
		t.Fatal(err)
	}

	obs.release <- struct{}{}
	<-obs.entered // step 1 running ⇒ step 0 executed and is now held
	if len(p0.ch) != 0 {
		t.Fatal("step 0 acknowledged before its group committed")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint written before the group committed: %v", err)
	}
	obs.release <- struct{}{}
	<-obs.entered // step 2 running ⇒ steps 0 and 1 both held
	if len(p0.ch) != 0 || len(p1.ch) != 0 {
		t.Fatal("held steps acknowledged before the third completed the group")
	}
	obs.release <- struct{}{}

	// Step 3 completes the group: one commit, three acks, in step order.
	for i, p := range []*Pending{p0, p1, p2} {
		ack, err := p.Wait()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if ack.T != i || ack.Batched != 1 {
			t.Fatalf("step %d ack = %+v", i, ack)
		}
		p.Release()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no checkpoint after the commit: %v", err)
	}
	ck, err := wire.ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Metrics == nil || ck.Metrics.Steps != 3 {
		t.Fatalf("committed checkpoint covers %+v, want all 3 steps", ck.Metrics)
	}
}

// TestGroupCommitFlushesOnIdle: a sparse stream never waits for the full
// cadence — the commit fires the moment the queue goes idle, so group
// commit adds no latency when there is nothing to amortize over.
func TestGroupCommitFlushesOnIdle(t *testing.T) {
	cfg := testConfig(1)
	path := filepath.Join(t.TempDir(), "idle.ckpt")
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: path,
		CommitEvery:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < 2; i++ {
		// Submit blocks for the ack, so each returning at all proves the
		// idle flush released the single held step.
		if _, err := svc.Submit(reqsFor(i, 1)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("no checkpoint after idle step %d: %v", i, err)
		}
		ck, err := wire.ParseCheckpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Metrics.Steps != i+1 {
			t.Fatalf("idle commit after step %d covers %d steps", i, ck.Metrics.Steps)
		}
	}
}

// TestGroupCommitAbortReleasesHeld: Abort during a run with steps held
// for a future commit must release them as executed-but-not-durable
// (DurabilityError wrapping ErrShuttingDown) WITHOUT touching the
// checkpoint file, and refuse the still-queued batches outright.
func TestGroupCommitAbortReleasesHeld(t *testing.T) {
	cfg := testConfig(1)
	path := filepath.Join(t.TempDir(), "abort.ckpt")
	obs := &blockingObserver{entered: make(chan struct{}, 64), release: make(chan struct{}, 64)}
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: path,
		CommitEvery:    100, // the cadence never fires on its own
		NoCoalesce:     true,
		QueueLimit:     64,
		Observers:      []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}

	const queued = 20
	pends := make([]*Pending, queued)
	if pends[0], err = svc.Enqueue(reqsFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	<-obs.entered // parked inside step 0; the rest pile up behind it
	for i := 1; i < queued; i++ {
		if pends[i], err = svc.Enqueue(reqsFor(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- svc.Abort() }()
	// Release steps as the loop executes them; it stops executing (and the
	// entered channel goes quiet) once the drain starts refusing.
	go func() {
		for range obs.entered {
			obs.release <- struct{}{}
		}
	}()
	obs.release <- struct{}{}
	if err := <-closeDone; err != nil {
		t.Fatalf("abort: %v", err)
	}
	close(obs.entered)

	aborted, refused := 0, 0
	for i, p := range pends {
		_, err := p.Wait()
		var de *DurabilityError
		switch {
		case errors.As(err, &de):
			if !errors.Is(de.Err, ErrShuttingDown) {
				t.Fatalf("step %d durability error wraps %v, want ErrShuttingDown", i, de.Err)
			}
			aborted++
		case errors.Is(err, ErrShuttingDown):
			refused++
		case err == nil:
			// Possible only if every queued step executed before the drain
			// won a race (an idle commit then released them) — legal, but
			// vanishingly unlikely with 20 queued batches.
		default:
			t.Fatalf("step %d = %v, want abort-held or refused", i, err)
		}
	}
	if aborted > 0 {
		// The held group was aborted, so the file must never have been
		// written — an aborted service must not clobber a checkpoint that
		// may belong to a newer incarnation.
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("abort wrote the checkpoint file: %v", err)
		}
	}
	if aborted+refused != queued && aborted != 0 {
		t.Fatalf("outcomes: %d aborted + %d refused of %d", aborted, refused, queued)
	}
}

// TestNoCoalescePinsBatchPerStep: with NoCoalesce, concurrently queued
// batches are NOT merged — each becomes its own engine step with its own
// index, the invariant a pipelining forwarding tier's step numbering
// depends on.
func TestNoCoalescePinsBatchPerStep(t *testing.T) {
	cfg := testConfig(1)
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		NoCoalesce: true,
		QueueLimit: 8,
		Observers:  []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sizes := []int{2, 3, 1}
	pends := make([]*Pending, len(sizes))
	if pends[0], err = svc.Enqueue(reqsFor(0, sizes[0])); err != nil {
		t.Fatal(err)
	}
	<-obs.entered // parked inside step 0 with the queue filling behind it
	for i := 1; i < len(sizes); i++ {
		if pends[i], err = svc.Enqueue(reqsFor(i, sizes[i])); err != nil {
			t.Fatal(err)
		}
	}
	for range sizes {
		obs.release <- struct{}{}
	}
	for i, p := range pends {
		ack, err := p.Wait()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if ack.T != i || ack.Batched != sizes[i] || ack.Accepted != sizes[i] {
			t.Fatalf("step %d ack = %+v, want its own step of %d requests", i, ack, sizes[i])
		}
		p.Release()
	}
}

// TestAckRingPersistsAcrossResume: with AckRing configured the service
// keeps (and checkpoints) the outcomes of its most recent steps, each
// with its own position copy — and a resumed service re-serves the same
// ring, so suffix-replay recovery survives a crash.
func TestAckRingPersistsAcrossResume(t *testing.T) {
	cfg := testConfig(2)
	path := filepath.Join(t.TempDir(), "ring.ckpt")
	opts := Options{CheckpointPath: path, AckRing: 3}
	svc, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.MaxWindow(); got != 3 {
		t.Fatalf("MaxWindow = %d, want the ring depth 3", got)
	}
	for i := 0; i < 7; i++ {
		if _, err := svc.Submit(reqsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	ring := svc.RecentSteps()
	if len(ring) != 3 {
		t.Fatalf("ring holds %d steps, want 3", len(ring))
	}
	for i, ls := range ring {
		if want := 4 + i; ls.T != want {
			t.Fatalf("ring[%d].T = %d, want %d (oldest first)", i, ls.T, want)
		}
		if len(ls.Positions) != 2 {
			t.Fatalf("ring[%d] carries %d positions", i, len(ls.Positions))
		}
	}

	// Kill without Close; the per-step checkpoint carries the ring.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resume(cfg, multi.NewMtCK(), data, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.RecentSteps(); !reflect.DeepEqual(got, ring) {
		t.Fatalf("resumed ring diverged:\n%+v\nvs\n%+v", got, ring)
	}
	_ = svc // intentionally left un-Closed
}

// fakePipeline is a stub PipelinedBackend recording how deep the service's
// windowed loop actually pipelines: StepAsync counts submissions in
// flight, ResolveOldest blocks until the test feeds a token through gate.
type fakePipeline struct {
	window int
	gate   chan struct{}
	// resolving is signaled each time ResolveOldest begins blocking, so
	// the test can park the loop there deterministically.
	resolving chan struct{}

	mu          sync.Mutex
	t           int
	inflight    int
	maxInflight int
	submitted   int
}

func (f *fakePipeline) StepAsync(reqs []geom.Point) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inflight++
	f.submitted++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	return nil
}

func (f *fakePipeline) ResolveOldest() error {
	select {
	case f.resolving <- struct{}{}:
	default:
	}
	<-f.gate
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inflight--
	f.t++
	return nil
}

func (f *fakePipeline) Window() int { return f.window }

func (f *fakePipeline) stats() (maxInflight, submitted, resolved int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxInflight, f.submitted, f.t
}

func (f *fakePipeline) T() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}
func (f *fakePipeline) Step([]geom.Point) error { return errors.New("fakePipeline: synchronous Step") }
func (f *fakePipeline) Algorithm() string       { return "fake-pipeline" }
func (f *fakePipeline) Cost() core.Cost         { return core.Cost{} }
func (f *fakePipeline) Clamped() int            { return 0 }
func (f *fakePipeline) Positions() []geom.Point { return nil }
func (f *fakePipeline) Snapshot() ([]byte, error) {
	return nil, errors.New("fakePipeline: no snapshot")
}
func (f *fakePipeline) Finish() *engine.Result { return &engine.Result{} }

// startFakeWindowed builds a windowed service over a fakePipeline and
// parks its loop inside the first resolve with `queued` more batches
// waiting, returning every Pending (index 0 is the in-flight one).
func startFakeWindowed(t *testing.T, fake *fakePipeline, window, queued int) (*Service, []*Pending) {
	t.Helper()
	cfg := testConfig(1)
	svc, err := NewFromBackend(cfg, func(engine.Options) (Backend, error) { return fake, nil },
		Options{Window: window, NoCoalesce: true, QueueLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	pends := make([]*Pending, queued+1)
	if pends[0], err = svc.Enqueue(reqsFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	<-fake.resolving // the loop submitted step 0 and is parked in its resolve
	for i := 1; i <= queued; i++ {
		if pends[i], err = svc.Enqueue(reqsFor(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	return svc, pends
}

// TestWindowedLoopPipelines drives the service's windowed loop against a
// stub backend: once the queue is deep the loop keeps exactly Window
// steps in flight, resolves strictly in submission order, and acks carry
// consecutive step indices.
func TestWindowedLoopPipelines(t *testing.T) {
	fake := &fakePipeline{window: 8, gate: make(chan struct{}), resolving: make(chan struct{}, 1)}
	_, pends := startFakeWindowed(t, fake, 3, 5)

	// Feed the parked resolve: the loop then drains the queue into the
	// window — exactly 3 in flight — before it must resolve again.
	for i := 0; i < len(pends); i++ {
		fake.gate <- struct{}{}
	}
	for i, p := range pends {
		ack, err := p.Wait()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if ack.T != i || ack.Batched != 1 {
			t.Fatalf("step %d ack = %+v, want in-order resolution", i, ack)
		}
		p.Release()
	}
	maxInflight, submitted, resolved := fake.stats()
	if maxInflight != 3 {
		t.Fatalf("max in-flight depth = %d, want the full window of 3", maxInflight)
	}
	if submitted != len(pends) || resolved != len(pends) {
		t.Fatalf("submitted %d / resolved %d, want %d each", submitted, resolved, len(pends))
	}
}

// TestWindowedLoopHonorsBackendCap: the effective window is the MINIMUM of
// the service option and what the backend grants — a backend capped at 2
// never holds 3 submissions no matter what the option asks.
func TestWindowedLoopHonorsBackendCap(t *testing.T) {
	fake := &fakePipeline{window: 2, gate: make(chan struct{}), resolving: make(chan struct{}, 1)}
	_, pends := startFakeWindowed(t, fake, 5, 4)

	for i := 0; i < len(pends); i++ {
		fake.gate <- struct{}{}
	}
	for i, p := range pends {
		if ack, err := p.Wait(); err != nil || ack.T != i {
			t.Fatalf("step %d = %+v, %v", i, ack, err)
		}
		p.Release()
	}
	if maxInflight, _, _ := fake.stats(); maxInflight != 2 {
		t.Fatalf("max in-flight depth = %d, want the backend's cap of 2", maxInflight)
	}
}

// TestWindowOptionValidation: Window > 1 demands a pipelined backend, and
// a service cannot both pipeline its backend and group-commit checkpoints.
func TestWindowOptionValidation(t *testing.T) {
	cfg := testConfig(1)
	if _, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()),
		Options{Window: 4}); err == nil {
		t.Fatal("Window > 1 over a non-pipelined backend must be refused")
	}
	if _, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()),
		Options{Window: 4, CommitEvery: 4, CheckpointPath: filepath.Join(t.TempDir(), "x.ckpt")}); err == nil {
		t.Fatal("Window plus CommitEvery must be refused as mutually exclusive")
	}
}
