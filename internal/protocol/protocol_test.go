package protocol

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/multi"
	"repro/internal/shard"
	"repro/internal/wire"
)

func testConfig(k int) core.Config {
	return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst, K: k}
}

func reqsFor(t, nReq int) []geom.Point {
	out := make([]geom.Point, nReq)
	for i := range out {
		angle := 2*math.Pi*float64(t)/41 + float64(i)
		out[i] = geom.NewPoint(8*math.Cos(angle), 8*math.Sin(angle))
	}
	return out
}

// TestSubmitMatchesEngine: driving the service batch-by-batch yields the
// same trajectory and costs as stepping an engine session directly — the
// protocol layer adds serving semantics, not drift.
func TestSubmitMatchesEngine(t *testing.T) {
	const steps = 40
	cfg := testConfig(2)
	svc, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ref, err := engine.NewSession(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var total core.Cost
	for i := 0; i < steps; i++ {
		reqs := reqsFor(i, 2)
		ack, err := svc.Submit(reqs)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if ack.T != i || ack.Accepted != 2 || ack.Batched != 2 {
			t.Fatalf("ack %d = %+v", i, ack)
		}
		if err := ref.Step(reqs); err != nil {
			t.Fatal(err)
		}
		total = total.Add(ack.Cost)
	}
	m := svc.Metrics()
	if m.Steps != steps || m.Requests != steps*2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Cost != ref.Cost() || total != ref.Cost() {
		t.Fatalf("cost drift: service %v, acks %v, engine %v", m.Cost, total, ref.Cost())
	}
	st := svc.State()
	if st.T != steps || len(st.Positions) != 2 {
		t.Fatalf("state = %+v", st)
	}
	refPos := ref.Positions()
	for j, p := range st.Positions {
		if geom.Dist(p, refPos[j]) != 0 {
			t.Fatalf("position %d drift: %v vs %v", j, p, refPos[j])
		}
	}
}

// blockingObserver parks the step loop inside a step so tests can hold the
// queue full deterministically.
type blockingObserver struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingObserver) Observe(engine.StepInfo) {
	b.entered <- struct{}{}
	<-b.release
}

// TestEnqueueOverload pins the typed-backpressure contract: with the loop
// parked and the queue full, Enqueue fails fast with *OverloadError
// carrying the millisecond backoff hint, and the rejection is counted.
func TestEnqueueOverload(t *testing.T) {
	cfg := testConfig(1)
	obs := &blockingObserver{entered: make(chan struct{}, 8), release: make(chan struct{})}
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CoalesceWindow: 25 * time.Millisecond,
		QueueLimit:     1,
		Observers:      []engine.Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	first, err := svc.Enqueue(reqsFor(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-obs.entered // loop is parked inside the first step
	if _, err := svc.Enqueue(reqsFor(1, 1)); err != nil {
		t.Fatalf("second enqueue should claim the queue slot: %v", err)
	}

	_, err = svc.Enqueue(reqsFor(2, 1))
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow = %v, want *OverloadError", err)
	}
	if oe.RetryAfterMS != 25 {
		t.Fatalf("RetryAfterMS = %d, want the 25ms coalescing window", oe.RetryAfterMS)
	}

	obs.release <- struct{}{}
	<-obs.entered
	obs.release <- struct{}{}
	if ack, err := first.Wait(); err != nil || ack.T != 0 {
		t.Fatalf("first = %+v, %v", ack, err)
	}
	if got := svc.Metrics().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
}

// TestDurabilityError: when the checkpoint write fails, the step still
// executes exactly once and the error is typed with the executed index.
func TestDurabilityError(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "x.ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for want := 0; want < 3; want++ {
		_, err := svc.Submit(reqsFor(want, 1))
		var de *DurabilityError
		if !errors.As(err, &de) {
			t.Fatalf("submit %d = %v, want *DurabilityError", want, err)
		}
		if de.ExecutedT != want {
			t.Fatalf("ExecutedT = %d, want %d", de.ExecutedT, want)
		}
	}
	if m := svc.Metrics(); m.Steps != 3 || m.Requests != 3 {
		t.Fatalf("metrics after three durability errors = %+v, want each batch fed exactly once", m)
	}
}

// TestSubmitAfterClose: a closing service refuses new work with
// ErrShuttingDown instead of hanging or panicking.
func TestSubmitAfterClose(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(reqsFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(reqsFor(1, 1)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after close = %v, want ErrShuttingDown", err)
	}
}

// TestCheckpointRoundTrip: the service's checkpoint document resumes into
// a service whose metrics continue the pre-crash totals, and the file
// carries the wire version stamp (plus the legacy stamp for old readers).
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := testConfig(2)
	ckpt := filepath.Join(t.TempDir(), "svc.ckpt")
	svc, err := New(cfg, multi.SpreadStarts(cfg, 5), multi.NewMtCK(), Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := svc.Submit(reqsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill without Close: the per-step checkpoint must carry everything.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wire.ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.V != wire.V1 || ck.Version != wire.CheckpointVersion {
		t.Fatalf("checkpoint stamps = v%d/version%d, want v%d/version%d", ck.V, ck.Version, wire.V1, wire.CheckpointVersion)
	}

	r, err := Resume(cfg, multi.NewMtCK(), data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if m := r.Metrics(); m.Steps != 10 || m.Requests != 20 {
		t.Fatalf("resumed metrics = %+v, want 10 steps / 20 requests", m)
	}
	_ = svc // the "killed" service is intentionally left un-Closed
}

// TestShardedAckOwnsItsStats is the aliasing regression for router mode:
// Ack.Shards must be a copy of the router's per-shard step stats, because
// the router reuses that buffer on every step while callers read their
// acks outside the service lock. With the aliasing bug, this test fails
// under -race (concurrent submitters read acks while the loop keeps
// stepping).
func TestShardedAckOwnsItsStats(t *testing.T) {
	cfg := testConfig(2)
	cfg.Partition = core.UniformPartition(3, 20)
	svc, err := NewSharded(cfg, shard.Starts(cfg, 5),
		func() core.FleetAlgorithm { return multi.NewMtCK() }, Options{QueueLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ack, err := svc.Submit(reqsFor(g*1000+i, 3))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				// Read the shard stats after Submit returned — exactly
				// what a transport adapter does — and check they are
				// internally consistent with the ack they rode in on.
				if len(ack.Shards) != 3 {
					t.Errorf("ack has %d shard stats, want 3", len(ack.Shards))
					return
				}
				routed := 0
				for _, st := range ack.Shards {
					routed += st.Routed
				}
				if routed != ack.Batched {
					t.Errorf("shard routed sum %d != batched %d (torn stats)", routed, ack.Batched)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWatchReceivesEvents: each executed step publishes one event carrying
// the step index, batch size, and the running totals.
func TestWatchReceivesEvents(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ch := svc.Watch(context.Background())

	for i := 0; i < 5; i++ {
		if _, err := svc.Submit(reqsFor(i, 3)); err != nil {
			t.Fatal(err)
		}
		ev := <-ch
		if ev.T != i || ev.Batched != 3 || ev.Steps != i+1 || ev.Requests != (i+1)*3 {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Dropped != 0 {
			t.Fatalf("event %d reports drops on an attentive consumer: %+v", i, ev)
		}
	}
}

// TestWatchSlowConsumerDrops pins the drop policy: a subscriber that stops
// reading loses events beyond its buffer — the step loop never blocks —
// and the tally of lost events rides on the next delivered one.
func TestWatchSlowConsumerDrops(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ch := svc.Watch(context.Background())

	// Fill the buffer and then some without reading; every Submit
	// returns, proving the loop is not stalled by the unread subscriber.
	const total = WatchBuffer + 7
	for i := 0; i < total; i++ {
		if _, err := svc.Submit(reqsFor(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// The loop is idle (every Submit was acknowledged); give the final
	// publish a moment to land, then drain the kept prefix: the buffer
	// holds exactly the first WatchBuffer events, drop-free.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < WatchBuffer; i++ {
		ev := <-ch
		if ev.T != i || ev.Dropped != 0 {
			t.Fatalf("buffered event %d = %+v", i, ev)
		}
	}
	// The remaining events were dropped; the tally rides on the next
	// delivered event, so execute one more step now that there is room.
	if _, err := svc.Submit(reqsFor(total, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.T != total || ev.Dropped != total-WatchBuffer {
			t.Fatalf("post-drop event = %+v, want T=%d Dropped=%d", ev, total, total-WatchBuffer)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-drop event never delivered")
	}
}

// TestWatchUnsubscribeAndClose: cancelling the context closes the channel,
// and Close ends every remaining subscription (including ones asked for
// after the fact).
func TestWatchUnsubscribeAndClose(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := svc.Watch(ctx)
	cancel()
	if !eventuallyClosed(cancelled) {
		t.Fatal("cancelled subscription never closed")
	}
	// Publishing against the removed subscriber must not panic.
	if _, err := svc.Submit(reqsFor(0, 1)); err != nil {
		t.Fatal(err)
	}

	open := svc.Watch(context.Background())
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if !eventuallyClosed(open) {
		t.Fatal("Close left a subscription open")
	}
	if late := svc.Watch(context.Background()); !eventuallyClosed(late) {
		t.Fatal("Watch after Close must return a closed channel")
	}
}

// eventuallyClosed drains ch until it closes or the deadline passes.
func eventuallyClosed(ch <-chan MetricsEvent) bool {
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// hotReqs puts n requests in a tight cluster around (x, 0), so one shard
// of a partitioned service carries the whole step's load.
func hotReqs(t, n int, x float64) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		angle := 2*math.Pi*float64(t)/31 + float64(i)
		out[i] = geom.NewPoint(x+2*math.Cos(angle), 2*math.Sin(angle))
	}
	return out
}

// TestWatchCancelFreesSubscriber is the leak check for subscriber
// lifecycle: cancelling the context must remove the subscriber from the
// service's map (freeing its buffer) and end its watcher goroutine — not
// merely close the channel.
func TestWatchCancelFreesSubscriber(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	before := runtime.NumGoroutine()
	const subs = 16
	ctx, cancel := context.WithCancel(context.Background())
	chans := make([]<-chan MetricsEvent, subs)
	for i := range chans {
		chans[i] = svc.Watch(ctx)
	}
	// Put events in the buffers so the test also covers freeing non-empty
	// subscriptions.
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(reqsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	for i, ch := range chans {
		if !eventuallyClosed(ch) {
			t.Fatalf("subscriber %d never closed after cancel", i)
		}
	}

	// The map entry (and with it the buffer) must be gone, and the watcher
	// goroutines must exit; poll briefly, they unwind asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for {
		svc.subMu.Lock()
		left := len(svc.subs)
		svc.subMu.Unlock()
		leaked := runtime.NumGoroutine() - before
		if left == 0 && leaked <= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after cancel: %d subscribers still registered, %d extra goroutines", left, leaked)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The service must still serve and publish to fresh subscribers.
	fresh := svc.Watch(context.Background())
	if _, err := svc.Submit(reqsFor(9, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-fresh:
		if ev.Dropped != 0 {
			t.Fatalf("fresh subscriber starts with drops: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fresh subscription after mass-cancel got no event")
	}
}

// TestWatchCarriesRebalanceEvent: with a rebalancing policy installed, the
// step that migrates a server publishes the typed event on the metrics
// feed, and the service's state report shows the new layout.
func TestWatchCarriesRebalanceEvent(t *testing.T) {
	cfg := testConfig(2)
	cfg.Partition = core.UniformPartition(4, 20)
	svc, err := NewSharded(cfg, shard.Starts(cfg, 5),
		func() core.FleetAlgorithm { return multi.NewMtCK() },
		Options{Rebalancer: &shard.Threshold{WindowSteps: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ch := svc.Watch(context.Background())

	var ev *shard.RebalanceEvent
	for i := 0; i < 20 && ev == nil; i++ {
		if _, err := svc.Submit(hotReqs(i, 6, 15)); err != nil {
			t.Fatal(err)
		}
		got := <-ch
		ev = got.Rebalance
	}
	if ev == nil {
		t.Fatal("no rebalance event after 20 hotspot steps")
	}
	if ev.To != 3 || ev.From != 2 {
		t.Fatalf("migration %d→%d, want 2→3 (hotspot sits in shard 3)", ev.From, ev.To)
	}
	st := svc.State()
	total := 0
	for _, sh := range st.Shards {
		total += sh.Servers
		if len(sh.Positions) != sh.Servers {
			t.Fatalf("shard %d reports %d servers, %d positions", sh.Shard, sh.Servers, len(sh.Positions))
		}
	}
	if total != 8 {
		t.Fatalf("state layout sums to %d servers, want 8", total)
	}
	if st.Shards[3].Servers != 3 {
		t.Fatalf("hot shard has %d servers, want 3", st.Shards[3].Servers)
	}
}

// TestRebalancerRequiresShardedBackend: installing a policy on a
// single-session service is a configuration error, not a silent no-op.
func TestRebalancerRequiresShardedBackend(t *testing.T) {
	cfg := testConfig(1)
	_, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()),
		Options{Rebalancer: &shard.Threshold{}})
	if err == nil {
		t.Fatal("rebalancer on an unsharded backend must be refused")
	}
}

// TestResumeReproducesMigratedLayout is the serving-layer half of the
// layout-in-checkpoint invariant: kill a rebalanced service and resume it
// from its checkpoint file — the migrated layout, the metrics, and the
// state report all continue exactly where the killed process stood.
func TestResumeReproducesMigratedLayout(t *testing.T) {
	cfg := testConfig(2)
	cfg.Partition = core.UniformPartition(4, 20)
	path := filepath.Join(t.TempDir(), "ckpt")
	newAlg := func() core.FleetAlgorithm { return multi.NewMtCK() }
	opts := func() Options {
		return Options{CheckpointPath: path, Rebalancer: &shard.Threshold{WindowSteps: 4}}
	}

	svcA, err := NewSharded(cfg, shard.Starts(cfg, 5), newAlg, opts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := svcA.Submit(hotReqs(i, 6, 15)); err != nil {
			t.Fatal(err)
		}
	}
	wantMetrics := svcA.Metrics()
	wantState := svcA.State()
	if wantState.Shards[3].Servers != 3 {
		t.Fatalf("no migration before the kill: %+v", wantState.Shards)
	}
	if err := svcA.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := ResumeSharded(cfg, newAlg, snap, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	if got := svcB.Metrics(); !reflect.DeepEqual(got, wantMetrics) {
		t.Fatalf("resumed metrics diverged:\n%+v\nvs\n%+v", got, wantMetrics)
	}
	if got := svcB.State(); !reflect.DeepEqual(got, wantState) {
		t.Fatalf("resumed state diverged:\n%+v\nvs\n%+v", got, wantState)
	}
}

// TestWatchDropCarriesRebalance: a layout change whose step event was
// dropped on a slow subscriber rides the next delivered event, so a
// consumer tracking the layout from the feed never desyncs permanently.
func TestWatchDropCarriesRebalance(t *testing.T) {
	cfg := testConfig(1)
	svc, err := New(cfg, []geom.Point{geom.NewPoint(0, 0)}, core.Fleet(core.NewMtC()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ch := svc.Watch(context.Background())

	// Fill the subscriber's buffer, then publish a migrating step's event
	// into the full buffer: it is dropped, but its rebalance must be
	// remembered.
	for i := 0; i < WatchBuffer; i++ {
		svc.publish(MetricsEvent{T: i})
	}
	rb := &shard.RebalanceEvent{T: WatchBuffer, From: 0, To: 1, Ks: []int{1, 3}}
	svc.publish(MetricsEvent{T: WatchBuffer, Rebalance: rb})

	for i := 0; i < WatchBuffer; i++ {
		ev := <-ch
		if ev.Rebalance != nil {
			t.Fatalf("buffered event %d already carries a rebalance: %+v", i, ev)
		}
	}
	svc.publish(MetricsEvent{T: WatchBuffer + 1})
	ev := <-ch
	if ev.T != WatchBuffer+1 || ev.Dropped != 1 {
		t.Fatalf("post-drop event = %+v, want T=%d Dropped=1", ev, WatchBuffer+1)
	}
	if ev.Rebalance != rb {
		t.Fatalf("post-drop event lost the dropped migration: %+v", ev.Rebalance)
	}
	// Once delivered, the carried migration is cleared.
	svc.publish(MetricsEvent{T: WatchBuffer + 2})
	if ev := <-ch; ev.Rebalance != nil {
		t.Fatalf("carried migration delivered twice: %+v", ev.Rebalance)
	}
}
