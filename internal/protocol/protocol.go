// Package protocol is the transport-neutral serving core: it owns a
// session-shaped Backend — a single engine.Session or a shard.Router — and
// turns it into a Service that any transport adapter (the HTTP mux and the
// NDJSON streaming transport in internal/server, tests driving it
// directly) can expose without re-implementing serving semantics.
//
// The Service owns everything that used to live inside the HTTP server:
//
//   - the single step loop that drives the backend (the engine itself
//     stays single-threaded);
//   - the coalescing window that merges concurrently submitted batches
//     into one engine step;
//   - the bounded queue whose overflow is typed backpressure
//     (OverloadError) instead of transport-specific status codes;
//   - checkpointing: atomic writes before acknowledgement, with
//     DurabilityError marking the executed-but-not-durable case;
//   - the Metrics/MoveStats observers and their snapshot reads;
//   - a push subscription API (Watch) publishing a MetricsEvent per
//     executed step, with a per-subscriber drop policy so a slow consumer
//     can never stall the step loop.
//
// Transports translate: HTTP maps OverloadError to 429 + Retry-After and
// DurabilityError to 507; the streaming transport maps them to typed
// throttle and error frames. The semantics live here, once.
package protocol

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fsx"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Backend is the session the service drives: one batch per step, with the
// engine.Session accessor surface. engine.Session implements it directly;
// shard.Router implements it by routing each step across its per-region
// sessions and aggregating the results.
type Backend interface {
	Step(requests []geom.Point) error
	T() int
	Algorithm() string
	Cost() core.Cost
	Clamped() int
	Positions() []geom.Point
	Snapshot() ([]byte, error)
	Finish() *engine.Result
}

// RegionBackend is the surface every backend that partitions the fleet
// into axis-0 regions exposes — shard.Router in-process, and the cluster
// coordinator across processes. The service uses it to tag snapshots,
// metrics, and acks with per-shard payloads.
type RegionBackend interface {
	Backend
	Partition() core.Partition
	LastSteps() []shard.StepStat
	States() []shard.State
}

// ShardedBackend is the extra surface a router-mode backend exposes on top
// of the region surface: installing and observing the dynamic rebalancing
// policy. The cluster coordinator is a RegionBackend but not a
// ShardedBackend — migrating servers between shards that live in different
// processes is future work (see ROADMAP).
type ShardedBackend interface {
	RegionBackend
	SetRebalancer(shard.Rebalancer)
	LastRebalance() *shard.RebalanceEvent
}

// PipelinedBackend is the optional surface a forwarding-tier backend (the
// cluster coordinator) exposes to let the service keep several backend
// steps in flight at once instead of blocking on each: StepAsync submits
// one step's batch without waiting and ResolveOldest blocks for the
// oldest in-flight step, applying its outcome to the backend's mirrors
// and notifying the observers exactly as a synchronous Step would — so
// everything the service reads after a resolve (T, Cost, Positions,
// LastSteps, the observer counters) reflects precisely the resolved
// prefix. Both are called only from the service's step loop, under the
// service lock, with resolves strictly in submission order. Window caps
// how many submissions the backend can hold unresolved.
//
// The batch passed to StepAsync must stay valid and unmodified until its
// ResolveOldest returns (a failover resends it).
type PipelinedBackend interface {
	Backend
	StepAsync(requests []geom.Point) error
	ResolveOldest() error
	Window() int
}

// FailoverBackend is the optional surface a forwarding-tier backend (the
// cluster coordinator) exposes: the live shard→worker assignment and the
// failover events the most recent step applied. The service mirrors them
// into StateSnapshot.Workers and MetricsEvent.Failovers.
type FailoverBackend interface {
	// Assignments returns the worker address currently serving each shard
	// (a caller-owned copy).
	Assignments() []string
	// LastFailovers returns the rehoming events applied while executing
	// the most recent step, or nil; the slice is caller-owned.
	LastFailovers() []wire.FailoverEvent
}

// Options configures the service. The zero value serves with strict cap
// checking, no coalescing wait, a queue of DefaultQueueLimit batches, and
// no checkpointing.
type Options struct {
	// CoalesceWindow is how long the step loop waits after the first
	// queued batch for more batches to merge into the same engine step.
	// Zero merges only batches that are already queued, without waiting.
	CoalesceWindow time.Duration
	// QueueLimit bounds the number of batches waiting for the step loop;
	// a full queue refuses Submit with OverloadError. Default
	// DefaultQueueLimit.
	QueueLimit int
	// CheckpointPath, when non-empty, enables checkpointing: the session
	// snapshot is written there atomically (tmp file + rename) after every
	// CheckpointEvery-th step, before the step's callers are acknowledged.
	CheckpointPath string
	// CheckpointEvery is the number of steps between checkpoints.
	// Default 1 (checkpoint after every step).
	CheckpointEvery int
	// CommitEvery, when > 1, amortizes checkpoint durability with group
	// commit: executed steps are held unacknowledged until CommitEvery of
	// them have accumulated (or the queue goes idle, or the service
	// drains), then ONE checkpoint write — taken after the newest held
	// step, so it covers every step in the group — is made durable and the
	// whole group is acknowledged at once. Checkpoint-before-ack is
	// preserved per group: an acknowledged step is always covered by a
	// durable checkpoint, which a per-step cadence buys with one fsync per
	// step and group commit buys with one fsync per CommitEvery steps.
	// Overrides CheckpointEvery, has no effect without a CheckpointPath,
	// and is mutually exclusive with Window (a pipelining coordinator does
	// not checkpoint; its workers do).
	CommitEvery int
	// AckRing, when > 1, keeps the outcomes of the most recent AckRing
	// executed steps — each with a deep copy of its post-step positions —
	// instead of only the newest. The ring is persisted in the checkpoint
	// and re-served in WelcomeFrame.Ring, so a pipelined client that
	// reconnects with up to AckRing frames in flight can recover every
	// executed step's exact outcome and resend only the true suffix. It is
	// also the pipelined window the service advertises (MaxWindow).
	AckRing int
	// Window, when > 1 and the backend implements PipelinedBackend, lets
	// the step loop keep up to Window backend steps in flight at once
	// (submitting new steps while earlier ones await their acks) instead
	// of blocking on each. Acknowledgements, observer updates, and Watch
	// events still happen strictly in step order, at each resolve.
	Window int
	// NoCoalesce pins exactly one queued batch per engine step: the loop
	// never merges concurrently queued batches. A pipelining forwarding
	// tier needs it on the receiving service — with several frames in
	// flight the coalescer would merge them into one engine step and
	// desynchronize the sender's step numbering.
	NoCoalesce bool
	// Mode and Tol configure the engine's cap enforcement.
	Mode engine.Mode
	Tol  float64
	// Observers are extra engine observers appended after the service's
	// own metrics and movement-stats observers. They are notified from the
	// step loop; implementations must not call back into the service.
	Observers []engine.Observer
	// Rebalancer, when non-nil, installs a dynamic rebalancing policy on a
	// router-mode backend: per-shard load is watched over the policy's
	// sliding window and servers migrate between neighboring shards when
	// the skew crosses its threshold. Applied migrations ride the Watch
	// feed as MetricsEvent.Rebalance. Requires NewSharded/ResumeSharded —
	// an unsharded backend has nothing to rebalance and is refused.
	Rebalancer shard.Rebalancer
}

// DefaultQueueLimit is the queue bound used when Options.QueueLimit is 0.
const DefaultQueueLimit = 64

func (o Options) withDefaults() Options {
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.CommitEvery <= 1 || o.CheckpointPath == "" {
		o.CommitEvery = 1
	}
	return o
}

// Ack is the typed outcome of one executed engine step, handed to every
// caller whose batch was coalesced into it. All merged callers share T,
// Batched, Cost, Positions, and Shards; Accepted is per-caller.
type Ack struct {
	// T is the index of the engine step that served this batch.
	T int
	// Accepted is the number of requests from this caller.
	Accepted int
	// Batched is the total number of requests coalesced into step T.
	Batched int
	// Cost is the cost of step T.
	Cost core.Cost
	// Positions holds every server position after the step (read-only;
	// shared between merged callers). When the backend supports in-place
	// position copies the slice is a pooled buffer: it stays valid until
	// every merged caller has called Release, and must not be retained
	// past that point.
	Positions []geom.Point
	// Shards tags the step with each shard's share in router mode; nil on
	// unsharded backends.
	Shards []shard.StepStat
	// Clamped counts the step's cap-clamped server moves, so a forwarding
	// tier can keep exact fleet-wide clamp counters without re-deriving
	// engine behavior.
	Clamped int

	// buf is the pooled backing of Positions, reference-counted across the
	// merged callers; nil when the positions were freshly allocated.
	buf *posBuf
}

// Release hands the ack's pooled position buffer back to the service once
// this caller is done reading Positions. Call it exactly once per ack
// received (copies of one ack share the buffer — only one copy may release
// it); calling it on an ack without a pooled buffer is a no-op. After
// Release the ack's Positions are nil.
func (a *Ack) Release() {
	b := a.buf
	if b == nil {
		return
	}
	a.buf = nil
	a.Positions = nil
	if b.refs.Add(-1) == 0 {
		b.svc.posPool.Put(b)
	}
}

// posBuf is a pooled position buffer shared by the acks of one executed
// step; refs counts the merged callers that have not yet released it.
type posBuf struct {
	pts  []geom.Point
	refs atomic.Int32
	svc  *Service
}

// positionsInto is the optional backend fast path: copy the current
// positions into a reusable buffer instead of allocating a fresh clone
// per step. engine.Session implements it.
type positionsInto interface {
	PositionsInto([]geom.Point) []geom.Point
}

// LastStep is the outcome of the most recent executed step, kept so a
// streaming transport can re-serve a lost ack to a reconnecting pipeliner
// (WelcomeFrame.Last): the step's index, batch size, own cost, clamp
// count, and the post-step positions. It survives restarts — the
// checkpoint document persists it alongside the observers.
type LastStep struct {
	T         int
	Batched   int
	Cost      core.Cost
	Clamped   int
	Positions []geom.Point
}

// MetricsSnapshot is the service's aggregate counters at one instant: the
// engine.Metrics observer plus the service's own queue counters (and the
// per-shard aggregation in router mode).
type MetricsSnapshot struct {
	Steps       int
	Requests    int
	Cost        core.Cost
	AvgStepCost float64
	// Rejected counts submissions turned away with OverloadError since
	// start.
	Rejected int64
	// QueueDepth is the number of batches waiting to be coalesced.
	QueueDepth int
	// Shards breaks the totals down per region in router mode; nil
	// otherwise.
	Shards []shard.State
}

// StateSnapshot is the session's live state at one instant: positions plus
// the engine.MoveStats observer.
type StateSnapshot struct {
	Algorithm string
	T         int
	Positions []geom.Point
	MaxMove   float64
	TotalMove float64
	CapHits   int
	Clamped   int
	Cost      core.Cost
	// Partition holds the shard layout in router mode; nil otherwise.
	Partition core.Partition
	// Shards holds each region's live counters in router mode.
	Shards []shard.State
	// Workers holds the live shard→worker assignment when the backend is a
	// cluster coordinator (Workers[i] serves shard i); nil otherwise.
	Workers []string
}

// OverloadError is typed backpressure: the bounded queue is full and the
// batch was NOT enqueued. Resubmit after RetryAfterMS.
type OverloadError struct {
	// RetryAfterMS is the suggested backoff: one coalescing window in
	// milliseconds, at least 1.
	RetryAfterMS int
}

func (e *OverloadError) Error() string {
	return "step queue is full"
}

// DurabilityError reports an executed-but-not-durable step: the engine
// step RAN (the session advanced and the batch is counted in the metrics)
// but its checkpoint write failed. The caller must not resubmit the batch
// — that would feed it again as a new step; only its durability is in
// doubt.
type DurabilityError struct {
	// ExecutedT is the step that did execute.
	ExecutedT int
	// Err is the underlying checkpoint write error.
	Err error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("step %d executed but checkpoint failed: %v", e.ExecutedT, e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// UnreachableError reports that a forwarding tier could not reach the
// backend owning part of the batch, even after its bounded
// reconnect-and-failover policy ran out of candidates. The step did NOT
// execute; the caller may resubmit once the fleet recovers. Transports map
// it to 502 (HTTP) and the "unreachable" error code (streaming).
type UnreachableError struct {
	// Addr is the last address tried.
	Addr string
	// Attempts is the total number of connection attempts made before
	// giving up.
	Attempts int
	// Err is the last underlying dial or transport error.
	Err error
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("backend %s unreachable after %d attempts: %v", e.Addr, e.Attempts, e.Err)
}

func (e *UnreachableError) Unwrap() error { return e.Err }

// ErrShuttingDown is returned by Submit/Enqueue once Close has begun: the
// service accepts no new batches while draining.
var ErrShuttingDown = errors.New("server is shutting down")

// batch is one enqueued submission with its reply channel.
type batch struct {
	reqs  []geom.Point
	reply chan outcome
}

// outcome is what the step loop hands back to a waiting Pending.
type outcome struct {
	ack Ack
	err error
}

// ringStep is one ack-ring entry: the persisted outcome of an executed
// step plus a deep copy of its post-step positions. Intermediate entries
// need their own positions — the session only holds the newest fleet, and
// suffix-replay recovery re-serves each in-flight step's exact outcome.
type ringStep struct {
	st  wire.LastStepState
	pos []geom.Point
}

// heldStep is one executed-but-unacknowledged step awaiting the group
// commit that makes it durable: the merged callers to reply to, the ack
// they share, and the Watch event to publish once released.
type heldStep struct {
	items []batch
	ack   Ack
	ev    MetricsEvent
}

// flight is one submitted-but-unresolved pipelined step: the merged
// callers and their combined batch, owned by the flight until its resolve
// replies (a backend failover resends the batch, so the request storage
// must stay untouched until then).
type flight struct {
	items []batch
	reqs  []geom.Point
	total int
}

// Pending is an in-flight submission: the batch is enqueued (it owns a
// queue slot) and will be coalesced into an engine step by the loop. Wait
// blocks for that step's outcome. Each Pending must be waited at most
// once; dropping it without waiting leaks nothing (the reply is buffered).
type Pending struct {
	n   int
	ch  chan outcome
	svc *Service
	// consumed records that Wait actually read the outcome, making the
	// reply channel provably empty and the Pending safe to pool.
	consumed bool
}

// Wait blocks until the submission's engine step has executed (or the
// service shut down before reaching it) and returns the typed outcome.
// The error is nil, a *DurabilityError (step executed, checkpoint did
// not land), ErrShuttingDown (step never executed), or an engine error.
func (p *Pending) Wait() (Ack, error) {
	select {
	case out := <-p.ch:
		p.consumed = true
		return out.ack, out.err
	case <-p.svc.loopDone:
		// The loop exited; the shutdown drain may still have served us.
		select {
		case out := <-p.ch:
			p.consumed = true
			return out.ack, out.err
		default:
			return Ack{}, ErrShuttingDown
		}
	}
}

// Release returns the Pending to the service's pool for reuse by a later
// Enqueue. Call it only after Wait has returned (and at most once); a
// Pending that shut down before its outcome arrived is left to the
// garbage collector, since the drain could still deliver into its
// channel.
func (p *Pending) Release() {
	if p == nil || !p.consumed {
		return
	}
	p.consumed = false
	svc := p.svc
	p.svc = nil
	svc.pendPool.Put(p)
}

// Service owns a backend and serves it to transport adapters. Create one
// with New/Resume/NewSharded/ResumeSharded, submit batches with Submit (or
// Enqueue + Wait to pipeline), and Close it to drain the queue and write
// the final checkpoint.
type Service struct {
	cfg  core.Config
	opts Options

	// mu guards the session and the observers attached to it. Step runs
	// only in the step loop; readers take mu for consistent snapshots.
	mu          sync.Mutex
	sess        Backend
	metrics     *engine.Metrics
	moves       *engine.MoveStats
	lastCost    core.Cost
	lastClamped int
	// last is the persisted outcome of the most recent executed step
	// (LastStep re-serves it with live positions); nil before any step.
	last *wire.LastStepState

	// Hot-path pools and scratch: pendPool recycles Pending values (and
	// their reply channels) across Enqueue/Release cycles, posPool recycles
	// the ack position buffers across steps, and itemsBuf/mergedBuf are the
	// step loop's private coalescing scratch (the loop is one goroutine, so
	// they need no lock).
	pendPool  sync.Pool
	posPool   sync.Pool
	itemsBuf  []batch
	mergedBuf []geom.Point

	// ring is the ack ring (oldest first, newest last, capped at
	// Options.AckRing): the suffix-replay recovery state, guarded by mu
	// like the rest of the step outcome. Entry position storage is
	// recycled as the ring rotates.
	ring []ringStep
	// held, heldFree, and flightFree are step-loop private (like
	// itemsBuf): the executed-but-unacknowledged steps awaiting a group
	// commit, and the free lists recycling their storage.
	held       []heldStep
	heldFree   [][]batch
	flightFree []flight

	// ckptDir is the checkpoint directory handle, opened once at start and
	// held for the service's lifetime so the post-rename directory fsync
	// does not re-open the directory on every write; nil when the open
	// failed (writes fall back to per-write opens) or checkpointing is
	// off. ckptBuf/ckptEnc are the reused checkpoint encoding buffer —
	// both are touched only by the step loop.
	ckptDir *os.File
	ckptBuf bytes.Buffer
	ckptEnc *json.Encoder

	queue    chan batch
	rejected atomic.Int64
	closing  atomic.Bool
	aborting atomic.Bool
	closed   chan struct{}
	loopDone chan struct{}
	closeErr error
	once     sync.Once

	// subMu guards the Watch subscribers.
	subMu      sync.Mutex
	subs       map[*subscriber]struct{}
	subsClosed bool
}

// New starts a service around a fresh session.
func New(cfg core.Config, starts []geom.Point, alg core.FleetAlgorithm, opts Options) (*Service, error) {
	return start(cfg, opts, nil, func(eopts engine.Options) (Backend, error) {
		return engine.NewSession(cfg, starts, alg, eopts)
	})
}

// Resume starts a service around a session restored from checkpoint bytes:
// the step counter, costs, positions, and algorithm state continue exactly
// where the snapshot was taken. The bytes may be a checkpoint document
// written by this layer (whose observer state reseeds the metrics and
// state snapshots, so dashboards survive the restart) or a bare engine
// snapshot (observers start fresh and cover only the resumed part).
func Resume(cfg core.Config, alg core.FleetAlgorithm, snapshot []byte, opts Options) (*Service, error) {
	ck, err := wire.ParseCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	return start(cfg, opts, &ck, func(eopts engine.Options) (Backend, error) {
		return engine.Restore(cfg, alg, ck.Session, eopts)
	})
}

// NewSharded starts a service in router mode: one fleet of cfg.Servers()
// servers per shard of cfg.Partition, each request routed to its region's
// session and all shards stepped concurrently (see shard.New). starts
// holds one fleet layout per shard and newAlg constructs one independent
// controller per shard.
func NewSharded(cfg core.Config, starts [][]geom.Point, newAlg func() core.FleetAlgorithm, opts Options) (*Service, error) {
	return start(cfg, opts, nil, func(eopts engine.Options) (Backend, error) {
		return shard.New(cfg, starts, newAlg, eopts)
	})
}

// ResumeSharded starts a router-mode service from a checkpoint written by
// a sharded service: every shard session resumes exactly where the
// combined snapshot was taken (shard.Restore rejects a mismatched shard
// layout), and persisted observer state reseeds the metrics and state
// snapshots. From a bare combined snapshot, step/request/cost totals are
// instead reconstructed from the router's own counters; the decayed
// average and movement stats restart.
func ResumeSharded(cfg core.Config, newAlg func() core.FleetAlgorithm, snapshot []byte, opts Options) (*Service, error) {
	ck, err := wire.ParseCheckpoint(snapshot)
	if err != nil {
		return nil, err
	}
	return start(cfg, opts, &ck, func(eopts engine.Options) (Backend, error) {
		return shard.Restore(cfg, newAlg, ck.Session, eopts)
	})
}

// NewFromBackend starts a service around a backend the caller constructs —
// the hook a forwarding tier (the cluster coordinator) uses to put the full
// serving core (coalescing, bounded queue, checkpointing, Watch) in front
// of a backend this package does not know how to build. open receives the
// engine options the service needs wired through: the cap mode/tolerance
// and the service's observers, which the backend must notify exactly once
// per executed step (as shard.Router does). A backend that opens already
// advanced (adopting workers mid-run) has its fleet metrics reconciled from
// the backend's own counters, like a resume from a bare router snapshot.
func NewFromBackend(cfg core.Config, open func(engine.Options) (Backend, error), opts Options) (*Service, error) {
	return start(cfg, opts, nil, open)
}

func start(cfg core.Config, opts Options, ck *wire.Checkpoint, open func(engine.Options) (Backend, error)) (*Service, error) {
	opts = opts.withDefaults()
	if opts.Window > 1 && opts.CommitEvery > 1 {
		return nil, errors.New("protocol: Window and CommitEvery are mutually exclusive")
	}
	s := &Service{
		cfg:      cfg,
		opts:     opts,
		metrics:  &engine.Metrics{},
		moves:    &engine.MoveStats{},
		queue:    make(chan batch, opts.QueueLimit),
		closed:   make(chan struct{}),
		loopDone: make(chan struct{}),
		subs:     map[*subscriber]struct{}{},
	}
	obs := []engine.Observer{
		engine.Func(func(info engine.StepInfo) {
			s.lastCost = info.Cost
			s.lastClamped = info.Clamped
		}),
		s.metrics,
		s.moves,
	}
	obs = append(obs, opts.Observers...)
	sess, err := open(engine.Options{Mode: opts.Mode, Tol: opts.Tol, Observers: obs})
	if err != nil {
		return nil, err
	}
	s.sess = sess
	if opts.Window > 1 {
		if _, ok := sess.(PipelinedBackend); !ok {
			return nil, errors.New("protocol: Window > 1 requires a pipelined backend")
		}
	}
	if opts.CheckpointPath != "" {
		if dir, err := os.Open(filepath.Dir(opts.CheckpointPath)); err == nil {
			s.ckptDir = dir
		}
	}
	if opts.Rebalancer != nil {
		sb, ok := sess.(ShardedBackend)
		if !ok {
			return nil, errors.New("protocol: a rebalancer requires a sharded backend")
		}
		sb.SetRebalancer(opts.Rebalancer)
	}
	if ck != nil {
		s.seedObservers(*ck)
		if ck.Metrics == nil {
			s.reconcileShardedMetrics()
		}
	} else if sess.T() > 0 {
		// A backend opened without a checkpoint but already advanced: a
		// coordinator adopting workers mid-run. Rebuild the fleet metrics
		// from the backend's own counters so totals and shards agree.
		s.reconcileShardedMetrics()
	}
	go s.loop()
	return s, nil
}

// reconcileShardedMetrics covers a resume from a bare router snapshot (no
// persisted observer state): the router restores its per-shard request
// counters, so the fleet-level Metrics observer must agree with their sum
// or the metrics would report shards that do not add up to the totals.
// Steps, requests, and cost are reconstructed from the backend; the
// decayed average (and the movement stats, which no snapshot carries)
// restart.
func (s *Service) reconcileShardedMetrics() {
	sb, ok := s.sess.(RegionBackend)
	if !ok {
		return
	}
	s.metrics.Steps = s.sess.T()
	s.metrics.Cost = s.sess.Cost()
	s.metrics.Requests = 0
	for _, st := range sb.States() {
		s.metrics.Requests += st.Requests
	}
}

// seedObservers reinstates the observer state persisted in a checkpoint
// document, so a resumed service's metrics and state continue the
// pre-crash totals instead of starting from zero. Runs before the step
// loop starts, so no lock is needed.
func (s *Service) seedObservers(ck wire.Checkpoint) {
	if m := ck.Metrics; m != nil {
		s.metrics.Steps = m.Steps
		s.metrics.Requests = m.Requests
		s.metrics.Cost = core.Cost{Move: m.MoveCost, Serve: m.ServeCost}
		s.metrics.AvgStepCost = m.AvgStepCost
	}
	if mv := ck.Moves; mv != nil {
		s.moves.Steps = mv.Steps
		s.moves.MaxMove = mv.MaxMove
		s.moves.TotalMove = mv.TotalMove
		s.moves.CapHits = mv.CapHits
	}
	if ls := ck.LastStep; ls != nil {
		last := *ls
		s.last = &last
	}
	if s.opts.AckRing > 1 && len(ck.Ring) > 0 {
		// Keep the newest AckRing entries: a checkpoint written under a
		// deeper ring than this incarnation runs with still restores the
		// suffix this incarnation can serve.
		entries := ck.Ring
		if extra := len(entries) - s.opts.AckRing; extra > 0 {
			entries = entries[extra:]
		}
		for _, r := range entries {
			e := ringStep{st: r.LastStepState}
			e.pos = make([]geom.Point, len(r.Positions))
			for i, p := range r.Positions {
				e.pos[i] = append(geom.Point(nil), p...)
			}
			s.ring = append(s.ring, e)
		}
	}
}

// Config returns the configuration the service was opened with.
func (s *Service) Config() core.Config { return s.cfg }

// T returns the session's current step count.
func (s *Service) T() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.T()
}

// Algorithm returns the backend's reported name (in router mode the
// per-shard algorithm tagged with the shard count, e.g. "MtC-k×4").
func (s *Service) Algorithm() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Algorithm()
}

// Closing reports whether Close has begun; a closing service refuses new
// submissions with ErrShuttingDown.
func (s *Service) Closing() bool { return s.closing.Load() }

// QueueDepth is the number of batches waiting to be coalesced. Unlike
// Metrics it does not take the session lock, so it is safe to poll while
// a step (or a blocking observer) is in flight.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Rejected counts submissions turned away with OverloadError since start.
// Like QueueDepth it does not take the session lock.
func (s *Service) Rejected() int64 { return s.rejected.Load() }

// RetryAfterMS is the backoff hint attached to OverloadError: one
// coalescing window in milliseconds, at least 1.
func (s *Service) RetryAfterMS() int {
	ms := int(s.opts.CoalesceWindow.Milliseconds())
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Enqueue submits a pre-validated batch without waiting for its step: it
// claims a queue slot and returns a Pending to Wait on, so a pipelining
// transport can keep submitting while earlier steps execute. It never
// blocks: a full queue returns *OverloadError (and counts toward
// Rejected), a closing service returns ErrShuttingDown.
func (s *Service) Enqueue(reqs []geom.Point) (*Pending, error) {
	if s.closing.Load() {
		return nil, ErrShuttingDown
	}
	var p *Pending
	if v := s.pendPool.Get(); v != nil {
		p = v.(*Pending)
	} else {
		p = &Pending{ch: make(chan outcome, 1)}
	}
	p.n = len(reqs)
	p.svc = s
	p.consumed = false
	select {
	case s.queue <- batch{reqs: reqs, reply: p.ch}:
		return p, nil
	default:
		s.rejected.Add(1)
		p.svc = nil
		s.pendPool.Put(p)
		return nil, &OverloadError{RetryAfterMS: s.RetryAfterMS()}
	}
}

// Submit feeds one batch and blocks until its engine step has executed:
// Enqueue + Wait.
func (s *Service) Submit(reqs []geom.Point) (Ack, error) {
	p, err := s.Enqueue(reqs)
	if err != nil {
		return Ack{}, err
	}
	ack, err := p.Wait()
	p.Release()
	return ack, err
}

// Metrics returns the aggregate counters at this instant.
func (s *Service) Metrics() MetricsSnapshot {
	s.mu.Lock()
	m := MetricsSnapshot{
		Steps:       s.metrics.Steps,
		Requests:    s.metrics.Requests,
		Cost:        s.metrics.Cost,
		AvgStepCost: s.metrics.AvgStepCost,
	}
	if sb, ok := s.sess.(RegionBackend); ok {
		m.Shards = sb.States()
	}
	s.mu.Unlock()
	m.Rejected = s.rejected.Load()
	m.QueueDepth = len(s.queue)
	return m
}

// State returns the session's live state at this instant.
func (s *Service) State() StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StateSnapshot{
		Algorithm: s.sess.Algorithm(),
		T:         s.sess.T(),
		Positions: s.sess.Positions(),
		MaxMove:   s.moves.MaxMove,
		TotalMove: s.moves.TotalMove,
		CapHits:   s.moves.CapHits,
		Clamped:   s.sess.Clamped(),
		Cost:      s.sess.Cost(),
	}
	if sb, ok := s.sess.(RegionBackend); ok {
		st.Partition = append(core.Partition(nil), sb.Partition()...)
		st.Shards = sb.States()
	}
	if fb, ok := s.sess.(FailoverBackend); ok {
		st.Workers = fb.Assignments()
	}
	return st
}

// LastStep returns the outcome of the most recent executed step with the
// post-step positions, or nil before any step has run (and on services
// resumed from checkpoints that predate the persisted field). Streaming
// transports re-serve it inside the welcome frame so a reconnecting
// pipeliner can recover a lost ack without resending the batch.
func (s *Service) LastStep() *LastStep {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	return &LastStep{
		T:         s.last.T,
		Batched:   s.last.Batched,
		Cost:      core.Cost{Move: s.last.MoveCost, Serve: s.last.ServeCost},
		Clamped:   s.last.Clamped,
		Positions: s.sess.Positions(),
	}
}

// MaxWindow reports how many pipelined step frames the service can
// reconcile for a reconnecting client: the ack-ring depth, or 1 (lockstep)
// without a ring. The streaming transport caps the window it grants in the
// welcome at this value.
func (s *Service) MaxWindow() int {
	if s.opts.AckRing > 1 {
		return s.opts.AckRing
	}
	return 1
}

// RecentSteps returns the ack ring — the outcomes of the most recent
// executed steps, oldest first and ending with the newest — with
// deep-copied positions, or nil when the service keeps no ring. Streaming
// transports re-serve it inside the welcome frame (WelcomeFrame.Ring) so a
// pipelined client can reconcile every in-flight frame after a reconnect.
func (s *Service) RecentSteps() []LastStep {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return nil
	}
	out := make([]LastStep, len(s.ring))
	for i, e := range s.ring {
		pos := make([]geom.Point, len(e.pos))
		for j, p := range e.pos {
			pos[j] = append(geom.Point(nil), p...)
		}
		out[i] = LastStep{
			T:         e.st.T,
			Batched:   e.st.Batched,
			Cost:      core.Cost{Move: e.st.MoveCost, Serve: e.st.ServeCost},
			Clamped:   e.st.Clamped,
			Positions: pos,
		}
	}
	return out
}

// Snapshot returns the backend's bare resumable snapshot (what
// GET /snapshot serves; observer state is not included — checkpoint files
// written by the service itself carry it).
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Snapshot()
}

// Close stops accepting traffic, drains the already-queued batches through
// the session, writes a final checkpoint (when configured), closes every
// Watch subscription, and waits for the step loop to exit. It returns the
// final checkpoint error, if any.
func (s *Service) Close() error {
	s.once.Do(func() {
		s.closing.Store(true)
		close(s.closed)
		<-s.loopDone
	})
	return s.closeErr
}

// Abort is Close without the final flush: still-queued batches are refused
// with ErrShuttingDown instead of executed, and no final checkpoint is
// written. It is for retiring a service whose checkpoint file may since
// have been handed to a NEWER incarnation (a shard worker dropping a
// session another worker took over): with per-step checkpointing every
// acknowledged step is already durable, so the only thing a final write
// could do is clobber the newer incarnation's file with stale state.
func (s *Service) Abort() error {
	s.aborting.Store(true)
	return s.Close()
}

// Finish closes the underlying session and returns its accumulated result.
// Call it after Close; a finished session cannot be snapshotted or resumed.
func (s *Service) Finish() *engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Finish()
}

// loop is the single goroutine that steps the session: it pulls the first
// queued batch, coalesces what arrives within the window, executes one
// engine step, checkpoints, and acknowledges the merged callers. With
// group commit, executed steps accumulate unacknowledged until the group
// is due; with a pipelined window, the loop hands off to loopWindowed.
func (s *Service) loop() {
	defer s.closeSubs()
	defer close(s.loopDone)
	if s.ckptDir != nil {
		defer s.ckptDir.Close()
	}
	if s.opts.Window > 1 {
		s.loopWindowed(s.sess.(PipelinedBackend))
		return
	}
	for {
		select {
		case <-s.closed:
			s.drain()
			return
		case first := <-s.queue:
			s.execute(s.coalesce(first))
			if len(s.held) > 0 && (len(s.held) >= s.opts.CommitEvery || len(s.queue) == 0) {
				s.commitHeld()
			}
		}
	}
}

// loopWindowed drives a PipelinedBackend with up to w backend steps in
// flight: it submits whenever the queue has work and the window has room,
// and resolves the oldest flight when the window is full or the queue goes
// idle — so pipelining never adds latency to a sparse stream, and a dense
// stream overlaps each step's round trip with the submission of the next.
func (s *Service) loopWindowed(pb PipelinedBackend) {
	w := s.opts.Window
	if bw := pb.Window(); bw > 0 && bw < w {
		w = bw
	}
	var flights []flight
	for {
		if len(flights) >= w {
			flights = s.resolveOldest(pb, flights)
			continue
		}
		if len(flights) == 0 {
			select {
			case <-s.closed:
				s.drain()
				return
			case first := <-s.queue:
				flights = s.submitFlight(pb, flights, s.coalesce(first))
			}
			continue
		}
		select {
		case first := <-s.queue:
			flights = s.submitFlight(pb, flights, s.coalesce(first))
		case <-s.closed:
			for len(flights) > 0 {
				flights = s.resolveOldest(pb, flights)
			}
			s.drain()
			return
		default:
			flights = s.resolveOldest(pb, flights)
		}
	}
}

// submitFlight copies the coalesced items out of the loop scratch into a
// (recycled) flight, submits its merged batch to the backend without
// waiting, and appends it to the in-flight list. A refused submission
// replies immediately — the step never started.
func (s *Service) submitFlight(pb PipelinedBackend, flights []flight, items []batch) []flight {
	var f flight
	if n := len(s.flightFree); n > 0 {
		f = s.flightFree[n-1]
		s.flightFree = s.flightFree[:n-1]
	}
	f.items = append(f.items[:0], items...)
	f.reqs = f.reqs[:0]
	f.total = 0
	for _, b := range items {
		f.reqs = append(f.reqs, b.reqs...)
		f.total += len(b.reqs)
	}
	s.mu.Lock()
	err := pb.StepAsync(f.reqs)
	s.mu.Unlock()
	if err != nil {
		for _, b := range f.items {
			b.reply <- outcome{err: err}
		}
		s.flightFree = append(s.flightFree, f)
		return flights
	}
	return append(flights, f)
}

// resolveOldest blocks for the oldest in-flight step's outcome and
// finishes it exactly like a synchronous step: ack, ring, checkpoint if
// due, replies, Watch event.
func (s *Service) resolveOldest(pb PipelinedBackend, flights []flight) []flight {
	f := flights[0]
	copy(flights, flights[1:])
	flights = flights[:len(flights)-1]
	s.mu.Lock()
	err := pb.ResolveOldest()
	s.finishStepLocked(f.items, f.total, err)
	s.flightFree = append(s.flightFree, f)
	return flights
}

// coalesce gathers the batches that share first's engine step into the
// loop's reusable scratch slice (valid until the next coalesce call).
func (s *Service) coalesce(first batch) []batch {
	items := append(s.itemsBuf[:0], first)
	defer func() { s.itemsBuf = items }()
	if s.opts.NoCoalesce {
		return items
	}
	if w := s.opts.CoalesceWindow; w > 0 {
		timer := time.NewTimer(w)
		defer timer.Stop()
		for {
			select {
			case b := <-s.queue:
				items = append(items, b)
			case <-timer.C:
				return items
			case <-s.closed:
				return items
			}
		}
	}
	for {
		select {
		case b := <-s.queue:
			items = append(items, b)
		default:
			return items
		}
	}
}

// drain executes every batch still queued at shutdown (one step each, no
// coalescing wait) and writes the final checkpoint. An aborting service
// (Abort) instead refuses the queued batches and skips the write — it must
// not touch a checkpoint file that may no longer be its own.
func (s *Service) drain() {
	for {
		select {
		case b := <-s.queue:
			if s.aborting.Load() {
				b.reply <- outcome{err: ErrShuttingDown}
				continue
			}
			s.execute([]batch{b})
			if len(s.held) >= s.opts.CommitEvery {
				s.commitHeld()
			}
		default:
			if s.aborting.Load() {
				s.abortHeld()
				return
			}
			if len(s.held) > 0 {
				// The commit writes a checkpoint at the final state, so the
				// unconditional shutdown write below would only duplicate it.
				s.closeErr = s.commitHeld()
				return
			}
			s.closeErr = s.checkpointNow()
			return
		}
	}
}

// commitHeld makes the held group durable with one checkpoint write —
// taken at the current state, which is exactly the newest held step, so it
// covers the whole group — then releases every held acknowledgement and
// Watch event in step order. A failed write degrades each ack to a
// DurabilityError, same as the per-step path; the returned error is that
// write error, if any.
func (s *Service) commitHeld() error {
	held := s.held
	s.held = s.held[:0]
	s.mu.Lock()
	snap, snapErr := s.checkpointDoc()
	s.mu.Unlock()
	if snapErr == nil {
		snapErr = writeAtomic(s.opts.CheckpointPath, snap, s.ckptDir)
	}
	for i := range held {
		h := &held[i]
		var err error
		if snapErr != nil {
			err = &DurabilityError{ExecutedT: h.ack.T, Err: snapErr}
		}
		for _, b := range h.items {
			a := h.ack
			a.Accepted = len(b.reqs)
			b.reply <- outcome{ack: a, err: err}
		}
		s.heldFree = append(s.heldFree, h.items[:0])
		h.items = nil
		h.ev.QueueDepth = len(s.queue)
		h.ev.Rejected = s.rejected.Load()
		s.publish(h.ev)
	}
	return snapErr
}

// abortHeld releases the held group without touching the checkpoint file
// (Abort must not clobber a file that may belong to a newer incarnation):
// the steps executed but their durability is unknown, which is precisely a
// DurabilityError.
func (s *Service) abortHeld() {
	for i := range s.held {
		h := &s.held[i]
		err := &DurabilityError{ExecutedT: h.ack.T, Err: ErrShuttingDown}
		for _, b := range h.items {
			a := h.ack
			a.Accepted = len(b.reqs)
			b.reply <- outcome{ack: a, err: err}
		}
		s.heldFree = append(s.heldFree, h.items[:0])
		h.items = nil
	}
	s.held = s.held[:0]
}

// execute merges the items into one request batch, runs one engine step,
// checkpoints if due, replies to every merged caller, and publishes a
// MetricsEvent to the Watch subscribers. A due checkpoint is written
// before the acknowledgements, so with CheckpointEvery == 1 an
// acknowledged step is never lost to a crash (larger cadences acknowledge
// the steps between checkpoints before they are durable).
func (s *Service) execute(items []batch) {
	total := 0
	for _, b := range items {
		total += len(b.reqs)
	}
	// The merged batch lives in loop-owned scratch: the backend (and its
	// observers) must not retain it past the Step call, which lets the
	// transports reuse the request buffers once their ack arrives.
	merged := s.mergedBuf[:0]
	for _, b := range items {
		merged = append(merged, b.reqs...)
	}
	s.mergedBuf = merged

	s.mu.Lock()
	err := s.sess.Step(merged)
	s.finishStepLocked(items, total, err)
}

// finishStepLocked is everything that follows a backend step — shared by
// the synchronous path (execute) and the pipelined path (resolveOldest).
// It builds the ack and Watch event, updates the last-step record and the
// ack ring, and either releases the step immediately (checkpointing first
// when due) or appends it to the held group for a later commit. Called
// with mu held; releases it.
func (s *Service) finishStepLocked(items []batch, total int, err error) {
	var ack Ack
	var ev MetricsEvent
	var snap []byte
	var snapErr error
	hold := false
	if err == nil {
		ack = Ack{
			T:       s.sess.T() - 1,
			Batched: total,
			Cost:    s.lastCost,
			Clamped: s.lastClamped,
		}
		if pi, ok := s.sess.(positionsInto); ok {
			var pb *posBuf
			if v := s.posPool.Get(); v != nil {
				pb = v.(*posBuf)
			} else {
				pb = &posBuf{svc: s}
			}
			pb.pts = pi.PositionsInto(pb.pts)
			pb.refs.Store(int32(len(items)))
			ack.Positions = pb.pts
			ack.buf = pb
		} else {
			ack.Positions = s.sess.Positions()
		}
		if s.last == nil {
			s.last = &wire.LastStepState{}
		}
		*s.last = wire.LastStepState{
			T:         ack.T,
			Batched:   total,
			MoveCost:  s.lastCost.Move,
			ServeCost: s.lastCost.Serve,
			Clamped:   s.lastClamped,
		}
		s.pushRingLocked(ack.Positions)
		ev = MetricsEvent{
			T:           ack.T,
			Batched:     total,
			StepCost:    s.lastCost,
			Steps:       s.metrics.Steps,
			Requests:    s.metrics.Requests,
			Cost:        s.metrics.Cost,
			AvgStepCost: s.metrics.AvgStepCost,
		}
		if sb, ok := s.sess.(RegionBackend); ok {
			// LastSteps returns a caller-owned copy, so the ack can carry
			// it across the lock boundary as-is.
			ack.Shards = sb.LastSteps()
		}
		if sb, ok := s.sess.(ShardedBackend); ok {
			ev.Rebalance = sb.LastRebalance()
		}
		if fb, ok := s.sess.(FailoverBackend); ok {
			ev.Failovers = fb.LastFailovers()
		}
		if s.opts.CommitEvery > 1 {
			hold = true
			var hi []batch
			if n := len(s.heldFree); n > 0 {
				hi = s.heldFree[n-1]
				s.heldFree = s.heldFree[:n-1]
			}
			s.held = append(s.held, heldStep{items: append(hi, items...), ack: ack, ev: ev})
		} else if s.opts.CheckpointPath != "" && s.sess.T()%s.opts.CheckpointEvery == 0 {
			snap, snapErr = s.checkpointDoc()
		}
	}
	s.mu.Unlock()
	if hold {
		return
	}

	if snap != nil {
		snapErr = writeAtomic(s.opts.CheckpointPath, snap, s.ckptDir)
	}
	executed := err == nil
	if executed && snapErr != nil {
		// The step ran but is not durable; surface that to the callers
		// rather than acknowledging a step a crash could silently lose.
		err = &DurabilityError{ExecutedT: ack.T, Err: snapErr}
	}
	for _, b := range items {
		a := ack
		a.Accepted = len(b.reqs)
		b.reply <- outcome{ack: a, err: err}
	}
	if executed {
		ev.QueueDepth = len(s.queue)
		ev.Rejected = s.rejected.Load()
		s.publish(ev)
	}
}

// pushRingLocked appends the just-executed step's outcome (s.last) and a
// deep copy of its positions to the ack ring, rotating the oldest entry
// out — and recycling its position storage — once the ring is at capacity.
// The caller must hold mu.
func (s *Service) pushRingLocked(pts []geom.Point) {
	if s.opts.AckRing <= 1 {
		return
	}
	var e ringStep
	if len(s.ring) >= s.opts.AckRing {
		e = s.ring[0]
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:len(s.ring)-1]
	}
	e.st = *s.last
	if cap(e.pos) < len(pts) {
		e.pos = append(e.pos[:cap(e.pos)], make([]geom.Point, len(pts)-cap(e.pos))...)
	}
	e.pos = e.pos[:len(pts)]
	for i, p := range pts {
		if cap(e.pos[i]) < len(p) {
			e.pos[i] = make(geom.Point, len(p))
		}
		e.pos[i] = e.pos[i][:len(p)]
		copy(e.pos[i], p)
	}
	s.ring = append(s.ring, e)
}

// checkpointNow snapshots and writes the checkpoint file unconditionally
// (used at shutdown). A service without a checkpoint path does nothing.
func (s *Service) checkpointNow() error {
	if s.opts.CheckpointPath == "" {
		return nil
	}
	s.mu.Lock()
	snap, err := s.checkpointDoc()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return writeAtomic(s.opts.CheckpointPath, snap, s.ckptDir)
}

// checkpointDoc marshals the checkpoint document: the backend snapshot
// plus the current observer state, captured together so the file is one
// consistent cut of the run, stamped with the wire version (plus the
// legacy stamp, so pre-envelope readers keep working). The encoding reuses
// the service's checkpoint buffer, so the returned bytes are valid only
// until the next checkpointDoc call — write them before re-marshaling.
// The caller must hold mu (the step loop is the only caller, which is what
// makes the single buffer safe).
func (s *Service) checkpointDoc() ([]byte, error) {
	sess, err := s.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	doc := wire.Checkpoint{
		V:       wire.V1,
		Version: wire.CheckpointVersion,
		Session: sess,
		Metrics: &wire.MetricsState{
			Steps:       s.metrics.Steps,
			Requests:    s.metrics.Requests,
			MoveCost:    s.metrics.Cost.Move,
			ServeCost:   s.metrics.Cost.Serve,
			AvgStepCost: s.metrics.AvgStepCost,
		},
		Moves: &wire.MoveState{
			Steps:     s.moves.Steps,
			MaxMove:   s.moves.MaxMove,
			TotalMove: s.moves.TotalMove,
			CapHits:   s.moves.CapHits,
		},
		LastStep: s.last,
	}
	if len(s.ring) > 0 {
		doc.Ring = make([]wire.RingStep, len(s.ring))
		for i, e := range s.ring {
			doc.Ring[i] = wire.RingStep{
				LastStepState: e.st,
				Positions:     wire.FromPoints(e.pos),
			}
		}
	}
	s.ckptBuf.Reset()
	if s.ckptEnc == nil {
		s.ckptEnc = json.NewEncoder(&s.ckptBuf)
	}
	if err := s.ckptEnc.Encode(&doc); err != nil {
		return nil, err
	}
	// Drop the encoder's trailing newline: the file bytes stay identical
	// to what json.Marshal produced before the buffer was reused.
	b := s.ckptBuf.Bytes()
	return b[:len(b)-1], nil
}

// writeAtomic writes data to path via a temp file in the same directory,
// fsync, and an atomic rename (fsx.WriteFileAtomic), so neither a process
// kill mid-write nor a system crash shortly after leaves a torn or empty
// checkpoint. dir, when non-nil, is the already-open parent directory
// handle used to make the rename itself durable without re-opening the
// directory on every write.
func writeAtomic(path string, data []byte, dir *os.File) error {
	return fsx.WriteFileAtomic(path, data, dir)
}
