// Package workload generates synthetic request sequences for the Mobile
// Server Problem, modeling the scenarios that motivate the paper: users of
// an edge service concentrated around a drifting hotspot, load that bursts
// between sites, uniform background traffic, and clustered demand.
//
// Every generator is deterministic given its random stream, so experiments
// are reproducible, and every generator emits instances that pass
// core.Instance.Validate.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Generator produces instances of a given length under a configuration.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Generate builds a T-step instance using randomness from r only.
	Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance
}

// arena returns a centered axis-aligned box of the given half-width.
func arena(dim int, half float64) geom.Box {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for i := range lo {
		lo[i] = -half
		hi[i] = half
	}
	return geom.Box{Min: lo, Max: hi}
}

// uniformIn draws a point uniformly from the box.
func uniformIn(r *xrand.Rand, b geom.Box) geom.Point {
	p := make(geom.Point, b.Min.Dim())
	for i := range p {
		p[i] = r.Range(b.Min[i], b.Max[i])
	}
	return p
}

// gaussianAround draws a point from an isotropic normal clipped to the box.
func gaussianAround(r *xrand.Rand, center geom.Point, sigma float64, b geom.Box) geom.Point {
	p := center.Clone()
	for i := range p {
		p[i] += r.NormMS(0, sigma)
	}
	return b.Clamp(p)
}

// drawCount returns the number of requests for one step: Fixed if
// PoissonMean == 0, else 1 + Poisson(PoissonMean−1) (so steps are never
// empty unless Fixed == 0 and PoissonMean == 0).
func drawCount(r *xrand.Rand, fixed int, poissonMean float64) int {
	if poissonMean > 0 {
		n := 1 + r.Poisson(poissonMean-1)
		return n
	}
	return fixed
}

// Uniform scatters requests uniformly over a square arena: the
// "background traffic" workload on which no algorithm can exploit
// locality.
type Uniform struct {
	// Half is the arena half-width. Default 20·m at generation time.
	Half float64
	// Requests is the fixed per-step request count. Default 1.
	Requests int
	// PoissonMean, when positive, draws per-step counts from
	// 1+Poisson(PoissonMean−1) instead of the fixed count.
	PoissonMean float64
}

// Name implements Generator.
func (u Uniform) Name() string { return "uniform" }

// Generate implements Generator.
func (u Uniform) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	half := u.Half
	if half <= 0 {
		half = 20 * cfg.M
	}
	reqs := u.Requests
	if reqs <= 0 {
		reqs = 1
	}
	box := arena(cfg.Dim, half)
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	for t := 0; t < T; t++ {
		n := drawCount(r, reqs, u.PoissonMean)
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			step.Requests[i] = uniformIn(r, box)
		}
		in.Steps[t] = step
	}
	return in
}

// Hotspot concentrates requests around a center that random-walks at
// bounded speed — the paper's edge-computing picture of users drifting
// through a city. Speed defaults to the offline cap m, making the hotspot
// exactly followable by OPT.
type Hotspot struct {
	// Half is the arena half-width (the hotspot reflects at the border).
	// Default 30·m.
	Half float64
	// Sigma is the request scatter around the hotspot. Default 2·m.
	Sigma float64
	// Speed is the hotspot's per-step drift. Default m.
	Speed float64
	// Requests is the fixed per-step count. Default 1.
	Requests int
	// PoissonMean, when positive, randomizes per-step counts.
	PoissonMean float64
}

// Name implements Generator.
func (h Hotspot) Name() string { return "hotspot" }

// Generate implements Generator.
func (h Hotspot) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	half := h.Half
	if half <= 0 {
		half = 30 * cfg.M
	}
	sigma := h.Sigma
	if sigma <= 0 {
		sigma = 2 * cfg.M
	}
	speed := h.Speed
	if speed <= 0 {
		speed = cfg.M
	}
	reqs := h.Requests
	if reqs <= 0 {
		reqs = 1
	}
	box := arena(cfg.Dim, half)
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	center := geom.Zero(cfg.Dim)
	heading := randUnit(r, cfg.Dim)
	for t := 0; t < T; t++ {
		// Drift with occasional direction changes; reflect at the border.
		if r.Bernoulli(0.05) {
			heading = randUnit(r, cfg.Dim)
		}
		center = center.Add(heading.Scale(speed))
		for i := range center {
			if center[i] < box.Min[i] {
				center[i] = 2*box.Min[i] - center[i]
				heading[i] = -heading[i]
			}
			if center[i] > box.Max[i] {
				center[i] = 2*box.Max[i] - center[i]
				heading[i] = -heading[i]
			}
		}
		center = box.Clamp(center)
		n := drawCount(r, reqs, h.PoissonMean)
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			step.Requests[i] = gaussianAround(r, center, sigma, box)
		}
		in.Steps[t] = step
	}
	return in
}

// Clusters draws each step's requests from one of K fixed Gaussian
// clusters, switching clusters with a small probability per step — load
// concentrated at a few sites (data centers, road junctions).
type Clusters struct {
	// K is the number of clusters. Default 3.
	K int
	// Half is the arena half-width over which cluster centers are placed.
	// Default 25·m.
	Half float64
	// Sigma is the scatter within a cluster. Default m.
	Sigma float64
	// SwitchProb is the per-step probability of jumping to another
	// cluster. Default 0.02.
	SwitchProb float64
	// Requests is the fixed per-step count. Default 1.
	Requests int
	// PoissonMean, when positive, randomizes per-step counts.
	PoissonMean float64
}

// Name implements Generator.
func (c Clusters) Name() string { return "clusters" }

// Generate implements Generator.
func (c Clusters) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	k := c.K
	if k <= 0 {
		k = 3
	}
	half := c.Half
	if half <= 0 {
		half = 25 * cfg.M
	}
	sigma := c.Sigma
	if sigma <= 0 {
		sigma = cfg.M
	}
	switchProb := c.SwitchProb
	if switchProb <= 0 {
		switchProb = 0.02
	}
	reqs := c.Requests
	if reqs <= 0 {
		reqs = 1
	}
	box := arena(cfg.Dim, half)
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = uniformIn(r, box)
	}
	cur := r.IntN(k)
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	for t := 0; t < T; t++ {
		if r.Bernoulli(switchProb) {
			cur = r.IntN(k)
		}
		n := drawCount(r, reqs, c.PoissonMean)
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			step.Requests[i] = gaussianAround(r, centers[cur], sigma, box)
		}
		in.Steps[t] = step
	}
	return in
}

// Burst alternates a quiet phase (Rmin requests near one site) with a
// burst phase (Rmax requests near another site), stressing exactly the
// Rmax/Rmin imbalance of Theorem 2.
type Burst struct {
	// QuietLen and BurstLen are the phase lengths. Defaults 20 and 5.
	QuietLen, BurstLen int
	// Rmin and Rmax are the per-step counts in each phase. Defaults 1, 8.
	Rmin, Rmax int
	// Spread is the distance between the two sites. Default 15·m.
	Spread float64
	// Sigma is the scatter around each site. Default m/2.
	Sigma float64
}

// Name implements Generator.
func (b Burst) Name() string { return "burst" }

// Generate implements Generator.
func (b Burst) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	quiet, burst := b.QuietLen, b.BurstLen
	if quiet <= 0 {
		quiet = 20
	}
	if burst <= 0 {
		burst = 5
	}
	rmin, rmax := b.Rmin, b.Rmax
	if rmin <= 0 {
		rmin = 1
	}
	if rmax <= 0 {
		rmax = 8
	}
	spread := b.Spread
	if spread <= 0 {
		spread = 15 * cfg.M
	}
	sigma := b.Sigma
	if sigma <= 0 {
		sigma = cfg.M / 2
	}
	box := arena(cfg.Dim, spread*2)
	siteA := geom.Zero(cfg.Dim)
	siteB := geom.Zero(cfg.Dim)
	siteB[0] = spread
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	for t := 0; t < T; t++ {
		phasePos := t % (quiet + burst)
		site, n := siteA, rmin
		if phasePos >= quiet {
			site, n = siteB, rmax
		}
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			step.Requests[i] = gaussianAround(r, site, sigma, box)
		}
		in.Steps[t] = step
	}
	return in
}

// randUnit returns a uniformly random unit vector (±1 in 1-D).
func randUnit(r *xrand.Rand, dim int) geom.Point {
	if dim == 1 {
		return geom.NewPoint(r.Sign())
	}
	for {
		v := make(geom.Point, dim)
		for i := range v {
			v[i] = r.Norm()
		}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}

// Registry returns the standard named workloads used by the comparison
// experiments.
func Registry() []Generator {
	return []Generator{Uniform{}, Hotspot{}, Clusters{}, Burst{}, Zipf{}, Drift{}}
}

// WithRequests returns a copy of a registry generator with its fixed
// per-step request count set to n (n <= 0 keeps the generator's default).
// Callers that look generators up ByName use it to dial the load without
// knowing the concrete type.
func WithRequests(g Generator, n int) Generator {
	if n <= 0 {
		return g
	}
	switch w := g.(type) {
	case Uniform:
		w.Requests = n
		return w
	case Hotspot:
		w.Requests = n
		return w
	case Clusters:
		w.Requests = n
		return w
	case Burst:
		w.Rmin = n
		w.Rmax = 8 * n
		return w
	case Zipf:
		w.Requests = n
		return w
	case Drift:
		w.Requests = n
		return w
	default:
		return g
	}
}

// ByName returns the registry generator with the given name.
func ByName(name string) (Generator, error) {
	for _, g := range Registry() {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown generator %q", name)
}
