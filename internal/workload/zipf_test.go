package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestZipfDeterministic(t *testing.T) {
	g := Zipf{Requests: 3}
	a := g.Generate(xrand.New(11), cfg2D(), 100)
	b := g.Generate(xrand.New(11), cfg2D(), 100)
	for i := range a.Steps {
		if len(a.Steps[i].Requests) != len(b.Steps[i].Requests) {
			t.Fatalf("step %d counts differ", i)
		}
		for j := range a.Steps[i].Requests {
			if !a.Steps[i].Requests[j].Equal(b.Steps[i].Requests[j]) {
				t.Fatalf("step %d request %d differs", i, j)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With a tight scatter, requests cluster on sites; the busiest site
	// must absorb far more than a uniform share.
	sites := 8
	in := Zipf{Sites: sites, S: 1.2, Sigma: 0.01, Requests: 4}.Generate(xrand.New(9), cfg2D(), 500)
	// Recover site assignment by quantizing: count requests per rounded
	// location bucket and look at the share of the biggest bucket.
	counts := map[[2]int]int{}
	total := 0
	for _, s := range in.Steps {
		for _, v := range s.Requests {
			counts[[2]int{int(math.Round(v[0])), int(math.Round(v[1]))}]++
			total++
		}
	}
	shares := make([]int, 0, len(counts))
	for _, c := range counts {
		shares = append(shares, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(shares)))
	if float64(shares[0])/float64(total) < 1.5/float64(sites) {
		t.Fatalf("head site share %d/%d shows no Zipf skew over %d sites", shares[0], total, sites)
	}
}

func TestZipfStaysInArena(t *testing.T) {
	half := 6.0
	in := Zipf{Half: half, Sigma: 1}.Generate(xrand.New(3), cfg2D(), 200)
	b := in.Bounds()
	for i := 0; i < 2; i++ {
		if b.Min[i] < -half-1e-9 || b.Max[i] > half+1e-9 {
			t.Fatalf("zipf left arena: %v..%v", b.Min, b.Max)
		}
	}
}

func TestDriftSweepsAxis0(t *testing.T) {
	half := 10.0
	in := Drift{Half: half, Sigma: 0.1, Requests: 2}.Generate(xrand.New(5), cfg2D(), 200)
	first := geom.Centroid(in.Steps[0].Requests)
	last := geom.Centroid(in.Steps[len(in.Steps)-1].Requests)
	if first[0] > -0.6*half || last[0] < 0.6*half {
		t.Fatalf("drift did not sweep: start %.2f end %.2f", first[0], last[0])
	}
	// The sweep is monotone up to scatter noise.
	worse := 0
	prev := first[0]
	for _, s := range in.Steps[1:] {
		c := geom.Centroid(s.Requests)
		if c[0] < prev-1 {
			worse++
		}
		prev = c[0]
	}
	if worse > 5 {
		t.Fatalf("drift reversed %d times", worse)
	}
}

func TestDriftDeterministic(t *testing.T) {
	g := Drift{Requests: 2}
	a := g.Generate(xrand.New(13), cfg1D(), 60)
	b := g.Generate(xrand.New(13), cfg1D(), 60)
	for i := range a.Steps {
		for j := range a.Steps[i].Requests {
			if !a.Steps[i].Requests[j].Equal(b.Steps[i].Requests[j]) {
				t.Fatalf("step %d request %d differs", i, j)
			}
		}
	}
}
