// Zipfian arrivals and the drifting hotspot: the two workloads the
// scenario-lab matrix leans on hardest. Zipf models the classic popularity
// skew of real request logs (a few sites absorb most traffic); Drift is
// the adversarial pattern for a static shard layout — one tight hotspot
// sweeping across every shard boundary over the run.

package workload

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// Zipf draws each request from a fixed set of sites whose popularity
// follows a Zipf law: site of rank i receives traffic proportional to
// 1/i^S. A handful of head sites dominate — the request-log skew that
// makes uniform shard layouts waste capacity on cold regions.
type Zipf struct {
	// Sites is the number of fixed sites. Default 16.
	Sites int
	// S is the Zipf exponent (> 0; larger = more skew). Default 1.2.
	S float64
	// Half is the arena half-width over which sites are placed.
	// Default 25·m.
	Half float64
	// Sigma is the request scatter around a site. Default m.
	Sigma float64
	// Requests is the fixed per-step request count. Default 1.
	Requests int
	// PoissonMean, when positive, randomizes per-step counts.
	PoissonMean float64
}

// Name implements Generator.
func (z Zipf) Name() string { return "zipf" }

// Generate implements Generator.
func (z Zipf) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	sites := z.Sites
	if sites <= 0 {
		sites = 16
	}
	s := z.S
	if s <= 0 {
		s = 1.2
	}
	half := z.Half
	if half <= 0 {
		half = 25 * cfg.M
	}
	sigma := z.Sigma
	if sigma <= 0 {
		sigma = cfg.M
	}
	reqs := z.Requests
	if reqs <= 0 {
		reqs = 1
	}
	box := arena(cfg.Dim, half)
	centers := make([]geom.Point, sites)
	for i := range centers {
		centers[i] = uniformIn(r, box)
	}
	// Cumulative Zipf weights: cum[i] = Σ_{j<=i} 1/(j+1)^s, normalized.
	cum := make([]float64, sites)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	for t := 0; t < T; t++ {
		n := drawCount(r, reqs, z.PoissonMean)
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			u := r.Float64()
			site := sort.SearchFloat64s(cum, u)
			if site >= sites {
				site = sites - 1
			}
			step.Requests[i] = gaussianAround(r, centers[site], sigma, box)
		}
		in.Steps[t] = step
	}
	return in
}

// Drift sweeps one tight hotspot linearly across [-0.8·Half, 0.8·Half] on
// axis 0 over the whole run — the workload a static shard layout serves
// worst (every boundary is crossed exactly once) and the one dynamic
// rebalancing is built for.
type Drift struct {
	// Half is the sweep half-width. Default 25·m.
	Half float64
	// Sigma is the request scatter around the hotspot. Default m/2.
	Sigma float64
	// Requests is the fixed per-step request count. Default 1.
	Requests int
	// PoissonMean, when positive, randomizes per-step counts.
	PoissonMean float64
}

// Name implements Generator.
func (d Drift) Name() string { return "drift" }

// Generate implements Generator.
func (d Drift) Generate(r *xrand.Rand, cfg core.Config, T int) *core.Instance {
	half := d.Half
	if half <= 0 {
		half = 25 * cfg.M
	}
	sigma := d.Sigma
	if sigma <= 0 {
		sigma = cfg.M / 2
	}
	reqs := d.Requests
	if reqs <= 0 {
		reqs = 1
	}
	box := arena(cfg.Dim, half)
	in := &core.Instance{Config: cfg, Start: geom.Zero(cfg.Dim), Steps: make([]core.Step, T)}
	center := geom.Zero(cfg.Dim)
	for t := 0; t < T; t++ {
		frac := 0.0
		if T > 1 {
			frac = float64(t) / float64(T-1)
		}
		center[0] = half * (-0.8 + 1.6*frac)
		n := drawCount(r, reqs, d.PoissonMean)
		step := core.Step{Requests: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			step.Requests[i] = gaussianAround(r, center, sigma, box)
		}
		in.Steps[t] = step
	}
	return in
}
