package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/xrand"
)

func cfg2D() core.Config { return core.Config{Dim: 2, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst} }
func cfg1D() core.Config { return core.Config{Dim: 1, D: 2, M: 1, Delta: 0.5, Order: core.MoveFirst} }

func TestAllGeneratorsProduceValidInstances(t *testing.T) {
	for _, g := range Registry() {
		for _, cfg := range []core.Config{cfg1D(), cfg2D()} {
			in := g.Generate(xrand.New(1), cfg, 50)
			if err := in.Validate(); err != nil {
				t.Errorf("%s dim=%d: %v", g.Name(), cfg.Dim, err)
			}
			if in.T() != 50 {
				t.Errorf("%s: T = %d", g.Name(), in.T())
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Registry() {
		a := g.Generate(xrand.New(7), cfg2D(), 30)
		b := g.Generate(xrand.New(7), cfg2D(), 30)
		if a.T() != b.T() {
			t.Fatalf("%s: lengths differ", g.Name())
		}
		for i := range a.Steps {
			if len(a.Steps[i].Requests) != len(b.Steps[i].Requests) {
				t.Fatalf("%s: step %d counts differ", g.Name(), i)
			}
			for j := range a.Steps[i].Requests {
				if !a.Steps[i].Requests[j].Equal(b.Steps[i].Requests[j]) {
					t.Fatalf("%s: step %d request %d differs", g.Name(), i, j)
				}
			}
		}
	}
}

func TestGeneratorsSeedsDiffer(t *testing.T) {
	g := Uniform{}
	a := g.Generate(xrand.New(1), cfg2D(), 10)
	b := g.Generate(xrand.New(2), cfg2D(), 10)
	same := true
	for i := range a.Steps {
		if !a.Steps[i].Requests[0].Equal(b.Steps[i].Requests[0]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestUniformRequestCount(t *testing.T) {
	in := Uniform{Requests: 3}.Generate(xrand.New(1), cfg2D(), 20)
	rmin, rmax := in.RequestRange()
	if rmin != 3 || rmax != 3 {
		t.Fatalf("request range = %d..%d, want 3..3", rmin, rmax)
	}
}

func TestUniformPoissonCounts(t *testing.T) {
	in := Uniform{PoissonMean: 4}.Generate(xrand.New(1), cfg2D(), 300)
	rmin, rmax := in.RequestRange()
	if rmin < 1 {
		t.Fatalf("Poisson counts produced empty step (rmin=%d)", rmin)
	}
	if rmax <= 1 {
		t.Fatalf("Poisson counts never varied (rmax=%d)", rmax)
	}
	total := in.TotalRequests()
	mean := float64(total) / 300
	if mean < 2.5 || mean > 5.5 {
		t.Fatalf("Poisson mean ≈ %v, want ≈ 4", mean)
	}
}

func TestUniformStaysInArena(t *testing.T) {
	half := 5.0
	in := Uniform{Half: half}.Generate(xrand.New(2), cfg2D(), 100)
	for _, s := range in.Steps {
		for _, v := range s.Requests {
			for _, x := range v {
				if x < -half || x > half {
					t.Fatalf("request %v outside arena", v)
				}
			}
		}
	}
}

func TestHotspotLocality(t *testing.T) {
	// Consecutive request centroids should be close: the hotspot moves at
	// bounded speed and scatter is bounded.
	in := Hotspot{Sigma: 0.5, Speed: 1, Requests: 4}.Generate(xrand.New(3), cfg2D(), 200)
	prev := geom.Centroid(in.Steps[0].Requests)
	big := 0
	for _, s := range in.Steps[1:] {
		c := geom.Centroid(s.Requests)
		if geom.Dist(prev, c) > 4 {
			big++
		}
		prev = c
	}
	if big > 10 {
		t.Fatalf("hotspot jumped too often: %d/200", big)
	}
}

func TestHotspotStaysInArena(t *testing.T) {
	half := 8.0
	in := Hotspot{Half: half, Sigma: 1}.Generate(xrand.New(4), cfg2D(), 500)
	b := in.Bounds()
	for i := 0; i < 2; i++ {
		if b.Min[i] < -half-1e-9 || b.Max[i] > half+1e-9 {
			t.Fatalf("hotspot left arena: %v..%v", b.Min, b.Max)
		}
	}
}

func TestClustersConcentration(t *testing.T) {
	in := Clusters{K: 3, Sigma: 0.3, SwitchProb: 0.01, Requests: 2}.Generate(xrand.New(5), cfg2D(), 400)
	// Measure: most consecutive steps should have nearby centroids
	// (same cluster); occasional big jumps are the switches.
	prev := geom.Centroid(in.Steps[0].Requests)
	jumps := 0
	for _, s := range in.Steps[1:] {
		c := geom.Centroid(s.Requests)
		if geom.Dist(prev, c) > 5 {
			jumps++
		}
		prev = c
	}
	if jumps == 0 {
		t.Fatal("clusters never switched")
	}
	if jumps > 40 {
		t.Fatalf("clusters switched too often: %d/400", jumps)
	}
}

func TestBurstPattern(t *testing.T) {
	in := Burst{QuietLen: 10, BurstLen: 4, Rmin: 1, Rmax: 6}.Generate(xrand.New(6), cfg2D(), 56)
	for t2 := 0; t2 < in.T(); t2++ {
		want := 1
		if t2%14 >= 10 {
			want = 6
		}
		if len(in.Steps[t2].Requests) != want {
			t.Fatalf("step %d: %d requests, want %d", t2, len(in.Steps[t2].Requests), want)
		}
	}
	rmin, rmax := in.RequestRange()
	if rmin != 1 || rmax != 6 {
		t.Fatalf("request range %d..%d", rmin, rmax)
	}
}

func TestBurstSitesSeparated(t *testing.T) {
	in := Burst{QuietLen: 5, BurstLen: 5, Spread: 20, Sigma: 0.1}.Generate(xrand.New(7), cfg1D(), 20)
	quiet := in.Steps[0].Requests[0][0]
	burst := in.Steps[7].Requests[0][0]
	if burst-quiet < 15 {
		t.Fatalf("sites not separated: quiet %v burst %v", quiet, burst)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "hotspot", "clusters", "burst", "zipf", "drift"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRegistryNonEmptyAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Registry() {
		if seen[g.Name()] {
			t.Fatalf("duplicate workload %q", g.Name())
		}
		seen[g.Name()] = true
	}
	if len(seen) < 4 {
		t.Fatalf("registry too small: %d", len(seen))
	}
}
