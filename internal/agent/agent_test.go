package agent

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func validConfig() Config {
	return Config{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.D = 0.5 },
		func(c *Config) { c.MS = 0 },
		func(c *Config) { c.MA = -1 },
		func(c *Config) { c.Delta = 2 },
		func(c *Config) { c.Delta = math.NaN() },
	}
	for i, mutate := range cases {
		c := validConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestOnlineCap(t *testing.T) {
	c := Config{Dim: 1, D: 1, MS: 2, MA: 1, Delta: 0.5}
	if c.OnlineCap() != 3 {
		t.Fatalf("OnlineCap = %v", c.OnlineCap())
	}
}

func walkInstance(t *testing.T, T int) *Instance {
	t.Helper()
	cfg := validConfig()
	r := xrand.New(1)
	in := &Instance{
		Config: cfg,
		Start:  pt(0, 0),
		Path:   RandomWalk(r, pt(0, 0), T, cfg.MA),
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceValidateSpeed(t *testing.T) {
	in := walkInstance(t, 10)
	in.Path[3] = in.Path[3].Add(pt(100, 0))
	if err := in.Validate(); err == nil {
		t.Fatal("agent overspeed accepted")
	}
}

func TestInstanceValidateShape(t *testing.T) {
	in := walkInstance(t, 5)
	in.Path = nil
	if err := in.Validate(); err == nil {
		t.Fatal("empty path accepted")
	}
	in = walkInstance(t, 5)
	in.Path[0] = pt(1.0)
	if err := in.Validate(); err == nil {
		t.Fatal("wrong-dim agent position accepted")
	}
	in = walkInstance(t, 5)
	in.Start = pt(0, 0, 0)
	if err := in.Validate(); err == nil {
		t.Fatal("wrong-dim start accepted")
	}
}

func TestToCoreShape(t *testing.T) {
	in := walkInstance(t, 12)
	cin := in.ToCore()
	if err := cin.Validate(); err != nil {
		t.Fatal(err)
	}
	if cin.T() != 12 || cin.TotalRequests() != 12 {
		t.Fatalf("converted shape T=%d reqs=%d", cin.T(), cin.TotalRequests())
	}
	if cin.Config.M != in.Config.MS || cin.Config.Order != core.MoveFirst {
		t.Fatalf("converted config = %+v", cin.Config)
	}
	for tt, s := range cin.Steps {
		if len(s.Requests) != 1 || !s.Requests[0].Equal(in.Path[tt]) {
			t.Fatalf("step %d requests wrong", tt)
		}
	}
}

func TestToCoreCostEquivalence(t *testing.T) {
	// The Moving Client objective of a trajectory equals the core cost of
	// the converted instance.
	in := walkInstance(t, 20)
	cin := in.ToCore()
	// Build some feasible server trajectory: follow at speed MS.
	positions := []geom.Point{in.Start.Clone()}
	cur := in.Start.Clone()
	manual := 0.0
	for _, a := range in.Path {
		next := geom.MoveToward(cur, a, in.Config.MS)
		manual += in.Config.D*geom.Dist(cur, next) + geom.Dist(next, a)
		cur = next
		positions = append(positions, next.Clone())
	}
	got, err := core.TrajectoryCost(cin, positions)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Total()-manual) > 1e-9*(1+manual) {
		t.Fatalf("converted cost %v != manual %v", got.Total(), manual)
	}
}

func TestFollowMovesByRule(t *testing.T) {
	// d(P,A)/D below the cap: move exactly d/D.
	f := NewFollow()
	f.Reset(Config{Dim: 1, D: 4, MS: 10, MA: 10, Delta: 0}, pt(0.0))
	got := f.Move(pt(8.0))
	if !got.ApproxEqual(pt(2.0), 1e-12) {
		t.Fatalf("Follow moved to %v, want 2", got)
	}
	// Far agent: cap binds.
	f.Reset(Config{Dim: 1, D: 1, MS: 1, MA: 1, Delta: 0}, pt(0.0))
	got = f.Move(pt(100.0))
	if !got.ApproxEqual(pt(1.0), 1e-12) {
		t.Fatalf("Follow moved to %v, want 1", got)
	}
}

func TestFollowMaintainsBoundedDistance(t *testing.T) {
	// Theorem 10's intuition: with MS = MA the server maintains distance
	// at most ~D·MS from the agent once it has caught up.
	cfg := Config{Dim: 2, D: 3, MS: 1, MA: 1, Delta: 0}
	r := xrand.New(9)
	in := &Instance{Config: cfg, Start: pt(0, 0), Path: RandomWalk(r, pt(0, 0), 400, cfg.MA)}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in.ToCore(), Adapt(in, NewFollow()), sim.RunOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	bound := cfg.D*cfg.MS + cfg.MA + 1e-9
	for tt, rec := range res.Trace {
		if d := geom.Dist(rec.Pos, in.Path[tt]); d > bound {
			t.Fatalf("round %d: server-agent distance %v > bound %v", tt, d, bound)
		}
	}
}

func TestFollowRespectsCapUnderSim(t *testing.T) {
	cfg := Config{Dim: 2, D: 1, MS: 0.5, MA: 0.5, Delta: 0.25}
	r := xrand.New(10)
	in := &Instance{Config: cfg, Start: pt(0, 0), Path: RandomWalk(r, pt(0, 0), 200, cfg.MA)}
	res, err := sim.Run(in.ToCore(), Adapt(in, NewFollow()), sim.RunOptions{Mode: sim.Strict})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMove > cfg.OnlineCap()*(1+1e-9) {
		t.Fatalf("MaxMove %v > cap %v", res.MaxMove, cfg.OnlineCap())
	}
}

func TestRandomWalkSpeed(t *testing.T) {
	r := xrand.New(2)
	origin := pt(5, 5)
	path := RandomWalk(r, origin, 300, 0.7)
	prev := origin
	for i, a := range path {
		if d := geom.Dist(prev, a); d > 0.7*(1+1e-12) {
			t.Fatalf("step %d moved %v", i, d)
		}
		prev = a
	}
}

func TestDriftSpeedAndProgress(t *testing.T) {
	r := xrand.New(3)
	origin := pt(0, 0)
	path := Drift(r, origin, 500, 1.0, 0.2)
	prev := origin
	for i, a := range path {
		if d := geom.Dist(prev, a); d > 1.0*(1+1e-9) {
			t.Fatalf("step %d moved %v", i, d)
		}
		prev = a
	}
	// A drift should travel a substantial fraction of T·speed.
	if total := geom.Dist(origin, path[len(path)-1]); total < 250 {
		t.Fatalf("drift traveled only %v over 500 steps", total)
	}
}

func TestCommuterOscillates(t *testing.T) {
	origin, target := pt(0.0), pt(5.0)
	path := Commuter(origin, target, 40, 1)
	prev := origin
	reachedTarget, reachedOrigin := false, false
	for i, a := range path {
		if d := geom.Dist(prev, a); d > 1+1e-12 {
			t.Fatalf("step %d moved %v", i, d)
		}
		if a.ApproxEqual(target, 1e-9) {
			reachedTarget = true
		}
		if reachedTarget && a.ApproxEqual(origin, 1e-9) {
			reachedOrigin = true
		}
		prev = a
	}
	if !reachedTarget || !reachedOrigin {
		t.Fatalf("commuter did not oscillate (target=%v origin=%v)", reachedTarget, reachedOrigin)
	}
}

func TestPatrolStaysOnCircle(t *testing.T) {
	center := pt(0, 0)
	origin := pt(10, 0) // already on the circle of radius 10
	path := Patrol(origin, center, 10, 200, 0.5)
	prev := origin
	for i, a := range path {
		if d := geom.Dist(prev, a); d > 0.5*(1+1e-9) {
			t.Fatalf("step %d moved %v", i, d)
		}
		if r := geom.Dist(center, a); math.Abs(r-10) > 1e-6 {
			t.Fatalf("step %d radius %v", i, r)
		}
		prev = a
	}
	// The patrol should make progress around the circle.
	if geom.Dist(origin, path[len(path)-1]) < 1 {
		t.Fatal("patrol did not advance")
	}
}

func TestPatrolEntersCircle(t *testing.T) {
	center := pt(0, 0)
	origin := pt(20, 0) // off-circle start
	path := Patrol(origin, center, 5, 100, 1)
	last := path[len(path)-1]
	if math.Abs(geom.Dist(center, last)-5) > 1e-6 {
		t.Fatalf("patrol did not reach the circle: radius %v", geom.Dist(center, last))
	}
}

func TestPatrolPanicsIn1D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Patrol in 1-D did not panic")
		}
	}()
	Patrol(pt(0.0), pt(1.0), 1, 10, 1)
}

func TestAdaptPanicsOnBadStep(t *testing.T) {
	in := walkInstance(t, 3)
	alg := Adapt(in, NewFollow())
	alg.Reset(in.ToCore().Config, in.Start)
	defer func() {
		if recover() == nil {
			t.Fatal("adapter accepted 2 requests")
		}
	}()
	alg.Move([]geom.Point{pt(0, 0), pt(1, 1)})
}
