package agent

import (
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Trajectory generators for the Moving Client variant. Every generator
// produces a path of T agent positions whose per-step displacement never
// exceeds the given speed limit, starting from the provided origin. They
// model the motivating scenarios of the paper: helpers in a disaster area
// (random walk), vehicles on a route (convoy/commuter), and surveillance
// drones (patrol).

// RandomWalk returns a path that takes a uniformly random direction each
// step with speed drawn uniformly from [0, speed].
func RandomWalk(r *xrand.Rand, origin geom.Point, T int, speed float64) []geom.Point {
	dim := origin.Dim()
	path := make([]geom.Point, T)
	cur := origin.Clone()
	for t := 0; t < T; t++ {
		dir := randUnit(r, dim)
		cur = cur.Add(dir.Scale(r.Range(0, speed)))
		path[t] = cur.Clone()
	}
	return path
}

// Drift returns a path moving in a fixed random direction at full speed
// with per-step Gaussian jitter of relative magnitude jitter in [0, 1).
// It models a convoy on a highway.
func Drift(r *xrand.Rand, origin geom.Point, T int, speed, jitter float64) []geom.Point {
	dim := origin.Dim()
	heading := randUnit(r, dim)
	path := make([]geom.Point, T)
	cur := origin.Clone()
	for t := 0; t < T; t++ {
		step := heading.Scale(speed * (1 - jitter))
		noise := randUnit(r, dim).Scale(speed * jitter * r.Float64())
		next := cur.Add(step).Add(noise)
		// Clamp to the speed limit (jitter could overshoot by rounding).
		cur = geom.MoveToward(cur, next, speed)
		path[t] = cur.Clone()
	}
	return path
}

// Commuter returns a path oscillating between origin and a target at full
// speed, modeling a vehicle shuttling between two sites.
func Commuter(origin, target geom.Point, T int, speed float64) []geom.Point {
	path := make([]geom.Point, T)
	cur := origin.Clone()
	dest := target.Clone()
	for t := 0; t < T; t++ {
		cur = geom.MoveToward(cur, dest, speed)
		if geom.Dist(cur, dest) == 0 {
			if dest.Equal(target) {
				dest = origin.Clone()
			} else {
				dest = target.Clone()
			}
		}
		path[t] = cur.Clone()
	}
	return path
}

// Patrol returns a path circling the given center with the given radius at
// an angular velocity such that the chord per step equals speed (or slower
// when the circle is small). It requires dimension >= 2 and moves in the
// first two coordinates. The agent first walks from the origin onto the
// circle at full speed.
func Patrol(origin, center geom.Point, radius float64, T int, speed float64) []geom.Point {
	if origin.Dim() < 2 {
		panic("agent: Patrol requires dimension >= 2")
	}
	path := make([]geom.Point, T)
	cur := origin.Clone()
	// Angular step so the chord length is at most speed.
	dTheta := 2 * math.Asin(math.Min(1, speed/(2*math.Max(radius, 1e-12))))
	theta := math.Atan2(cur[1]-center[1], cur[0]-center[0])
	onCircle := false
	for t := 0; t < T; t++ {
		if !onCircle {
			entry := center.Clone()
			entry[0] += radius * math.Cos(theta)
			entry[1] += radius * math.Sin(theta)
			cur = geom.MoveToward(cur, entry, speed)
			if geom.Dist(cur, entry) == 0 {
				onCircle = true
			}
		} else {
			theta += dTheta
			next := center.Clone()
			next[0] += radius * math.Cos(theta)
			next[1] += radius * math.Sin(theta)
			// The chord is ≤ speed by construction; MoveToward guards
			// against rounding.
			cur = geom.MoveToward(cur, next, speed)
		}
		path[t] = cur.Clone()
	}
	return path
}

// randUnit returns a uniformly random unit vector in ℝ^dim (for dim 1 it
// returns ±1).
func randUnit(r *xrand.Rand, dim int) geom.Point {
	if dim == 1 {
		return geom.NewPoint(r.Sign())
	}
	for {
		v := make(geom.Point, dim)
		for i := range v {
			v[i] = r.Norm()
		}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}
