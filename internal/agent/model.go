// Package agent implements the Moving Client variant of the Mobile Server
// Problem (Section 5 of the paper): the requests are posed by a single
// agent that itself moves at bounded speed m_a per step, while the server
// moves at speed m_s (optionally augmented to (1+δ)m_s for the online
// algorithm). In round t the agent position A_t is revealed, then the
// server moves, then it pays d(P_t, A_t); the move costs D·d(P_{t-1}, P_t).
//
// The variant reduces to the core model with exactly one request per step
// located at A_t, so the simulation and offline machinery is shared via
// Instance.ToCore.
package agent

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Config carries the parameters of a Moving Client instance.
type Config struct {
	// Dim is the dimension of the space, >= 1.
	Dim int
	// D is the page weight, >= 1.
	D float64
	// MS is the per-step movement limit of the (offline) server.
	MS float64
	// MA is the per-step movement limit of the agent.
	MA float64
	// Delta is the augmentation for the online server: cap (1+δ)·MS.
	Delta float64
}

// OnlineCap returns (1+δ)·m_s.
func (c Config) OnlineCap() float64 { return (1 + c.Delta) * c.MS }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Dim < 1:
		return fmt.Errorf("agent: Dim = %d, need >= 1", c.Dim)
	case !(c.D >= 1) || math.IsInf(c.D, 0):
		return fmt.Errorf("agent: D = %v, need finite D >= 1", c.D)
	case !(c.MS > 0) || math.IsInf(c.MS, 0):
		return fmt.Errorf("agent: MS = %v, need finite MS > 0", c.MS)
	case !(c.MA > 0) || math.IsInf(c.MA, 0):
		return fmt.Errorf("agent: MA = %v, need finite MA > 0", c.MA)
	case c.Delta < 0 || c.Delta > 1 || math.IsNaN(c.Delta):
		return fmt.Errorf("agent: Delta = %v, need 0 <= delta <= 1", c.Delta)
	}
	return nil
}

// Instance is a Moving Client input: the common start position of server
// and agent (A_0 = P_0 in the paper) and the agent path A_1..A_T.
type Instance struct {
	Config Config
	Start  geom.Point
	Path   []geom.Point
}

// T returns the number of rounds.
func (in *Instance) T() int { return len(in.Path) }

// Validate checks the configuration, dimensions, finiteness, and that the
// agent path respects the agent speed limit MA within relative tolerance.
func (in *Instance) Validate() error {
	if err := in.Config.Validate(); err != nil {
		return err
	}
	if in.Start.Dim() != in.Config.Dim {
		return fmt.Errorf("agent: start dim %d != config dim %d", in.Start.Dim(), in.Config.Dim)
	}
	if len(in.Path) == 0 {
		return fmt.Errorf("agent: instance has no rounds")
	}
	prev := in.Start
	for t, a := range in.Path {
		if a.Dim() != in.Config.Dim {
			return fmt.Errorf("agent: A_%d has dim %d, want %d", t+1, a.Dim(), in.Config.Dim)
		}
		if !a.IsFinite() {
			return fmt.Errorf("agent: A_%d = %v is not finite", t+1, a)
		}
		if moved := geom.Dist(prev, a); moved > in.Config.MA*(1+1e-9) {
			return fmt.Errorf("agent: agent moves %.12g > MA %.12g at round %d", moved, in.Config.MA, t+1)
		}
		prev = a
	}
	return nil
}

// ToCore converts the instance to the core model: one request per step at
// the agent position, Move-First order, server limit MS. Costs coincide
// exactly with the Moving Client objective.
func (in *Instance) ToCore() *core.Instance {
	out := &core.Instance{
		Config: core.Config{
			Dim:   in.Config.Dim,
			D:     in.Config.D,
			M:     in.Config.MS,
			Delta: in.Config.Delta,
			Order: core.MoveFirst,
		},
		Start: in.Start.Clone(),
		Steps: make([]core.Step, len(in.Path)),
	}
	for t, a := range in.Path {
		out.Steps[t] = core.Step{Requests: []geom.Point{a.Clone()}}
	}
	return out
}

// Algorithm is an online algorithm for the Moving Client variant.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Reset prepares for a fresh instance.
	Reset(cfg Config, start geom.Point)
	// Move observes the agent's new position and returns the new server
	// position; the simulator enforces the cap (1+δ)·MS.
	Move(agentPos geom.Point) geom.Point
}

// Follow is the paper's MtC algorithm specialized to the Moving Client
// variant (Theorem 10): upon receiving the agent position A_t, move
// min(cap, d(P, A_t)/D) toward A_t, where cap is (1+δ)·MS (δ = 0 in the
// theorem's setting).
type Follow struct {
	cfg Config
	pos geom.Point
}

// NewFollow returns the follow-the-agent MtC algorithm.
func NewFollow() *Follow { return &Follow{} }

// Name implements Algorithm.
func (f *Follow) Name() string { return "Follow-MtC" }

// Reset implements Algorithm.
func (f *Follow) Reset(cfg Config, start geom.Point) {
	f.cfg = cfg
	f.pos = start.Clone()
}

// Move implements Algorithm.
func (f *Follow) Move(agentPos geom.Point) geom.Point {
	want := geom.Dist(f.pos, agentPos) / f.cfg.D
	step := math.Min(want, f.cfg.OnlineCap())
	f.pos = geom.MoveToward(f.pos, agentPos, step)
	return f.pos
}

// coreAdapter lifts an agent.Algorithm to a core.Algorithm over the
// converted instance (requests[0] is the agent position).
type coreAdapter struct {
	inner Algorithm
	cfg   Config
}

func (c *coreAdapter) Name() string { return c.inner.Name() }

func (c *coreAdapter) Reset(cfg core.Config, start geom.Point) {
	c.inner.Reset(c.cfg, start)
}

func (c *coreAdapter) Move(reqs []geom.Point) geom.Point {
	if len(reqs) != 1 {
		panic("agent: converted instance must have exactly one request per step")
	}
	return c.inner.Move(reqs[0])
}

// Adapt wraps an agent.Algorithm as a core.Algorithm for use with sim.Run
// on in.ToCore(). The adapter passes the agent-variant Config through to
// the inner algorithm.
func Adapt(in *Instance, alg Algorithm) core.Algorithm {
	return &coreAdapter{inner: alg, cfg: in.Config}
}
