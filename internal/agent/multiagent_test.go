package agent

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// teamInstance builds k agents random-walking as a loose team: each agent
// random-walks around a common drifting anchor so they stay together.
func teamInstance(t *testing.T, k, T int, seed uint64) *MultiInstance {
	t.Helper()
	cfg := Config{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
	r := xrand.New(seed)
	origin := pt(0, 0)
	// Anchor drifts at half speed; agents use the other half to jitter
	// around it, so every agent's per-step move is within MA.
	anchor := origin.Clone()
	paths := make([][]geom.Point, k)
	positions := make([]geom.Point, k)
	for j := range paths {
		paths[j] = make([]geom.Point, T)
		positions[j] = origin.Clone()
	}
	heading := geom.NewPoint(1, 0)
	for tt := 0; tt < T; tt++ {
		if r.Bernoulli(0.05) {
			heading = geom.NewPoint(r.Range(-1, 1), r.Range(-1, 1))
			if heading.Norm() < 1e-6 {
				heading = geom.NewPoint(1, 0)
			}
			heading = heading.Unit()
		}
		anchor = anchor.Add(heading.Scale(cfg.MA / 2))
		for j := range paths {
			jitter := geom.NewPoint(r.Range(-1, 1), r.Range(-1, 1)).Scale(cfg.MA / 4)
			target := anchor.Add(jitter)
			positions[j] = geom.MoveToward(positions[j], target, cfg.MA)
			paths[j][tt] = positions[j].Clone()
		}
	}
	in := &MultiInstance{Config: cfg, Start: origin, Paths: paths}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMultiInstanceShape(t *testing.T) {
	in := teamInstance(t, 3, 50, 1)
	if in.K() != 3 || in.T() != 50 {
		t.Fatalf("K=%d T=%d", in.K(), in.T())
	}
	cin := in.ToCore()
	if cin.TotalRequests() != 150 {
		t.Fatalf("TotalRequests = %d", cin.TotalRequests())
	}
	rmin, rmax := cin.RequestRange()
	if rmin != 3 || rmax != 3 {
		t.Fatalf("request range %d..%d", rmin, rmax)
	}
}

func TestMultiInstanceValidateRejects(t *testing.T) {
	in := teamInstance(t, 2, 10, 2)
	in.Paths[1] = in.Paths[1][:5]
	if err := in.Validate(); err == nil {
		t.Fatal("ragged paths accepted")
	}

	in = teamInstance(t, 2, 10, 2)
	in.Paths[0][3] = in.Paths[0][3].Add(pt(50, 0))
	if err := in.Validate(); err == nil {
		t.Fatal("overspeed agent accepted")
	}

	in = teamInstance(t, 2, 10, 2)
	in.Paths = nil
	if err := in.Validate(); err == nil {
		t.Fatal("zero agents accepted")
	}
}

func TestMtCServesAgentTeamWithConstantCost(t *testing.T) {
	// The paper's multi-agent remark: with m_s = m_a, the general MtC on
	// the reduced instance keeps a bounded distance to the team, so the
	// per-step cost is bounded by a constant (depending on D, m, and the
	// team spread, not on T).
	short := teamInstance(t, 3, 300, 7)
	long := teamInstance(t, 3, 1200, 7)
	perStep := func(in *MultiInstance) float64 {
		res, err := sim.Run(in.ToCore(), core.NewMtC(), sim.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Total() / float64(in.T())
	}
	a, b := perStep(short), perStep(long)
	if b > 1.5*a {
		t.Fatalf("per-step cost grew with T: %v -> %v", a, b)
	}
}

func TestMtCTracksTeamCentroid(t *testing.T) {
	in := teamInstance(t, 4, 400, 9)
	res, err := sim.Run(in.ToCore(), core.NewMtC(), sim.RunOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// After a warm-up, the server must stay within a constant of the
	// team's centroid.
	warm := 50
	bound := in.Config.D*in.Config.MS + 6 // team spread + damped lag
	for tt := warm; tt < in.T(); tt++ {
		reqs := make([]geom.Point, in.K())
		for j := range in.Paths {
			reqs[j] = in.Paths[j][tt]
		}
		c := geom.Centroid(reqs)
		if d := geom.Dist(res.Trace[tt].Pos, c); d > bound {
			t.Fatalf("round %d: server %v is %v from centroid %v (bound %v)", tt, res.Trace[tt].Pos, d, c, bound)
		}
	}
}
