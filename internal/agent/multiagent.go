package agent

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// MultiInstance is the multiple-agent Moving Client variant the paper
// sketches in Section 5 ("our results can be modified to also work for
// multiple agents by similar arguments"): k agents move at bounded speed
// m_a, and in every round the server pays the distance to each of them
// after moving. The variant reduces to the core model with r = k requests
// per step located at the agent positions, so the general MtC algorithm
// (not just Follow) applies directly.
type MultiInstance struct {
	Config Config
	// Start is the common start position of the server and all agents.
	Start geom.Point
	// Paths[j][t] is agent j's position in round t+1. All paths must have
	// equal length.
	Paths [][]geom.Point
}

// K returns the number of agents.
func (in *MultiInstance) K() int { return len(in.Paths) }

// T returns the number of rounds.
func (in *MultiInstance) T() int {
	if len(in.Paths) == 0 {
		return 0
	}
	return len(in.Paths[0])
}

// Validate checks the configuration, path shapes, and every agent's speed.
func (in *MultiInstance) Validate() error {
	if err := in.Config.Validate(); err != nil {
		return err
	}
	if in.Start.Dim() != in.Config.Dim {
		return fmt.Errorf("agent: start dim %d != config dim %d", in.Start.Dim(), in.Config.Dim)
	}
	if len(in.Paths) == 0 {
		return fmt.Errorf("agent: MultiInstance has no agents")
	}
	T := in.T()
	if T == 0 {
		return fmt.Errorf("agent: MultiInstance has no rounds")
	}
	for j, path := range in.Paths {
		if len(path) != T {
			return fmt.Errorf("agent: agent %d has %d rounds, want %d", j, len(path), T)
		}
		prev := in.Start
		for t, a := range path {
			if a.Dim() != in.Config.Dim || !a.IsFinite() {
				return fmt.Errorf("agent: agent %d round %d bad position %v", j, t+1, a)
			}
			if moved := geom.Dist(prev, a); moved > in.Config.MA*(1+1e-9) {
				return fmt.Errorf("agent: agent %d moves %.12g > MA %.12g at round %d", j, moved, in.Config.MA, t+1)
			}
			prev = a
		}
	}
	return nil
}

// ToCore converts the instance to the core model with one request per
// agent per step.
func (in *MultiInstance) ToCore() *core.Instance {
	out := &core.Instance{
		Config: core.Config{
			Dim:   in.Config.Dim,
			D:     in.Config.D,
			M:     in.Config.MS,
			Delta: in.Config.Delta,
			Order: core.MoveFirst,
		},
		Start: in.Start.Clone(),
		Steps: make([]core.Step, in.T()),
	}
	for t := 0; t < in.T(); t++ {
		reqs := make([]geom.Point, len(in.Paths))
		for j, path := range in.Paths {
			reqs[j] = path[t].Clone()
		}
		out.Steps[t] = core.Step{Requests: reqs}
	}
	return out
}
