// Package fsx holds the crash-safe filesystem idiom shared by everything
// in this repository that persists an artifact: the checkpoint writer
// (internal/protocol) and the scenario lab's results tree (internal/lab).
//
// The idiom is tmp + fsync + rename + directory fsync. The rename alone
// makes a write atomic against a process kill, but not durable: after a
// system crash shortly after the rename, a file whose data was never
// fsynced can legally come back zero-length — a torn summary.json or
// checkpoint that a resume would half-trust. The atomicwrite analyzer
// (internal/lint) flags any os.Rename finalization that bypasses this
// package's ordering.
package fsx

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsync, and an atomic rename, so neither a process kill
// mid-write nor a system crash shortly after leaves a torn or empty
// file. dir, when non-nil, is an already-open handle on path's parent
// directory used to make the rename itself durable without re-opening
// the directory on every write; a nil dir falls back to a per-write
// open. The directory fsync is best-effort either way: some
// platforms/filesystems refuse it, and the rename is already atomic for
// process-level crashes.
func WriteFileAtomic(path string, data []byte, dir *os.File) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir != nil {
		_ = dir.Sync()
	} else if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
