package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteFileAtomic(path, []byte("one"), nil); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "one" {
		t.Fatalf("read back %q, %v; want %q", got, err, "one")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// Overwrite is atomic: the new content fully replaces the old.
	if err := WriteFileAtomic(path, []byte("two — longer content"), nil); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "two — longer content" {
		t.Fatalf("after overwrite read %q", got)
	}
}

func TestWriteFileAtomicWithDirHandle(t *testing.T) {
	dir := t.TempDir()
	d, err := os.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	path := filepath.Join(dir, "ck.json")
	if err := WriteFileAtomic(path, []byte("snap"), d); err != nil {
		t.Fatalf("WriteFileAtomic with dir handle: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "snap" {
		t.Fatalf("read back %q", got)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), nil)
	if err == nil {
		t.Fatal("want error writing into a missing directory")
	}
}
