// Package wire defines the versioned JSON wire format of the serving API
// (internal/protocol, internal/server, cmd/mobserve): request/response
// bodies for the HTTP endpoints, the NDJSON frames of the streaming
// transport (POST /stream), the server-sent metrics events
// (GET /metrics/stream), and the checkpoint document.
//
// Everything that crosses a process boundary carries a version stamp
// ("v", currently V1); decoders reject unknown majors instead of guessing
// (CheckVersion), and request decoding is strict — unknown fields are an
// error, not a silently dropped no-op. Errors are typed (Error, with a
// stable Code) rather than status-code-only.
//
// Points travel as plain JSON arrays of coordinates. Go marshals float64
// values in the shortest form that round-trips to identical bits, so
// positions and costs reported over the wire are exact, matching the
// engine's checkpoint guarantees.
package wire

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
)

// Point is a position on the wire: a JSON array of d coordinates.
type Point []float64

// StepRequest is the body of POST /step: one batch of requests to feed to
// the session. Batches that arrive within the server's coalescing window
// are merged into a single engine step.
type StepRequest struct {
	Requests []Point `json:"requests"`
}

// DecodeStepRequest reads one POST /step body strictly: unknown or
// misspelled fields (say "request" for "requests") are a decoding error,
// so a malformed payload is refused with 400 instead of half-applying as
// an empty batch.
func DecodeStepRequest(r io.Reader) (StepRequest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return StepRequest{}, err
	}
	var req StepRequest
	if err := UnmarshalStrict(data, &req); err != nil {
		return StepRequest{}, err
	}
	return req, nil
}

// Cost mirrors core.Cost with the redundant total included, so clients need
// no arithmetic to read it.
type Cost struct {
	Move  float64 `json:"move"`
	Serve float64 `json:"serve"`
	Total float64 `json:"total"`
}

// FromCost converts an engine cost to its wire form.
func FromCost(c core.Cost) Cost {
	return Cost{Move: c.Move, Serve: c.Serve, Total: c.Total()}
}

// StepResponse is the body of a successful POST /step. When batches from
// several calls were coalesced into one engine step, each caller receives
// the same T, Batched, Cost, and Positions; Accepted is per-call.
type StepResponse struct {
	// T is the index of the engine step that served this batch.
	T int `json:"t"`
	// Accepted is the number of requests from this call.
	Accepted int `json:"accepted"`
	// Batched is the total number of requests coalesced into step T,
	// across all merged calls.
	Batched int `json:"batched"`
	// Cost is the cost of step T (shared by all merged calls; sum costs
	// per unique T to reconcile with GET /metrics).
	Cost Cost `json:"cost"`
	// Positions holds every server position after the step. In sharded
	// mode they are concatenated in shard order; fleet sizes may differ
	// per shard once rebalancing migrations have run, so use the servers
	// counts in GET /state's shards payload — not index arithmetic — to
	// attribute a slot to a shard.
	Positions []Point `json:"positions"`
	// Shards tags the step with each shard's share when the server runs
	// in router mode: how many of the step's requests each region
	// received and what its session charged. Absent on unsharded servers.
	Shards []ShardStep `json:"shards,omitempty"`
	// Clamped counts the step's cap-clamped server moves (only present
	// when nonzero). A forwarding tier needs it to keep exact fleet-wide
	// clamp counters without re-deriving engine behavior.
	Clamped int `json:"clamped,omitempty"`
}

// ShardStep is one shard's share of a single routed step.
type ShardStep struct {
	Shard  int  `json:"shard"`
	Routed int  `json:"routed"`
	Cost   Cost `json:"cost"`
}

// MetricsResponse is the body of GET /metrics: the engine.Metrics snapshot
// plus the front-end's own counters (and, in sharded mode, the per-shard
// aggregation the fleet totals are summed from).
type MetricsResponse struct {
	Steps       int     `json:"steps"`
	Requests    int     `json:"requests"`
	Cost        Cost    `json:"cost"`
	AvgStepCost float64 `json:"avg_step_cost"`
	// Rejected counts POST /step calls turned away with 429 since start.
	Rejected int64 `json:"rejected"`
	// QueueDepth is the number of batches waiting to be coalesced.
	QueueDepth int `json:"queue_depth"`
	// Shards breaks the totals down per region in router mode.
	Shards []ShardMetrics `json:"shards,omitempty"`
}

// ShardMetrics is one shard's slice of the aggregated metrics.
type ShardMetrics struct {
	Shard    int  `json:"shard"`
	Requests int  `json:"requests"`
	Cost     Cost `json:"cost"`
}

// StateResponse is the body of GET /state: the session's current positions
// and the engine.MoveStats snapshot.
type StateResponse struct {
	Algorithm string  `json:"algorithm"`
	T         int     `json:"t"`
	Positions []Point `json:"positions"`
	// MaxMove, TotalMove, and CapHits come from the MoveStats observer.
	MaxMove   float64 `json:"max_move"`
	TotalMove float64 `json:"total_move"`
	CapHits   int     `json:"cap_hits"`
	// Clamped counts cap-enforced server-moves over the whole run
	// (including any steps before a checkpoint/restore).
	Clamped int `json:"clamped"`
	// Cost is the run's accumulated cost so far.
	Cost Cost `json:"cost"`
	// Partition holds the shard layout's boundaries on axis 0 in router
	// mode (len(Partition)+1 shards). Absent on unsharded servers.
	Partition []float64 `json:"partition,omitempty"`
	// Shards holds each region's live counters in router mode.
	Shards []ShardState `json:"shards,omitempty"`
	// Workers holds the live shard→worker assignment in cluster mode
	// (Workers[i] is the address serving shard i; failovers change it).
	// Absent outside coordinator mode.
	Workers []string `json:"workers,omitempty"`
}

// ShardState is one shard's live counters inside GET /state.
type ShardState struct {
	Shard int `json:"shard"`
	// Servers is the shard's current fleet size; rebalancing migrations
	// change it, so the live layout is part of the state report.
	Servers  int `json:"servers"`
	Requests int `json:"requests"`
	Clamped  int `json:"clamped"`
	// Positions holds the shard's own servers.
	Positions []Point `json:"positions"`
	Cost      Cost    `json:"cost"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec accompanies 429: how long to back off before retrying
	// (also sent as the Retry-After header, whose resolution is whole
	// seconds — a coarse ceiling for millisecond coalescing windows).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// RetryAfterMs accompanies 429 with the precise backoff hint: one
	// coalescing window in milliseconds. Clients that can sleep
	// sub-second should prefer it over the header.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// ExecutedT accompanies 507 (checkpoint write failure): the engine
	// step that DID execute despite the error. The batch was served and
	// is in /metrics — resending it would double-feed the session; only
	// its durability is in doubt.
	ExecutedT *int `json:"executed_t,omitempty"`
}

// ToPoints validates and converts wire points into geometry points for a
// dim-dimensional session. It rejects dimension mismatches and non-finite
// coordinates so a malformed batch can be refused before it reaches the
// engine (and before it can poison batches it would be coalesced with).
func ToPoints(pts []Point, dim int) ([]geom.Point, error) {
	if err := ValidatePoints(pts, dim); err != nil {
		return nil, err
	}
	out := make([]geom.Point, len(pts))
	for i, c := range pts {
		out[i] = geom.Point(c).Clone()
	}
	return out, nil
}

// ValidatePoints is ToPoints' validation without the clone: it rejects
// dimension mismatches and non-finite coordinates. Transports that reuse
// decoded request buffers (the binary stream path) validate in place and
// hand the same storage to the engine.
func ValidatePoints(pts []Point, dim int) error {
	for i, c := range pts {
		p := geom.Point(c)
		if p.Dim() != dim {
			return fmt.Errorf("wire: request %d has dim %d, want %d", i, p.Dim(), dim)
		}
		if !p.IsFinite() {
			return fmt.Errorf("wire: request %d is not finite", i)
		}
	}
	return nil
}

// FromPoints converts geometry points to their wire form (sharing the
// coordinate storage; callers own any copying).
func FromPoints(pts []geom.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point(p)
	}
	return out
}
