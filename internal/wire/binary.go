package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary frame encoding of the streaming transport.
//
// The stream handshake (hello/welcome) is always NDJSON; when the hello
// asks for Wire == WireBinary and the welcome confirms it, every frame
// after the welcome — in both directions — uses this encoding instead of
// one JSON object per line:
//
//	frame   := tag uvarint(len(payload)) payload
//	tag     := one byte, BinHello..BinPong
//	payload := the frame's fields in a fixed order (see the per-frame
//	           Append*/Decode* pairs below)
//
// Inside a payload:
//
//	uvarint  := unsigned LEB128 (encoding/binary.Uvarint)
//	varint   := zigzag LEB128 (encoding/binary.Varint); used for frame ids
//	float    := 8 bytes, little-endian IEEE-754 bits — exact float64
//	            round-trip, matching the engine's checkpoint guarantees
//	string   := uvarint(len) bytes
//	bool     := one byte, 0 or 1 (decoders reject other values)
//	cost     := move float, serve float, total float
//	points   := uvarint(count), then per point uvarint(dim) and dim floats
//
// Decoders are strict: counts are bounds-checked against the remaining
// payload before any allocation, booleans must be 0/1, and trailing bytes
// after a payload are an error — the binary decoders refuse garbage the
// same way UnmarshalStrict refuses unknown JSON fields. Decode* functions
// reuse the destination struct's slices (requests, positions, shards)
// so a steady-state step/ack loop decodes without allocating.

// Wire encodings negotiable in HelloFrame.Wire / WelcomeFrame.Wire.
const (
	// WireNDJSON is one JSON frame per line — the default, and the only
	// encoding peers that predate negotiation speak.
	WireNDJSON = "ndjson"
	// WireBinary is the length-prefixed binary encoding of this file.
	WireBinary = "binary"
)

// Binary frame tags, one per frame type of the NDJSON grammar.
const (
	BinHello    byte = 0x01
	BinWelcome  byte = 0x02
	BinStep     byte = 0x03
	BinAck      byte = 0x04
	BinThrottle byte = 0x05
	BinError    byte = 0x06
	BinBye      byte = 0x07
	BinPing     byte = 0x08
	BinPong     byte = 0x09
)

// DefaultMaxFrame is the payload bound the stream endpoints pass to
// ReadBinaryFrame, matching the NDJSON path's maximum line length.
const DefaultMaxFrame = 8 << 20

// binTagName names a tag for error messages.
func binTagName(tag byte) string {
	switch tag {
	case BinHello:
		return FrameHello
	case BinWelcome:
		return FrameWelcome
	case BinStep:
		return FrameStep
	case BinAck:
		return FrameAck
	case BinThrottle:
		return FrameThrottle
	case BinError:
		return FrameError
	case BinBye:
		return FrameBye
	case BinPing:
		return FramePing
	case BinPong:
		return FramePong
	}
	return fmt.Sprintf("0x%02x", tag)
}

// WriteBinaryFrame writes one tag|length|payload frame. The caller owns
// flushing. The length is emitted through WriteByte rather than a local
// buffer: a stack array sliced into Write escapes through bufio's
// underlying io.Writer interface, and this function must stay
// allocation-free on the steady path.
func WriteBinaryFrame(w *bufio.Writer, tag byte, payload []byte) error {
	if err := w.WriteByte(tag); err != nil {
		return err
	}
	n := uint64(len(payload))
	for n >= 0x80 {
		if err := w.WriteByte(byte(n) | 0x80); err != nil {
			return err
		}
		n >>= 7
	}
	if err := w.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadBinaryFrame reads one frame, growing *buf as needed and reusing it
// across calls; the returned payload aliases *buf and is valid until the
// next call. Payloads larger than max are refused without allocating.
// io.EOF is returned untouched when the stream ends cleanly between
// frames.
func ReadBinaryFrame(br *bufio.Reader, buf *[]byte, max int) (byte, []byte, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: bad binary frame length: %w", err)
	}
	if n > uint64(max) {
		return 0, nil, fmt.Errorf("wire: binary frame of %d bytes exceeds limit %d", n, max)
	}
	if uint64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: short binary frame: %w", err)
	}
	return tag, payload, nil
}

// --- payload building blocks (encode) ---

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendCost(dst []byte, c Cost) []byte {
	dst = appendFloat(dst, c.Move)
	dst = appendFloat(dst, c.Serve)
	return appendFloat(dst, c.Total)
}

// appendPoints encodes a point list; it is generic so both wire.Point
// lists (client side) and geom.Point lists (server side) encode without
// converting.
//
//moblint:hotpath
func appendPoints[P ~[]float64](dst []byte, pts []P) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		for _, c := range p {
			dst = appendFloat(dst, c)
		}
	}
	return dst
}

// --- payload building blocks (decode) ---

// binReader is a strict cursor over one frame payload.
type binReader struct {
	b []byte
}

func (r *binReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint in binary payload")
	}
	r.b = r.b[n:]
	return x, nil
}

func (r *binReader) varint() (int64, error) {
	x, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint in binary payload")
	}
	r.b = r.b[n:]
	return x, nil
}

// length-bounded non-negative int (counts, step indexes, millisecond
// backoffs).
func (r *binReader) count() (int, error) {
	x, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if x > math.MaxInt64/2 {
		return 0, fmt.Errorf("wire: binary count %d out of range", x)
	}
	return int(x), nil
}

func (r *binReader) float() (float64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("wire: truncated float in binary payload")
	}
	bits := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return math.Float64frombits(bits), nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", fmt.Errorf("wire: binary string of %d bytes exceeds payload", n)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *binReader) bool() (bool, error) {
	if len(r.b) < 1 {
		return false, fmt.Errorf("wire: truncated bool in binary payload")
	}
	v := r.b[0]
	r.b = r.b[1:]
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("wire: bad bool byte 0x%02x in binary payload", v)
}

func (r *binReader) cost() (Cost, error) {
	var c Cost
	var err error
	if c.Move, err = r.float(); err != nil {
		return c, err
	}
	if c.Serve, err = r.float(); err != nil {
		return c, err
	}
	c.Total, err = r.float()
	return c, err
}

// points decodes a point list into reuse, growing it as needed and reusing
// each point's coordinate storage; the count and every dimension are
// bounds-checked against the remaining payload before any allocation.
func (r *binReader) points(reuse []Point) ([]Point, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every encoded point takes at least one byte (its dim uvarint), so a
	// count beyond the remaining payload is garbage, not a big allocation.
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("wire: binary point count %d exceeds payload", n)
	}
	if uint64(cap(reuse)) < n {
		grown := make([]Point, n)
		copy(grown, reuse[:cap(reuse)])
		reuse = grown
	}
	reuse = reuse[:n]
	for i := range reuse {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if d > uint64(len(r.b))/8 {
			return nil, fmt.Errorf("wire: binary point dim %d exceeds payload", d)
		}
		p := reuse[i]
		if uint64(cap(p)) < d {
			p = make(Point, d)
		}
		p = p[:d]
		for j := range p {
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*j:]))
		}
		r.b = r.b[8*d:]
		reuse[i] = p
	}
	return reuse, nil
}

// done rejects trailing bytes, the binary analogue of UnmarshalStrict's
// trailing-data check.
func (r *binReader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after binary payload", len(r.b))
	}
	return nil
}

// --- per-frame payloads ---

// AppendHello appends the hello payload: v, dim, wire, window.
func AppendHello(dst []byte, f *HelloFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.V))
	dst = binary.AppendUvarint(dst, uint64(f.Dim))
	dst = appendString(dst, f.Wire)
	return binary.AppendUvarint(dst, uint64(f.Window))
}

// DecodeHello decodes a hello payload.
func DecodeHello(payload []byte, f *HelloFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameHello
	if f.Dim, err = r.count(); err != nil {
		return err
	}
	if f.Wire, err = r.str(); err != nil {
		return err
	}
	if f.Window, err = r.count(); err != nil {
		return err
	}
	return r.done()
}

// appendLastStep appends one recovery payload: t, batched, cost, clamped,
// positions.
func appendLastStep(dst []byte, ls *LastStep) []byte {
	dst = binary.AppendUvarint(dst, uint64(ls.T))
	dst = binary.AppendUvarint(dst, uint64(ls.Batched))
	dst = appendCost(dst, ls.Cost)
	dst = binary.AppendUvarint(dst, uint64(ls.Clamped))
	return appendPoints(dst, ls.Positions)
}

// AppendWelcome appends the welcome payload: v, algorithm, t, dim, wire,
// the optional last-step recovery payload, the granted window, and the
// suffix-replay ring.
func AppendWelcome(dst []byte, f *WelcomeFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.V))
	dst = appendString(dst, f.Algorithm)
	dst = binary.AppendUvarint(dst, uint64(f.T))
	dst = binary.AppendUvarint(dst, uint64(f.Dim))
	dst = appendString(dst, f.Wire)
	dst = appendBool(dst, f.Last != nil)
	if f.Last != nil {
		dst = appendLastStep(dst, f.Last)
	}
	dst = binary.AppendUvarint(dst, uint64(f.Window))
	dst = binary.AppendUvarint(dst, uint64(len(f.Ring)))
	for i := range f.Ring {
		dst = appendLastStep(dst, &f.Ring[i])
	}
	return dst
}

// DecodeWelcome decodes a welcome payload (allocates for the strings and
// the optional last step; the handshake is not a hot path).
func DecodeWelcome(payload []byte, f *WelcomeFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameWelcome
	if f.Algorithm, err = r.str(); err != nil {
		return err
	}
	if f.T, err = r.count(); err != nil {
		return err
	}
	if f.Dim, err = r.count(); err != nil {
		return err
	}
	if f.Wire, err = r.str(); err != nil {
		return err
	}
	hasLast, err := r.bool()
	if err != nil {
		return err
	}
	f.Last = nil
	if hasLast {
		last := &LastStep{}
		if err := r.lastStep(last); err != nil {
			return err
		}
		f.Last = last
	}
	if f.Window, err = r.count(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each encoded ring entry takes at least 28 bytes (two uvarints, a
	// cost, a clamp count, and a point count).
	if n > uint64(len(r.b))/28 {
		return fmt.Errorf("wire: binary ring count %d exceeds payload", n)
	}
	f.Ring = nil
	if n > 0 {
		f.Ring = make([]LastStep, n)
		for i := range f.Ring {
			if err := r.lastStep(&f.Ring[i]); err != nil {
				return err
			}
		}
	}
	return r.done()
}

// lastStep decodes one recovery payload in appendLastStep's order.
func (r *binReader) lastStep(ls *LastStep) error {
	var err error
	if ls.T, err = r.count(); err != nil {
		return err
	}
	if ls.Batched, err = r.count(); err != nil {
		return err
	}
	if ls.Cost, err = r.cost(); err != nil {
		return err
	}
	if ls.Clamped, err = r.count(); err != nil {
		return err
	}
	ls.Positions, err = r.points(nil)
	return err
}

// AppendStep appends the step payload: v, id, requests.
func AppendStep(dst []byte, f *StepFrame) []byte {
	return AppendStepFrom(dst, f.V, f.ID, f.Requests)
}

// AppendStepFrom appends a step payload from raw parts, generic over the
// point representation so callers holding geometry points encode without
// converting.
//
//moblint:hotpath
func AppendStepFrom[P ~[]float64](dst []byte, v int, id int64, requests []P) []byte {
	dst = binary.AppendUvarint(dst, uint64(v))
	dst = binary.AppendVarint(dst, id)
	return appendPoints(dst, requests)
}

// DecodeStep decodes a step payload, reusing f.Requests and its per-point
// storage.
func DecodeStep(payload []byte, f *StepFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameStep
	if f.ID, err = r.varint(); err != nil {
		return err
	}
	if f.Requests, err = r.points(f.Requests); err != nil {
		return err
	}
	return r.done()
}

// AppendAck appends the ack payload: v, id, t, accepted, batched, cost,
// clamped, positions, shards.
func AppendAck(dst []byte, f *AckFrame) []byte {
	return AppendAckFrom(dst, f.V, f.ID, f.T, f.Accepted, f.Batched, f.Cost, f.Clamped, f.Positions, f.Shards)
}

// AppendAckFrom appends an ack payload from raw parts, generic over the
// point representation; the server's writer encodes straight from the
// protocol layer's geometry positions with no intermediate wire structs.
//
//moblint:hotpath
func AppendAckFrom[P ~[]float64](dst []byte, v int, id int64, t, accepted, batched int, cost Cost, clamped int, positions []P, shards []ShardStep) []byte {
	dst = binary.AppendUvarint(dst, uint64(v))
	dst = binary.AppendVarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(t))
	dst = binary.AppendUvarint(dst, uint64(accepted))
	dst = binary.AppendUvarint(dst, uint64(batched))
	dst = appendCost(dst, cost)
	dst = binary.AppendUvarint(dst, uint64(clamped))
	dst = appendPoints(dst, positions)
	dst = binary.AppendUvarint(dst, uint64(len(shards)))
	for _, sh := range shards {
		dst = binary.AppendUvarint(dst, uint64(sh.Shard))
		dst = binary.AppendUvarint(dst, uint64(sh.Routed))
		dst = appendCost(dst, sh.Cost)
	}
	return dst
}

// BinaryAckID peeks the frame id of an encoded ack payload without
// decoding the rest, so a client can pick the waiting frame's own reusable
// AckFrame as the decode target before calling DecodeAck.
//
//moblint:hotpath
func BinaryAckID(payload []byte) (int64, error) {
	r := binReader{payload}
	if _, err := r.uvarint(); err != nil { // v
		return 0, err
	}
	return r.varint()
}

// DecodeAck decodes an ack payload, reusing f.Positions (and its per-point
// storage) and f.Shards so a pipelining client's steady-state loop decodes
// acks without allocating.
func DecodeAck(payload []byte, f *AckFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameAck
	if f.ID, err = r.varint(); err != nil {
		return err
	}
	if f.T, err = r.count(); err != nil {
		return err
	}
	if f.Accepted, err = r.count(); err != nil {
		return err
	}
	if f.Batched, err = r.count(); err != nil {
		return err
	}
	if f.Cost, err = r.cost(); err != nil {
		return err
	}
	if f.Clamped, err = r.count(); err != nil {
		return err
	}
	if f.Positions, err = r.points(f.Positions); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each encoded shard takes at least 26 bytes (two uvarints + a cost).
	if n > uint64(len(r.b))/26 {
		return fmt.Errorf("wire: binary shard count %d exceeds payload", n)
	}
	shards := f.Shards
	if uint64(cap(shards)) < n {
		shards = make([]ShardStep, n)
	}
	shards = shards[:n]
	for i := range shards {
		if shards[i].Shard, err = r.count(); err != nil {
			return err
		}
		if shards[i].Routed, err = r.count(); err != nil {
			return err
		}
		if shards[i].Cost, err = r.cost(); err != nil {
			return err
		}
	}
	if n == 0 {
		shards = nil
	}
	f.Shards = shards
	return r.done()
}

// AppendThrottle appends the throttle payload: v, id, retry_after_ms.
func AppendThrottle(dst []byte, f *ThrottleFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.V))
	dst = binary.AppendVarint(dst, f.ID)
	return binary.AppendUvarint(dst, uint64(f.RetryAfterMS))
}

// DecodeThrottle decodes a throttle payload.
func DecodeThrottle(payload []byte, f *ThrottleFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameThrottle
	if f.ID, err = r.varint(); err != nil {
		return err
	}
	if f.RetryAfterMS, err = r.count(); err != nil {
		return err
	}
	return r.done()
}

// AppendErrorFrame appends the error payload: v, the optional answered id,
// and the typed error (code, detail, retry_after_ms, optional executed_t).
func AppendErrorFrame(dst []byte, f *ErrorFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.V))
	dst = appendBool(dst, f.ID != nil)
	if f.ID != nil {
		dst = binary.AppendVarint(dst, *f.ID)
	}
	dst = appendString(dst, f.Err.Code)
	dst = appendString(dst, f.Err.Detail)
	dst = binary.AppendUvarint(dst, uint64(f.Err.RetryAfterMS))
	dst = appendBool(dst, f.Err.ExecutedT != nil)
	if f.Err.ExecutedT != nil {
		dst = binary.AppendUvarint(dst, uint64(*f.Err.ExecutedT))
	}
	return dst
}

// DecodeErrorFrame decodes an error payload.
func DecodeErrorFrame(payload []byte, f *ErrorFrame) error {
	r := binReader{payload}
	var err error
	if f.V, err = r.count(); err != nil {
		return err
	}
	f.Type = FrameError
	hasID, err := r.bool()
	if err != nil {
		return err
	}
	f.ID = nil
	if hasID {
		id, err := r.varint()
		if err != nil {
			return err
		}
		f.ID = &id
	}
	f.Err = Error{}
	if f.Err.Code, err = r.str(); err != nil {
		return err
	}
	if f.Err.Detail, err = r.str(); err != nil {
		return err
	}
	if f.Err.RetryAfterMS, err = r.count(); err != nil {
		return err
	}
	hasT, err := r.bool()
	if err != nil {
		return err
	}
	if hasT {
		t, err := r.count()
		if err != nil {
			return err
		}
		f.Err.ExecutedT = &t
	}
	return r.done()
}

// AppendControl appends the payload shared by bye/ping/pong: just v.
//
//moblint:hotpath
func AppendControl(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64(v))
}

// DecodeControl decodes a bye/ping/pong payload, returning the version.
func DecodeControl(payload []byte) (int, error) {
	r := binReader{payload}
	v, err := r.count()
	if err != nil {
		return 0, err
	}
	return v, r.done()
}
