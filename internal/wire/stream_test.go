package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(V1); err != nil {
		t.Fatalf("CheckVersion(V1) = %v", err)
	}
	for _, v := range []int{0, 2, 99, -1} {
		if err := CheckVersion(v); err == nil {
			t.Fatalf("CheckVersion(%d) accepted an unknown major", v)
		}
	}
}

func TestPeekFrameDispatch(t *testing.T) {
	h, err := PeekFrame([]byte(`{"v":1,"type":"step","id":4,"requests":[[1,2]]}`))
	if err != nil || h.V != V1 || h.Type != FrameStep {
		t.Fatalf("peek = %+v, %v", h, err)
	}
	if _, err := PeekFrame([]byte(`{"v":1}`)); err == nil {
		t.Fatal("frame without type must not peek")
	}
	if _, err := PeekFrame([]byte(`{`)); err == nil {
		t.Fatal("bad JSON must not peek")
	}
}

// TestStrictFrameDecoding: the per-type frame decode rejects unknown
// fields, so a typo'd field name fails loudly instead of silently
// dropping the payload.
func TestStrictFrameDecoding(t *testing.T) {
	var step StepFrame
	good := `{"v":1,"type":"step","id":7,"requests":[[3,4]]}`
	if err := UnmarshalStrict([]byte(good), &step); err != nil {
		t.Fatal(err)
	}
	if step.ID != 7 || len(step.Requests) != 1 || step.Requests[0][1] != 4 {
		t.Fatalf("step = %+v", step)
	}
	bad := `{"v":1,"type":"step","id":7,"reqeusts":[[3,4]]}`
	if err := UnmarshalStrict([]byte(bad), &step); err == nil {
		t.Fatal("misspelled field must not decode")
	}
	trailing := good + `{"v":1}`
	if err := UnmarshalStrict([]byte(trailing), &step); err == nil {
		t.Fatal("trailing garbage must not decode")
	}
}

// TestDecodeStepRequestStrict pins the regression the HTTP handler relies
// on: unknown fields in a POST /step body are a decoding error (the
// handler turns it into 400), not a silently empty batch.
func TestDecodeStepRequestStrict(t *testing.T) {
	req, err := DecodeStepRequest(strings.NewReader(`{"requests":[[1,2],[3,4]]}`))
	if err != nil || len(req.Requests) != 2 {
		t.Fatalf("decode = %+v, %v", req, err)
	}
	for _, bad := range []string{
		`{"request":[[1,2]]}`,           // misspelled key: would half-apply as empty batch
		`{"requests":[[1,2]],"wait":1}`, // unknown extra field
		`{"requests":[[1,2]]} trailing`, // trailing garbage
	} {
		if _, err := DecodeStepRequest(strings.NewReader(bad)); err == nil {
			t.Fatalf("DecodeStepRequest(%s) accepted a malformed body", bad)
		}
	}
}

// TestAckFrameInlinesStepResponse: the ack frame carries the exact HTTP
// step-response schema inline, so both transports report one shape.
func TestAckFrameInlinesStepResponse(t *testing.T) {
	b, err := json.Marshal(AckFrame{
		V: V1, Type: FrameAck, ID: 3,
		StepResponse: StepResponse{T: 9, Accepted: 2, Batched: 5, Positions: []Point{{1, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"v":1`, `"type":"ack"`, `"id":3`, `"t":9`, `"accepted":2`, `"batched":5`, `"positions":[[1,2]]`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("ack frame %s missing %s", b, key)
		}
	}
	if strings.Contains(string(b), "StepResponse") {
		t.Fatalf("embedded response must be inlined: %s", b)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	tIdx := 41
	e := Error{Code: CodeNotDurable, Detail: "checkpoint failed", ExecutedT: &tIdx}
	b, err := json.Marshal(ErrorFrame{V: V1, Type: FrameError, Err: e})
	if err != nil {
		t.Fatal(err)
	}
	var back ErrorFrame
	if err := UnmarshalStrict(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err.Code != CodeNotDurable || back.Err.ExecutedT == nil || *back.Err.ExecutedT != 41 {
		t.Fatalf("round-trip = %+v", back.Err)
	}
	if back.ID != nil {
		t.Fatalf("connection-level error must carry no id: %+v", back)
	}
	if got := e.Error(); !strings.Contains(got, CodeNotDurable) || !strings.Contains(got, "checkpoint failed") {
		t.Fatalf("Error() = %q", got)
	}
}

func TestThrottleFrameRoundTrip(t *testing.T) {
	b, err := json.Marshal(ThrottleFrame{V: V1, Type: FrameThrottle, ID: 12, RetryAfterMS: 7})
	if err != nil {
		t.Fatal(err)
	}
	var back ThrottleFrame
	if err := UnmarshalStrict(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 12 || back.RetryAfterMS != 7 || back.Type != FrameThrottle || back.V != V1 {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestParseCheckpointVersions covers all three generations of the
// checkpoint format plus major-version rejection in the new stamp.
func TestParseCheckpointVersions(t *testing.T) {
	session := json.RawMessage(`{"version":1,"steps":7}`)

	// Current envelope: "v" stamped.
	cur, _ := json.Marshal(Checkpoint{V: V1, Version: CheckpointVersion, Session: session})
	ck, err := ParseCheckpoint(cur)
	if err != nil || ck.V != V1 || string(ck.Session) != string(session) {
		t.Fatalf("current envelope = %+v, %v", ck, err)
	}

	// Legacy wrapper: only "version", exactly as PR-3 wrote it.
	legacy := []byte(`{"version":1,"session":{"version":1,"steps":7},"metrics":{"steps":7,"requests":14,"move_cost":1,"serve_cost":2,"avg_step_cost":0.5}}`)
	ck, err = ParseCheckpoint(legacy)
	if err != nil {
		t.Fatalf("legacy wrapper rejected: %v", err)
	}
	if ck.V != V1 {
		t.Fatalf("legacy wrapper not normalized to v%d: %+v", V1, ck)
	}
	if ck.Metrics == nil || ck.Metrics.Requests != 14 {
		t.Fatalf("legacy observer state lost: %+v", ck.Metrics)
	}

	// Bare snapshot: no "session" key.
	ck, err = ParseCheckpoint(session)
	if err != nil || ck.V != V1 || string(ck.Session) != string(session) || ck.Metrics != nil {
		t.Fatalf("bare snapshot = %+v, %v", ck, err)
	}

	// Unknown major in the new stamp is refused.
	future, _ := json.Marshal(Checkpoint{V: 2, Session: session})
	if _, err := ParseCheckpoint(future); err == nil {
		t.Fatal("v2 checkpoint must be refused, not guessed at")
	}

	// ...even when the future format has no "session" key: it must be
	// rejected for its version, not misread as a bare engine snapshot.
	if _, err := ParseCheckpoint([]byte(`{"v":2,"snapshot":{"steps":7}}`)); err == nil {
		t.Fatal("v2 document without a session key must not pass as a bare snapshot")
	}
}
