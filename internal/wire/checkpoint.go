package wire

import (
	"encoding/json"
	"fmt"
)

// CheckpointVersion is the format version of the server checkpoint
// document.
const CheckpointVersion = 1

// Checkpoint is the document the HTTP front-end writes to its checkpoint
// file: the resumable session snapshot (an engine.Session snapshot, or a
// shard.Router combined snapshot in router mode) plus the state of the
// server's own observers, so /metrics and /state survive a restart
// instead of starting from zero. The session document is embedded
// verbatim — its byte-exactness guarantees are untouched by the wrapper.
type Checkpoint struct {
	Version int `json:"version"`
	// Session is the engine or router snapshot to resume from.
	Session json.RawMessage `json:"session"`
	// Metrics carries the engine.Metrics observer state at checkpoint
	// time; nil in checkpoints written before observers were persisted.
	Metrics *MetricsState `json:"metrics,omitempty"`
	// Moves carries the engine.MoveStats observer state.
	Moves *MoveState `json:"moves,omitempty"`
}

// MetricsState is the serialized engine.Metrics observer: running totals
// and the decayed per-step cost average. Move and serve costs are kept
// separately (not as the redundant-total Cost) so the restored observer
// continues from the identical float64 bits.
type MetricsState struct {
	Steps       int     `json:"steps"`
	Requests    int     `json:"requests"`
	MoveCost    float64 `json:"move_cost"`
	ServeCost   float64 `json:"serve_cost"`
	AvgStepCost float64 `json:"avg_step_cost"`
}

// MoveState is the serialized engine.MoveStats observer.
type MoveState struct {
	Steps     int     `json:"steps"`
	MaxMove   float64 `json:"max_move"`
	TotalMove float64 `json:"total_move"`
	CapHits   int     `json:"cap_hits"`
}

// ParseCheckpoint decodes a checkpoint file body. It accepts both the
// wrapper document and a bare session snapshot (the pre-observer-state
// file format), normalizing the latter into a Checkpoint whose observer
// fields are nil — a resume from such a file starts its observers fresh.
func ParseCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("wire: bad checkpoint: %w", err)
	}
	if len(ck.Session) == 0 {
		// No "session" key: a bare engine/router snapshot.
		return Checkpoint{Version: CheckpointVersion, Session: data}, nil
	}
	if ck.Version != CheckpointVersion {
		return Checkpoint{}, fmt.Errorf("wire: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return ck, nil
}
