package wire

import (
	"encoding/json"
	"fmt"
)

// CheckpointVersion is the legacy format stamp of the server checkpoint
// document: files written before the envelope carried it in a "version"
// field. New files carry the wire version in "v" (like every other wire
// document) and keep "version" populated so older readers still accept
// them; ParseCheckpoint decodes both generations.
const CheckpointVersion = 1

// Checkpoint is the document the serving layer writes to its checkpoint
// file: the resumable session snapshot (an engine.Session snapshot, or a
// shard.Router combined snapshot in router mode) plus the state of the
// service's own observers, so metrics and state survive a restart
// instead of starting from zero. The session document is embedded
// verbatim — its byte-exactness guarantees are untouched by the wrapper.
type Checkpoint struct {
	// V is the wire-format version stamp (V1). Zero in files written by
	// the pre-envelope format, which stamped Version instead;
	// ParseCheckpoint normalizes such legacy files to V = V1.
	V int `json:"v,omitempty"`
	// Version is the legacy stamp, kept populated on write so checkpoint
	// files remain readable by pre-envelope binaries.
	Version int `json:"version,omitempty"`
	// Session is the engine or router snapshot to resume from.
	Session json.RawMessage `json:"session"`
	// Metrics carries the engine.Metrics observer state at checkpoint
	// time; nil in checkpoints written before observers were persisted.
	Metrics *MetricsState `json:"metrics,omitempty"`
	// Moves carries the engine.MoveStats observer state.
	Moves *MoveState `json:"moves,omitempty"`
	// LastStep carries the outcome of the final step executed before the
	// checkpoint was taken; nil in files written before the field existed
	// (or before any step ran). A resumed service re-arms its welcome
	// recovery payload (WelcomeFrame.Last) from it, so a coordinator
	// reconnecting after the process died between checkpoint and ack can
	// still recover the executed step's exact outcome.
	LastStep *LastStepState `json:"last_step,omitempty"`
	// Ring carries the outcomes of the most recent executed steps, oldest
	// first and ending with the step LastStep describes, when the service
	// runs with an ack ring deeper than one (pipelined ingestion). Unlike
	// LastStep, ring entries keep their own post-step positions: the
	// session snapshot only holds the newest fleet, and a suffix-replay
	// recovery needs each intermediate step's exact positions. Nil in
	// files written by lockstep services; ParseCheckpoint is lenient, so
	// older readers ignore the field.
	Ring []RingStep `json:"ring,omitempty"`
}

// RingStep is one persisted ack-ring entry: a LastStepState plus the
// post-step positions that intermediate entries cannot recover from the
// session snapshot.
type RingStep struct {
	LastStepState
	Positions []Point `json:"positions"`
}

// LastStepState is the serialized outcome of the last executed step. Move
// and serve costs are kept separately so the restored value continues from
// identical float64 bits; positions are not persisted — the session
// snapshot already carries them.
type LastStepState struct {
	T         int     `json:"t"`
	Batched   int     `json:"batched"`
	MoveCost  float64 `json:"move_cost"`
	ServeCost float64 `json:"serve_cost"`
	Clamped   int     `json:"clamped,omitempty"`
}

// MetricsState is the serialized engine.Metrics observer: running totals
// and the decayed per-step cost average. Move and serve costs are kept
// separately (not as the redundant-total Cost) so the restored observer
// continues from the identical float64 bits.
type MetricsState struct {
	Steps       int     `json:"steps"`
	Requests    int     `json:"requests"`
	MoveCost    float64 `json:"move_cost"`
	ServeCost   float64 `json:"serve_cost"`
	AvgStepCost float64 `json:"avg_step_cost"`
}

// MoveState is the serialized engine.MoveStats observer.
type MoveState struct {
	Steps     int     `json:"steps"`
	MaxMove   float64 `json:"max_move"`
	TotalMove float64 `json:"total_move"`
	CapHits   int     `json:"cap_hits"`
}

// ParseCheckpoint decodes a checkpoint file body. It accepts all three
// generations of the format, normalizing each into a v-stamped Checkpoint:
//
//   - the current envelope ({"v":1,"session":...});
//   - the legacy wrapper ({"version":1,"session":...}), whose observer
//     fields carry over unchanged;
//   - a bare session snapshot (no "session" key at all — the
//     pre-wrapper file format, and what GET /snapshot returns), whose
//     observer fields come back nil so a resume starts them fresh.
//
// Unknown versions are rejected in either stamp: refusing to guess beats
// resuming a session from a document we might misread.
func ParseCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	//moblint:rawdecode legacy-checkpoint compatibility: three envelope generations share this parse, version-gated below
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("wire: bad checkpoint: %w", err)
	}
	// A carried "v" stamp is validated before anything else — even before
	// the bare-snapshot fallback, so a future-major document whose layout
	// we cannot know (it may not have a "session" key at all) is refused
	// instead of misread as a bare engine snapshot.
	if ck.V != 0 {
		if err := CheckVersion(ck.V); err != nil {
			return Checkpoint{}, fmt.Errorf("wire: bad checkpoint: %w", err)
		}
	}
	if len(ck.Session) == 0 {
		// No "session" key: a bare engine/router snapshot.
		return Checkpoint{V: V1, Version: CheckpointVersion, Session: data}, nil
	}
	if ck.V == 0 {
		// Legacy wrapper: only the "version" stamp.
		if ck.Version != CheckpointVersion {
			return Checkpoint{}, fmt.Errorf("wire: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
		}
		ck.V = V1
	}
	return ck, nil
}
