// The scenario-lab result schema: the per-cell summary one experiment
// writes, the cross-cell report a sweep aggregates, and the compact
// lab_matrix entry merged into the BENCH_*.json trajectory. They live in
// wire (not internal/lab) because they are an on-disk interchange format
// like the checkpoint document: external tooling reads the files, and
// CI's bench summary embeds the bench entry verbatim.

package wire

// LabCellSummary is results/<stamp>/<cell>/summary.json: the outcome of
// one experiment cell. Every field is a deterministic function of the
// matrix spec and the seed — no wall-clock, no hostnames — which is what
// makes the determinism contract checkable by byte comparison: rerunning
// a cell with the same spec and seed must reproduce the file exactly.
type LabCellSummary struct {
	V int `json:"v"`
	// Cell is the cell's canonical name (the directory name).
	Cell string `json:"cell"`
	// Workload identifies the request source: a workload generator name,
	// "adversary:<name>", or "trace:<basename>".
	Workload string `json:"workload"`
	// Shards, K, Rebalance, and CapMode are the cell's coordinates on the
	// serving-policy axes.
	Shards    int    `json:"shards"`
	K         int    `json:"k"`
	Rebalance string `json:"rebalance"`
	CapMode   string `json:"cap_mode"`
	// Transport is "inproc" (a protocol.Service driven directly) or
	// "stream" (a spawned server fed over the streaming transport).
	Transport string `json:"transport"`
	// Wire is the negotiated stream encoding of a live cell ("binary" or
	// "ndjson"); empty for in-process cells.
	Wire string `json:"wire,omitempty"`
	// Window is the negotiated in-flight pipeline depth of a live cell
	// (1 = lockstep); 0 for in-process cells.
	Window int `json:"window,omitempty"`
	// Seed is the matrix seed the cell's random stream derives from.
	Seed uint64 `json:"seed"`
	// T and Requests are the executed step and request totals.
	T        int `json:"t"`
	Requests int `json:"requests"`
	// Algorithm is the backend's reported name (per-shard algorithm
	// tagged with the shard count in router mode).
	Algorithm string `json:"algorithm"`
	// Cost is the run's accumulated cost; CostPerStep is Cost.Total / T.
	Cost        Cost    `json:"cost"`
	CostPerStep float64 `json:"cost_per_step"`
	// Clamped, CapHits, MaxMove, and TotalMove are the cap-pressure and
	// movement counters of the run.
	Clamped   int     `json:"clamped"`
	CapHits   int     `json:"cap_hits"`
	MaxMove   float64 `json:"max_move"`
	TotalMove float64 `json:"total_move"`
	// Rebalances counts applied server migrations; FinalKs is the
	// per-shard fleet layout at the end of the run (absent unsharded).
	Rebalances int   `json:"rebalances"`
	FinalKs    []int `json:"final_ks,omitempty"`
	// Failovers counts shard-rehoming events (cluster-backed cells).
	Failovers int `json:"failovers"`
}

// LabReport is results/<stamp>/report.json: the aggregated cross-cell
// view of one sweep. Unlike the summaries it may carry wall-clock fields
// (ElapsedMS), so only the per-cell summary files are byte-reproducible.
type LabReport struct {
	V int `json:"v"`
	// Name and Seed come from the matrix spec.
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Cells counts the matrix; Ran and Skipped split it into cells this
	// sweep executed and cells resumed from an existing summary.
	Cells   int `json:"cells"`
	Ran     int `json:"ran"`
	Skipped int `json:"skipped"`
	// ElapsedMS is the sweep's wall-clock time.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Summaries holds every cell's summary, sorted by cell name.
	Summaries []LabCellSummary `json:"summaries"`
	// Bench is the compact entry bench.sh merges into BENCH_*.json.
	Bench LabBenchEntry `json:"bench"`
}

// LabBenchEntry is the "lab_matrix" entry of the BENCH_*.json trajectory:
// the sweep's headline answer to "which policy wins where".
type LabBenchEntry struct {
	// Matrix is the spec name; Cells the number of cells aggregated.
	Matrix string `json:"matrix"`
	Cells  int    `json:"cells"`
	// Workloads lists the distinct request sources, sorted.
	Workloads []string `json:"workloads"`
	// StaticCostPerStep and RebalanceCostPerStep average cost/step over
	// the (workload, shards, k, cap) combinations present under BOTH a
	// static and a rebalancing policy, so the ratio compares like with
	// like; CostSavedFrac is 1 − rebalance/static. All three are 0 when
	// the matrix has no such pair.
	StaticCostPerStep    float64 `json:"static_cost_per_step"`
	RebalanceCostPerStep float64 `json:"rebalance_cost_per_step"`
	CostSavedFrac        float64 `json:"cost_saved_frac"`
	// Best names the cheapest (cost/step) cell per workload, sorted by
	// workload — the per-scenario policy winner.
	Best []LabBestCell `json:"best"`
}

// LabBestCell is one workload's winning cell inside LabBenchEntry.
type LabBestCell struct {
	Workload    string  `json:"workload"`
	Cell        string  `json:"cell"`
	CostPerStep float64 `json:"cost_per_step"`
}
