package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseCheckpointWrapperAndLegacy(t *testing.T) {
	session := json.RawMessage(`{"version":1,"steps":7}`)
	wrapped, err := json.Marshal(Checkpoint{
		Version: CheckpointVersion,
		Session: session,
		Metrics: &MetricsState{Steps: 7, Requests: 21, MoveCost: 1.5, ServeCost: 2.5, AvgStepCost: 0.6},
		Moves:   &MoveState{Steps: 7, MaxMove: 1.2, TotalMove: 8, CapHits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ParseCheckpoint(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if string(ck.Session) != string(session) {
		t.Fatalf("session = %s, want %s", ck.Session, session)
	}
	if ck.Metrics == nil || ck.Metrics.Requests != 21 || ck.Moves == nil || ck.Moves.CapHits != 3 {
		t.Fatalf("observer state lost: %+v", ck)
	}

	// A bare engine snapshot (no "session" key) is the legacy format: it
	// becomes the session, with no observer state.
	legacy, err := ParseCheckpoint(session)
	if err != nil {
		t.Fatal(err)
	}
	if string(legacy.Session) != string(session) || legacy.Metrics != nil || legacy.Moves != nil {
		t.Fatalf("legacy normalization = %+v", legacy)
	}

	if _, err := ParseCheckpoint([]byte("not json")); err == nil {
		t.Fatal("garbage must not parse")
	}
	bad, _ := json.Marshal(Checkpoint{Version: 99, Session: session})
	if _, err := ParseCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version = %v, want version error", err)
	}
}

func TestShardPayloadsOmittedWhenUnsharded(t *testing.T) {
	b, err := json.Marshal(StepResponse{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "shards") {
		t.Fatalf("unsharded StepResponse must omit shards: %s", b)
	}
	b, err = json.Marshal(StateResponse{T: 3, Partition: []float64{-1, 1}, Shards: []ShardState{{Shard: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"partition":[-1,1]`) || !strings.Contains(string(b), `"shards"`) {
		t.Fatalf("sharded StateResponse missing shard payloads: %s", b)
	}
}
