package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// V1 is the current wire-format version. Every frame of the streaming
// transport (and every checkpoint document) carries it in a "v" field; the
// integer is the format's major version, so a consumer that sees a "v" it
// does not know must refuse the message rather than guess at its meaning.
const V1 = 1

// CheckVersion is the version-negotiation rule shared by every decoder:
// the major version must be one we speak. Additive minor evolution happens
// inside a major (new optional fields), so there is nothing to negotiate
// below the major.
func CheckVersion(v int) error {
	if v != V1 {
		return fmt.Errorf("wire: unsupported version %d (this endpoint speaks v%d)", v, V1)
	}
	return nil
}

// Frame types of the NDJSON streaming transport (POST /stream). Each frame
// is one JSON object on its own line; see the per-type structs for the
// grammar.
const (
	// FrameHello opens a stream (client -> server): version negotiation
	// plus an optional dimension check.
	FrameHello = "hello"
	// FrameWelcome accepts a stream (server -> client) and tells the
	// client where the session stands, so a reconnecting client can
	// resume from the last executed step.
	FrameWelcome = "welcome"
	// FrameStep submits one pipelined request batch (client -> server).
	FrameStep = "step"
	// FrameAck answers one step frame (server -> client), in submission
	// order, with the executed step's outcome.
	FrameAck = "ack"
	// FrameThrottle refuses one step frame under backpressure
	// (server -> client): the batch was NOT enqueued; resend the same id
	// after the carried backoff.
	FrameThrottle = "throttle"
	// FrameError reports a per-message or fatal error (server -> client).
	FrameError = "error"
	// FrameBye closes a stream gracefully (client -> server).
	FrameBye = "bye"
	// FramePing is a liveness probe (client -> server): the server answers
	// with a pong frame through the same ordered reply queue as the acks,
	// so any received frame proves the whole pipeline is alive, not just
	// the TCP connection.
	FramePing = "ping"
	// FramePong answers a ping (server -> client).
	FramePong = "pong"
)

// Error codes carried by Error.Code. They replace HTTP-status-only
// signaling on the streaming transport (and are stable API: clients switch
// on the code, not the detail text).
const (
	// CodeBadVersion: the hello (or a later frame) carried a version this
	// endpoint does not speak. Fatal: the connection closes.
	CodeBadVersion = "bad_version"
	// CodeBadFrame: the frame was not valid JSON, had no known type, or
	// carried unknown fields (decoding is strict).
	CodeBadFrame = "bad_frame"
	// CodeBadRequest: the frame was well-formed but its payload was
	// rejected (dimension mismatch, non-finite coordinates).
	CodeBadRequest = "bad_request"
	// CodeOverloaded: the bounded queue is full. On the streaming
	// transport this travels as a throttle frame, not an error frame.
	CodeOverloaded = "overloaded"
	// CodeNotDurable: the step EXECUTED but its checkpoint write failed;
	// ExecutedT carries the step index. Resending would double-feed.
	CodeNotDurable = "not_durable"
	// CodeShuttingDown: the server is draining and accepts no new steps.
	CodeShuttingDown = "shutting_down"
	// CodeInternal: the step failed inside the engine.
	CodeInternal = "internal"
	// CodeUnreachable: a forwarding tier (the cluster coordinator) could
	// not reach the backend that owns the request's shard, even after its
	// bounded reconnect-and-failover policy ran out. The step did NOT
	// execute.
	CodeUnreachable = "unreachable"
)

// Error is the typed per-message error of the v1 protocol: a stable code,
// a human-readable detail, and the structured hints that HTTP smuggled
// through status codes and headers (Retry-After, the 507 executed-step
// index).
type Error struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
	// RetryAfterMS accompanies overloaded/throttle: how long to back off
	// before resending, in milliseconds.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
	// ExecutedT accompanies not_durable: the step that DID execute. The
	// batch was served and is in the metrics — do not resend it.
	ExecutedT *int `json:"executed_t,omitempty"`
}

// Error implements the error interface so adapters can wrap it.
func (e *Error) Error() string {
	if e.Detail == "" {
		return e.Code
	}
	return e.Code + ": " + e.Detail
}

// FrameHead is the envelope every frame shares: the version stamp and the
// frame type. Decoders peek it leniently to dispatch, then re-decode the
// full line strictly into the per-type struct.
type FrameHead struct {
	V    int    `json:"v"`
	Type string `json:"type"`
}

// PeekFrame reads just the envelope of one NDJSON line.
func PeekFrame(line []byte) (FrameHead, error) {
	var h FrameHead
	//moblint:rawdecode deliberately lenient envelope peek; the dispatched line is re-decoded strictly per type
	if err := json.Unmarshal(line, &h); err != nil {
		return FrameHead{}, fmt.Errorf("wire: bad frame: %w", err)
	}
	if h.Type == "" {
		return FrameHead{}, fmt.Errorf("wire: frame has no type")
	}
	return h, nil
}

// HelloFrame opens a stream: `{"v":1,"type":"hello"}`. Dim, when set,
// asks the server to confirm the session dimension before any step is
// sent.
type HelloFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	Dim  int    `json:"dim,omitempty"`
	// Wire, when set, asks the server to switch the stream to the named
	// frame encoding (WireBinary or WireNDJSON) after the welcome. The
	// handshake itself is always NDJSON. Servers that predate the field
	// reject the hello strictly (bad_frame), which clients treat as "speak
	// NDJSON" by re-dialing without the field.
	Wire string `json:"wire,omitempty"`
	// Window, when > 1, asks the server to accept up to Window pipelined
	// step frames in flight at once with suffix-replay reconciliation
	// (see WelcomeFrame.Ring). Absent or <= 1 is lockstep — the only
	// behavior before the field existed. Servers that predate the field
	// reject the hello strictly (bad_frame), which clients treat exactly
	// like the wire downgrade: re-dial without the field and run lockstep.
	Window int `json:"window,omitempty"`
}

// WelcomeFrame accepts a stream:
// `{"v":1,"type":"welcome","algorithm":"MtC","t":12,"dim":2}`.
// T is the session's current step count — the next executed step gets
// index T — so a reconnecting client knows exactly which of its batches
// were executed before the connection died (every step up to T-1 was).
type WelcomeFrame struct {
	V         int    `json:"v"`
	Type      string `json:"type"`
	Algorithm string `json:"algorithm"`
	T         int    `json:"t"`
	Dim       int    `json:"dim"`
	// Last carries the outcome of the last executed step (step T-1), when
	// the session has executed any. A reconnecting pipeliner whose final
	// ack was lost mid-flight recovers the executed step's exact outcome
	// from here instead of resending the batch (which would double-feed).
	// Absent at T == 0 and on sessions resumed from checkpoints that
	// predate the field.
	Last *LastStep `json:"last,omitempty"`
	// Wire confirms the frame encoding of every frame after this welcome.
	// Empty means NDJSON (the only encoding before the field existed). A
	// server never confirms an encoding the hello did not ask for.
	Wire string `json:"wire,omitempty"`
	// Window is the granted in-flight pipeline depth: the server accepts
	// up to Window unacked step frames and retains a ring of the last
	// Window executed outcomes for suffix-replay recovery. Never more
	// than the hello asked for; absent or <= 1 means lockstep.
	Window int `json:"window,omitempty"`
	// Ring carries the outcomes of the most recent executed steps, oldest
	// first and ending with step T-1, each with its post-step positions —
	// the suffix-replay recovery payload. A reconnecting pipeliner with
	// several unacked frames recovers every frame below T from here
	// (matching entries by step index) and resends the rest. Last always
	// duplicates the newest entry, so pre-window consumers keep working.
	Ring []LastStep `json:"ring,omitempty"`
}

// LastStep is the recovery payload inside a welcome frame: the outcome of
// the session's most recent executed step, exactly as its (possibly lost)
// ack reported it. Costs and positions are exact float64 round-trips, so a
// consumer reconstructing the lost ack from this payload stays bit-equal
// with one that received the ack directly.
type LastStep struct {
	// T is the executed step's index (the welcome's T minus one).
	T int `json:"t"`
	// Batched is the number of requests the step served.
	Batched int `json:"batched"`
	// Cost is the step's own cost.
	Cost Cost `json:"cost"`
	// Clamped counts the step's cap-clamped server moves.
	Clamped int `json:"clamped,omitempty"`
	// Positions holds every server position after the step.
	Positions []Point `json:"positions"`
}

// PingFrame is a liveness probe: `{"v":1,"type":"ping"}`. The server
// answers with a pong through the ordered reply queue.
type PingFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
}

// PongFrame answers a ping: `{"v":1,"type":"pong"}`.
type PongFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
}

// StepFrame submits one batch:
// `{"v":1,"type":"step","id":7,"requests":[[3,4],[5,6]]}`.
// ID is chosen by the client (unique per connection; monotonically
// increasing by convention) and echoed on the ack/throttle/error that
// answers the frame, so a pipelining client can match replies without
// counting.
type StepFrame struct {
	V        int     `json:"v"`
	Type     string  `json:"type"`
	ID       int64   `json:"id"`
	Requests []Point `json:"requests"`
}

// AckFrame answers one step frame with the outcome of the engine step that
// served it; the embedded StepResponse fields are identical to the HTTP
// POST /step body, so both transports report one schema. Replies arrive in
// frame-submission order.
type AckFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	ID   int64  `json:"id"`
	StepResponse
}

// ThrottleFrame is typed backpressure: the identified step frame was
// refused (NOT enqueued, NOT executed) because the bounded queue is full.
// Resend the same id after RetryAfterMS. It replaces the HTTP path's
// 429/Retry-After churn.
type ThrottleFrame struct {
	V            int    `json:"v"`
	Type         string `json:"type"`
	ID           int64  `json:"id"`
	RetryAfterMS int    `json:"retry_after_ms"`
}

// ErrorFrame reports an error. With an ID it answers that step frame (in
// order, like an ack); without one it is connection-level and the server
// closes the stream after writing it.
type ErrorFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	ID   *int64 `json:"id,omitempty"`
	Err  Error  `json:"error"`
}

// ByeFrame ends a stream gracefully: the server finishes answering every
// submitted frame, then closes. `{"v":1,"type":"bye"}`.
type ByeFrame struct {
	V    int    `json:"v"`
	Type string `json:"type"`
}

// MetricsEvent is one server-sent event of GET /metrics/stream, pushed
// after every executed step: the step's own outcome plus the running
// totals of GET /metrics at that instant. Dropped counts the events this
// subscriber missed immediately before this one because it consumed too
// slowly (the server drops rather than buffer without bound or stall the
// step loop).
type MetricsEvent struct {
	V        int  `json:"v"`
	T        int  `json:"t"`
	Batched  int  `json:"batched"`
	StepCost Cost `json:"step_cost"`

	Steps       int     `json:"steps"`
	Requests    int     `json:"requests"`
	Cost        Cost    `json:"cost"`
	AvgStepCost float64 `json:"avg_step_cost"`
	QueueDepth  int     `json:"queue_depth"`
	Rejected    int64   `json:"rejected"`

	Dropped int `json:"dropped,omitempty"`
}

// RebalanceEvent is one server-sent event of GET /metrics/stream with
// event type "rebalance": a dynamic-rebalancing migration the identified
// step applied. It rides the same stream as the metrics events, so a
// dashboard following the feed sees layout changes in order with the load
// that triggered them.
type RebalanceEvent struct {
	V int `json:"v"`
	// T is the first global step served under the new layout.
	T int `json:"t"`
	// From and To are the donor and recipient shards.
	From int `json:"from"`
	To   int `json:"to"`
	// Server is the migrated server's position (it does not move during
	// the handover; it only changes which region's session commands it).
	Server Point `json:"server"`
	// Ks is the per-shard fleet layout after the migration.
	Ks []int `json:"ks"`
}

// FailoverEvent is one server-sent event of GET /metrics/stream with event
// type "failover": the cluster coordinator lost a shard worker and rehomed
// the shard onto another worker by restoring its last fsynced checkpoint.
// It rides the same stream as the metrics events, so a dashboard following
// the feed sees ownership changes in order with the traffic around them.
type FailoverEvent struct {
	V int `json:"v"`
	// T is the global step the coordinator was feeding when the worker
	// died (the first step served by the new owner).
	T int `json:"t"`
	// Shard is the rehomed shard.
	Shard int `json:"shard"`
	// From and To are the dead and the new owner's worker addresses.
	From string `json:"from"`
	To   string `json:"to"`
	// RestoredT is the step count the new owner reported after restoring
	// the shard's checkpoint. In lockstep it is T (the in-flight step had
	// not executed and was resent) or T+1 (it had executed and its
	// outcome was recovered from the welcome instead of resending); with
	// a pipeline window of W unacked steps it lands anywhere in
	// [T, T+W] — steps below RestoredT are recovered from the welcome's
	// ring, steps at or above it are resent in order.
	RestoredT int `json:"restored_t"`
	// Resent reports whether any in-flight step was resent (RestoredT
	// did not cover the whole unacked suffix).
	Resent bool `json:"resent"`
}

// UnmarshalStrict decodes one JSON document rejecting unknown fields, so a
// misspelled field in a frame or request body is an error instead of a
// silently ignored no-op. It also rejects trailing garbage after the
// document.
func UnmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	//moblint:rawdecode this is the strict decoder every other decode is required to use
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("wire: trailing data after JSON document")
	}
	return nil
}
