package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// ptr is a test shorthand for optional scalar fields.
func ptr[T any](v T) *T { return &v }

// binFrames enumerates one representative of every frame type of the
// binary grammar, with every optional field populated (nil-able slices
// are either nil or non-empty, so reflect.DeepEqual comparisons against
// JSON round-trips cannot be confused by nil-vs-empty).
func binFrames() []struct {
	name   string
	tag    byte
	value  any
	encode func(dst []byte) []byte
	decode func(payload []byte) (any, error)
} {
	hello := HelloFrame{V: V1, Type: FrameHello, Dim: 3, Wire: WireBinary}
	welcome := WelcomeFrame{
		V: V1, Type: FrameWelcome, Algorithm: "MtC", T: 41, Dim: 2, Wire: WireBinary,
		Last: &LastStep{
			T: 40, Batched: 3, Cost: Cost{Move: 1.25, Serve: math.Pi, Total: 1.25 + math.Pi},
			Clamped: 1, Positions: []Point{{0.5, -2}, {1e-300, 7}},
		},
	}
	step := StepFrame{V: V1, Type: FrameStep, ID: 7, Requests: []Point{{3, 4}, {5, 6}, {-0.0, math.MaxFloat64}}}
	ack := AckFrame{
		V: V1, Type: FrameAck, ID: -9, StepResponse: StepResponse{
			T: 12, Accepted: 5, Batched: 8,
			Cost:      Cost{Move: 0.125, Serve: 2.5, Total: 2.625},
			Positions: []Point{{1, 2}, {3.5, -4.25}},
			Clamped:   2,
			Shards:    []ShardStep{{Shard: 0, Routed: 3, Cost: Cost{Move: 1, Serve: 2, Total: 3}}, {Shard: 1, Routed: 5}},
		},
	}
	throttle := ThrottleFrame{V: V1, Type: FrameThrottle, ID: 3, RetryAfterMS: 250}
	errFrame := ErrorFrame{V: V1, Type: FrameError, ID: ptr(int64(11)), Err: Error{
		Code: CodeNotDurable, Detail: "disk full", RetryAfterMS: 50, ExecutedT: ptr(9),
	}}
	bye := ByeFrame{V: V1, Type: FrameBye}
	ping := PingFrame{V: V1, Type: FramePing}
	pong := PongFrame{V: V1, Type: FramePong}

	return []struct {
		name   string
		tag    byte
		value  any
		encode func(dst []byte) []byte
		decode func(payload []byte) (any, error)
	}{
		{"hello", BinHello, hello,
			func(dst []byte) []byte { f := hello; return AppendHello(dst, &f) },
			func(p []byte) (any, error) { var f HelloFrame; err := DecodeHello(p, &f); return f, err }},
		{"welcome", BinWelcome, welcome,
			func(dst []byte) []byte { f := welcome; return AppendWelcome(dst, &f) },
			func(p []byte) (any, error) { var f WelcomeFrame; err := DecodeWelcome(p, &f); return f, err }},
		{"step", BinStep, step,
			func(dst []byte) []byte { f := step; return AppendStep(dst, &f) },
			func(p []byte) (any, error) { var f StepFrame; err := DecodeStep(p, &f); return f, err }},
		{"ack", BinAck, ack,
			func(dst []byte) []byte { f := ack; return AppendAck(dst, &f) },
			func(p []byte) (any, error) { var f AckFrame; err := DecodeAck(p, &f); return f, err }},
		{"throttle", BinThrottle, throttle,
			func(dst []byte) []byte { f := throttle; return AppendThrottle(dst, &f) },
			func(p []byte) (any, error) { var f ThrottleFrame; err := DecodeThrottle(p, &f); return f, err }},
		{"error", BinError, errFrame,
			func(dst []byte) []byte { f := errFrame; return AppendErrorFrame(dst, &f) },
			func(p []byte) (any, error) { var f ErrorFrame; err := DecodeErrorFrame(p, &f); return f, err }},
		{"bye", BinBye, bye,
			func(dst []byte) []byte { return AppendControl(dst, V1) },
			func(p []byte) (any, error) {
				v, err := DecodeControl(p)
				return ByeFrame{V: v, Type: FrameBye}, err
			}},
		{"ping", BinPing, ping,
			func(dst []byte) []byte { return AppendControl(dst, V1) },
			func(p []byte) (any, error) {
				v, err := DecodeControl(p)
				return PingFrame{V: v, Type: FramePing}, err
			}},
		{"pong", BinPong, pong,
			func(dst []byte) []byte { return AppendControl(dst, V1) },
			func(p []byte) (any, error) {
				v, err := DecodeControl(p)
				return PongFrame{V: v, Type: FramePong}, err
			}},
	}
}

// TestBinaryRoundTripAllFrames pins the binary grammar value-for-value:
// every frame type encodes and decodes back to a deeply equal value.
func TestBinaryRoundTripAllFrames(t *testing.T) {
	for _, tc := range binFrames() {
		payload := tc.encode(nil)
		got, err := tc.decode(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.value) {
			t.Fatalf("%s round trip:\n got  %#v\n want %#v", tc.name, got, tc.value)
		}
	}
}

// TestBinaryMatchesJSONDecode is the differential property the transport
// equivalence rests on: for every frame type, decoding the binary payload
// yields a value deeply equal to strict-decoding the same frame's NDJSON
// form — same fields, same float64 bits, same nil-ness. A server fed by
// either encoding therefore feeds identical values into the engine.
func TestBinaryMatchesJSONDecode(t *testing.T) {
	for _, tc := range binFrames() {
		line := mustJSON(t, tc.value)
		jsonDecoded := reflect.New(reflect.TypeOf(tc.value))
		if err := UnmarshalStrict(line, jsonDecoded.Interface()); err != nil {
			t.Fatalf("%s: strict JSON decode: %v", tc.name, err)
		}
		binDecoded, err := tc.decode(tc.encode(nil))
		if err != nil {
			t.Fatalf("%s: binary decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(jsonDecoded.Elem().Interface(), binDecoded) {
			t.Fatalf("%s: binary and NDJSON decodes disagree:\n json   %#v\n binary %#v",
				tc.name, jsonDecoded.Elem().Interface(), binDecoded)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBinaryExactFloatBits pins bit-exactness through the binary encoding
// for values JSON would also round-trip exactly — including negative
// zero, denormals, and max-float.
func TestBinaryExactFloatBits(t *testing.T) {
	pts := []Point{{math.Copysign(0, -1), 5e-324}, {math.MaxFloat64, -math.MaxFloat64}}
	payload := AppendStepFrom(nil, V1, 1, pts)
	var f StepFrame
	if err := DecodeStep(payload, &f); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for k := range pts[i] {
			if math.Float64bits(f.Requests[i][k]) != math.Float64bits(pts[i][k]) {
				t.Fatalf("request[%d][%d]: bits %x != %x", i, k,
					math.Float64bits(f.Requests[i][k]), math.Float64bits(pts[i][k]))
			}
		}
	}
}

// TestBinaryDecodeReusesStorage pins the zero-copy contract DecodeAck and
// DecodeStep document: decoding into a frame that already holds
// sufficient capacity reuses the positions slice and the per-point
// storage instead of allocating.
func TestBinaryDecodeReusesStorage(t *testing.T) {
	big := AppendAckFrom(nil, V1, 1, 1, 2, 2, Cost{}, 0, []Point{{1, 2}, {3, 4}, {5, 6}}, nil)
	small := AppendAckFrom(nil, V1, 2, 2, 1, 1, Cost{}, 0, []Point{{9, 9}}, nil)
	var f AckFrame
	if err := DecodeAck(big, &f); err != nil {
		t.Fatal(err)
	}
	firstPoint := &f.Positions[0][0]
	if err := DecodeAck(small, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Positions) != 1 || f.Positions[0][0] != 9 {
		t.Fatalf("reused decode wrong: %+v", f.Positions)
	}
	if &f.Positions[0][0] != firstPoint {
		t.Fatal("decode into sufficient capacity reallocated point storage")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeAck(big, &f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeAck allocates %v/op, want 0", allocs)
	}
}

// TestBinaryFrameIO pins the framing layer: frames written through
// WriteBinaryFrame stream back through ReadBinaryFrame in order; clean
// EOF surfaces as io.EOF; a truncated frame is an unexpected EOF; a frame
// over the limit is refused without allocating its payload.
func TestBinaryFrameIO(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	payloads := [][]byte{AppendControl(nil, V1), AppendStepFrom(nil, V1, 5, []Point{{1, 2}})}
	tags := []byte{BinPing, BinStep}
	for i := range payloads {
		if err := WriteBinaryFrame(bw, tags[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	var scratch []byte
	for i := range payloads {
		tag, payload, err := ReadBinaryFrame(br, &scratch, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if tag != tags[i] || !bytes.Equal(payload, payloads[i]) {
			t.Fatalf("frame %d: tag 0x%x payload %x", i, tag, payload)
		}
	}
	if _, _, err := ReadBinaryFrame(br, &scratch, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// Truncated payload: the head promises more bytes than the stream has.
	trunc := bufio.NewReader(bytes.NewReader([]byte{BinStep, 10, 1, 2}))
	if _, _, err := ReadBinaryFrame(trunc, &scratch, DefaultMaxFrame); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// Oversize frame: refused from the head alone.
	var over bytes.Buffer
	obw := bufio.NewWriter(&over)
	if err := WriteBinaryFrame(obw, BinStep, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_ = obw.Flush()
	if _, _, err := ReadBinaryFrame(bufio.NewReader(&over), &scratch, 16); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestBinaryRejectsTrailingBytes pins decoder strictness (the binary
// mirror of UnmarshalStrict's trailing-garbage rule): every per-frame
// decoder refuses a payload with bytes left over.
func TestBinaryRejectsTrailingBytes(t *testing.T) {
	for _, tc := range binFrames() {
		payload := append(tc.encode(nil), 0x00)
		if _, err := tc.decode(payload); err == nil {
			t.Fatalf("%s: decoder accepted a trailing byte", tc.name)
		}
	}
}

// TestBinaryRejectsTruncatedPayloads walks every prefix of every encoded
// frame through its decoder: all must error, none may panic.
func TestBinaryRejectsTruncatedPayloads(t *testing.T) {
	for _, tc := range binFrames() {
		payload := tc.encode(nil)
		for n := 0; n < len(payload); n++ {
			if _, err := tc.decode(payload[:n]); err == nil {
				t.Fatalf("%s: accepted truncation to %d of %d bytes", tc.name, n, len(payload))
			}
		}
	}
}

// TestBinaryAckID pins the id peek against the full decode.
func TestBinaryAckID(t *testing.T) {
	for _, id := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		payload := AppendAckFrom(nil, V1, id, 0, 0, 0, Cost{}, 0, []Point(nil), nil)
		got, err := BinaryAckID(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("BinaryAckID = %d, want %d", got, id)
		}
	}
	if _, err := BinaryAckID(nil); err == nil {
		t.Fatal("BinaryAckID accepted an empty payload")
	}
}

// TestBinaryPointBombRejected pins the allocation bound: a payload whose
// counts promise far more data than its bytes carry is refused before any
// large allocation, not trusted.
func TestBinaryPointBombRejected(t *testing.T) {
	// Claim 2^40 points in a 12-byte payload.
	bomb := []byte{V1, 14 /* id */, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	var f StepFrame
	if err := DecodeStep(bomb, &f); err == nil {
		t.Fatal("point-count bomb accepted")
	}
	// Claim a 2^40 dimension for one point.
	bomb2 := []byte{V1, 14, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if err := DecodeStep(bomb2, &f); err == nil {
		t.Fatal("dimension bomb accepted")
	}
}
