package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// This file is the adversarial half of the wire test layer: native Go
// fuzz targets for every decoder an untrusted peer can reach —
// UnmarshalStrict, the NDJSON frame path (PeekFrame + per-type strict
// decode), the binary frame path (ReadBinaryFrame + per-tag decode), and
// checkpoint parsing. The property under fuzz is uniform: no input may
// panic, and any input a decoder accepts must survive a value-level
// re-encode/decode round trip.
//
// fuzzSeeds below is the committed corpus, covering every frame type of
// both encodings. TestFuzzCorpusCommitted materializes it under
// testdata/fuzz/<Target>/ in the native corpus-file format, so plain
// `go test` (and CI's -fuzz=… -fuzztime=20s job) always starts from full
// grammar coverage rather than empty-input discovery.

// binFrame prepends the stream head (tag + uvarint length) that
// ReadBinaryFrame expects in front of an encoded payload.
func binFrame(tag byte, payload []byte) []byte {
	head := make([]byte, 1, 1+binary.MaxVarintLen64+len(payload))
	head[0] = tag
	head = binary.AppendUvarint(head, uint64(len(payload)))
	return append(head, payload...)
}

// fuzzSeeds maps each fuzz target to its committed seed corpus. Every
// frame type of the grammar appears in both encodings, plus the legacy
// and bare checkpoint envelopes and a handful of malformed shapes.
var fuzzSeeds = map[string][][]byte{
	"FuzzUnmarshalStrict": {
		[]byte(`{"v":1,"type":"hello","dim":2}`),
		[]byte(`{"v":1,"type":"hello","dim":2,"wire":"binary"}`),
		[]byte(`{"v":1,"type":"step","id":1,"requests":[[1,2],[3,4]]}`),
		[]byte(`{"v":1,"type":"ack","id":1,"t":3,"accepted":1,"batched":1,"cost":{"move":1,"serve":2,"total":3},"positions":[[0,0]]}`),
		[]byte(`{"v":1,"type":"hello","dim":2} trailing`),
		[]byte(`{"v":1,"type":"hello","unknown":true}`),
		[]byte(`{"v":1`),
		[]byte(`null`),
	},
	"FuzzNDJSONFrame": {
		[]byte(`{"v":1,"type":"hello","dim":3,"wire":"binary"}`),
		[]byte(`{"v":1,"type":"welcome","algorithm":"MtC","t":4,"dim":2,"wire":"binary","last":{"t":3,"batched":1,"cost":{"move":1,"serve":2,"total":3},"clamped":0,"positions":[[1,2]]}}`),
		[]byte(`{"v":1,"type":"step","id":7,"requests":[[3,4],[5,6]]}`),
		[]byte(`{"v":1,"type":"ack","id":7,"t":1,"accepted":2,"batched":2,"cost":{"move":0,"serve":1,"total":1},"positions":[[1,1]],"shards":[{"shard":0,"routed":2,"cost":{"move":0,"serve":1,"total":1}}]}`),
		[]byte(`{"v":1,"type":"throttle","id":9,"retry_after_ms":50}`),
		[]byte(`{"v":1,"type":"error","id":4,"error":{"code":"not_durable","detail":"disk","executed_t":3}}`),
		[]byte(`{"v":1,"type":"ping"}`),
		[]byte(`{"v":1,"type":"pong"}`),
		[]byte(`{"v":1,"type":"bye"}`),
		[]byte(`{"v":2,"type":"ping"}`),
		[]byte(`{"type":"ping"}`),
		[]byte(`not json`),
		[]byte(`{"v":1,"type":"hello","dim":2,"wire":"binary","window":8}`),
		[]byte(`{"v":1,"type":"welcome","algorithm":"MtC","t":4,"dim":2,"window":8,"ring":[{"t":2,"batched":1,"cost":{"move":1,"serve":0,"total":1},"positions":[[0,1]]},{"t":3,"batched":2,"cost":{"move":0,"serve":2,"total":2},"positions":[[1,2]]}]}`),
	},
	"FuzzBinaryFrame": nil, // built in init: needs the Append helpers
	"FuzzParseCheckpoint": {
		[]byte(`{"v":1,"session":{"t":3,"positions":[[1,2]],"metrics":{"steps":3}}}`),
		[]byte(`{"version":1,"t":3,"positions":[[1,2]]}`),
		[]byte(`{"t":3,"positions":[[1,2]],"moves":[{"t":1,"dist":0.5}]}`),
		[]byte(`{"v":99,"session":{}}`),
		[]byte(`{"v":1,"session":{"unknown":1}}`),
		[]byte(`{}`),
		[]byte(``),
		[]byte(`[1,2,3]`),
	},
}

func init() {
	hello := &HelloFrame{V: V1, Type: FrameHello, Dim: 2, Wire: WireBinary, Window: 8}
	last := &LastStep{T: 3, Batched: 1, Cost: Cost{Move: 1, Serve: 2, Total: 3}, Positions: []Point{{1, 2}}}
	ring := []LastStep{
		{T: 2, Batched: 2, Cost: Cost{Move: 0.5, Serve: 1, Total: 1.5}, Positions: []Point{{0, 1}}},
		*last,
	}
	welcome := &WelcomeFrame{V: V1, Type: FrameWelcome, Algorithm: "MtC", T: 4, Dim: 2, Wire: WireBinary, Last: last, Window: 8, Ring: ring}
	ack := AppendAckFrom(nil, V1, 7, 1, 2, 2, Cost{Serve: 1, Total: 1}, 0,
		[]Point{{1, 1}}, []ShardStep{{Shard: 0, Routed: 2, Cost: Cost{Serve: 1, Total: 1}}})
	throttle := &ThrottleFrame{V: V1, Type: FrameThrottle, ID: 9, RetryAfterMS: 50}
	errID := int64(4)
	errf := &ErrorFrame{V: V1, Type: FrameError, ID: &errID, Err: Error{Code: CodeBadFrame, Detail: "x"}}
	fuzzSeeds["FuzzBinaryFrame"] = [][]byte{
		binFrame(BinHello, AppendHello(nil, hello)),
		binFrame(BinWelcome, AppendWelcome(nil, welcome)),
		binFrame(BinStep, AppendStepFrom(nil, V1, 7, []Point{{3, 4}, {5, 6}})),
		binFrame(BinAck, ack),
		binFrame(BinThrottle, AppendThrottle(nil, throttle)),
		binFrame(BinError, AppendErrorFrame(nil, errf)),
		binFrame(BinBye, AppendControl(nil, V1)),
		binFrame(BinPing, AppendControl(nil, V1)),
		binFrame(BinPong, AppendControl(nil, V1)),
		{BinStep, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // oversize head
		{BinStep, 10, 1, 2},                                                   // truncated payload
		{0x42, 2, 0, 0},                                                       // unknown tag
		binFrame(BinAck, nil),                                                 // empty payload
		{},                                                                    // empty stream
	}
}

// corpusDir is where the native fuzzing engine looks for the seed corpus
// of a target; files there also run as subtests under plain `go test`.
func corpusDir(target string) string {
	return filepath.Join("testdata", "fuzz", target)
}

// TestFuzzCorpusCommitted materializes fuzzSeeds under testdata/fuzz/ in
// the `go test fuzz v1` corpus-file format, and fails if a committed file
// drifted from its seed. Running the test once (it writes missing files)
// and committing the result is how the corpus is maintained — seeds are
// defined in code, next to the grammar they cover.
func TestFuzzCorpusCommitted(t *testing.T) {
	for target, seeds := range fuzzSeeds {
		dir := corpusDir(target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			got, err := os.ReadFile(path)
			if os.IsNotExist(err) {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s — commit it", path)
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Errorf("%s drifted from its seed; delete it and re-run to regenerate", path)
			}
		}
	}
}

// FuzzUnmarshalStrict: the strict JSON decoder must never panic and must
// stay strict — anything it accepts re-marshals and strict-decodes to a
// deeply equal value.
func FuzzUnmarshalStrict(f *testing.F) {
	for _, seed := range fuzzSeeds["FuzzUnmarshalStrict"] {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var h HelloFrame
		if err := UnmarshalStrict(data, &h); err == nil {
			re, err := json.Marshal(h)
			if err != nil {
				t.Fatalf("accepted input did not re-marshal: %v", err)
			}
			var h2 HelloFrame
			if err := UnmarshalStrict(re, &h2); err != nil {
				t.Fatalf("re-marshaled frame rejected: %v", err)
			}
			if !reflect.DeepEqual(h, h2) {
				t.Fatalf("round trip drifted: %+v vs %+v", h, h2)
			}
		}
		var s StepFrame
		_ = UnmarshalStrict(data, &s)
		var a AckFrame
		_ = UnmarshalStrict(data, &a)
	})
}

// FuzzNDJSONFrame drives a fuzzed line through the exact dispatch the
// stream servers use: PeekFrame for the type, then the per-type strict
// decode. No input may panic either stage.
func FuzzNDJSONFrame(f *testing.F) {
	for _, seed := range fuzzSeeds["FuzzNDJSONFrame"] {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		head, err := PeekFrame(line)
		if err != nil {
			return
		}
		_ = CheckVersion(head.V)
		switch head.Type {
		case FrameHello:
			var v HelloFrame
			_ = UnmarshalStrict(line, &v)
		case FrameWelcome:
			var v WelcomeFrame
			_ = UnmarshalStrict(line, &v)
		case FrameStep:
			var v StepFrame
			_ = UnmarshalStrict(line, &v)
		case FrameAck:
			var v AckFrame
			_ = UnmarshalStrict(line, &v)
		case FrameThrottle:
			var v ThrottleFrame
			_ = UnmarshalStrict(line, &v)
		case FrameError:
			var v ErrorFrame
			_ = UnmarshalStrict(line, &v)
		case FramePing, FramePong, FrameBye:
			var v PingFrame
			_ = UnmarshalStrict(line, &v)
		}
	})
}

// FuzzBinaryFrame drives fuzzed bytes through the framing layer and
// every per-tag decoder. No input may panic, and any frame a decoder
// accepts must survive a value-level re-encode/decode round trip (byte
// equality is deliberately not required: uvarints admit non-minimal
// encodings, values are the contract).
func FuzzBinaryFrame(f *testing.F) {
	for _, seed := range fuzzSeeds["FuzzBinaryFrame"] {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			tag, payload, err := ReadBinaryFrame(br, &buf, DefaultMaxFrame)
			if err != nil {
				return
			}
			switch tag {
			case BinHello:
				var v HelloFrame
				if DecodeHello(payload, &v) == nil {
					rt := AppendHello(nil, &v)
					var v2 HelloFrame
					if err := DecodeHello(rt, &v2); err != nil || !reflect.DeepEqual(v, v2) {
						t.Fatalf("hello round trip: %v, %+v vs %+v", err, v, v2)
					}
				}
			case BinWelcome:
				var v WelcomeFrame
				if DecodeWelcome(payload, &v) == nil {
					rt := AppendWelcome(nil, &v)
					var v2 WelcomeFrame
					if err := DecodeWelcome(rt, &v2); err != nil || !reflect.DeepEqual(v, v2) {
						t.Fatalf("welcome round trip: %v, %+v vs %+v", err, v, v2)
					}
				}
			case BinStep:
				var v StepFrame
				if DecodeStep(payload, &v) == nil {
					rt := AppendStep(nil, &v)
					var v2 StepFrame
					if err := DecodeStep(rt, &v2); err != nil || !reflect.DeepEqual(v, v2) {
						t.Fatalf("step round trip: %v, %+v vs %+v", err, v, v2)
					}
				}
			case BinAck:
				var v AckFrame
				if DecodeAck(payload, &v) == nil {
					if id, err := BinaryAckID(payload); err != nil || id != v.ID {
						t.Fatalf("BinaryAckID %d/%v disagrees with DecodeAck id %d", id, err, v.ID)
					}
					rt := AppendAck(nil, &v)
					var v2 AckFrame
					if err := DecodeAck(rt, &v2); err != nil || !reflect.DeepEqual(v, v2) {
						t.Fatalf("ack round trip: %v, %+v vs %+v", err, v, v2)
					}
				}
			case BinThrottle:
				var v ThrottleFrame
				_ = DecodeThrottle(payload, &v)
			case BinError:
				var v ErrorFrame
				if DecodeErrorFrame(payload, &v) == nil {
					rt := AppendErrorFrame(nil, &v)
					var v2 ErrorFrame
					if err := DecodeErrorFrame(rt, &v2); err != nil || !reflect.DeepEqual(v, v2) {
						t.Fatalf("error round trip: %v, %+v vs %+v", err, v, v2)
					}
				}
			case BinBye, BinPing, BinPong:
				_, _ = DecodeControl(payload)
			}
		}
	})
}

// FuzzParseCheckpoint: checkpoint files come off disk and, during
// failover, off shared storage another process wrote — the parser must
// never panic, whatever the bytes.
func FuzzParseCheckpoint(f *testing.F) {
	for _, seed := range fuzzSeeds["FuzzParseCheckpoint"] {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseCheckpoint(data)
	})
}
