//go:build !race

package median

// raceEnabled reports whether this binary was built with -race; see
// race_enabled_test.go.
const raceEnabled = false
