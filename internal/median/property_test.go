package median

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// TestMedianBeatsPerturbations: the computed median's objective is no worse
// than random perturbations of it (local optimality; by convexity this is
// evidence of global optimality).
func TestMedianBeatsPerturbations(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		dim := 1 + r.IntN(3)
		n := 1 + r.IntN(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, dim)
			for k := range p {
				p[k] = r.Range(-20, 20)
			}
			pts[i] = p
		}
		c := Point(pts, Options{})
		base := Cost(c, pts)
		spread := geom.Spread(pts)
		for trial := 0; trial < 12; trial++ {
			delta := make(geom.Point, dim)
			for k := range delta {
				delta[k] = r.Range(-1, 1) * (0.2*spread + 0.1)
			}
			if Cost(c.Add(delta), pts) < base-1e-7*(1+base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestMedianInsideBounds: the geometric median always lies in the bounding
// box (indeed the convex hull) of the inputs.
func TestMedianInsideBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		dim := 1 + r.IntN(4)
		n := 1 + r.IntN(15)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, dim)
			for k := range p {
				p[k] = r.Range(-50, 50)
			}
			pts[i] = p
		}
		c := Point(pts, Options{})
		return geom.Bounds(pts).Contains(c, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestClosestIsInMinimizerSet: Closest returns a point with (near-)optimal
// objective, and among sampled minimizers it is nearest to the anchor.
func TestClosestIsInMinimizerSet(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		// Force the non-unique case: even number of collinear points.
		n := 2 * (1 + r.IntN(4))
		dir := geom.NewPoint(r.Range(-1, 1), r.Range(-1, 1))
		if dir.Norm() < 1e-3 {
			dir = geom.NewPoint(1, 0)
		}
		dir = dir.Unit()
		origin := geom.NewPoint(r.Range(-5, 5), r.Range(-5, 5))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = origin.Add(dir.Scale(r.Range(-10, 10)))
		}
		anchor := geom.NewPoint(r.Range(-15, 15), r.Range(-15, 15))
		c := Closest(pts, anchor, Options{})
		optCost := Cost(Point(pts, Options{}), pts)
		if Cost(c, pts) > optCost*(1+1e-9)+1e-9 {
			return false // not a minimizer
		}
		// No sampled minimizer may be closer to the anchor.
		set := Solve(pts, Options{})
		for k := 0; k < 10; k++ {
			alt := set.Seg.At(r.Float64())
			if geom.Dist(anchor, alt) < geom.Dist(anchor, c)-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTranslationEquivariance: median(pts + v) == median(pts) + v.
func TestTranslationEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.IntN(8)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.NewPoint(r.Range(-10, 10), r.Range(-10, 10))
		}
		v := geom.NewPoint(r.Range(-100, 100), r.Range(-100, 100))
		shifted := make([]geom.Point, n)
		for i := range pts {
			shifted[i] = pts[i].Add(v)
		}
		anchor := geom.NewPoint(0, 0)
		c1 := Closest(pts, anchor, Options{}).Add(v)
		c2 := Closest(shifted, anchor.Add(v), Options{})
		return c1.ApproxEqual(c2, 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
