package median

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// requireBitEqual asserts got and want match coordinate for coordinate at
// the float64-bit level — the contract ClosestInto makes with Closest is
// bit-identical arithmetic, not approximate agreement, because a cluster
// mirrors positions across transports and processes by value.
func requireBitEqual(t *testing.T, name string, got, want geom.Point) {
	t.Helper()
	if got.Dim() != want.Dim() {
		t.Fatalf("%s: dim %d != %d", name, got.Dim(), want.Dim())
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s: coord %d: %x != %x (%v vs %v)",
				name, k, math.Float64bits(got[k]), math.Float64bits(want[k]), got[k], want[k])
		}
	}
}

// TestClosestIntoMatchesClosest pins ClosestInto ≡ Closest bitwise across
// every solver path: single point, coincident set, two points, collinear
// odd and even (both the lo==hi degenerate and the segment tie-break),
// three points collinear and non-collinear, and the n>3 Weiszfeld loop.
func TestClosestIntoMatchesClosest(t *testing.T) {
	anchor := geom.Point{0.3, -1.7}
	cases := []struct {
		name string
		pts  []geom.Point
	}{
		{"single", []geom.Point{{1.5, 2.5}}},
		{"coincident", []geom.Point{{1, 1}, {1, 1}, {1, 1}}},
		{"two-points", []geom.Point{{0, 0}, {2, 4}}},
		{"collinear-odd", []geom.Point{{0, 0}, {1, 1}, {5, 5}}},
		{"collinear-even-distinct", []geom.Point{{0, 0}, {1, 1}, {3, 3}, {9, 9}}},
		{"collinear-even-tied", []geom.Point{{0, 0}, {2, 2}, {2, 2}, {9, 9}}},
		{"three-noncollinear", []geom.Point{{0, 0}, {4, 0}, {1, 3}}},
		{"weiszfeld", []geom.Point{{0, 0}, {4, 0}, {1, 3}, {-2, 1}, {3, 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := Closest(tc.pts, anchor, Options{})
			got := ClosestInto(nil, tc.pts, anchor, Options{})
			requireBitEqual(t, tc.name, got, want)
			// Repeat through the pool with a reused destination: pooled
			// scratch state from the previous call must not leak in.
			reuse := make(geom.Point, 0, 8)
			for i := 0; i < 3; i++ {
				reuse = ClosestInto(reuse, tc.pts, anchor, Options{})
				requireBitEqual(t, tc.name+" reused", reuse, want)
			}
		})
	}
}

// TestClosestIntoMatchesClosestRandom hammers the equivalence over random
// sets of every size 1..12 in 1–4 dimensions, interleaving calls so the
// pooled scratch is constantly re-entered at different shapes.
func TestClosestIntoMatchesClosestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dst geom.Point
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(4)
		n := 1 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, dim)
			for k := range p {
				p[k] = rng.NormFloat64() * 10
			}
			pts[i] = p
		}
		anchor := make(geom.Point, dim)
		for k := range anchor {
			anchor[k] = rng.NormFloat64() * 10
		}
		want := Closest(pts, anchor, Options{})
		dst = ClosestInto(dst, pts, anchor, Options{})
		requireBitEqual(t, "random", dst, want)
	}
}

// TestClosestIntoAllocFree pins the pooled-path allocation contract on
// the shapes the serving loop hits: after warmup, collinear sets and
// Weiszfeld sets (n != 3 non-collinear) run at 0 allocs/op.
func TestClosestIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budget is not measurable under -race (the race runtime allocates)")
	}
	anchor := geom.Point{0.3, -1.7}
	for _, tc := range []struct {
		name string
		pts  []geom.Point
	}{
		{"collinear", []geom.Point{{0, 0}, {1, 1}, {3, 3}, {9, 9}}},
		{"weiszfeld", []geom.Point{{0, 0}, {4, 0}, {1, 3}, {-2, 1}, {3, 3}}},
	} {
		dst := ClosestInto(nil, tc.pts, anchor, Options{})
		allocs := testing.AllocsPerRun(200, func() {
			dst = ClosestInto(dst, tc.pts, anchor, Options{})
		})
		if allocs != 0 {
			t.Errorf("%s: ClosestInto allocates %v/op, want 0", tc.name, allocs)
		}
	}
}
