// Package median computes the geometric median (1-median, Fermat–Weber
// point) of a finite point set in ℝ^d — the point c minimizing
// Σ_i d(c, v_i) — which is the target point of the paper's Move-to-Center
// algorithm.
//
// For point sets that are not collinear the minimizer is unique and is
// found by the Weiszfeld iteration with the Vardi–Zhang correction (which
// handles iterates landing exactly on an input point). For collinear sets
// (including all 1-D inputs) the minimizer set is computed exactly: it is a
// single point for an odd number of points and a closed segment between the
// two middle order statistics for an even number. The paper's tie-break —
// "if c is not unique, pick the one minimizing d(P_Alg, c)" — is provided
// by Closest.
package median

import (
	"sort"

	"repro/internal/geom"
)

// Options controls the iterative solver. The zero value selects defaults.
type Options struct {
	// Tol is the convergence tolerance on iterate movement, relative to the
	// spread of the input. Default 1e-12.
	Tol float64
	// MaxIter bounds the Weiszfeld iterations. Default 10000.
	MaxIter int
	// CollinearTol is the absolute tolerance used to classify a point set
	// as collinear, relative to its spread. Default 1e-10.
	CollinearTol float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.CollinearTol <= 0 {
		o.CollinearTol = 1e-10
	}
	return o
}

// Set describes the full minimizer set of the 1-median objective. For
// non-collinear inputs it is a single point (Unique == true and the
// degenerate segment A == B). For collinear inputs with an even count it
// may be a proper segment.
type Set struct {
	// Seg spans the minimizer set; for a unique minimizer Seg.A == Seg.B.
	Seg geom.Segment
	// Unique reports whether the minimizer is a single point.
	Unique bool
}

// Solve returns the minimizer set of Σ d(c, v_i). It panics on an empty
// input or mixed dimensions.
func Solve(pts []geom.Point, opts Options) Set {
	if len(pts) == 0 {
		panic("median: Solve on empty point set")
	}
	o := opts.withDefaults()
	if len(pts) == 1 {
		p := pts[0].Clone()
		return Set{Seg: geom.NewSegment(p, p), Unique: true}
	}
	spread := geom.Spread(pts)
	if spread == 0 {
		p := pts[0].Clone()
		return Set{Seg: geom.NewSegment(p, p), Unique: true}
	}
	if line, ok := geom.Collinear(pts, o.CollinearTol*spread); ok {
		return collinearMedian(pts, line)
	}
	if len(pts) == 3 {
		// Fast path: the closed-form Fermat–Torricelli construction is
		// exact for non-collinear triples (the common r=3 case).
		c := ThreePoints(pts[0], pts[1], pts[2])
		return Set{Seg: geom.NewSegment(c, c), Unique: true}
	}
	c := weiszfeld(pts, o, spread)
	return Set{Seg: geom.NewSegment(c, c), Unique: true}
}

// Closest returns the point of the minimizer set closest to anchor — the
// paper's tie-break rule for the Move-to-Center algorithm.
func Closest(pts []geom.Point, anchor geom.Point, opts Options) geom.Point {
	set := Solve(pts, opts)
	if set.Unique {
		return set.Seg.A
	}
	c, _ := set.Seg.ClosestTo(anchor)
	return c
}

// Point returns an arbitrary minimizer (the midpoint of the minimizer set
// when it is a segment).
func Point(pts []geom.Point, opts Options) geom.Point {
	set := Solve(pts, opts)
	if set.Unique {
		return set.Seg.A
	}
	return set.Seg.At(0.5)
}

// Cost returns Σ d(c, v_i) for the given center.
func Cost(c geom.Point, pts []geom.Point) float64 { return geom.SumDist(c, pts) }

// collinearMedian solves the problem exactly on a line: project all points
// to scalar parameters, take the middle order statistic(s).
func collinearMedian(pts []geom.Point, line geom.Line) Set {
	n := len(pts)
	ts := make([]float64, n)
	for i, p := range pts {
		_, t := line.Project(p)
		ts[i] = t
	}
	sort.Float64s(ts)
	at := func(t float64) geom.Point { return line.Origin.Add(line.Dir.Scale(t)) }
	if n%2 == 1 {
		c := at(ts[n/2])
		return Set{Seg: geom.NewSegment(c, c), Unique: true}
	}
	lo, hi := ts[n/2-1], ts[n/2]
	if lo == hi {
		c := at(lo)
		return Set{Seg: geom.NewSegment(c, c), Unique: true}
	}
	return Set{Seg: geom.NewSegment(at(lo), at(hi)), Unique: false}
}

// weiszfeld runs the Weiszfeld fixed-point iteration with the Vardi–Zhang
// correction. pts are guaranteed non-collinear, so the minimizer is unique
// and the objective is strictly convex on the affine hull.
func weiszfeld(pts []geom.Point, o Options, spread float64) geom.Point {
	y := geom.Centroid(pts)
	tol := o.Tol * spread
	snapTol := 1e-14 * spread

	for iter := 0; iter < o.MaxIter; iter++ {
		next, done := weiszfeldStep(pts, y, snapTol)
		if done {
			return next
		}
		if geom.Dist(y, next) <= tol {
			return next
		}
		y = next
	}
	return y
}

// weiszfeldStep performs one iteration from y. done reports that y (or the
// returned point) is optimal and iteration should stop.
func weiszfeldStep(pts []geom.Point, y geom.Point, snapTol float64) (geom.Point, bool) {
	d := y.Dim()
	numer := geom.Zero(d)
	denom := 0.0
	// eta counts input points coinciding with y; r accumulates the
	// direction Σ_{v_i != y} (v_i - y)/d_i.
	eta := 0.0
	r := geom.Zero(d)
	for _, v := range pts {
		di := geom.Dist(y, v)
		if di <= snapTol {
			eta++
			continue
		}
		w := 1 / di
		denom += w
		for k := 0; k < d; k++ {
			numer[k] += v[k] * w
			r[k] += (v[k] - y[k]) * w
		}
	}
	if denom == 0 {
		// All points coincide with y; y is trivially optimal.
		return y.Clone(), true
	}
	tPlain := numer.Scale(1 / denom)
	if eta == 0 {
		return tPlain, false
	}
	// Vardi–Zhang: y sits on an input point with multiplicity eta. y is
	// optimal iff ||r|| <= eta; otherwise blend the plain step with y.
	rNorm := r.Norm()
	if rNorm <= eta {
		return y.Clone(), true
	}
	beta := eta / rNorm
	next := tPlain.Scale(1 - beta).Add(y.Scale(beta))
	return next, false
}
