package median

import (
	"math"

	"repro/internal/geom"
)

// ThreePoints returns the exact geometric median (Fermat–Torricelli point)
// of three points in any dimension using the classical construction:
//
//   - if the points are collinear, the middle point is the median;
//   - if one vertex's angle is at least 120°, that vertex is the median;
//   - otherwise the median is the first isogonic center, found by
//     intersecting the lines from two vertices to the apexes of
//     equilateral triangles erected externally on the opposite sides.
//
// For dimensions above 2 the computation happens in the triangle's own
// plane via an orthonormal basis. The result is exact up to floating
// point and serves both as a fast path and as an independent oracle for
// the Weiszfeld iteration.
func ThreePoints(a, b, c geom.Point) geom.Point {
	if line, ok := geom.Collinear([]geom.Point{a, b, c}, 1e-12*(1+geom.Spread([]geom.Point{a, b, c}))); ok {
		// Middle point along the line: project and take the median
		// parameter.
		if line.Dir.NormSq() == 0 {
			return a.Clone()
		}
		_, ta := line.Project(a)
		_, tb := line.Project(b)
		_, tc := line.Project(c)
		mid := ta + tb + tc - math.Min(ta, math.Min(tb, tc)) - math.Max(ta, math.Max(tb, tc))
		return line.Origin.Add(line.Dir.Scale(mid))
	}
	// 120° rule: the dot product test (u·v ≤ −|u||v|/2) detects an angle
	// of at least 120° at the shared vertex.
	if wideAngle(a, b, c) {
		return a.Clone()
	}
	if wideAngle(b, a, c) {
		return b.Clone()
	}
	if wideAngle(c, a, b) {
		return c.Clone()
	}
	// Work in the triangle's plane: orthonormal basis (e1, e2) at a.
	ab := b.Sub(a)
	ac := c.Sub(a)
	e1 := ab.Unit()
	acPerp := ac.Sub(e1.Scale(ac.Dot(e1)))
	e2 := acPerp.Unit()
	// 2-D coordinates.
	ax, ay := 0.0, 0.0
	bx, by := ab.Dot(e1), ab.Dot(e2) // by == 0 by construction
	cx, cy := ac.Dot(e1), ac.Dot(e2)

	apexBC := apex2D(bx, by, cx, cy, ax, ay)
	apexAC := apex2D(ax, ay, cx, cy, bx, by)
	// Intersect line a→apexBC with line b→apexAC.
	px, py, ok := intersect2D(ax, ay, apexBC[0], apexBC[1], bx, by, apexAC[0], apexAC[1])
	if !ok {
		// Numerically degenerate; fall back to the robust iteration.
		return Point([]geom.Point{a, b, c}, Options{})
	}
	return a.Add(e1.Scale(px)).Add(e2.Scale(py))
}

// wideAngle reports whether the angle at v (between u and w) is >= 120°.
func wideAngle(v, u, w geom.Point) bool {
	x := u.Sub(v)
	y := w.Sub(v)
	return x.Dot(y) <= -0.5*x.Norm()*y.Norm()+1e-15
}

// apex2D returns the apex of the equilateral triangle erected on segment
// (x1,y1)-(x2,y2) on the side opposite to the reference point (rx,ry).
func apex2D(x1, y1, x2, y2, rx, ry float64) [2]float64 {
	mx, my := (x1+x2)/2, (y1+y2)/2
	// Perpendicular to the segment.
	px, py := -(y2 - y1), x2-x1
	h := math.Sqrt(3) / 2
	// Place the apex away from the reference point.
	if (rx-mx)*px+(ry-my)*py > 0 {
		px, py = -px, -py
	}
	return [2]float64{mx + h*px, my + h*py}
}

// intersect2D intersects lines p1→p2 and p3→p4, returning ok=false for
// (near-)parallel lines.
func intersect2D(x1, y1, x2, y2, x3, y3, x4, y4 float64) (float64, float64, bool) {
	d1x, d1y := x2-x1, y2-y1
	d2x, d2y := x4-x3, y4-y3
	den := d1x*d2y - d1y*d2x
	scale := math.Abs(d1x*d2y) + math.Abs(d1y*d2x)
	if math.Abs(den) <= 1e-14*(1+scale) {
		return 0, 0, false
	}
	t := ((x3-x1)*d2y - (y3-y1)*d2x) / den
	return x1 + t*d1x, y1 + t*d1y, true
}
