package median

import (
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
)

// ClosestInto is the allocation-free Closest used by the serving hot path:
// it computes the same point — bit-identical arithmetic on every path —
// but writes the result into dst (grown as needed) and keeps all solver
// intermediates in a pooled scratch area instead of allocating per call.
//
// The one exception is the non-collinear 3-point fast path, which still
// allocates inside the closed-form Fermat–Torricelli construction; steady
// loops that must stay at 0 allocs/op should batch r != 3 requests.
func ClosestInto(dst geom.Point, pts []geom.Point, anchor geom.Point, opts Options) geom.Point {
	if len(pts) == 0 {
		panic("median: ClosestInto on empty point set")
	}
	o := opts.withDefaults()
	if len(pts) == 1 {
		return geom.CopyInto(dst, pts[0])
	}
	spread := geom.Spread(pts)
	if spread == 0 {
		return geom.CopyInto(dst, pts[0])
	}
	sc := scratchPool.Get().(*scratch)
	if sc.collinear(pts, o.CollinearTol*spread) {
		dst = sc.collinearClosest(dst, pts, anchor)
		scratchPool.Put(sc)
		return dst
	}
	if len(pts) == 3 {
		scratchPool.Put(sc)
		c := ThreePoints(pts[0], pts[1], pts[2])
		return geom.CopyInto(dst, c)
	}
	dst = sc.weiszfeld(dst, pts, o, spread)
	scratchPool.Put(sc)
	return dst
}

// scratch holds every intermediate the solver needs, pooled so repeated
// ClosestInto calls allocate nothing once the buffers have grown to the
// working dimension.
type scratch struct {
	dir, a, b         geom.Point
	y, next, numer, r geom.Point
	ts                []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func resizePoint(p geom.Point, d int) geom.Point {
	if cap(p) < d {
		return make(geom.Point, d)
	}
	return p[:d]
}

// collinear mirrors geom.Collinear's arithmetic without allocating. On a
// collinear set it returns true with the supporting line stored as
// (pts[0], sc.dir); the caller guarantees the set is not coincident
// (spread > 0), so the direction is always well-defined.
func (sc *scratch) collinear(pts []geom.Point, tol float64) bool {
	d := pts[0].Dim()
	var far geom.Point
	maxD := 0.0
	for _, p := range pts {
		if dd := geom.DistSq(pts[0], p); dd > maxD {
			maxD = dd
			far = p
		}
	}
	// dir = (far - pts[0]).Unit(), with Sub/NormSq/Scale's exact order.
	o := pts[0]
	sc.dir = resizePoint(sc.dir, d)
	dir := sc.dir
	normSq := 0.0
	for k := range dir {
		v := far[k] - o[k]
		dir[k] = v
		normSq += v * v
	}
	inv := 1 / math.Sqrt(normSq)
	for k := range dir {
		dir[k] = inv * dir[k]
	}
	if len(pts) <= 2 {
		return true
	}
	for _, p := range pts {
		// line.DistTo(p) with Project/Dist's exact arithmetic.
		t := 0.0
		for k := range p {
			t += (p[k] - o[k]) * dir[k]
		}
		distSq := 0.0
		for k := range p {
			dd := p[k] - (o[k] + t*dir[k])
			distSq += dd * dd
		}
		if math.Sqrt(distSq) > tol {
			return false
		}
	}
	return true
}

// lineAt writes Origin + t·Dir into dst (the collinearMedian "at" helper).
func (sc *scratch) lineAt(dst geom.Point, origin geom.Point, t float64) geom.Point {
	dst = resizePoint(dst, len(origin))
	for k := range dst {
		dst[k] = origin[k] + t*sc.dir[k]
	}
	return dst
}

// collinearClosest mirrors collinearMedian followed by the Closest
// tie-break, using the line sc.collinear stored.
func (sc *scratch) collinearClosest(dst geom.Point, pts []geom.Point, anchor geom.Point) geom.Point {
	o := pts[0]
	dir := sc.dir
	n := len(pts)
	if cap(sc.ts) < n {
		sc.ts = make([]float64, n)
	}
	ts := sc.ts[:n]
	for i, p := range pts {
		t := 0.0
		for k := range p {
			t += (p[k] - o[k]) * dir[k]
		}
		ts[i] = t
	}
	sort.Float64s(ts)
	if n%2 == 1 {
		return sc.lineAt(dst, o, ts[n/2])
	}
	lo, hi := ts[n/2-1], ts[n/2]
	if lo == hi {
		return sc.lineAt(dst, o, lo)
	}
	// Segment [at(lo), at(hi)]; pick its point closest to anchor with
	// geom.Segment.ClosestTo's exact arithmetic.
	sc.a = sc.lineAt(sc.a, o, lo)
	sc.b = sc.lineAt(sc.b, o, hi)
	a, b := sc.a, sc.b
	den := 0.0
	for k := range a {
		v := b[k] - a[k]
		den += v * v
	}
	if den == 0 {
		return geom.CopyInto(dst, a)
	}
	t := 0.0
	for k := range a {
		t += (anchor[k] - a[k]) * (b[k] - a[k])
	}
	t /= den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return geom.LerpInto(dst, a, b, t)
}

// weiszfeld mirrors the allocating weiszfeld/weiszfeldStep pair with the
// iterates, numerator, and residual kept in scratch buffers.
func (sc *scratch) weiszfeld(dst geom.Point, pts []geom.Point, o Options, spread float64) geom.Point {
	d := pts[0].Dim()
	sc.y = resizePoint(sc.y, d)
	sc.next = resizePoint(sc.next, d)
	sc.numer = resizePoint(sc.numer, d)
	sc.r = resizePoint(sc.r, d)
	y, next := sc.y, sc.next

	// Start at the centroid (geom.Centroid's sum-then-scale order).
	for k := range y {
		y[k] = 0
	}
	for _, p := range pts {
		for k := range y {
			y[k] += p[k]
		}
	}
	s := 1 / float64(len(pts))
	for k := range y {
		y[k] = s * y[k]
	}

	tol := o.Tol * spread
	snapTol := 1e-14 * spread
	res := y
	for iter := 0; iter < o.MaxIter; iter++ {
		done := sc.weiszfeldStepInto(next, pts, y, snapTol)
		if done || geom.Dist(y, next) <= tol {
			res = next
			break
		}
		y, next = next, y
		res = y
	}
	// y and next stay two distinct buffers across the swaps; keep both for
	// the next pooled use.
	sc.y, sc.next = y, next
	return geom.CopyInto(dst, res)
}

// weiszfeldStepInto performs one iteration from y, writing the new iterate
// into next; done reports that next is optimal and iteration should stop.
// The arithmetic matches weiszfeldStep operation for operation.
func (sc *scratch) weiszfeldStepInto(next geom.Point, pts []geom.Point, y geom.Point, snapTol float64) bool {
	d := len(y)
	numer, r := sc.numer, sc.r
	for k := 0; k < d; k++ {
		numer[k] = 0
		r[k] = 0
	}
	denom := 0.0
	eta := 0.0
	for _, v := range pts {
		di := geom.Dist(y, v)
		if di <= snapTol {
			eta++
			continue
		}
		w := 1 / di
		denom += w
		for k := 0; k < d; k++ {
			numer[k] += v[k] * w
			r[k] += (v[k] - y[k]) * w
		}
	}
	if denom == 0 {
		copy(next, y)
		return true
	}
	// tPlain = numer.Scale(1/denom)
	inv := 1 / denom
	if eta == 0 {
		for k := 0; k < d; k++ {
			next[k] = inv * numer[k]
		}
		return false
	}
	rNorm := 0.0
	for k := 0; k < d; k++ {
		rNorm += r[k] * r[k]
	}
	rNorm = math.Sqrt(rNorm)
	if rNorm <= eta {
		copy(next, y)
		return true
	}
	beta := eta / rNorm
	// tPlain.Scale(1-beta).Add(y.Scale(beta))
	for k := 0; k < d; k++ {
		next[k] = (1-beta)*(inv*numer[k]) + beta*y[k]
	}
	return false
}
