package median

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Robustness tests: configurations that historically break naive Weiszfeld
// implementations — iterates landing on data points, near-collinear sets,
// extreme coordinate magnitudes, and heavy duplication.

func TestIterateOnDataPoint(t *testing.T) {
	// The centroid (initial iterate) coincides with an input point: the
	// Vardi–Zhang correction must step off it (or certify optimality)
	// rather than dividing by zero.
	pts := []geom.Point{
		pt(0, 0), pt(4, 0), pt(-4, 0), pt(0, 4), pt(0, -4),
	}
	// Centroid is (0,0) which is an input point AND the true median.
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(pt(0, 0), 1e-9) {
		t.Fatalf("median = %v, want origin", set.Seg.A)
	}
	if !set.Seg.A.IsFinite() {
		t.Fatal("non-finite median")
	}
}

func TestIterateOnNonOptimalDataPoint(t *testing.T) {
	// Centroid coincides with a data point that is NOT the median: the
	// iteration must escape it.
	pts := []geom.Point{
		pt(0, 0),
		pt(6, 1), pt(6, -1),
		pt(-3, 3), pt(-3, -3), pt(-6, 0),
	}
	// Centroid = (0,0) = pts[0]; true median is left of center.
	set := Solve(pts, Options{})
	got := Cost(set.Seg.A, pts)
	grid := gridSearch(pts, 50)
	if got > grid*(1+1e-3) {
		t.Fatalf("stuck on data point: cost %v vs grid %v", got, grid)
	}
}

func TestNearCollinear(t *testing.T) {
	// Points collinear up to 1e-9 jitter: either branch (collinear median
	// or Weiszfeld) must produce a near-optimal point, not NaN.
	r := xrand.New(81)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.IntN(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			x := r.Range(-10, 10)
			pts[i] = pt(x, x*2+r.Range(-1e-9, 1e-9))
		}
		set := Solve(pts, Options{})
		if !set.Seg.A.IsFinite() {
			t.Fatalf("trial %d: non-finite median", trial)
		}
		got := Cost(set.Seg.A, pts)
		best := math.Inf(1)
		for _, p := range pts {
			if c := Cost(p, pts); c < best {
				best = c
			}
		}
		// The vertex minimum upper-bounds the optimum within factor ~2;
		// the computed median must not exceed the best vertex.
		if got > best*(1+1e-6) {
			t.Fatalf("trial %d: median cost %v > best vertex %v", trial, got, best)
		}
	}
}

func TestHugeCoordinates(t *testing.T) {
	pts := []geom.Point{
		pt(1e12, 1e12), pt(1e12+3, 1e12), pt(1e12, 1e12+4),
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.IsFinite() {
		t.Fatal("non-finite median at large magnitude")
	}
	// The median must lie in the bounding box.
	if !geom.Bounds(pts).Contains(set.Seg.A, 1e-3) {
		t.Fatalf("median %v escaped the hull", set.Seg.A)
	}
}

func TestTinySpread(t *testing.T) {
	pts := []geom.Point{
		pt(1, 1), pt(1+1e-13, 1), pt(1, 1+1e-13),
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(pt(1, 1), 1e-9) {
		t.Fatalf("tiny-spread median = %v", set.Seg.A)
	}
}

func TestHeavyDuplication(t *testing.T) {
	// 100 copies of one point plus 3 strays: the median is the duplicated
	// point exactly.
	pts := make([]geom.Point, 0, 103)
	for i := 0; i < 100; i++ {
		pts = append(pts, pt(2, 3))
	}
	pts = append(pts, pt(50, 0), pt(0, 50), pt(-50, -50))
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(pt(2, 3), 1e-9) {
		t.Fatalf("duplicated median = %v, want (2,3)", set.Seg.A)
	}
}

func TestManyPointsPerformance(t *testing.T) {
	// 10k random points must converge quickly (regression guard for the
	// iteration count).
	r := xrand.New(82)
	pts := make([]geom.Point, 10000)
	for i := range pts {
		pts[i] = pt(r.NormMS(0, 5), r.NormMS(0, 5))
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.IsFinite() {
		t.Fatal("non-finite median")
	}
	// For a symmetric cloud the median is near the origin.
	if set.Seg.A.Norm() > 0.5 {
		t.Fatalf("median of symmetric cloud = %v, expected near origin", set.Seg.A)
	}
}

func TestClosestWithFarAnchor(t *testing.T) {
	// Anchor astronomically far away must still clamp to the segment end.
	pts := []geom.Point{pt(0.0), pt(1.0)}
	c := Closest(pts, pt(1e15), Options{})
	if !c.ApproxEqual(pt(1.0), 1e-6) {
		t.Fatalf("far-anchor Closest = %v", c)
	}
}
