package median

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestThreePointsEquilateral(t *testing.T) {
	a, b, c := pt(0, 0), pt(1, 0), pt(0.5, math.Sqrt(3)/2)
	got := ThreePoints(a, b, c)
	want := geom.Centroid([]geom.Point{a, b, c})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("equilateral Fermat = %v, want %v", got, want)
	}
}

func TestThreePointsWideAngleVertex(t *testing.T) {
	// Angle at origin is ~176°: the origin is the median.
	a, b, c := pt(0, 0), pt(10, 0.3), pt(-10, 0.3)
	got := ThreePoints(a, b, c)
	if !got.ApproxEqual(a, 1e-12) {
		t.Fatalf("wide-angle Fermat = %v, want %v", got, a)
	}
}

func TestThreePointsExactly120(t *testing.T) {
	// Angle at a exactly 120°: vertex rule fires; Weiszfeld agrees.
	a := pt(0, 0)
	b := pt(1, 0)
	c := pt(math.Cos(2*math.Pi/3), math.Sin(2*math.Pi/3))
	got := ThreePoints(a, b, c)
	if !got.ApproxEqual(a, 1e-9) {
		t.Fatalf("120° Fermat = %v, want %v", got, a)
	}
}

func TestThreePointsCollinear(t *testing.T) {
	got := ThreePoints(pt(0, 0), pt(5, 5), pt(2, 2))
	if !got.ApproxEqual(pt(2, 2), 1e-9) {
		t.Fatalf("collinear Fermat = %v, want (2,2)", got)
	}
}

func TestThreePointsCoincident(t *testing.T) {
	got := ThreePoints(pt(1, 1), pt(1, 1), pt(1, 1))
	if !got.ApproxEqual(pt(1, 1), 1e-12) {
		t.Fatalf("coincident Fermat = %v", got)
	}
}

// TestThreePointsMatchesWeiszfeld cross-validates the closed form against
// the iterative solver on random triangles in 2-D and 3-D.
func TestThreePointsMatchesWeiszfeld(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		dim := 2 + r.IntN(2)
		mk := func() geom.Point {
			p := make(geom.Point, dim)
			for i := range p {
				p[i] = r.Range(-10, 10)
			}
			return p
		}
		a, b, c := mk(), mk(), mk()
		exact := ThreePoints(a, b, c)
		iter := Point([]geom.Point{a, b, c}, Options{})
		costE := Cost(exact, []geom.Point{a, b, c})
		costI := Cost(iter, []geom.Point{a, b, c})
		// The closed form must never be worse than the iteration (both
		// should approximate the same optimum).
		return costE <= costI*(1+1e-6)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestThreePointsIsOptimal: perturbations never improve the closed form.
func TestThreePointsIsOptimal(t *testing.T) {
	r := xrand.New(71)
	for trial := 0; trial < 300; trial++ {
		a := pt(r.Range(-5, 5), r.Range(-5, 5))
		b := pt(r.Range(-5, 5), r.Range(-5, 5))
		c := pt(r.Range(-5, 5), r.Range(-5, 5))
		pts := []geom.Point{a, b, c}
		f := ThreePoints(a, b, c)
		base := Cost(f, pts)
		for k := 0; k < 10; k++ {
			delta := pt(r.Range(-0.3, 0.3), r.Range(-0.3, 0.3))
			if Cost(f.Add(delta), pts) < base-1e-7 {
				t.Fatalf("trial %d: perturbation beats closed form (base %v)", trial, base)
			}
		}
	}
}

// TestThreePoints3DPlane: the Fermat point of a 3-D triangle lies in the
// triangle's plane and matches the 2-D solution of the embedded triangle.
func TestThreePoints3DPlane(t *testing.T) {
	a := pt(0, 0, 0)
	b := pt(2, 0, 1)
	c := pt(0, 2, 2)
	got := ThreePoints(a, b, c)
	// Residual against the plane through a, b, c.
	ab, ac := b.Sub(a), c.Sub(a)
	// Normal via Gram-Schmidt double projection.
	v := got.Sub(a)
	e1 := ab.Unit()
	e2 := ac.Sub(e1.Scale(ac.Dot(e1))).Unit()
	residual := v.Sub(e1.Scale(v.Dot(e1))).Sub(e2.Scale(v.Dot(e2)))
	if residual.Norm() > 1e-9 {
		t.Fatalf("Fermat point off-plane by %v", residual.Norm())
	}
}

func BenchmarkThreePointsClosedForm(b *testing.B) {
	p1, p2, p3 := pt(0, 0), pt(3, 1), pt(1, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ThreePoints(p1, p2, p3)
	}
}

func BenchmarkThreePointsWeiszfeld(b *testing.B) {
	pts := []geom.Point{pt(0, 0), pt(3, 1), pt(1, 4)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Point(pts, Options{})
	}
}
