package median

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func pt(coords ...float64) geom.Point { return geom.NewPoint(coords...) }

func TestSinglePoint(t *testing.T) {
	set := Solve([]geom.Point{pt(3, 4)}, Options{})
	if !set.Unique || !set.Seg.A.Equal(pt(3, 4)) {
		t.Fatalf("single point median = %+v", set)
	}
}

func TestAllCoincident(t *testing.T) {
	pts := []geom.Point{pt(1, 1), pt(1, 1), pt(1, 1)}
	set := Solve(pts, Options{})
	if !set.Unique || !set.Seg.A.ApproxEqual(pt(1, 1), 1e-12) {
		t.Fatalf("coincident median = %+v", set)
	}
}

func TestTwoPointsSegment(t *testing.T) {
	pts := []geom.Point{pt(0, 0), pt(10, 0)}
	set := Solve(pts, Options{})
	if set.Unique {
		t.Fatal("two distinct points should have a segment of minimizers")
	}
	if set.Seg.Length() < 10-1e-9 {
		t.Fatalf("median segment too short: %v", set.Seg.Length())
	}
}

func TestOdd1D(t *testing.T) {
	pts := []geom.Point{pt(1.0), pt(5.0), pt(100.0)}
	set := Solve(pts, Options{})
	if !set.Unique {
		t.Fatal("odd count should be unique")
	}
	if !set.Seg.A.ApproxEqual(pt(5.0), 1e-9) {
		t.Fatalf("1-D odd median = %v, want (5)", set.Seg.A)
	}
}

func TestEven1DInterval(t *testing.T) {
	pts := []geom.Point{pt(0.0), pt(2.0), pt(7.0), pt(50.0)}
	set := Solve(pts, Options{})
	if set.Unique {
		t.Fatal("even count with distinct middles should be non-unique")
	}
	// The minimizer set is [2, 7].
	lo, hi := set.Seg.A[0], set.Seg.B[0]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-2) > 1e-9 || math.Abs(hi-7) > 1e-9 {
		t.Fatalf("median interval = [%v, %v], want [2, 7]", lo, hi)
	}
}

func TestEven1DDegenerateMiddle(t *testing.T) {
	pts := []geom.Point{pt(0.0), pt(3.0), pt(3.0), pt(9.0)}
	set := Solve(pts, Options{})
	if !set.Unique || !set.Seg.A.ApproxEqual(pt(3.0), 1e-9) {
		t.Fatalf("expected unique median at 3, got %+v", set)
	}
}

func TestClosestTieBreak(t *testing.T) {
	pts := []geom.Point{pt(0.0), pt(10.0)}
	// Anchor left of the interval: closest point of [0,10] is 0.
	c := Closest(pts, pt(-5.0), Options{})
	if !c.ApproxEqual(pt(0.0), 1e-9) {
		t.Fatalf("Closest = %v, want 0", c)
	}
	// Anchor inside the interval: the anchor's projection itself.
	c = Closest(pts, pt(4.0), Options{})
	if !c.ApproxEqual(pt(4.0), 1e-9) {
		t.Fatalf("Closest = %v, want 4", c)
	}
	// Anchor right: 10.
	c = Closest(pts, pt(40.0), Options{})
	if !c.ApproxEqual(pt(10.0), 1e-9) {
		t.Fatalf("Closest = %v, want 10", c)
	}
}

func TestClosestTieBreak2D(t *testing.T) {
	// Two points on the x-axis; anchor off-axis: closest point of the
	// median segment is the anchor's orthogonal projection.
	pts := []geom.Point{pt(0, 0), pt(10, 0)}
	c := Closest(pts, pt(3, 7), Options{})
	if !c.ApproxEqual(pt(3, 0), 1e-9) {
		t.Fatalf("Closest = %v, want (3,0)", c)
	}
}

func TestEquilateralTriangle(t *testing.T) {
	// The Fermat point of an equilateral triangle is its centroid.
	pts := []geom.Point{
		pt(0, 0),
		pt(1, 0),
		pt(0.5, math.Sqrt(3)/2),
	}
	set := Solve(pts, Options{})
	want := geom.Centroid(pts)
	if !set.Unique {
		t.Fatal("triangle median should be unique")
	}
	if !set.Seg.A.ApproxEqual(want, 1e-8) {
		t.Fatalf("equilateral Fermat point = %v, want %v", set.Seg.A, want)
	}
}

func TestObtuseTriangleVertex(t *testing.T) {
	// If one vertex has an angle >= 120°, the Fermat point is that vertex.
	pts := []geom.Point{
		pt(0, 0),
		pt(10, 0.5),
		pt(-10, 0.5),
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(pt(0, 0), 1e-6) {
		t.Fatalf("obtuse Fermat point = %v, want (0,0)", set.Seg.A)
	}
}

func TestMajorityPoint(t *testing.T) {
	// With 3 of 5 points coincident, the median is the coincident point
	// (majority weight dominates). Points are NOT collinear.
	pts := []geom.Point{
		pt(2, 2), pt(2, 2), pt(2, 2),
		pt(100, 0), pt(0, 100),
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(pt(2, 2), 1e-6) {
		t.Fatalf("majority median = %v, want (2,2)", set.Seg.A)
	}
}

func TestSquareCenter(t *testing.T) {
	pts := []geom.Point{pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2)}
	set := Solve(pts, Options{})
	if !set.Unique {
		t.Fatal("square median should be unique")
	}
	if !set.Seg.A.ApproxEqual(pt(1, 1), 1e-8) {
		t.Fatalf("square median = %v, want (1,1)", set.Seg.A)
	}
}

func TestWeiszfeldVsGridSearch(t *testing.T) {
	// Compare against brute-force grid refinement on random 2-D sets.
	r := xrand.New(42)
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.IntN(8)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = pt(r.Range(-10, 10), r.Range(-10, 10))
		}
		set := Solve(pts, Options{})
		var c geom.Point
		if set.Unique {
			c = set.Seg.A
		} else {
			c = set.Seg.At(0.5)
		}
		got := Cost(c, pts)
		want := gridSearch(pts, 40)
		if got > want*(1+1e-4)+1e-9 {
			t.Fatalf("trial %d: weiszfeld cost %v > grid cost %v", trial, got, want)
		}
	}
}

// gridSearch refines a grid around the best cell a few times and returns
// the best objective value found.
func gridSearch(pts []geom.Point, res int) float64 {
	b := geom.Bounds(pts)
	lo, hi := b.Min.Clone(), b.Max.Clone()
	best := math.Inf(1)
	var bestPt geom.Point
	for ref := 0; ref < 6; ref++ {
		stepX := (hi[0] - lo[0]) / float64(res)
		stepY := (hi[1] - lo[1]) / float64(res)
		for i := 0; i <= res; i++ {
			for j := 0; j <= res; j++ {
				c := geom.NewPoint(lo[0]+float64(i)*stepX, lo[1]+float64(j)*stepY)
				if v := Cost(c, pts); v < best {
					best = v
					bestPt = c
				}
			}
		}
		// Zoom into the winning cell.
		lo = geom.NewPoint(bestPt[0]-2*stepX, bestPt[1]-2*stepY)
		hi = geom.NewPoint(bestPt[0]+2*stepX, bestPt[1]+2*stepY)
	}
	return best
}

func TestSolvePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Solve(nil) did not panic")
		}
	}()
	Solve(nil, Options{})
}

func TestPointReturnsMinimizer(t *testing.T) {
	pts := []geom.Point{pt(0.0), pt(4.0)}
	c := Point(pts, Options{})
	// Any point of [0,4] is a minimizer; midpoint expected.
	if c[0] < -1e-9 || c[0] > 4+1e-9 {
		t.Fatalf("Point = %v outside minimizer set", c)
	}
	if Cost(c, pts) > 4+1e-9 {
		t.Fatalf("Point cost %v > 4", Cost(c, pts))
	}
}

func TestHighDimensional(t *testing.T) {
	// 4-D cross polytope vertices: median is the origin.
	pts := []geom.Point{
		pt(1, 0, 0, 0), pt(-1, 0, 0, 0),
		pt(0, 1, 0, 0), pt(0, -1, 0, 0),
		pt(0, 0, 1, 0), pt(0, 0, -1, 0),
		pt(0, 0, 0, 1), pt(0, 0, 0, -1),
	}
	set := Solve(pts, Options{})
	if !set.Seg.A.ApproxEqual(geom.Zero(4), 1e-8) {
		t.Fatalf("cross polytope median = %v, want origin", set.Seg.A)
	}
}

func TestCollinearIn2D(t *testing.T) {
	// Collinear points along a diagonal; odd count.
	pts := []geom.Point{pt(0, 0), pt(1, 1), pt(2, 2), pt(3, 3), pt(10, 10)}
	set := Solve(pts, Options{})
	if !set.Unique {
		t.Fatal("odd collinear should be unique")
	}
	if !set.Seg.A.ApproxEqual(pt(2, 2), 1e-8) {
		t.Fatalf("collinear median = %v, want (2,2)", set.Seg.A)
	}
}
