//go:build race

package median

// raceEnabled reports that this binary was built with -race. The
// allocation-budget tests skip themselves then: the race runtime
// instruments every memory access and allocates shadow state of its
// own, so testing.AllocsPerRun's global-malloc delta no longer
// measures the code under test.
const raceEnabled = true
