package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// e7 validates Theorem 7: in the Answer-First variant with augmentation,
// MtC is O((1/δ^{3/2})·r/D)-competitive for r ≥ D — the ratio picks up a
// factor r/D compared to Move-First, but stays independent of T. Two
// checks: ratio vs r at fixed D and δ (slope ≈ 1), and Move-First vs
// Answer-First on the same workloads (overhead factor ≈ r/D).
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Answer-First MtC with augmentation: ratio ~ (r/D)·(1/δ^{3/2})",
		Claim: "Theorem 7: MtC is O((1/δ^{3/2})·r/D)-competitive in the Answer-First variant (r ≥ D)",
		Run:   runE7,
	}
}

func runE7(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	rs := []int{2, 4, 8, 16}
	D := 2.0
	delta := 0.5
	T := cfg.scaleT(400)

	table := traceio.Table{Columns: []string{"r", "order", "ratio_hi", "ratio_lo", "overhead_vs_movefirst"}}

	// order codes: 0 = move-first, 1 = answer-first.
	type point struct {
		r     int
		order core.ServeOrder
	}
	var points []point
	for _, r := range rs {
		points = append(points, point{r: r, order: core.MoveFirst})
		points = append(points, point{r: r, order: core.AnswerFirst})
	}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, rng *xrand.Rand) ratioBracket {
		p := points[i/cfg.Seeds]
		c := core.Config{Dim: 1, D: D, M: 1, Delta: delta, Order: p.order}
		in := workload.Hotspot{Half: 20, Sigma: 1, Requests: p.r}.Generate(rng, c, T)
		res := sim.MustRun(in, core.NewMtC(), sim.RunOptions{})
		est, err := offline.Best(in, offline.Options{})
		if err != nil {
			panic(err)
		}
		return bracketOf(res.Cost.Total(), est)
	})

	// Collect means keyed by (r, order).
	mean := map[point]float64{}
	lo := map[point]float64{}
	for pi, p := range points {
		var his, los []float64
		for _, b := range results[pi*cfg.Seeds : (pi+1)*cfg.Seeds] {
			his = append(his, b.Hi)
			los = append(los, b.Lo)
		}
		mean[p] = stats.Summarize(his).Mean
		lo[p] = stats.Summarize(los).Mean
	}
	for _, r := range rs {
		mf := point{r: r, order: core.MoveFirst}
		af := point{r: r, order: core.AnswerFirst}
		table.Add(float64(r), 0, mean[mf], lo[mf], 1)
		table.Add(float64(r), 1, mean[af], lo[af], mean[af]/mean[mf])
	}

	var findings []string
	findings = append(findings, "order codes: 0 = move-first, 1 = answer-first")
	var xs, ys []float64
	for _, row := range table.Rows {
		if row[1] == 1 {
			xs = append(xs, row[0])
			ys = append(ys, row[2])
		}
	}
	fit := stats.LogLogSlope(xs, ys)
	findings = append(findings, fmt.Sprintf("answer-first: ratio ~ r^%.3f (R²=%.3f); paper allows up to exponent 1", fit.Slope, fit.R2))

	// Adversarial corroboration: the Theorem-3 construction run with
	// augmentation still scales with r.
	advRatios := sim.Parallel(len(rs)*cfg.Seeds, cfg.Seed+1, func(i int, rng *xrand.Rand) float64 {
		r := rs[i/cfg.Seeds]
		g := adversary.Theorem3(adversary.Theorem3Params{T: T, D: D, M: 1, R: r, Dim: 1, Delta: delta}, rng)
		res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
		return sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
	})
	var ax, ay []float64
	for ri, r := range rs {
		s := stats.Summarize(advRatios[ri*cfg.Seeds : (ri+1)*cfg.Seeds])
		ax = append(ax, float64(r))
		ay = append(ay, s.Mean)
	}
	fit = stats.LogLogSlope(ax, ay)
	findings = append(findings, fmt.Sprintf("adversarial answer-first (augmented): ratio ~ r^%.3f (R²=%.3f)", fit.Slope, fit.R2))
	return Result{ID: "E7", Title: e7().Title, Claim: e7().Claim, Table: table, Findings: findings}
}
