package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ratioBracket is the measured competitive ratio of one run, bracketed by
// the OPT estimate: Hi = ALG/OPT_lower ≥ true ratio ≥ Lo = ALG/OPT_upper.
type ratioBracket struct {
	Hi, Lo float64
}

// bracketOf measures MtC (or any algorithm) against the OPT bracket.
func bracketOf(algCost float64, est offline.Estimate) ratioBracket {
	return ratioBracket{
		Hi: sim.Ratio(algCost, est.Lower),
		Lo: sim.Ratio(algCost, est.Upper),
	}
}

// e4 validates the line half of Theorem 4: with (1+δ)m augmentation MtC is
// O(1/δ)-competitive on ℝ, independent of T. Sweep 1: δ on adversarial and
// hotspot workloads (ratio·δ should stay bounded). Sweep 2: T at fixed δ
// (log–log slope ≈ 0 — the ratio does not grow with T).
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "MtC on the line: ratio ≤ O(1/δ), independent of T",
		Claim: "Theorem 4 (d=1): MtC is O((1/δ)·Rmax/Rmin)-competitive with (1+δ)m augmentation",
		Run:   runE4,
	}
}

// Workload codes used in E4/E5 tables.
const (
	wlAdversarial = 0
	wlHotspot     = 1
)

func runE4(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	deltas := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	fixedDelta := 0.25
	Ts := []int{200, 800, 3200}

	type point struct {
		wl    int
		delta float64
		T     int
	}
	var points []point
	for _, d := range deltas {
		points = append(points, point{wl: wlAdversarial, delta: d, T: cfg.scaleT(cyclesT(d, 4))})
		points = append(points, point{wl: wlHotspot, delta: d, T: cfg.scaleT(600)})
	}
	for _, T := range Ts {
		points = append(points, point{wl: wlHotspot, delta: fixedDelta, T: cfg.scaleT(T)})
	}

	table := traceio.Table{Columns: []string{"wl", "delta", "T", "ratio_hi", "ratio_lo", "ratio_hi_x_delta"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) ratioBracket {
		p := points[i/cfg.Seeds]
		var in *core.Instance
		opts := offline.Options{}
		if p.wl == wlAdversarial {
			g := adversary.Theorem2(adversary.Theorem2Params{
				T: p.T, D: 1, M: 1, Delta: p.delta, Rmin: 1, Rmax: 1, Dim: 1,
			}, r)
			in = g.Instance
			opts.Witness = g.Witness
		} else {
			c := core.Config{Dim: 1, D: 2, M: 1, Delta: p.delta, Order: core.MoveFirst}
			in = workload.Hotspot{Half: 25, Sigma: 1.5}.Generate(r, c, p.T)
		}
		res := sim.MustRun(in, core.NewMtC(), sim.RunOptions{})
		est, err := offline.Best(in, opts)
		if err != nil {
			panic(err)
		}
		return bracketOf(res.Cost.Total(), est)
	})

	split := func(pi int) (hi, lo []float64) {
		for _, b := range results[pi*cfg.Seeds : (pi+1)*cfg.Seeds] {
			hi = append(hi, b.Hi)
			lo = append(lo, b.Lo)
		}
		return
	}
	for pi, p := range points {
		hi, lo := split(pi)
		sh, sl := stats.Summarize(hi), stats.Summarize(lo)
		table.Add(float64(p.wl), p.delta, float64(p.T), sh.Mean, sl.Mean, sh.Mean*p.delta)
	}

	var findings []string
	findings = append(findings, "wl codes: 0 = adversarial (Theorem 2 instance, Rmin=Rmax=1), 1 = drifting hotspot")
	// Flatness in T at fixed delta (hotspot rows with delta == fixedDelta
	// and T in the sweep).
	var tx, ty []float64
	for _, row := range table.Rows {
		if row[0] == wlHotspot && row[1] == fixedDelta {
			tx = append(tx, row[2])
			ty = append(ty, row[3])
		}
	}
	fit := stats.LogLogSlope(tx, ty)
	findings = append(findings, fmt.Sprintf("fixed δ=%.3g: ratio ~ T^%.3f (R²=%.3f); paper predicts exponent 0 (T-independence)", fixedDelta, fit.Slope, fit.R2))
	// δ dependence on the adversarial rows.
	var dx, dy []float64
	for _, row := range table.Rows {
		if row[0] == wlAdversarial {
			dx = append(dx, row[1])
			dy = append(dy, row[3])
		}
	}
	fit = stats.LogLogSlope(dx, dy)
	findings = append(findings, fmt.Sprintf("adversarial: ratio ~ δ^%.3f (R²=%.3f); upper bound predicts exponent ≥ −1", fit.Slope, fit.R2))
	return Result{ID: "E4", Title: e4().Title, Claim: e4().Claim, Table: table, Findings: findings}
}
