package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e3 validates Theorem 3: in the Answer-First variant the ratio is Ω(r/D)
// even with a fixed request count r per step (and regardless of
// augmentation). MtC runs on the two-step cycle construction.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Answer-First lower bound: ratio grows like r/D",
		Claim: "Theorem 3: Ω(r/D) for Answer-First, fixed r per step",
		Run:   runE3,
	}
}

func runE3(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	rs := []int{1, 2, 4, 8, 16, 32}
	Ds := []float64{1, 4}
	T := cfg.scaleT(400)

	type point struct {
		r int
		D float64
	}
	var points []point
	for _, d := range Ds {
		for _, r := range rs {
			points = append(points, point{r: r, D: d})
		}
	}
	table := traceio.Table{Columns: []string{"D", "r", "ratio_mean", "ratio_stderr", "r_over_D"}}

	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, rng *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		g := adversary.Theorem3(adversary.Theorem3Params{T: T, D: p.D, M: 1, R: p.r, Dim: 1}, rng)
		res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
		return sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
	})

	for pi, p := range points {
		s := stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
		table.Add(p.D, float64(p.r), s.Mean, s.StdErr, float64(p.r)/p.D)
	}
	var findings []string
	for _, d := range Ds {
		var xs, ys []float64
		for _, row := range table.Rows {
			if row[0] == d {
				xs = append(xs, row[1])
				ys = append(ys, row[2])
			}
		}
		fit := stats.LogLogSlope(xs, ys)
		findings = append(findings, fmt.Sprintf("D=%g: ratio ~ r^%.3f (R²=%.3f); paper predicts exponent 1 (for r ≳ D)", d, fit.Slope, fit.R2))
	}
	return Result{ID: "E3", Title: e3().Title, Claim: e3().Claim, Table: table, Findings: findings}
}
