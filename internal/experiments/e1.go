package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e1 validates Theorem 1: without augmentation the competitive ratio of
// any online algorithm grows as Ω(√T/D). MtC is run on the Theorem-1
// construction; ratios are measured against the adversary's witness (an
// upper bound on OPT, so measured ratios under-state the truth — the
// conservative direction for a lower-bound claim).
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Lower bound without augmentation: ratio grows like √T/D",
		Claim: "Theorem 1: every online algorithm is Ω(√T/D)-competitive; expected log–log slope in T ≈ 0.5",
		Run:   runE1,
	}
}

func runE1(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	Ds := []float64{1, 4, 16}
	Ts := []int{100, 400, 1600, 6400}

	type point struct {
		D float64
		T int
	}
	var points []point
	for _, d := range Ds {
		for _, t := range Ts {
			points = append(points, point{D: d, T: cfg.scaleT(t)})
		}
	}
	table := traceio.Table{Columns: []string{"D", "T", "ratio_mean", "ratio_stderr", "sqrtT_over_D"}}
	var findings []string

	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		g := adversary.Theorem1(adversary.Theorem1Params{T: p.T, D: p.D, M: 1, Dim: 1}, r)
		res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
		return sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
	})

	for pi, p := range points {
		s := stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
		table.Add(p.D, float64(p.T), s.Mean, s.StdErr, math.Sqrt(float64(p.T))/p.D)
	}
	// Fit the growth exponent per D.
	for _, d := range Ds {
		var xs, ys []float64
		for ri, row := range table.Rows {
			_ = ri
			if row[0] == d {
				xs = append(xs, row[1])
				ys = append(ys, row[2])
			}
		}
		fit := stats.LogLogSlope(xs, ys)
		findings = append(findings, fmt.Sprintf("D=%g: ratio ~ T^%.3f (R²=%.3f); paper predicts exponent 0.5", d, fit.Slope, fit.R2))
	}
	return Result{ID: "E1", Title: e1().Title, Claim: e1().Claim, Table: table, Findings: findings}
}
