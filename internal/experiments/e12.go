package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// e12 explores the paper's future-work extension (Section 6): k mobile
// servers with capped movement. On a clustered workload with c demand
// sites, the fleet MtC's cost should fall as k approaches c and flatten
// beyond, while a lazy fleet stays expensive.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Extension: k mobile servers (future work §6)",
		Claim: "Fleet MtC cost decreases with k up to the number of demand clusters; capped movement still binds per server",
		Run:   runE12,
	}
}

func runE12(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	ks := []int{1, 2, 4, 8}
	clusters := 4
	T := cfg.scaleT(600)

	type point struct {
		k    int
		lazy bool
	}
	var points []point
	for _, k := range ks {
		points = append(points, point{k: k, lazy: false})
		points = append(points, point{k: k, lazy: true})
	}
	table := traceio.Table{Columns: []string{"k", "alg", "cost_mean", "cost_stderr"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		fleetCfg := core.Config{Dim: 2, D: 2, M: 1, Delta: 0, Order: core.MoveFirst, K: p.k}
		wlStream := xrand.NewStream(cfg.Seed^0xfeed, uint64(i%cfg.Seeds))
		src := workload.Clusters{K: clusters, Sigma: 0.8, SwitchProb: 0.03, Requests: 2}.
			Generate(wlStream, fleetCfg, T)
		in := &core.FleetInstance{Config: fleetCfg, Starts: multi.SpreadStarts(fleetCfg, 8), Steps: src.Steps}
		var alg core.FleetAlgorithm
		if p.lazy {
			alg = multi.NewLazyK()
		} else {
			alg = multi.NewMtCK()
		}
		res, err := multi.Run(in, alg, 0)
		if err != nil {
			panic(err)
		}
		return res.Cost.Total()
	})
	means := make([]stats.Summary, len(points))
	for pi := range points {
		means[pi] = stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
	}
	for pi, p := range points {
		algCode := 0.0
		if p.lazy {
			algCode = 1
		}
		table.Add(float64(p.k), algCode, means[pi].Mean, means[pi].StdErr)
	}
	findings := []string{
		fmt.Sprintf("alg codes: 0=MtC-k 1=Lazy-k; workload has %d clusters", clusters),
	}
	// Cost at k=1 vs k=clusters for MtC-k.
	var c1, ck float64
	for pi, p := range points {
		if !p.lazy && p.k == 1 {
			c1 = means[pi].Mean
		}
		if !p.lazy && p.k == clusters {
			ck = means[pi].Mean
		}
	}
	findings = append(findings, fmt.Sprintf("MtC-k: k=%d costs %.2f× less than k=1 (%.4g vs %.4g)", clusters, c1/ck, ck, c1))
	return Result{ID: "E12", Title: e12().Title, Claim: e12().Claim, Table: table, Findings: findings}
}
