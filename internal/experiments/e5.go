package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// e5 validates the plane half of Theorem 4: MtC is O(1/δ^{3/2})-competitive
// in ℝ². The 2-D OPT bracket comes from the plane grid DP (certified lower
// bound) and greedy/descent (upper bound), so instances are kept moderate.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "MtC in the plane: ratio ≤ O(1/δ^{3/2}), independent of T",
		Claim: "Theorem 4 (d=2): MtC is O((1/δ^{3/2})·Rmax/Rmin)-competitive with (1+δ)m augmentation",
		Run:   runE5,
	}
}

func runE5(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	deltas := []float64{1, 0.5, 0.25, 0.125}
	fixedDelta := 0.25
	Ts := []int{100, 200, 400}

	type point struct {
		delta float64
		T     int
	}
	var points []point
	for _, d := range deltas {
		points = append(points, point{delta: d, T: cfg.scaleT(250)})
	}
	for _, T := range Ts {
		points = append(points, point{delta: fixedDelta, T: cfg.scaleT(T)})
	}

	table := traceio.Table{Columns: []string{"delta", "T", "ratio_hi", "ratio_lo", "ratio_hi_x_delta32"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) ratioBracket {
		p := points[i/cfg.Seeds]
		c := core.Config{Dim: 2, D: 2, M: 1, Delta: p.delta, Order: core.MoveFirst}
		in := workload.Hotspot{Half: 8, Sigma: 1.2}.Generate(r, c, p.T)
		res := sim.MustRun(in, core.NewMtC(), sim.RunOptions{})
		est, err := offline.Best(in, offline.Options{CellsPerM: 3, MaxCells: 20000})
		if err != nil {
			panic(err)
		}
		return bracketOf(res.Cost.Total(), est)
	})

	for pi, p := range points {
		var hi, lo []float64
		for _, b := range results[pi*cfg.Seeds : (pi+1)*cfg.Seeds] {
			hi = append(hi, b.Hi)
			lo = append(lo, b.Lo)
		}
		sh, sl := stats.Summarize(hi), stats.Summarize(lo)
		table.Add(p.delta, float64(p.T), sh.Mean, sl.Mean, sh.Mean*math.Pow(p.delta, 1.5))
	}

	var findings []string
	var tx, ty []float64
	for _, row := range table.Rows {
		if row[0] == fixedDelta {
			tx = append(tx, row[1])
			ty = append(ty, row[2])
		}
	}
	fit := stats.LogLogSlope(tx, ty)
	findings = append(findings, fmt.Sprintf("fixed δ=%.3g: ratio ~ T^%.3f (R²=%.3f); paper predicts exponent 0 (T-independence)", fixedDelta, fit.Slope, fit.R2))
	var dx, dy []float64
	for _, row := range table.Rows {
		if row[1] == float64(cfg.scaleT(250)) {
			dx = append(dx, row[0])
			dy = append(dy, row[2])
		}
	}
	fit = stats.LogLogSlope(dx, dy)
	findings = append(findings, fmt.Sprintf("ratio ~ δ^%.3f (R²=%.3f); upper bound allows exponent as steep as −1.5", fit.Slope, fit.R2))
	return Result{ID: "E5", Title: e5().Title, Claim: e5().Claim, Table: table, Findings: findings}
}
