package experiments

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e6 numerically verifies Lemma 6 — the geometric heart of the
// competitive analysis, illustrated by Figures 1 and 2 of the paper: for
// the collinear configuration P_Alg —a1→ P'_Alg —a2→ c and any P'_Opt
// with s2 = d(P'_Opt, c), the claim is
//
//	s2 ≤ (√δ/(1+δ/2))·a2  ⇒  h − q ≥ ((1+δ/2)/(1+δ))·a1,
//
// where h = d(P'_Opt, P_Alg) and q = d(P'_Opt, P'_Alg).
//
// Reproduction finding: the literal statement is off by a sub-1% margin.
// The proof takes the extremal placement of P'_Opt to be at 90° between s2
// and a2, but minimizing h−q over the s2-sphere analytically puts the
// worst case at cos θ = −s2(a1+2a2)/(2(a1+a2)a2) ≈ −s2/a2; in the regime
// a2 ≫ a1 the exact bound is h−q ≥ √(1−(s2/a2)²)·a1, which is slightly
// weaker than the claimed a1/√(1+(s2/a2)²). Tightening the premise
// coefficient from √δ/(1+δ/2) to √δ/(1+δ) restores the stated conclusion
// with strictly positive margin (verified here); all downstream O(·)
// results are unaffected since the paper does not optimize constants.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Lemma 6 / Figures 1–2: geometric progress bound (literal vs corrected premise)",
		Claim: "Lemma 6: s2 ≤ √δ/(1+δ/2)·a2 ⇒ h−q ≥ (1+δ/2)/(1+δ)·a1 (literal; corrected premise uses √δ/(1+δ))",
		Run:   runE6,
	}
}

// lemma6Margin returns h−q minus the required bound for one sampled
// configuration with the given premise coefficient.
func lemma6Margin(r *xrand.Rand, delta, premiseCoeff float64) float64 {
	dim := 2 + r.IntN(2) // exercise ℝ² and ℝ³
	u := randUnitVec(r, dim)
	a1 := r.Range(0.01, 10)
	// Log-uniform a2 so the critical regime a2 ≫ a1 is covered.
	a2 := math.Pow(10, r.Range(-2, 3))
	pAlg := randVec(r, dim, 5)
	pAlgNext := pAlg.Add(u.Scale(a1))
	c := pAlg.Add(u.Scale(a1 + a2))
	// Bias sampling toward the premise boundary where the minimum lives.
	frac := 1 - r.Float64()*r.Float64()
	s2 := frac * premiseCoeff * a2
	pOptNext := c.Add(randUnitVec(r, dim).Scale(s2))
	h := geom.Dist(pOptNext, pAlg)
	q := geom.Dist(pOptNext, pAlgNext)
	need := (1 + delta/2) / (1 + delta)
	return (h - q) - need*a1
}

func runE6(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	deltas := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	samplesPerDelta := cfg.scaleT(200000)

	table := traceio.Table{Columns: []string{
		"delta", "samples",
		"paper_violations", "paper_min_margin",
		"fixed_violations", "fixed_min_margin",
	}}
	type outcome struct {
		violPaper, violFixed int
		minPaper, minFixed   float64
	}
	results := sim.Parallel(len(deltas), cfg.Seed, func(i int, r *xrand.Rand) outcome {
		delta := deltas[i]
		paperCoeff := math.Sqrt(delta) / (1 + delta/2)
		fixedCoeff := math.Sqrt(delta) / (1 + delta)
		out := outcome{minPaper: math.Inf(1), minFixed: math.Inf(1)}
		for k := 0; k < samplesPerDelta; k++ {
			mp := lemma6Margin(r, delta, paperCoeff)
			if mp < out.minPaper {
				out.minPaper = mp
			}
			if mp < -1e-9 {
				out.violPaper++
			}
			mf := lemma6Margin(r, delta, fixedCoeff)
			if mf < out.minFixed {
				out.minFixed = mf
			}
			if mf < -1e-9 {
				out.violFixed++
			}
		}
		return out
	})
	totalFixedViolations := 0
	totalPaperViolations := 0
	for i, d := range deltas {
		o := results[i]
		table.Add(d, float64(samplesPerDelta),
			float64(o.violPaper), o.minPaper,
			float64(o.violFixed), o.minFixed)
		totalFixedViolations += o.violFixed
		totalPaperViolations += o.violPaper
	}
	findings := []string{
		"the literal Lemma 6 premise √δ/(1+δ/2) admits rare sub-1% violations in the regime a2 ≫ a1 (worst case at cosθ ≈ −s2/a2, not the 90° configuration used in the proof)",
		fmt.Sprintf("literal statement: %d violations across all δ (expected: small but nonzero)", totalPaperViolations),
	}
	if totalFixedViolations == 0 {
		findings = append(findings, "corrected premise √δ/(1+δ): zero violations — conclusion restored; downstream O(·) bounds unaffected")
	} else {
		findings = append(findings, fmt.Sprintf("corrected premise FAILED with %d violations — investigate", totalFixedViolations))
	}
	return Result{ID: "E6", Title: e6().Title, Claim: e6().Claim, Table: table, Findings: findings}
}

func randUnitVec(r *xrand.Rand, dim int) geom.Point {
	for {
		v := make(geom.Point, dim)
		for i := range v {
			v[i] = r.Norm()
		}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}

func randVec(r *xrand.Rand, dim int, scale float64) geom.Point {
	v := make(geom.Point, dim)
	for i := range v {
		v[i] = r.Range(-scale, scale)
	}
	return v
}
