package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e14 probes the paper's open problem (Section 6): in the plane the upper
// bound for MtC is O(1/δ^{3/2}) but the lower bound is Ω(1/δ), and the
// authors conjecture the gap closes toward the lower bound. Three
// genuinely planar adversarial constructions (fresh random escape
// directions, perpendicular zigzags, and perpendicular request offsets
// that plant the Lemma-6 worst-case geometry) attack MtC; if no style
// pushes the δ-exponent of the measured ratio below −1, the experiment
// supports the Θ(1/δ) conjecture.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Open problem probe: is MtC's 2-D ratio Θ(1/δ) or Θ(1/δ^{3/2})?",
		Claim: "Conjecture (§6): the planar gap closes toward the Ω(1/δ) lower bound — no planar construction should force a δ-exponent below −1",
		Run:   runE14,
	}
}

func runE14(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	styles := []adversary.PlanarStyle{
		adversary.StyleRandomDir,
		adversary.StyleZigzag,
		adversary.StylePerpOffset,
	}
	deltas := []float64{1, 0.5, 0.25, 0.125, 0.0625}

	type point struct {
		style adversary.PlanarStyle
		delta float64
	}
	var points []point
	for _, s := range styles {
		for _, d := range deltas {
			points = append(points, point{style: s, delta: d})
		}
	}
	table := traceio.Table{Columns: []string{"style", "delta", "T", "ratio_mean", "ratio_x_delta", "ratio_x_delta32"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		T := cfg.scaleT(cyclesT(p.delta, 4))
		g := adversary.Planar(adversary.PlanarParams{
			T: T, D: 1, M: 1, Delta: p.delta, Style: p.style,
		}, r)
		res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
		// OPT upper bound: witness refined by descent (grid DP is
		// impractical on the T·m-sized arena these instances roam).
		est, err := offline.Best(g.Instance, offline.Options{Witness: g.Witness, SkipDP: true, Sweeps: 3})
		if err != nil {
			panic(err)
		}
		return sim.Ratio(res.Cost.Total(), est.Upper)
	})
	for pi, p := range points {
		s := stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
		T := float64(cfg.scaleT(cyclesT(p.delta, 4)))
		d := p.delta
		table.Add(float64(p.style), d, T, s.Mean, s.Mean*d, s.Mean*math.Pow(d, 1.5))
	}
	var findings []string
	findings = append(findings, "style codes: 0=random-dir 1=zigzag 2=perp-offset (plants the Lemma-6 worst-case geometry)")
	for _, st := range styles {
		var xs, ys []float64
		for _, row := range table.Rows {
			if int(row[0]) == int(st) {
				xs = append(xs, row[1])
				ys = append(ys, row[3])
			}
		}
		fit := stats.LogLogSlope(xs, ys)
		verdict := "consistent with the Θ(1/δ) conjecture"
		if fit.Slope < -1.15 {
			verdict = "EXCEEDS 1/δ — evidence against the conjecture"
		}
		findings = append(findings, fmt.Sprintf("style %s: ratio ~ δ^%.3f (R²=%.3f) — %s", st, fit.Slope, fit.R2, verdict))
	}
	return Result{ID: "E14", Title: e14().Title, Claim: e14().Claim, Table: table, Findings: findings}
}
