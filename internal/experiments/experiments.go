// Package experiments defines the reproduction suite E1–E12: one
// experiment per theorem/lemma of the paper (plus baselines, ablations,
// and the multi-server extension). Each experiment runs a parameter sweep
// in parallel, aggregates ratios over seeds, and emits a table whose shape
// mirrors the corresponding claim — growth exponents for lower bounds,
// flat curves for upper bounds.
//
// The same experiments back the testing.B benchmarks in the repository
// root (one per table) and the cmd/mobbench binary.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/traceio"
)

// RunConfig controls an experiment run.
type RunConfig struct {
	// Seed is the base seed; all job streams derive from it.
	Seed uint64
	// Seeds is the number of repetitions per parameter point. Default 16.
	Seeds int
	// Scale multiplies the sequence lengths (0 < Scale ≤ 1 shrinks the
	// experiment for quick runs). Default 1.
	Scale float64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Seeds <= 0 {
		c.Seeds = 16
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// scaleT applies the run scale with a floor.
func (c RunConfig) scaleT(t int) int {
	v := int(float64(t) * c.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Claim restates the paper's claim being validated.
	Claim string
	// Table holds the measured rows.
	Table traceio.Table
	// Findings are derived quantities (fitted slopes, pass/fail notes).
	Findings []string
}

// Experiment couples metadata with a runner.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg RunConfig) Result
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(),
		e8(), e9(), e10(), e11(), e12(), e13(), e14(),
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RenderText formats a Result as an aligned text table with findings.
func RenderText(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", res.ID, res.Title)
	fmt.Fprintf(&b, "claim: %s\n", res.Claim)

	widths := make([]int, len(res.Table.Columns))
	cells := make([][]string, len(res.Table.Rows))
	for i, col := range res.Table.Columns {
		widths[i] = len(col)
	}
	for r, row := range res.Table.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := fmt.Sprintf("%.4g", v)
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(res.Table.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(&b, "finding: %s\n", f)
	}
	return b.String()
}
