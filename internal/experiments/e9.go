package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/agent"
	"repro/internal/geom"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e9 validates Theorem 10 and Corollary 9 for the Moving Client variant:
//
//   - Theorem 10: with m_s = m_a and NO augmentation, Follow-MtC is
//     O(1)-competitive — ratios stay flat and small across T and across
//     trajectory families.
//   - Corollary 9: even against the fast-agent adversary of Theorem 8,
//     augmenting the server to (1+δ)m_s with δ ≥ ε restores a
//     T-independent ratio.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Moving Client upper bounds: Follow-MtC is O(1) when m_s ≥ m_a; augmentation tames fast agents",
		Claim: "Theorem 10: O(1) without augmentation for m_s = m_a; Corollary 9: O(1/δ^{3/2}) with (1+δ)m_s",
		Run:   runE9,
	}
}

// trajectory codes for the E9 table.
const (
	trWalk = iota
	trDrift
	trCommuter
	trPatrol
	trFastAgentAugmented
)

func runE9(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	Ts := []int{200, 800, 3200}
	trajs := []int{trWalk, trDrift, trCommuter, trPatrol, trFastAgentAugmented}

	type point struct {
		traj int
		T    int
	}
	var points []point
	for _, tr := range trajs {
		for _, T := range Ts {
			points = append(points, point{traj: tr, T: cfg.scaleT(T)})
		}
	}
	table := traceio.Table{Columns: []string{"traj", "T", "ratio_hi", "ratio_lo"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) ratioBracket {
		p := points[i/cfg.Seeds]
		var in *agent.Instance
		var witness []geom.Point
		switch p.traj {
		case trFastAgentAugmented:
			// Corollary 9: fast agent (ε = 0.5) vs augmented server
			// (δ = 0.5 ≥ ε restores the server's ability to keep up).
			g := adversary.Theorem8(adversary.Theorem8Params{T: p.T, D: 1, MS: 1, Eps: 0.5, Dim: 1}, r)
			in = g.Instance
			in.Config.Delta = 0.5
			witness = g.Witness
		default:
			cfgA := agent.Config{Dim: 2, D: 2, MS: 1, MA: 1, Delta: 0}
			origin := geom.NewPoint(0, 0)
			var path []geom.Point
			switch p.traj {
			case trWalk:
				path = agent.RandomWalk(r, origin, p.T, cfgA.MA)
			case trDrift:
				path = agent.Drift(r, origin, p.T, cfgA.MA, 0.3)
			case trCommuter:
				target := geom.NewPoint(r.Range(5, 15), r.Range(-10, 10))
				path = agent.Commuter(origin, target, p.T, cfgA.MA)
			case trPatrol:
				path = agent.Patrol(origin, geom.NewPoint(5, 0), 6, p.T, cfgA.MA)
			}
			in = &agent.Instance{Config: cfgA, Start: origin, Path: path}
		}
		cin := in.ToCore()
		res, err := sim.Run(cin, agent.Adapt(in, agent.NewFollow()), sim.RunOptions{})
		if err != nil {
			panic(err)
		}
		// OPT bracket: 2-D instances use descent/greedy upper bounds and
		// the serve-only lower bound (the drift can leave a huge bounding
		// box, so grid DP is skipped); the 1-D fast-agent rows use the
		// witness.
		est, err := offline.Best(cin, offline.Options{Witness: witness, SkipDP: cin.Config.Dim != 1})
		if err != nil {
			panic(err)
		}
		return bracketOf(res.Cost.Total(), est)
	})
	for pi, p := range points {
		var hi, lo []float64
		for _, b := range results[pi*cfg.Seeds : (pi+1)*cfg.Seeds] {
			hi = append(hi, b.Hi)
			lo = append(lo, b.Lo)
		}
		table.Add(float64(p.traj), float64(p.T), stats.Summarize(hi).Mean, stats.Summarize(lo).Mean)
	}
	var findings []string
	findings = append(findings, "traj codes: 0=walk 1=drift 2=commuter 3=patrol (all m_s=m_a, δ=0); 4=fast agent ε=0.5 with δ=0.5 (Corollary 9)")
	for _, tr := range trajs {
		var xs, ys []float64
		for _, row := range table.Rows {
			if int(row[0]) == tr {
				xs = append(xs, row[1])
				ys = append(ys, row[3]) // ratio_lo: ALG/upper-bound — safe to read flatness from
			}
		}
		fit := stats.LogLogSlope(xs, ys)
		findings = append(findings, fmt.Sprintf("traj=%d: ratio ~ T^%.3f (R²=%.3f); constant competitiveness predicts exponent ≈ 0", tr, fit.Slope, fit.R2))
	}
	return Result{ID: "E9", Title: e9().Title, Claim: e9().Claim, Table: table, Findings: findings}
}
