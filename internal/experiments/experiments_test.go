package experiments

import (
	"math"
	"strings"
	"testing"
)

// quickCfg shrinks every experiment for CI-speed smoke runs.
func quickCfg() RunConfig { return RunConfig{Seed: 1, Seeds: 3, Scale: 0.08} }

func TestRegistryCompleteAndOrdered(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(reg))
	}
	for i, e := range reg {
		wantID := i + 1
		if idOrder(e.ID) != wantID {
			t.Fatalf("position %d has ID %s", i, e.ID)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.ID != "E3" {
		t.Fatalf("ByID(E3) = %v, %v", e.ID, err)
	}
	if _, err := ByID("e7"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// TestAllExperimentsSmoke runs every experiment at a tiny scale and checks
// structural invariants of the results.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res := e.Run(quickCfg())
			if res.ID != e.ID {
				t.Fatalf("result ID %q != %q", res.ID, e.ID)
			}
			if len(res.Table.Columns) == 0 || len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for ri, row := range res.Table.Rows {
				if len(row) != len(res.Table.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", ri, len(row), len(res.Table.Columns))
				}
				for ci, v := range row {
					if math.IsInf(v, 0) {
						t.Fatalf("row %d col %s is infinite", ri, res.Table.Columns[ci])
					}
				}
			}
			if len(res.Findings) == 0 {
				t.Fatal("no findings")
			}
			out := RenderText(res)
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "claim:") {
				t.Fatalf("render missing headers:\n%s", out)
			}
		})
	}
}

// TestE6CorrectedLemmaHolds gives the Lemma-6 check a larger sample than
// the smoke run: the corrected premise (√δ/(1+δ)) must have zero
// violations. The paper's literal premise is known to admit rare sub-1%
// violations (see e6.go); that column is informational, not asserted.
func TestE6CorrectedLemmaHolds(t *testing.T) {
	e, err := ByID("E6")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(RunConfig{Seed: 7, Seeds: 1, Scale: 0.3})
	for _, row := range res.Table.Rows {
		if row[4] != 0 {
			t.Fatalf("corrected Lemma 6 violated %v times at delta=%v", row[4], row[0])
		}
		if row[5] < -1e-9 {
			t.Fatalf("corrected min margin %v negative at delta=%v", row[5], row[0])
		}
	}
}

func TestRenderTextAligned(t *testing.T) {
	res := Result{
		ID: "EX", Title: "t", Claim: "c",
		Findings: []string{"f"},
	}
	res.Table.Columns = []string{"a", "longcolumn"}
	res.Table.Add(1, 2)
	out := RenderText(res)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[4], "finding:") {
		t.Fatalf("last line = %q", lines[4])
	}
}
