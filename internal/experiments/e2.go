package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e2 validates Theorem 2: with augmentation (1+δ)m the ratio is still
// Ω((1/δ)·Rmax/Rmin). Two sweeps: δ with Rmax=Rmin (ratio ∝ 1/δ), and
// Rmax/Rmin at fixed δ (ratio ∝ Rmax/Rmin).
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Lower bound with augmentation: ratio ~ (1/δ)·Rmax/Rmin",
		Claim: "Theorem 2: Ω((1/δ)·Rmax/Rmin) against (1+δ)m-augmented algorithms",
		Run:   runE2,
	}
}

func runE2(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	deltas := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	imbalances := []int{1, 2, 4, 8}
	fixedDelta := 0.25

	type point struct {
		delta      float64
		rmin, rmax int
	}
	var points []point
	for _, d := range deltas {
		points = append(points, point{delta: d, rmin: 1, rmax: 1})
	}
	for _, im := range imbalances {
		points = append(points, point{delta: fixedDelta, rmin: 1, rmax: im})
	}

	// T: enough for several cycles at the smallest delta; the generator
	// truncates cleanly, so one size fits all points.
	table := traceio.Table{Columns: []string{"delta", "Rmax_over_Rmin", "T", "ratio_mean", "ratio_stderr", "ratio_x_delta"}}

	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		T := cfg.scaleT(cyclesT(p.delta, 4))
		g := adversary.Theorem2(adversary.Theorem2Params{
			T: T, D: 1, M: 1, Delta: p.delta, Rmin: p.rmin, Rmax: p.rmax, Dim: 1,
		}, r)
		res := sim.MustRun(g.Instance, core.NewMtC(), sim.RunOptions{})
		return sim.Ratio(res.Cost.Total(), g.WitnessCost().Total())
	})

	for pi, p := range points {
		s := stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
		T := float64(cfg.scaleT(cyclesT(p.delta, 4)))
		table.Add(p.delta, float64(p.rmax)/float64(p.rmin), T, s.Mean, s.StdErr, s.Mean*p.delta)
	}

	var findings []string
	// δ scaling: slope of ratio vs δ in log–log should be ≈ −1.
	var dx, dy []float64
	for _, row := range table.Rows {
		if row[1] == 1 {
			dx = append(dx, row[0])
			dy = append(dy, row[3])
		}
	}
	fit := stats.LogLogSlope(dx, dy)
	findings = append(findings, fmt.Sprintf("Rmax=Rmin: ratio ~ δ^%.3f (R²=%.3f); paper predicts exponent −1", fit.Slope, fit.R2))
	// Imbalance scaling at fixed δ.
	var ix, iy []float64
	for _, row := range table.Rows {
		if row[0] == fixedDelta && row[1] >= 1 {
			ix = append(ix, row[1])
			iy = append(iy, row[3])
		}
	}
	fit = stats.LogLogSlope(ix, iy)
	findings = append(findings, fmt.Sprintf("δ=%.3g: ratio ~ (Rmax/Rmin)^%.3f (R²=%.3f); paper predicts exponent 1", fixedDelta, fit.Slope, fit.R2))
	return Result{ID: "E2", Title: e2().Title, Claim: e2().Claim, Table: table, Findings: findings}
}

// cyclesT returns a length covering the given number of Theorem-2 cycles
// at delta (x ≈ 2/δ, phase B ≈ x/δ).
func cyclesT(delta float64, cycles int) int {
	x := int(2/delta) + 1
	phaseB := int(float64(x)/delta) + 1
	return cycles * (x + phaseB)
}
