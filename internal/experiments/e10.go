package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// e10 compares MtC against the page-migration baselines (Lazy, Follow,
// Greedy, Move-To-Min, Coin-Flip) across the standard workloads. Costs are
// normalized per workload by MtC's mean cost, so a cell > 1 means "worse
// than MtC".
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Baseline comparison: MtC vs capped page-migration algorithms",
		Claim: "MtC tracks drifting/clustered demand without over-reacting; Lazy and Follow degrade on moving workloads",
		Run:   runE10,
	}
}

// algorithm codes in the E10/E11 tables follow the order of baseline.All:
// 0=MtC 1=Lazy 2=Follow 3=Greedy 4=Move-To-Min 5=Coin-Flip.
func algByCode(code int, r *xrand.Rand) core.Algorithm {
	return baseline.All(r)[code]
}

const numAlgs = 6

func runE10(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	wls := workload.Registry()
	T := cfg.scaleT(800)
	c := core.Config{Dim: 2, D: 4, M: 1, Delta: 0.5, Order: core.MoveFirst}

	type point struct {
		wl  int
		alg int
	}
	var points []point
	for wi := range wls {
		for a := 0; a < numAlgs; a++ {
			points = append(points, point{wl: wi, alg: a})
		}
	}
	table := traceio.Table{Columns: []string{"wl", "alg", "cost_mean", "cost_stderr", "vs_mtc"}}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, r *xrand.Rand) float64 {
		p := points[i/cfg.Seeds]
		// The workload stream must be identical across algorithms for a
		// paired comparison: derive it from the seed index only.
		wlStream := xrand.NewStream(cfg.Seed^0xabcdef, uint64(i%cfg.Seeds)*uint64(len(wls))+uint64(p.wl))
		in := wls[p.wl].Generate(wlStream, c, T)
		alg := algByCode(p.alg, r)
		res, err := sim.Run(in, alg, sim.RunOptions{})
		if err != nil {
			panic(err)
		}
		return res.Cost.Total()
	})

	means := make([]stats.Summary, len(points))
	for pi := range points {
		means[pi] = stats.Summarize(results[pi*cfg.Seeds : (pi+1)*cfg.Seeds])
	}
	mtcMean := map[int]float64{}
	for pi, p := range points {
		if p.alg == 0 {
			mtcMean[p.wl] = means[pi].Mean
		}
	}
	for pi, p := range points {
		table.Add(float64(p.wl), float64(p.alg), means[pi].Mean, means[pi].StdErr, means[pi].Mean/mtcMean[p.wl])
	}

	findings := []string{
		"wl codes: 0=uniform 1=hotspot 2=clusters 3=burst; alg codes: 0=MtC 1=Lazy 2=Follow 3=Greedy 4=Move-To-Min 5=Coin-Flip",
	}
	// Summarize who wins per workload.
	for wi, wl := range wls {
		best, bestCost := -1, 0.0
		var lazyRel float64
		for pi, p := range points {
			if p.wl != wi {
				continue
			}
			if best == -1 || means[pi].Mean < bestCost {
				best, bestCost = p.alg, means[pi].Mean
			}
			if p.alg == 1 {
				lazyRel = means[pi].Mean / mtcMean[wi]
			}
		}
		findings = append(findings, fmt.Sprintf("%s: best alg code %d; Lazy costs %.2f× MtC", wl.Name(), best, lazyRel))
	}
	return Result{ID: "E10", Title: e10().Title, Claim: e10().Claim, Table: table, Findings: findings}
}
