package experiments

import (
	"fmt"

	"repro/internal/asciiplot"
)

// plotSpec describes how to read a curve family out of a result table.
type plotSpec struct {
	title      string
	xCol, yCol int
	// groupCol < 0 plots a single series; otherwise one series per
	// distinct value of that column.
	groupCol   int
	groupLabel string
	logX, logY bool
	// filter optionally restricts rows.
	filter func(row []float64) bool
}

// plotSpecs maps experiment IDs to their natural visualization: growth
// curves for lower bounds (log–log), flatness curves for upper bounds.
var plotSpecs = map[string]plotSpec{
	"E1": {title: "E1: ratio vs T (log-log; slope 0.5 expected)",
		xCol: 1, yCol: 2, groupCol: 0, groupLabel: "D", logX: true, logY: true},
	"E2": {title: "E2: ratio vs delta (log-log; slope -1 expected)",
		xCol: 0, yCol: 3, groupCol: -1, logX: true, logY: true,
		filter: func(row []float64) bool { return row[1] == 1 }},
	"E3": {title: "E3: Answer-First ratio vs r (log-log; slope 1 expected)",
		xCol: 1, yCol: 2, groupCol: 0, groupLabel: "D", logX: true, logY: true},
	"E4": {title: "E4: line ratio vs delta, adversarial (log-log; at most slope -1)",
		xCol: 1, yCol: 3, groupCol: -1, logX: true, logY: true,
		filter: func(row []float64) bool { return row[0] == 0 }},
	"E5": {title: "E5: plane ratio vs delta (log-log; flat on benign workloads)",
		xCol: 0, yCol: 2, groupCol: -1, logX: true, logY: true},
	"E8": {title: "E8: moving-client ratio vs T (log-log; slope 0.5 expected)",
		xCol: 1, yCol: 2, groupCol: 0, groupLabel: "eps", logX: true, logY: true},
	"E9": {title: "E9: moving-client ratio vs T (flat expected)",
		xCol: 1, yCol: 3, groupCol: 0, groupLabel: "traj", logX: true},
	"E12": {title: "E12: fleet cost vs k (MtC-k)",
		xCol: 0, yCol: 2, groupCol: -1, logY: true,
		filter: func(row []float64) bool { return row[1] == 0 }},
	"E14": {title: "E14: planar ratio vs delta (log-log; conjecture: slope >= -1)",
		xCol: 1, yCol: 3, groupCol: 0, groupLabel: "style", logX: true, logY: true},
}

// PlotFor renders the experiment's headline curve as ASCII art. ok is
// false for experiments without a natural curve (pass/fail audits and
// cross tables).
func PlotFor(res Result) (string, bool) {
	spec, found := plotSpecs[res.ID]
	if !found {
		return "", false
	}
	groups := map[float64]*asciiplot.Series{}
	var order []float64
	for _, row := range res.Table.Rows {
		if spec.filter != nil && !spec.filter(row) {
			continue
		}
		key := 0.0
		if spec.groupCol >= 0 {
			key = row[spec.groupCol]
		}
		s, exists := groups[key]
		if !exists {
			name := res.ID
			if spec.groupCol >= 0 {
				name = fmt.Sprintf("%s=%g", spec.groupLabel, key)
			}
			s = &asciiplot.Series{Name: name}
			groups[key] = s
			order = append(order, key)
		}
		s.X = append(s.X, row[spec.xCol])
		s.Y = append(s.Y, row[spec.yCol])
	}
	if len(order) == 0 {
		return "", false
	}
	series := make([]asciiplot.Series, 0, len(order))
	for _, key := range order {
		series = append(series, *groups[key])
	}
	plot := asciiplot.Plot{Title: spec.title, Width: 64, Height: 18, LogX: spec.logX, LogY: spec.logY}
	return plot.Render(series), true
}
