package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceio"
	"repro/internal/xrand"
)

// e13 audits the proof of Theorem 4 itself: it evaluates the paper's
// potential function φ along real runs (MtC vs the DP optimum on the
// line) and checks the amortized inequality C_Alg + Δφ ≤ K·C_Opt in
// prefix form, reporting the measured worst-case constant next to the
// paper's explicit one (the case analysis reaches 264/δ on the line).
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Potential-function audit: the amortized inequality of Theorem 4, executed",
		Claim: "Section 4: C_Alg + Δφ ≤ O(1/δ)·C_Opt per step on the line (explicit constants ≤ ~264)",
		Run:   runE13,
	}
}

// instance codes for E13.
const (
	e13Walk = iota
	e13Adversarial
)

func runE13(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	deltas := []float64{1, 0.5, 0.25}
	rs := []int{1, 4}
	T := cfg.scaleT(400)

	type point struct {
		kind  int
		delta float64
		r     int
	}
	var points []point
	for _, d := range deltas {
		for _, r := range rs {
			points = append(points, point{kind: e13Walk, delta: d, r: r})
		}
		points = append(points, point{kind: e13Adversarial, delta: d, r: 1})
	}
	table := traceio.Table{Columns: []string{
		"kind", "delta", "r", "prefix_holds", "step_violations", "max_const_x_delta",
	}}
	type outcome struct {
		prefixOK   bool
		violations int
		maxConst   float64
	}
	results := sim.Parallel(len(points)*cfg.Seeds, cfg.Seed, func(i int, rng *xrand.Rand) outcome {
		p := points[i/cfg.Seeds]
		var in *core.Instance
		switch p.kind {
		case e13Adversarial:
			g := adversary.Theorem2(adversary.Theorem2Params{
				T: T, D: 2, M: 1, Delta: p.delta, Rmin: p.r, Rmax: p.r, Dim: 1,
			}, rng)
			in = g.Instance
		default:
			in = coincidentWalk(rng, T, p.r, p.delta)
		}
		res, err := analysis.AuditMtC(in, analysis.Options{})
		if err != nil {
			panic(err)
		}
		return outcome{prefixOK: res.PrefixHolds, violations: res.PerStepViolations, maxConst: res.MaxEmpiricalConstant}
	})
	for pi, p := range points {
		allHold := 1.0
		viol := 0.0
		var consts []float64
		for _, o := range results[pi*cfg.Seeds : (pi+1)*cfg.Seeds] {
			if !o.prefixOK {
				allHold = 0
			}
			viol += float64(o.violations)
			consts = append(consts, o.maxConst)
		}
		maxC := stats.Summarize(consts).Max
		table.Add(float64(p.kind), p.delta, float64(p.r), allHold, viol, maxC*p.delta)
	}
	findings := []string{
		"kind codes: 0=coincident random walk, 1=Theorem-2 adversarial instance",
	}
	prefixFailures := 0
	worst := 0.0
	for _, row := range table.Rows {
		if row[3] != 1 {
			prefixFailures++
		}
		if row[5] > worst {
			worst = row[5]
		}
	}
	if prefixFailures == 0 {
		findings = append(findings, "prefix form of the amortized inequality holds on every audited run")
	} else {
		findings = append(findings, fmt.Sprintf("prefix inequality FAILED on %d parameter points", prefixFailures))
	}
	findings = append(findings, fmt.Sprintf("measured worst amortized constant × δ = %.3g (paper's explicit constants reach ~264)", worst))
	return Result{ID: "E13", Title: e13().Title, Claim: e13().Claim, Table: table, Findings: findings}
}

// coincidentWalk builds a 1-D instance whose per-step batch is r requests
// on a single demand point moving at most m per step.
func coincidentWalk(rng *xrand.Rand, T, r int, delta float64) *core.Instance {
	cfg := core.Config{Dim: 1, D: 2, M: 1, Delta: delta, Order: core.MoveFirst}
	in := &core.Instance{Config: cfg, Start: geom.NewPoint(0)}
	x := 0.0
	for t := 0; t < T; t++ {
		x += rng.Range(-cfg.M, cfg.M)
		reqs := make([]geom.Point, r)
		for i := range reqs {
			reqs[i] = geom.NewPoint(x)
		}
		in.Steps = append(in.Steps, core.Step{Requests: reqs})
	}
	return in
}
